// Command benchdiff compares two `go test -bench` outputs and fails
// when any benchmark present in both regressed by more than a
// threshold.  It is the enforcement half of CI's benchstat job:
// benchstat renders the human-readable comparison, benchdiff gates the
// build, comparing per-benchmark minima.  The minimum — not the median
// — is the robust estimator on shared runners: timing noise (thermal
// throttling, noisy neighbors, GC from a colliding job) is strictly
// additive, so the fastest of N iterations is the closest observation
// of the true cost on each side, while a median still drifts whenever
// noise hits half the iterations.  A genuine code regression slows
// every iteration, so it shifts the minimum just as far.
//
// Usage:
//
//	benchdiff [-threshold 15] base.txt head.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// parseBench extracts name -> ns/op samples from a -bench output file.
func parseBench(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// BenchmarkName-8  100  123456 ns/op  [more unit pairs...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		out[fields[0]] = append(out[fields[0]], v)
	}
	return out, sc.Err()
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func main() {
	threshold := flag.Float64("threshold", 15, "max allowed regression in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] base.txt head.txt")
		os.Exit(2)
	}
	base, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	head, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no common benchmarks between the two inputs")
		os.Exit(2)
	}

	failed := false
	for _, name := range names {
		b, h := minOf(base[name]), minOf(head[name])
		delta := (h - b) / b * 100
		status := "ok"
		if delta > *threshold {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-70s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n", name, b, h, delta, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: regressions beyond %.0f%% detected\n", *threshold)
		os.Exit(1)
	}
}
