// Command covergate computes total statement coverage from a Go cover
// profile and fails when it drops below a floor.  It is the
// enforcement half of CI's coverage job: `go tool cover -func` renders
// the human-readable per-function table, covergate gates the build on
// the aggregate so a PR cannot silently shed tests.
//
// Usage:
//
//	covergate -profile cover.out -min 80.0
//
// Blocks appearing multiple times in the profile (packages are
// instrumented per test binary) are merged by taking the maximum
// count, matching `go tool cover -func` totals.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// block is one profile line's identity: file plus position range.
type block struct {
	file string
	pos  string
}

func main() {
	profile := flag.String("profile", "cover.out", "cover profile (go test -coverprofile)")
	min := flag.Float64("min", 0, "minimum total statement coverage in percent")
	flag.Parse()

	f, err := os.Open(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
	defer f.Close()

	stmts := make(map[block]int)   // statements per block
	covered := make(map[block]int) // max observed count per block
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		// file.go:l1.c1,l2.c2 numStmts count
		fields := strings.Fields(line)
		if len(fields) != 3 {
			continue
		}
		colon := strings.LastIndex(fields[0], ":")
		if colon < 0 {
			continue
		}
		b := block{file: fields[0][:colon], pos: fields[0][colon+1:]}
		n, err1 := strconv.Atoi(fields[1])
		cnt, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			continue
		}
		stmts[b] = n
		if cnt > covered[b] {
			covered[b] = cnt
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}

	total, hit := 0, 0
	for b, n := range stmts {
		total += n
		if covered[b] > 0 {
			hit += n
		}
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "covergate: empty profile")
		os.Exit(1)
	}
	pct := 100 * float64(hit) / float64(total)
	fmt.Printf("covergate: total statement coverage %.1f%% (%d/%d statements), floor %.1f%%\n",
		pct, hit, total, *min)
	if pct < *min {
		fmt.Fprintf(os.Stderr, "covergate: coverage %.1f%% dropped below the recorded floor %.1f%%\n", pct, *min)
		os.Exit(1)
	}
}
