// Command benchjson converts `go test -bench` output into JSON, so CI
// can archive machine-readable benchmark results (BENCH_PR3.json) and
// the perf trajectory across PRs can be diffed mechanically instead of
// by eyeballing logs.
//
// Usage:
//
//	go test -run '^$' -bench . . | go run ./scripts/benchjson > BENCH.json
//	go run ./scripts/benchjson bench-output.txt > BENCH.json
//
// Repeated runs of the same benchmark (-count > 1) are kept as separate
// samples; consumers aggregate as they see fit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Sample is one benchmark result line.
type Sample struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Extra metrics (B/op, allocs/op, custom units) keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GeneratedAt time.Time `json:"generated_at"`
	Goos        string    `json:"goos,omitempty"`
	Goarch      string    `json:"goarch,omitempty"`
	Pkg         string    `json:"pkg,omitempty"`
	CPU         string    `json:"cpu,omitempty"`
	Samples     []Sample  `json:"samples"`
}

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep := Report{GeneratedAt: time.Now().UTC(), Samples: []Sample{}}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if s, ok := parseLine(line); ok {
				rep.Samples = append(rep.Samples, s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkX-8  100  123 ns/op  45 B/op  6 allocs/op".
func parseLine(line string) (Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Sample{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Sample{}, false
	}
	s := Sample{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Value/unit pairs follow.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Sample{}, false
		}
		if fields[i+1] == "ns/op" {
			s.NsPerOp = v
		} else {
			s.Metrics[fields[i+1]] = v
		}
	}
	if len(s.Metrics) == 0 {
		s.Metrics = nil
	}
	return s, true
}
