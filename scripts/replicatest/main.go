// Command replicatest is the replication kill harness: it runs a
// leader and a follower serve daemon as real processes, streams
// randomized EDB updates at the leader, SIGKILLs the leader
// mid-stream, waits for the follower to drain what survives, promotes
// the follower, and checks the promoted state bit-exactly against an
// in-process recompute of its own EDB — the same oracle discipline as
// scripts/crashtest, extended across the replication link.
//
// Three trial shapes:
//
//	A  leader+follower end-to-end per semantics: read-only 503 gating,
//	   mid-stream leader kill -9, convergence oracle, promotion, and
//	   writes continuing on the promoted follower.
//	B  retention pinning: the harness itself plays a slow poller
//	   against a checkpoint-every-batch leader and must never see 410
//	   while its pin holds — then a stale unpinned cursor must 410.
//	C  follower restart: SIGTERM the follower, let the leader advance,
//	   restart on the same data dir, and require incremental catch-up
//	   (zero re-bootstraps) to bit-exact equality with the leader.
//
// Usage:
//
//	go run ./scripts/replicatest [-fsync always] [-seed 1] [-serve PATH]
//
// Exit status 0 means every trial held.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/parser"
)

// Trial programs — one per semantics, matching scripts/crashtest so
// every maintainer strategy replicates.  Updates arrive on E.
var programs = map[string]string{
	"lfp":          "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).",
	"stratified":   "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).\nns(X,Y) :- node(X), node(Y), !s(X,Y).",
	"inflationary": "win(X) :- E(X,Y), !win(Y).",
	"wellfounded":  "win(X) :- E(X,Y), !win(Y).",
}

// edbPreds names the base relations per semantics — what the oracle
// reads back from the follower to recompute the derived state.
var edbPreds = map[string][]string{
	"lfp":          {"E"},
	"stratified":   {"E", "node"},
	"inflationary": {"E"},
	"wellfounded":  {"E"},
}

var semOrder = []string{"lfp", "stratified", "inflationary", "wellfounded"}

const pool = 8 // constants c0..c7

func main() {
	fsync := flag.String("fsync", "always", "WAL sync policy handed to both daemons")
	seed := flag.Int64("seed", 1, "RNG seed for update streams and kill timing")
	serveBin := flag.String("serve", "", "path to a prebuilt serve binary (empty = go build one)")
	flag.Parse()

	bin := *serveBin
	if bin == "" {
		dir, err := os.MkdirTemp("", "replicatest-bin")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		bin = filepath.Join(dir, "serve")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/serve").CombinedOutput()
		if err != nil {
			fatal(fmt.Errorf("building serve: %v\n%s", err, out))
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	failures := 0
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "replicatest: %s: FAIL: %v\n", name, err)
		} else {
			fmt.Printf("replicatest: %s: ok\n", name)
		}
	}
	for _, sem := range semOrder {
		sem := sem
		run("failover/"+sem, func() error { return failoverTrial(bin, sem, *fsync, rng) })
	}
	run("pinning", func() error { return pinningTrial(bin, *fsync, rng) })
	run("restart", func() error { return restartTrial(bin, *fsync, rng) })
	if failures > 0 {
		fatal(fmt.Errorf("%d trials failed", failures))
	}
	fmt.Println("replicatest: all trials held")
}

// trialDirs lays out one trial's working files.
func trialDirs(sem string, rng *rand.Rand) (work, progFile, factsFile string, err error) {
	work, err = os.MkdirTemp("", "replicatest")
	if err != nil {
		return
	}
	progFile = filepath.Join(work, "program.dl")
	factsFile = filepath.Join(work, "facts.dl")
	if err = os.WriteFile(progFile, []byte(programs[sem]+"\n"), 0o644); err != nil {
		return
	}
	err = os.WriteFile(factsFile, []byte(seedFacts(sem, rng)), 0o644)
	return
}

// daemon wraps one serve process.
type daemon struct {
	cmd  *exec.Cmd
	addr string // http://host:port
}

func startDaemon(bin string, listen string, args ...string) (*daemon, error) {
	cmd := exec.Command(bin, append(args, "-addr", listen)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	d := &daemon{cmd: cmd, addr: "http://" + listen}
	if err := waitReady(d.addr); err != nil {
		d.kill()
		return nil, err
	}
	return d, nil
}

func (d *daemon) kill() {
	d.cmd.Process.Signal(syscall.SIGKILL)
	d.cmd.Wait()
}

func (d *daemon) stop() error {
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		<-done
		return fmt.Errorf("daemon at %s ignored SIGTERM", d.addr)
	}
}

// failoverTrial is trial A: end-to-end log shipping with a mid-stream
// leader kill and follower promotion.
func failoverTrial(bin, sem, fsync string, rng *rand.Rand) error {
	work, progFile, factsFile, err := trialDirs(sem, rng)
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	leader, err := startDaemon(bin, freeAddr(),
		"-program", progFile, "-facts", factsFile, "-semantics", sem,
		"-data-dir", filepath.Join(work, "leader"), "-checkpoint-every", "4", "-fsync", fsync)
	if err != nil {
		return fmt.Errorf("leader boot: %w", err)
	}
	defer leader.kill()

	follower, err := startDaemon(bin, freeAddr(),
		"-program", progFile, "-semantics", sem, "-follow", leader.addr,
		"-data-dir", filepath.Join(work, "follower"), "-fsync", fsync)
	if err != nil {
		return fmt.Errorf("follower boot: %w", err)
	}
	defer follower.kill()

	// Read-only gating: an update to the follower is 503 not_leader
	// and names the leader.
	if err := expectNotLeader(follower.addr, leader.addr); err != nil {
		return err
	}

	// Stream updates at the leader and kill -9 it mid-stream.
	stop := make(chan struct{})
	streamDone := make(chan int)
	streamSeed := rng.Int63() // drawn here: the goroutine must not share rng
	go func() {
		n := 0
		client := &http.Client{Timeout: 2 * time.Second}
		r := rand.New(rand.NewSource(streamSeed))
		for {
			select {
			case <-stop:
				streamDone <- n
				return
			default:
			}
			if postUpdate(client, leader.addr, randomEdge(r), r.Intn(3) > 0) == nil {
				n++
			}
		}
	}()
	time.Sleep(time.Duration(20+rng.Intn(150)) * time.Millisecond)
	leader.kill()
	close(stop)
	acked := <-streamDone

	// The follower drains whatever survived, then stabilizes.
	if err := waitStable(follower.addr, false); err != nil {
		return err
	}

	// Oracle: the follower's derived state must equal a from-scratch
	// recompute of its own EDB.
	if err := checkConsistent(follower.addr, sem); err != nil {
		return fmt.Errorf("after leader kill (%d acked): %w", acked, err)
	}

	// Exactly one bootstrap, and the replica block is live.
	met, err := replicaMetrics(follower.addr)
	if err != nil {
		return err
	}
	if met.Bootstraps != 1 {
		return fmt.Errorf("follower bootstrapped %d times, want 1", met.Bootstraps)
	}
	if !met.ReadOnly {
		return fmt.Errorf("follower metrics claim writable before promotion")
	}

	// Promote and keep writing — to the follower this time.
	resp, err := http.Post(follower.addr+"/v1/replica/promote", "application/json", nil)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote: status %d", resp.StatusCode)
	}
	client := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < 5; i++ {
		if err := postUpdate(client, follower.addr, randomEdge(rng), true); err != nil {
			return fmt.Errorf("write after promotion: %w", err)
		}
	}
	if err := checkConsistent(follower.addr, sem); err != nil {
		return fmt.Errorf("after promotion writes: %w", err)
	}
	met, err = replicaMetrics(follower.addr)
	if err != nil {
		return err
	}
	if met.ReadOnly {
		return fmt.Errorf("follower metrics still read-only after promotion")
	}
	return follower.stop()
}

// pinningTrial is trial B: the harness plays a deliberately slow
// poller against a leader that checkpoints after every batch.  The
// retention pin must keep every segment the poller still needs — no
// 410 until the cursor is genuinely abandoned.
func pinningTrial(bin, fsync string, rng *rand.Rand) error {
	const sem = "lfp"
	work, progFile, factsFile, err := trialDirs(sem, rng)
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	leader, err := startDaemon(bin, freeAddr(),
		"-program", progFile, "-facts", factsFile, "-semantics", sem,
		"-data-dir", filepath.Join(work, "leader"), "-checkpoint-every", "1", "-fsync", fsync)
	if err != nil {
		return fmt.Errorf("leader boot: %w", err)
	}
	defer leader.kill()

	// Register as a follower: the snapshot response pins our cursor.
	resp, err := http.Get(leader.addr + "/v1/replica/snapshot?id=slowpoke")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot: status %d", resp.StatusCode)
	}
	bootstrapCursor := resp.Header.Get("X-Replica-Seq") + "," + resp.Header.Get("X-Replica-Off")

	// Every one of these updates triggers a checkpoint — without the
	// pin, the segments behind our cursor would be compacted away.
	client := &http.Client{Timeout: 2 * time.Second}
	const updates = 8
	for i := 0; i < updates; i++ {
		if err := postUpdate(client, leader.addr, randomEdge(rng), true); err != nil {
			return err
		}
	}

	// Slow drain, one poll at a time: never a 410 while pinned.
	cursor, drained := bootstrapCursor, 0
	for i := 0; i < 4*updates && drained < updates; i++ {
		resp, err := http.Get(leader.addr + "/v1/replica/wal?id=slowpoke&wait=0&from=" + cursor)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusGone {
			return fmt.Errorf("pinned cursor %s compacted after %d/%d records", cursor, drained, updates)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("wal poll: status %d", resp.StatusCode)
		}
		n := 0
		fmt.Sscan(resp.Header.Get("X-Replica-Records"), &n)
		drained += n
		cursor = resp.Header.Get("X-Replica-Next-Seq") + "," + resp.Header.Get("X-Replica-Next-Off")
		time.Sleep(10 * time.Millisecond)
	}
	if drained < updates {
		return fmt.Errorf("drained %d records, want %d", drained, updates)
	}

	// Keep our pin riding the tail (each poll refreshes it) until a
	// background checkpoint compacts the history behind us, then a
	// stale cursor under a NEW id — no pin — must answer 410.  Probing
	// with the new id before compaction would itself pin the old
	// segments and retain them legitimately.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := postUpdate(client, leader.addr, randomEdge(rng), true); err != nil {
			return err
		}
		resp, err = http.Get(leader.addr + "/v1/replica/wal?id=slowpoke&wait=0&from=" + cursor)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("tail poll: status %d", resp.StatusCode)
		}
		cursor = resp.Header.Get("X-Replica-Next-Seq") + "," + resp.Header.Get("X-Replica-Next-Off")
		var met struct {
			Durable *struct {
				WALSegments int `json:"wal_segments"`
			} `json:"durable"`
		}
		if err := getJSON(leader.addr+"/v1/metrics", &met); err != nil {
			return err
		}
		if met.Durable != nil && met.Durable.WALSegments <= 3 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leader never compacted past the advancing pin (%d segments)", met.Durable.WALSegments)
		}
		time.Sleep(50 * time.Millisecond)
	}
	resp, err = http.Get(leader.addr + "/v1/replica/wal?id=latecomer&wait=0&from=" + bootstrapCursor)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		return fmt.Errorf("stale unpinned cursor: status %d, want 410", resp.StatusCode)
	}
	return nil
}

// restartTrial is trial C: SIGTERM the follower, advance the leader,
// restart the follower on the same data dir, and require incremental
// catch-up — zero re-bootstraps — to bit-exact leader equality.
func restartTrial(bin, fsync string, rng *rand.Rand) error {
	const sem = "lfp"
	work, progFile, factsFile, err := trialDirs(sem, rng)
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	leader, err := startDaemon(bin, freeAddr(),
		"-program", progFile, "-facts", factsFile, "-semantics", sem,
		"-data-dir", filepath.Join(work, "leader"), "-checkpoint-every", "4", "-fsync", fsync)
	if err != nil {
		return fmt.Errorf("leader boot: %w", err)
	}
	defer leader.kill()

	fdir := filepath.Join(work, "follower")
	flisten := freeAddr()
	followerArgs := []string{
		"-program", progFile, "-semantics", sem, "-follow", leader.addr,
		"-data-dir", fdir, "-fsync", fsync,
	}
	follower, err := startDaemon(bin, flisten, followerArgs...)
	if err != nil {
		return fmt.Errorf("follower boot: %w", err)
	}

	client := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < 5; i++ {
		if err := postUpdate(client, leader.addr, randomEdge(rng), true); err != nil {
			follower.kill()
			return err
		}
	}
	if err := waitStable(follower.addr, true); err != nil {
		follower.kill()
		return err
	}
	if err := follower.stop(); err != nil {
		return err
	}

	// Leader advances while the follower is down.
	for i := 0; i < 5; i++ {
		if err := postUpdate(client, leader.addr, randomEdge(rng), true); err != nil {
			return err
		}
	}

	// Restart on the same data dir and port: incremental catch-up.
	follower, err = startDaemon(bin, flisten, followerArgs...)
	if err != nil {
		return fmt.Errorf("follower reboot: %w", err)
	}
	defer follower.kill()
	if err := waitStable(follower.addr, true); err != nil {
		return err
	}
	met, err := replicaMetrics(follower.addr)
	if err != nil {
		return err
	}
	if met.Bootstraps != 0 {
		return fmt.Errorf("restart re-bootstrapped (%d) instead of resuming from the cursor", met.Bootstraps)
	}
	want, err := daemonState(leader.addr)
	if err != nil {
		return err
	}
	got, err := daemonState(follower.addr)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("restarted follower diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
	return follower.stop()
}

// expectNotLeader posts an update to a follower and demands the 503
// not_leader contract.
func expectNotLeader(followerAddr, leaderAddr string) error {
	body := bytes.NewBufferString(`{"insert":[{"pred":"E","args":["c0","c1"]}]}`)
	resp, err := http.Post(followerAddr+"/v1/update", "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("follower update: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Leader-Addr"); got != leaderAddr {
		return fmt.Errorf("X-Leader-Addr = %q, want %q", got, leaderAddr)
	}
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Code != "not_leader" {
		return fmt.Errorf("error code %q (%v), want not_leader", e.Error.Code, err)
	}
	return nil
}

// replicaMetrics fetches the follower's replica block.
func replicaMetrics(addr string) (*struct {
	ReadOnly       bool  `json:"read_only"`
	AppliedRecords int64 `json:"applied_records"`
	LagRecords     int64 `json:"lag_records"`
	Bootstraps     int64 `json:"bootstraps"`
}, error) {
	var met struct {
		Replica *struct {
			ReadOnly       bool  `json:"read_only"`
			AppliedRecords int64 `json:"applied_records"`
			LagRecords     int64 `json:"lag_records"`
			Bootstraps     int64 `json:"bootstraps"`
		} `json:"replica"`
	}
	if err := getJSON(addr+"/v1/metrics", &met); err != nil {
		return nil, err
	}
	if met.Replica == nil {
		return nil, fmt.Errorf("replica block missing from /v1/metrics")
	}
	return met.Replica, nil
}

// waitStable waits until the follower's applied-record count stops
// moving.  requireZeroLag additionally demands a drained tail — only
// meaningful while the leader is alive; against a dead leader the lag
// metric freezes at the last poll's value.
func waitStable(addr string, requireZeroLag bool) error {
	deadline := time.Now().Add(20 * time.Second)
	var last int64 = -1
	settled := 0
	for time.Now().Before(deadline) {
		met, err := replicaMetrics(addr)
		if err != nil {
			return err
		}
		if met.AppliedRecords == last && (!requireZeroLag || met.LagRecords == 0) {
			settled++
			if settled >= 6 {
				return nil
			}
		} else {
			settled = 0
		}
		last = met.AppliedRecords
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("follower at %s never stabilized", addr)
}

// checkConsistent recomputes the daemon's derived state from its own
// EDB and demands bit-exact equality with what it serves — the
// replication-apply path must agree with a from-scratch evaluation.
func checkConsistent(addr, semName string) error {
	var b strings.Builder
	for _, pred := range edbPreds[semName] {
		var rel struct {
			Tuples [][]string `json:"tuples"`
		}
		if err := getJSON(addr+"/v1/relation?pred="+pred, &rel); err != nil {
			return err
		}
		for _, tup := range rel.Tuples {
			b.WriteString(pred + "(" + strings.Join(tup, ",") + ").\n")
		}
	}
	db, err := parser.Facts(b.String())
	if err != nil {
		return err
	}
	prog, err := parser.Program(programs[semName])
	if err != nil {
		return err
	}
	sem, err := core.ParseSemantics(semName)
	if err != nil {
		return err
	}
	m, err := incr.New(prog, db, sem)
	if err != nil {
		return err
	}
	snap := m.Snapshot()
	var names []string
	for name := range snap.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	var want strings.Builder
	for _, name := range names {
		var rows []string
		for _, tup := range snap.Rels[name].Tuples() {
			parts := make([]string, len(tup))
			for i, v := range tup {
				parts[i] = snap.Universe.Name(v)
			}
			rows = append(rows, strings.Join(parts, ","))
		}
		sort.Strings(rows)
		want.WriteString(name + ": " + strings.Join(rows, " ") + "\n")
	}
	got, err := daemonState(addr)
	if err != nil {
		return err
	}
	if got != want.String() {
		return fmt.Errorf("daemon state diverged from EDB recompute:\n got:\n%s\nwant:\n%s", got, want.String())
	}
	return nil
}

// daemonState dumps every relation of a running daemon, sorted.
func daemonState(addr string) (string, error) {
	var stats struct {
		Relations map[string]int `json:"relations"`
	}
	if err := getJSON(addr+"/v1/stats", &stats); err != nil {
		return "", err
	}
	var names []string
	for name := range stats.Relations {
		names = append(names, name)
	}
	sort.Strings(names)
	var out strings.Builder
	for _, name := range names {
		var rel struct {
			Tuples [][]string `json:"tuples"`
		}
		if err := getJSON(addr+"/v1/relation?pred="+name, &rel); err != nil {
			return "", err
		}
		var rows []string
		for _, tup := range rel.Tuples {
			rows = append(rows, strings.Join(tup, ","))
		}
		sort.Strings(rows)
		out.WriteString(name + ": " + strings.Join(rows, " ") + "\n")
	}
	return out.String(), nil
}

// seedFacts builds the initial fact file: a random edge set over the
// pool, plus the full node relation where the program needs it.
func seedFacts(sem string, rng *rand.Rand) string {
	var b strings.Builder
	for i := 0; i < pool; i++ {
		if sem == "stratified" {
			fmt.Fprintf(&b, "node(c%d).\n", i)
		}
		for j := 0; j < pool; j++ {
			if i != j && rng.Float64() < 0.2 {
				fmt.Fprintf(&b, "E(c%d,c%d).\n", i, j)
			}
		}
	}
	b.WriteString("E(c0,c1).\n")
	return b.String()
}

func randomEdge(rng *rand.Rand) []string {
	from := rng.Intn(pool)
	to := (from + 1 + rng.Intn(pool-1)) % pool
	return []string{fmt.Sprintf("c%d", from), fmt.Sprintf("c%d", to)}
}

func postUpdate(client *http.Client, addr string, edge []string, insert bool) error {
	op := "delete"
	if insert {
		op = "insert"
	}
	body, _ := json.Marshal(map[string]any{
		op: []map[string]any{{"pred": "E", "args": edge}},
	})
	resp, err := client.Post(addr+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("update: %s", resp.Status)
	}
	return nil
}

// waitReady polls /v1/stats until the daemon answers.
func waitReady(addr string) error {
	deadline := time.Now().Add(15 * time.Second)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(addr + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s never became ready", addr)
}

// freeAddr grabs an unused localhost port.
func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replicatest:", err)
	os.Exit(1)
}
