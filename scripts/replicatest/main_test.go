package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/server"
)

// startTestServer runs an in-process daemon over the trial program for
// one semantics, so the harness's HTTP helpers can be exercised
// without spawning processes.
func startTestServer(t *testing.T, sem string, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	prog, err := parser.Program(programs[sem])
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.Facts(seedFacts(sem, rand.New(rand.NewSource(7))))
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.ParseSemantics(sem)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWith(prog, db, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func TestSeedFactsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sem := range semOrder {
		facts := seedFacts(sem, rng)
		if !strings.Contains(facts, "E(c0,c1).") {
			t.Errorf("%s: seed facts missing the guaranteed edge", sem)
		}
		hasNode := strings.Contains(facts, "node(")
		if hasNode != (sem == "stratified") {
			t.Errorf("%s: node facts present=%v", sem, hasNode)
		}
		if _, err := parser.Facts(facts); err != nil {
			t.Errorf("%s: seed facts do not parse: %v", sem, err)
		}
	}
}

func TestRandomEdgeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		edge := randomEdge(rng)
		if len(edge) != 2 || edge[0] == edge[1] {
			t.Fatalf("bad edge %v", edge)
		}
		for _, c := range edge {
			if !strings.HasPrefix(c, "c") {
				t.Fatalf("edge constant %q outside the pool", c)
			}
		}
	}
}

func TestTrialDirs(t *testing.T) {
	work, progFile, factsFile, err := trialDirs("stratified", rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(work)
	prog, err := os.ReadFile(progFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(prog) != programs["stratified"]+"\n" {
		t.Errorf("program file content mismatch")
	}
	if _, err := os.Stat(factsFile); err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(progFile) != work {
		t.Errorf("program file outside work dir")
	}
}

// TestHelpersAgainstLiveServer covers the harness's HTTP oracle
// helpers against an in-process writable daemon: readiness polling,
// update posting, the full-state dump, and the EDB-recompute
// consistency check.
func TestHelpersAgainstLiveServer(t *testing.T) {
	for _, sem := range []string{"lfp", "stratified"} {
		_, ts := startTestServer(t, sem, server.Config{})
		if err := waitReady(ts.URL); err != nil {
			t.Fatalf("%s: waitReady: %v", sem, err)
		}
		client := &http.Client{}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 3; i++ {
			if err := postUpdate(client, ts.URL, randomEdge(rng), true); err != nil {
				t.Fatalf("%s: postUpdate insert: %v", sem, err)
			}
		}
		if err := postUpdate(client, ts.URL, randomEdge(rng), false); err != nil {
			t.Fatalf("%s: postUpdate delete: %v", sem, err)
		}
		state, err := daemonState(ts.URL)
		if err != nil {
			t.Fatalf("%s: daemonState: %v", sem, err)
		}
		if !strings.Contains(state, "s: ") {
			t.Errorf("%s: state dump missing derived relation:\n%s", sem, state)
		}
		if err := checkConsistent(ts.URL, sem); err != nil {
			t.Errorf("%s: checkConsistent on a live daemon: %v", sem, err)
		}
	}
}

// TestHelpersAgainstFollower covers the read-only-side helpers: the
// not_leader contract check, the replica metrics reader, and the
// stability wait, against a server wearing follower configuration and
// a stubbed metrics hook.
func TestHelpersAgainstFollower(t *testing.T) {
	srv, ts := startTestServer(t, "lfp", server.Config{
		ReadOnly:   true,
		LeaderAddr: "http://leader.example:8090",
	})
	srv.SetReplicaHooks(func() *server.ReplicaMetrics {
		return &server.ReplicaMetrics{
			Leader:         "http://leader.example:8090",
			ReadOnly:       srv.ReadOnly(),
			AppliedRecords: 42,
			Bootstraps:     1,
		}
	}, nil)

	if err := expectNotLeader(ts.URL, "http://leader.example:8090"); err != nil {
		t.Fatalf("expectNotLeader: %v", err)
	}
	met, err := replicaMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !met.ReadOnly || met.AppliedRecords != 42 || met.Bootstraps != 1 {
		t.Errorf("replica metrics mismatch: %+v", met)
	}
	// AppliedRecords is constant and lag is zero: waitStable settles.
	if err := waitStable(ts.URL, true); err != nil {
		t.Fatalf("waitStable: %v", err)
	}

	// After promotion the same helper must report writable, and the
	// not_leader check must fail.
	srv.Promote()
	met, err = replicaMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if met.ReadOnly {
		t.Error("metrics still read-only after Promote")
	}
	if err := expectNotLeader(ts.URL, "http://leader.example:8090"); err == nil {
		t.Error("expectNotLeader passed against a promoted daemon")
	}
}

func TestGetJSONErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer ts.Close()
	var out struct{}
	if err := getJSON(ts.URL+"/nope", &out); err == nil {
		t.Error("getJSON on a 404: no error")
	}
	if err := getJSON("http://127.0.0.1:1/", &out); err == nil {
		t.Error("getJSON on a dead address: no error")
	}
}

// TestTrialsEndToEnd runs each trial shape once against real daemon
// processes with -fsync off — the quick in-tree variant of what `make
// replicatest` runs with -fsync always across all semantics.
func TestTrialsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	bin := filepath.Join(t.TempDir(), "serve")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/serve").CombinedOutput()
	if err != nil {
		t.Fatalf("building serve: %v\n%s", err, out)
	}
	rng := rand.New(rand.NewSource(11))
	if err := failoverTrial(bin, "lfp", "off", rng); err != nil {
		t.Errorf("failover trial: %v", err)
	}
	if err := pinningTrial(bin, "off", rng); err != nil {
		t.Errorf("pinning trial: %v", err)
	}
	if err := restartTrial(bin, "off", rng); err != nil {
		t.Errorf("restart trial: %v", err)
	}
}

func TestFreeAddr(t *testing.T) {
	a, b := freeAddr(), freeAddr()
	if !strings.HasPrefix(a, "127.0.0.1:") || !strings.HasPrefix(b, "127.0.0.1:") {
		t.Fatalf("unexpected addrs %q %q", a, b)
	}
}
