// Command crashtest is the durability kill harness: it spawns the
// serve daemon with a data dir, streams randomized EDB updates at it,
// SIGKILLs it at a random moment (possibly mid-batch, mid-checkpoint,
// or mid-WAL-write), restarts it on the same data dir, and diffs every
// /v1/relation dump against an in-process oracle that recomputes the
// program from scratch over the surviving durable history.  Recovery
// is correct only if the restarted daemon is bit-exact with the
// recompute — not merely self-consistent.
//
// Trials rotate through all four semantics, covering all three
// maintainer strategies (counting/DRed strata, inflationary stage-log
// replay, well-founded recompute).
//
// Usage:
//
//	go run ./scripts/crashtest [-crashes 24] [-ckpt-crashes 6] [-fsync always] [-seed 1] [-serve PATH]
//
// With no -serve the daemon is built once into a temp dir with
// `go build`.  Exit status 0 means every trial recovered bit-exactly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/incr"
	"repro/internal/parser"
)

// trial programs: one per semantics, chosen so every maintainer
// strategy is exercised.  All share the c0..c7 constant pool and take
// updates on E.
var programs = map[string]string{
	// LFP / pure positive: counting-maintained strata.
	"lfp": "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).",
	// Stratified negation: counting + DRed across strata.
	"stratified": "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).\nns(X,Y) :- node(X), node(Y), !s(X,Y).",
	// Non-stratified inflationary: stage-log replay strategy.
	"inflationary": "win(X) :- E(X,Y), !win(Y).",
	// Well-founded: alternating-fixpoint recompute strategy.
	"wellfounded": "win(X) :- E(X,Y), !win(Y).",
}

var semOrder = []string{"lfp", "stratified", "inflationary", "wellfounded"}

const pool = 8 // constants c0..c7

func main() {
	crashes := flag.Int("crashes", 24, "number of kill-and-recover trials (spread across semantics)")
	ckptCrashes := flag.Int("ckpt-crashes", 6, "extra trials that SIGKILL provably mid-checkpoint (checkpoint-every batch, REPRO_CKPT_DELAY held open)")
	fsync := flag.String("fsync", "always", "WAL sync policy handed to the daemon")
	seed := flag.Int64("seed", 1, "RNG seed for update streams and kill timing")
	serveBin := flag.String("serve", "", "path to a prebuilt serve binary (empty = go build one)")
	flag.Parse()

	bin := *serveBin
	if bin == "" {
		dir, err := os.MkdirTemp("", "crashtest-bin")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		bin = filepath.Join(dir, "serve")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/serve").CombinedOutput()
		if err != nil {
			fatal(fmt.Errorf("building serve: %v\n%s", err, out))
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	failures := 0
	for i := 0; i < *crashes+*ckptCrashes; i++ {
		sem := semOrder[i%len(semOrder)]
		ckptKill := i >= *crashes
		label := ""
		if ckptKill {
			label = ", mid-checkpoint"
		}
		if err := runTrial(bin, sem, *fsync, rng, ckptKill); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "crashtest: trial %d (%s%s): FAIL: %v\n", i, sem, label, err)
		} else {
			fmt.Printf("crashtest: trial %d (%s%s): ok\n", i, sem, label)
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d/%d trials failed", failures, *crashes+*ckptCrashes))
	}
	fmt.Printf("crashtest: %d trials, all bit-exact after kill -9\n", *crashes+*ckptCrashes)
}

// runTrial runs one kill-and-recover cycle.  ckptKill aims the SIGKILL
// at the checkpoint install window: the daemon checkpoints after every
// batch and REPRO_CKPT_DELAY holds each install open between the tmp
// write and the rename, so the killer — watching checkpoint_in_flight
// in /v1/metrics — provably lands mid-checkpoint.
func runTrial(bin, sem, fsync string, rng *rand.Rand, ckptKill bool) error {
	work, err := os.MkdirTemp("", "crashtest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	progFile := filepath.Join(work, "program.dl")
	factsFile := filepath.Join(work, "facts.dl")
	dataDir := filepath.Join(work, "data")
	if err := os.WriteFile(progFile, []byte(programs[sem]+"\n"), 0o644); err != nil {
		return err
	}
	facts := seedFacts(sem, rng)
	if err := os.WriteFile(factsFile, []byte(facts), 0o644); err != nil {
		return err
	}

	listen := freeAddr()
	addr := "http://" + listen
	ckptEvery := "8"
	if ckptKill {
		ckptEvery = "1"
	}
	args := []string{
		"-program", progFile, "-facts", factsFile, "-semantics", sem,
		"-addr", listen, "-data-dir", dataDir, "-checkpoint-every", ckptEvery, "-fsync", fsync,
	}

	// Boot #1: stream updates, then kill -9 at a random moment.
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if ckptKill {
		cmd.Env = append(os.Environ(), "REPRO_CKPT_DELAY=150ms")
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	if err := waitReady(addr); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("boot 1: %w", err)
	}
	stop := make(chan struct{})
	streamDone := make(chan int)
	go func() {
		n := 0
		client := &http.Client{Timeout: 2 * time.Second}
		r := rand.New(rand.NewSource(rng.Int63())) // private rng: the streamer races the killer
		for {
			select {
			case <-stop:
				streamDone <- n
				return
			default:
			}
			if postUpdate(client, addr, randomEdge(r), r.Intn(2) == 0) == nil {
				n++
			}
		}
	}()
	if ckptKill {
		// Wait until a checkpoint install is provably open (the daemon
		// sleeps REPRO_CKPT_DELAY between the tmp write and the rename),
		// then land the kill inside it.  Fall through after 5s regardless
		// — a miss degrades to an ordinary random kill.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			var met struct {
				Durable *struct {
					InFlight bool `json:"checkpoint_in_flight"`
				} `json:"durable"`
			}
			if getJSON(addr+"/v1/metrics", &met) == nil && met.Durable != nil && met.Durable.InFlight {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	} else {
		time.Sleep(time.Duration(5+rng.Intn(120)) * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	cmd.Wait()
	close(stop)
	acked := <-streamDone

	// Freeze the surviving history for the oracle before the restarted
	// daemon compacts it.
	oracleDir := filepath.Join(work, "oracle-data")
	if err := copyDir(dataDir, oracleDir); err != nil {
		return err
	}
	want, err := oracleState(programs[sem], facts, sem, oracleDir)
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}

	// Boot #2: recover and compare every relation.
	cmd2 := exec.Command(bin, args...)
	cmd2.Stderr = os.Stderr
	if err := cmd2.Start(); err != nil {
		return err
	}
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	if err := waitReady(addr); err != nil {
		return fmt.Errorf("boot 2: %w", err)
	}
	got, err := daemonState(addr)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("after %d acked updates, recovered state diverged from recompute:\n got:\n%s\nwant:\n%s", acked, got, want)
	}

	// The durable metrics must report the recovery.
	var met struct {
		Durable *struct {
			RecoveredSnapshot bool    `json:"recovered_snapshot"`
			RecoveryDurMs     float64 `json:"recovery_dur_ms"`
			Checkpoints       int64   `json:"checkpoints"`
		} `json:"durable"`
	}
	if err := getJSON(addr+"/v1/metrics", &met); err != nil {
		return err
	}
	if met.Durable == nil {
		return fmt.Errorf("durable block missing from /v1/metrics")
	}
	if !met.Durable.RecoveredSnapshot {
		return fmt.Errorf("restart did not recover from the snapshot")
	}
	if met.Durable.RecoveryDurMs < 0 {
		return fmt.Errorf("recovery duration %v", met.Durable.RecoveryDurMs)
	}
	return nil
}

// oracleState recomputes the ground truth: open the frozen data dir,
// rebuild the EDB from the checkpoint plus the surviving WAL records
// at the fact level, and evaluate the program from scratch.
func oracleState(progSrc, seedSrc, semName, dir string) (string, error) {
	st, info, err := durable.Open(dir, durable.FsyncOff, 0)
	if err != nil {
		return "", err
	}
	st.Close()

	// EDB as of the snapshot (or the seed facts if the crash beat the
	// first checkpoint).
	edb := map[string]map[string][]string{}
	add := func(pred string, args []string) {
		if edb[pred] == nil {
			edb[pred] = map[string][]string{}
		}
		edb[pred][strings.Join(args, "\x00")] = args
	}
	if cp := info.Checkpoint; cp != nil {
		for _, pred := range cp.EDBNames {
			r := cp.EDB[pred]
			if edb[pred] == nil {
				edb[pred] = map[string][]string{}
			}
			for _, tup := range r.Tuples() {
				args := make([]string, len(tup))
				for i, v := range tup {
					args[i] = cp.Universe.Name(v)
				}
				add(pred, args)
			}
		}
	} else {
		seedDB, err := parser.Facts(seedSrc)
		if err != nil {
			return "", err
		}
		for _, pred := range seedDB.Names() {
			r := seedDB.Relation(pred)
			for _, tup := range r.Tuples() {
				args := make([]string, len(tup))
				for i, v := range tup {
					args[i] = seedDB.Universe().Name(v)
				}
				add(pred, args)
			}
		}
	}
	for _, rec := range info.Records {
		for _, f := range rec.Del {
			delete(edb[f.Pred], strings.Join(f.Args, "\x00"))
		}
		for _, f := range rec.Ins {
			add(f.Pred, f.Args)
		}
	}

	// From-scratch evaluation over the reconstructed EDB.
	var b strings.Builder
	for _, pred := range sortedPreds(edb) {
		for _, args := range edb[pred] {
			b.WriteString(pred + "(" + strings.Join(args, ",") + ").\n")
		}
	}
	db, err := parser.Facts(b.String())
	if err != nil {
		return "", err
	}
	prog, err := parser.Program(progSrc)
	if err != nil {
		return "", err
	}
	sem, err := core.ParseSemantics(semName)
	if err != nil {
		return "", err
	}
	m, err := incr.New(prog, db, sem)
	if err != nil {
		return "", err
	}
	snap := m.Snapshot()
	var names []string
	for name := range snap.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	var out strings.Builder
	for _, name := range names {
		var rows []string
		for _, tup := range snap.Rels[name].Tuples() {
			parts := make([]string, len(tup))
			for i, v := range tup {
				parts[i] = snap.Universe.Name(v)
			}
			rows = append(rows, strings.Join(parts, ","))
		}
		sort.Strings(rows)
		out.WriteString(name + ": " + strings.Join(rows, " ") + "\n")
	}
	return out.String(), nil
}

// daemonState dumps every relation of the running daemon in the same
// rendering as oracleState.
func daemonState(addr string) (string, error) {
	var stats struct {
		Relations map[string]int `json:"relations"`
	}
	if err := getJSON(addr+"/v1/stats", &stats); err != nil {
		return "", err
	}
	var names []string
	for name := range stats.Relations {
		names = append(names, name)
	}
	sort.Strings(names)
	var out strings.Builder
	for _, name := range names {
		var rel struct {
			Tuples [][]string `json:"tuples"`
		}
		if err := getJSON(addr+"/v1/relation?pred="+name, &rel); err != nil {
			return "", err
		}
		var rows []string
		for _, tup := range rel.Tuples {
			rows = append(rows, strings.Join(tup, ","))
		}
		sort.Strings(rows)
		out.WriteString(name + ": " + strings.Join(rows, " ") + "\n")
	}
	return out.String(), nil
}

// seedFacts builds the initial fact file: a random edge set over the
// pool, plus the full node relation where the program needs it.
func seedFacts(sem string, rng *rand.Rand) string {
	var b strings.Builder
	for i := 0; i < pool; i++ {
		if sem == "stratified" {
			fmt.Fprintf(&b, "node(c%d).\n", i)
		}
		for j := 0; j < pool; j++ {
			if i != j && rng.Float64() < 0.2 {
				fmt.Fprintf(&b, "E(c%d,c%d).\n", i, j)
			}
		}
	}
	// Guarantee at least one edge so every relation exists.
	b.WriteString("E(c0,c1).\n")
	return b.String()
}

func randomEdge(rng *rand.Rand) []string {
	from := rng.Intn(pool)
	to := (from + 1 + rng.Intn(pool-1)) % pool
	return []string{fmt.Sprintf("c%d", from), fmt.Sprintf("c%d", to)}
}

func postUpdate(client *http.Client, addr string, edge []string, insert bool) error {
	op := "delete"
	if insert {
		op = "insert"
	}
	body, _ := json.Marshal(map[string]any{
		op: []map[string]any{{"pred": "E", "args": edge}},
	})
	resp, err := client.Post(addr+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("update: %s", resp.Status)
	}
	return nil
}

// waitReady polls /v1/stats until the daemon answers.
func waitReady(addr string) error {
	deadline := time.Now().Add(15 * time.Second)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(addr + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s never became ready", addr)
}

// freeAddr grabs an unused localhost port.  The tiny window between
// closing the probe listener and the daemon binding is harmless here:
// a collision just fails the trial's waitReady and the harness errors.
func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func sortedPreds(m map[string]map[string][]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashtest:", err)
	os.Exit(1)
}
