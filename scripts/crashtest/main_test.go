package main

import (
	"math/rand"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/server"
)

// TestOracleMatchesRecoveredServer runs the harness's comparison logic
// in-process: a durable server takes updates and stops, the data dir
// is frozen with copyDir, and oracleState's from-scratch recompute
// over the frozen history must render exactly what a recovered server
// serves over HTTP via daemonState.
func TestOracleMatchesRecoveredServer(t *testing.T) {
	for _, sem := range semOrder {
		t.Run(sem, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			facts := seedFacts(sem, rng)
			seedDB, err := parser.Facts(facts)
			if err != nil {
				t.Fatal(err)
			}
			prog := parser.MustProgram(programs[sem])
			semantics, err := core.ParseSemantics(sem)
			if err != nil {
				t.Fatal(err)
			}
			dataDir := filepath.Join(t.TempDir(), "data")
			cfg := server.Config{DataDir: dataDir, Fsync: durable.FsyncAlways, CheckpointBatches: 3}
			srv, err := server.NewWith(prog, seedDB, semantics, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 7; i++ {
				edge := randomEdge(rng)
				var ins, del []incr.Fact
				if rng.Intn(2) == 0 {
					ins = []incr.Fact{{Pred: "E", Args: edge}}
				} else {
					del = []incr.Fact{{Pred: "E", Args: edge}}
				}
				if _, _, err := srv.Update(ins, del); err != nil {
					t.Fatal(err)
				}
			}
			srv.Close()

			frozen := filepath.Join(t.TempDir(), "frozen")
			if err := copyDir(dataDir, frozen); err != nil {
				t.Fatal(err)
			}
			want, err := oracleState(programs[sem], facts, sem, frozen)
			if err != nil {
				t.Fatal(err)
			}

			srv2, err := server.NewWith(prog, seedDB.Clone(), semantics, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv2.Close()
			ts := httptest.NewServer(srv2.Handler())
			defer ts.Close()
			got, err := daemonState(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("recovered server diverged from oracle:\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestOracleSeedFallback: with no durable history at all the oracle
// evaluates the seed facts alone.
func TestOracleSeedFallback(t *testing.T) {
	dir := t.TempDir()
	got, err := oracleState(programs["lfp"], "E(c0,c1).\nE(c1,c2).\n", "lfp", dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E: c0,c1 c1,c2", "s: c0,c1 c0,c2 c1,c2"} {
		if !strings.Contains(got, want) {
			t.Errorf("oracle over seed facts lacks %q:\n%s", want, got)
		}
	}
}

func TestSeedFacts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plain := seedFacts("lfp", rng)
	if !strings.Contains(plain, "E(c0,c1).") {
		t.Error("guaranteed edge missing")
	}
	if strings.Contains(plain, "node(") {
		t.Error("lfp facts should not mention node")
	}
	strat := seedFacts("stratified", rng)
	for i := 0; i < pool; i++ {
		if !strings.Contains(strat, "node(c"+string(rune('0'+i))+").") {
			t.Errorf("stratified facts lack node(c%d)", i)
		}
	}
	if _, err := parser.Facts(strat); err != nil {
		t.Fatalf("generated facts do not parse: %v", err)
	}
}

func TestRandomEdgeNoSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		e := randomEdge(rng)
		if e[0] == e[1] {
			t.Fatalf("self loop %v", e)
		}
	}
}

func TestCopyDirSkipsSubdirs(t *testing.T) {
	src := t.TempDir()
	if err := os.WriteFile(filepath.Join(src, "a.log"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(src, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "dst")
	if err := copyDir(src, dst); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(filepath.Join(dst, "a.log")); err != nil || string(data) != "x" {
		t.Fatalf("copied file = %q, %v", data, err)
	}
	if _, err := os.Stat(filepath.Join(dst, "sub")); !os.IsNotExist(err) {
		t.Error("subdirectory was copied")
	}
}

func TestFreeAddr(t *testing.T) {
	addr := freeAddr()
	if _, err := url.Parse("http://" + addr); err != nil {
		t.Fatalf("freeAddr() = %q: %v", addr, err)
	}
	if !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Fatalf("freeAddr() = %q, want a localhost port", addr)
	}
}
