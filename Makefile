# Local targets mirroring the CI jobs in .github/workflows/ci.yml, so
# local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race vet fmt fmt-check bench bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine ./internal/relation

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# Full benchmark sweep (slow): every experiment series.
bench:
	$(GO) test -run '^$$' -bench . .

# The CI smoke variant: one iteration of the E1/E5 series plus a quick
# experiment run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'E1|E5' -benchtime 1x . | tee bench-smoke.txt
	$(GO) run ./cmd/bench -quick -exp E1 | tee -a bench-smoke.txt

ci: vet fmt-check build test race bench-smoke
