# Local targets mirroring the CI jobs in .github/workflows/ci.yml, so
# local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race vet fmt fmt-check bench bench-smoke bench-json staticcheck ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine ./internal/relation ./internal/semantics ./internal/incr ./internal/server

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# Full benchmark sweep (slow): every experiment series.
bench:
	$(GO) test -run '^$$' -bench . .

# The CI smoke variant: one iteration of the E1/E5 series plus a quick
# experiment run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'E1|E5' -benchtime 1x . | tee bench-smoke.txt
	$(GO) run ./cmd/bench -quick -exp E1 | tee -a bench-smoke.txt

# Machine-readable results for the perf trajectory: the headline series
# (E8 fixpoint, E10 distance, E13 planner, E14 incremental updates)
# rendered to BENCH_PR3.json, which CI uploads as an artifact.
bench-json:
	$(GO) test -run '^$$' -bench 'E8Inflationary|E10Distance|E13JoinPlanner|E14IncrementalUpdate' \
		-benchtime 100ms -count 3 . | tee bench-json.txt
	$(GO) run ./scripts/benchjson bench-json.txt > BENCH_PR3.json

# Static analysis beyond go vet; pinned so local runs and CI agree.
STATICCHECK_VERSION ?= 2025.1.1
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Local mirror of the CI benchstat gate: compare the E8/E10 series on
# BASE (default HEAD~1) against the working tree, failing on >15%
# median regressions.
BASE ?= HEAD~1
bench-compare:
	rm -rf /tmp/bench-base && git worktree prune
	git worktree add /tmp/bench-base $(BASE)
	cd /tmp/bench-base && $(GO) test -run '^$$' -bench 'E8Inflationary|E10Distance' -benchtime 100ms -count 7 . > /tmp/bench-base.txt
	$(GO) test -run '^$$' -bench 'E8Inflationary|E10Distance' -benchtime 100ms -count 7 . > /tmp/bench-head.txt
	$(GO) run ./scripts/benchdiff -threshold 15 /tmp/bench-base.txt /tmp/bench-head.txt
	git worktree remove --force /tmp/bench-base

# Hermetic mirror of CI: every job that needs no network.  staticcheck
# (downloads the pinned tool) and the benchstat gate (bench-compare)
# are the two network-using CI jobs; run them explicitly when online.
ci: vet fmt-check build test race bench-smoke
