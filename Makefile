# Local targets mirroring the CI jobs in .github/workflows/ci.yml, so
# local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race vet fmt fmt-check bench bench-smoke bench-json bench-serve profile staticcheck fuzz-smoke crashtest replicatest cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine ./internal/relation ./internal/semantics ./internal/partition ./internal/incr ./internal/durable ./internal/server ./internal/replica

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# Full benchmark sweep (slow): every experiment series.
bench:
	$(GO) test -run '^$$' -bench . .

# The CI smoke variant: one iteration of the E1/E5 series plus a quick
# experiment run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'E1|E5' -benchtime 1x . | tee bench-smoke.txt
	$(GO) run ./cmd/bench -quick -exp E1 | tee -a bench-smoke.txt

# Machine-readable results for the perf trajectory: the headline series
# (E8 fixpoint, E10 distance, E13 planner, E14 incremental updates, E15
# frontier scaling, E16 magic point queries, E17 partition scaling, E18
# dedup path) rendered to BENCH_PR8.json — committed to the repo (and uploaded by
# CI) so the trajectory survives across PRs.  Fixed -benchtime/-count:
# medians over 5 runs of ≥100ms, not 1-iteration smoke samples.
bench-json:
	$(GO) test -run '^$$' -bench 'E8Inflationary|E10Distance|E13JoinPlanner|E14IncrementalUpdate|E15FrontierScaling|E16MagicQuery|E17PartitionScaling|E18DedupPath' \
		-benchtime 100ms -count 5 . | tee bench-json.txt
	$(GO) run ./scripts/benchjson bench-json.txt > BENCH_PR8.json

# Production-serving benchmark: generate a TC workload, start the
# daemon, drive it with cmd/loadgen (mixed read/query/update traffic
# over 16 connections), add the group-commit vs serialized update
# microbenchmarks, and render everything to BENCH_SERVE.json — the
# serving-path counterpart of bench-json, committed for the trajectory
# and uploaded by CI.
BENCH_SERVE_DURATION ?= 10s
BENCH_SERVE_ADDR ?= :8123
bench-serve:
	$(GO) build -o /tmp/repro-serve ./cmd/serve
	$(GO) run ./cmd/genwork -kind program -name tc > /tmp/bench-serve-prog.dl
	$(GO) run ./cmd/genwork -kind graph -n 24 -p 0.15 -seed 1 > /tmp/bench-serve-facts.dl
	/tmp/repro-serve -program /tmp/bench-serve-prog.dl -facts /tmp/bench-serve-facts.dl -addr $(BENCH_SERVE_ADDR) & \
	pid=$$!; sleep 2; \
	$(GO) run ./cmd/loadgen -addr http://localhost$(BENCH_SERVE_ADDR) -conns 16 -duration $(BENCH_SERVE_DURATION) > bench-serve.txt; \
	st=$$?; kill $$pid; [ $$st -eq 0 ]
	$(GO) test -run '^$$' -bench ServeUpdate16 -benchtime 2s ./internal/server | tee -a bench-serve.txt
	$(GO) run ./scripts/benchjson bench-serve.txt > BENCH_SERVE.json

# CPU + allocation + contention profiles of the hot evaluation path
# (the E8/E10 series plus the partitioned E17 sweep, whose exchange
# rounds are what the mutex/block profiles exist to watch), written to
# profiles/, with a top summary printed for each — so future perf PRs
# start from data, not guesses.
# Inspect interactively with: go tool pprof profiles/repro.test profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'E8Inflationary|E10Distance|E17PartitionScaling' -benchtime 500ms \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
		-mutexprofile profiles/mutex.pprof -blockprofile profiles/block.pprof \
		-o profiles/repro.test .
	$(GO) tool pprof -top -nodecount 20 profiles/repro.test profiles/cpu.pprof
	$(GO) tool pprof -top -nodecount 20 -sample_index=alloc_space profiles/repro.test profiles/mem.pprof
	$(GO) tool pprof -top -nodecount 10 profiles/repro.test profiles/mutex.pprof
	$(GO) tool pprof -top -nodecount 10 profiles/repro.test profiles/block.pprof

# Static analysis beyond go vet; pinned so local runs and CI agree.
STATICCHECK_VERSION ?= 2025.1.1
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Local mirror of the CI benchstat gate: compare the
# E8/E10/E15/E16/E17/E18 series on BASE (default HEAD~1) against the
# working tree, failing on >15% regressions of the per-series minimum
# (the noise-robust estimator; see scripts/benchdiff).  E16 puts
# point-query latency under the same gate as whole-fixpoint evaluation;
# E17/K=1 guards the unpartitioned path against exchange-machinery
# overhead.  Series missing on BASE (e.g. a newly added benchmark) are
# skipped by benchdiff.  Both sides are prebuilt and the iterations
# interleaved A/B/A/B: running all of base then all of head lets slow
# machine drift (thermal throttling, noisy neighbors) land entirely on
# whichever side runs second and masquerade as a code regression.
BASE ?= HEAD~1
BENCH_SERIES := E8Inflationary|E10Distance|E15FrontierScaling|E16MagicQuery|E17PartitionScaling|E18DedupPath
bench-compare:
	rm -rf /tmp/bench-base && git worktree prune
	git worktree add /tmp/bench-base $(BASE)
	cd /tmp/bench-base && $(GO) test -c -o /tmp/bench-base.bin .
	$(GO) test -c -o /tmp/bench-head.bin .
	rm -f /tmp/bench-base.txt /tmp/bench-head.txt
	for i in 1 2 3 4 5 6 7; do \
		/tmp/bench-base.bin -test.run '^$$' -test.bench '$(BENCH_SERIES)' -test.benchtime 100ms >> /tmp/bench-base.txt || exit 1; \
		/tmp/bench-head.bin -test.run '^$$' -test.bench '$(BENCH_SERIES)' -test.benchtime 100ms >> /tmp/bench-head.txt || exit 1; \
	done
	$(GO) run ./scripts/benchdiff -threshold 15 /tmp/bench-base.txt /tmp/bench-head.txt
	git worktree remove --force /tmp/bench-base

# 30 seconds of native fuzzing per target: the parser round-trip
# invariants and the magic rewrite's stratifiable-or-fallback contract.
# Seed corpora live under testdata/fuzz and also run as plain tests.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParser$$' -fuzztime $(FUZZTIME) ./internal/parser
	$(GO) test -run '^$$' -fuzz '^FuzzFacts$$' -fuzztime $(FUZZTIME) ./internal/parser
	$(GO) test -run '^$$' -fuzz '^FuzzMagicRewrite$$' -fuzztime $(FUZZTIME) ./internal/magic
	$(GO) test -run '^$$' -fuzz '^FuzzWALDecode$$' -fuzztime $(FUZZTIME) ./internal/durable

# The durability kill harness: spawn the daemon with a data dir,
# kill -9 at random points, restart, and diff every relation against a
# from-scratch recompute over the surviving snapshot + WAL.
CRASHES ?= 24
CKPT_CRASHES ?= 6
crashtest:
	$(GO) run ./scripts/crashtest -crashes $(CRASHES) -ckpt-crashes $(CKPT_CRASHES) -fsync always

# The replication kill harness: leader + follower daemons, mid-stream
# leader kill -9, convergence oracle, retention pinning, promotion, and
# follower restart catch-up.
replicatest:
	$(GO) run ./scripts/replicatest -fsync always

# Statement coverage with the recorded floor (the total measured when
# the gate was introduced, minus noise margin): PRs may not shed tests.
COVER_MIN ?= 78.5
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
	$(GO) run ./scripts/covergate -profile cover.out -min $(COVER_MIN)

# Hermetic mirror of CI: every job that needs no network.  staticcheck
# (downloads the pinned tool) and the benchstat gate (bench-compare)
# are the two network-using CI jobs; run them explicitly when online.
ci: vet fmt-check build test race bench-smoke cover fuzz-smoke
