package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBounds: every value lands in a bucket whose reported upper
// bound is ≥ the value and within 25% of it — the histogram's accuracy
// contract.
func TestBucketBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(ns int64) {
		i := bucketIdx(ns)
		max := bucketMax(i)
		if max < ns {
			t.Fatalf("bucketMax(%d)=%d < value %d", i, max, ns)
		}
		if ns >= histSub && float64(max) > 1.25*float64(ns) {
			t.Fatalf("bucketMax(%d)=%d exceeds value %d by more than 25%%", i, max, ns)
		}
	}
	for ns := int64(0); ns < 4096; ns++ {
		check(ns)
	}
	for i := 0; i < 10000; i++ {
		check(rng.Int63())
	}
}

// TestQuantileAccuracy: quantiles of a known uniform distribution are
// over-estimated by at most one bucket (25%), never under-estimated
// below the true quantile's bucket.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	const n = 100000
	vals := make([]int64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range vals {
		vals[i] = 1000 + rng.Int63n(int64(time.Millisecond)) // 1µs .. ~1ms
		h.Observe(time.Duration(vals[i]))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := vals[int(q*float64(n))-1]
		got := int64(h.Quantile(q))
		if got < truth/2 || float64(got) > 1.25*float64(truth)+1 {
			t.Errorf("q=%.2f: got %d, true %d — outside the accuracy contract", q, got, truth)
		}
	}
	if h.Count() != n {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
	if m := h.Mean(); m < time.Microsecond || m > time.Millisecond {
		t.Errorf("mean = %v out of range", m)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("empty histogram mean = %v, want 0", got)
	}
}

// TestWindowRate: events spread over known seconds produce the exact
// trailing rate, and lapped slots from long ago are ignored.
func TestWindowRate(t *testing.T) {
	var w Window
	base := time.Unix(1_000_000, 0)
	// 10 events in each of the 5 seconds before "now".
	for s := 1; s <= 5; s++ {
		for i := 0; i < 10; i++ {
			w.Add(base.Add(-time.Duration(s) * time.Second))
		}
	}
	if got := w.Rate(base, 5); got != 10 {
		t.Fatalf("rate over 5s = %v, want 10", got)
	}
	// Over 10 trailing seconds the same 50 events halve the rate.
	if got := w.Rate(base, 10); got != 5 {
		t.Fatalf("rate over 10s = %v, want 5", got)
	}
	// An hour later every slot is stale: rate is zero.
	if got := w.Rate(base.Add(time.Hour), 5); got != 0 {
		t.Fatalf("stale rate = %v, want 0", got)
	}
}

// TestConcurrentObserve hammers one endpoint from many goroutines;
// counts must be exact (run under -race to prove lock-freedom is
// sound).
func TestConcurrentObserve(t *testing.T) {
	var e Endpoint
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Observe(start, time.Duration(i)*time.Microsecond, i%10 == 0)
			}
		}(w)
	}
	wg.Wait()
	if got := e.Requests.Load(); got != workers*per {
		t.Errorf("requests = %d, want %d", got, workers*per)
	}
	if got := e.Errors.Load(); got != workers*per/10 {
		t.Errorf("errors = %d, want %d", got, workers*per/10)
	}
	if got := e.Latency.Count(); got != workers*per {
		t.Errorf("latency count = %d, want %d", got, workers*per)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(5)
	g.Max(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.Set(1)
	if got := g.Load(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
}
