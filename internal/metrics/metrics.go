// Package metrics provides the lock-cheap telemetry primitives behind
// the serve daemon's /v1/metrics endpoint: monotonic counters, a
// per-second ring for recent request rates, and a log-bucketed
// streaming histogram for latency percentiles.
//
// Everything is built from atomics — the hot path (one Observe per
// request) is a handful of atomic adds, never a lock — so request
// handlers on every connection and concurrent metrics scrapes never
// contend.  Reads are racy-but-coherent: a scrape may see a histogram
// mid-update, which perturbs a percentile by at most the in-flight
// requests; for monitoring that is the right trade.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonic event counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the last stored value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max ratchets the gauge up to n if n is larger.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Histogram bucket layout: 4 sub-buckets per power of two ("octave"),
// so a bucket's upper bound exceeds its lower by at most 25% —
// percentile estimates carry at most that relative error, constant
// memory, and Observe is two shifts and one atomic add.  Durations are
// measured in nanoseconds; 64 octaves × 4 sub-buckets cover the full
// int64 range.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits // sub-buckets per octave
	histBuckets = 64 * histSub
)

// Histogram is a streaming latency estimator: fixed log-spaced atomic
// buckets plus exact count/sum.  The zero value is ready to use.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	bucket [histBuckets]atomic.Int64
}

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(ns int64) int {
	if ns < histSub {
		if ns < 0 {
			ns = 0
		}
		return int(ns)
	}
	exp := bits.Len64(uint64(ns)) - 1                       // position of the top bit
	sub := int(ns>>(uint(exp)-histSubBits)) & (histSub - 1) // next bits below it
	return exp<<histSubBits | sub
}

// bucketMax returns the inclusive upper bound of a bucket — the value
// Quantile reports, so estimates over-approximate by at most 25%.
func bucketMax(i int) int64 {
	exp := i >> histSubBits
	sub := int64(i & (histSub - 1))
	if i < histSub {
		return int64(i) // the first buckets hold exact single values
	}
	return (int64(histSub)+sub+1)<<(uint(exp)-histSubBits) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.bucket[bucketIdx(ns)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the exact mean of all observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the bucket holding the q·count-th observation — an over-estimate by
// less than one bucket width (at most 25% relative).
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.bucket {
		cum += h.bucket[i].Load()
		if cum >= target {
			return time.Duration(bucketMax(i))
		}
	}
	return time.Duration(bucketMax(histBuckets - 1))
}

// windowSlots sizes the per-second ring; rates can be asked over up to
// windowSlots-1 trailing complete seconds.
const windowSlots = 64

// Window counts events into a ring of per-second slots, for "recent
// QPS" style rates that ignore ancient history.  The zero value is
// ready to use.
type Window struct {
	slot [windowSlots]struct {
		epoch atomic.Int64 // unix second this slot currently counts
		n     atomic.Int64
	}
}

// Add records one event at time now.
func (w *Window) Add(now time.Time) {
	sec := now.Unix()
	s := &w.slot[sec%windowSlots]
	if e := s.epoch.Load(); e != sec {
		// The slot belongs to a lapped second: one winner resets it.
		if s.epoch.CompareAndSwap(e, sec) {
			s.n.Store(0)
		}
	}
	s.n.Add(1)
}

// Rate returns events per second over the trailing `seconds` complete
// seconds before now (the current in-progress second is excluded, so a
// scrape early in a second does not read an artificially low rate).
func (w *Window) Rate(now time.Time, seconds int) float64 {
	if seconds <= 0 || seconds > windowSlots-1 {
		seconds = windowSlots - 1
	}
	sec := now.Unix()
	var total int64
	for i := 1; i <= seconds; i++ {
		s := &w.slot[(sec-int64(i))%windowSlots]
		if s.epoch.Load() == sec-int64(i) {
			total += s.n.Load()
		}
	}
	return float64(total) / float64(seconds)
}

// Endpoint aggregates one HTTP endpoint's traffic: request and error
// counters, a recent-rate window, and a latency histogram.
type Endpoint struct {
	Requests Counter
	Errors   Counter
	Recent   Window
	Latency  Histogram
}

// Observe records one request.
func (e *Endpoint) Observe(start time.Time, d time.Duration, isErr bool) {
	e.Requests.Inc()
	if isErr {
		e.Errors.Inc()
	}
	e.Recent.Add(start)
	e.Latency.Observe(d)
}
