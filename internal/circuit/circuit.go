// Package circuit implements Boolean circuits exactly as defined in
// the proof of Theorem 4 of the paper: a circuit is a finite sequence
// of gates (a_i, b_i, c_i) where a_i ∈ {IN, AND, OR, NOT} is the kind
// and b_i, c_i < i are the gate's inputs (b_i = c_i for NOT; unused
// for IN).  Given bits for the input gates, gate values are computed
// in order and the value of the circuit is the value of the last gate.
//
// A circuit with 2n inputs presents a graph on the vertex set {0,1}ⁿ —
// the SUCCINCT representation of [PY86]: the output on (x̄, ȳ) says
// whether the edge (x̄, ȳ) is present.  SuccinctGraph wraps that view
// and can expand the exponentially larger explicit graph, which is the
// data-complexity-vs-expression-complexity gap Theorem 4 measures.
package circuit

import (
	"fmt"
	"math/rand"

	"repro/internal/cnf"
)

// Kind is the gate kind of the paper's triples.
type Kind int

// Gate kinds.
const (
	In Kind = iota
	And
	Or
	Not
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case In:
		return "IN"
	case And:
		return "AND"
	case Or:
		return "OR"
	case Not:
		return "NOT"
	}
	return "?"
}

// Gate is one triple (kind, b, c).  For IN gates B and C are ignored;
// for NOT gates only B is used (the paper sets b_i = c_i).
type Gate struct {
	Kind Kind
	B, C int
}

// Circuit is a gate list; gate i may only reference gates < i.
type Circuit struct {
	Gates []Gate
	// inputs caches the indices of IN gates in order.
	inputs []int
}

// New builds a circuit from gates and validates it.
func New(gates []Gate) (*Circuit, error) {
	c := &Circuit{Gates: gates}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks the structural conditions of the paper's definition.
func (c *Circuit) Validate() error {
	if len(c.Gates) == 0 {
		return fmt.Errorf("circuit: no gates")
	}
	c.inputs = c.inputs[:0]
	for i, g := range c.Gates {
		switch g.Kind {
		case In:
			c.inputs = append(c.inputs, i)
		case Not:
			if g.B != g.C {
				return fmt.Errorf("circuit: NOT gate %d must have b = c", i)
			}
			if g.B < 0 || g.B >= i {
				return fmt.Errorf("circuit: gate %d input %d out of range", i, g.B)
			}
		case And, Or:
			if g.B < 0 || g.B >= i || g.C < 0 || g.C >= i {
				return fmt.Errorf("circuit: gate %d inputs (%d,%d) out of range", i, g.B, g.C)
			}
		default:
			return fmt.Errorf("circuit: gate %d has unknown kind %d", i, g.Kind)
		}
	}
	return nil
}

// NumInputs returns the number of IN gates.
func (c *Circuit) NumInputs() int {
	if c.inputs == nil {
		c.Validate()
	}
	return len(c.inputs)
}

// Size returns the number of gates.
func (c *Circuit) Size() int { return len(c.Gates) }

// EvalAll computes every gate value for the given input bits (one per
// IN gate, in gate order).
func (c *Circuit) EvalAll(inputs []bool) ([]bool, error) {
	if len(inputs) != c.NumInputs() {
		return nil, fmt.Errorf("circuit: %d input bits for %d IN gates", len(inputs), c.NumInputs())
	}
	vals := make([]bool, len(c.Gates))
	inIdx := 0
	for i, g := range c.Gates {
		switch g.Kind {
		case In:
			vals[i] = inputs[inIdx]
			inIdx++
		case And:
			vals[i] = vals[g.B] && vals[g.C]
		case Or:
			vals[i] = vals[g.B] || vals[g.C]
		case Not:
			vals[i] = !vals[g.B]
		}
	}
	return vals, nil
}

// Eval computes the circuit value (the last gate) on the input bits.
func (c *Circuit) Eval(inputs []bool) (bool, error) {
	vals, err := c.EvalAll(inputs)
	if err != nil {
		return false, err
	}
	return vals[len(vals)-1], nil
}

// MustEval is Eval but panics on arity mismatch.
func (c *Circuit) MustEval(inputs []bool) bool {
	v, err := c.Eval(inputs)
	if err != nil {
		panic(err)
	}
	return v
}

// ToCNF emits a Tseitin encoding of the circuit into b, returning the
// CNF variables of the input gates (in order) and of the output gate.
// The encoding is functional: each assignment of the inputs extends to
// exactly one model of the emitted clauses.
func (c *Circuit) ToCNF(b *cnf.Builder) (inputVars []int, output int) {
	vars := make([]int, len(c.Gates))
	for i, g := range c.Gates {
		switch g.Kind {
		case In:
			vars[i] = b.NewVar()
			inputVars = append(inputVars, vars[i])
		case And:
			vars[i] = b.And(vars[g.B], vars[g.C])
		case Or:
			vars[i] = b.Or(vars[g.B], vars[g.C])
		case Not:
			// Reuse the input variable negated via a fresh var with an
			// IFF so gate indexing stays uniform.
			v := b.NewVar()
			b.Iff(v, -vars[g.B])
			vars[i] = v
		}
	}
	return inputVars, vars[len(vars)-1]
}

// Builder composes circuits gate by gate; every method returns the
// index of the created gate.
type Builder struct {
	gates []Gate
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder { return &Builder{} }

// Input appends an IN gate.
func (b *Builder) Input() int {
	b.gates = append(b.gates, Gate{Kind: In})
	return len(b.gates) - 1
}

// And appends an AND gate over gates x and y.
func (b *Builder) And(x, y int) int {
	b.gates = append(b.gates, Gate{Kind: And, B: x, C: y})
	return len(b.gates) - 1
}

// Or appends an OR gate over gates x and y.
func (b *Builder) Or(x, y int) int {
	b.gates = append(b.gates, Gate{Kind: Or, B: x, C: y})
	return len(b.gates) - 1
}

// Not appends a NOT gate over gate x.
func (b *Builder) Not(x int) int {
	b.gates = append(b.gates, Gate{Kind: Not, B: x, C: x})
	return len(b.gates) - 1
}

// Xor appends gates computing x ⊕ y = (x ∨ y) ∧ ¬(x ∧ y).
func (b *Builder) Xor(x, y int) int {
	or := b.Or(x, y)
	nand := b.Not(b.And(x, y))
	return b.And(or, nand)
}

// Iff appends gates computing x ↔ y.
func (b *Builder) Iff(x, y int) int { return b.Not(b.Xor(x, y)) }

// AndN appends a balanced AND over the given gates (at least one).
func (b *Builder) AndN(xs ...int) int { return b.fold(xs, b.And) }

// OrN appends a balanced OR over the given gates (at least one).
func (b *Builder) OrN(xs ...int) int { return b.fold(xs, b.Or) }

func (b *Builder) fold(xs []int, op func(int, int) int) int {
	if len(xs) == 0 {
		panic("circuit: empty gate fold")
	}
	for len(xs) > 1 {
		var next []int
		for i := 0; i+1 < len(xs); i += 2 {
			next = append(next, op(xs[i], xs[i+1]))
		}
		if len(xs)%2 == 1 {
			next = append(next, xs[len(xs)-1])
		}
		xs = next
	}
	return xs[0]
}

// Build finalizes and validates the circuit.  The output is the last
// gate appended, per the paper's convention.
func (b *Builder) Build() (*Circuit, error) { return New(b.gates) }

// MustBuild is Build but panics on validation failure.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// Random builds a random valid circuit with the given number of inputs
// and internal gates, for fuzz-style tests.
func Random(rng *rand.Rand, inputs, internal int) *Circuit {
	b := NewBuilder()
	for i := 0; i < inputs; i++ {
		b.Input()
	}
	n := inputs
	for i := 0; i < internal; i++ {
		x, y := rng.Intn(n), rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			b.And(x, y)
		case 1:
			b.Or(x, y)
		default:
			b.Not(x)
		}
		n = len(b.gates)
	}
	return b.MustBuild()
}
