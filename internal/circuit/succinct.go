package circuit

import "fmt"

// SuccinctGraph is a graph on the vertex set {0,1}ⁿ presented by a
// Boolean circuit with 2n inputs ([PY86], used by the paper's
// Theorem 4): the edge (x̄, ȳ) is present iff the circuit outputs 1 on
// the concatenated bits x̄ȳ.  Bit j of a vertex (least significant
// first) feeds input gate j for x̄ and input gate n+j for ȳ.
type SuccinctGraph struct {
	C *Circuit
	N int // address bits per vertex
}

// NewSuccinctGraph wraps a circuit as a succinct graph; the circuit
// must have an even number of inputs.
func NewSuccinctGraph(c *Circuit) (*SuccinctGraph, error) {
	in := c.NumInputs()
	if in == 0 || in%2 != 0 {
		return nil, fmt.Errorf("circuit: succinct graph needs an even, positive input count; have %d", in)
	}
	return &SuccinctGraph{C: c, N: in / 2}, nil
}

// NumVertices returns 2ⁿ.
func (g *SuccinctGraph) NumVertices() int { return 1 << g.N }

// bitsOf writes the n address bits of v (LSB first) into dst.
func (g *SuccinctGraph) bitsOf(v int, dst []bool) {
	for j := 0; j < g.N; j++ {
		dst[j] = v&(1<<j) != 0
	}
}

// HasEdge reports whether the presented graph has the edge (x, y).
func (g *SuccinctGraph) HasEdge(x, y int) bool {
	in := make([]bool, 2*g.N)
	g.bitsOf(x, in[:g.N])
	g.bitsOf(y, in[g.N:])
	return g.C.MustEval(in)
}

// ExplicitEdges expands the full edge list by evaluating the circuit
// on all 2²ⁿ vertex pairs — the exponential blowup that makes the
// succinct fixpoint problem NEXP-complete.
func (g *SuccinctGraph) ExplicitEdges() [][2]int {
	var out [][2]int
	nv := g.NumVertices()
	in := make([]bool, 2*g.N)
	for x := 0; x < nv; x++ {
		g.bitsOf(x, in[:g.N])
		for y := 0; y < nv; y++ {
			g.bitsOf(y, in[g.N:])
			if g.C.MustEval(in) {
				out = append(out, [2]int{x, y})
			}
		}
	}
	return out
}

// CompleteGraph returns the succinct representation of the complete
// graph on 2ⁿ vertices: edge (x̄, ȳ) iff x̄ ≠ ȳ.  For n ≥ 2 the
// presented graph is not 3-colorable — the canonical "no" instance of
// SUCCINCT 3-COLORING.
func CompleteGraph(n int) *SuccinctGraph {
	b := NewBuilder()
	xs := make([]int, n)
	ys := make([]int, n)
	for j := 0; j < n; j++ {
		xs[j] = b.Input()
	}
	for j := 0; j < n; j++ {
		ys[j] = b.Input()
	}
	diffs := make([]int, n)
	for j := 0; j < n; j++ {
		diffs[j] = b.Xor(xs[j], ys[j])
	}
	b.OrN(diffs...)
	g, err := NewSuccinctGraph(b.MustBuild())
	if err != nil {
		panic(err)
	}
	return g
}

// CycleGraph returns the succinct representation of the directed cycle
// on 2ⁿ vertices: edge (x̄, ȳ) iff ȳ = x̄ + 1 (mod 2ⁿ).  The underlying
// undirected graph is an even cycle, hence 2-colorable and a fortiori
// 3-colorable — the canonical "yes" instance.
func CycleGraph(n int) *SuccinctGraph {
	b := NewBuilder()
	xs := make([]int, n)
	ys := make([]int, n)
	for j := 0; j < n; j++ {
		xs[j] = b.Input()
	}
	for j := 0; j < n; j++ {
		ys[j] = b.Input()
	}
	// Successor via a ripple carry: s_j = x_j ⊕ carry_j with
	// carry_0 = 1, carry_{j+1} = x_j ∧ carry_j; match y_j ↔ s_j.
	one := b.Not(b.And(xs[0], b.Not(xs[0]))) // constant true gate
	carry := one
	matches := make([]int, n)
	for j := 0; j < n; j++ {
		s := b.Xor(xs[j], carry)
		matches[j] = b.Iff(ys[j], s)
		carry = b.And(xs[j], carry)
	}
	root := b.AndN(matches...)
	if root != len(b.gates)-1 {
		// The output must be the last gate (the paper's convention);
		// a double negation relocates it.
		b.Not(b.Not(root))
	}
	g, err := NewSuccinctGraph(b.MustBuild())
	if err != nil {
		panic(err)
	}
	return g
}

// EmptyGraph returns the succinct representation of the graph with no
// edges on 2ⁿ vertices (trivially 3-colorable).
func EmptyGraph(n int) *SuccinctGraph {
	b := NewBuilder()
	for j := 0; j < 2*n; j++ {
		b.Input()
	}
	x := 0             // first input
	b.And(x, b.Not(x)) // constant false
	g, err := NewSuccinctGraph(b.MustBuild())
	if err != nil {
		panic(err)
	}
	return g
}
