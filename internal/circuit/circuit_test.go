package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func TestBuilderEval(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	b.Or(b.And(x, y), b.Not(x)) // (x∧y) ∨ ¬x  ≡  x→y
	c := b.MustBuild()
	cases := []struct {
		x, y, want bool
	}{
		{false, false, true},
		{false, true, true},
		{true, false, false},
		{true, true, true},
	}
	for _, cse := range cases {
		if got := c.MustEval([]bool{cse.x, cse.y}); got != cse.want {
			t.Errorf("eval(%v,%v) = %v, want %v", cse.x, cse.y, got, cse.want)
		}
	}
}

func TestXorIff(t *testing.T) {
	b := NewBuilder()
	x, y := b.Input(), b.Input()
	b.Xor(x, y)
	c := b.MustBuild()
	for mask := 0; mask < 4; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0}
		if c.MustEval(in) != (in[0] != in[1]) {
			t.Errorf("xor wrong at %v", in)
		}
	}

	b2 := NewBuilder()
	x2, y2 := b2.Input(), b2.Input()
	b2.Iff(x2, y2)
	c2 := b2.MustBuild()
	for mask := 0; mask < 4; mask++ {
		in := []bool{mask&1 != 0, mask&2 != 0}
		if c2.MustEval(in) != (in[0] == in[1]) {
			t.Errorf("iff wrong at %v", in)
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name  string
		gates []Gate
	}{
		{"empty", nil},
		{"forward ref", []Gate{{Kind: In}, {Kind: And, B: 0, C: 2}}},
		{"self ref", []Gate{{Kind: In}, {Kind: And, B: 1, C: 0}}},
		{"not b!=c", []Gate{{Kind: In}, {Kind: Not, B: 0, C: 1}}},
		{"bad kind", []Gate{{Kind: Kind(9)}}},
		{"negative input", []Gate{{Kind: In}, {Kind: Or, B: -1, C: 0}}},
	}
	for _, c := range cases {
		if _, err := New(c.gates); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestEvalArityMismatch(t *testing.T) {
	b := NewBuilder()
	b.Input()
	b.Input()
	c := b.MustBuild()
	if _, err := c.Eval([]bool{true}); err == nil {
		t.Error("no error for wrong input arity")
	}
}

func TestPaperTripleForm(t *testing.T) {
	// Build directly from triples as the paper defines: gates numbered
	// from 0, NOT with b=c.
	c, err := New([]Gate{
		{Kind: In},              // g0 = x
		{Kind: In},              // g1 = y
		{Kind: Not, B: 1, C: 1}, // g2 = ¬y
		{Kind: And, B: 0, C: 2}, // g3 = x ∧ ¬y
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.MustEval([]bool{true, false}) || c.MustEval([]bool{true, true}) {
		t.Error("triple-form circuit wrong")
	}
}

func TestPropToCNFMatchesEval(t *testing.T) {
	// For random circuits, the Tseitin encoding constrained to each
	// input assignment must force the output to the evaluated value.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Random(rng, 3, 6)
		for mask := 0; mask < 8; mask++ {
			in := []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
			want := c.MustEval(in)

			b := cnf.NewBuilder()
			inVars, out := c.ToCNF(b)
			s := sat.FromFormula(b.Formula())
			for i, v := range inVars {
				lit := v
				if !in[i] {
					lit = -v
				}
				s.AddClause(lit)
			}
			if want {
				s.AddClause(-out)
			} else {
				s.AddClause(out)
			}
			// Forcing the output to the wrong value must be UNSAT.
			if s.Solve() != sat.Unsat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCompleteGraph(t *testing.T) {
	for n := 1; n <= 3; n++ {
		g := CompleteGraph(n)
		nv := g.NumVertices()
		for x := 0; x < nv; x++ {
			for y := 0; y < nv; y++ {
				if got := g.HasEdge(x, y); got != (x != y) {
					t.Errorf("n=%d: edge(%d,%d) = %v", n, x, y, got)
				}
			}
		}
		if edges := g.ExplicitEdges(); len(edges) != nv*(nv-1) {
			t.Errorf("n=%d: edge count %d, want %d", n, len(edges), nv*(nv-1))
		}
	}
}

func TestCycleGraph(t *testing.T) {
	for n := 1; n <= 4; n++ {
		g := CycleGraph(n)
		nv := g.NumVertices()
		for x := 0; x < nv; x++ {
			for y := 0; y < nv; y++ {
				want := y == (x+1)%nv
				if got := g.HasEdge(x, y); got != want {
					t.Errorf("n=%d: edge(%d,%d) = %v, want %v", n, x, y, got, want)
				}
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := EmptyGraph(2)
	if edges := g.ExplicitEdges(); len(edges) != 0 {
		t.Errorf("empty graph has %d edges", len(edges))
	}
}

func TestSuccinctGraphOddInputs(t *testing.T) {
	b := NewBuilder()
	b.Input()
	b.Not(0)
	if _, err := NewSuccinctGraph(b.MustBuild()); err == nil {
		t.Error("odd input count accepted")
	}
}

func TestOutputIsLastGate(t *testing.T) {
	// The circuit value must be the last gate even for 1-bit cycles
	// (regression: fold of a single element).
	g := CycleGraph(1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 0) {
		t.Error("1-bit cycle wrong")
	}
}

func TestRandomCircuitsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		c := Random(rng, 2+rng.Intn(4), 1+rng.Intn(10))
		if err := c.Validate(); err != nil {
			t.Fatalf("random circuit invalid: %v", err)
		}
	}
}
