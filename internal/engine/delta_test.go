package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// diamond returns the TC instance over E = {a→b, a→c, b→d, c→d} and its
// inflationary fixpoint state.
func diamond(t *testing.T) (*engine.Instance, engine.State) {
	t.Helper()
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).")
	db := parser.MustFacts("E(a,b). E(a,c). E(b,d). E(c,d).")
	in := engine.MustNew(prog, db)
	return in, semantics.Inflationary(in).State
}

func tup(in *engine.Instance, names ...string) relation.Tuple {
	t := make(relation.Tuple, len(names))
	for i, n := range names {
		id, ok := in.Universe().Lookup(n)
		if !ok {
			panic("unknown constant " + n)
		}
		t[i] = id
	}
	return t
}

// TestApplyCountDerivations checks exact derivation counts: in the
// diamond, s(a,d) has two derivations (through b and through c), every
// other tuple one.
func TestApplyCountDerivations(t *testing.T) {
	in, st := diamond(t)
	cnt := in.ApplyCount(st, st)
	ms := cnt["s"]
	if ms == nil {
		t.Fatal("no counts for s")
	}
	if got := ms.Count(tup(in, "a", "d")); got != 2 {
		t.Errorf("count s(a,d) = %d, want 2", got)
	}
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if got := ms.Count(tup(in, pair[0], pair[1])); got != 1 {
			t.Errorf("count s(%s,%s) = %d, want 1", pair[0], pair[1], got)
		}
	}
}

// TestApplyDeltasPosDriverMatchesApplyDelta checks the generalized
// machinery reproduces the IDB semi-naive primitive it replaced.
func TestApplyDeltasPosDriverMatchesApplyDelta(t *testing.T) {
	in, _ := diamond(t)
	old := in.NewState()
	cur := in.Apply(old) // stage 1: the E edges
	delta := cur.Diff(old)

	want := in.ApplyDelta(old, delta, cur)
	got := in.ApplyDeltas(cur, cur, map[string]engine.Delta{
		"s": {PosDriver: delta["s"], Before: old["s"]},
	})
	if !got.Equal(want) {
		t.Fatalf("ApplyDeltas != ApplyDelta:\ngot  %v\nwant %v",
			got.Format(in.Universe()), want.Format(in.Universe()))
	}
}

// TestApplyDeltasNegDriver: with win(X) :- E(X,Y), !win(Y), a tuple
// entering win must surface exactly the derivations its negation was
// supporting — the disabled-derivations probe of the delete pass.
func TestApplyDeltasNegDriver(t *testing.T) {
	prog := parser.MustProgram("win(X) :- E(X,Y), !win(Y).")
	db := parser.MustFacts("E(a,b). E(b,c). E(c,d).")
	in := engine.MustNew(prog, db)
	empty := in.NewState()

	gained := relation.New(1)
	gained.Add(tup(in, "b"))
	got := in.ApplyDeltas(empty, empty, map[string]engine.Delta{
		"win": {NegDriver: gained},
	})
	want := in.NewState()
	want["win"].Add(tup(in, "a"))
	if !got.Equal(want) {
		t.Fatalf("neg-driver derivations = %v, want %v",
			got.Format(in.Universe()), want.Format(in.Universe()))
	}
}

// TestApplyWithin restricts evaluation to a candidate head set.
func TestApplyWithin(t *testing.T) {
	in, st := diamond(t)
	cand := relation.New(2)
	cand.Add(tup(in, "a", "d"))
	cand.Add(tup(in, "d", "a")) // not derivable
	got := in.ApplyWithin(st, st, map[string]*relation.Relation{"s": cand})
	if got["s"].Len() != 1 || !got["s"].Has(tup(in, "a", "d")) {
		t.Fatalf("ApplyWithin = %v, want exactly s(a,d)", got.Format(in.Universe()))
	}
	// Empty filter: nothing runs.
	if out := in.ApplyWithin(st, st, nil); !out.Empty() {
		t.Fatalf("ApplyWithin(nil) derived %v", out.Format(in.Universe()))
	}
}

// TestApplyDeltasCountExact: inserting the edge b→d into the path
// a→b, a→c, c→d must report exactly the new derivations, each once,
// under the first-driver discipline.
func TestApplyDeltasCountExact(t *testing.T) {
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).")
	db := parser.MustFacts("E(a,b). E(a,c). E(c,d).")
	in := engine.MustNew(prog, db)
	e := in.Database().Relation("E")
	preE := e.Snapshot()
	add := relation.New(2)
	add.Add(tup(in, "b", "d"))
	e.Add(tup(in, "b", "d"))

	// New-state fixpoint for side reads: recompute (small test graph).
	post := semantics.Inflationary(engine.MustNew(prog, in.Database().Clone())).State

	cnt := in.ApplyDeltasCount(post, post, map[string]engine.Delta{
		"E": {PosDriver: add, Before: preE},
	})
	ms := cnt["s"]
	// New derivations using E(b,d): rule1 → s(b,d) once; rule2 with
	// E(b,d) as E(X,Z) needs s(d,y): none.  Derivations of s(a,d) via
	// E(a,b), s(b,d) are NOT driven by the EDB delta (they are driven by
	// the IDB delta s(b,d), a later pass), so they must not be counted.
	if ms == nil || ms.Count(tup(in, "b", "d")) != 1 {
		t.Fatalf("count s(b,d) wrong: %v", ms)
	}
	total := int64(0)
	ms.Each(func(_ relation.Tuple, n int64) bool { total += n; return true })
	if total != 1 {
		t.Fatalf("total driven derivations = %d, want 1", total)
	}
}
