package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/parser"
)

// multiRuleSrc has several rules (and semi-naive variants) so the
// worker pool actually distributes work.
const multiRuleSrc = `
s(X,Y) :- E(X,Y).
s(X,Y) :- E(X,Z), s(Z,Y).
r(X,Y) :- s(X,Y), !E(X,Y).
p(X) :- s(X,X).
q(X) :- E(X,Y), !s(Y,X).
`

// TestApplySplitParallelDeterministic checks the acceptance property of
// the parallel operator: one worker and many workers produce the same
// state, on Θ itself and on the semi-naive delta form.
func TestApplySplitParallelDeterministic(t *testing.T) {
	prog := parser.MustProgram(multiRuleSrc)
	for _, seed := range []int64{1, 2, 3} {
		db := randomEdgeDB(rand.New(rand.NewSource(seed)), 9, 0.25)
		serial := MustNew(prog, db.Clone())
		serial.SetWorkers(1)

		// Build a few stages serially to obtain realistic inputs.
		s0 := serial.NewState()
		s1 := serial.Apply(s0)
		s2Input := s1.Clone()
		s2Input.UnionWith(serial.Apply(s1))

		for _, nw := range []int{2, 4, 8, 16} {
			par := MustNew(prog, db.Clone())
			par.SetWorkers(nw)
			if got, want := par.Apply(s0), serial.Apply(s0); !got.Equal(want) {
				t.Fatalf("seed %d workers %d: Apply(∅) differs\ngot:  %v\nwant: %v",
					seed, nw, got.Preds(), want.Preds())
			}
			if got, want := par.Apply(s2Input), serial.Apply(s2Input); !got.Equal(want) {
				t.Fatalf("seed %d workers %d: Apply differs on stage-2 input", seed, nw)
			}

			delta := s2Input.Diff(s1)
			got := par.ApplyDelta(s1, delta, s2Input)
			want := serial.ApplyDelta(s1, delta, s2Input)
			if !got.Equal(want) {
				t.Fatalf("seed %d workers %d: ApplyDelta differs", seed, nw)
			}
		}
	}
}

// TestParallelFixpointMatchesSerial iterates the inflationary operator
// S ∪ Θ(S) to its fixpoint with different worker counts and compares
// the final states, so the parallelism is exercised across a whole
// evaluation rather than a single application.
func TestParallelFixpointMatchesSerial(t *testing.T) {
	prog := parser.MustProgram(multiRuleSrc)
	db := randomEdgeDB(rand.New(rand.NewSource(7)), 10, 0.2)

	inflate := func(nw int) State {
		in := MustNew(prog, db.Clone())
		in.SetWorkers(nw)
		cur := in.NewState()
		for {
			next := cur.Clone()
			if next.UnionWith(in.Apply(cur)) == 0 {
				return next
			}
			cur = next
		}
	}

	want := inflate(1)
	for _, nw := range []int{2, 3, runtime.GOMAXPROCS(0) + 2} {
		if got := inflate(nw); !got.Equal(want) {
			t.Fatalf("inflationary fixpoint differs with %d workers", nw)
		}
	}
}

// TestConcurrentApplySharedInputs runs many Apply calls concurrently
// against the same instance and input state.  Inputs are only read, so
// this must be race-free (the race job in CI runs this test with -race)
// and every goroutine must get the same answer — it exercises the
// synchronized lazy index build inside Relation from many readers.
func TestConcurrentApplySharedInputs(t *testing.T) {
	prog := parser.MustProgram(multiRuleSrc)
	in := MustNew(prog, randomEdgeDB(rand.New(rand.NewSource(11)), 8, 0.3))
	in.SetWorkers(4)
	base := in.Apply(in.NewState())

	want := in.Apply(base)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := in.Apply(base); !got.Equal(want) {
				errs <- "concurrent Apply returned a different state"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestWorkersKnobs covers the worker accessors: explicit, default, and
// process-wide settings.
func TestWorkersKnobs(t *testing.T) {
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).")
	in := MustNew(prog, pathDB(3))
	if got := in.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default Workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	in.SetWorkers(3)
	if got := in.Workers(); got != 3 {
		t.Errorf("Workers after SetWorkers(3) = %d", got)
	}
	in.SetWorkers(0)
	SetDefaultWorkers(5)
	if got := in.Workers(); got != 5 {
		t.Errorf("Workers under SetDefaultWorkers(5) = %d", got)
	}
	SetDefaultWorkers(0)
	if got := in.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers after reset = %d", got)
	}
}
