package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/relation"
)

// pathDB builds the paper's directed path Lₙ: vertices 1..n, edges
// E(i, i+1).
func pathDB(n int) *relation.Database {
	db := relation.NewDatabase()
	for i := 1; i < n; i++ {
		db.AddFact("E", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	// Make sure vertex n exists even as an isolated endpoint of L₁.
	db.AddConstant(fmt.Sprint(n))
	return db
}

// cycleDB builds the paper's directed cycle Cₙ.
func cycleDB(n int) *relation.Database {
	db := relation.NewDatabase()
	for i := 1; i < n; i++ {
		db.AddFact("E", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	db.AddFact("E", fmt.Sprint(n), "1")
	return db
}

// unary reads a unary relation as a set of constant names.
func unary(db *relation.Database, s State, pred string) map[string]bool {
	out := make(map[string]bool)
	s[pred].Each(func(t relation.Tuple) bool {
		out[db.Universe().Name(t[0])] = true
		return true
	})
	return out
}

const pi1Src = "T(X) :- E(Y,X), !T(Y)."

func TestApplyPi1EmptyState(t *testing.T) {
	// Θ(∅) on π₁: every vertex with an incoming edge enters T, since
	// ¬T(y) holds vacuously.  Paper: Θ(T) = {a : ∃y E(y,a) ∧ ¬T(y)}.
	db := pathDB(4)
	in := MustNew(parser.MustProgram(pi1Src), db)
	got := unary(db, in.Apply(in.NewState()), "T")
	want := map[string]bool{"2": true, "3": true, "4": true}
	if len(got) != len(want) {
		t.Fatalf("Θ(∅) T = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing %s", k)
		}
	}
}

func TestPi1UniqueFixpointOnPath(t *testing.T) {
	// Paper §2: on Lₙ, π₁ has the unique fixpoint {2,4,…}.
	for n := 2; n <= 7; n++ {
		db := pathDB(n)
		in := MustNew(parser.MustProgram(pi1Src), db)
		s := in.NewState()
		for i := 2; i <= n; i += 2 {
			id, ok := db.Universe().Lookup(fmt.Sprint(i))
			if !ok {
				t.Fatalf("vertex %d missing", i)
			}
			s["T"].Add(relation.Tuple{id})
		}
		if !in.IsFixpoint(s) {
			t.Errorf("L%d: even positions not a fixpoint", n)
		}
		// The empty state and the full state are not fixpoints.
		if in.IsFixpoint(in.NewState()) {
			t.Errorf("L%d: empty state is a fixpoint", n)
		}
	}
}

func TestPi1CycleFixpoints(t *testing.T) {
	// Paper §2: on C₄, the two fixpoints are {1,3} and {2,4}; on C₃
	// there is none (exhaustively checked via subsets here; the
	// fixpoint package re-checks via SAT).
	db := cycleDB(4)
	in := MustNew(parser.MustProgram(pi1Src), db)
	count := 0
	u := db.Universe()
	for mask := 0; mask < 16; mask++ {
		s := in.NewState()
		for i := 1; i <= 4; i++ {
			if mask&(1<<(i-1)) != 0 {
				id, _ := u.Lookup(fmt.Sprint(i))
				s["T"].Add(relation.Tuple{id})
			}
		}
		if in.IsFixpoint(s) {
			count++
			odd := unary(db, s, "T")
			if !(odd["1"] && odd["3"] && len(odd) == 2) && !(odd["2"] && odd["4"] && len(odd) == 2) {
				t.Errorf("unexpected fixpoint %v", odd)
			}
		}
	}
	if count != 2 {
		t.Errorf("C4 fixpoint count = %d, want 2", count)
	}

	db3 := cycleDB(3)
	in3 := MustNew(parser.MustProgram(pi1Src), db3)
	for mask := 0; mask < 8; mask++ {
		s := in3.NewState()
		for i := 1; i <= 3; i++ {
			if mask&(1<<(i-1)) != 0 {
				id, _ := db3.Universe().Lookup(fmt.Sprint(i))
				s["T"].Add(relation.Tuple{id})
			}
		}
		if in3.IsFixpoint(s) {
			t.Errorf("C3 has fixpoint mask %b; paper says none", mask)
		}
	}
}

func TestApplyPi2Operator(t *testing.T) {
	// Paper §2 gives Θ for π₂ explicitly; check on a 2-vertex database.
	src := `
S1(X,Y) :- E(X,Y).
S1(X,Y) :- E(X,Z), S1(Z,Y).
S2(X,Y,Z,W) :- S1(X,Y), !S1(Z,W).
`
	db := relation.NewDatabase()
	db.AddFact("E", "a", "b")
	in := MustNew(parser.MustProgram(src), db)

	s := in.NewState()
	out := in.Apply(s)
	// First component: {(a,b)} since S1 is empty.
	if out["S1"].Len() != 1 {
		t.Errorf("Θ(∅).S1 = %v", out["S1"].Format(db.Universe()))
	}
	// Second component: S1 empty means no (x,y) pairs pass the positive
	// literal, so S2 stays empty.
	if out["S2"].Len() != 0 {
		t.Errorf("Θ(∅).S2 len = %d", out["S2"].Len())
	}

	// Now with S1 = {(a,b)}: S2 = {(a,b)} × complement of S1 (4-1=3 pairs).
	s = out
	out2 := in.Apply(s)
	if out2["S2"].Len() != 3 {
		t.Errorf("Θ².S2 len = %d, want 3", out2["S2"].Len())
	}
}

func TestUnsafeToggleRule(t *testing.T) {
	// The paper's toggle T(z) ← ¬T(w) has no fixpoint on any non-empty
	// universe: Θ(∅) = A and Θ(A) = ∅.
	db := relation.NewDatabase()
	db.AddConstant("a")
	db.AddConstant("b")
	in := MustNew(parser.MustProgram("T(Z) :- !T(W)."), db)
	empty := in.NewState()
	full := in.Apply(empty)
	if full["T"].Len() != 2 {
		t.Fatalf("Θ(∅) = %v, want full", full["T"].Format(db.Universe()))
	}
	if got := in.Apply(full); got["T"].Len() != 0 {
		t.Errorf("Θ(A) len = %d, want 0", got["T"].Len())
	}
	if in.IsFixpoint(empty) || in.IsFixpoint(full) {
		t.Error("toggle has a fixpoint")
	}
}

func TestGuardedToggle(t *testing.T) {
	// T(z) ← ¬Q(u), ¬T(w): with Q full, T = ∅ is the unique fixpoint
	// (the paper's key gadget in Theorem 1).
	src := `
Q(X) :- V(X).
T(Z) :- !Q(U), !T(W).
`
	db := relation.NewDatabase()
	db.AddFact("V", "a")
	db.AddFact("V", "b")
	in := MustNew(parser.MustProgram(src), db)
	s := in.NewState()
	s["Q"].Add(relation.Tuple{0})
	s["Q"].Add(relation.Tuple{1})
	if !in.IsFixpoint(s) {
		t.Error("Q=A, T=∅ should be a fixpoint")
	}
	// With Q not full, the toggle fires.
	s2 := in.NewState()
	s2["Q"].Add(relation.Tuple{0})
	if in.IsFixpoint(s2) {
		t.Error("partial Q should not be a fixpoint")
	}
}

func TestConstantsInRule(t *testing.T) {
	// Head and body constants resolve against the universe.
	src := `P(X, b) :- E(X, a).`
	db := relation.NewDatabase()
	db.AddFact("E", "x", "a")
	db.AddFact("E", "y", "c")
	in := MustNew(parser.MustProgram(src), db)
	out := in.Apply(in.NewState())
	if out["P"].Len() != 1 {
		t.Fatalf("P = %v", out["P"].Format(db.Universe()))
	}
	bID, _ := db.Universe().Lookup("b")
	xID, _ := db.Universe().Lookup("x")
	if !out["P"].Has(relation.Tuple{xID, bID}) {
		t.Errorf("P missing (x,b): %v", out["P"].Format(db.Universe()))
	}
}

func TestProgramConstantExtendsUniverse(t *testing.T) {
	// A program constant absent from the data is interned (it joins the
	// active domain), so the head constant resolves.
	db := relation.NewDatabase()
	db.AddFact("E", "x", "a")
	in := MustNew(parser.MustProgram("P(fresh) :- E(X, a)."), db)
	out := in.Apply(in.NewState())
	if out["P"].Len() != 1 {
		t.Errorf("P len = %d", out["P"].Len())
	}
	if _, ok := db.Universe().Lookup("fresh"); !ok {
		t.Error("program constant not interned")
	}
}

func TestEqualityPropagation(t *testing.T) {
	src := `P(X,Y) :- E(X,Z), Y = Z.`
	db := relation.NewDatabase()
	db.AddFact("E", "a", "b")
	in := MustNew(parser.MustProgram(src), db)
	out := in.Apply(in.NewState())
	a, _ := db.Universe().Lookup("a")
	b, _ := db.Universe().Lookup("b")
	if out["P"].Len() != 1 || !out["P"].Has(relation.Tuple{a, b}) {
		t.Errorf("P = %v", out["P"].Format(db.Universe()))
	}
}

func TestInequality(t *testing.T) {
	src := `P(X,Y) :- V(X), V(Y), X != Y.`
	db := relation.NewDatabase()
	db.AddFact("V", "a")
	db.AddFact("V", "b")
	db.AddFact("V", "c")
	in := MustNew(parser.MustProgram(src), db)
	out := in.Apply(in.NewState())
	if out["P"].Len() != 6 {
		t.Errorf("P len = %d, want 6", out["P"].Len())
	}
}

func TestRepeatedVariableInLiteral(t *testing.T) {
	src := `L(X) :- E(X,X).`
	db := relation.NewDatabase()
	db.AddFact("E", "a", "a")
	db.AddFact("E", "a", "b")
	in := MustNew(parser.MustProgram(src), db)
	out := in.Apply(in.NewState())
	if out["L"].Len() != 1 {
		t.Errorf("L = %v", out["L"].Format(db.Universe()))
	}
}

func TestMissingEDBRelationIsEmpty(t *testing.T) {
	src := `P(X) :- V(X), !M(X). Q(X) :- M(X).`
	db := relation.NewDatabase()
	db.AddFact("V", "a")
	in := MustNew(parser.MustProgram(src), db)
	out := in.Apply(in.NewState())
	if out["P"].Len() != 1 {
		t.Errorf("P len = %d (negated missing EDB should hold)", out["P"].Len())
	}
	if out["Q"].Len() != 0 {
		t.Errorf("Q len = %d (positive missing EDB should fail)", out["Q"].Len())
	}
}

func TestZeroArityPredicates(t *testing.T) {
	src := `
flag :- V(X).
P(X) :- V(X), flag.
Q(X) :- V(X), !flag.
`
	db := relation.NewDatabase()
	db.AddFact("V", "a")
	in := MustNew(parser.MustProgram(src), db)
	s0 := in.NewState()
	out := in.Apply(s0)
	if out["flag"].Len() != 1 {
		t.Errorf("flag not derived")
	}
	if out["P"].Len() != 0 || out["Q"].Len() != 1 {
		t.Errorf("round 1: P=%d Q=%d", out["P"].Len(), out["Q"].Len())
	}
	out2 := in.Apply(out)
	if out2["P"].Len() != 1 || out2["Q"].Len() != 0 {
		t.Errorf("round 2: P=%d Q=%d", out2["P"].Len(), out2["Q"].Len())
	}
}

func TestArityConflictWithDatabase(t *testing.T) {
	db := relation.NewDatabase()
	db.AddFact("E", "a")
	if _, err := New(parser.MustProgram("P(X) :- E(X,Y)."), db); err == nil {
		t.Error("arity conflict between program and database not detected")
	}
}

func TestEmptyUniverse(t *testing.T) {
	db := relation.NewDatabase()
	in := MustNew(parser.MustProgram("T(Z) :- !T(W)."), db)
	out := in.Apply(in.NewState())
	if out["T"].Len() != 0 {
		t.Errorf("empty universe derived tuples: %d", out["T"].Len())
	}
	if !in.IsFixpoint(in.NewState()) {
		t.Error("∅ should be a fixpoint on the empty universe")
	}
}

func TestBodylessRuleWithVariables(t *testing.T) {
	// A bodyless rule with head variables ranges over the universe —
	// the active-domain convention Theorem 4's IN-gate rules rely on.
	db := relation.NewDatabase()
	db.AddConstant("0")
	db.AddConstant("1")
	in := MustNew(parser.MustProgram("G(Z1, 1, Z2)."), db)
	out := in.Apply(in.NewState())
	if out["G"].Len() != 4 {
		t.Errorf("G len = %d, want 4 (2 values × 2 free vars)", out["G"].Len())
	}
}

func TestApplyDeltaEquivalence(t *testing.T) {
	// One inflationary stage computed semi-naively must agree with the
	// naive stage on new tuples.
	src := `
S(X,Y) :- E(X,Y).
S(X,Y) :- E(X,Z), S(Z,Y).
`
	db := cycleDB(5)
	in := MustNew(parser.MustProgram(src), db)

	prev := in.NewState()
	cur := in.Apply(prev) // stage 1
	delta := cur.Clone()

	for round := 0; round < 10; round++ {
		naive := in.Apply(cur)
		naiveNew := naive.Diff(cur)
		semi := in.ApplyDelta(prev, delta, cur)
		semiNew := semi.Diff(cur)
		if !naiveNew.Equal(semiNew) {
			t.Fatalf("round %d: semi-naive differs\nnaive: %v\nsemi: %v",
				round, naiveNew.Format(db.Universe()), semiNew.Format(db.Universe()))
		}
		if naiveNew.Empty() {
			break
		}
		prev = cur.Clone()
		cur.UnionWith(naiveNew)
		delta = naiveNew
	}
}

func TestApplySplit(t *testing.T) {
	// Negatives resolved against a separate state.
	db := pathDB(3)
	in := MustNew(parser.MustProgram(pi1Src), db)
	pos := in.NewState()
	negFull := in.FullState()
	// With neg = full, ¬T(y) always fails, so nothing derives.
	if got := in.ApplySplit(pos, negFull); got["T"].Len() != 0 {
		t.Errorf("ApplySplit with full neg derived %d tuples", got["T"].Len())
	}
	// With neg = ∅, every target of an edge derives.
	if got := in.ApplySplit(pos, in.NewState()); got["T"].Len() != 2 {
		t.Errorf("ApplySplit with empty neg derived %d tuples, want 2", got["T"].Len())
	}
}

func TestFullState(t *testing.T) {
	db := pathDB(3)
	in := MustNew(parser.MustProgram(pi1Src), db)
	fs := in.FullState()
	if fs["T"].Len() != db.Universe().Size() {
		t.Errorf("FullState T len = %d", fs["T"].Len())
	}
}

// randomEdgeDB builds a random digraph database over n vertices.
func randomEdgeDB(rng *rand.Rand, n int, p float64) *relation.Database {
	db := relation.NewDatabase()
	for i := 0; i < n; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < p {
				db.AddFact("E", fmt.Sprint(i), fmt.Sprint(j))
			}
		}
	}
	return db
}

func TestPropSemiNaiveMatchesNaive(t *testing.T) {
	// Over random graphs and a program mixing recursion and negation
	// through EDB, semi-naive inflationary stages must match naive.
	src := `
S(X,Y) :- E(X,Y).
S(X,Y) :- E(X,Z), S(Z,Y).
P(X,Y) :- S(X,Y), !E(X,Y).
R(X) :- S(X,X), P(X,Y).
`
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomEdgeDB(rng, 5, 0.3)
		in := MustNew(parser.MustProgram(src), db)

		prev := in.NewState()
		cur := in.Apply(prev)
		delta := cur.Clone()
		for {
			naiveNew := in.Apply(cur).Diff(cur)
			semiNew := in.ApplyDelta(prev, delta, cur).Diff(cur)
			if !naiveNew.Equal(semiNew) {
				return false
			}
			if naiveNew.Empty() {
				return true
			}
			prev = cur.Clone()
			cur.UnionWith(naiveNew)
			delta = naiveNew
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropThetaDeterministic(t *testing.T) {
	// Θ computed twice on the same inputs is identical (no hidden
	// iteration-order dependence).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomEdgeDB(rng, 4, 0.4)
		in := MustNew(parser.MustProgram(pi1Src), db)
		s := in.NewState()
		for v := 0; v < db.Universe().Size(); v++ {
			if rng.Intn(2) == 0 {
				s["T"].Add(relation.Tuple{v})
			}
		}
		return in.Apply(s).Equal(in.Apply(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
