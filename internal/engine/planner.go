// planner.go — ordering and access-path selection for rule bodies.
//
// Planning happens at evaluation time, once per (rule, task): the
// planner sees the actual relations each positive literal will read —
// including the small delta relations substituted by the semi-naive
// variants — so join orders are re-costed every fixpoint round.  Each
// chosen join is compiled into an access path (the widest composite
// index covering its bound argument positions, or a scan) plus a flat
// array of bind/check micro-ops executed per candidate tuple; the
// micro-ops replace the generic per-tuple matching closure, so the
// probe loop allocates nothing.
//
// The cost model is the textbook independence estimate: joining a
// literal whose relation holds |R| tuples with bound columns B is
// expected to match |R| / Π_{c∈B} distinct(R, c) tuples.  The greedy
// planner repeatedly picks the literal with the smallest estimate
// (ties to program order), which starts rules at their most selective
// literal — in particular at a semi-naive delta relation when one is
// present.  Comparison and negation checks run as soon as their
// variables are bound, equality propagation and universe enumeration
// bind whatever remains, exactly as before: only the join order and
// access paths changed, so the derived set is identical.
//
// SetCostPlanner(false) (or -planner=false in the CLIs) restores the
// legacy strategy — syntactic most-bound-first order and a single-column
// probe with per-tuple filtering — which the property tests use as the
// oracle and the benchmarks as the ablation baseline.
package engine

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/relation"
)

// stepKind enumerates the operations of a rule's evaluation plan.
type stepKind int

const (
	stepJoin   stepKind = iota // join the idx-th positive literal
	stepExtend                 // enumerate the universe for variable idx
	stepBindEq                 // bind a variable via the idx-th equality
	stepCmp                    // check the idx-th comparison
	stepNeg                    // check the idx-th negated literal
)

// execStep is one operation of a compiled plan; idx indexes into the
// rule-plan component named by kind, and join carries the compiled
// access path for stepJoin.
type execStep struct {
	kind stepKind
	idx  int
	join *joinExec
}

// execPlan is a rule body ordered and compiled against the concrete
// relations of one evaluation task.
type execPlan struct {
	steps []execStep
}

// opKind enumerates the per-tuple micro-ops of a join.
type opKind uint8

const (
	opBind       opKind = iota // binding[arg] = t[col]
	opCheckVar                 // require t[col] == binding[arg]
	opCheckConst               // require t[col] == arg
)

// joinOp is one bind or check against a candidate tuple.
type joinOp struct {
	kind opKind
	col  int32
	arg  int32
}

// joinExec is the compiled form of one join step: how to enumerate
// candidate tuples and what to do with each.
type joinExec struct {
	lit       int      // index into rulePlan.positives
	probeCols []int    // bound columns probed via an index; empty = scan
	probeSrc  []slot   // value sources for probeCols
	probeVals []int    // scratch buffer filled per execution
	ops       []joinOp // per-tuple micro-ops, in column order
	bindVars  []int    // variables newly bound by this literal
	relLen    int      // relation size at plan time (for explain)
	est       float64  // estimated matching tuples (for cost/explain)
	// shardLo/shardHi restrict the literal's enumeration to the arena
	// offsets [shardLo, shardHi) — one shard of an intra-rule split.
	// shardHi == 0 means the whole relation.
	shardLo, shardHi int32
}

// estimateJoin scores a candidate join under the current bound set:
// the expected number of tuples matching the bound columns, assuming
// independent uniformly distributed columns.
func estimateJoin(rel *relation.Relation, lp litPlan, bound []bool) float64 {
	est := float64(rel.Len())
	if est == 0 {
		return 0
	}
	for j, s := range lp.slots {
		if s.isConst || bound[s.val] {
			if d := rel.Distinct(j); d > 1 {
				est /= float64(d)
			}
		}
	}
	return est
}

// compileJoin lowers one join into an access path plus micro-ops.
// With wide set, every bound column joins the composite-index probe;
// otherwise only the first bound column is probed (the legacy access
// path) and the rest become per-tuple checks.  Unbound variables
// compile to binds on first occurrence and checks on repeats.
func compileJoin(rp *rulePlan, lit int, rel *relation.Relation, bound []bool, wide bool) *joinExec {
	lp := rp.positives[lit]
	je := &joinExec{lit: lit, relLen: rel.Len(), est: estimateJoin(rel, lp, bound)}
	newly := make([]bool, rp.nvars)
	for j, s := range lp.slots {
		switch {
		case s.isConst || bound[s.val]:
			if wide || len(je.probeCols) == 0 {
				je.probeCols = append(je.probeCols, j)
				je.probeSrc = append(je.probeSrc, s)
			} else if s.isConst {
				je.ops = append(je.ops, joinOp{opCheckConst, int32(j), int32(s.val)})
			} else {
				je.ops = append(je.ops, joinOp{opCheckVar, int32(j), int32(s.val)})
			}
		case newly[s.val]:
			je.ops = append(je.ops, joinOp{opCheckVar, int32(j), int32(s.val)})
		default:
			newly[s.val] = true
			je.ops = append(je.ops, joinOp{opBind, int32(j), int32(s.val)})
			je.bindVars = append(je.bindVars, s.val)
		}
	}
	if len(je.probeCols) > 0 {
		je.probeVals = make([]int, len(je.probeCols))
	}
	return je
}

// firstJoinPick returns the positive literal the planner would join
// first under an empty binding — the enumeration that drives the whole
// rule, and therefore the literal an intra-rule shard split partitions
// when no semi-naive delta identifies the driver.  It replicates the
// first iteration of buildExec's join phase exactly.
func firstJoinPick(rp *rulePlan, rels []*relation.Relation, costBased bool) int {
	best := -1
	if costBased {
		bound := make([]bool, rp.nvars)
		bestCost := math.Inf(1)
		for i, lp := range rp.positives {
			if c := estimateJoin(rels[i], lp, bound); c < bestCost {
				best, bestCost = i, c
			}
		}
		return best
	}
	bestScore := -1
	for i, lp := range rp.positives {
		score := 0
		for _, s := range lp.slots {
			if s.isConst {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// buildExec orders the rule body into an executable plan against the
// concrete relations rels (parallel to rp.positives) and compiles each
// join.  costBased selects cardinality-estimate ordering with wide
// composite probes; false reproduces the legacy syntactic
// most-bound-first order with single-column probes.
//
// When the evaluation task is one shard of an intra-rule split, shard
// names the literal whose enumeration is restricted to the arena range
// [shardLo, shardHi): that literal is forced to the front of the join
// order (the split partitions the rule's driving enumeration, so every
// derivation belongs to exactly one shard) and its compiled join carries
// the range.  shard < 0 compiles the unrestricted plan.
func buildExec(rp *rulePlan, rels []*relation.Relation, costBased bool, shard int, shardLo, shardHi int32) *execPlan {
	bound := make([]bool, rp.nvars)
	usedPos := make([]bool, len(rp.positives))
	usedCmp := make([]bool, len(rp.cmps))
	usedNeg := make([]bool, len(rp.negatives))
	ep := &execPlan{}

	slotBound := func(s slot) bool { return s.isConst || bound[s.val] }
	allBound := func(slots []slot) bool {
		for _, s := range slots {
			if !slotBound(s) {
				return false
			}
		}
		return true
	}
	bindSlots := func(slots []slot) {
		for _, s := range slots {
			if !s.isConst {
				bound[s.val] = true
			}
		}
	}
	// addChecks appends every comparison/negation check whose variables
	// have just become bound.  Comparisons first: they are cheaper.
	addChecks := func() {
		for i, c := range rp.cmps {
			if !usedCmp[i] && slotBound(c.left) && slotBound(c.right) {
				usedCmp[i] = true
				ep.steps = append(ep.steps, execStep{kind: stepCmp, idx: i})
			}
		}
		for i, n := range rp.negatives {
			if !usedNeg[i] && allBound(n.slots) {
				usedNeg[i] = true
				ep.steps = append(ep.steps, execStep{kind: stepNeg, idx: i})
			}
		}
	}
	addChecks()

	// Join phase: repeatedly pick the cheapest (cost-based) or
	// most-bound (legacy) positive literal; ties go to program order.
	for remaining := len(rp.positives); remaining > 0; remaining-- {
		best := -1
		if shard >= 0 && !usedPos[shard] {
			best = shard // forced first: the shard range partitions this enumeration
		} else if costBased {
			bestCost := math.Inf(1)
			for i, lp := range rp.positives {
				if usedPos[i] {
					continue
				}
				if c := estimateJoin(rels[i], lp, bound); c < bestCost {
					best, bestCost = i, c
				}
			}
		} else {
			bestScore := -1
			for i, lp := range rp.positives {
				if usedPos[i] {
					continue
				}
				score := 0
				for _, s := range lp.slots {
					if slotBound(s) {
						score++
					}
				}
				if score > bestScore {
					best, bestScore = i, score
				}
			}
		}
		usedPos[best] = true
		je := compileJoin(rp, best, rels[best], bound, costBased)
		if best == shard {
			je.shardLo, je.shardHi = shardLo, shardHi
		}
		ep.steps = append(ep.steps, execStep{kind: stepJoin, idx: best, join: je})
		bindSlots(rp.positives[best].slots)
		addChecks()
	}

	// Extension phase: bind leftover variables, preferring equality
	// propagation over universe enumeration.
	for v := 0; v < rp.nvars; v++ {
		if bound[v] {
			continue
		}
		eq := -1
		for i, c := range rp.cmps {
			if c.neq || usedCmp[i] {
				continue
			}
			l, r := c.left, c.right
			if !l.isConst && l.val == v && slotBound(r) {
				eq = i
				break
			}
			if !r.isConst && r.val == v && slotBound(l) {
				eq = i
				break
			}
		}
		if eq >= 0 {
			usedCmp[eq] = true
			ep.steps = append(ep.steps, execStep{kind: stepBindEq, idx: eq})
		} else {
			ep.steps = append(ep.steps, execStep{kind: stepExtend, idx: v})
		}
		bound[v] = true
		addChecks()
	}
	return ep
}

// defaultPlannerOff is the process-wide planner default applied to
// instances that never called SetCostPlanner, mirroring defaultWorkers:
// drivers like cmd/bench toggle it for instances they do not construct.
var defaultPlannerOff atomic.Bool

// SetDefaultCostPlanner sets the process-wide default for instances
// without an explicit SetCostPlanner call.  The planner is on by
// default.
//
// Deprecated: prefer Options.Planner per call; this setter remains as
// the fallback a ToggleDefault resolves to.
func SetDefaultCostPlanner(on bool) { defaultPlannerOff.Store(!on) }

// SetCostPlanner fixes this instance's planning strategy: true selects
// cost-based join ordering with composite-index access paths, false the
// legacy syntactic order with single-column probes.  Both strategies
// derive exactly the same relations; only evaluation cost differs.
func (in *Instance) SetCostPlanner(on bool) { in.planner = ToggleOf(on) }

// CostPlanner reports the effective planning strategy: the value set
// with SetCostPlanner, else the process default, else on.
func (in *Instance) CostPlanner() bool { return in.planner.Enabled(!defaultPlannerOff.Load()) }

// relFor resolves the relation a literal reads during Explain: the
// database for EDB predicates, s for IDB ones (empty when s lacks the
// predicate).
func (in *Instance) relFor(pred string, idb bool, s State) *relation.Relation {
	if !idb {
		return in.edbRel(pred)
	}
	if r := s[pred]; r != nil {
		return r
	}
	return in.empties[in.arities[pred]]
}

// slotString renders a slot with the rule's variable names and the
// universe's constant names.
func (rp *rulePlan) slotString(s slot, u *relation.Universe) string {
	if s.isConst {
		return u.Name(s.val)
	}
	return rp.varNames[s.val]
}

func (rp *rulePlan) atomString(pred string, slots []slot, u *relation.Universe) string {
	out := pred
	if len(slots) == 0 {
		return out
	}
	out += "("
	for i, s := range slots {
		if i > 0 {
			out += ","
		}
		out += rp.slotString(s, u)
	}
	return out + ")"
}

// Explain writes every rule's evaluation plan against the database and
// the IDB relations of s: the chosen literal order, the access path of
// each join (scan, or the probed index columns), and the planner's
// cardinality estimates.  Passing the state of a finished evaluation
// shows the steady-state plans; passing NewState() shows the first
// round.  The output reflects the instance's planner setting.
func (in *Instance) Explain(w io.Writer, s State) {
	u := in.db.Universe()
	mode := "cost-based"
	if !in.CostPlanner() {
		mode = "syntactic"
	}
	for ri, rp := range in.plans {
		fmt.Fprintf(w, "rule %d [%s]: %s\n", ri+1, mode, rp.src.String())
		rels := make([]*relation.Relation, len(rp.positives))
		for i, lp := range rp.positives {
			rels[i] = in.relFor(lp.pred, lp.idb, s)
		}
		ep := buildExec(rp, rels, in.CostPlanner(), -1, 0, 0)
		for _, st := range ep.steps {
			switch st.kind {
			case stepJoin:
				je := st.join
				lp := rp.positives[st.idx]
				path := "scan"
				if len(je.probeCols) > 0 {
					path = fmt.Sprintf("index%v", je.probeCols)
				}
				fmt.Fprintf(w, "  join  %-24s %-10s |rel|=%-8d est=%.3g\n",
					rp.atomString(lp.pred, lp.slots, u), path, je.relLen, je.est)
			case stepNeg:
				np := rp.negatives[st.idx]
				fmt.Fprintf(w, "  check ¬%s\n", rp.atomString(np.pred, np.slots, u))
			case stepCmp:
				c := rp.cmps[st.idx]
				op := "="
				if c.neq {
					op = "≠"
				}
				fmt.Fprintf(w, "  check %s %s %s\n", rp.slotString(c.left, u), op, rp.slotString(c.right, u))
			case stepBindEq:
				c := rp.cmps[st.idx]
				fmt.Fprintf(w, "  bind  %s = %s\n", rp.slotString(c.left, u), rp.slotString(c.right, u))
			case stepExtend:
				fmt.Fprintf(w, "  enumerate %s over universe (%d)\n", rp.varNames[st.idx], u.Size())
			}
		}
	}
}
