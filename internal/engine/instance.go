package engine

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/relation"
)

// slot is a compiled term: either a constant (resolved to a universe
// id) or a variable (an index into the rule's binding array).
type slot struct {
	isConst bool
	val     int // universe id if isConst, else variable index
}

// litPlan is a compiled positive body literal.
type litPlan struct {
	pred  string
	idb   bool
	slots []slot
}

// negPlan is a compiled negated body literal.
type negPlan struct {
	pred  string
	idb   bool
	slots []slot
}

// cmpPlan is a compiled equality or inequality constraint.
type cmpPlan struct {
	neq         bool
	left, right slot
}

// rulePlan is a rule compiled against a specific universe.  Ordering
// and access-path selection are not part of the compiled form: they
// happen per evaluation task in planner.go, where the planner can see
// the concrete relations (and hence sizes) each literal reads.
type rulePlan struct {
	src       ast.Rule
	headPred  string
	headSlots []slot
	nvars     int
	varNames  []string // variable index -> source name (for Explain)
	positives []litPlan
	negatives []negPlan
	cmps      []cmpPlan
}

// Instance binds a validated program to a database, compiling every
// rule into an evaluation plan.  Program constants are interned into
// the database universe at construction (they become part of the
// active domain, as in the paper's Theorem 4 where the domain is the
// program's {0,1}).
type Instance struct {
	prog    *ast.Program
	db      *relation.Database
	arities map[string]int
	idb     map[string]bool
	plans   []*rulePlan
	empties map[int]*relation.Relation // canonical empty relation per arity
	// nworkers is the worker-pool size for ApplySplit/ApplyDeltaSplit;
	// 0 means GOMAXPROCS.  See SetWorkers.
	nworkers int
	// planner selects the join-planning strategy.  See SetCostPlanner.
	planner Toggle
	// frontier selects fused dedup-at-emit derivation for the Frontier
	// entry points; off restores the derive+Diff oracle.  See SetFrontier.
	frontier Toggle
	// sharding allows intra-rule data parallelism: splitting a task's
	// driver relation into arena-range shards when tasks < workers.  See
	// SetSharding.
	sharding Toggle
	// nparts is the partitioned-evaluation width for the semi-naive
	// fixpoint loops; 0 follows the process default.  See SetPartitions.
	nparts int
	// exchFilter selects the Bloom prefilter on the partition exchange
	// path.  See SetExchangeFilter.
	exchFilter Toggle
	// frontFilter selects the Bloom prefilter on the unpartitioned
	// frontier path.  See SetFrontierFilter.
	frontFilter Toggle
}

// New compiles prog against db.  It returns an error if the program
// fails validation.  The database universe is extended with the
// program's constants.
func New(prog *ast.Program, db *relation.Database) (*Instance, error) {
	arities, err := prog.Validate()
	if err != nil {
		return nil, err
	}
	// EDB relations present in the database must match program arities.
	for pred, ar := range arities {
		if r := db.Relation(pred); r != nil && r.Arity() != ar {
			return nil, fmt.Errorf("relation %s has arity %d in the database but %d in the program",
				pred, r.Arity(), ar)
		}
	}
	in := &Instance{
		prog:    prog,
		db:      db,
		arities: arities,
		idb:     prog.IDB(),
		empties: make(map[int]*relation.Relation),
	}
	// Canonical empty relations are precomputed for every program
	// arity: edbRel runs concurrently on the evaluation worker pool,
	// so it must never mutate instance state.  (The scratch and
	// relation freelists it draws on are process-global — see eval.go.)
	for _, ar := range arities {
		if _, ok := in.empties[ar]; !ok {
			in.empties[ar] = relation.New(ar)
		}
	}
	for _, r := range prog.Rules {
		in.plans = append(in.plans, in.compile(r))
	}
	return in, nil
}

// MustNew is New but panics on error.
func MustNew(prog *ast.Program, db *relation.Database) *Instance {
	in, err := New(prog, db)
	if err != nil {
		panic("engine: " + err.Error())
	}
	return in
}

// Program returns the bound program.
func (in *Instance) Program() *ast.Program { return in.prog }

// Database returns the bound database.
func (in *Instance) Database() *relation.Database { return in.db }

// Universe returns the bound database's universe.
func (in *Instance) Universe() *relation.Universe { return in.db.Universe() }

// IDB reports whether pred is an IDB predicate of the program.
func (in *Instance) IDB(pred string) bool { return in.idb[pred] }

// Arity returns the arity of a program predicate (0 if unknown).
func (in *Instance) Arity(pred string) int { return in.arities[pred] }

// IDBPreds returns the IDB predicate names, sorted.
func (in *Instance) IDBPreds() []string { return in.prog.IDBList() }

// NewState returns a state with an empty relation for every IDB
// predicate.
func (in *Instance) NewState() State {
	s := make(State)
	for pred := range in.idb {
		s[pred] = relation.New(in.arities[pred])
	}
	return s
}

// FullState returns the state assigning Aᵏ to every IDB predicate —
// the top element of the state lattice (used by the well-founded
// alternating fixpoint).
func (in *Instance) FullState() State {
	n := in.db.Universe().Size()
	s := make(State)
	for pred := range in.idb {
		s[pred] = relation.Full(in.arities[pred], n)
	}
	return s
}

// edbRel returns the database relation for an EDB predicate, or a
// canonical empty relation if the database does not mention it.  It is
// called from evaluation workers and therefore only reads.
func (in *Instance) edbRel(pred string) *relation.Relation {
	if r := in.db.Relation(pred); r != nil {
		return r
	}
	return in.empties[in.arities[pred]]
}

// compile builds the evaluation plan for one rule.
func (in *Instance) compile(r ast.Rule) *rulePlan {
	vars := r.Vars()
	varIdx := make(map[string]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}
	mkSlot := func(t ast.Term) slot {
		if t.IsVar() {
			return slot{val: varIdx[t.Name]}
		}
		return slot{isConst: true, val: in.db.Universe().Intern(t.Name)}
	}
	mkSlots := func(a ast.Atom) []slot {
		out := make([]slot, len(a.Args))
		for i, t := range a.Args {
			out[i] = mkSlot(t)
		}
		return out
	}

	rp := &rulePlan{
		src:      r,
		headPred: r.Head.Pred,
		nvars:    len(vars),
		varNames: vars,
	}
	rp.headSlots = mkSlots(r.Head)
	for _, l := range r.Body {
		switch l.Kind {
		case ast.LitPos:
			rp.positives = append(rp.positives, litPlan{
				pred: l.Atom.Pred, idb: in.idb[l.Atom.Pred], slots: mkSlots(l.Atom)})
		case ast.LitNeg:
			rp.negatives = append(rp.negatives, negPlan{
				pred: l.Atom.Pred, idb: in.idb[l.Atom.Pred], slots: mkSlots(l.Atom)})
		case ast.LitEq:
			rp.cmps = append(rp.cmps, cmpPlan{left: mkSlot(l.Left), right: mkSlot(l.Right)})
		case ast.LitNeq:
			rp.cmps = append(rp.cmps, cmpPlan{neq: true, left: mkSlot(l.Left), right: mkSlot(l.Right)})
		}
	}
	return rp
}
