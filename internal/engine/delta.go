// delta.go — generalized delta evaluation for incremental maintenance.
//
// The semi-naive loop, counting maintenance, and DRed-style
// delete/rederive all need the same primitive: "the derivations of
// Θ whose body touches a given change", for changes to arbitrary
// predicates (EDB or IDB), driving positive literals (a tuple the
// literal can newly/no-longer read) or negated literals (a tuple whose
// arrival/departure flips the check).  ApplyDeltas generalizes
// ApplyDelta to that primitive; ApplyWithin restricts evaluation to a
// candidate head set (the rederivation step of DRed); the *Count
// variants return exact derivation counts (the counting algorithm).
//
// Each qualifying derivation is enumerated exactly once: the literal
// positions a change can drive are ordered (positives in body order,
// then negatives), and the variant whose driver is at position v forces
// positions before v to be non-drivers.  "Non-driver" reads come from
// the Delta's Before/BeforeNeg relations when the caller provides them
// — exact counting needs them — and fall back to the after-driver
// relations otherwise, which can enumerate a derivation once per driver
// it contains; harmless for set-valued passes.
package engine

import "repro/internal/relation"

// Delta describes how one predicate participates in a delta pass.  Any
// field may be nil.  For a positive literal over the predicate, the
// evaluation reads PosDriver at the driver position, Before strictly
// before it, and After (or, when nil, the instance's default resolution
// through the pos state / database) after it.  For a negated literal,
// NegDriver is joined as if the literal were positive at the driver
// position — the tuples whose arrival or departure flips the check —
// while non-driver positions check the literal against BeforeNeg /
// AfterNeg (or the default resolution when nil).
type Delta struct {
	PosDriver *relation.Relation
	NegDriver *relation.Relation
	Before    *relation.Relation
	BeforeNeg *relation.Relation
	After     *relation.Relation
	AfterNeg  *relation.Relation
}

// ApplyDeltas returns the tuples derivable by rule applications driven
// by at least one delta: a PosDriver tuple read by a positive literal,
// or a NegDriver tuple matched by a negated literal (which is then
// evaluated as a join over the driver set instead of a check).
// Literals of predicates without a Delta entry resolve as in ApplySplit:
// positive IDB literals against pos, negated IDB literals against neg,
// EDB literals against the database.
func (in *Instance) ApplyDeltas(pos, neg State, deltas map[string]Delta) State {
	return in.runTasks(in.deltaTasks(deltas), pos, neg, runOpts{shard: true})
}

// ApplyDeltasCount is ApplyDeltas in counting mode: it returns, per
// head predicate, each derived tuple with the number of distinct
// driven derivations.  Counts are exact when every Delta carries the
// Before/BeforeNeg relations making the first-driver discipline strict.
func (in *Instance) ApplyDeltasCount(pos, neg State, deltas map[string]Delta) map[string]*relation.Multiset {
	return in.runTasksCount(in.deltaTasks(deltas), pos, neg)
}

// ApplyCount evaluates every rule against (pos, neg) like ApplySplit,
// but returns derivation counts: for each derivable tuple, the number
// of distinct rule-body embeddings deriving it.  This is the initial
// support count of the counting maintenance algorithm.
func (in *Instance) ApplyCount(pos, neg State) map[string]*relation.Multiset {
	return in.runTasksCount(in.fullTasks(), pos, neg)
}

// ApplyWithin evaluates the rules whose head predicate appears in
// filter, restricted to derivations whose head tuple lies in the
// corresponding filter relation — the rederivation step of DRed.  The
// restriction is compiled as an extra positive literal over the head's
// argument slots, so the join planner starts from the (small) filter
// set and evaluates the body with the head variables bound.
func (in *Instance) ApplyWithin(pos, neg State, filter map[string]*relation.Relation) State {
	var tasks []evalTask
	for _, rp := range in.plans {
		f := filter[rp.headPred]
		if f == nil || f.Empty() {
			continue
		}
		rp2 := &rulePlan{
			src:       rp.src,
			headPred:  rp.headPred,
			headSlots: rp.headSlots,
			nvars:     rp.nvars,
			varNames:  rp.varNames,
			negatives: rp.negatives,
			cmps:      rp.cmps,
		}
		rp2.positives = make([]litPlan, len(rp.positives), len(rp.positives)+1)
		copy(rp2.positives, rp.positives)
		rp2.positives = append(rp2.positives, litPlan{pred: rp.headPred, slots: rp.headSlots})
		tasks = append(tasks, evalTask{
			rp:     rp2,
			pos:    map[int]*relation.Relation{len(rp2.positives) - 1: f},
			driver: len(rp2.positives) - 1,
		})
	}
	return in.runTasks(tasks, pos, neg, runOpts{shard: true})
}

// flipNeg returns a variant of rp where the j-th negated literal is
// evaluated as a positive join (its relation supplied by an override on
// the returned literal index) and dropped from the negation checks.
func flipNeg(rp *rulePlan, j int) (*rulePlan, int) {
	np := rp.negatives[j]
	rp2 := &rulePlan{
		src:       rp.src,
		headPred:  rp.headPred,
		headSlots: rp.headSlots,
		nvars:     rp.nvars,
		varNames:  rp.varNames,
		cmps:      rp.cmps,
	}
	rp2.positives = make([]litPlan, len(rp.positives), len(rp.positives)+1)
	copy(rp2.positives, rp.positives)
	rp2.positives = append(rp2.positives, litPlan{pred: np.pred, idb: np.idb, slots: np.slots})
	rp2.negatives = make([]negPlan, 0, len(rp.negatives)-1)
	rp2.negatives = append(rp2.negatives, rp.negatives[:j]...)
	rp2.negatives = append(rp2.negatives, rp.negatives[j+1:]...)
	return rp2, len(rp2.positives) - 1
}

// deltaTasks compiles the (rule, driver-position) variants of a delta
// pass.  Positions are ranked positives-then-negatives in body order;
// the variant with its driver at rank v overrides earlier
// delta-predicate positions with their Before/BeforeNeg relations and
// later ones with After/AfterNeg, nil falling through as documented on
// Delta.
func (in *Instance) deltaTasks(deltas map[string]Delta) []evalTask {
	var tasks []evalTask
	for _, rp := range in.plans {
		type driver struct {
			flip bool // negated-literal driver
			idx  int  // literal index within its kind
			rank int  // global position rank
		}
		var drivers []driver
		for i, lp := range rp.positives {
			if d, ok := deltas[lp.pred]; ok && d.PosDriver != nil {
				drivers = append(drivers, driver{idx: i, rank: i})
			}
		}
		for j, np := range rp.negatives {
			if d, ok := deltas[np.pred]; ok && d.NegDriver != nil {
				drivers = append(drivers, driver{flip: true, idx: j, rank: len(rp.positives) + j})
			}
		}
		for _, dv := range drivers {
			rp2 := rp
			flipIdx := -1
			if dv.flip {
				rp2, flipIdx = flipNeg(rp, dv.idx)
			}
			driverLit := dv.idx // positive-literal index of the driver
			if dv.flip {
				driverLit = flipIdx
			}
			posOv := make(map[int]*relation.Relation)
			negOv := make(map[int]*relation.Relation)
			for i, lp := range rp.positives {
				d, ok := deltas[lp.pred]
				if !ok {
					continue
				}
				switch {
				case !dv.flip && i == dv.idx:
					posOv[i] = d.PosDriver
				case i < dv.rank:
					if r := coalesce(d.Before, d.After); r != nil {
						posOv[i] = r
					}
				default:
					if d.After != nil {
						posOv[i] = d.After
					}
				}
			}
			for j, np := range rp.negatives {
				if dv.flip && j == dv.idx {
					continue
				}
				d, ok := deltas[np.pred]
				if !ok {
					continue
				}
				j2 := j
				if dv.flip && j > dv.idx {
					j2 = j - 1
				}
				if len(rp.positives)+j < dv.rank {
					if r := coalesce(d.BeforeNeg, d.AfterNeg); r != nil {
						negOv[j2] = r
					}
				} else if d.AfterNeg != nil {
					negOv[j2] = d.AfterNeg
				}
			}
			if dv.flip {
				posOv[flipIdx] = deltas[rp.negatives[dv.idx].pred].NegDriver
			}
			tasks = append(tasks, evalTask{rp: rp2, pos: posOv, neg: negOv, driver: driverLit})
		}
	}
	return tasks
}

// coalesce returns the first non-nil relation.
func coalesce(a, b *relation.Relation) *relation.Relation {
	if a != nil {
		return a
	}
	return b
}
