package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
)

// concatBuckets reassembles owner buckets into one state, checking on
// the way that every tuple landed in the bucket its hash owns.
func concatBuckets(t *testing.T, in *Instance, parts []State) State {
	t.Helper()
	k := uint64(len(parts))
	whole := in.NewState()
	for b, st := range parts {
		for pred, r := range st {
			r.Each(func(tp relation.Tuple) bool {
				if own := int(relation.TupleHash(tp) % k); own != b {
					t.Fatalf("%s tuple %v in bucket %d, owned by %d", pred, tp, b, own)
				}
				return true
			})
			whole[pred].UnionWith(r)
		}
	}
	return whole
}

// TestPropPartsMatchUnpartitioned: over randomized programs, worker
// counts, frontier settings, and filter settings, the owner buckets of
// ApplyDeltaSplitFrontierParts concatenate to exactly what the
// unpartitioned ApplyDeltaSplitFrontier returns on the same inputs —
// the engine-level half of the partitioned bit-exactness contract.
func TestPropPartsMatchUnpartitioned(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng)
		prog, err := parser.Program(src)
		if err != nil {
			t.Fatalf("seed %d: generated unparsable program:\n%s\n%v", seed, src, err)
		}
		db := randomEdgeDB(rng, 4, 0.4)
		for i := 0; i < 4; i++ {
			if rng.Intn(2) == 0 {
				db.AddFact("V", fmt.Sprint(i))
			}
		}

		oracle := MustNew(prog, db.Clone())
		oracle.SetFrontier(true)
		oracle.SetWorkers(1)
		s0 := oracle.NewState()
		s1 := oracle.Apply(s0)
		s2 := s1.Clone()
		s2.UnionWith(oracle.Apply(s1))
		delta := s2.Diff(s1)
		want := oracle.ApplyDeltaSplitFrontier(s1, delta, s2, s2)

		for _, k := range []int{1, 3, 5} {
			for _, nw := range workerSweep() {
				for _, frontier := range []bool{true, false} {
					in := MustNew(prog, db.Clone())
					in.SetFrontier(frontier)
					in.SetWorkers(nw)
					po := PartsOpts{NParts: k, Workers: nw}
					if frontier && rng.Intn(2) == 0 {
						po.Filters = make(map[string]*relation.Filter, len(s2))
						for pred, r := range s2 {
							po.Filters[pred] = relation.FilterOf(r, r.Len()+64)
						}
					}
					parts, st := in.ApplyDeltaSplitFrontierParts(s1, delta, s2, s2, po)
					if len(parts) != k {
						t.Fatalf("seed %d: got %d buckets, want %d", seed, len(parts), k)
					}
					if got := concatBuckets(t, in, parts); !got.Equal(want) {
						t.Fatalf("seed %d K=%d workers %d frontier %v: buckets differ from unpartitioned round\nprogram:\n%s",
							seed, k, nw, frontier, src)
					}
					if po.Filters != nil && st.Skips > st.Probes {
						t.Fatalf("seed %d: filter skips %d exceed probes %d", seed, st.Skips, st.Probes)
					}
					if po.Filters == nil && st.Probes != 0 {
						t.Fatalf("seed %d: unfiltered pass reported %d probes", seed, st.Probes)
					}
				}
			}
		}
	}
}

// TestApplyDeltasFrontierParts checks the maintenance-round entry point
// against its unpartitioned counterpart on a semi-naive TC step.
func TestApplyDeltasFrontierParts(t *testing.T) {
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).")
	db := randomEdgeDB(rand.New(rand.NewSource(7)), 6, 0.4)
	in := MustNew(prog, db)
	cur := in.Apply(in.NewState())
	deltas := map[string]Delta{"s": {PosDriver: cur["s"]}}
	want := in.ApplyDeltasFrontier(cur, cur, deltas, cur)
	for _, k := range []int{1, 4} {
		parts, _ := in.ApplyDeltasFrontierParts(cur, cur, deltas, cur, PartsOpts{NParts: k})
		if got := concatBuckets(t, in, parts); !got.Equal(want) {
			t.Fatalf("K=%d: partitioned maintenance round differs", k)
		}
	}
}

// TestPartitionKnobs pins the resolution order of the partition-count
// and exchange-filter knobs: per-instance value, then process default,
// then the built-in (K=1, filter on).
func TestPartitionKnobs(t *testing.T) {
	prog := parser.MustProgram("p(X) :- E(X,X).")
	in := MustNew(prog, randomEdgeDB(rand.New(rand.NewSource(1)), 3, 0.5))
	if k := in.Partitions(); k != 1 {
		t.Fatalf("built-in partition default: got %d, want 1", k)
	}
	SetDefaultPartitions(3)
	defer SetDefaultPartitions(1)
	if k := in.Partitions(); k != 3 {
		t.Fatalf("process default: got %d, want 3", k)
	}
	in.SetPartitions(5)
	if k := in.Partitions(); k != 5 {
		t.Fatalf("per-instance value: got %d, want 5", k)
	}
	in.SetPartitions(-2) // negative restores the default chain
	if k := in.Partitions(); k != 3 {
		t.Fatalf("reset to default chain: got %d, want 3", k)
	}
	SetDefaultPartitions(0) // clamps to 1
	if k := in.Partitions(); k != 1 {
		t.Fatalf("cleared default: got %d, want 1", k)
	}

	if !in.ExchangeFilter() {
		t.Fatal("exchange filter must default on")
	}
	SetDefaultExchangeFilter(false)
	defer SetDefaultExchangeFilter(true)
	if in.ExchangeFilter() {
		t.Fatal("process default off must win over the built-in")
	}
	in.SetExchangeFilter(true)
	if !in.ExchangeFilter() {
		t.Fatal("per-instance on must win over the process default")
	}
	in.SetExchangeFilter(false)
	if in.ExchangeFilter() {
		t.Fatal("per-instance off must stick")
	}
}
