package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/parser"
)

// randomProgram generates a syntactically valid DATALOG¬ program over a
// fixed schema (E/2, V/1 EDB; S/2, P/1, Q/2 IDB) with random rule
// bodies mixing positive and negated literals and comparisons.  Head
// variables may be unbound (universe enumeration) and literals may
// repeat variables, so every step kind of the planner is exercised.
func randomProgram(rng *rand.Rand) string {
	vars := []string{"X", "Y", "Z", "W"}
	type pred struct {
		name  string
		arity int
	}
	edb := []pred{{"E", 2}, {"V", 1}}
	idb := []pred{{"S", 2}, {"P", 1}, {"Q", 2}}
	all := append(append([]pred{}, edb...), idb...)

	randVar := func() string { return vars[rng.Intn(len(vars))] }
	atom := func(p pred) string {
		args := make([]string, p.arity)
		for i := range args {
			args[i] = randVar()
		}
		return fmt.Sprintf("%s(%s)", p.name, strings.Join(args, ","))
	}

	nRules := 2 + rng.Intn(3)
	var rules []string
	for r := 0; r < nRules; r++ {
		head := atom(idb[rng.Intn(len(idb))])
		nLits := 1 + rng.Intn(3)
		var body []string
		for l := 0; l < nLits; l++ {
			switch rng.Intn(6) {
			case 0:
				body = append(body, "!"+atom(all[rng.Intn(len(all))]))
			case 1:
				op := "="
				if rng.Intn(2) == 0 {
					op = "!="
				}
				body = append(body, fmt.Sprintf("%s %s %s", randVar(), op, randVar()))
			default:
				body = append(body, atom(all[rng.Intn(len(all))]))
			}
		}
		rules = append(rules, fmt.Sprintf("%s :- %s.", head, strings.Join(body, ", ")))
	}
	return strings.Join(rules, "\n")
}

// inflate iterates S ∪ Θ(S) to its inductive fixpoint (the semantics
// package is off-limits here: it imports engine).
func inflate(in *Instance) State {
	cur := in.NewState()
	for {
		next := cur.Clone()
		if next.UnionWith(in.Apply(cur)) == 0 {
			return next
		}
		cur = next
	}
}

// TestPropPlannerMatchesSyntacticOrder is the planner's acceptance
// property: over randomized programs and databases, cost-based planning
// derives exactly the relations the legacy syntactic order derives —
// per Θ application and at the inflationary fixpoint — and stays
// bit-exact across worker counts.
func TestPropPlannerMatchesSyntacticOrder(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng)
		prog, err := parser.Program(src)
		if err != nil {
			t.Fatalf("seed %d: generated unparsable program:\n%s\n%v", seed, src, err)
		}
		db := randomEdgeDB(rng, 4, 0.4)
		for i := 0; i < 4; i++ {
			if rng.Intn(2) == 0 {
				db.AddFact("V", fmt.Sprint(i))
			}
		}

		oracle := MustNew(prog, db.Clone())
		oracle.SetCostPlanner(false)
		oracle.SetWorkers(1)
		planned := MustNew(prog, db.Clone())
		planned.SetCostPlanner(true)
		planned.SetWorkers(1)

		s0 := oracle.NewState()
		if got, want := planned.Apply(s0), oracle.Apply(s0); !got.Equal(want) {
			t.Fatalf("seed %d: Θ(∅) differs under cost-based planning\nprogram:\n%s\ngot:\n%v\nwant:\n%v",
				seed, src, got.Format(db.Universe()), want.Format(db.Universe()))
		}
		want := inflate(oracle)
		got := inflate(planned)
		if !got.Equal(want) {
			t.Fatalf("seed %d: inflationary fixpoint differs under cost-based planning\nprogram:\n%s\ngot:\n%v\nwant:\n%v",
				seed, src, got.Format(db.Universe()), want.Format(db.Universe()))
		}

		parallel := MustNew(prog, db.Clone())
		parallel.SetCostPlanner(true)
		parallel.SetWorkers(4)
		if !inflate(parallel).Equal(want) {
			t.Fatalf("seed %d: planner-on fixpoint differs with 4 workers\nprogram:\n%s", seed, src)
		}
	}
}

// TestPlannerConstantColumns pins the access paths around constants in
// both modes: wide composite probes (cost-based) versus first-bound-
// column probe plus compiled constant checks (legacy).
func TestPlannerConstantColumns(t *testing.T) {
	src := `
P(X) :- E(X, a).
flag :- E(a, b).
R(Y) :- E(a, Y), E(Y, b).
`
	db := pathDB(2)
	db.AddFact("E", "a", "b")
	db.AddFact("E", "b", "b")
	db.AddFact("E", "x", "a")
	for _, on := range []bool{true, false} {
		in := MustNew(parser.MustProgram(src), db.Clone())
		in.SetCostPlanner(on)
		out := in.Apply(in.NewState())
		u := in.Universe()
		aID, _ := u.Lookup("a")
		bID, _ := u.Lookup("b")
		xID, _ := u.Lookup("x")
		if out["P"].Len() != 1 || !out["P"].Has([]int{xID}) {
			t.Errorf("planner=%v: P = %s, want {(x)}", on, out["P"].Format(u))
		}
		if out["flag"].Len() != 1 {
			t.Errorf("planner=%v: flag not derived", on)
		}
		if out["R"].Len() != 1 || !out["R"].Has([]int{bID}) {
			t.Errorf("planner=%v: R = %s, want {(b)}", on, out["R"].Format(u))
		}
		_ = aID
	}
}

// TestPlannerKnobs covers the tri-state planner selector: explicit,
// process default, and the on-by-default fallback.
func TestPlannerKnobs(t *testing.T) {
	in := MustNew(parser.MustProgram("s(X,Y) :- E(X,Y)."), pathDB(3))
	if !in.CostPlanner() {
		t.Error("planner should default to on")
	}
	SetDefaultCostPlanner(false)
	if in.CostPlanner() {
		t.Error("process default off not honored")
	}
	in.SetCostPlanner(true)
	if !in.CostPlanner() {
		t.Error("explicit on overridden by process default")
	}
	SetDefaultCostPlanner(true)
	in.SetCostPlanner(false)
	if in.CostPlanner() {
		t.Error("explicit off overridden by process default")
	}
}

// triangleAllocsSetup builds the zero-alloc fixture: a zero-arity head
// over a 3-way cyclic join, so after a warm-up Apply (which populates
// the indexes and derives the single head tuple once) repeated
// applications re-derive only duplicates — every allocation left is
// fixed per-Apply overhead, none per probed tuple.
func triangleAllocsSetup(t testing.TB, n int) (*Instance, State) {
	rng := rand.New(rand.NewSource(3))
	db := randomEdgeDB(rng, n, 0.3)
	in := MustNew(parser.MustProgram("q :- E(X,Y), E(Y,Z), E(Z,X)."), db)
	in.SetWorkers(1)
	s := in.NewState()
	in.Apply(s) // warm indexes
	return in, s
}

// TestJoinProbeZeroAllocs is the regression guard for the satellite
// fix: allocations per Apply must be a small constant that does not
// grow with the number of probed tuples.  A per-match allocation (the
// old bonds slice) would scale with the ~n³p³ candidate triangles and
// blow far past the bound on the larger graph.
func TestJoinProbeZeroAllocs(t *testing.T) {
	for _, n := range []int{12, 28} {
		in, s := triangleAllocsSetup(t, n)
		allocs := testing.AllocsPerRun(10, func() { in.Apply(s) })
		if allocs > 64 {
			t.Errorf("n=%d: %v allocs per Apply, want fixed overhead ≤ 64", n, allocs)
		}
	}
}

// BenchmarkJoinAllocs tracks the probe path's allocation behavior over
// time (allocs/op must stay flat as the CI trajectory source).
func BenchmarkJoinAllocs(b *testing.B) {
	in, s := triangleAllocsSetup(b, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Apply(s)
	}
}

// TestExplainSmoke checks the explain rendering: join order, access
// paths and estimates appear for both planner modes.
func TestExplainSmoke(t *testing.T) {
	src := "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."
	in := MustNew(parser.MustProgram(src), pathDB(5))
	fix := inflate(in)

	var on strings.Builder
	in.Explain(&on, fix)
	for _, want := range []string{"rule 1 [cost-based]", "join", "scan", "est=", "s(Z,Y)"} {
		if !strings.Contains(on.String(), want) {
			t.Errorf("cost-based explain missing %q:\n%s", want, on.String())
		}
	}
	if !strings.Contains(on.String(), "index[") {
		t.Errorf("cost-based explain shows no index probe:\n%s", on.String())
	}

	in.SetCostPlanner(false)
	var off strings.Builder
	in.Explain(&off, fix)
	if !strings.Contains(off.String(), "[syntactic]") {
		t.Errorf("legacy explain not labeled:\n%s", off.String())
	}
}
