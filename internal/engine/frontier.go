// frontier.go — dedup-at-emit derivation and intra-rule sharding.
//
// Every semantics the paper discusses reduces to repeated application
// of Θ, and each repeated round used to triple-handle every tuple:
// derive into a fresh state, Diff against the accumulated state, then
// UnionWith back into it — three hash passes, two of them over tuples
// that are almost always duplicates of what the state already holds.
//
// The frontier contract fuses the three: the *Frontier entry points
// filter every emission against an accumulated state at emit time (a
// read-only membership probe inside the compiled bind/check loop, see
// Relation.AddNotIn) and insert genuinely-new tuples straight into the
// per-predicate delta.  The returned state IS the next delta; callers
// union it into the accumulated state and continue.  SetFrontier(false)
// restores the derive+Diff pipeline behind the same entry points — the
// property-test oracle and the ablation baseline, exactly like the
// SetCostPlanner knob.
//
// Orthogonally, intra-rule sharding keeps every worker busy when a
// program has fewer rule tasks than the pool has workers: a task's
// driver relation (the semi-naive delta, or the first planned literal
// of a full application) is split into arena-range shards, one task per
// shard, each restricted to its range.  The ranges partition the
// driving enumeration, so every derivation belongs to exactly one shard
// and the union of the shard outputs is exactly the unsharded output.
// SetSharding(false) disables the expansion.
package engine

import (
	"sync/atomic"

	"repro/internal/relation"
)

// ApplyFrontier returns Θ(S̄) minus against: every emission already in
// against is dropped at emit time.  With against = s it computes the
// tuples one Θ application adds to s — the inflationary delta — in a
// single pass.
func (in *Instance) ApplyFrontier(s, against State) State {
	return in.ApplySplitFrontier(s, s, against)
}

// ApplySplitFrontier is ApplySplit filtered against an accumulated
// state: it returns exactly ApplySplit(pos, neg).Diff(against), without
// materializing the intermediate state when the frontier path is
// enabled.
func (in *Instance) ApplySplitFrontier(pos, neg, against State) State {
	if !in.FrontierEval() {
		return diffAgainst(in.runTasks(in.fullTasks(), pos, neg, runOpts{shard: true}), against)
	}
	return in.runTasks(in.fullTasks(), pos, neg, runOpts{frontier: against, shard: true})
}

// ApplyDeltaSplitFrontier is the semi-naive round of the frontier
// contract: it returns exactly ApplyDeltaSplit(old, delta, cur,
// neg).Diff(cur) — the genuinely-new tuples of the round — inserting
// them straight into the per-predicate delta it returns.  Output
// relations are pre-sized from the incoming delta's cardinality (the
// best available estimate of the next round's).
func (in *Instance) ApplyDeltaSplitFrontier(old, delta, cur, neg State) State {
	out, _ := in.ApplyDeltaSplitFrontierFiltered(old, delta, cur, neg, nil)
	return out
}

// ApplyDeltaSplitFrontierFiltered is ApplyDeltaSplitFrontier with the
// accumulated-state probe fronted by per-predicate Bloom summaries of
// cur (see Options.FrontierFilter): a "definitely absent" verdict off
// the emit-time TupleHash skips the exact probe entirely.  filters
// must cover cur completely — the fixpoint loops build them with
// FrontierFilters and keep them in lockstep with ExtendFrontierFilters
// — or be nil, which degenerates to the unfiltered entry point.  The
// returned tallies report how often the filter was consulted and how
// often it resolved the probe.
func (in *Instance) ApplyDeltaSplitFrontierFiltered(old, delta, cur, neg State, filters map[string]*relation.Filter) (State, FilterStats) {
	deltas := make(map[string]Delta, len(delta))
	hints := make(map[string]int, len(delta))
	for pred, d := range delta {
		deltas[pred] = Delta{PosDriver: d, Before: old[pred]}
		if n := d.Len(); n > 0 {
			hints[pred] = n
		}
	}
	if !in.FrontierEval() {
		// The prefilter only fronts the fused probe; on the derive+Diff
		// oracle it is inert.
		return diffAgainst(in.runTasks(in.deltaTasks(deltas), cur, neg, runOpts{shard: true}), cur), FilterStats{}
	}
	out, st := in.runTasksStats(in.deltaTasks(deltas), cur, neg,
		runOpts{frontier: cur, hints: hints, shard: true, filters: filters})
	frontierFilterProbes.Add(st.Probes)
	frontierFilterSkips.Add(st.Skips)
	return out, st
}

// frontierFilterMin is the accumulated-relation size below which no
// frontier prefilter is built: a Bloom pass over a relation that fits
// in cache costs more than the map probes it saves.  Once a relation
// crosses the threshold its filter persists and is extended per round.
const frontierFilterMin = 1024

// frontierFilterHeadroom is the minimum growth allowance fresh
// prefilters are sized with; filterCap doubles on top of it so rebuild
// cost amortizes geometrically — a flat allowance forces a full O(cur)
// rebuild every round once per-round growth exceeds it, turning the
// filter into a quadratic tax on fast-growing relations.
const frontierFilterHeadroom = 4096

// filterCap is the design load a (re)built frontier prefilter is sized
// for, given the relation it must cover.
func filterCap(r *relation.Relation) int {
	return 2*r.Len() + frontierFilterHeadroom
}

// FrontierFilters builds per-predicate Bloom summaries of cur for the
// predicates worth filtering (≥ frontierFilterMin tuples); nil when
// none qualify.  The result covers cur exactly and must be kept in
// lockstep with it via ExtendFrontierFilters.
func FrontierFilters(cur State) map[string]*relation.Filter {
	return ExtendFrontierFilters(nil, cur, nil)
}

// ExtendFrontierFilters keeps frontier prefilters covering the
// accumulated state across a round: grown holds the tuples just
// unioned into cur (they are added to existing filters), predicates
// newly past the size threshold get a fresh filter over all of cur,
// and any filter pushed past its design load is rebuilt at current
// occupancy plus headroom.  It returns the (possibly created) map —
// the no-false-negatives coverage contract holds on every return.
func ExtendFrontierFilters(filters map[string]*relation.Filter, cur, grown State) map[string]*relation.Filter {
	for pred, r := range cur {
		f := filters[pred]
		if f == nil {
			if r.Len() < frontierFilterMin {
				continue
			}
			if filters == nil {
				filters = make(map[string]*relation.Filter, len(cur))
			}
			filters[pred] = relation.FilterOf(r, filterCap(r))
			continue
		}
		if g := grown[pred]; g != nil {
			g.Each(func(t relation.Tuple) bool {
				f.Add(t)
				return true
			})
		}
		if f.Overloaded() {
			filters[pred] = relation.FilterOf(r, filterCap(r))
		}
	}
	return filters
}

// frontierFilterProbes/Skips are the process-wide frontier-prefilter
// tallies surfaced by the serve daemon's /v1/metrics engine block,
// mirroring the partition package's exchange-filter counters.
var (
	frontierFilterProbes atomic.Int64
	frontierFilterSkips  atomic.Int64
)

// FrontierFilterTotals reports the process-wide frontier-prefilter
// telemetry: total emit-path consultations and the subset that
// resolved to "definitely absent" (skipping the exact probe).
func FrontierFilterTotals() (probes, skips int64) {
	return frontierFilterProbes.Load(), frontierFilterSkips.Load()
}

// ApplyDeltasFrontier is ApplyDeltas filtered against an accumulated
// state: it returns exactly ApplyDeltas(pos, neg, deltas).Diff(against).
// The DRed delete/rederive and insert-propagation loops of the
// incremental maintainer run on it.
func (in *Instance) ApplyDeltasFrontier(pos, neg State, deltas map[string]Delta, against State) State {
	if !in.FrontierEval() {
		return diffAgainst(in.runTasks(in.deltaTasks(deltas), pos, neg, runOpts{shard: true}), against)
	}
	return in.runTasks(in.deltaTasks(deltas), pos, neg, runOpts{frontier: against, shard: true})
}

// diffAgainst is the derive+Diff fallback: the per-predicate difference
// derived ∖ against, tolerating predicates absent from against.
func diffAgainst(derived, against State) State {
	out := make(State, len(derived))
	for pred, r := range derived {
		if a := against[pred]; a != nil {
			out[pred] = r.Diff(a)
		} else {
			out[pred] = r
		}
	}
	return out
}

// defaultFrontierOff and defaultShardingOff are the process-wide
// defaults for instances without explicit Set calls, mirroring
// defaultPlannerOff: drivers toggle them for instances they do not
// construct.  Both paths are on by default.
var (
	defaultFrontierOff atomic.Bool
	defaultShardingOff atomic.Bool
)

// SetDefaultFrontier sets the process-wide default for instances
// without an explicit SetFrontier call.  On by default.
//
// Deprecated: prefer Options.Frontier per call; this setter remains as
// the fallback a ToggleDefault resolves to.
func SetDefaultFrontier(on bool) { defaultFrontierOff.Store(!on) }

// SetFrontier selects this instance's implementation of the Frontier
// entry points: true fuses the membership probe into the emit loop,
// false computes derive+Diff — bit-exact either way, the knob is the
// ablation baseline and test oracle.
func (in *Instance) SetFrontier(on bool) { in.frontier = ToggleOf(on) }

// FrontierEval reports the effective frontier setting: the value set
// with SetFrontier, else the process default, else on.
func (in *Instance) FrontierEval() bool { return in.frontier.Enabled(!defaultFrontierOff.Load()) }

// defaultFrontierFilterOff is the process-wide default for the
// frontier prefilter, on unless disabled.
var defaultFrontierFilterOff atomic.Bool

// SetDefaultFrontierFilter sets the process-wide default for instances
// without an explicit SetFrontierFilter call.  On by default.
//
// Deprecated: prefer Options.FrontierFilter per call; this setter
// remains as the fallback a ToggleDefault resolves to.
func SetDefaultFrontierFilter(on bool) { defaultFrontierFilterOff.Store(!on) }

// SetFrontierFilter selects whether the unpartitioned fixpoint loops
// front the exact frontier probe with a Bloom summary of the
// accumulated state — bit-exact either way, the knob is the ablation
// baseline, mirroring SetExchangeFilter on the partitioned path.
func (in *Instance) SetFrontierFilter(on bool) { in.frontFilter = ToggleOf(on) }

// FrontierFilter reports the effective frontier-prefilter setting: the
// value set with SetFrontierFilter, else the process default, else on.
func (in *Instance) FrontierFilter() bool {
	return in.frontFilter.Enabled(!defaultFrontierFilterOff.Load())
}

// SetDefaultSharding sets the process-wide default for instances
// without an explicit SetSharding call.  On by default.
//
// Deprecated: prefer Options.Sharding per call; this setter remains as
// the fallback a ToggleDefault resolves to.
func SetDefaultSharding(on bool) { defaultShardingOff.Store(!on) }

// SetSharding enables or disables intra-rule data parallelism (the
// arena-range shard expansion of runTasks).  Sharded and unsharded
// evaluation produce identical states; only core utilization differs.
func (in *Instance) SetSharding(on bool) { in.sharding = ToggleOf(on) }

// Sharding reports the effective sharding setting: the value set with
// SetSharding, else the process default, else on.
func (in *Instance) Sharding() bool { return in.sharding.Enabled(!defaultShardingOff.Load()) }

// minShardSpan is the smallest arena range worth a shard of its own:
// below it, the per-task planning and context cost outweighs the
// parallelism.
const minShardSpan = 64

// expandShards splits tasks into arena-range shards of their driver
// relations until there is enough work for nw workers.  A task's split
// target is its semi-naive driver literal when it has one, else the
// literal the planner would enumerate first; tasks whose target is too
// small to split pass through unchanged.  The shard ranges partition
// the target's arena, so the shard outputs union to exactly the
// unsharded output.
func (in *Instance) expandShards(tasks []evalTask, pos State, nw int) []evalTask {
	out := make([]evalTask, 0, nw)
	for _, t := range tasks {
		lit, rel := in.shardTarget(t, pos)
		n := 0
		if lit >= 0 && rel != nil {
			n = rel.Len()
		}
		shards := nw
		if max := n / minShardSpan; shards > max {
			shards = max
		}
		if shards <= 1 {
			out = append(out, t)
			continue
		}
		span := (n + shards - 1) / shards
		for lo := 0; lo < n; lo += span {
			hi := lo + span
			if hi > n {
				hi = n
			}
			t2 := t
			t2.shardLit, t2.shardLo, t2.shardHi = lit, int32(lo), int32(hi)
			out = append(out, t2)
		}
	}
	return out
}

// shardTarget resolves the literal an intra-rule split partitions and
// the concrete relation it enumerates, mirroring evalRule's resolution
// of literal sources.
func (in *Instance) shardTarget(t evalTask, pos State) (int, *relation.Relation) {
	rp := t.rp
	if len(rp.positives) == 0 {
		return -1, nil
	}
	resolve := func(i int) *relation.Relation {
		switch {
		case t.pos[i] != nil:
			return t.pos[i]
		case !rp.positives[i].idb:
			return in.edbRel(rp.positives[i].pred)
		default:
			return pos[rp.positives[i].pred]
		}
	}
	if t.driver >= 0 {
		return t.driver, resolve(t.driver)
	}
	rels := make([]*relation.Relation, len(rp.positives))
	for i := range rels {
		rels[i] = resolve(i)
	}
	lit := firstJoinPick(rp, rels, in.CostPlanner())
	if lit < 0 {
		return -1, nil
	}
	return lit, rels[lit]
}
