package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
)

// workerSweep is the worker-count matrix of the frontier acceptance
// tests: sequential, minimal parallelism, and the full pool.
func workerSweep() []int {
	sweep := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		sweep = append(sweep, n)
	} else {
		sweep = append(sweep, 8) // oversubscribe: scheduling must not matter
	}
	return sweep
}

// TestPropFrontierMatchesDeriveDiff is the tentpole acceptance property:
// over randomized programs, databases, worker counts, and sharding
// settings, the frontier entry points return exactly what the
// derive+Diff oracle computes — per Θ application, per semi-naive
// round, and at the inflationary fixpoint.
func TestPropFrontierMatchesDeriveDiff(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randomProgram(rng)
		prog, err := parser.Program(src)
		if err != nil {
			t.Fatalf("seed %d: generated unparsable program:\n%s\n%v", seed, src, err)
		}
		db := randomEdgeDB(rng, 4, 0.4)
		for i := 0; i < 4; i++ {
			if rng.Intn(2) == 0 {
				db.AddFact("V", fmt.Sprint(i))
			}
		}

		oracle := MustNew(prog, db.Clone())
		oracle.SetFrontier(false)
		oracle.SetSharding(false)
		oracle.SetWorkers(1)

		// Build reference stages with the oracle.
		s0 := oracle.NewState()
		s1 := oracle.Apply(s0)
		s2 := s1.Clone()
		s2.UnionWith(oracle.Apply(s1))
		delta := s2.Diff(s1)

		wantTheta := oracle.ApplySplitFrontier(s2, s2, s2)
		wantRound := oracle.ApplyDeltaSplitFrontier(s1, delta, s2, s2)

		for _, nw := range workerSweep() {
			for _, shard := range []bool{false, true} {
				in := MustNew(prog, db.Clone())
				in.SetFrontier(true)
				in.SetSharding(shard)
				in.SetWorkers(nw)
				if got := in.ApplySplitFrontier(s2, s2, s2); !got.Equal(wantTheta) {
					t.Fatalf("seed %d workers %d shard %v: ApplySplitFrontier differs\nprogram:\n%s\ngot:\n%v\nwant:\n%v",
						seed, nw, shard, src, got.Format(db.Universe()), wantTheta.Format(db.Universe()))
				}
				if got := in.ApplyDeltaSplitFrontier(s1, delta, s2, s2); !got.Equal(wantRound) {
					t.Fatalf("seed %d workers %d shard %v: ApplyDeltaSplitFrontier differs\nprogram:\n%s",
						seed, nw, shard, src)
				}
			}
		}
	}
}

// inflateFrontier iterates the inflationary operator on the frontier
// contract to its fixpoint.
func inflateFrontier(in *Instance) State {
	cur := in.Apply(in.NewState())
	for {
		nd := in.ApplyFrontier(cur, cur)
		if nd.Empty() {
			return cur
		}
		cur.UnionDisjoint(nd)
	}
}

// inflateFrontierSemiNaive is the semi-naive variant: rounds pass the
// previous delta as driver, exactly like semantics.lfpLoop, so big
// deltas flow through the hint-driven partitioned merge.
func inflateFrontierSemiNaive(in *Instance) State {
	prev := in.NewState()
	cur := in.Apply(prev)
	delta := cur.Snapshot()
	for !delta.Empty() {
		nd := in.ApplyDeltaSplitFrontier(prev, delta, cur, cur)
		if nd.Empty() {
			break
		}
		prev = cur.Snapshot()
		cur.UnionDisjoint(nd)
		delta = nd
	}
	return cur
}

// TestFrontierFixpointMatchesOracle runs whole inflationary evaluations
// on the frontier contract across worker counts and compares the final
// states against the knob-off oracle.
func TestFrontierFixpointMatchesOracle(t *testing.T) {
	prog := parser.MustProgram(multiRuleSrc)
	db := randomEdgeDB(rand.New(rand.NewSource(5)), 10, 0.2)

	oracle := MustNew(prog, db.Clone())
	oracle.SetFrontier(false)
	oracle.SetSharding(false)
	oracle.SetWorkers(1)
	want := inflateFrontier(oracle)

	for _, nw := range workerSweep() {
		in := MustNew(prog, db.Clone())
		in.SetFrontier(true)
		in.SetWorkers(nw)
		if got := inflateFrontier(in); !got.Equal(want) {
			t.Fatalf("frontier fixpoint differs with %d workers", nw)
		}
	}
}

// TestShardedPartitionedMerge drives the intra-rule sharding and the
// hash-partitioned merge on a workload big enough to trigger both: a
// transitive closure whose per-round deltas exceed partitionThreshold,
// evaluated by a 2-rule program on a many-worker pool (more workers
// than tasks, so every round must shard its driver).
func TestShardedPartitionedMerge(t *testing.T) {
	src := "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."
	prog := parser.MustProgram(src)
	db := randomEdgeDB(rand.New(rand.NewSource(42)), 48, 0.2)

	oracle := MustNew(prog, db.Clone())
	oracle.SetFrontier(false)
	oracle.SetSharding(false)
	oracle.SetWorkers(1)
	want := inflateFrontierSemiNaive(oracle)
	if want["s"].Len() < partitionThreshold {
		t.Fatalf("fixture too small to exercise partitioned merge: |s| = %d", want["s"].Len())
	}

	for _, nw := range []int{2, 4, 8} {
		in := MustNew(prog, db.Clone())
		in.SetFrontier(true)
		in.SetSharding(true)
		in.SetWorkers(nw)
		if got := inflateFrontierSemiNaive(in); !got.Equal(want) {
			t.Fatalf("sharded+partitioned fixpoint differs with %d workers", nw)
		}
	}
}

// TestFrontierZeroAllocs extends the TestJoinProbeZeroAllocs guard to
// the frontier path: once the fixpoint is reached, a frontier pass
// re-derives only tuples the filter drops at emit time, so allocations
// per pass must stay a small constant — the membership probe and the
// discarded emission allocate nothing per tuple.
func TestFrontierZeroAllocs(t *testing.T) {
	for _, n := range []int{12, 28} {
		rng := rand.New(rand.NewSource(3))
		db := randomEdgeDB(rng, n, 0.3)
		in := MustNew(parser.MustProgram("tri(X,Y,Z) :- E(X,Y), E(Y,Z), E(Z,X)."), db)
		in.SetWorkers(1)
		in.SetFrontier(true)
		fix := in.Apply(in.NewState()) // warm indexes, derive all triangles
		allocs := testing.AllocsPerRun(10, func() { in.ApplySplitFrontier(fix, fix, fix) })
		if allocs > 64 {
			t.Errorf("n=%d: %v allocs per frontier pass, want fixed overhead ≤ 64", n, allocs)
		}
	}
}

// TestFrontierKnobs covers the tri-state frontier and sharding
// selectors: explicit, process default, and the on-by-default fallback.
func TestFrontierKnobs(t *testing.T) {
	in := MustNew(parser.MustProgram("s(X,Y) :- E(X,Y)."), pathDB(3))
	if !in.FrontierEval() || !in.Sharding() {
		t.Error("frontier and sharding should default to on")
	}
	SetDefaultFrontier(false)
	SetDefaultSharding(false)
	if in.FrontierEval() || in.Sharding() {
		t.Error("process defaults off not honored")
	}
	in.SetFrontier(true)
	in.SetSharding(true)
	if !in.FrontierEval() || !in.Sharding() {
		t.Error("explicit on overridden by process default")
	}
	SetDefaultFrontier(true)
	SetDefaultSharding(true)
	in.SetFrontier(false)
	in.SetSharding(false)
	if in.FrontierEval() || in.Sharding() {
		t.Error("explicit off overridden by process default")
	}
	in.SetFrontier(true)
	in.SetSharding(true)
}

// TestFrontierFilterKnobs covers the tri-state frontier-prefilter
// selector: built-in on, process default, per-instance override, and
// Options threading.
func TestFrontierFilterKnobs(t *testing.T) {
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).")
	in := MustNew(prog, pathDB(3))
	if !in.FrontierFilter() {
		t.Fatal("frontier filter must default on")
	}
	SetDefaultFrontierFilter(false)
	defer SetDefaultFrontierFilter(true)
	if in.FrontierFilter() {
		t.Fatal("process default off must win over the built-in")
	}
	in.SetFrontierFilter(true)
	if !in.FrontierFilter() {
		t.Fatal("per-instance on must win over the process default")
	}
	in.SetFrontierFilter(false)
	if in.FrontierFilter() {
		t.Fatal("per-instance off must stick")
	}
	in2, err := NewWith(prog, pathDB(3), Options{FrontierFilter: On})
	if err != nil {
		t.Fatal(err)
	}
	if !in2.FrontierFilter() {
		t.Fatal("Options.FrontierFilter=On must win over the process default")
	}
}

// TestFrontierFilteredMatchesExact drives the filtered round entry
// point directly: with complete prefilters over the accumulated state,
// the round's output must be bit-exact with the unfiltered round, the
// filter must actually be consulted, and skips must stay plausible.
func TestFrontierFilteredMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).\ns(X,Y) :- s(X,Z), E(Z,Y).")
	db := randomEdgeDB(rng, 40, 0.2)
	in := MustNew(prog, db)
	in.SetWorkers(1)

	// Run two semi-naive rounds by hand to get a mid-fixpoint state.
	prev := in.NewState()
	cur := in.ApplySplit(prev, prev)
	delta := cur.Snapshot()
	newDelta := in.ApplyDeltaSplitFrontier(prev, delta, cur, cur)
	prev = cur.Snapshot()
	cur.UnionDisjoint(newDelta)

	want := in.ApplyDeltaSplitFrontier(prev, newDelta, cur, cur)

	// Build filters over everything (threshold-free) so small states are
	// exercised too.
	filters := make(map[string]*relation.Filter, len(cur))
	for pred, r := range cur {
		filters[pred] = relation.FilterOf(r, r.Len()+64)
	}
	got, st := in.ApplyDeltaSplitFrontierFiltered(prev, newDelta, cur, cur, filters)
	if !got.Equal(want) {
		t.Fatalf("filtered round differs from exact round")
	}
	if st.Probes <= 0 {
		t.Fatalf("filter never consulted (probes %d)", st.Probes)
	}
	if st.Skips < 0 || st.Skips > st.Probes {
		t.Fatalf("implausible tallies: probes %d skips %d", st.Probes, st.Skips)
	}
	p0, s0 := FrontierFilterTotals()
	if p0 <= 0 || s0 > p0 {
		t.Fatalf("process totals not accumulated: probes %d skips %d", p0, s0)
	}
}

// TestExtendFrontierFilters pins the filter lifecycle: below-threshold
// predicates get no filter, crossing the threshold creates one covering
// the whole relation, and growth keeps coverage (no false negatives).
func TestExtendFrontierFilters(t *testing.T) {
	mk := func(lo, hi int) *relation.Relation {
		r := relation.New(1)
		for i := lo; i < hi; i++ {
			r.Add(relation.Tuple{i})
		}
		return r
	}
	cur := State{"p": mk(0, 100)}
	if f := FrontierFilters(cur); f != nil {
		t.Fatalf("filter built below threshold")
	}
	cur = State{"p": mk(0, 2000)}
	filters := FrontierFilters(cur)
	if filters == nil || filters["p"] == nil {
		t.Fatal("no filter past threshold")
	}
	grown := State{"p": mk(2000, 2600)}
	cur["p"].UnionWith(grown["p"])
	filters = ExtendFrontierFilters(filters, cur, grown)
	miss := 0
	cur["p"].Each(func(tu relation.Tuple) bool {
		if !filters["p"].MayContainHash(relation.TupleHash(tu)) {
			miss++
		}
		return true
	})
	if miss != 0 {
		t.Fatalf("%d false negatives after extension — coverage contract broken", miss)
	}
}

// TestExpandShardsPartition checks the shard expansion invariants
// directly: shard ranges partition the driver's arena exactly, and
// tasks whose driver is too small pass through unchanged.
func TestExpandShardsPartition(t *testing.T) {
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).")
	db := randomEdgeDB(rand.New(rand.NewSource(9)), 40, 0.3)
	in := MustNew(prog, db)
	s := in.Apply(in.NewState())

	tasks := in.fullTasks()
	expanded := in.expandShards(tasks, s, 8)
	if len(expanded) <= len(tasks) {
		t.Fatalf("expected shard expansion, got %d tasks from %d", len(expanded), len(tasks))
	}
	// Group shards by rule and verify each sharded rule's ranges tile
	// [0, n) without gaps or overlaps.
	covered := make(map[*rulePlan]int32)
	for _, task := range expanded {
		if task.shardHi == 0 {
			continue
		}
		if task.shardLo != covered[task.rp] {
			t.Fatalf("shard ranges of rule %v do not tile: next starts at %d, expected %d",
				task.rp.src, task.shardLo, covered[task.rp])
		}
		if task.shardHi <= task.shardLo {
			t.Fatalf("empty shard range [%d, %d)", task.shardLo, task.shardHi)
		}
		covered[task.rp] = task.shardHi
	}
	if len(covered) == 0 {
		t.Fatal("no rule was sharded")
	}
	for rp, hi := range covered {
		_, rel := in.shardTarget(evalTask{rp: rp, driver: -1}, s)
		if int(hi) != rel.Len() {
			t.Fatalf("rule %v: shards cover [0, %d), driver has %d tuples", rp.src, hi, rel.Len())
		}
	}
}

// TestOffsetsInRange pins the shard-aware index probe helper.
func TestOffsetsInRange(t *testing.T) {
	offs := []int32{2, 3, 7, 11, 12, 30}
	cases := []struct {
		lo, hi int32
		want   []int32
	}{
		{0, 31, []int32{2, 3, 7, 11, 12, 30}},
		{3, 12, []int32{3, 7, 11}},
		{4, 7, nil},
		{12, 12, nil},
		{13, 5, nil},
	}
	for _, c := range cases {
		got := relation.OffsetsInRange(offs, c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Errorf("OffsetsInRange(%v, %d, %d) = %v, want %v", offs, c.lo, c.hi, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("OffsetsInRange(%v, %d, %d) = %v, want %v", offs, c.lo, c.hi, got, c.want)
				break
			}
		}
	}
}
