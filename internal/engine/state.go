// Package engine implements the operator Θ of Section 2 of the paper
// and its evaluation machinery.
//
// Given a DATALOG¬ program π and a database D = (A, R₁,…,Rₗ), the
// operator Θ maps a sequence S̄ = (S₁,…,Sₘ) of IDB relations to the
// sequence of relations derived from S̄ and D by one parallel
// application of all rules, with every variable ranging over the whole
// universe A (so unsafe rules like the paper's toggle
// "T(z) ← ¬Q(ū), ¬T(w)" are fully supported).  S̄ is a fixpoint of
// (π, D) when Θ(S̄) = S̄.
//
// The engine compiles each rule into a small step plan — greedy join
// ordering over positive literals, equality-propagation, universe
// extension for unbound variables, and eager negative/comparison
// checks — and exposes three entry points:
//
//	Apply(S)                 Θ(S̄)
//	ApplyDelta(old, Δ, cur)  the tuples of Θ(cur) derivable using ≥1 Δ-tuple
//	IsFixpoint(S)            Θ(S̄) = S̄
//
// plus the frontier variants (frontier.go): ApplySplitFrontier and
// ApplyDeltaSplitFrontier return the same derivations minus an
// accumulated state, filtering at emit time — the building block of
// every fixpoint loop in internal/semantics and internal/incr.
//
// ApplyDelta is the semi-naive building block: under the inflationary
// iteration S ∪ Θ(S) (and under least-fixpoint iteration of positive
// programs) a derivation whose positive IDB tuples are all old was
// already valid one stage earlier, because negated atoms only grow and
// therefore only tighten.  Hence new tuples always come from
// derivations touching the delta.
package engine

import (
	"sort"
	"strings"

	"repro/internal/relation"
)

// State is an assignment of relations to the IDB predicates of a
// program — the S̄ = (S₁,…,Sₘ) on which Θ operates.
type State map[string]*relation.Relation

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	c := make(State, len(s))
	for k, r := range s {
		c[k] = r.Clone()
	}
	return c
}

// Snapshot returns an O(1) immutable view of the state: every relation
// is snapshotted with structural sharing (see relation.Relation's
// Snapshot for the exact visibility and concurrency contract).
func (s State) Snapshot() State {
	c := make(State, len(s))
	for k, r := range s {
		c[k] = r.Snapshot()
	}
	return c
}

// Seal marks every relation's storage as published, so snapshots of
// this state can be read from other goroutines while the state keeps
// being mutated: the first mutation of each relation copies its
// storage.
func (s State) Seal() {
	for _, r := range s {
		r.Seal()
	}
}

// Mutable returns a state whose relations are all mutable, deep-copying
// exactly the ones that are immutable snapshot views.
func (s State) Mutable() State {
	c := make(State, len(s))
	for k, r := range s {
		c[k] = r.Mutable()
	}
	return c
}

// Equal reports whether both states assign exactly the same relations.
func (s State) Equal(o State) bool {
	if len(s) != len(o) {
		return false
	}
	for k, r := range s {
		or, ok := o[k]
		if !ok || !r.Equal(or) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every relation of s is contained in the
// corresponding relation of o.
func (s State) SubsetOf(o State) bool {
	for k, r := range s {
		or, ok := o[k]
		if !ok || !r.SubsetOf(or) {
			return false
		}
	}
	return true
}

// UnionWith adds every tuple of o into s, returning the number of new
// tuples.
func (s State) UnionWith(o State) int {
	added := 0
	for k, r := range o {
		added += s[k].UnionWith(r)
	}
	return added
}

// UnionDisjoint adds every tuple of o into s without membership probes,
// returning the number of tuples added.  The caller must guarantee o is
// disjoint from s — exactly what the Frontier entry points return
// relative to the state they filtered against — so the union-back is a
// straight insert instead of a probe-then-insert.
func (s State) UnionDisjoint(o State) int {
	added := 0
	for k, r := range o {
		s[k].AppendDisjoint(r)
		added += r.Len()
	}
	return added
}

// Diff returns the per-predicate difference s \ o as a fresh state.
func (s State) Diff(o State) State {
	out := make(State, len(s))
	for k, r := range s {
		out[k] = r.Diff(o[k])
	}
	return out
}

// Total returns the total number of tuples across all relations.
func (s State) Total() int {
	n := 0
	for _, r := range s {
		n += r.Len()
	}
	return n
}

// Empty reports whether the state holds no tuples at all.
func (s State) Empty() bool { return s.Total() == 0 }

// Preds returns the predicate names in sorted order.
func (s State) Preds() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Format renders the state deterministically with names from u.
func (s State) Format(u *relation.Universe) string {
	var b strings.Builder
	for _, k := range s.Preds() {
		b.WriteString(k)
		b.WriteString(" = ")
		b.WriteString(s[k].Format(u))
		b.WriteByte('\n')
	}
	return b.String()
}
