package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// evalCtx carries the relation sources for one rule evaluation: pos[i]
// resolves the i-th positive literal, neg[i] the i-th negated literal.
// The relations are resolved once per rule evaluation — they cannot
// change mid-rule — so the join loop never goes through a predicate
// map.  headBuf and negBuf are scratch tuples reused across emissions
// so the hot path allocates only when a genuinely new tuple is stored.
// When cnt is non-nil the task is a counting pass: every emission bumps
// the head tuple's derivation count instead of inserting into out.
//
// cur, when non-nil, is the frontier filter: emissions already present
// in it are dropped at emit time (a read-only membership probe fused
// into the insert, see Relation.AddNotIn), so a frontier pass returns
// exactly the genuinely-new tuples without a derived state or a Diff.
// parts, when non-nil, replaces out with hash-partitioned buckets so
// per-worker outputs can be merged bucket-by-bucket and concatenated
// disjointly.
type evalCtx struct {
	pos     []*relation.Relation
	neg     []*relation.Relation
	out     *relation.Relation
	parts   []*relation.Relation
	cur     *relation.Relation
	cnt     *relation.Multiset
	usize   int
	headBuf relation.Tuple
	negBuf  relation.Tuple
	// filter, when non-nil, is a Bloom summary of cur fronting the exact
	// frontier probe on partitioned passes: a "definitely absent" answer
	// skips the cur map probe entirely (the tuple is surely new), a
	// "maybe present" answer falls through to the exact AddNotIn.
	// fprobes/fskips count the filter consultations and the probes it
	// saved, accumulated into the workerOut after the rule completes.
	filter  *relation.Filter
	fprobes int64
	fskips  int64
}

// evalTask is one unit of parallel work: a rule plan plus optional
// per-literal relation overrides (the semi-naive and delta variants).
// pos[i] overrides the relation read by the i-th positive literal,
// neg[j] the relation checked by the j-th negated literal.
//
// driver is the positive-literal index whose relation drives the task
// (the semi-naive delta, or the ApplyWithin filter); -1 when the task
// has no distinguished driver.  It is the preferred split target for
// intra-rule sharding.  A sharded task restricts the enumeration of
// literal shardLit to the arena range [shardLo, shardHi); shardHi == 0
// means the task is unsharded.
type evalTask struct {
	rp               *rulePlan
	pos              map[int]*relation.Relation
	neg              map[int]*relation.Relation
	driver           int
	shardLit         int
	shardLo, shardHi int32
}

// Apply computes Θ(S̄): the relations derived from the database and s by
// one parallel application of all rules.  Apply never reads its output
// while deriving, so it is the paper's simultaneous operator.
func (in *Instance) Apply(s State) State { return in.ApplySplit(s, s) }

// ApplySplit evaluates positive IDB literals against pos and negated
// IDB literals against neg.  With pos = neg it is Θ; with neg held
// fixed it is the monotone operator whose least fixpoint is the
// Gelfond–Lifschitz style Γ(neg) used by the well-founded alternating
// fixpoint.
//
// Rule plans are evaluated concurrently across a worker pool (see
// SetWorkers); each worker derives into a private state and the
// per-worker states are merged by set union at the end, so the result
// is identical to sequential evaluation.
func (in *Instance) ApplySplit(pos, neg State) State {
	return in.runTasks(in.fullTasks(), pos, neg, runOpts{shard: true})
}

// fullTasks builds one driverless task per rule plan — the task set of
// a full Θ application.
func (in *Instance) fullTasks() []evalTask {
	tasks := make([]evalTask, len(in.plans))
	for i, rp := range in.plans {
		tasks[i] = evalTask{rp: rp, driver: -1}
	}
	return tasks
}

// ApplyDelta computes the subset of Θ(cur) derivable by rule
// applications that use at least one tuple of delta in a positive IDB
// literal.  old must be the previous stage (cur = old ∪ delta).
// Negated literals are evaluated against cur.  Rules without positive
// IDB literals contribute nothing (their derivations never depend on
// the delta; see the package comment).
func (in *Instance) ApplyDelta(old, delta, cur State) State {
	return in.ApplyDeltaSplit(old, delta, cur, cur)
}

// ApplyDeltaSplit is ApplyDelta with negated IDB literals evaluated
// against an explicit state neg instead of cur.  Like ApplySplit, the
// (rule, variant) pairs run concurrently on the worker pool.
//
// It is the IDB-insert special case of the general delta machinery in
// delta.go: every IDB predicate drives positive literals with its delta
// relation, literals before the driver read the old relation, literals
// after it fall through to cur.
func (in *Instance) ApplyDeltaSplit(old, delta, cur, neg State) State {
	deltas := make(map[string]Delta, len(delta))
	for pred, d := range delta {
		deltas[pred] = Delta{PosDriver: d, Before: old[pred]}
	}
	return in.runTasks(in.deltaTasks(deltas), cur, neg, runOpts{shard: true})
}

// runOpts tunes one runTasks pass.
type runOpts struct {
	// frontier, when non-nil, drops every emission whose head tuple is
	// already present in frontier[headPred]: the pass returns exactly the
	// genuinely-new tuples, with no derived state and no Diff.
	frontier State
	// hints pre-sizes per-predicate outputs from the caller's expected
	// cardinality (typically last round's delta), and selects which
	// predicates get hash-partitioned per-worker outputs.
	hints map[string]int
	// shard allows intra-rule data parallelism: when tasks < workers,
	// tasks are split into arena-range shards of their driver relation so
	// every worker gets work even on programs with few rules.
	shard bool
	// nparts, when > 1, switches every predicate's per-worker output to
	// nparts owner buckets partitioned by TupleHash — the exchange unit
	// of partitioned evaluation (runTasksParts).  Unlike the hint-driven
	// partitioning above, it applies unconditionally.
	nparts int
	// workers caps the worker pool for this pass; 0 follows
	// in.Workers().  Partitioned passes split the instance pool across
	// the concurrently-evaluating partitions.
	workers int
	// filters, when non-nil, front the frontier probe per predicate with
	// a Bloom summary of the accumulated state (see evalCtx.filter).
	filters map[string]*relation.Filter
}

// workerOut is one worker's private derivation output.  Most predicates
// derive into out; predicates expected to produce large deltas (hints ≥
// partitionThreshold) derive into parts — nbuckets relations partitioned
// by head-tuple hash — so the cross-worker merge can run bucket-by-
// bucket in parallel and assemble the result by disjoint concatenation
// instead of one serial re-hashed union.
type workerOut struct {
	out     State
	parts   map[string][]*relation.Relation
	against State // frontier filter, nil when the pass keeps everything
	// filters and the probe counters serve partitioned exchange passes:
	// per-predicate Bloom prefilters over the accumulated state, and the
	// per-worker tallies of how often they were consulted / saved the
	// exact probe.
	filters map[string]*relation.Filter
	fprobes int64
	fskips  int64
}

// partitionThreshold is the expected per-predicate cardinality above
// which parallel frontier passes switch that predicate's per-worker
// output to hash-partitioned buckets.  Below it the partitions' fixed
// cost (nbuckets relations per worker) outweighs the parallel merge.
const partitionThreshold = 1024

// The scratch and relation freelists are process-global, not
// per-instance: a sync.Pool that ever sees a Put registers itself with
// the runtime and is visited by every later GC cycle, so per-instance
// pools make GC cost scale with the number of instances ever built — a
// real tax on workloads like demand-driven queries that construct
// thousands of short-lived instances.  Pooled entries carry no
// instance state (scratches are stripped of references on put,
// relations are Reset), so sharing them across instances is sound.
var scratchPool sync.Pool

// maxPooledArity bounds the per-arity freelist array; wider relations
// are simply allocated fresh.
const maxPooledArity = 16

var relPools [maxPooledArity + 1]sync.Pool

// getRel checks a relation of the given arity out of the per-arity
// freelist, falling back to a fresh allocation.  Pooled relations were
// cleared by Reset on the way in, so a recycled one is
// indistinguishable from a new one — except its table slots, arena
// capacity, and map buckets survive, which is the point.
func (in *Instance) getRel(arity int) *relation.Relation {
	if arity >= 0 && arity <= maxPooledArity {
		if r, _ := relPools[arity].Get().(*relation.Relation); r != nil {
			return r
		}
	}
	return relation.New(arity)
}

// putRel returns a provably-unreferenced relation to the freelist.
// Reset refuses frozen or snapshot-sharing storage, so anything a
// caller might still observe is dropped instead of recycled.
func (in *Instance) putRel(r *relation.Relation) {
	if r == nil || r.Arity() < 0 || r.Arity() > maxPooledArity || !r.Reset() {
		return
	}
	relPools[r.Arity()].Put(r)
}

// putState recycles every relation of a dead worker state.
func (in *Instance) putState(s State) {
	for _, r := range s {
		in.putRel(r)
	}
}

// newWorkerState is NewState backed by the instance freelists — the
// per-round worker outputs come from and return to the pools, so
// steady-state rounds reuse last round's storage.
func (in *Instance) newWorkerState() State {
	s := make(State, len(in.idb))
	for pred := range in.idb {
		s[pred] = in.getRel(in.arities[pred])
	}
	return s
}

// newWorkerOut builds a worker's output for the given pass shape.
// nbuckets ≤ 1 disables partitioning (the sequential path and legacy
// union merges).
func (in *Instance) newWorkerOut(opts runOpts, nbuckets int) *workerOut {
	wo := &workerOut{out: in.newWorkerState(), against: opts.frontier, filters: opts.filters}
	if opts.nparts > 0 {
		// Partition-exchange pass: every predicate derives into nparts
		// owner buckets, regardless of expected cardinality — the bucket
		// boundary is the exchange unit, not a merge optimization.
		wo.parts = make(map[string][]*relation.Relation, len(wo.out))
		for pred, r := range wo.out {
			parts := make([]*relation.Relation, opts.nparts)
			for b := range parts {
				parts[b] = in.getRel(r.Arity())
				if n := opts.hints[pred]; n > 0 {
					parts[b].ReserveHint(n / opts.nparts)
				}
			}
			wo.parts[pred] = parts
		}
		return wo
	}
	for pred, n := range opts.hints {
		if r := wo.out[pred]; r != nil {
			if nbuckets > 1 && n >= partitionThreshold {
				parts := make([]*relation.Relation, nbuckets)
				for b := range parts {
					parts[b] = in.getRel(r.Arity())
					parts[b].ReserveHint(n / nbuckets)
				}
				if wo.parts == nil {
					wo.parts = make(map[string][]*relation.Relation)
				}
				wo.parts[pred] = parts
			} else {
				r.ReserveHint(n)
			}
		}
	}
	return wo
}

// runTasks evaluates every task against (pos, neg) and returns the
// union of their derivations (minus opts.frontier, when set).  With
// more than one task and more than one configured worker, tasks are
// distributed over a pool of goroutines, each deriving into a private
// output; because the final merge is a union of sets (or a disjoint
// concatenation of hash partitions), the result is bit-exact regardless
// of worker count or scheduling order.  Input states are only read:
// lazy index construction inside Relation is internally synchronized.
//
// When opts.shard is set and there are fewer tasks than workers, tasks
// are first split into arena-range shards of their driver relation (see
// expandShards), so even a two-rule program keeps every core busy.
func (in *Instance) runTasks(tasks []evalTask, pos, neg State, opts runOpts) State {
	out, _ := in.runTasksStats(tasks, pos, neg, opts)
	return out
}

// runTasksStats is runTasks returning the pass's emit-path prefilter
// telemetry alongside the derived state (zero when opts.filters is
// nil — the exact-probe-only path never consults a filter).
func (in *Instance) runTasksStats(tasks []evalTask, pos, neg State, opts runOpts) (State, FilterStats) {
	nw := in.Workers()
	if opts.shard && nw > len(tasks) && len(tasks) > 0 && in.Sharding() {
		tasks = in.expandShards(tasks, pos, nw)
	}
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw <= 1 {
		wo := in.newWorkerOut(opts, 1)
		for _, t := range tasks {
			in.evalRule(t, pos, neg, wo, nil)
		}
		return wo.out, FilterStats{Probes: wo.fprobes, Skips: wo.fskips}
	}

	wos := make([]*workerOut, nw)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(w int) {
			defer wg.Done()
			wo := in.newWorkerOut(opts, nw)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					break
				}
				in.evalRule(tasks[i], pos, neg, wo, nil)
			}
			wos[w] = wo
		}(w)
	}
	wg.Wait()
	var st FilterStats
	for _, wo := range wos {
		st.Probes += wo.fprobes
		st.Skips += wo.fskips
	}
	return in.mergeWorkerOuts(wos, nw), st
}

// mergeWorkerOuts combines per-worker outputs: plain predicates by set
// union into the first worker's state, partitioned predicates by a
// parallel per-bucket union followed by disjoint concatenation (buckets
// are hash partitions, so tuples of different buckets can never
// collide).  Merged-away worker relations — every output except the
// returned state's own relations — go back to the instance freelists;
// tuples themselves are shared into the survivor, never the storage.
func (in *Instance) mergeWorkerOuts(wos []*workerOut, nbuckets int) State {
	out := wos[0].out
	for _, wo := range wos[1:] {
		out.UnionWith(wo.out)
		in.putState(wo.out)
	}
	for pred, first := range wos[0].parts {
		merged := make([]*relation.Relation, nbuckets)
		var wg sync.WaitGroup
		wg.Add(nbuckets)
		for b := 0; b < nbuckets; b++ {
			go func(b int) {
				defer wg.Done()
				m := first[b]
				for _, wo := range wos[1:] {
					m.UnionWith(wo.parts[pred][b])
					in.putRel(wo.parts[pred][b])
				}
				merged[b] = m
			}(b)
		}
		wg.Wait()
		// Disjoint concatenation into a pooled relation (the same merge
		// relation.ConcatDisjoint performs, minus its fresh allocation);
		// the consumed buckets go straight back to the freelist.
		total := 0
		for _, m := range merged {
			total += m.Len()
		}
		whole := in.getRel(in.arities[pred])
		whole.ReserveHint(total)
		for _, m := range merged {
			whole.AppendDisjoint(m)
			in.putRel(m)
		}
		// The non-partitioned per-worker outputs for this predicate are
		// empty by construction, but union them anyway for safety.
		whole.UnionWith(out[pred])
		in.putRel(out[pred])
		out[pred] = whole
	}
	return out
}

// runTasksCount evaluates every task in counting mode: instead of a
// derived set it returns, per head predicate, the multiset of head
// tuples with the number of distinct rule-body derivations that emitted
// each.  Workers fill private multisets merged by summation, so counts
// are exact regardless of scheduling.
func (in *Instance) runTasksCount(tasks []evalTask, pos, neg State) map[string]*relation.Multiset {
	nw := in.Workers()
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw <= 1 {
		cnt := make(map[string]*relation.Multiset)
		for _, t := range tasks {
			in.evalRule(t, pos, neg, &workerOut{}, cnt)
		}
		return cnt
	}

	cnts := make([]map[string]*relation.Multiset, nw)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(w int) {
			defer wg.Done()
			cnt := make(map[string]*relation.Multiset)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					break
				}
				in.evalRule(tasks[i], pos, neg, &workerOut{}, cnt)
			}
			cnts[w] = cnt
		}(w)
	}
	wg.Wait()

	cnt := cnts[0]
	for _, c := range cnts[1:] {
		for pred, ms := range c {
			if have := cnt[pred]; have != nil {
				have.MergeFrom(ms)
			} else {
				cnt[pred] = ms
			}
		}
	}
	return cnt
}

// defaultWorkers is the process-wide worker-pool default applied to
// instances that never called SetWorkers; 0 means GOMAXPROCS.  It lets
// drivers like cmd/bench pin the parallelism of instances they do not
// construct themselves.
var defaultWorkers atomic.Int32

// SetDefaultWorkers sets the process-wide default worker-pool size for
// instances without an explicit SetWorkers; n ≤ 0 restores GOMAXPROCS.
//
// Deprecated: process-wide defaults compose badly across concurrent
// callers.  Prefer the per-call Options API (Options.Workers, threaded
// through core.EvalOpts / incr.NewWith / server.Config / repro.Options);
// this setter remains as the fallback the zero Options resolve to.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Workers returns the effective worker-pool size: the value set with
// SetWorkers, else the process default, else runtime.GOMAXPROCS(0).
func (in *Instance) Workers() int {
	if in.nworkers > 0 {
		return in.nworkers
	}
	if d := defaultWorkers.Load(); d > 0 {
		return int(d)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers fixes the worker-pool size used by ApplySplit and
// ApplyDeltaSplit; n ≤ 0 restores the default (GOMAXPROCS).  Parallel
// and sequential evaluation produce identical states.
func (in *Instance) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	in.nworkers = n
}

// IsFixpoint reports whether Θ(S̄) = S̄, i.e. whether s is a fixpoint of
// (π, D) in the paper's sense.
func (in *Instance) IsFixpoint(s State) bool {
	return in.Apply(s).Equal(s)
}

// evalScratch is the reusable per-rule evaluation state: the context
// struct, its scratch tuples and source slices, and the variable
// binding array.  evalRule checks one out of the instance's pool per
// call and returns it cleared, so the steady state of a fixpoint loop
// allocates nothing here regardless of round count.
type evalScratch struct {
	ctx     evalCtx
	binding []int
}

// growSlice resizes a scratch slice to n, reallocating only past the
// high-water mark of previous rules.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// getScratch checks a cleared evalScratch out of the pool, sized for
// the given rule plan.
func (in *Instance) getScratch(rp *rulePlan, maxNeg int) *evalScratch {
	sc, _ := scratchPool.Get().(*evalScratch)
	if sc == nil {
		sc = &evalScratch{}
	}
	sc.ctx.headBuf = growSlice(sc.ctx.headBuf, len(rp.headSlots))
	sc.ctx.negBuf = growSlice(sc.ctx.negBuf, maxNeg)
	sc.ctx.pos = growSlice(sc.ctx.pos, len(rp.positives))
	sc.ctx.neg = growSlice(sc.ctx.neg, len(rp.negatives))
	sc.binding = growSlice(sc.binding, rp.nvars)
	for i := range sc.binding {
		sc.binding[i] = -1
	}
	return sc
}

// putScratch returns a scratch to the pool, dropping every relation
// reference so pooled entries never pin last round's states.
func (in *Instance) putScratch(sc *evalScratch) {
	ctx := &sc.ctx
	ctx.out, ctx.cur, ctx.parts, ctx.cnt, ctx.filter = nil, nil, nil, nil, nil
	for i := range ctx.pos {
		ctx.pos[i] = nil
	}
	for i := range ctx.neg {
		ctx.neg[i] = nil
	}
	ctx.fprobes, ctx.fskips = 0, 0
	scratchPool.Put(sc)
}

// evalRule evaluates one task's rule plan.  posState resolves positive
// IDB literals, negState negated ones; the task's override maps replace
// the relation of specific literal indices (the semi-naive and delta
// variants).  With cnt non-nil the rule runs in counting mode: every
// derivation bumps the head tuple's count in cnt[headPred] instead of
// inserting into the worker output.
func (in *Instance) evalRule(task evalTask, posState, negState State, wo *workerOut, cnt map[string]*relation.Multiset) {
	rp := task.rp
	maxNeg := 0
	for _, np := range rp.negatives {
		if len(np.slots) > maxNeg {
			maxNeg = len(np.slots)
		}
	}
	sc := in.getScratch(rp, maxNeg)
	ctx := &sc.ctx
	ctx.usize = in.db.Universe().Size()
	ctx.out = wo.out[rp.headPred]
	if wo.parts != nil {
		ctx.parts = wo.parts[rp.headPred]
	}
	if wo.against != nil {
		ctx.cur = wo.against[rp.headPred]
	}
	if wo.filters != nil {
		ctx.filter = wo.filters[rp.headPred]
	}
	if cnt != nil {
		ms := cnt[rp.headPred]
		if ms == nil {
			ms = relation.NewMultiset(len(rp.headSlots))
			cnt[rp.headPred] = ms
		}
		ctx.cnt = ms
	}
	for i, lp := range rp.positives {
		switch {
		case task.pos[i] != nil:
			ctx.pos[i] = task.pos[i]
		case !lp.idb:
			ctx.pos[i] = in.edbRel(lp.pred)
		default:
			ctx.pos[i] = posState[lp.pred]
		}
	}
	for i, np := range rp.negatives {
		switch {
		case task.neg[i] != nil:
			ctx.neg[i] = task.neg[i]
		case !np.idb:
			ctx.neg[i] = in.edbRel(np.pred)
		default:
			ctx.neg[i] = negState[np.pred]
		}
	}
	// Plan against the resolved relations: the planner sees the actual
	// sizes of this task's sources (deltas included), so join orders are
	// re-costed every round.
	shardLit := -1
	if task.shardHi > 0 {
		shardLit = task.shardLit
	}
	ep := buildExec(rp, ctx.pos, in.CostPlanner(), shardLit, task.shardLo, task.shardHi)
	in.run(rp, ctx, ep, 0, sc.binding)
	wo.fprobes += ctx.fprobes
	wo.fskips += ctx.fskips
	in.putScratch(sc)
}

// slotValue resolves a slot under the current binding; -1 means the
// slot holds an unbound variable.
func slotValue(s slot, binding []int) int {
	if s.isConst {
		return s.val
	}
	return binding[s.val]
}

// run executes the plan from step si under the given partial binding,
// emitting head tuples into ctx.out.
func (in *Instance) run(rp *rulePlan, ctx *evalCtx, ep *execPlan, si int, binding []int) {
	if si == len(ep.steps) {
		// Fill the scratch head buffer; AddNotIn (and Multiset.Bump for a
		// new tuple) copies it only when actually stored.  ctx.cur is the
		// frontier filter: emissions already in the accumulated state are
		// dropped here, by one read-only membership probe, instead of
		// surviving into a derived state only to be removed by a Diff.
		t := ctx.headBuf
		for i, s := range rp.headSlots {
			t[i] = slotValue(s, binding)
		}
		switch {
		case ctx.cnt != nil:
			ctx.cnt.Bump(t, 1)
		case ctx.parts != nil:
			// One emit-time hash serves owner routing, the Bloom prefilter,
			// and both membership probes (bucket dedup + accumulated state).
			h := relation.TupleHash(t)
			b := ctx.parts[h%uint64(len(ctx.parts))]
			if ctx.filter != nil {
				// "Definitely absent" proves the tuple is not in the
				// accumulated state, so only the bucket's own dedup is
				// needed; "maybe present" takes the exact probe, which
				// drops duplicates exactly.
				ctx.fprobes++
				if !ctx.filter.MayContainHash(h) {
					ctx.fskips++
					b.AddHash(t, h)
				} else {
					b.AddNotInHash(t, h, ctx.cur)
				}
			} else {
				b.AddNotInHash(t, h, ctx.cur)
			}
		case ctx.filter != nil:
			// Unpartitioned frontier pass fronted by the accumulated-state
			// Bloom summary (Options.FrontierFilter): same protocol as the
			// exchange path, minus the owner routing.
			h := relation.TupleHash(t)
			ctx.fprobes++
			if !ctx.filter.MayContainHash(h) {
				ctx.fskips++
				ctx.out.AddHash(t, h)
			} else {
				ctx.out.AddNotInHash(t, h, ctx.cur)
			}
		default:
			ctx.out.AddNotIn(t, ctx.cur)
		}
		return
	}
	st := ep.steps[si]
	switch st.kind {
	case stepJoin:
		in.runJoin(rp, ctx, ep, si, binding)

	case stepExtend:
		for v := 0; v < ctx.usize; v++ {
			binding[st.idx] = v
			in.run(rp, ctx, ep, si+1, binding)
		}
		binding[st.idx] = -1

	case stepBindEq:
		c := rp.cmps[st.idx]
		// Exactly one side is unbound by plan construction.
		lv, rv := slotValue(c.left, binding), slotValue(c.right, binding)
		var target slot
		var val int
		if lv < 0 {
			target, val = c.left, rv
		} else {
			target, val = c.right, lv
		}
		binding[target.val] = val
		in.run(rp, ctx, ep, si+1, binding)
		binding[target.val] = -1

	case stepCmp:
		c := rp.cmps[st.idx]
		eq := slotValue(c.left, binding) == slotValue(c.right, binding)
		if eq != c.neq {
			in.run(rp, ctx, ep, si+1, binding)
		}

	case stepNeg:
		np := rp.negatives[st.idx]
		// The scratch buffer is fully consumed by Has before any
		// deeper step reuses it.
		t := ctx.negBuf[:len(np.slots)]
		for i, s := range np.slots {
			t[i] = slotValue(s, binding)
		}
		if !ctx.neg[st.idx].Has(t) {
			in.run(rp, ctx, ep, si+1, binding)
		}
	}
}

// runJoin enumerates the candidate tuples of a positive literal —
// through the step's index probe when it has bound columns, by arena
// scan otherwise — and extends the binding per match.  The per-tuple
// work is the step's compiled micro-op array; together with the probe
// this loop performs no allocation (see BenchmarkJoinAllocs).
func (in *Instance) runJoin(rp *rulePlan, ctx *evalCtx, ep *execPlan, si int, binding []int) {
	je := ep.steps[si].join
	rel := ctx.pos[je.lit]
	if rel.Empty() {
		return
	}

	if len(je.probeCols) > 0 {
		for i, s := range je.probeSrc {
			je.probeVals[i] = slotValue(s, binding)
		}
		var offs []int32
		if len(je.probeCols) == 1 {
			offs = rel.Lookup(je.probeCols[0], je.probeVals[0])
		} else {
			offs = rel.LookupCols(je.probeCols, je.probeVals)
		}
		if je.shardHi > 0 {
			offs = relation.OffsetsInRange(offs, je.shardLo, je.shardHi)
		}
		for _, off := range offs {
			in.matchTuple(rp, ctx, ep, si, binding, je, rel.At(off))
		}
		return
	}
	lo, hi := int32(0), int32(rel.Len())
	if je.shardHi > 0 {
		lo, hi = je.shardLo, je.shardHi
	}
	for off := lo; off < hi; off++ {
		in.matchTuple(rp, ctx, ep, si, binding, je, rel.At(off))
	}
}

// matchTuple runs a join step's micro-ops against one candidate tuple,
// recursing into the rest of the plan on success.  bindVars lists
// exactly the variables the ops may bind — all unbound on entry — so
// resetting them unconditionally afterwards is correct even when a
// check fails midway.
func (in *Instance) matchTuple(rp *rulePlan, ctx *evalCtx, ep *execPlan, si int, binding []int, je *joinExec, t relation.Tuple) {
	ok := true
	for _, op := range je.ops {
		v := t[op.col]
		switch op.kind {
		case opBind:
			binding[op.arg] = v
		case opCheckVar:
			if binding[op.arg] != v {
				ok = false
			}
		case opCheckConst:
			if v != int(op.arg) {
				ok = false
			}
		}
		if !ok {
			break
		}
	}
	if ok {
		in.run(rp, ctx, ep, si+1, binding)
	}
	for _, v := range je.bindVars {
		binding[v] = -1
	}
}
