package engine

import "repro/internal/relation"

// evalCtx carries the relation sources for one rule evaluation: posRel
// resolves the i-th positive literal, negRel the i-th negated literal.
type evalCtx struct {
	posRel func(i int) *relation.Relation
	negRel func(i int) *relation.Relation
	out    *relation.Relation
	usize  int
}

// Apply computes Θ(S̄): the relations derived from the database and s by
// one parallel application of all rules.  Apply never reads its output
// while deriving, so it is the paper's simultaneous operator.
func (in *Instance) Apply(s State) State { return in.ApplySplit(s, s) }

// ApplySplit evaluates positive IDB literals against pos and negated
// IDB literals against neg.  With pos = neg it is Θ; with neg held
// fixed it is the monotone operator whose least fixpoint is the
// Gelfond–Lifschitz style Γ(neg) used by the well-founded alternating
// fixpoint.
func (in *Instance) ApplySplit(pos, neg State) State {
	out := in.NewState()
	for _, rp := range in.plans {
		in.evalRule(rp, pos, neg, out, nil)
	}
	return out
}

// ApplyDelta computes the subset of Θ(cur) derivable by rule
// applications that use at least one tuple of delta in a positive IDB
// literal.  old must be the previous stage (cur = old ∪ delta).
// Negated literals are evaluated against cur.  Rules without positive
// IDB literals contribute nothing (their derivations never depend on
// the delta; see the package comment).
func (in *Instance) ApplyDelta(old, delta, cur State) State {
	return in.ApplyDeltaSplit(old, delta, cur, cur)
}

// ApplyDeltaSplit is ApplyDelta with negated IDB literals evaluated
// against an explicit state neg instead of cur.
func (in *Instance) ApplyDeltaSplit(old, delta, cur, neg State) State {
	out := in.NewState()
	for _, rp := range in.plans {
		if len(rp.posIDB) == 0 {
			continue
		}
		// Variant v: positive IDB literals before the v-th read old,
		// the v-th reads delta, later ones read cur.  Every derivation
		// using ≥1 delta tuple is covered exactly once by the variant
		// whose index is its first delta position.
		for v := range rp.posIDB {
			variant := make(map[int]State, len(rp.posIDB))
			for k, litIdx := range rp.posIDB {
				switch {
				case k < v:
					variant[litIdx] = old
				case k == v:
					variant[litIdx] = delta
				default:
					variant[litIdx] = cur
				}
			}
			in.evalRule(rp, cur, neg, out, variant)
		}
	}
	return out
}

// IsFixpoint reports whether Θ(S̄) = S̄, i.e. whether s is a fixpoint of
// (π, D) in the paper's sense.
func (in *Instance) IsFixpoint(s State) bool {
	return in.Apply(s).Equal(s)
}

// evalRule evaluates one rule plan.  posState resolves positive IDB
// literals, negState negated ones; posOverride, when non-nil, overrides
// the state used by specific positive literal indices (the semi-naive
// variants).
func (in *Instance) evalRule(rp *rulePlan, posState, negState State, out State, posOverride map[int]State) {
	ctx := &evalCtx{
		usize: in.db.Universe().Size(),
		out:   out[rp.headPred],
		posRel: func(i int) *relation.Relation {
			lp := rp.positives[i]
			if !lp.idb {
				return in.edbRel(lp.pred)
			}
			if posOverride != nil {
				if st, ok := posOverride[i]; ok {
					return st[lp.pred]
				}
			}
			return posState[lp.pred]
		},
		negRel: func(i int) *relation.Relation {
			np := rp.negatives[i]
			if !np.idb {
				return in.edbRel(np.pred)
			}
			return negState[np.pred]
		},
	}
	binding := make([]int, rp.nvars)
	for i := range binding {
		binding[i] = -1
	}
	in.run(rp, ctx, 0, binding)
}

// slotValue resolves a slot under the current binding; -1 means the
// slot holds an unbound variable.
func slotValue(s slot, binding []int) int {
	if s.isConst {
		return s.val
	}
	return binding[s.val]
}

// run executes the plan from step si under the given partial binding,
// emitting head tuples into ctx.out.
func (in *Instance) run(rp *rulePlan, ctx *evalCtx, si int, binding []int) {
	if si == len(rp.steps) {
		t := make(relation.Tuple, len(rp.headSlots))
		for i, s := range rp.headSlots {
			t[i] = slotValue(s, binding)
		}
		ctx.out.Add(t)
		return
	}
	st := rp.steps[si]
	switch st.kind {
	case stepJoin:
		in.runJoin(rp, ctx, si, binding)

	case stepExtend:
		for v := 0; v < ctx.usize; v++ {
			binding[st.idx] = v
			in.run(rp, ctx, si+1, binding)
		}
		binding[st.idx] = -1

	case stepBindEq:
		c := rp.cmps[st.idx]
		// Exactly one side is unbound by plan construction.
		lv, rv := slotValue(c.left, binding), slotValue(c.right, binding)
		var target slot
		var val int
		if lv < 0 {
			target, val = c.left, rv
		} else {
			target, val = c.right, lv
		}
		binding[target.val] = val
		in.run(rp, ctx, si+1, binding)
		binding[target.val] = -1

	case stepCmp:
		c := rp.cmps[st.idx]
		eq := slotValue(c.left, binding) == slotValue(c.right, binding)
		if eq != c.neq {
			in.run(rp, ctx, si+1, binding)
		}

	case stepNeg:
		np := rp.negatives[st.idx]
		t := make(relation.Tuple, len(np.slots))
		for i, s := range np.slots {
			t[i] = slotValue(s, binding)
		}
		if !ctx.negRel(st.idx).Has(t) {
			in.run(rp, ctx, si+1, binding)
		}
	}
}

// runJoin iterates the candidate tuples of a positive literal,
// extending the binding consistently for each match.
func (in *Instance) runJoin(rp *rulePlan, ctx *evalCtx, si int, binding []int) {
	lp := rp.positives[rp.steps[si].idx]
	rel := ctx.posRel(rp.steps[si].idx)
	if rel.Empty() {
		return
	}

	// Pick an access path: the first argument position holding a
	// constant or an already-bound variable selects a hash index.
	col, val := -1, 0
	for j, s := range lp.slots {
		if v := slotValue(s, binding); v >= 0 {
			col, val = j, v
			break
		}
	}

	match := func(t relation.Tuple) {
		// Check consistency and record which variables this tuple binds.
		var bonds []int
		ok := true
		for j, s := range lp.slots {
			if s.isConst {
				if t[j] != s.val {
					ok = false
					break
				}
				continue
			}
			switch b := binding[s.val]; {
			case b < 0:
				binding[s.val] = t[j]
				bonds = append(bonds, s.val)
			case b != t[j]:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok {
			in.run(rp, ctx, si+1, binding)
		}
		for _, v := range bonds {
			binding[v] = -1
		}
	}

	if col >= 0 {
		for _, t := range rel.Index(col)[val] {
			match(t)
		}
		return
	}
	rel.Each(func(t relation.Tuple) bool {
		match(t)
		return true
	})
}
