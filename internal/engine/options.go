// options.go — the per-call options API.
//
// Every engine knob used to be reachable only through a pair of
// setters: an instance method (SetWorkers, SetCostPlanner, SetFrontier,
// SetSharding) and a process-wide default (SetDefaultWorkers, …) that
// drivers toggled before constructing instances they did not own.  The
// process-wide globals compose badly — two callers in one process fight
// over them, and tests must carefully restore them — so the Options
// struct carries the same knobs per call instead: it is accepted by
// NewWith here and threaded by the higher layers (core.EvalOpts,
// semantics.StratifiedOpts, incr.NewWith, server.Config) down to every
// Instance they construct.  The zero Options follows the process-wide
// defaults, so the old setters keep working as deprecated wrappers.
package engine

import (
	"repro/internal/ast"
	"repro/internal/relation"
)

// Toggle is a tri-state option value: follow the process-wide default,
// or force a feature on or off for this call.  The zero value is
// ToggleDefault, so zero Options change nothing.
type Toggle int8

const (
	// ToggleDefault follows the process-wide default (the SetDefault*
	// value, else the feature's built-in default).
	ToggleDefault Toggle = iota
	// On forces the feature on for this call.
	On
	// Off forces the feature off for this call.
	Off
)

// ToggleOf converts a boolean into a forced Toggle.
func ToggleOf(on bool) Toggle {
	if on {
		return On
	}
	return Off
}

// Enabled resolves the toggle against a fallback used when the toggle
// is ToggleDefault.
func (t Toggle) Enabled(fallback bool) bool {
	switch t {
	case On:
		return true
	case Off:
		return false
	}
	return fallback
}

// Options configures one engine instance (and, threaded through the
// higher layers, one evaluation, query, maintainer, or server).  The
// zero value follows the process-wide defaults, so existing call sites
// and the deprecated SetDefault* globals behave exactly as before.
type Options struct {
	// Workers is the Θ evaluation worker-pool size; 0 follows the
	// process default (SetDefaultWorkers, else GOMAXPROCS).
	Workers int
	// Planner selects cost-based join planning (Off = syntactic
	// literal order, the ablation baseline).
	Planner Toggle
	// Frontier selects fused dedup-at-emit derivation (Off = the
	// derive+Diff oracle pipeline).
	Frontier Toggle
	// Sharding allows intra-rule data-parallel sharding when a round
	// has fewer rule tasks than workers.
	Sharding Toggle
	// Partitions is the number of hash-partitioned evaluator instances
	// the semi-naive fixpoint loops split into (see internal/partition);
	// 0 follows the process default (SetDefaultPartitions, else 1 — a
	// single unpartitioned instance).
	Partitions int
	// ExchangeFilter selects the Bloom prefilter on the partition
	// exchange path (Off = every emission takes the exact
	// accumulated-state probe, the ablation baseline).
	ExchangeFilter Toggle
	// FrontierFilter selects the Bloom prefilter on the unpartitioned
	// frontier path — the same prefilter ExchangeFilter applies to the
	// exchange path, fronting the fixpoint loops' accumulated-state
	// probe (Off = exact probes only, the ablation baseline).
	FrontierFilter Toggle
}

// apply configures in with the non-default options.
func (o Options) apply(in *Instance) {
	if o.Workers > 0 {
		in.SetWorkers(o.Workers)
	}
	if o.Planner != ToggleDefault {
		in.planner = o.Planner
	}
	if o.Frontier != ToggleDefault {
		in.frontier = o.Frontier
	}
	if o.Sharding != ToggleDefault {
		in.sharding = o.Sharding
	}
	if o.Partitions > 0 {
		in.SetPartitions(o.Partitions)
	}
	if o.ExchangeFilter != ToggleDefault {
		in.exchFilter = o.ExchangeFilter
	}
	if o.FrontierFilter != ToggleDefault {
		in.frontFilter = o.FrontierFilter
	}
}

// NewWith is New with per-instance options applied: the one constructor
// every option-threading layer funnels into.
func NewWith(prog *ast.Program, db *relation.Database, o Options) (*Instance, error) {
	in, err := New(prog, db)
	if err != nil {
		return nil, err
	}
	o.apply(in)
	return in, nil
}
