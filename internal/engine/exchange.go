// exchange.go — the engine half of partitioned evaluation.
//
// Partitioned evaluation (internal/partition) splits each semi-naive
// round across K concurrently-evaluating partitions: partition p drives
// the round with its own shard of the delta (the tuples whose TupleHash
// routes to p) while non-driver literals read the full shared states.
// Each partition's derivations are routed at emit time into K owner
// buckets by the same hash, so what crosses a partition boundary
// between rounds is exactly the bucket of tuples the receiving
// partition owns — the cross-partition delta exchange.
//
// The entry points here are the per-partition round bodies: they are
// ApplyDeltaSplitFrontier / ApplyDeltasFrontier with the single merged
// output replaced by NParts owner-bucket states, plus an optional Bloom
// prefilter over the accumulated state fronting the exact frontier
// probe (see evalCtx.filter; soundness is argued in relation/filter.go).
//
// The K knob follows the same conventions as Workers: a per-instance
// SetPartitions, a deprecated process-wide SetDefaultPartitions
// fallback, and Options.Partitions threaded through the higher layers.
// The prefilter is a Toggle like Frontier/Sharding, the ablation
// oracle being the exact-probe-only path.
package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// PartsOpts configures one partitioned exchange pass.
type PartsOpts struct {
	// NParts is the number of owner buckets (the partition count K).
	NParts int
	// Workers caps this pass's worker pool; 0 follows Workers().  The
	// partitioned driver splits the instance pool across the K
	// concurrently-evaluating partitions.
	Workers int
	// Filters, when non-nil, are per-predicate Bloom summaries of the
	// accumulated state the pass filters against; they front the exact
	// frontier probe on the emit path.
	Filters map[string]*relation.Filter
}

// FilterStats reports the emit-path prefilter telemetry of one pass:
// how many emissions consulted the filter and how many of those skipped
// the exact accumulated-state probe on a definitive "absent".
type FilterStats struct {
	Probes int64
	Skips  int64
}

// ApplyDeltaSplitFrontierParts is ApplyDeltaSplitFrontier with the
// output split into po.NParts owner buckets: bucket b holds exactly the
// genuinely-new tuples t with TupleHash(t) % NParts == b.  The buckets
// concatenate to exactly what ApplyDeltaSplitFrontier returns on the
// same inputs.
func (in *Instance) ApplyDeltaSplitFrontierParts(old, delta, cur, neg State, po PartsOpts) ([]State, FilterStats) {
	deltas := make(map[string]Delta, len(delta))
	hints := make(map[string]int, len(delta))
	for pred, d := range delta {
		deltas[pred] = Delta{PosDriver: d, Before: old[pred]}
		if n := d.Len(); n > 0 {
			hints[pred] = n
		}
	}
	return in.applyPartsTasks(in.deltaTasks(deltas), cur, neg, hints, cur, po)
}

// ApplyDeltasFrontierParts is ApplyDeltasFrontier with the output split
// into po.NParts owner buckets — the partitioned round body of the
// incremental maintainer's propagation loops.
func (in *Instance) ApplyDeltasFrontierParts(pos, neg State, deltas map[string]Delta, against State, po PartsOpts) ([]State, FilterStats) {
	return in.applyPartsTasks(in.deltaTasks(deltas), pos, neg, nil, against, po)
}

// applyPartsTasks runs one partitioned pass, honoring the instance's
// frontier knob: with the frontier off, buckets are derived unfiltered
// and diffed per bucket afterwards — the same derive+Diff oracle the
// unpartitioned entry points fall back to (the prefilter only fronts
// the fused probe, so it is inert on this path).
func (in *Instance) applyPartsTasks(tasks []evalTask, pos, neg State, hints map[string]int, against State, po PartsOpts) ([]State, FilterStats) {
	if !in.FrontierEval() {
		parts, st := in.runTasksParts(tasks, pos, neg, runOpts{
			shard: true, hints: hints, nparts: po.NParts, workers: po.Workers})
		for b := range parts {
			parts[b] = diffAgainst(parts[b], against)
		}
		return parts, st
	}
	return in.runTasksParts(tasks, pos, neg, runOpts{
		frontier: against, hints: hints, shard: true,
		nparts: po.NParts, workers: po.Workers, filters: po.Filters})
}

// runTasksParts is runTasks for partition-exchange passes: every
// derivation routes into one of opts.nparts owner buckets, and the
// per-worker buckets merge bucket-by-bucket into nparts states instead
// of one union.  Tuples of different buckets can never collide, so the
// bucket states are pairwise disjoint by construction.
func (in *Instance) runTasksParts(tasks []evalTask, pos, neg State, opts runOpts) ([]State, FilterStats) {
	nw := opts.workers
	if nw <= 0 {
		nw = in.Workers()
	}
	if opts.shard && nw > len(tasks) && len(tasks) > 0 && in.Sharding() {
		tasks = in.expandShards(tasks, pos, nw)
	}
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw <= 1 {
		wo := in.newWorkerOut(opts, 1)
		for _, t := range tasks {
			in.evalRule(t, pos, neg, wo, nil)
		}
		return in.mergeWorkerParts([]*workerOut{wo}, opts.nparts)
	}

	wos := make([]*workerOut, nw)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(w int) {
			defer wg.Done()
			wo := in.newWorkerOut(opts, nw)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					break
				}
				in.evalRule(tasks[i], pos, neg, wo, nil)
			}
			wos[w] = wo
		}(w)
	}
	wg.Wait()
	return in.mergeWorkerParts(wos, opts.nparts)
}

// mergeWorkerParts combines per-worker owner buckets into one state per
// bucket (set union across workers — two workers may both have derived
// a tuple that passed the frontier probe) and sums the filter tallies.
// Merged-away buckets and the per-worker shell states (unused in parts
// mode: every derivation routes into a bucket) return to the instance
// freelists.
func (in *Instance) mergeWorkerParts(wos []*workerOut, nparts int) ([]State, FilterStats) {
	var st FilterStats
	for _, wo := range wos {
		st.Probes += wo.fprobes
		st.Skips += wo.fskips
	}
	out := make([]State, nparts)
	for b := range out {
		out[b] = make(State, len(wos[0].out))
	}
	for pred := range wos[0].out {
		for b := 0; b < nparts; b++ {
			m := wos[0].parts[pred][b]
			for _, wo := range wos[1:] {
				m.UnionWith(wo.parts[pred][b])
				in.putRel(wo.parts[pred][b])
			}
			out[b][pred] = m
		}
	}
	for _, wo := range wos {
		in.putState(wo.out)
	}
	return out, st
}

// defaultPartitions is the process-wide partition-count default applied
// to instances that never called SetPartitions, mirroring
// defaultWorkers; values ≤ 1 mean unpartitioned evaluation.
var defaultPartitions atomic.Int32

// SetDefaultPartitions sets the process-wide default partition count
// for instances without an explicit SetPartitions; n ≤ 1 restores
// single-instance evaluation.
//
// Deprecated: prefer Options.Partitions per call; this setter remains
// as the fallback the zero Options resolve to.
func SetDefaultPartitions(n int) {
	if n < 1 {
		n = 1
	}
	defaultPartitions.Store(int32(n))
}

// Partitions returns the effective partition count: the value set with
// SetPartitions, else the process default, else 1.
func (in *Instance) Partitions() int {
	if in.nparts > 0 {
		return in.nparts
	}
	if d := defaultPartitions.Load(); d > 1 {
		return int(d)
	}
	return 1
}

// SetPartitions fixes the partition count the semi-naive fixpoint loops
// split into; k ≤ 1 values other than 1 restore the default.
// Partitioned and unpartitioned evaluation produce identical states.
func (in *Instance) SetPartitions(k int) {
	if k < 0 {
		k = 0
	}
	in.nparts = k
}

// defaultExchangeFilterOff is the process-wide default for the exchange
// prefilter, on unless disabled.
var defaultExchangeFilterOff atomic.Bool

// SetDefaultExchangeFilter sets the process-wide default for instances
// without an explicit SetExchangeFilter call.  On by default.
//
// Deprecated: prefer Options.ExchangeFilter per call; this setter
// remains as the fallback a ToggleDefault resolves to.
func SetDefaultExchangeFilter(on bool) { defaultExchangeFilterOff.Store(!on) }

// SetExchangeFilter selects whether partitioned passes front the exact
// frontier probe with a Bloom summary of the accumulated state —
// bit-exact either way, the knob is the ablation baseline.
func (in *Instance) SetExchangeFilter(on bool) { in.exchFilter = ToggleOf(on) }

// ExchangeFilter reports the effective prefilter setting: the value set
// with SetExchangeFilter, else the process default, else on.
func (in *Instance) ExchangeFilter() bool {
	return in.exchFilter.Enabled(!defaultExchangeFilterOff.Load())
}
