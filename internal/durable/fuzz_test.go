package durable

import (
	"reflect"
	"testing"

	"repro/internal/incr"
)

// FuzzWALDecode feeds arbitrary bytes to the WAL record decoder: it
// must never panic, and any payload it accepts must re-encode to a
// payload that decodes to the same record (byte identity is too strong
// — binary.Uvarint accepts non-minimal encodings — but record identity
// must hold).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(EncodeRecord(&Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}))
	f.Add(EncodeRecord(&Record{
		Ins: []incr.Fact{{Pred: "p", Args: nil}},
		Del: []incr.Fact{{Pred: "E", Args: []string{"", "x"}}},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		again, err := DecodeRecord(EncodeRecord(rec))
		if err != nil {
			t.Fatalf("re-encoded accepted record failed to decode: %v", err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatalf("decode/encode/decode changed record: %+v -> %+v", rec, again)
		}
	})
}
