// Package durable persists the serve daemon's maintained state: a
// versioned, checksummed, gzip-compressed binary snapshot of an
// incr.Maintainer (snapshot.go) plus a write-ahead log of EDB update
// batches (this file), managed together on disk by a Store (store.go).
//
// The WAL is a sequence of segment files wal-<seq>.log, each a fixed
// 8-byte magic header followed by length-prefixed, CRC32-checksummed
// records.  A record is one committed update batch — the inserts and
// deletes exactly as the maintainer applied them.  Recovery replays
// every record after the snapshot through a restored maintainer; a
// torn or corrupt tail (the crash window of an in-flight append) is
// truncated at the last valid record rather than failing the boot.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/incr"
)

// walMagic opens every WAL segment file; the trailing digits are the
// format version, so a future format bump is a magic mismatch, not a
// misparse.
const walMagic = "dlwal001"

// maxRecordBytes bounds a single WAL record frame: anything larger is
// treated as corruption rather than a 4 GiB allocation.
const maxRecordBytes = 1 << 28

// Record is one durable update batch.
type Record struct {
	Ins []incr.Fact
	Del []incr.Fact
}

// ErrTornRecord reports a record that ends mid-frame or fails its
// checksum — the expected shape of a crash-interrupted append.  It is
// a sentinel: recovery truncates at the last valid record instead of
// propagating it.
var ErrTornRecord = errors.New("durable: torn or corrupt WAL record")

// EncodeRecord renders the record payload (without framing): varint
// fact counts, then each fact as a length-prefixed predicate name and
// length-prefixed argument strings.
func EncodeRecord(rec *Record) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(rec.Ins)))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Del)))
	appendFacts := func(facts []incr.Fact) {
		for _, f := range facts {
			buf = binary.AppendUvarint(buf, uint64(len(f.Pred)))
			buf = append(buf, f.Pred...)
			buf = binary.AppendUvarint(buf, uint64(len(f.Args)))
			for _, a := range f.Args {
				buf = binary.AppendUvarint(buf, uint64(len(a)))
				buf = append(buf, a...)
			}
		}
	}
	appendFacts(rec.Ins)
	appendFacts(rec.Del)
	return buf
}

// DecodeRecord parses a record payload produced by EncodeRecord.  It
// never panics on arbitrary input: malformed bytes yield an error.
func DecodeRecord(payload []byte) (*Record, error) {
	d := recDecoder{buf: payload}
	nIns := d.count()
	nDel := d.count()
	rec := &Record{}
	rec.Ins = d.facts(nIns)
	rec.Del = d.facts(nDel)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after WAL record", len(d.buf))
	}
	return rec, nil
}

// recDecoder consumes a record payload front to back, latching the
// first error.
type recDecoder struct {
	buf []byte
	err error
}

func (d *recDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errors.New("durable: truncated varint in WAL record")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a collection count, bounding it by the bytes that
// remain: every counted element occupies at least one byte, so a
// larger count is corruption, caught before any allocation.
func (d *recDecoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.buf)) {
		d.err = fmt.Errorf("durable: WAL record count %d exceeds remaining %d bytes", v, len(d.buf))
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}

func (d *recDecoder) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *recDecoder) facts(n int) []incr.Fact {
	if d.err != nil || n == 0 {
		return nil
	}
	facts := make([]incr.Fact, 0, n)
	for i := 0; i < n; i++ {
		f := incr.Fact{Pred: d.str()}
		nArgs := d.count()
		if d.err != nil {
			return nil
		}
		if nArgs > 0 {
			f.Args = make([]string, 0, nArgs)
			for j := 0; j < nArgs; j++ {
				f.Args = append(f.Args, d.str())
			}
		}
		if d.err != nil {
			return nil
		}
		facts = append(facts, f)
	}
	return facts
}

// ScanFrames splits a stream of framed records — the exact bytes
// Store.ReadWAL serves, which are the exact bytes on disk — into
// verified record payloads.  Used by replication followers to decode
// shipped WAL data with the same checks recovery applies.
func ScanFrames(data []byte) ([][]byte, error) {
	var payloads [][]byte
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return nil, ErrTornRecord
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || len(data)-off-8 < int(n) {
			return nil, ErrTornRecord
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, ErrTornRecord
		}
		payloads = append(payloads, payload)
		off += 8 + int(n)
	}
	return payloads, nil
}

// writeFrame writes one framed record: little-endian payload length
// and CRC32 (IEEE), then the payload.
func writeFrame(w io.Writer, payload []byte) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(len(hdr) + len(payload)), nil
}

// readFrame reads one framed record payload.  io.EOF means a clean end
// exactly between records; ErrTornRecord means the stream ends
// mid-frame or the checksum does not match.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrTornRecord
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if n > maxRecordBytes {
		return nil, ErrTornRecord
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, ErrTornRecord
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrTornRecord
	}
	return payload, nil
}
