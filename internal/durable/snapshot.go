// snapshot.go — the binary checkpoint format.
//
// A snapshot file is an 8-byte magic/version header followed by one
// gzip stream of sections, each section a kind byte, a varint payload
// length, the payload, and a CRC32 of the payload:
//
//	"dlsnap01"
//	gzip {
//	  [secMeta    ] semantics name, generation
//	  [secProgram ] program text (re-parsed on restore)
//	  [secUniverse] constant names in id order
//	  [secRelation]* role (EDB/IDB/possible), name, arity, tuples
//	  [secStages  ] per-stage per-predicate lengths (replay log)
//	  [secEnd     ]
//	}
//
// Tuples serialize in arena insertion order — one tag byte selecting
// the packed uint64 key (8 bytes little-endian) or the length-prefixed
// spill byte string — so a restored relation's arena is byte-for-byte
// in the original order.  That ordering is load-bearing: the replay
// strategy's stage log is reconstructed as length-prefix views of the
// restored arenas (see incr.RestoreWith).
package durable

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/relation"
)

// snapMagic opens every snapshot file; the digits are the format
// version.
const snapMagic = "dlsnap01"

// Section kinds.
const (
	secMeta     = 1
	secProgram  = 2
	secUniverse = 3
	secRelation = 4
	secStages   = 5
	secEnd      = 0xFF
)

// Relation roles within a snapshot.
const (
	roleEDB      = 0
	roleIDB      = 1
	rolePossible = 2
)

// maxSectionBytes bounds a single section payload: larger lengths are
// treated as corruption rather than attempted allocations.
const maxSectionBytes = 1 << 31

// WriteSnapshot serializes a checkpoint to w in the format above.
func WriteSnapshot(w io.Writer, cp *incr.Checkpoint) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	zw := gzip.NewWriter(w)
	sw := &sectionWriter{w: zw}

	var buf []byte
	sem := cp.Sem.String()
	buf = binary.AppendUvarint(buf, uint64(len(sem)))
	buf = append(buf, sem...)
	buf = binary.AppendUvarint(buf, cp.Gen)
	sw.section(secMeta, buf)

	sw.section(secProgram, []byte(cp.Prog.String()))

	buf = buf[:0]
	names := cp.Universe.Names()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	sw.section(secUniverse, buf)

	for _, name := range cp.EDBNames {
		sw.section(secRelation, encodeRelation(roleEDB, name, cp.EDB[name]))
	}
	for _, name := range sortedKeys(cp.IDB) {
		sw.section(secRelation, encodeRelation(roleIDB, name, cp.IDB[name]))
	}
	for _, name := range sortedKeys(cp.Possible) {
		sw.section(secRelation, encodeRelation(rolePossible, name, cp.Possible[name]))
	}

	if cp.StageLens != nil {
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(len(cp.StageLens)))
		for _, lens := range cp.StageLens {
			buf = binary.AppendUvarint(buf, uint64(len(lens)))
			for _, pred := range sortedKeys(lens) {
				buf = binary.AppendUvarint(buf, uint64(len(pred)))
				buf = append(buf, pred...)
				buf = binary.AppendUvarint(buf, uint64(lens[pred]))
			}
		}
		sw.section(secStages, buf)
	}

	sw.section(secEnd, nil)
	if sw.err != nil {
		return sw.err
	}
	return zw.Close()
}

// ReadSnapshot parses a snapshot stream back into a checkpoint ready
// for incr.Restore.  Any structural damage — bad magic, checksum
// mismatch, truncated section, unparsable program — is an error; a
// snapshot is replaced atomically, so unlike the WAL there is no valid
// "torn" state to salvage.
func ReadSnapshot(r io.Reader) (*incr.Checkpoint, error) {
	var magic [len(snapMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot header: %w", err)
	}
	if string(magic[:]) != snapMagic {
		return nil, fmt.Errorf("durable: snapshot magic %q, want %q (version skew?)", magic[:], snapMagic)
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot gzip: %w", err)
	}
	defer zr.Close()
	br := bufio.NewReader(zr)

	cp := &incr.Checkpoint{
		EDB:      make(map[string]*relation.Relation),
		IDB:      make(map[string]*relation.Relation),
		Universe: relation.NewUniverse(),
	}
	seen := map[byte]bool{}
	for {
		kind, payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		if kind == secEnd {
			break
		}
		if kind != secRelation && seen[kind] {
			return nil, fmt.Errorf("durable: duplicate snapshot section %d", kind)
		}
		seen[kind] = true
		switch kind {
		case secMeta:
			d := recDecoder{buf: payload}
			semName := d.str()
			gen := d.uvarint()
			if d.err != nil {
				return nil, fmt.Errorf("durable: snapshot meta: %w", d.err)
			}
			sem, err := core.ParseSemantics(semName)
			if err != nil {
				return nil, fmt.Errorf("durable: snapshot meta: %w", err)
			}
			cp.Sem = sem
			cp.Gen = gen
		case secProgram:
			prog, err := parser.Program(string(payload))
			if err != nil {
				return nil, fmt.Errorf("durable: snapshot program: %w", err)
			}
			cp.Prog = prog
		case secUniverse:
			d := recDecoder{buf: payload}
			n := d.count()
			for i := 0; i < n && d.err == nil; i++ {
				name := d.str()
				if id := cp.Universe.Intern(name); id != i {
					return nil, fmt.Errorf("durable: universe name %q interned as %d, want %d", name, id, i)
				}
			}
			if d.err != nil {
				return nil, fmt.Errorf("durable: snapshot universe: %w", d.err)
			}
		case secRelation:
			role, name, rel, err := decodeRelation(payload)
			if err != nil {
				return nil, err
			}
			switch role {
			case roleEDB:
				cp.EDBNames = append(cp.EDBNames, name)
				cp.EDB[name] = rel
			case roleIDB:
				cp.IDB[name] = rel
			case rolePossible:
				if cp.Possible == nil {
					cp.Possible = make(map[string]*relation.Relation)
				}
				cp.Possible[name] = rel
			default:
				return nil, fmt.Errorf("durable: snapshot relation %s has unknown role %d", name, role)
			}
		case secStages:
			d := recDecoder{buf: payload}
			n := d.count()
			cp.StageLens = make([]map[string]int, 0, n)
			for i := 0; i < n && d.err == nil; i++ {
				k := d.count()
				lens := make(map[string]int, k)
				for j := 0; j < k && d.err == nil; j++ {
					pred := d.str()
					lens[pred] = int(d.uvarint())
				}
				cp.StageLens = append(cp.StageLens, lens)
			}
			if d.err != nil {
				return nil, fmt.Errorf("durable: snapshot stages: %w", d.err)
			}
		default:
			return nil, fmt.Errorf("durable: unknown snapshot section %d", kind)
		}
	}
	if !seen[secMeta] || !seen[secProgram] || !seen[secUniverse] {
		return nil, errors.New("durable: snapshot missing a required section")
	}
	// Drain to EOF so the gzip reader verifies its own trailer CRC —
	// a snapshot truncated after the end section would otherwise pass.
	if n, err := io.Copy(io.Discard, br); err != nil {
		return nil, fmt.Errorf("durable: snapshot trailer: %w", err)
	} else if n != 0 {
		return nil, fmt.Errorf("durable: %d bytes after snapshot end section", n)
	}
	return cp, nil
}

// sectionWriter emits sections, latching the first error.
type sectionWriter struct {
	w   io.Writer
	err error
}

func (s *sectionWriter) section(kind byte, payload []byte) {
	if s.err != nil {
		return
	}
	hdr := []byte{kind}
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	if _, s.err = s.w.Write(hdr); s.err != nil {
		return
	}
	if _, s.err = s.w.Write(payload); s.err != nil {
		return
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, s.err = s.w.Write(sum[:])
}

// readSection reads one section, verifying its checksum.
func readSection(br *bufio.Reader) (byte, []byte, error) {
	kind, err := br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("durable: truncated snapshot: %w", err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil || n > maxSectionBytes {
		return 0, nil, fmt.Errorf("durable: snapshot section %d has bad length", kind)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("durable: truncated snapshot section %d: %w", kind, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return 0, nil, fmt.Errorf("durable: truncated snapshot section %d: %w", kind, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc32.ChecksumIEEE(payload) {
		return 0, nil, fmt.Errorf("durable: snapshot section %d checksum mismatch", kind)
	}
	return kind, payload, nil
}

// Tuple tags within a relation section.
const (
	tupPacked = 0 // 8-byte little-endian packed uint64 key
	tupSpill  = 1 // varint-length-prefixed spill byte string
)

// encodeRelation renders one relation section payload, tuples in arena
// insertion order.
func encodeRelation(role byte, name string, rel *relation.Relation) []byte {
	var buf []byte
	buf = append(buf, role)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(rel.Arity()))
	buf = binary.AppendUvarint(buf, uint64(rel.Len()))
	rel.Each(func(t relation.Tuple) bool {
		if k, ok := relation.PackKey(t); ok {
			buf = append(buf, tupPacked)
			buf = binary.LittleEndian.AppendUint64(buf, k)
		} else {
			sk := relation.SpillKey(t)
			buf = append(buf, tupSpill)
			buf = binary.AppendUvarint(buf, uint64(len(sk)))
			buf = append(buf, sk...)
		}
		return true
	})
	return buf
}

// decodeRelation parses one relation section payload.
func decodeRelation(payload []byte) (role byte, name string, rel *relation.Relation, err error) {
	if len(payload) == 0 {
		return 0, "", nil, errors.New("durable: empty relation section")
	}
	role = payload[0]
	d := recDecoder{buf: payload[1:]}
	name = d.str()
	arity := int(d.uvarint())
	n := int(d.uvarint())
	if d.err != nil {
		return 0, "", nil, fmt.Errorf("durable: relation section header: %w", d.err)
	}
	if arity < 0 || arity > 1<<16 || n < 0 {
		return 0, "", nil, fmt.Errorf("durable: relation %s has implausible arity %d", name, arity)
	}
	rel = relation.New(arity)
	for i := 0; i < n; i++ {
		if len(d.buf) == 0 {
			return 0, "", nil, fmt.Errorf("durable: relation %s truncated at tuple %d/%d", name, i, n)
		}
		tag := d.buf[0]
		d.buf = d.buf[1:]
		var t relation.Tuple
		switch tag {
		case tupPacked:
			if len(d.buf) < 8 {
				return 0, "", nil, fmt.Errorf("durable: relation %s truncated at tuple %d/%d", name, i, n)
			}
			k := binary.LittleEndian.Uint64(d.buf)
			d.buf = d.buf[8:]
			t = relation.UnpackKey(k, arity)
			if rk, ok := relation.PackKey(t); !ok || rk != k {
				return 0, "", nil, fmt.Errorf("durable: relation %s tuple %d: packed key %d does not round-trip", name, i, k)
			}
		case tupSpill:
			sn := d.count()
			if d.err != nil {
				return 0, "", nil, fmt.Errorf("durable: relation %s tuple %d: %w", name, i, d.err)
			}
			var ok bool
			t, ok = relation.DecodeSpillKey(d.buf[:sn], arity)
			if !ok {
				return 0, "", nil, fmt.Errorf("durable: relation %s tuple %d: bad spill key length %d for arity %d", name, i, sn, arity)
			}
			d.buf = d.buf[sn:]
		default:
			return 0, "", nil, fmt.Errorf("durable: relation %s tuple %d has unknown tag %d", name, i, tag)
		}
		if !rel.Add(t) {
			return 0, "", nil, fmt.Errorf("durable: relation %s tuple %d is a duplicate", name, i)
		}
	}
	if len(d.buf) != 0 {
		return 0, "", nil, fmt.Errorf("durable: relation %s has %d trailing bytes", name, len(d.buf))
	}
	return role, name, rel, nil
}

// sortedKeys returns the map's keys sorted, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
