package durable

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
)

const winSrc = "win(X) :- E(X,Y), !win(Y)."

// mustMaintainer builds an inflationary win-move maintainer over a
// small graph — the replay strategy, the one with the most checkpoint
// structure (stage log).
func mustMaintainer(t *testing.T, sem core.Semantics) *incr.Maintainer {
	t.Helper()
	prog := parser.MustProgram(winSrc)
	db := graphs.Random(rand.New(rand.NewSource(7)), 6, 0.4).Database()
	m, err := incr.New(prog, db, sem)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, sem := range []core.Semantics{core.Inflationary, core.WellFounded} {
		t.Run(sem.String(), func(t *testing.T) {
			m := mustMaintainer(t, sem)
			if _, err := m.Update([]incr.Fact{{Pred: "E", Args: []string{"v0", "v5"}}}, nil); err != nil {
				t.Fatal(err)
			}
			cp := m.Checkpoint()
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, cp); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			r, err := incr.Restore(got)
			if err != nil {
				t.Fatal(err)
			}
			if r.Gen() != m.Gen() || r.Stages() != m.Stages() {
				t.Fatalf("restored gen/stages %d/%d, want %d/%d", r.Gen(), r.Stages(), m.Gen(), m.Stages())
			}
			want := m.State().Format(m.Universe())
			have := r.State().Format(r.Universe())
			if want != have {
				t.Fatalf("state after snapshot round trip:\n%s\nwant:\n%s", have, want)
			}
			// The restored maintainer must behave identically under a
			// further update.
			ins := []incr.Fact{{Pred: "E", Args: []string{"v5", "v0"}}}
			if _, err := m.Update(ins, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Update(ins, nil); err != nil {
				t.Fatal(err)
			}
			if m.State().Format(m.Universe()) != r.State().Format(r.Universe()) {
				t.Fatal("restored maintainer diverged on the first post-restore update")
			}
		})
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	m := mustMaintainer(t, core.Inflationary)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("version-skew", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[7] = '9' // magic "dlsnap01" -> "dlsnap09"
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version skew") {
			t.Errorf("want version-skew error, got %v", err)
		}
	})
	t.Run("checksum-mismatch", func(t *testing.T) {
		// Flipping any byte of the gzip stream breaks either the gzip
		// CRC or a section CRC; both must reject.
		bad := append([]byte{}, good...)
		bad[len(bad)/2] ^= 0xFF
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Error("corrupted snapshot accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadSnapshot(bytes.NewReader(good[:len(good)-3])); err == nil {
			t.Error("truncated snapshot accepted")
		}
	})
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{},
		{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}},
		{
			Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}, {Pred: "F", Args: nil}},
			Del: []incr.Fact{{Pred: "E", Args: []string{"", "long constant with spaces"}}},
		},
	}
	for _, rec := range recs {
		got, err := DecodeRecord(EncodeRecord(&rec))
		if err != nil {
			t.Fatalf("%+v: %v", rec, err)
		}
		if !reflect.DeepEqual(*got, rec) {
			t.Errorf("round trip changed record: %+v -> %+v", rec, *got)
		}
	}
}

// openStore opens a store on dir with fsync=always, failing the test on
// error.
func openStore(t *testing.T, dir string) (*Store, *RecoveryInfo) {
	t.Helper()
	s, info, err := Open(dir, FsyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s, info
}

func TestStoreAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s, info := openStore(t, dir)
	if info.Checkpoint != nil || len(info.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", info)
	}
	want := []Record{
		{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}},
		{Del: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}},
	}
	for i := range want {
		if _, err := s.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.WALRecords != 2 || st.WALBytes == 0 || st.WALSegments != 1 {
		t.Fatalf("stats after 2 appends: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(&want[0]); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}

	s2, info2 := openStore(t, dir)
	defer s2.Close()
	if !reflect.DeepEqual(info2.Records, want) {
		t.Fatalf("recovered %+v, want %+v", info2.Records, want)
	}
	if info2.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", info2.TruncatedBytes)
	}
}

func TestStoreTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	rec := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}
	if _, err := s.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage after the valid record.
	seg := filepath.Join(dir, "wal-0000000000000001.log")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, info := openStore(t, dir)
	defer s2.Close()
	if len(info.Records) != 1 || !reflect.DeepEqual(info.Records[0], rec) {
		t.Fatalf("recovered %+v, want the one valid record", info.Records)
	}
	if info.TruncatedBytes != 6 {
		t.Errorf("truncated %d bytes, want 6", info.TruncatedBytes)
	}
	// The truncation is physical: a third open sees a clean log.
	s2.Close()
	s3, info3 := openStore(t, dir)
	defer s3.Close()
	if info3.TruncatedBytes != 0 || len(info3.Records) != 1 {
		t.Fatalf("truncation did not persist: %+v", info3)
	}
}

func TestStoreChecksumMismatchDropsTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	recA := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}
	recB := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"c", "d"}}}}
	if _, err := s.Append(&recA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(&recB); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte of the LAST record: its CRC mismatches, so
	// recovery keeps only the first.
	seg := filepath.Join(dir, "wal-0000000000000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, info := openStore(t, dir)
	defer s2.Close()
	if len(info.Records) != 1 || !reflect.DeepEqual(info.Records[0], recA) {
		t.Fatalf("recovered %+v, want only the intact first record", info.Records)
	}
	if info.TruncatedBytes == 0 {
		t.Error("corrupt tail reported zero truncated bytes")
	}
}

func TestStoreSegmentVersionSkew(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	s.Close()
	seg := filepath.Join(dir, "wal-0000000000000001.log")
	if err := os.WriteFile(seg, []byte("dlwal999"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, FsyncAlways, 0); err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("want version-skew error, got %v", err)
	}
}

func TestStoreRotateAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()

	m := mustMaintainer(t, core.Inflationary)
	rec := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"v0", "v5"}}}}
	if _, err := s.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(rec.Ins, rec.Del); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	cp := m.Checkpoint()
	after := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"v5", "v1"}}}}
	if _, err := s.Append(&after); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WALSegments != 1 || st.WALRecords != 1 {
		t.Fatalf("stats after checkpoint: %+v (want 1 segment, 1 record)", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-0000000000000001.log")); !os.IsNotExist(err) {
		t.Error("covered segment not deleted after checkpoint")
	}

	// Recovery: snapshot + the post-rotation suffix only.
	s.Close()
	s2, info := openStore(t, dir)
	defer s2.Close()
	if info.Checkpoint == nil {
		t.Fatal("no checkpoint recovered")
	}
	if !reflect.DeepEqual(info.Records, []Record{after}) {
		t.Fatalf("recovered suffix %+v, want only the post-rotation record", info.Records)
	}
	r, err := incr.Restore(info.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range info.Records {
		if _, err := r.Update(rr.Ins, rr.Del); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Update(after.Ins, after.Del); err != nil {
		t.Fatal(err)
	}
	if got, want := r.State().Format(r.Universe()), m.State().Format(m.Universe()); got != want {
		t.Fatalf("recovered state:\n%s\nwant:\n%s", got, want)
	}
}

func TestStoreIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, FsyncInterval, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(&Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond) // let the syncer run at least once
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, info := openStore(t, dir)
	if len(info.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(info.Records))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

// A crash at segment creation leaves a headerless (possibly empty)
// last segment.  Recovery must remove it — not truncate it to zero and
// leave it behind, where the next boot would see an empty NON-last
// segment, fail the magic check, and refuse to open the data dir.
func TestStoreHeaderlessSegmentRemoved(t *testing.T) {
	for _, tc := range []struct {
		name    string
		content []byte
	}{
		{"empty", nil},
		{"partial header", []byte("dlw")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := openStore(t, dir)
			rec := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}
			if _, err := s.Append(&rec); err != nil {
				t.Fatal(err)
			}
			s.Close()

			// Simulate the crash: a higher-seq segment with no durable
			// header.
			crashed := filepath.Join(dir, "wal-0000000000000007.log")
			if err := os.WriteFile(crashed, tc.content, 0o644); err != nil {
				t.Fatal(err)
			}

			s2, info := openStore(t, dir)
			s2.Close()
			if len(info.Records) != 1 {
				t.Fatalf("recovered %d records, want 1", len(info.Records))
			}
			if _, err := os.Stat(crashed); !os.IsNotExist(err) {
				t.Fatalf("headerless segment still on disk (stat err %v)", err)
			}

			// The regression: the second boot must succeed too, and
			// still see the full history.
			s3, info3 := openStore(t, dir)
			defer s3.Close()
			if len(info3.Records) != 1 {
				t.Fatalf("second boot recovered %d records, want 1", len(info3.Records))
			}
		})
	}
}

// An empty segment in the MIDDLE of the history (e.g. left behind by
// an interrupted recovery) is skipped and removed rather than failing
// the boot as corruption.
func TestStoreEmptyMidHistorySegmentSkipped(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	rec := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}
	if _, err := s.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(&rec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	empty := filepath.Join(dir, "wal-0000000000000000.log") // below both live segments
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, info := openStore(t, dir)
	defer s2.Close()
	if len(info.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(info.Records))
	}
	if _, err := os.Stat(empty); !os.IsNotExist(err) {
		t.Fatalf("empty segment still on disk (stat err %v)", err)
	}
}

// After a failed append the store must never let a later record be
// acknowledged beyond the (possible) tear: appends and rotations are
// refused with ErrPoisoned once repair is impossible.
func TestStorePoisonedAfterFailedAppend(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()
	rec := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}
	if _, err := s.Append(&rec); err != nil {
		t.Fatal(err)
	}

	// Force a write failure the truncate-repair cannot fix either:
	// close the segment's file descriptor out from under the store.
	s.f.Close()
	if _, err := s.Append(&rec); err == nil {
		t.Fatal("append on a dead segment succeeded")
	}
	if _, err := s.Append(&rec); err != ErrPoisoned {
		t.Fatalf("append after tear: %v, want ErrPoisoned", err)
	}
	if err := s.Rotate(); err != ErrPoisoned {
		t.Fatalf("rotate after tear: %v, want ErrPoisoned", err)
	}
	if st := s.Stats(); st.WALRecords != 1 {
		t.Fatalf("failed append leaked into accounting: %+v", st)
	}
}
