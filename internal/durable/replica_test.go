package durable

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/incr"
)

// readAll drains the WAL from c, decoding every shipped frame.
func readAll(t *testing.T, s *Store, c Cursor) ([]Record, Cursor) {
	t.Helper()
	var out []Record
	for {
		data, next, n, err := s.ReadWAL(c, 1<<20)
		if err != nil {
			t.Fatalf("ReadWAL(%v): %v", c, err)
		}
		if n == 0 {
			return out, next
		}
		payloads, err := ScanFrames(data)
		if err != nil {
			t.Fatalf("ScanFrames: %v", err)
		}
		if len(payloads) != n {
			t.Fatalf("ReadWAL reported %d frames, ScanFrames found %d", n, len(payloads))
		}
		for _, p := range payloads {
			rec, err := DecodeRecord(p)
			if err != nil {
				t.Fatalf("DecodeRecord: %v", err)
			}
			out = append(out, *rec)
		}
		c = next
	}
}

func TestReadWALWalksHistory(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()

	if got, want := s.SnapshotPath(), filepath.Join(dir, "snapshot.bin"); got != want {
		t.Fatalf("SnapshotPath() = %q, want %q", got, want)
	}

	want := []Record{
		{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}},
		{Del: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}},
		{Ins: []incr.Fact{{Pred: "E", Args: []string{"c", "d"}}}},
	}
	start := s.StartCursor()
	if _, err := s.Append(&want[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil { // force a segment boundary mid-history
		t.Fatal(err)
	}
	for i := 1; i < len(want); i++ {
		if _, err := s.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}

	got, next := readAll(t, s, start)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shipped %+v, want %+v", got, want)
	}
	if end := s.EndCursor(); next != end {
		t.Fatalf("cursor after drain %v, want end %v", next, end)
	}
	// Reading at the end is not an error; it just ships nothing.
	if _, _, n, err := s.ReadWAL(next, 1<<20); err != nil || n != 0 {
		t.Fatalf("read at end: n=%d err=%v", n, err)
	}
}

func TestReadWALErrors(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()
	rec := Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}
	old := s.StartCursor()
	if _, err := s.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	m := mustMaintainer(t, 0)
	if err := s.WriteCheckpoint(m.Checkpoint()); err != nil {
		t.Fatal(err)
	}

	if _, _, _, err := s.ReadWAL(old, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("read at compacted cursor: %v, want ErrCompacted", err)
	}
	end := s.EndCursor()
	if _, _, _, err := s.ReadWAL(Cursor{Seq: end.Seq + 5, Off: 8}, 0); !errors.Is(err, ErrAhead) {
		t.Fatalf("read past the log: %v, want ErrAhead", err)
	}
	if _, _, _, err := s.ReadWAL(Cursor{Seq: end.Seq, Off: end.Off + 999}, 0); !errors.Is(err, ErrAhead) {
		t.Fatalf("read past the active tail: %v, want ErrAhead", err)
	}
}

func TestPinRetainsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()
	recs := []Record{
		{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}},
		{Ins: []incr.Fact{{Pred: "E", Args: []string{"c", "d"}}}},
	}
	c := s.SnapshotCursor("follower-1")
	if _, err := s.Append(&recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(&recs[1]); err != nil {
		t.Fatal(err)
	}
	m := mustMaintainer(t, 0)
	if err := s.WriteCheckpoint(m.Checkpoint()); err != nil {
		t.Fatal(err)
	}

	// The covered segment survives: the pinned follower can still read
	// its whole backlog.
	if st := s.Stats(); st.RetainedSegments == 0 || st.Pins != 1 {
		t.Fatalf("stats after pinned checkpoint: %+v", st)
	}
	got, _ := readAll(t, s, c)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("pinned read shipped %+v, want %+v", got, recs)
	}

	// Dropping the pin lets the next checkpoint compact.
	s.Unpin("follower-1")
	if err := s.WriteCheckpoint(m.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.ReadWAL(c, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("read after unpin+checkpoint: %v, want ErrCompacted", err)
	}
}

func TestBoundedLagEviction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()
	s.SetRetention(1, time.Hour) // evict anyone retaining more than 1 byte

	c := s.SnapshotCursor("laggard")
	if _, err := s.Append(&Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	m := mustMaintainer(t, 0)
	if err := s.WriteCheckpoint(m.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Pins != 0 || st.Evictions != 1 || st.RetainedSegments != 0 {
		t.Fatalf("stats after bounded-lag sweep: %+v (want pin evicted)", st)
	}
	if _, _, _, err := s.ReadWAL(c, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("evicted follower read: %v, want ErrCompacted", err)
	}
}

func TestPinTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()
	s.SetRetention(1<<30, time.Millisecond)
	s.Pin("idle", 1)
	time.Sleep(5 * time.Millisecond)
	m := mustMaintainer(t, 0)
	if err := s.WriteCheckpoint(m.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Pins != 0 {
		t.Fatalf("idle pin survived its TTL: %+v", st)
	}
}

func TestAppendNotify(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()
	ch := s.AppendNotify()
	select {
	case <-ch:
		t.Fatal("notify fired before any append")
	default:
	}
	if _, err := s.Append(&Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("append did not wake the notify channel")
	}
	// Close wakes waiters too, so a long-poller never hangs on shutdown.
	ch = s.AppendNotify()
	s.Close()
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("close did not wake the notify channel")
	}
}

func TestLagFrom(t *testing.T) {
	dir := t.TempDir()
	s, _ := openStore(t, dir)
	defer s.Close()
	start := s.StartCursor()
	for i := 0; i < 3; i++ {
		if _, err := s.Append(&Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := s.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	recs, bytes := s.LagFrom(start)
	if recs != 3 || bytes == 0 {
		t.Fatalf("LagFrom(start) = %d recs, %d bytes; want 3 recs", recs, bytes)
	}
	if recs, bytes := s.LagFrom(s.EndCursor()); recs != 0 || bytes != 0 {
		t.Fatalf("LagFrom(end) = %d recs, %d bytes; want 0, 0", recs, bytes)
	}
}

func TestScanFramesRejectsDamage(t *testing.T) {
	data, _, _, err := func() ([]byte, Cursor, int, error) {
		dir := t.TempDir()
		s, _ := openStore(t, dir)
		defer s.Close()
		if _, err := s.Append(&Record{Ins: []incr.Fact{{Pred: "E", Args: []string{"a", "b"}}}}); err != nil {
			t.Fatal(err)
		}
		return s.ReadWAL(s.StartCursor(), 1<<20)
	}()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, data...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := ScanFrames(bad); err == nil {
		t.Error("corrupt frame accepted")
	}
	if _, err := ScanFrames(data[:len(data)-2]); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestParseCursor(t *testing.T) {
	c := Cursor{Seq: 42, Off: 1234}
	got, err := ParseCursor(c.String())
	if err != nil || got != c {
		t.Fatalf("ParseCursor(%q) = %v, %v", c.String(), got, err)
	}
	if _, err := ParseCursor("nope"); err == nil {
		t.Error("bad cursor accepted")
	}
}
