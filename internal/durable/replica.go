// replica.go — the leader-side replication surface of the store: WAL
// cursors, a verified segment reader for log shipping, append
// notification for long-polling tails, and retention pinning so
// checkpoint compaction never deletes a segment a live follower still
// needs.
//
// A Cursor names a byte position in the WAL history: (segment
// sequence, byte offset within the segment file, magic header
// included).  Frames are self-delimiting and CRC-checked, so a cursor
// produced by summing served frame lengths always lands on a frame
// boundary.  The replication protocol built on top (internal/server,
// internal/replica) ships raw frames — exactly the on-disk format —
// and the follower decodes them with the same DecodeRecord the
// recovery path uses.
//
// Retention.  WriteCheckpoint normally deletes every sealed segment
// the new snapshot covers.  A Pin(id, seq) — refreshed by every
// replica request — keeps segments ≥ seq on disk past coverage, so a
// follower that is mid-catch-up never sees its cursor compacted away.
// Pins are bounded: when the covered-but-retained record bytes exceed
// the retention limit, the laggiest pins are evicted (their follower
// re-bootstraps from the snapshot), and pins idle past the TTL expire.
// Both policies run inside the checkpoint sweep, the only place
// deletion happens.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"
)

// Cursor is a position in the WAL history: a segment sequence number
// and a byte offset into that segment's file (the 8-byte magic header
// counts, so the first record of a segment sits at offset 8).
type Cursor struct {
	Seq uint64
	Off int64
}

// String renders the cursor in the "seq,off" wire form.
func (c Cursor) String() string { return fmt.Sprintf("%d,%d", c.Seq, c.Off) }

// ParseCursor parses the "seq,off" wire form.
func ParseCursor(s string) (Cursor, error) {
	var c Cursor
	if _, err := fmt.Sscanf(s, "%d,%d", &c.Seq, &c.Off); err != nil {
		return Cursor{}, fmt.Errorf("durable: bad cursor %q (want seq,off)", s)
	}
	return c, nil
}

// Replication errors, mapped to HTTP statuses by the server.
var (
	// ErrCompacted reports a cursor whose segment has been deleted by
	// checkpoint compaction (or eviction): the records before the
	// snapshot's coverage point are only available via the snapshot, so
	// the follower must re-bootstrap.
	ErrCompacted = errors.New("durable: cursor points before the retained WAL history")
	// ErrAhead reports a cursor past the durable end of the log — the
	// follower holds records this store does not, i.e. the histories
	// have diverged (a leader that lost an unsynced tail, or a cursor
	// from a different data dir).
	ErrAhead = errors.New("durable: cursor points past the durable end of the WAL")
)

// SnapshotPath names the snapshot file the store serves to
// bootstrapping followers.  The file is atomically replaced by
// checkpoints; a reader that has opened it keeps the old image.
func (s *Store) SnapshotPath() string { return filepath.Join(s.dir, snapName) }

// StartCursor returns the earliest live position of the WAL — the
// cursor a follower restoring the current snapshot resumes from.
// Because replaying records the snapshot already contains is
// idempotent, any snapshot installed at or after the call covers
// everything before this cursor.
func (s *Store) StartCursor() Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Cursor{Seq: s.minLiveSeqLocked(), Off: int64(len(walMagic))}
}

// SnapshotCursor atomically computes the bootstrap cursor and pins it
// for the named follower, so the segments it needs survive until its
// first WAL poll re-pins them.
func (s *Store) SnapshotCursor(id string) Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := Cursor{Seq: s.minLiveSeqLocked(), Off: int64(len(walMagic))}
	s.pinLocked(id, c.Seq)
	return c
}

// EndCursor returns the position one past the last durable record.
func (s *Store) EndCursor() Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Cursor{Seq: s.seq, Off: int64(len(walMagic)) + s.segs[s.seq]}
}

// minLiveSeqLocked returns the smallest live segment sequence (the
// active segment always exists).
func (s *Store) minLiveSeqLocked() uint64 {
	min := s.seq
	for seq := range s.segs {
		if seq < min {
			min = seq
		}
	}
	return min
}

// nextLiveSeqLocked returns the smallest live sequence strictly after
// seq (the active segment bounds the search).
func (s *Store) nextLiveSeqLocked(seq uint64) uint64 {
	next := s.seq
	for q := range s.segs {
		if q > seq && q < next {
			next = q
		}
	}
	return next
}

// AppendNotify returns a channel that is closed the next time the log
// grows (an append or a rotation) or the store closes.  Grab the
// channel before checking for data to avoid a missed wakeup.
func (s *Store) AppendNotify() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.notify
}

// notifyLocked wakes every AppendNotify waiter.
func (s *Store) notifyLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// Pin records that follower id needs segments ≥ seq retained.  Pins
// only advance: a stale request cannot move a follower's pin
// backwards.  Refreshing the pin also refreshes its TTL.
func (s *Store) Pin(id string, seq uint64) {
	if id == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pinLocked(id, seq)
}

func (s *Store) pinLocked(id string, seq uint64) {
	if id == "" {
		return
	}
	p := s.pins[id]
	if p == nil {
		p = &pinInfo{seq: seq}
		s.pins[id] = p
	} else if seq > p.seq {
		p.seq = seq
	}
	p.last = time.Now()
}

// Unpin drops a follower's retention pin.
func (s *Store) Unpin(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pins, id)
}

// SetRetention bounds pinned retention: at most limitBytes of
// covered-but-retained record bytes (0 keeps the 256 MiB default),
// and pins idle for longer than ttl expire (0 keeps the 60s default).
func (s *Store) SetRetention(limitBytes int64, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if limitBytes > 0 {
		s.retainBytes = limitBytes
	}
	if ttl > 0 {
		s.pinTTL = ttl
	}
}

// LagFrom reports how many records and record bytes lie strictly after
// the cursor — the follower lag the /v1/replica/wal response headers
// carry.  The cursor's own segment is scanned by frame headers (cheap:
// 8-byte reads plus seeks); later segments come from the accounting
// maps.
func (s *Store) LagFrom(c Cursor) (records, bytes int64) {
	s.mu.Lock()
	type seg struct {
		seq        uint64
		recs, size int64
	}
	var later []seg
	var cur seg
	curLive := false
	for seq, sz := range s.segs {
		switch {
		case seq == c.Seq:
			cur = seg{seq: seq, recs: s.segRecs[seq], size: sz}
			curLive = true
		case seq > c.Seq:
			later = append(later, seg{seq: seq, recs: s.segRecs[seq], size: sz})
		}
	}
	path := s.segPath(c.Seq)
	s.mu.Unlock()

	for _, sg := range later {
		records += sg.recs
		bytes += sg.size
	}
	if !curLive {
		return records, bytes
	}
	end := int64(len(walMagic)) + cur.size
	if c.Off >= end {
		return records, bytes
	}
	bytes += end - c.Off
	// Count the frames after the offset by walking headers.
	f, err := os.Open(path)
	if err != nil {
		return records, bytes
	}
	defer f.Close()
	off := c.Off
	for off < end {
		var hdr [8]byte
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			break
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:]))
		off += 8 + n
		records++
	}
	return records, bytes
}

// ReadWAL reads up to roughly maxBytes of complete, checksum-verified
// frames starting at cursor c, returning the raw frame bytes (the
// on-disk wire format), the cursor after them, and the frame count.
// A cursor at the end of a sealed segment is transparently advanced to
// the next live segment.  Errors: ErrCompacted (segment deleted — the
// follower re-bootstraps from the snapshot), ErrAhead (cursor past the
// durable end — histories diverged), ErrClosed, or a corruption error
// for a bad frame inside a sealed segment.
func (s *Store) ReadWAL(c Cursor, maxBytes int) (data []byte, next Cursor, nrecs int, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, c, 0, ErrClosed
	}
	for {
		sz, live := s.segs[c.Seq]
		if !live {
			s.mu.Unlock()
			if c.Seq > s.seq {
				return nil, c, 0, ErrAhead
			}
			return nil, c, 0, ErrCompacted
		}
		end := int64(len(walMagic)) + sz
		if c.Off < int64(len(walMagic)) || c.Off > end {
			s.mu.Unlock()
			if c.Off > end {
				return nil, c, 0, ErrAhead
			}
			return nil, c, 0, fmt.Errorf("durable: cursor offset %d inside the segment header", c.Off)
		}
		if c.Off == end && c.Seq < s.seq {
			c = Cursor{Seq: s.nextLiveSeqLocked(c.Seq), Off: int64(len(walMagic))}
			continue
		}
		break
	}
	sealed := c.Seq < s.seq
	path := s.segPath(c.Seq)
	s.mu.Unlock()

	// Read outside the lock: an unlinked segment stays readable through
	// the open descriptor, and the active segment only ever grows (a
	// torn frame from a concurrent append fails its checksum and is
	// simply not shipped yet).
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, c, 0, ErrCompacted
		}
		return nil, c, 0, err
	}
	defer f.Close()

	off := c.Off
	for len(data) < maxBytes {
		var hdr [8]byte
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			if sealed && err != io.EOF {
				return nil, c, 0, fmt.Errorf("durable: %s: %v", path, err)
			}
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxRecordBytes {
			if sealed {
				return nil, c, 0, fmt.Errorf("durable: %s: corrupt frame at offset %d", path, off)
			}
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(f, off+8, int64(n)), payload); err != nil {
			if sealed {
				return nil, c, 0, fmt.Errorf("durable: %s: torn frame at offset %d in a sealed segment", path, off)
			}
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if sealed {
				return nil, c, 0, fmt.Errorf("durable: %s: checksum mismatch at offset %d in a sealed segment", path, off)
			}
			break
		}
		data = append(data, hdr[:]...)
		data = append(data, payload...)
		off += 8 + int64(n)
		nrecs++
	}
	return data, Cursor{Seq: c.Seq, Off: off}, nrecs, nil
}

// sweepRetentionLocked applies the retention policy after a checkpoint
// made segments < covered redundant: expire idle pins, evict pins
// whose retained backlog exceeds the bound, and return the segment
// sequences that may now be deleted.
func (s *Store) sweepRetentionLocked(covered uint64) (drop []uint64) {
	now := time.Now()
	for id, p := range s.pins {
		if s.pinTTL > 0 && now.Sub(p.last) > s.pinTTL {
			delete(s.pins, id)
		}
	}
	minPin := func() uint64 {
		min := uint64(math.MaxUint64)
		for _, p := range s.pins {
			if p.seq < min {
				min = p.seq
			}
		}
		return min
	}
	retained := func(from uint64) int64 {
		var b int64
		for seq, sz := range s.segs {
			if seq >= from && seq < covered {
				b += sz
			}
		}
		return b
	}
	for {
		mp := minPin()
		if mp == math.MaxUint64 || retained(mp) <= s.retainBytes {
			break
		}
		// Evict the laggiest follower(s); their next poll gets
		// ErrCompacted and they re-bootstrap from the snapshot.
		for id, p := range s.pins {
			if p.seq == mp {
				delete(s.pins, id)
				s.evictions++
			}
		}
	}
	floor := minPin()
	for seq := range s.segs {
		if seq < covered && seq < floor {
			drop = append(drop, seq)
		}
	}
	return drop
}

// pinInfo is one follower's retention pin.
type pinInfo struct {
	seq  uint64
	last time.Time
}
