// store.go — the on-disk layout and lifecycle.
//
// A data directory holds at most one snapshot plus a sequence of WAL
// segments:
//
//	snapshot.bin    latest checkpoint (atomically replaced)
//	snapshot.tmp    in-flight checkpoint write (discarded on boot)
//	wal-<seq>.log   update batches committed after snapshot.bin
//
// The protocols:
//
//	append     frame the record, write, fsync per policy.  The caller
//	           (the server's committer) answers clients only after
//	           Append returns, so acknowledged implies durable under
//	           the "always" policy.
//	checkpoint Rotate() seals the active segment and opens the next
//	           one while the caller captures a sealed state image in
//	           the same critical section; WriteCheckpoint() then —
//	           off the commit path — streams the image to
//	           snapshot.tmp, fsyncs, renames over snapshot.bin,
//	           fsyncs the directory, and deletes the covered
//	           segments.  A crash between rename and deletion only
//	           leaves segments whose records the snapshot already
//	           contains; replaying them is idempotent (EDB updates
//	           are set-semantics, last-op-wins per tuple).
//	recover    read snapshot.bin if present, then every segment in
//	           sequence order.  The final segment's torn tail (a
//	           crash mid-append) is truncated at the last valid
//	           record; corruption in the middle of the history is an
//	           error.  A fresh active segment is always opened after
//	           the highest existing one, so recovery never appends to
//	           a file it also truncated.
package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/incr"
)

const (
	snapName    = "snapshot.bin"
	snapTmpName = "snapshot.tmp"
)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: acknowledged implies
	// durable, at one fsync per commit batch.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer: a crash loses at most the last
	// interval of acknowledged batches, never consistency (the torn
	// tail truncates cleanly).
	FsyncInterval
	// FsyncOff leaves syncing to the OS: fastest, loses whatever the
	// page cache held.  Recovery is still exact up to the surviving
	// prefix.
	FsyncOff
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or off)", s)
}

// String names the policy, inverse of ParseFsyncPolicy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return "unknown"
}

// RecoveryInfo reports what Open found on disk.
type RecoveryInfo struct {
	// Checkpoint is the parsed snapshot, nil when the directory had
	// none (fresh start or WAL-only history).
	Checkpoint *incr.Checkpoint
	// Records is the WAL suffix to replay after restoring Checkpoint,
	// in commit order.
	Records []Record
	// TruncatedBytes counts torn-tail bytes dropped from the final
	// segment.
	TruncatedBytes int64
	// Segments counts the WAL segment files scanned.
	Segments int
}

// Store owns a data directory: the active WAL segment, the recovered
// history, and the checkpoint replacement protocol.  Append and Rotate
// are safe for concurrent use; WriteCheckpoint runs concurrently with
// both.
type Store struct {
	dir      string
	policy   FsyncPolicy
	interval time.Duration

	mu         sync.Mutex
	f          *os.File // active segment
	seq        uint64   // active segment sequence number
	dirty      bool     // unsynced appends (interval policy)
	closed     bool
	poisoned   bool             // unrepaired torn frame in the active segment
	walBytes   int64            // record bytes across live segments
	walRecords int64            // records across live segments
	segs       map[uint64]int64 // live segment -> record bytes (for deletion accounting)
	segRecs    map[uint64]int64

	// Replication state (replica.go): append/rotate wakeups for
	// long-polling readers, follower retention pins, and the bounds
	// the checkpoint sweep enforces on them.
	notify      chan struct{}
	pins        map[string]*pinInfo
	covered     uint64 // segments below this are redundant with the snapshot
	retainBytes int64
	pinTTL      time.Duration
	evictions   int64

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

// StoreStats is a point-in-time accounting snapshot.
type StoreStats struct {
	WALBytes    int64
	WALRecords  int64
	WALSegments int
	FsyncPolicy string
	// RetainedSegments counts sealed segments a snapshot already
	// covers that follower pins keep on disk.
	RetainedSegments int
	// Pins counts live follower retention pins.
	Pins int
	// Evictions counts pins dropped by the bounded-lag policy.
	Evictions int64
}

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("durable: store is closed")

// ErrPoisoned reports an append or rotation refused because an earlier
// append left a torn frame in the active segment that could not be
// repaired.  Writing past a tear would place acknowledged records
// beyond the point recovery truncates at, silently dropping them.
var ErrPoisoned = errors.New("durable: WAL segment holds an unrepaired torn frame; refusing further appends")

// Open opens (creating if needed) a data directory, recovers its
// history, and leaves the store ready for appends on a fresh segment.
func Open(dir string, policy FsyncPolicy, interval time.Duration) (*Store, *RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// A leftover snapshot.tmp is an interrupted checkpoint write:
	// snapshot.bin is still the authoritative one.
	_ = os.Remove(filepath.Join(dir, snapTmpName))

	s := &Store{
		dir:         dir,
		policy:      policy,
		interval:    interval,
		segs:        make(map[uint64]int64),
		segRecs:     make(map[uint64]int64),
		notify:      make(chan struct{}),
		pins:        make(map[string]*pinInfo),
		retainBytes: 256 << 20,
		pinTTL:      time.Minute,
	}
	info := &RecoveryInfo{}

	if f, err := os.Open(filepath.Join(dir, snapName)); err == nil {
		cp, rerr := ReadSnapshot(f)
		f.Close()
		if rerr != nil {
			return nil, nil, fmt.Errorf("durable: %s: %w", snapName, rerr)
		}
		info.Checkpoint = cp
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	seqs, err := s.listSegments()
	if err != nil {
		return nil, nil, err
	}
	info.Segments = len(seqs)
	maxSeq := uint64(0)
	for i, seq := range seqs {
		if seq > maxSeq {
			maxSeq = seq
		}
		recs, bytes, truncated, removed, err := s.replaySegment(seq, i == len(seqs)-1)
		if err != nil {
			return nil, nil, err
		}
		info.Records = append(info.Records, recs...)
		info.TruncatedBytes += truncated
		if removed {
			continue
		}
		s.segs[seq] = bytes
		s.segRecs[seq] = int64(len(recs))
		s.walBytes += bytes
		s.walRecords += int64(len(recs))
	}

	s.seq = maxSeq + 1
	if err := s.openSegment(); err != nil {
		return nil, nil, err
	}
	if policy == FsyncInterval {
		if interval <= 0 {
			s.interval = time.Second
		}
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.syncLoop()
	}
	return s, info, nil
}

// listSegments returns the existing segment sequence numbers, sorted.
func (s *Store) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// segPath names a segment file.
func (s *Store) segPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%016d.log", seq))
}

// replaySegment reads one segment's records.  last selects the
// torn-tail policy: the final segment is truncated in place at the
// last valid record; an earlier segment with a bad tail is corruption
// in the middle of the history and fails recovery.  A segment with no
// durable header — empty, or a partial header on the final segment
// (a crash right at creation) — holds no records and is removed
// outright, so it can never fail the magic check on a later boot;
// removed reports that the file is gone and must not be accounted.
func (s *Store) replaySegment(seq uint64, last bool) (recs []Record, liveBytes, truncated int64, removed bool, err error) {
	path := s.segPath(seq)
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, 0, false, err
	}
	size := st.Size()
	if size == 0 {
		return nil, 0, 0, true, os.Remove(path)
	}

	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != walMagic {
		if last && err != nil {
			return nil, 0, size, true, os.Remove(path)
		}
		return nil, 0, 0, false, fmt.Errorf("durable: %s is not a WAL segment (version skew?)", path)
	}
	valid := int64(len(walMagic))
	for {
		payload, err := readFrame(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			if !last {
				return nil, 0, 0, false, fmt.Errorf("durable: %s: corrupt record mid-history", path)
			}
			truncated = size - valid
			if terr := os.Truncate(path, valid); terr != nil {
				return nil, 0, 0, false, terr
			}
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			if !last {
				return nil, 0, 0, false, fmt.Errorf("durable: %s: %w", path, err)
			}
			truncated = size - valid
			if terr := os.Truncate(path, valid); terr != nil {
				return nil, 0, 0, false, terr
			}
			break
		}
		valid += int64(len(payload)) + 8
		recs = append(recs, *rec)
	}
	return recs, valid - int64(len(walMagic)), truncated, false, nil
}

// openSegment creates the active segment file with its header.
func (s *Store) openSegment() error {
	f, err := os.OpenFile(s.segPath(s.seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return err
	}
	if s.policy == FsyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(s.dir); err != nil {
			f.Close()
			return err
		}
	}
	s.f = f
	s.segs[s.seq] = 0
	s.segRecs[s.seq] = 0
	return nil
}

// Append durably logs one committed batch, returning the framed size.
// Under FsyncAlways the record has reached stable storage when Append
// returns.
func (s *Store) Append(rec *Record) (int64, error) {
	payload := EncodeRecord(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.poisoned {
		return 0, ErrPoisoned
	}
	n, err := writeFrame(s.f, payload)
	if err != nil {
		// A partial write (e.g. ENOSPC after the header) leaves a torn
		// frame mid-file; anything appended after it would sit beyond
		// the point recovery truncates at and be silently dropped.
		// Repair by cutting the segment back to its last good frame;
		// if even that fails, poison the segment so no later record
		// can be acknowledged on top of the tear.
		good := int64(len(walMagic)) + s.segs[s.seq]
		if terr := s.f.Truncate(good); terr != nil {
			s.poisoned = true
		} else if _, serr := s.f.Seek(good, io.SeekStart); serr != nil {
			s.poisoned = true
		}
		return 0, err
	}
	if s.policy == FsyncAlways {
		if err := s.f.Sync(); err != nil {
			// After a failed fsync the kernel may have dropped the
			// dirty pages; whether the frame survives is unknowable,
			// so nothing may be acknowledged on top of it.
			s.poisoned = true
			return 0, err
		}
	} else {
		s.dirty = true
	}
	s.segs[s.seq] += n
	s.segRecs[s.seq]++
	s.walBytes += n
	s.walRecords++
	s.notifyLocked()
	return n, nil
}

// Rotate seals the active segment and opens the next one.  Callers
// capture their state image under the same lock that serializes their
// Appends, immediately after Rotate returns: everything logged before
// the rotation is then covered by that image, and WriteCheckpoint may
// delete the sealed segments once the image is on disk.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.poisoned {
		// Sealing a segment with a torn frame would turn its tear into
		// mid-history corruption on the next boot.
		return ErrPoisoned
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	s.seq++
	err := s.openSegment()
	if err == nil {
		// Wake tailing readers parked at the sealed end of the old
		// active segment so they advance to the new one.
		s.notifyLocked()
	}
	return err
}

// WriteCheckpoint atomically replaces the snapshot with cp and deletes
// the WAL segments it covers (every sealed segment), except those a
// follower retention pin still needs — see sweepRetentionLocked.  It
// runs off the commit path: appends to the active segment proceed
// concurrently.
func (s *Store) WriteCheckpoint(cp *incr.Checkpoint) error {
	tmp := filepath.Join(s.dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, cp); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Crash-window hook for the recovery harness: hold the install
	// open between the tmp write and the rename so a SIGKILL can land
	// provably mid-checkpoint.
	if d := os.Getenv("REPRO_CKPT_DELAY"); d != "" {
		if dur, err := time.ParseDuration(d); err == nil {
			time.Sleep(dur)
		}
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}

	// The snapshot is durable: sealed segments are now redundant, and
	// those no pin retains may be deleted.
	s.mu.Lock()
	s.covered = s.seq
	drop := s.sweepRetentionLocked(s.covered)
	for _, seq := range drop {
		s.walBytes -= s.segs[seq]
		s.walRecords -= s.segRecs[seq]
		delete(s.segs, seq)
		delete(s.segRecs, seq)
	}
	s.mu.Unlock()
	for _, seq := range drop {
		if err := os.Remove(s.segPath(seq)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Stats returns the live WAL accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	retained := 0
	for seq := range s.segs {
		if seq < s.covered {
			retained++
		}
	}
	return StoreStats{
		WALBytes:         s.walBytes,
		WALRecords:       s.walRecords,
		WALSegments:      len(s.segs), // sealed live segments + active
		FsyncPolicy:      s.policy.String(),
		RetainedSegments: retained,
		Pins:             len(s.pins),
		Evictions:        s.evictions,
	}
}

// Close flushes and closes the active segment.  Appends after Close
// fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.notifyLocked()
	s.mu.Unlock()
	if s.stop != nil {
		close(s.stop)
		<-s.done
	}
	return err
}

// syncLoop services the interval fsync policy.
func (s *Store) syncLoop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.dirty {
				s.f.Sync()
				s.dirty = false
			}
			s.mu.Unlock()
		}
	}
}

// syncDir fsyncs a directory, making renames and creations in it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
