package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/fagin"
	"repro/internal/fixpoint"
	"repro/internal/graphs"
	"repro/internal/logic"
	"repro/internal/reductions"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E2",
		Title:  "SATISFIABILITY ⇔ fixpoint existence for π_SAT on D(I)",
		Source: "Theorem 1 + Example 1",
		Run:    runE2,
	})
	register(Experiment{
		ID:     "E3",
		Title:  "general Fagin pipeline: ESO sentence → π_C preserves yes-instances",
		Source: "Theorem 1 (proof construction)",
		Run:    runE3,
	})
	register(Experiment{
		ID:     "E4",
		Title:  "unique satisfying assignment ⇔ unique fixpoint",
		Source: "Theorem 2",
		Run:    runE4,
	})
	register(Experiment{
		ID:     "E6",
		Title:  "3-colorability ⇔ fixpoint existence for π_COL",
		Source: "Lemma 1",
		Run:    runE6,
	})
}

func runE2(w io.Writer, quick bool) error {
	sizes := []int{4, 6, 8, 10, 12}
	seedsPer := 4
	if quick {
		sizes = []int{4, 6, 8}
		seedsPer = 2
	}
	t := newTable(w, "vars", "clauses", "satisfiable", "fixpoint", "fixpoints=models", "t(SAT search)", "check")
	c := &checker{}
	for _, n := range sizes {
		for s := 0; s < seedsPer; s++ {
			inst := workload.Random3SAT(int64(n*100+s), n, 4.26)
			db, err := reductions.SATDatabase(inst)
			if err != nil {
				return err
			}
			in := engine.MustNew(reductions.PiSAT(), db)
			start := time.Now()
			has, st, err := fixpoint.Exists(in, fixpoint.Options{})
			if err != nil {
				return err
			}
			dur := time.Since(start)
			models := inst.CountModels()
			want := models > 0

			bij := "-"
			okBij := true
			if n <= 10 {
				cnt, exact, err := fixpoint.Count(in, fixpoint.Options{}, 0)
				if err != nil {
					return err
				}
				okBij = exact && cnt == models
				bij = fmt.Sprintf("%d=%d", cnt, models)
			}
			okAssign := true
			if has {
				assign := reductions.AssignmentFromFixpoint(inst, db, st)
				okAssign = inst.Eval(assign)
			}
			ok := has == want && okBij && okAssign
			t.row(n, len(inst.Clauses), want, has, bij, ms(dur),
				c.verdict(ok, fmt.Sprintf("n=%d seed=%d", n, s)))
		}
	}
	t.flush()
	return c.err()
}

func runE3(w io.Writer, quick bool) error {
	imp := logic.Implies
	sentences := []struct {
		name string
		e    *logic.ESO
	}{
		{"∀x∃y E(x,y)", &logic.ESO{FO: logic.Forall{Vars: []string{"X"},
			F: logic.Exists{Vars: []string{"Y"}, F: logic.A("E", "X", "Y")}}}},
		{"∃x∀y E(x,y)", &logic.ESO{FO: logic.Exists{Vars: []string{"X"},
			F: logic.Forall{Vars: []string{"Y"}, F: logic.A("E", "X", "Y")}}}},
		{"∃s (s=V)", &logic.ESO{SOVars: []logic.SOVar{{Name: "s", Arity: 1}},
			FO: logic.Forall{Vars: []string{"X"}, F: logic.And{Fs: []logic.Formula{
				imp(logic.A("s", "X"), logic.A("V", "X")),
				imp(logic.A("V", "X"), logic.A("s", "X"))}}}}},
		{"∀xy E(x,y)→E(y,x)", &logic.ESO{FO: logic.Forall{Vars: []string{"X", "Y"},
			F: imp(logic.A("E", "X", "Y"), logic.A("E", "Y", "X"))}}},
	}
	dbSeeds := 4
	if quick {
		dbSeeds = 2
	}
	t := newTable(w, "sentence", "rules", "agreement (D ⊨ Ψ vs fixpoint)", "check")
	c := &checker{}
	for _, sc := range sentences {
		prog, _, err := fagin.Theorem1Program(sc.e)
		if err != nil {
			return err
		}
		agree := 0
		total := 0
		for seed := 0; seed < dbSeeds; seed++ {
			db := e3DB(int64(seed))
			want, _, err := sc.e.EvalWitness(db, 64)
			if err != nil {
				return err
			}
			in, err := engine.New(prog, db.Clone())
			if err != nil {
				return err
			}
			has, _, err := fixpoint.Exists(in, fixpoint.Options{})
			if err != nil {
				return err
			}
			total++
			if has == want {
				agree++
			}
		}
		ok := agree == total
		t.row(sc.name, len(prog.Rules), fmt.Sprintf("%d/%d", agree, total),
			c.verdict(ok, sc.name))
	}
	t.flush()
	return c.err()
}

// e3DB draws a small random (E, V) database.
func e3DB(seed int64) *relationDatabase {
	rng := newRNG(seed)
	db := newDB()
	names := []string{"a", "b"}
	for _, nm := range names {
		db.AddConstant(nm)
	}
	db.MustEnsure("E", 2)
	db.MustEnsure("V", 1)
	for _, x := range names {
		if rng.Intn(2) == 0 {
			db.AddFact("V", x)
		}
		for _, y := range names {
			if rng.Intn(3) == 0 {
				db.AddFact("E", x, y)
			}
		}
	}
	return db
}

func runE4(w io.Writer, quick bool) error {
	sizes := []int{4, 6, 8}
	if quick {
		sizes = []int{4, 6}
	}
	t := newTable(w, "instance", "models", "unique fixpoint", "paper", "check")
	c := &checker{}
	for _, n := range sizes {
		cases := []struct {
			name string
			inst *reductions.SATInstance
		}{
			{fmt.Sprintf("unique n=%d", n), workload.UniqueSAT(int64(n), n, n/2)},
			{fmt.Sprintf("forced-sat n=%d", n), workload.ForcedSAT(int64(n), n, 2*n)},
			{fmt.Sprintf("unsat n=%d", n), &reductions.SATInstance{NumVars: n,
				Clauses: [][]int{{1}, {-1}}}},
		}
		for _, cs := range cases {
			db, err := reductions.SATDatabase(cs.inst)
			if err != nil {
				return err
			}
			in := engine.MustNew(reductions.PiSAT(), db)
			unique, _, err := fixpoint.Unique(in, fixpoint.Options{})
			if err != nil {
				return err
			}
			models := cs.inst.CountModels()
			ok := unique == (models == 1)
			t.row(cs.name, models, unique, "unique ⇔ exactly one model",
				c.verdict(ok, cs.name))
		}
	}
	t.flush()
	return c.err()
}

func runE6(w io.Writer, quick bool) error {
	type gcase struct {
		name string
		g    *graphs.Graph
	}
	cases := []gcase{
		{"P6 (path)", graphs.Path(6)},
		{"C5 (odd cycle)", graphs.Cycle(5)},
		{"K3", graphs.Complete(3)},
		{"K4", graphs.Complete(4)},
		{"W5 (odd wheel)", graphs.Wheel(5)},
		{"W6 (even wheel)", graphs.Wheel(6)},
	}
	nRandom := 6
	if quick {
		nRandom = 2
	}
	for s := 0; s < nRandom; s++ {
		cases = append(cases, gcase{fmt.Sprintf("G(7,0.3) seed %d", s),
			graphs.Random(newRNG(int64(s)), 7, 0.3)})
	}
	t := newTable(w, "graph", "3-colorable", "fixpoint", "fixpoints=colorings", "check")
	c := &checker{}
	for _, cs := range cases {
		db := cs.g.Database()
		in := engine.MustNew(reductions.PiCOL(), db)
		has, st, err := fixpoint.Exists(in, fixpoint.Options{})
		if err != nil {
			return err
		}
		_, want := cs.g.ThreeColoring()

		counts := "-"
		okCount := true
		if cs.g.N() <= 6 {
			cnt, exact, err := fixpoint.Count(in, fixpoint.Options{}, 0)
			if err != nil {
				return err
			}
			colorings := cs.g.CountThreeColorings()
			okCount = exact && cnt == colorings
			counts = fmt.Sprintf("%d=%d", cnt, colorings)
		}
		okColoring := true
		if has {
			colors := reductions.ColoringFromFixpoint(cs.g, db, st)
			okColoring = cs.g.IsProper3Coloring(colors)
		}
		ok := has == want && okCount && okColoring
		t.row(cs.name, want, has, counts, c.verdict(ok, cs.name))
	}
	t.flush()
	return c.err()
}
