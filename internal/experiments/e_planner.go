package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/semantics"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E13",
		Title:  "cost-based join planner: ablation on join-heavy workloads",
		Source: "engineering (ROADMAP: run as fast as the hardware allows; Θ evaluation strategy only)",
		Run:    runE13,
	})
}

// runE13 evaluates the join-heavy workload suite twice — legacy
// syntactic literal order with single-column probes, and the cost-based
// planner with composite indexes — and checks the two derive identical
// states.  The speedup column is informational (CI runners are noisy);
// the bit-exactness column is the claim under test, since the paper's
// semantics are defined by the operator Θ, not by any evaluation order.
func runE13(w io.Writer, quick bool) error {
	t := newTable(w, "workload", "tuples", "rounds", "t(syntactic)", "t(planner)", "speedup", "check")
	c := &checker{}
	for _, wl := range workload.JoinWorkloads(quick) {
		prog := parser.MustProgram(wl.Src)

		inOff := engine.MustNew(prog, wl.DB())
		inOff.SetCostPlanner(false)
		startOff := time.Now()
		resOff := semantics.Inflationary(inOff)
		durOff := time.Since(startOff)

		inOn := engine.MustNew(prog, wl.DB())
		inOn.SetCostPlanner(true)
		startOn := time.Now()
		resOn := semantics.Inflationary(inOn)
		durOn := time.Since(startOn)

		ok := resOff.State.Equal(resOn.State) && resOff.Stats.Rounds == resOn.Stats.Rounds
		speedup := float64(durOff) / float64(durOn)
		t.row(wl.Name, resOn.Stats.Tuples, resOn.Stats.Rounds, ms(durOff), ms(durOn),
			fmt.Sprintf("%.2fx", speedup), c.verdict(ok, wl.Name))
	}
	t.flush()
	fmt.Fprintln(w, "    note: identical relations either way — the planner changes evaluation")
	fmt.Fprintln(w, "    cost only.  Speedups are indicative; benchstat in CI tracks regressions.")
	return c.err()
}
