package experiments

import (
	"math/rand"

	"repro/internal/relation"
)

// relationDatabase aliases relation.Database for brevity in experiment
// code.
type relationDatabase = relation.Database

func newDB() *relation.Database { return relation.NewDatabase() }

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
