package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

func init() {
	register(Experiment{
		ID:     "E14",
		Title:  "incremental maintenance: counting/DRed and stage replay vs recompute under EDB updates",
		Source: "Section 4 stage structure (+ [GMS93]-style maintenance)",
		Run:    runE14,
	})
}

// e14Workload is one maintained program + update stream.
type e14Workload struct {
	name    string
	src     string
	sem     core.Semantics
	db      func() *relation.Database
	updates int
	// assertSpeedup is the minimum speedup claimed in full mode (0 =
	// informational only, e.g. the replay strategy, whose win is the
	// skipped prefix, not a fixed factor).
	assertSpeedup float64
}

func runE14(w io.Writer, quick bool) error {
	scale := func(full, small int) int {
		if quick {
			return small
		}
		return full
	}
	workloads := []e14Workload{
		{
			// E8-scale: transitive closure, counting/DRed strata path.
			name: fmt.Sprintf("TC path n=%d", scale(64, 16)),
			src:  tcSrc, sem: core.Inflationary,
			db:      func() *relation.Database { return graphs.Path(scale(64, 16)).Database() },
			updates: scale(20, 6), assertSpeedup: 5,
		},
		{
			name: "TC random G(48,0.06)",
			src:  tcSrc, sem: core.LFP,
			db: func() *relation.Database {
				return graphs.Random(newRNG(14), scale(48, 12), 0.06).Database()
			},
			updates: scale(20, 6), assertSpeedup: 5,
		},
		{
			// E10-scale: the distance query (the BenchmarkE10DistanceQuery
			// family, one size up), stratified negation.
			name: fmt.Sprintf("distance G(%d,0.25)", scale(14, 5)),
			src:  distanceSrc, sem: core.Stratified,
			db: func() *relation.Database {
				return graphs.Random(newRNG(14), scale(14, 5), 0.25).Database()
			},
			updates: scale(12, 4), assertSpeedup: 5,
		},
		{
			// General program: inflationary stage replay.
			name: "win-move G(24,0.08) replay",
			src:  winMoveSrc, sem: core.Inflationary,
			db: func() *relation.Database {
				return graphs.Random(newRNG(9), scale(24, 10), 0.08).Database()
			},
			updates: scale(12, 4),
		},
	}

	t := newTable(w, "workload", "semantics", "updates", "tuples", "t(incr)/upd", "t(recompute)/upd", "speedup", "exact", "check")
	c := &checker{}
	for _, wl := range workloads {
		prog := parser.MustProgram(wl.src)
		db := wl.db()
		m, err := incr.New(prog, db, wl.sem)
		if err != nil {
			return err
		}
		mirror := db.Clone()
		rng := rand.New(rand.NewSource(4242))
		nVerts := mirror.Universe().Size()
		var tIncr, tRec time.Duration
		exact := true
		for step := 0; step < wl.updates; step++ {
			u := graphs.VertexName(rng.Intn(nVerts))
			v := graphs.VertexName(rng.Intn(nVerts))
			f := incr.Fact{Pred: "E", Args: []string{u, v}}
			var ins, del []incr.Fact
			if step%3 == 2 && mirror.Relation("E").Len() > 1 {
				del = append(del, f)
			} else {
				ins = append(ins, f)
			}

			start := time.Now()
			if _, err := m.Update(ins, del); err != nil {
				return err
			}
			tIncr += time.Since(start)

			// From-scratch recompute on an identically updated mirror.
			for _, d := range del {
				tu := internTuple(mirror, d.Args)
				mirror.Relation("E").Remove(tu)
			}
			for _, i := range ins {
				tu := internTuple(mirror, i.Args)
				mirror.MustEnsure("E", 2).Add(tu)
			}
			start = time.Now()
			res, err := core.Eval(prog, mirror, wl.sem, semantics.SemiNaive)
			if err != nil {
				return err
			}
			tRec += time.Since(start)
			if m.State().Format(m.Universe()) != res.State.Format(res.Universe) {
				exact = false
			}
		}
		speedup := float64(tRec) / float64(tIncr)
		ok := exact
		if !quick && wl.assertSpeedup > 0 {
			// Timing claims only gate the full run; CI smoke uses quick
			// mode, where the column is informational (runner noise).
			ok = ok && speedup >= wl.assertSpeedup
		}
		t.row(wl.name, wl.sem, wl.updates, m.State().Total(),
			ms(time.Duration(int64(tIncr)/int64(wl.updates))),
			ms(time.Duration(int64(tRec)/int64(wl.updates))),
			fmt.Sprintf("%.1fx", speedup), exact,
			c.verdict(ok, wl.name))
	}
	t.flush()
	fmt.Fprintln(w, "    note: single-fact updates maintained by counting (nonrecursive strata),")
	fmt.Fprintln(w, "    DRed delete/rederive (recursive strata), or stage-log replay (general")
	fmt.Fprintln(w, "    inflationary); every row is checked bit-exact against a full recompute.")
	return c.err()
}

// internTuple interns constant names into the database universe.
func internTuple(db *relation.Database, args []string) relation.Tuple {
	t := make(relation.Tuple, len(args))
	for i, a := range args {
		t[i] = db.Universe().Intern(a)
	}
	return t
}
