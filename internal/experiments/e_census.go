package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/fixpoint"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/semantics"
)

const pi1Src = "t(X) :- E(Y,X), !t(Y)."

func init() {
	register(Experiment{
		ID:     "E1",
		Title:  "π₁ fixpoint census on paths, cycles, and disjoint cycles",
		Source: "Section 2 (the Lₙ / Cₙ / Gₙ examples)",
		Run:    runE1,
	})
	register(Experiment{
		ID:     "E5",
		Title:  "least-fixpoint existence via intersection of all fixpoints",
		Source: "Theorem 3 and its criterion",
		Run:    runE5,
	})
}

func runE1(w io.Writer, quick bool) error {
	maxN := 9
	maxCopies := 6
	if quick {
		maxN, maxCopies = 6, 3
	}
	t := newTable(w, "database", "fixpoints", "unique", "least", "paper", "check")
	c := &checker{}

	analyze := func(g *graphs.Graph) (count int, unique, least bool) {
		in := engine.MustNew(parser.MustProgram(pi1Src), g.Database())
		cnt, _, err := fixpoint.Count(in, fixpoint.Options{}, 0)
		if err != nil {
			panic(err)
		}
		res, err := fixpoint.Least(in, fixpoint.Options{})
		if err != nil {
			panic(err)
		}
		return cnt, cnt == 1, res.Exists
	}

	for n := 2; n <= maxN; n++ {
		cnt, unique, least := analyze(graphs.Path(n))
		ok := cnt == 1 && unique && least
		t.row(fmt.Sprintf("L%d (path)", n), cnt, unique, least,
			"unique fixpoint {2,4,…}", c.verdict(ok, fmt.Sprintf("L%d", n)))
	}
	for n := 3; n <= maxN; n++ {
		cnt, unique, least := analyze(graphs.Cycle(n))
		var ok bool
		var claim string
		if n%2 == 1 {
			ok = cnt == 0 && !least
			claim = "no fixpoint"
		} else {
			ok = cnt == 2 && !unique && !least
			claim = "two incomparable fixpoints"
		}
		t.row(fmt.Sprintf("C%d (cycle)", n), cnt, unique, least, claim,
			c.verdict(ok, fmt.Sprintf("C%d", n)))
	}
	for m := 1; m <= maxCopies; m++ {
		cnt, _, least := analyze(graphs.DisjointCycles(m, 4))
		ok := cnt == 1<<m && !least
		t.row(fmt.Sprintf("G%d (%d×C4)", m, m), cnt, cnt == 1, least,
			fmt.Sprintf("2^%d fixpoints, no least", m), c.verdict(ok, fmt.Sprintf("G%d", m)))
	}
	t.flush()
	return c.err()
}

func runE5(w io.Writer, quick bool) error {
	maxCopies := 6
	if quick {
		maxCopies = 3
	}
	t := newTable(w, "database", "program", "fixpoints", "least exists", "time", "paper", "check")
	c := &checker{}

	// Positive TC program: least fixpoint always exists and equals TC.
	tcSrc := "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."
	for _, n := range []int{3, 4} {
		g := graphs.Path(n)
		in := engine.MustNew(parser.MustProgram(tcSrc), g.Database())
		start := time.Now()
		res, err := fixpoint.Least(in, fixpoint.Options{})
		if err != nil {
			return err
		}
		lfp, err := semantics.LeastFixpoint(in)
		if err != nil {
			return err
		}
		ok := res.Exists && res.State.Equal(lfp.State)
		t.row(fmt.Sprintf("L%d", n), "TC", res.NumFixpoints, res.Exists, ms(time.Since(start)),
			"least = TC (monotone Θ)", c.verdict(ok, fmt.Sprintf("TC L%d", n)))
	}

	// π₁ on Lₙ: unique fixpoint, hence least.
	for _, n := range []int{4, 6} {
		in := engine.MustNew(parser.MustProgram(pi1Src), graphs.Path(n).Database())
		start := time.Now()
		res, err := fixpoint.Least(in, fixpoint.Options{})
		if err != nil {
			return err
		}
		ok := res.Exists && res.NumFixpoints == 1
		t.row(fmt.Sprintf("L%d", n), "π₁", res.NumFixpoints, res.Exists, ms(time.Since(start)),
			"unique ⇒ least", c.verdict(ok, fmt.Sprintf("π₁ L%d", n)))
	}

	// π₁ on Gₘ: 2^m pairwise incomparable fixpoints, intersection not a
	// fixpoint, cost grows with the fixpoint count (the exponential
	// enumeration Theorem 3's hardness predicts).
	for m := 1; m <= maxCopies; m++ {
		in := engine.MustNew(parser.MustProgram(pi1Src), graphs.DisjointCycles(m, 4).Database())
		start := time.Now()
		res, err := fixpoint.Least(in, fixpoint.Options{})
		if err != nil {
			return err
		}
		ok := !res.Exists && res.NumFixpoints == 1<<m && res.Intersection.Total() == 0
		t.row(fmt.Sprintf("G%d", m), "π₁", res.NumFixpoints, res.Exists, ms(time.Since(start)),
			"∩ of fixpoints = ∅, not a fixpoint", c.verdict(ok, fmt.Sprintf("G%d", m)))
	}
	t.flush()
	return c.err()
}
