package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registered %d experiments, want 18", len(all))
	}
	for i, e := range all {
		want := i + 1
		if idOrder(e.ID) != want {
			t.Errorf("position %d has %s", i, e.ID)
		}
		if e.Title == "" || e.Source == "" || e.Run == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if _, ok := Find("E1"); !ok {
		t.Error("Find(E1) failed")
	}
	if _, ok := Find("E99"); ok {
		t.Error("Find(E99) succeeded")
	}
}

// TestAllExperimentsPass runs every experiment in quick mode: each
// experiment verifies its paper claims internally and errors on any
// mismatch, so this is the end-to-end reproduction check.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunOne(&buf, e, true); err != nil {
				t.Fatalf("%v\noutput:\n%s", err, buf.String())
			}
			if strings.Contains(buf.String(), "MISMATCH") {
				t.Fatalf("mismatch in output:\n%s", buf.String())
			}
		})
	}
}
