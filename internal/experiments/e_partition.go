package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/semantics"
)

func init() {
	register(Experiment{
		ID:     "E17",
		Title:  "partitioned evaluation: K-way delta exchange vs the unpartitioned engine",
		Source: "engineering (ROADMAP: partitioned evaluation with delta exchange)",
		Run:    runE17,
	})
}

// E17Partitions is the partition-count sweep shared by experiment E17
// and BenchmarkE17PartitionScaling.
func E17Partitions() []int { return []int{1, 2, 4, 8} }

// runE17 evaluates the 2-rule transitive closure and the Proposition 2
// distance program under inflationary semantics with K-way
// hash-partitioned fixpoint rounds, K ∈ {1, 2, 4, 8}.  The claim under
// test is bit-exactness: identical relations AND identical round/delta
// statistics at every K, because the exchange rounds accept exactly the
// tuples the unpartitioned rounds would derive.  The exchanged and
// filter columns report the cross-partition tuple traffic and how much
// of it the Bloom prefilter resolved without an exact membership probe;
// the speedup column is hardware-dependent (K > 1 only pays off with
// cores to spare — on a single-core runner it measures exchange
// overhead, not scaling).
func runE17(w io.Writer, quick bool) error {
	tcN, tcP, distN, distP := 64, 0.06, 14, 0.25
	if quick {
		tcN, tcP, distN, distP = 40, 0.08, 10, 0.25
	}
	cases := []struct {
		name string
		src  string
		db   func() *relation.Database
	}{
		{fmt.Sprintf("tc/G(%d,%.2f)", tcN, tcP), tcSrc,
			func() *relation.Database { return graphs.Random(newRNG(int64(tcN)), tcN, tcP).Database() }},
		{fmt.Sprintf("distance/G(%d,%.2f)", distN, distP), distanceSrc,
			func() *relation.Database { return graphs.Random(newRNG(int64(distN)), distN, distP).Database() }},
	}

	t := newTable(w, "workload", "K", "tuples", "rounds", "exchanged", "filter-skip", "t(K=1)", "t(K)", "speedup", "check")
	c := &checker{}
	for _, cs := range cases {
		prog := parser.MustProgram(cs.src)
		db := cs.db()

		ref := engine.MustNew(prog, db.Clone())
		ref.SetPartitions(1)
		startRef := time.Now()
		want := semantics.Inflationary(ref)
		durRef := time.Since(startRef)

		for _, k := range E17Partitions() {
			in := engine.MustNew(prog, db.Clone())
			in.SetPartitions(k)
			before := partition.Snapshot()
			start := time.Now()
			got := semantics.Inflationary(in)
			dur := time.Since(start)
			after := partition.Snapshot()

			exchanged := after.ExchangedTuples - before.ExchangedTuples
			probes := after.FilterProbes - before.FilterProbes
			skips := after.FilterSkips - before.FilterSkips
			skipRate := "-"
			if probes > 0 {
				skipRate = fmt.Sprintf("%.0f%%", 100*float64(skips)/float64(probes))
			}
			ok := got.State.Equal(want.State) && got.Stats.Core() == want.Stats.Core()
			t.row(cs.name, k, got.Stats.Tuples, got.Stats.Rounds, exchanged, skipRate,
				ms(durRef), ms(dur),
				fmt.Sprintf("%.2fx", float64(durRef)/float64(dur)),
				c.verdict(ok, fmt.Sprintf("%s/K=%d", cs.name, k)))
		}
	}
	t.flush()
	fmt.Fprintln(w, "    note: identical relations and stage statistics at every K — partitioning")
	fmt.Fprintln(w, "    changes where each delta tuple is derived, never which.  Exchanged counts")
	fmt.Fprintln(w, "    cross-partition tuples received per run (pre-dedup); filter-skip is the")
	fmt.Fprintln(w, "    share of exchange-path emissions the Bloom prefilter resolved without an")
	fmt.Fprintln(w, "    exact probe.  Speedups need spare cores; K=1 bypasses the exchange.")
	return c.err()
}
