// Package experiments regenerates the paper's evaluation: one
// experiment per theorem, lemma, worked example and proposition, each
// printing a table of "paper claim vs measured outcome" rows (the
// paper, a theory paper, has no numeric tables — its claims are the
// artifacts under reproduction; see DESIGN.md §4 and EXPERIMENTS.md).
//
// Each experiment is deterministic (seeded workloads) and checks its
// claims programmatically: a row that contradicts the paper fails the
// experiment, so cmd/bench doubles as an end-to-end verification run.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	// Source cites the part of the paper being reproduced.
	Source string
	// Run writes the experiment's table to w.  In quick mode the
	// parameter sweep is shortened for use under `go test -bench`.
	Run func(w io.Writer, quick bool) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in ID order.
func All() []Experiment {
	out := append([]Experiment{}, registry...)
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < … < E10 < E11 (numeric-aware).
		return idOrder(out[i].ID) < idOrder(out[j].ID)
	})
	return out
}

func idOrder(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll runs every experiment, writing tables to w.
func RunAll(w io.Writer, quick bool) error {
	for _, e := range All() {
		if err := RunOne(w, e, quick); err != nil {
			return err
		}
	}
	return nil
}

// RunOne runs a single experiment with its header.
func RunOne(w io.Writer, e Experiment, quick bool) error {
	fmt.Fprintf(w, "=== %s: %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "    source: %s\n", e.Source)
	start := time.Now()
	if err := e.Run(w, quick); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Fprintf(w, "    (%.2fs)\n\n", time.Since(start).Seconds())
	return nil
}

// table is a small aligned-column writer.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer, headers ...any) *table {
	t := &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
	t.row(headers...)
	return t
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// check returns "ok" when got matches the claim, and records failure
// otherwise.
type checker struct{ failures []string }

func (c *checker) verdict(ok bool, context string) string {
	if ok {
		return "ok"
	}
	c.failures = append(c.failures, context)
	return "MISMATCH"
}

func (c *checker) err() error {
	if len(c.failures) == 0 {
		return nil
	}
	return fmt.Errorf("claims violated: %v", c.failures)
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }
