package experiments

import (
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/ifp"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/semantics"
)

func init() {
	register(Experiment{
		ID:     "E12",
		Title:  "Inflationary DATALOG = existential fragment of FO+IFP",
		Source: "Proposition 1",
		Run:    runE12,
	})
}

func runE12(w io.Writer, quick bool) error {
	seeds := 5
	if quick {
		seeds = 2
	}
	t := newTable(w, "query", "direction", "agreement", "stages equal", "check")
	c := &checker{}

	ops := []struct {
		name string
		op   *ifp.Operator
	}{
		{"TC: E(x,y) ∨ ∃z(E(x,z)∧S(z,y))", &ifp.Operator{
			Pred: "s", Arity: 2, FreeVars: []string{"X", "Y"},
			Phi: logic.Or{Fs: []logic.Formula{
				logic.A("E", "X", "Y"),
				logic.Exists{Vars: []string{"Z"}, F: logic.And{Fs: []logic.Formula{
					logic.A("E", "X", "Z"), logic.A("s", "Z", "Y")}}},
			}},
		}},
		{"π₁: ∃y(E(y,x)∧¬S(y))", &ifp.Operator{
			Pred: "t", Arity: 1, FreeVars: []string{"X"},
			Phi: logic.Exists{Vars: []string{"Y"}, F: logic.And{Fs: []logic.Formula{
				logic.A("E", "Y", "X"), logic.Not{F: logic.A("t", "Y")}}}},
		}},
	}

	// Direction 1: FO+IFP operator → DATALOG¬ program, compared against
	// direct iterated model checking.
	for _, oc := range ops {
		prog, err := oc.op.Program()
		if err != nil {
			return err
		}
		agree, stagesOK := 0, true
		for s := 0; s < seeds; s++ {
			g := graphs.Random(newRNG(int64(s+300)), 5, 0.3)
			db := g.Database()
			direct, rounds, err := oc.op.InductiveFixpoint(db)
			if err != nil {
				return err
			}
			in := engine.MustNew(prog, db.Clone())
			res := semantics.Inflationary(in)
			if res.State[oc.op.Pred].Equal(direct) {
				agree++
			}
			if res.Stats.Rounds != rounds {
				stagesOK = false
			}
		}
		ok := agree == seeds && stagesOK
		t.row(oc.name, "IFP → program", fmt.Sprintf("%d/%d", agree, seeds), stagesOK,
			c.verdict(ok, oc.name))
	}

	// Direction 2: DATALOG¬ program → FO+IFP operator.
	progs := []struct {
		name string
		src  string
	}{
		{"TC program", "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."},
		{"π₁ program", "t(X) :- E(Y,X), !t(Y)."},
	}
	for _, pc := range progs {
		prog := parser.MustProgram(pc.src)
		op, err := ifp.FromProgram(prog)
		if err != nil {
			return err
		}
		agree := 0
		for s := 0; s < seeds; s++ {
			g := graphs.Random(newRNG(int64(s+400)), 5, 0.3)
			db := g.Database()
			direct, _, err := op.InductiveFixpoint(db)
			if err != nil {
				return err
			}
			in := engine.MustNew(prog, db.Clone())
			res := semantics.Inflationary(in)
			if res.State[op.Pred].Equal(direct) {
				agree++
			}
		}
		ok := agree == seeds
		t.row(pc.name, "program → IFP", fmt.Sprintf("%d/%d", agree, seeds), "-",
			c.verdict(ok, pc.name))
	}
	t.flush()
	fmt.Fprintln(w, "    note: both translation directions of Proposition 1, with the direct")
	fmt.Fprintln(w, "    iterated-model-checking evaluator as the independent oracle.")
	return c.err()
}
