package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

func init() {
	register(Experiment{
		ID:     "E15",
		Title:  "frontier evaluation: dedup-at-emit + intra-rule sharding, worker scaling",
		Source: "engineering (ROADMAP: saturate the hardware; Θ evaluation strategy only)",
		Run:    runE15,
	})
}

// E15Workers is the worker-count sweep shared by experiment E15 and
// BenchmarkE15FrontierScaling: 1, powers of two up to GOMAXPROCS, and
// GOMAXPROCS itself.  At least {1, 2} even on a single-core runner, so
// the sharded merge path is always exercised (timings there measure
// overhead, not scaling).
func E15Workers() []int {
	max := runtime.GOMAXPROCS(0)
	ws := []int{1, 2}
	for w := 4; w <= max; w *= 2 {
		ws = append(ws, w)
	}
	if max > 2 && ws[len(ws)-1] != max {
		ws = append(ws, max)
	}
	return ws
}

// runE15 evaluates the 2-rule transitive-closure and the Proposition 2
// distance program under inflationary semantics, sweeping worker counts
// with the frontier pipeline + intra-rule sharding on versus the
// derive+Diff baseline (whose parallelism is rule-level only, so a
// 2-rule program can use at most 2 workers no matter the pool).  The
// claim under test is bit-exactness — the same relations at every point
// of the matrix; the speedup column is the engineering payoff.
func runE15(w io.Writer, quick bool) error {
	tcN, tcP, distN, distP := 64, 0.06, 14, 0.25
	if quick {
		tcN, tcP, distN, distP = 40, 0.08, 10, 0.25
	}
	cases := []struct {
		name string
		src  string
		db   func() *relation.Database
	}{
		{fmt.Sprintf("tc/G(%d,%.2f)", tcN, tcP), tcSrc,
			func() *relation.Database { return graphs.Random(newRNG(int64(tcN)), tcN, tcP).Database() }},
		{fmt.Sprintf("distance/G(%d,%.2f)", distN, distP), distanceSrc,
			func() *relation.Database { return graphs.Random(newRNG(int64(distN)), distN, distP).Database() }},
	}

	t := newTable(w, "workload", "workers", "tuples", "t(derive+diff)", "t(frontier+shard)", "speedup", "check")
	c := &checker{}
	for _, cs := range cases {
		prog := parser.MustProgram(cs.src)
		db := cs.db()

		ref := engine.MustNew(prog, db.Clone())
		ref.SetFrontier(false)
		ref.SetSharding(false)
		ref.SetWorkers(1)
		want := semantics.Inflationary(ref)

		for _, nw := range E15Workers() {
			base := engine.MustNew(prog, db.Clone())
			base.SetFrontier(false)
			base.SetSharding(false)
			base.SetWorkers(nw)
			startBase := time.Now()
			resBase := semantics.Inflationary(base)
			durBase := time.Since(startBase)

			fast := engine.MustNew(prog, db.Clone())
			fast.SetFrontier(true)
			fast.SetSharding(true)
			fast.SetWorkers(nw)
			startFast := time.Now()
			resFast := semantics.Inflationary(fast)
			durFast := time.Since(startFast)

			ok := resBase.State.Equal(want.State) && resFast.State.Equal(want.State) &&
				resFast.Stats.Rounds == want.Stats.Rounds
			t.row(cs.name, nw, resFast.Stats.Tuples, ms(durBase), ms(durFast),
				fmt.Sprintf("%.2fx", float64(durBase)/float64(durFast)),
				c.verdict(ok, fmt.Sprintf("%s/workers=%d", cs.name, nw)))
		}
	}
	t.flush()
	fmt.Fprintln(w, "    note: identical relations at every point of the matrix — the frontier")
	fmt.Fprintln(w, "    pipeline and sharding change evaluation cost only.  The baseline's")
	fmt.Fprintln(w, "    parallelism is rule-level, so extra workers beyond the rule count only")
	fmt.Fprintln(w, "    help the sharded column.")
	return c.err()
}
