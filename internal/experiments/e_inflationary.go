package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/fixpoint"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/reductions"
	"repro/internal/relation"
	"repro/internal/semantics"
)

const (
	tcSrc = `
s(X,Y) :- E(X,Y).
s(X,Y) :- E(X,Z), s(Z,Y).
`
	distanceSrc = `
s1(X,Y) :- E(X,Y).
s1(X,Y) :- E(X,Z), s1(Z,Y).
s2(Xs,Ys) :- E(Xs,Ys).
s2(Xs,Ys) :- E(Xs,Zs), s2(Zs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Y), !s2(Xs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Z), s1(Z,Y), !s2(Xs,Ys).
`
	winMoveSrc = "win(X) :- E(X,Y), !win(Y)."
)

func init() {
	register(Experiment{
		ID:     "E7",
		Title:  "SUCCINCT 3-COLORING: circuit-presented graphs, data vs expression blowup",
		Source: "Theorem 4 (+ Lemma 2, [PY86])",
		Run:    runE7,
	})
	register(Experiment{
		ID:     "E8",
		Title:  "inflationary evaluation is PTIME: stage counts and scaling, naive vs semi-naive",
		Source: "Section 4 (the |A|^k stage bound)",
		Run:    runE8,
	})
	register(Experiment{
		ID:     "E9",
		Title:  "inflationary = least fixpoint on DATALOG; Θ^∞ = Θ¹ for π₁",
		Source: "Section 4 (agreement with standard semantics)",
		Run:    runE9,
	})
	register(Experiment{
		ID:     "E10",
		Title:  "the distance query: inflationary computes it, stratified computes TC∧¬TC",
		Source: "Proposition 2",
		Run:    runE10,
	})
	register(Experiment{
		ID:     "E11",
		Title:  "semantics hierarchy: monotonicity failure, well-founded vs stratified/inflationary",
		Source: "Section 5 picture + well-founded comparison",
		Run:    runE11,
	})
}

func runE7(w io.Writer, quick bool) error {
	maxBits := 3
	if quick {
		maxBits = 2
	}
	t := newTable(w, "circuit", "gates", "vertices", "program rules", "fixpoint", "explicit 3-col", "t(succinct)", "t(explicit)", "check")
	c := &checker{}
	for n := 1; n <= maxBits; n++ {
		cases := []struct {
			name string
			sg   *circuit.SuccinctGraph
		}{
			{fmt.Sprintf("cycle 2^%d", n), circuit.CycleGraph(n)},
			{fmt.Sprintf("complete 2^%d", n), circuit.CompleteGraph(n)},
			{fmt.Sprintf("empty 2^%d", n), circuit.EmptyGraph(n)},
		}
		for _, cs := range cases {
			prog, db := reductions.PiSuccinct3Col(cs.sg)
			in, err := engine.New(prog, db)
			if err != nil {
				return err
			}
			startS := time.Now()
			has, _, err := fixpoint.Exists(in, fixpoint.Options{})
			if err != nil {
				return err
			}
			durS := time.Since(startS)

			startE := time.Now()
			explicit := reductions.ExplicitGraph(cs.sg)
			_, want := explicit.ThreeColoring()
			durE := time.Since(startE)

			ok := has == want
			t.row(cs.name, cs.sg.C.Size(), cs.sg.NumVertices(), len(prog.Rules),
				has, want, ms(durS), ms(durE), c.verdict(ok, cs.name))
		}
	}
	t.flush()
	fmt.Fprintln(w, "    note: the succinct program is polynomial in the circuit while the")
	fmt.Fprintln(w, "    explicit graph is 2ⁿ vertices — the expression-complexity blowup of Theorem 4.")
	return c.err()
}

func runE8(w io.Writer, quick bool) error {
	sizes := []int{8, 16, 32, 64}
	if quick {
		sizes = []int{8, 16}
	}
	t := newTable(w, "database", "program", "stages", "tuples", "|A|^k bound", "t(naive)", "t(semi-naive)", "check")
	c := &checker{}
	for _, n := range sizes {
		for _, pc := range []struct {
			name string
			src  string
			db   *relation.Database
			k    int
		}{
			{"TC", tcSrc, graphs.Path(n).Database(), 2},
			{"π₁", pi1Src, graphs.Cycle(n).Database(), 1},
		} {
			inN := engine.MustNew(parser.MustProgram(pc.src), pc.db.Clone())
			startN := time.Now()
			resN := semantics.InflationaryMode(inN, semantics.Naive)
			durN := time.Since(startN)

			inS := engine.MustNew(parser.MustProgram(pc.src), pc.db.Clone())
			startS := time.Now()
			resS := semantics.InflationaryMode(inS, semantics.SemiNaive)
			durS := time.Since(startS)

			bound := 1
			for i := 0; i < pc.k; i++ {
				bound *= n
			}
			ok := resN.State.Equal(resS.State) && resS.Stats.Rounds <= bound+1
			t.row(fmt.Sprintf("n=%d", n), pc.name, resS.Stats.Rounds, resS.Stats.Tuples,
				bound, ms(durN), ms(durS),
				c.verdict(ok, fmt.Sprintf("%s n=%d", pc.name, n)))
		}
	}
	t.flush()
	return c.err()
}

func runE9(w io.Writer, quick bool) error {
	seeds := 6
	if quick {
		seeds = 3
	}
	t := newTable(w, "database", "inflationary = LFP", "stages", "check")
	c := &checker{}
	for s := 0; s < seeds; s++ {
		g := graphs.Random(newRNG(int64(s)), 8, 0.25)
		in := engine.MustNew(parser.MustProgram(tcSrc), g.Database())
		inf := semantics.Inflationary(in)
		lfp, err := semantics.LeastFixpoint(in)
		if err != nil {
			return err
		}
		okTC := inf.State.Equal(lfp.State) && in.IsFixpoint(lfp.State)
		// Cross-check against BFS transitive closure.
		tc := g.TransitiveClosure()
		want := 0
		for u := range tc {
			for v := range tc[u] {
				if tc[u][v] {
					want++
				}
			}
		}
		okTC = okTC && lfp.State["s"].Len() == want
		t.row(fmt.Sprintf("TC on G(8,0.25) seed %d", s), okTC, inf.Stats.Rounds,
			c.verdict(okTC, fmt.Sprintf("tc seed %d", s)))
	}
	// π₁: Θ^∞ = Θ¹ (one productive stage).
	for _, n := range []int{5, 9} {
		in := engine.MustNew(parser.MustProgram(pi1Src), graphs.Cycle(n).Database())
		res := semantics.Inflationary(in)
		theta1 := in.Apply(in.NewState())
		ok := res.State.Equal(theta1) && res.Stats.Rounds == 2
		t.row(fmt.Sprintf("π₁ on C%d", n), ok, res.Stats.Rounds,
			c.verdict(ok, fmt.Sprintf("pi1 C%d", n)))
	}
	t.flush()
	return c.err()
}

func runE10(w io.Writer, quick bool) error {
	sizes := []int{4, 6, 8}
	seedsPer := 3
	if quick {
		sizes = []int{4, 6}
		seedsPer = 2
	}
	t := newTable(w, "graph", "inflationary = BFS distance", "stratified = TC∧¬TC", "they differ", "check")
	c := &checker{}
	prog := parser.MustProgram(distanceSrc)
	for _, n := range sizes {
		for s := 0; s < seedsPer; s++ {
			g := graphs.Random(newRNG(int64(n*10+s)), n, 0.3)
			db := g.Database()

			in := engine.MustNew(parser.MustProgram(distanceSrc), db.Clone())
			infl := semantics.Inflationary(in)
			strat, err := semantics.Stratified(prog, db)
			if err != nil {
				return err
			}

			dist := g.Distances()
			tc := g.TransitiveClosure()
			u := in.Universe()
			id := func(v int) int {
				x, _ := u.Lookup(graphs.VertexName(v))
				return x
			}
			okInfl, okStrat := true, true
			differ := false
			for x := 0; x < n; x++ {
				for y := 0; y < n; y++ {
					for xs := 0; xs < n; xs++ {
						for ys := 0; ys < n; ys++ {
							tuple := relation.Tuple{id(x), id(y), id(xs), id(ys)}
							wantD := dist[x][y] > 0 && (dist[xs][ys] < 0 || dist[x][y] <= dist[xs][ys])
							wantS := tc[x][y] && !tc[xs][ys]
							if infl.State["s3"].Has(tuple) != wantD {
								okInfl = false
							}
							if strat.State["s3"].Has(tuple) != wantS {
								okStrat = false
							}
							if wantD != wantS {
								differ = true
							}
						}
					}
				}
			}
			ok := okInfl && okStrat
			t.row(fmt.Sprintf("G(%d,0.3) seed %d", n, s), okInfl, okStrat, differ,
				c.verdict(ok, fmt.Sprintf("n=%d s=%d", n, s)))
		}
	}
	t.flush()
	fmt.Fprintln(w, "    note: the same rules compute different queries under the two semantics,")
	fmt.Fprintln(w, "    exactly as the end of Section 4 observes.")
	return c.err()
}

func runE11(w io.Writer, quick bool) error {
	t := newTable(w, "case", "observation", "check")
	c := &checker{}

	// (a) Monotonicity failure (the Proposition 2 proof's observation):
	// on G = {0→1→2} with isolated vertices 3,4, D(0,2,3,4) holds
	// (dist(0,2)=2, no path 3→4); adding the edge 3→4 makes
	// dist(3,4)=1 < 2 and the answer flips to false.  Hence no DATALOG
	// program (all of which are monotone) expresses the distance query.
	idx := func(u *relation.Universe, v int) int {
		x, _ := u.Lookup(graphs.VertexName(v))
		return x
	}
	g1 := graphs.New(5)
	g1.AddEdge(0, 1)
	g1.AddEdge(1, 2)
	in1 := engine.MustNew(parser.MustProgram(distanceSrc), g1.Database())
	r1 := semantics.Inflationary(in1)
	u1 := in1.Universe()
	q1 := relation.Tuple{idx(u1, 0), idx(u1, 2), idx(u1, 3), idx(u1, 4)}
	before := r1.State["s3"].Has(q1)

	g2 := graphs.New(5)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 2)
	g2.AddEdge(3, 4)
	in2 := engine.MustNew(parser.MustProgram(distanceSrc), g2.Database())
	r2 := semantics.Inflationary(in2)
	u2 := in2.Universe()
	q2 := relation.Tuple{idx(u2, 0), idx(u2, 2), idx(u2, 3), idx(u2, 4)}
	after := r2.State["s3"].Has(q2)

	flipped := before && !after
	t.row("distance query non-monotone",
		fmt.Sprintf("D(0,2,3,4): G=%v, G+{3→4}=%v", before, after),
		c.verdict(flipped, "monotonicity"))

	// (b) Well-founded agrees with stratified on a stratified program.
	strat, err := semantics.Stratified(parser.MustProgram(distanceSrc), graphs.Path(4).Database())
	if err != nil {
		return err
	}
	inWF := engine.MustNew(parser.MustProgram(distanceSrc), graphs.Path(4).Database())
	wf := semantics.WellFounded(inWF)
	okWF := wf.Total() && wf.True.Equal(strat.State)
	t.row("WF = stratified on stratified program", fmt.Sprintf("total=%v equal=%v", wf.Total(), wf.True.Equal(strat.State)),
		c.verdict(okWF, "wf-strat"))

	// (c) Win-move: WF is three-valued on draws, inflationary is total;
	// they disagree on cycles (the paper's point that different
	// negation semantics give different answers on unstratifiable
	// programs).
	cyc := graphs.Cycle(4).Database()
	inWin := engine.MustNew(parser.MustProgram(winMoveSrc), cyc.Clone())
	wfWin := semantics.WellFounded(inWin)
	inflWin := semantics.Inflationary(engine.MustNew(parser.MustProgram(winMoveSrc), cyc.Clone()))
	okWin := !wfWin.Total() && inflWin.State["win"].Len() == 4 && wfWin.True["win"].Len() == 0
	t.row("win-move on C4", fmt.Sprintf("WF undefined=%d, inflationary |win|=%d",
		wfWin.Undefined()["win"].Len(), inflWin.State["win"].Len()),
		c.verdict(okWin, "winmove"))

	// (d) π₂ as stratified program: S2 = TC × ¬TC (Section 2's example
	// under the Chandra–Harel semantics).
	pi2 := parser.MustProgram(`
s1(X,Y) :- E(X,Y).
s1(X,Y) :- E(X,Z), s1(Z,Y).
s2(X,Y,Z,W) :- s1(X,Y), !s1(Z,W).
`)
	res, err := semantics.Stratified(pi2, graphs.Path(3).Database())
	if err != nil {
		return err
	}
	okPi2 := res.State["s1"].Len() == 3 && res.State["s2"].Len() == 3*(9-3)
	t.row("π₂ stratified on L3", fmt.Sprintf("|s1|=%d |s2|=%d", res.State["s1"].Len(), res.State["s2"].Len()),
		c.verdict(okPi2, "pi2"))

	t.flush()
	return c.err()
}
