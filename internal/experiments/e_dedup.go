package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

func init() {
	register(Experiment{
		ID:     "E18",
		Title:  "dedup path: packed-key table and frontier prefilter vs the map/exact baseline",
		Source: "engineering (ROADMAP: approximate-membership dedup structures)",
		Run:    runE18,
	})
}

// runE18 evaluates the 2-rule transitive closure and the Proposition 2
// distance program under inflationary semantics across the dedup-path
// ablation matrix: packed-key storage (open-addressing table vs Go
// map) × frontier prefilter (Bloom-fronted vs exact-only dedup
// probes).  The claim under test is bit-exactness — identical
// relations AND identical round/delta statistics in all four cells,
// because both knobs only change how a membership probe is answered,
// never its answer.  The filter-skip column reports the share of
// emit-path probes the prefilter resolved without touching the exact
// accumulated-state structure; timing cells are hardware-dependent.
func runE18(w io.Writer, quick bool) error {
	tcN, tcP, distN, distP := 64, 0.06, 14, 0.25
	if quick {
		tcN, tcP, distN, distP = 40, 0.08, 10, 0.25
	}
	cases := []struct {
		name string
		src  string
		db   func() *relation.Database
	}{
		{fmt.Sprintf("tc/G(%d,%.2f)", tcN, tcP), tcSrc,
			func() *relation.Database { return graphs.Random(newRNG(int64(tcN)), tcN, tcP).Database() }},
		{fmt.Sprintf("distance/G(%d,%.2f)", distN, distP), distanceSrc,
			func() *relation.Database { return graphs.Random(newRNG(int64(distN)), distN, distP).Database() }},
	}

	// The packed-table knob is process-wide and sampled at Relation
	// construction, so each cell builds its database and instance with
	// the knob set; the deferred restore covers error exits.
	defer relation.SetDefaultPackedTable(true)

	t := newTable(w, "workload", "table", "filter", "tuples", "rounds", "filter-skip", "t(base)", "t(cell)", "speedup", "check")
	c := &checker{}
	for _, cs := range cases {
		prog := parser.MustProgram(cs.src)

		// Oracle cell: map storage, exact probes — the seed's dedup path.
		relation.SetDefaultPackedTable(false)
		ref := engine.MustNew(prog, cs.db())
		ref.SetFrontierFilter(false)
		startRef := time.Now()
		want := semantics.Inflationary(ref)
		durRef := time.Since(startRef)

		for _, cell := range []struct{ table, filter bool }{
			{false, false}, {false, true}, {true, false}, {true, true},
		} {
			relation.SetDefaultPackedTable(cell.table)
			in := engine.MustNew(prog, cs.db())
			in.SetFrontierFilter(cell.filter)
			start := time.Now()
			got := semantics.Inflationary(in)
			dur := time.Since(start)

			skipRate := "-"
			if got.Stats.FilterProbes > 0 {
				skipRate = fmt.Sprintf("%.0f%%",
					100*float64(got.Stats.FilterSkips)/float64(got.Stats.FilterProbes))
			}
			ok := got.State.Equal(want.State) && got.Stats.Core() == want.Stats.Core()
			t.row(cs.name, onOff(cell.table), onOff(cell.filter),
				got.Stats.Tuples, got.Stats.Rounds, skipRate,
				ms(durRef), ms(dur),
				fmt.Sprintf("%.2fx", float64(durRef)/float64(dur)),
				c.verdict(ok, fmt.Sprintf("%s/table=%v/filter=%v", cs.name, cell.table, cell.filter)))
		}
	}
	t.flush()
	fmt.Fprintln(w, "    note: identical relations and stage statistics in every cell — the table")
	fmt.Fprintln(w, "    and the prefilter change how a dedup probe is answered, never the answer.")
	fmt.Fprintln(w, "    filter-skip is the share of emit-path probes the Bloom prefilter resolved")
	fmt.Fprintln(w, "    as definitely-absent without an exact accumulated-state probe; it is only")
	fmt.Fprintln(w, "    nonzero once a predicate crosses the filter's size threshold.")
	return c.err()
}

// onOff renders an ablation-cell toggle.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
