package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/semantics"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:     "E16",
		Title:  "demand-driven point queries: magic-set rewriting vs full materialization",
		Source: "engineering (ROADMAP: point queries for many users; magic sets per Beeri–Ramakrishnan, stratified per Balbin et al.)",
		Run:    runE16,
	})
}

// runE16 answers one point query per workload two ways — magic-set
// rewritten (QueryLFP/QueryStratified) and full materialization plus a
// filter — and checks bit-exactness of the answers on every row.  The
// speedup column is the demand-driven payoff; on the headline row
// (left-recursive TC on a path) the full (non-quick) run asserts the
// ≥5x acceptance bar.  The tc-left/tc-right pair isolates the
// sideways-information-passing sensitivity: same closure, same query,
// opposite recursion direction.
func runE16(w io.Writer, quick bool) error {
	t := newTable(w, "workload", "query", "answers", "derived(magic)", "derived(full)", "t(full)", "t(magic)", "speedup", "check")
	c := &checker{}
	for _, wl := range workload.PointQueryWorkloads(quick) {
		prog := parser.MustProgram(wl.Src)
		q := magic.MustParseQuery(wl.Query)
		db := wl.DB()

		sem := core.LFP
		if wl.Stratified {
			sem = core.Stratified
		}

		// Full materialization + filter (the oracle).
		startFull := time.Now()
		full, err := core.QueryFull(prog, db, q, sem, semantics.SemiNaive)
		if err != nil {
			return err
		}
		durFull := time.Since(startFull)

		// Demand-driven.
		startMagic := time.Now()
		var res *semantics.QueryResult
		if wl.Stratified {
			res, err = semantics.QueryStratified(prog, db, q, semantics.SemiNaive)
		} else {
			res, err = semantics.QueryLFP(prog, db, q, semantics.SemiNaive)
		}
		if err != nil {
			return err
		}
		durMagic := time.Since(startMagic)

		exact := res.Tuples.Len() == full.Tuples.Len() &&
			res.Tuples.Format(res.Universe) == full.Tuples.Format(full.Universe)
		speedup := float64(durFull) / float64(durMagic)
		ok := exact
		if wl.Headline && !quick && speedup < 5 {
			ok = false
		}
		t.row(wl.Name, wl.Query, res.Tuples.Len(), res.Stats.Tuples, full.Stats.Tuples,
			ms(durFull), ms(durMagic), fmt.Sprintf("%.1fx", speedup),
			c.verdict(ok, wl.Name))
	}
	t.flush()
	fmt.Fprintln(w, "    note: answers are bit-exact on every row; 'derived' counts the tuples")
	fmt.Fprintln(w, "    each strategy materializes.  tc-left keeps the magic set at the seed and")
	fmt.Fprintln(w, "    derives one row of the closure; tc-right floods the magic set with every")
	fmt.Fprintln(w, "    reachable vertex — write demand-driven recursions left-recursive.")
	return c.err()
}
