// Differential property test of the dedup-path toggles: over random
// safe programs and databases, every semantics × packed-table on/off ×
// frontier-filter on/off × workers {1,N} × partitions {1,4} must be
// bit-exact — state AND core stats — with the map-mode, exact-probe,
// single-worker, unpartitioned oracle.  The race Makefile/CI target
// runs this package, so the whole matrix also executes under -race.
package partition_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
)

// TestPropDedupMatrixBitExact checks that neither the open-addressing
// packed-key table nor the frontier Bloom prefilter can change an
// answer: both knobs only change how a membership probe is answered.
// The packed-table knob is process-wide and sampled at Relation
// construction, so each table cell rebuilds the database (same seed)
// under its setting — EDB and IDB relations alike run in cell mode.
func TestPropDedupMatrixBitExact(t *testing.T) {
	nw := runtime.GOMAXPROCS(0)
	if nw < 2 {
		nw = 8 // oversubscribe: scheduling must not matter
	}
	defer relation.SetDefaultPackedTable(true)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x51ed))
		layers := 1 + int(seed)%3
		src := randProgram(rng, layers)
		prog, err := parser.Program(src)
		if err != nil {
			t.Fatalf("seed %d: unparsable program:\n%s\n%v", seed, src, err)
		}
		dbN := 4 + rng.Intn(3)

		sems := []core.Semantics{core.Inflationary, core.Stratified, core.WellFounded}
		if layers == 1 {
			sems = append(sems, core.LFP)
		}
		for _, sem := range sems {
			relation.SetDefaultPackedTable(false)
			oracleDB := randDB(rand.New(rand.NewSource(seed)), dbN)
			want, err := core.EvalOpts(prog, oracleDB, sem, 0,
				engine.Options{Workers: 1, Partitions: 1, FrontierFilter: engine.Off})
			if err != nil {
				t.Fatalf("seed %d %v oracle: %v\n%s", seed, sem, err, src)
			}
			for _, table := range []bool{false, true} {
				relation.SetDefaultPackedTable(table)
				db := randDB(rand.New(rand.NewSource(seed)), dbN)
				for _, ff := range []engine.Toggle{engine.Off, engine.On} {
					for _, w := range []int{1, nw} {
						for _, parts := range []int{1, 4} {
							got, err := core.EvalOpts(prog, db, sem, 0,
								engine.Options{Workers: w, Partitions: parts, FrontierFilter: ff})
							if err != nil {
								t.Fatalf("seed %d %v table=%v ff=%v w=%d K=%d: %v\n%s",
									seed, sem, table, ff, w, parts, err, src)
							}
							ctx := fmt.Sprintf("%v table=%v ff=%v workers=%d K=%d\nprogram:\n%s",
								sem, table, ff, w, parts, src)
							if !got.State.Equal(want.State) {
								t.Fatalf("%s:\nstates differ\ngot:\n%swant:\n%s", ctx,
									got.State.Format(got.Universe), want.State.Format(want.Universe))
							}
							if got.Stats.Core() != want.Stats.Core() {
								t.Fatalf("%s:\nstats differ: got %+v want %+v", ctx, got.Stats, want.Stats)
							}
							if want.WF != nil && (got.WF == nil || !got.WF.Possible.Equal(want.WF.Possible)) {
								t.Fatalf("%s:\nwell-founded possible parts differ", ctx)
							}
						}
					}
				}
			}
		}
	}
}
