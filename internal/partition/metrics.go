// metrics.go — partitioned-evaluation telemetry.
//
// Counters follow the internal/metrics conventions (atomic, hot-path
// cheap).  The per-round exchange volume reuses the log-bucketed
// Histogram with tuples as the unit instead of nanoseconds — the bucket
// math is unit-agnostic.  The per-partition tuple counts of the most
// recent run are the one mutex-guarded piece, written once per run.
package partition

import (
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/relation"
)

var met struct {
	runs         metrics.Counter
	rounds       metrics.Counter
	exchanged    metrics.Counter // cross-partition tuples received, pre-dedup
	accepted     metrics.Counter // tuples accepted into states by partitioned rounds
	filterProbes metrics.Counter
	filterSkips  metrics.Counter
	// roundExchange observes the cross-partition tuple volume of each
	// exchange round (unit: tuples).
	roundExchange metrics.Histogram

	mu        sync.Mutex
	lastK     int
	lastSizes []int64
}

// asDuration casts a tuple count into the Histogram's sample type.
func asDuration(n int) time.Duration { return time.Duration(n) }

// recordPartitionSizes tallies the final accumulated state by owner
// hash — the per-partition tuple counts of the most recent run.
func recordPartitionSizes(cur engine.State, k int) {
	sizes := make([]int64, k)
	for _, r := range cur {
		r.Each(func(t relation.Tuple) bool {
			sizes[relation.TupleHash(t)%uint64(k)]++
			return true
		})
	}
	met.mu.Lock()
	met.lastK = k
	met.lastSizes = sizes
	met.mu.Unlock()
}

// Metrics is a point-in-time snapshot of the package counters.
type Metrics struct {
	// Runs and Rounds count partitioned fixpoint runs and their exchange
	// rounds since process start.
	Runs   int64
	Rounds int64
	// ExchangedTuples counts tuples received across a partition boundary
	// (pre-dedup); AcceptedTuples counts tuples the exchange rounds
	// accepted into accumulated states.
	ExchangedTuples int64
	AcceptedTuples  int64
	// ExchangeMeanPerRound / ExchangeP90PerRound summarize the per-round
	// cross-partition volume, in tuples.
	ExchangeMeanPerRound float64
	ExchangeP90PerRound  float64
	// FilterProbes counts emit-path prefilter consultations; FilterSkips
	// the subset that skipped the exact probe on a definitive "absent".
	FilterProbes int64
	FilterSkips  int64
	// LastPartitions is the K of the most recent run (0 before any);
	// LastPartitionTuples its final per-partition tuple counts.
	LastPartitions      int
	LastPartitionTuples []int64
}

// Snapshot returns the current partition telemetry.
func Snapshot() Metrics {
	m := Metrics{
		Runs:                 met.runs.Load(),
		Rounds:               met.rounds.Load(),
		ExchangedTuples:      met.exchanged.Load(),
		AcceptedTuples:       met.accepted.Load(),
		ExchangeMeanPerRound: float64(met.roundExchange.Mean()),
		ExchangeP90PerRound:  float64(met.roundExchange.Quantile(0.90)),
		FilterProbes:         met.filterProbes.Load(),
		FilterSkips:          met.filterSkips.Load(),
	}
	met.mu.Lock()
	m.LastPartitions = met.lastK
	m.LastPartitionTuples = append([]int64(nil), met.lastSizes...)
	met.mu.Unlock()
	return m
}
