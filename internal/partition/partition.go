// Package partition implements K-way hash-partitioned evaluation with
// cross-partition delta exchange — the multi-goroutine-pool evaluator
// the ROADMAP names as the step past one shared arena.
//
// # Architecture
//
// The semi-naive fixpoint loop (semantics.lfpLoopLog) is replaced by a
// coordinator plus K long-lived partition goroutines.  Ownership is by
// head-tuple hash: partition p owns every tuple t with
// relation.TupleHash(t) % K == p — the same partitioner the engine's
// bucket merge uses.  Each round:
//
//   - every partition drives the engine's semi-naive round body with
//     its own shard of the delta (the tuples it owns), while non-driver
//     and negated literals read the full shared states;
//   - derivations are routed at emit time into K owner buckets by the
//     same hash (engine.ApplyDeltaSplitFrontierParts), so the only data
//     that crosses a partition boundary is the bucket of tuples the
//     receiving partition owns — the cross-partition delta exchange,
//     carried over buffered channels;
//   - each partition merges the K buckets it receives (set union: two
//     partitions may derive the same tuple in one round) into the
//     accepted delta it owns, and hands it to the coordinator;
//   - the coordinator unions the accepted deltas into the accumulated
//     state between rounds — the exchange barrier — and the accepted
//     deltas become the partitions' next drivers.
//
// # Correctness
//
// Sharding only the delta preserves semi-naive coverage: a derivation
// is found in the round where its first genuinely-new tuple appears,
// by the partition owning that tuple — literals before the driver read
// the full previous state and literals after it read the full current
// state, exactly as in the unpartitioned round.  Negated literals probe
// the full accumulated state (never a shard), so antijoin semantics are
// untouched.  Owner buckets partition each round's emissions, and the
// per-owner merge dedups same-round cross-partition duplicates, so the
// union of accepted deltas equals the unpartitioned round's delta —
// bit-exact vs K=1 for every semantics, every round.
//
// The exchange path is fronted by a Bloom prefilter of the accumulated
// state (relation.Filter): a "definitely absent" answer skips the exact
// membership probe, a "maybe present" answer falls through to it.  The
// filter is rebuilt or extended by the coordinator between rounds, so
// it always covers the state the partitions filter against.
package partition

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/relation"
)

// Result is the outcome of a partitioned fixpoint run, mirroring the
// fields semantics.lfpLoopLog tracks.
type Result struct {
	State    engine.State
	Rounds   int
	MaxDelta int
	// FilterProbes / FilterSkips are this run's exchange-prefilter
	// tallies (summed across partitions and rounds); zero with the
	// filter off.
	FilterProbes int64
	FilterSkips  int64
}

// roundMsg carries one round's inputs to a partition: shared read-only
// views of the previous/current/negation states, the partition's owned
// delta shard, and the current accumulated-state prefilters.
type roundMsg struct {
	prev    engine.State
	cur     engine.State
	neg     engine.State
	delta   engine.State
	filters map[string]*relation.Filter
}

// bucketMsg is one exchanged owner bucket: the derivations partition
// `from` routed to the receiving partition this round.
type bucketMsg struct {
	from   int
	bucket engine.State
}

// acceptMsg is a partition's round result: the merged, deduplicated
// delta it owns, the pre-dedup count of tuples that crossed a partition
// boundary to reach it, and the round's prefilter tallies.
type acceptMsg struct {
	owner    int
	accepted engine.State
	cross    int
	fprobes  int64
	fskips   int64
}

// Fixpoint iterates S ↦ S ∪ Θ(S) to its inductive fixpoint across
// in.Partitions() hash-partitioned evaluators, mirroring the
// unpartitioned loop exactly: when negFixed is non-nil, negated IDB
// literals are evaluated against it (the well-founded Γ operator); log,
// when non-nil, observes an immutable snapshot of every stage.  The
// result is bit-exact vs the K=1 loop.
func Fixpoint(in *engine.Instance, negFixed engine.State, log func(engine.State)) *Result {
	k := in.Partitions()
	negOf := func(s engine.State) engine.State {
		if negFixed != nil {
			return negFixed
		}
		return s
	}

	res := &Result{}
	prev := in.NewState()
	cur := in.ApplySplit(prev, negOf(prev))
	res.Rounds = 1
	delta := cur.Snapshot()
	if log != nil {
		log(delta)
	}
	res.MaxDelta = delta.Total()
	if delta.Empty() || k <= 1 {
		// Nothing to iterate (or nothing to partition): finish on the
		// unpartitioned loop shape.
		for !delta.Empty() {
			newDelta := in.ApplyDeltaSplitFrontier(prev, delta, cur, negOf(cur))
			res.Rounds++
			if newDelta.Empty() {
				break
			}
			if n := newDelta.Total(); n > res.MaxDelta {
				res.MaxDelta = n
			}
			prev = cur.Snapshot()
			cur.UnionDisjoint(newDelta)
			if log != nil {
				log(cur.Snapshot())
			}
			delta = newDelta
		}
		res.State = cur
		return res
	}

	met.runs.Inc()
	// Split the instance's worker pool across the K concurrently
	// evaluating partitions.
	pw := in.Workers() / k
	if pw < 1 {
		pw = 1
	}

	// The prefilter must cover the accumulated state completely — a
	// false negative would admit a duplicate into a disjoint union — so
	// it exists only on the fused-probe path, where the coordinator can
	// keep it in lockstep with cur between rounds.
	var filters map[string]*relation.Filter
	if in.ExchangeFilter() && in.FrontierEval() {
		filters = make(map[string]*relation.Filter, len(cur))
		for pred, r := range cur {
			filters[pred] = relation.FilterOf(r, r.Len()+filterHeadroom)
		}
	}

	work := make([]chan roundMsg, k)
	inboxes := make([]chan bucketMsg, k)
	done := make(chan acceptMsg, k)
	for p := 0; p < k; p++ {
		work[p] = make(chan roundMsg, 1)
		// Buffered for all K senders, so the all-to-all exchange never
		// blocks a sender and cannot deadlock.
		inboxes[p] = make(chan bucketMsg, k)
	}
	var wg sync.WaitGroup
	wg.Add(k)
	for p := 0; p < k; p++ {
		go func(p int) {
			defer wg.Done()
			partitionLoop(in, p, k, pw, work[p], inboxes, done)
		}(p)
	}

	shards := shardState(delta, k)
	for {
		for p := 0; p < k; p++ {
			work[p] <- roundMsg{prev: prev, cur: cur, neg: negOf(cur), delta: shards[p], filters: filters}
		}
		accepted := make([]engine.State, k)
		total, exchanged := 0, 0
		for i := 0; i < k; i++ {
			am := <-done
			accepted[am.owner] = am.accepted
			total += am.accepted.Total()
			exchanged += am.cross
			res.FilterProbes += am.fprobes
			res.FilterSkips += am.fskips
		}
		res.Rounds++
		met.rounds.Inc()
		met.exchanged.Add(int64(exchanged))
		met.roundExchange.Observe(asDuration(exchanged))
		if total == 0 {
			break
		}
		met.accepted.Add(int64(total))
		if total > res.MaxDelta {
			res.MaxDelta = total
		}
		prev = cur.Snapshot()
		for q := 0; q < k; q++ {
			cur.UnionDisjoint(accepted[q])
		}
		if filters != nil {
			extendFilters(filters, cur, accepted)
		}
		if log != nil {
			log(cur.Snapshot())
		}
		shards = accepted
	}
	for p := 0; p < k; p++ {
		close(work[p])
	}
	wg.Wait()

	recordPartitionSizes(cur, k)
	res.State = cur
	return res
}

// partitionLoop is one partition's lifetime: evaluate the round body on
// the owned delta shard, exchange owner buckets with every partition,
// merge the received buckets, and hand the accepted delta to the
// coordinator.  The channel sends/receives establish the happens-before
// edges that make the shared states safe to read: the coordinator only
// mutates them between rounds.
func partitionLoop(in *engine.Instance, p, k, pw int, work <-chan roundMsg, inboxes []chan bucketMsg, done chan<- acceptMsg) {
	for msg := range work {
		po := engine.PartsOpts{NParts: k, Workers: pw, Filters: msg.filters}
		parts, fst := in.ApplyDeltaSplitFrontierParts(msg.prev, msg.delta, msg.cur, msg.neg, po)
		met.filterProbes.Add(fst.Probes)
		met.filterSkips.Add(fst.Skips)
		for q := 0; q < k; q++ {
			inboxes[q] <- bucketMsg{from: p, bucket: parts[q]}
		}
		var own engine.State
		others := make([]engine.State, 0, k-1)
		cross := 0
		for i := 0; i < k; i++ {
			bm := <-inboxes[p]
			if bm.from == p {
				own = bm.bucket
			} else {
				cross += bm.bucket.Total()
				others = append(others, bm.bucket)
			}
		}
		// Merge by set union: the same tuple may have been derived by
		// several partitions in one round; after this the accepted delta
		// is duplicate-free and disjoint from the accumulated state.
		for _, o := range others {
			own.UnionWith(o)
		}
		done <- acceptMsg{owner: p, accepted: own, cross: cross, fprobes: fst.Probes, fskips: fst.Skips}
	}
}

// shardState splits a state into k owner shards by tuple hash: shard p
// holds exactly the tuples partition p owns.
func shardState(s engine.State, k int) []engine.State {
	shards := make([]engine.State, k)
	for p := range shards {
		shards[p] = make(engine.State, len(s))
	}
	for pred, r := range s {
		parts := make([]*relation.Relation, k)
		for p := range parts {
			parts[p] = relation.New(r.Arity())
		}
		r.Each(func(t relation.Tuple) bool {
			h := relation.TupleHash(t)
			parts[h%uint64(k)].AddHash(t, h)
			return true
		})
		for p := range parts {
			shards[p][pred] = parts[p]
		}
	}
	return shards
}

// filterHeadroom is the growth allowance a fresh accumulated-state
// prefilter is sized with, so small early rounds do not trigger a
// rebuild every round.
const filterHeadroom = 4096

// extendFilters keeps the prefilters covering the accumulated state:
// the round's accepted tuples are added, and any filter pushed past its
// design load is rebuilt from the (already-unioned) accumulated
// relation at double occupancy.
func extendFilters(filters map[string]*relation.Filter, cur engine.State, accepted []engine.State) {
	for pred, f := range filters {
		for _, a := range accepted {
			if r := a[pred]; r != nil && r.Len() > 0 {
				r.Each(func(t relation.Tuple) bool {
					f.Add(t)
					return true
				})
			}
		}
		if f.Overloaded() {
			filters[pred] = relation.FilterOf(cur[pred], cur[pred].Len()+filterHeadroom)
		}
	}
}

// ApplyDeltasFrontier is the partitioned counterpart of
// engine.ApplyDeltasFrontier, used by the incremental maintainer's
// propagation loops: each delta's driver relations are sharded by owner
// hash, the K partitions evaluate their shards concurrently, and the
// owner-merged buckets are concatenated back into one state.  With
// in.Partitions() ≤ 1 it degenerates to the unpartitioned entry point.
func ApplyDeltasFrontier(in *engine.Instance, pos, neg engine.State, deltas map[string]engine.Delta, against engine.State) engine.State {
	k := in.Partitions()
	if k <= 1 {
		return in.ApplyDeltasFrontier(pos, neg, deltas, against)
	}

	shards := shardDeltas(deltas, k)
	po := engine.PartsOpts{NParts: k}
	if w := in.Workers() / k; w > 1 {
		po.Workers = w
	} else {
		po.Workers = 1
	}

	// merged[q] accumulates the owner-q buckets across partitions.
	merged := make([][]engine.State, k)
	var wg sync.WaitGroup
	wg.Add(k)
	for p := 0; p < k; p++ {
		go func(p int) {
			defer wg.Done()
			parts, _ := in.ApplyDeltasFrontierParts(pos, neg, shards[p], against, po)
			merged[p] = parts
		}(p)
	}
	wg.Wait()

	out := make(engine.State)
	for pred := range merged[0][0] {
		buckets := make([]*relation.Relation, k)
		for q := 0; q < k; q++ {
			b := merged[0][q][pred]
			for p := 1; p < k; p++ {
				b.UnionWith(merged[p][q][pred])
			}
			buckets[q] = b
		}
		out[pred] = relation.ConcatDisjoint(in.Arity(pred), buckets)
	}
	return out
}

// shardDeltas splits every delta's driver relations (and only the
// drivers — the side states are shared reads) into k owner shards.
func shardDeltas(deltas map[string]engine.Delta, k int) []map[string]engine.Delta {
	shards := make([]map[string]engine.Delta, k)
	for p := range shards {
		shards[p] = make(map[string]engine.Delta, len(deltas))
	}
	for pred, d := range deltas {
		posParts := shardRelation(d.PosDriver, k)
		negParts := shardRelation(d.NegDriver, k)
		for p := 0; p < k; p++ {
			sd := d
			if posParts != nil {
				sd.PosDriver = posParts[p]
			}
			if negParts != nil {
				sd.NegDriver = negParts[p]
			}
			shards[p][pred] = sd
		}
	}
	return shards
}

// shardRelation splits one relation into k owner shards; nil in, nil
// out.
func shardRelation(r *relation.Relation, k int) []*relation.Relation {
	if r == nil {
		return nil
	}
	parts := make([]*relation.Relation, k)
	for p := range parts {
		parts[p] = relation.New(r.Arity())
	}
	r.Each(func(t relation.Tuple) bool {
		h := relation.TupleHash(t)
		parts[h%uint64(k)].AddHash(t, h)
		return true
	})
	return parts
}
