// Differential property test of partitioned evaluation: over random
// safe programs and databases, every semantics × K ∈ {1,2,4,8} ×
// workers {1,N} × frontier on/off × exchange-filter on/off must be
// bit-exact — state AND stats — with the K=1, single-worker oracle.
// The race Makefile/CI target runs this package, so the whole matrix
// also executes under -race, which checks the coordinator/partition
// happens-before edges for real.
package partition_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/partition"
	"repro/internal/relation"
)

// ---- random safe-program generator (mirrors the semantics package's
// differential-test generator; kept local so the partition tests stay
// self-contained) ----

var genVars = []string{"X", "Y", "Z", "W"}

type genPred struct {
	name  string
	arity int
	layer int // 0 = EDB
}

func randRule(rng *rand.Rand, head genPred, pos, neg []genPred) string {
	randVar := func() string { return genVars[rng.Intn(len(genVars))] }
	atom := func(p genPred) (string, []string) {
		args := make([]string, p.arity)
		for i := range args {
			if rng.Intn(8) == 0 {
				args[i] = fmt.Sprint(rng.Intn(3))
			} else {
				args[i] = randVar()
			}
		}
		if p.arity == 0 {
			return p.name, nil
		}
		return p.name + "(" + strings.Join(args, ",") + ")", args
	}

	var body []string
	bound := map[string]bool{}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		s, args := atom(pos[rng.Intn(len(pos))])
		body = append(body, s)
		for _, a := range args {
			bound[a] = true
		}
	}
	if len(neg) > 0 && rng.Intn(2) == 0 {
		s, _ := atom(neg[rng.Intn(len(neg))])
		body = append(body, "!"+s)
	}
	if rng.Intn(3) == 0 {
		op := "="
		if rng.Intn(2) == 0 {
			op = "!="
		}
		body = append(body, randVar()+" "+op+" "+randVar())
	}

	var boundList []string
	for v := range bound {
		boundList = append(boundList, v)
	}
	sort.Strings(boundList)
	headArgs := make([]string, head.arity)
	for i := range headArgs {
		if len(boundList) > 0 && rng.Intn(8) != 0 {
			headArgs[i] = boundList[rng.Intn(len(boundList))]
		} else {
			headArgs[i] = fmt.Sprint(rng.Intn(3))
		}
	}
	if head.arity == 0 {
		return head.name + " :- " + strings.Join(body, ", ") + "."
	}
	return head.name + "(" + strings.Join(headArgs, ",") + ") :- " + strings.Join(body, ", ") + "."
}

// randProgram generates a safe program: semipositive when layers == 1
// (valid for every semantics including LFP), stratified with IDB
// negation across layers otherwise.
func randProgram(rng *rand.Rand, layers int) string {
	edb := []genPred{{"E", 2, 0}, {"V", 1, 0}}
	var idb []genPred
	for l := 1; l <= layers; l++ {
		idb = append(idb,
			genPred{fmt.Sprintf("p%d", l), 1 + rng.Intn(2), l},
			genPred{fmt.Sprintf("q%d", l), 2, l})
	}
	var rules []string
	for _, h := range idb {
		for n := 1 + rng.Intn(2); n > 0; n-- {
			var pos, neg []genPred
			pos = append(pos, edb...)
			for _, p := range idb {
				if p.layer <= h.layer {
					pos = append(pos, p)
				}
				if p.layer < h.layer {
					neg = append(neg, p)
				}
			}
			neg = append(neg, edb...)
			if layers == 1 {
				neg = edb
			}
			rules = append(rules, randRule(rng, h, pos, neg))
		}
	}
	return strings.Join(rules, "\n")
}

func randDB(rng *rand.Rand, n int) *relation.Database {
	db := relation.NewDatabase()
	for i := 0; i < n; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.35 {
				db.AddFact("E", fmt.Sprint(i), fmt.Sprint(j))
			}
		}
		if rng.Intn(2) == 0 {
			db.AddFact("V", fmt.Sprint(i))
		}
	}
	return db
}

// knob is one cell of the partition matrix.
type knob struct {
	parts    int
	workers  int
	frontier engine.Toggle
	filter   engine.Toggle
}

func partitionMatrix() []knob {
	nw := runtime.GOMAXPROCS(0)
	if nw < 2 {
		nw = 8 // oversubscribe: scheduling must not matter
	}
	return []knob{
		{1, 1, engine.On, engine.ToggleDefault},
		{2, 1, engine.On, engine.ToggleDefault},
		{2, nw, engine.On, engine.ToggleDefault},
		{4, 1, engine.On, engine.ToggleDefault},
		{4, nw, engine.On, engine.ToggleDefault},
		{4, nw, engine.Off, engine.ToggleDefault}, // frontier oracle path
		{4, nw, engine.On, engine.Off},            // exact-probe ablation
		{8, nw, engine.On, engine.ToggleDefault},
	}
}

func optsOf(k knob) engine.Options {
	return engine.Options{
		Partitions:     k.parts,
		Workers:        k.workers,
		Frontier:       k.frontier,
		ExchangeFilter: k.filter,
	}
}

// checkMatch asserts got is bit-exact with the oracle: same state, same
// round/tuple/max-delta stats, and for well-founded the same undefined
// part too.
func checkMatch(t *testing.T, src string, sem core.Semantics, k knob, got, want *core.EvalResult) {
	t.Helper()
	ctx := fmt.Sprintf("%v K=%d workers=%d frontier=%v filter=%v\nprogram:\n%s",
		sem, k.parts, k.workers, k.frontier, k.filter, src)
	if !got.State.Equal(want.State) {
		t.Fatalf("%s:\nstates differ\ngot:\n%swant:\n%s", ctx,
			got.State.Format(got.Universe), want.State.Format(want.Universe))
	}
	if got.Stats.Core() != want.Stats.Core() {
		t.Fatalf("%s:\nstats differ: got %+v want %+v", ctx, got.Stats, want.Stats)
	}
	if want.WF != nil {
		if got.WF == nil || !got.WF.Possible.Equal(want.WF.Possible) {
			t.Fatalf("%s:\nwell-founded possible parts differ", ctx)
		}
	}
}

// TestPropPartitionedBitExact is the headline contract: partitioned
// evaluation is indistinguishable from K=1 for all four semantics.
func TestPropPartitionedBitExact(t *testing.T) {
	oracleOpt := engine.Options{Workers: 1, Partitions: 1}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x9a7f))
		layers := 1 + int(seed)%3
		src := randProgram(rng, layers)
		prog, err := parser.Program(src)
		if err != nil {
			t.Fatalf("seed %d: unparsable program:\n%s\n%v", seed, src, err)
		}
		db := randDB(rng, 4+rng.Intn(3))

		sems := []core.Semantics{core.Inflationary, core.Stratified, core.WellFounded}
		if layers == 1 {
			sems = append(sems, core.LFP)
		}
		for _, sem := range sems {
			want, err := core.EvalOpts(prog, db, sem, 0, oracleOpt)
			if err != nil {
				t.Fatalf("seed %d %v oracle: %v\n%s", seed, sem, err, src)
			}
			for _, k := range partitionMatrix() {
				got, err := core.EvalOpts(prog, db, sem, 0, optsOf(k))
				if err != nil {
					t.Fatalf("seed %d %v K=%d: %v\n%s", seed, sem, k.parts, err, src)
				}
				checkMatch(t, src, sem, k, got, want)
			}
		}
	}
}

// tcSrc is the canonical transitive-closure program.
const tcSrc = `T(X,Y) :- E(X,Y).
T(X,Y) :- T(X,Z), E(Z,Y).`

// TestPartitionedTC pins the deterministic workload: TC of a random
// graph across the full K sweep, including K larger than the tuple
// variety of small rounds.
func TestPartitionedTC(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prog := parser.MustProgram(tcSrc)
	db := relation.NewDatabase()
	const n = 30
	for i := 0; i < n; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.08 {
				db.AddFact("E", fmt.Sprint(i), fmt.Sprint(j))
			}
		}
	}
	want, err := core.EvalOpts(prog, db, core.Inflationary, 0, engine.Options{Workers: 1, Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 4, 8, 16} {
		got, err := core.EvalOpts(prog, db, core.Inflationary, 0, engine.Options{Partitions: k})
		if err != nil {
			t.Fatal(err)
		}
		if !got.State.Equal(want.State) || got.Stats.Core() != want.Stats.Core() {
			t.Fatalf("K=%d: partitioned TC differs (stats got %+v want %+v)", k, got.Stats, want.Stats)
		}
	}
}

// TestPartitionMetrics checks the telemetry a partitioned run leaves
// behind: per-partition tuple counts summing to the state size, and a
// filter that both probes and skips on a TC workload.
func TestPartitionMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prog := parser.MustProgram(tcSrc)
	db := relation.NewDatabase()
	const n = 24
	for i := 0; i < n; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.12 {
				db.AddFact("E", fmt.Sprint(i), fmt.Sprint(j))
			}
		}
	}
	before := partition.Snapshot()
	const k = 4
	res, err := core.EvalOpts(prog, db, core.Inflationary, 0, engine.Options{Partitions: k})
	if err != nil {
		t.Fatal(err)
	}
	after := partition.Snapshot()
	if after.Runs != before.Runs+1 {
		t.Fatalf("runs: got %d want %d", after.Runs, before.Runs+1)
	}
	if after.Rounds <= before.Rounds {
		t.Fatalf("no exchange rounds recorded")
	}
	if after.LastPartitions != k {
		t.Fatalf("last partitions: got %d want %d", after.LastPartitions, k)
	}
	var sum int64
	for _, c := range after.LastPartitionTuples {
		sum += c
	}
	if sum != int64(res.State.Total()) {
		t.Fatalf("per-partition tuples sum to %d, state holds %d", sum, res.State.Total())
	}
	if after.FilterProbes <= before.FilterProbes {
		t.Fatalf("prefilter never consulted")
	}
	if after.FilterSkips < before.FilterSkips || after.FilterSkips > after.FilterProbes {
		t.Fatalf("implausible filter tallies: probes %d skips %d", after.FilterProbes, after.FilterSkips)
	}
}

// TestPartitionedUnsafeRule checks partitioning under the paper's
// unsafe-rule support (variables ranging over the whole universe) and
// a non-stratified program under inflationary and well-founded
// semantics — programs the random generator never produces.
func TestPartitionedUnsafeRule(t *testing.T) {
	src := `T(Z) :- !Q(X), !T(W).
Q(X) :- E(X,X).`
	prog := parser.MustProgram(src)
	db := relation.NewDatabase()
	for i := 0; i < 6; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	db.AddFact("E", "1", "2")
	db.AddFact("E", "3", "3")
	for _, sem := range []core.Semantics{core.Inflationary, core.WellFounded} {
		want, err := core.EvalOpts(prog, db, sem, 0, engine.Options{Workers: 1, Partitions: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.EvalOpts(prog, db, sem, 0, engine.Options{Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		checkMatch(t, src, sem, knob{parts: 4}, got, want)
	}
}
