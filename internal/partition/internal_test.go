package partition

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
)

// TestShardState checks the owner sharding: shards partition the input
// by TupleHash, preserving every tuple exactly once.
func TestShardState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := relation.New(2)
	for i := 0; i < 2000; i++ {
		r.Add(relation.Tuple{rng.Intn(60), rng.Intn(60)})
	}
	s := engine.State{"p": r}
	const k = 4
	shards := shardState(s, k)
	total := 0
	for p, sh := range shards {
		sh["p"].Each(func(tp relation.Tuple) bool {
			if own := int(relation.TupleHash(tp) % k); own != p {
				t.Fatalf("tuple %v in shard %d, owned by %d", tp, p, own)
			}
			return true
		})
		total += sh["p"].Len()
	}
	if total != r.Len() {
		t.Fatalf("shards hold %d tuples, input %d", total, r.Len())
	}
	// Reassembled shards equal the input.
	whole := relation.New(2)
	for _, sh := range shards {
		whole.UnionWith(sh["p"])
	}
	if !whole.Equal(r) {
		t.Fatalf("reassembled shards differ from input")
	}
}

// TestShardRelationNil checks the nil-driver passthrough used by
// shardDeltas.
func TestShardRelationNil(t *testing.T) {
	if shardRelation(nil, 4) != nil {
		t.Fatalf("nil relation must shard to nil")
	}
}

// TestApplyDeltasFrontierRouting checks the maintenance-round exchange
// wrapper: with K > 1 the drivers are sharded to their owning
// partitions, evaluated K-way, and the reassembled frontier equals the
// plain unpartitioned call; K ≤ 1 short-circuits to the engine.
func TestApplyDeltasFrontierRouting(t *testing.T) {
	prog := parser.MustProgram("s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).")
	db := relation.NewDatabase()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		db.AddFact("E", names(rng.Intn(12)), names(rng.Intn(12)))
	}
	in := engine.MustNew(prog, db)
	cur := in.Apply(in.NewState())
	deltas := map[string]engine.Delta{"s": {PosDriver: cur["s"]}}
	want := in.ApplyDeltasFrontier(cur, cur, deltas, cur)
	for _, k := range []int{1, 3, 4} {
		in.SetPartitions(k)
		got := ApplyDeltasFrontier(in, cur, cur, deltas, cur)
		if !got.Equal(want) {
			t.Fatalf("K=%d: routed maintenance round differs from unpartitioned", k)
		}
	}
	// A nil NegDriver shard must stay nil so the engine's driver
	// dispatch sees the same Delta shape as the unpartitioned call.
	sh := shardDeltas(deltas, 2)
	for p := 0; p < 2; p++ {
		if d := sh[p]["s"]; d.NegDriver != nil {
			t.Fatalf("partition %d: nil NegDriver sharded to non-nil", p)
		}
	}
}

func names(i int) string { return string(rune('a' + i)) }
