// Package ground reduces the fixpoint conditions of Section 2 of the
// paper to propositional logic.
//
// For a program π and database D with universe A, a state S̄ is a
// fixpoint of (π, D) iff Θ(S̄) = S̄, which unfolds to one biconditional
// per ground IDB atom a:
//
//	a  ↔  ∨ { body(ρ) : ground instances ρ of rules with head a }
//
// where EDB literals and =/≠ constraints inside body(ρ) are evaluated
// away at grounding time.  The models of this completion are exactly
// the fixpoints of (π, D); satisfiability is the NP search of
// Theorem 1, model uniqueness the US question of Theorem 2, and model
// enumeration + intersection the least-fixpoint criterion of
// Theorem 3.
//
// The encoding factorizes rule bodies by connected components of the
// variables not bound by the head: for the paper's toggle rule
// T(z) ← ¬Q(ū), ¬T(w̄) the naive grounding has |A|^{1+|ū|+|w̄|}
// instances, while the factorized completion is
// T(z) ↔ (∨_ū ¬Q(ū)) ∧ (∨_w̄ ¬T(w̄)) — linear, and shared across all z
// by selector memoization.
package ground

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/cnf"
	"repro/internal/engine"
	"repro/internal/relation"
)

// Atom is a ground IDB atom.
type Atom struct {
	Pred  string
	Tuple relation.Tuple
}

// Format renders the atom with constant names from u.
func (a Atom) Format(u *relation.Universe) string {
	if len(a.Tuple) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Tuple))
	for i, v := range a.Tuple {
		parts[i] = u.Name(v)
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

func atomKey(pred string, t relation.Tuple) string { return pred + "/" + t.Key() }

// Options tunes the grounding.
type Options struct {
	// MaxAtoms bounds the number of ground IDB atoms (CNF variables
	// before Tseitin auxiliaries); Complete fails beyond it.  Zero
	// means the default of 200000.
	MaxAtoms int
}

// Completion is the propositional encoding of the fixpoint condition
// of (π, D).
type Completion struct {
	Inst    *engine.Instance
	Formula *cnf.Formula

	atoms   []Atom         // atoms[i] ↔ CNF variable i+1
	varOf   map[string]int // atomKey -> variable
	builder *cnf.Builder
}

// NumAtoms returns the number of ground IDB atoms.
func (c *Completion) NumAtoms() int { return len(c.atoms) }

// AtomVars returns the CNF variables of the ground atoms: 1..NumAtoms.
func (c *Completion) AtomVars() []int {
	out := make([]int, len(c.atoms))
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// AtomOf returns the ground atom of a CNF variable (1-based, must be an
// atom variable).
func (c *Completion) AtomOf(v int) Atom { return c.atoms[v-1] }

// VarOf returns the CNF variable of a ground atom, if it exists.
func (c *Completion) VarOf(pred string, t relation.Tuple) (int, bool) {
	v, ok := c.varOf[atomKey(pred, t)]
	return v, ok
}

// StateOf converts a model (indexed by CNF variable) into the engine
// state it denotes.
func (c *Completion) StateOf(model map[int]bool) engine.State {
	s := c.Inst.NewState()
	for i, a := range c.atoms {
		if model[i+1] {
			s[a.Pred].Add(a.Tuple)
		}
	}
	return s
}

// StateOfSlice is StateOf for slice-shaped models (sat.Solver.Model).
func (c *Completion) StateOfSlice(model []bool) engine.State {
	s := c.Inst.NewState()
	for i, a := range c.atoms {
		if model[i+1] {
			s[a.Pred].Add(a.Tuple)
		}
	}
	return s
}

// --- grounding ----------------------------------------------------------

// gslot is a compiled term: constant id or rule-variable index.
type gslot struct {
	isConst bool
	val     int
}

// glit is a compiled body literal.
type glit struct {
	kind  ast.LitKind
	pred  string // for atoms
	idb   bool
	slots []gslot // for atoms
	left  gslot   // for =/≠
	right gslot
}

func (l glit) vars() []int {
	var out []int
	add := func(s gslot) {
		if !s.isConst {
			out = append(out, s.val)
		}
	}
	switch l.kind {
	case ast.LitPos, ast.LitNeg:
		for _, s := range l.slots {
			add(s)
		}
	default:
		add(l.left)
		add(l.right)
	}
	return out
}

// grounder carries the state of one Complete call.
type grounder struct {
	in      *engine.Instance
	b       *cnf.Builder
	n       int // universe size
	varOf   map[string]int
	atoms   []Atom
	andMemo map[string]int
	orMemo  map[string]int
	// disjuncts[v] collects the completed bodies of atom variable v.
	disjuncts map[int][]disjunct
	forced    map[int]bool // atoms with an unconditionally true body
}

// disjunct is one completed rule body: a conjunction of CNF literals.
type disjunct struct{ lits []int }

// Complete grounds the program against the database and returns the
// propositional completion.
func Complete(in *engine.Instance, opt Options) (*Completion, error) {
	maxAtoms := opt.MaxAtoms
	if maxAtoms == 0 {
		maxAtoms = 200000
	}
	g := &grounder{
		in:        in,
		b:         cnf.NewBuilder(),
		n:         in.Universe().Size(),
		varOf:     make(map[string]int),
		andMemo:   make(map[string]int),
		orMemo:    make(map[string]int),
		disjuncts: make(map[int][]disjunct),
		forced:    make(map[int]bool),
	}

	// Allocate one variable per ground IDB atom, predicates sorted,
	// tuples in lexicographic order, so variables 1..N are atom vars.
	total := 0
	for _, pred := range in.IDBPreds() {
		k := in.Arity(pred)
		count := 1
		for i := 0; i < k; i++ {
			count *= g.n
			if count > maxAtoms {
				return nil, fmt.Errorf("ground: %s/%d yields more than %d ground atoms", pred, k, maxAtoms)
			}
		}
		total += count
		if total > maxAtoms {
			return nil, fmt.Errorf("ground: more than %d ground atoms", maxAtoms)
		}
	}
	for _, pred := range in.IDBPreds() {
		k := in.Arity(pred)
		for _, t := range relation.Full(k, g.n).Tuples() {
			v := g.b.NewVar()
			g.varOf[atomKey(pred, t)] = v
			g.atoms = append(g.atoms, Atom{Pred: pred, Tuple: t})
		}
	}

	// Ground every rule.
	for _, r := range in.Program().Rules {
		if err := g.groundRule(r); err != nil {
			return nil, err
		}
	}

	// Emit the completion constraints.
	for v := 1; v <= len(g.atoms); v++ {
		if g.forced[v] {
			g.b.Unit(v)
			continue
		}
		ds := g.disjuncts[v]
		sels := make([]int, 0, len(ds))
		for _, d := range ds {
			if len(d.lits) == 1 {
				sels = append(sels, d.lits[0])
				continue
			}
			sel, ok := g.memoAnd(d.lits)
			if ok {
				sels = append(sels, sel)
			}
		}
		g.b.IffOr(v, sels...)
	}

	return &Completion{
		Inst:    in,
		Formula: g.builderFormula(),
		atoms:   g.atoms,
		varOf:   g.varOf,
		builder: g.b,
	}, nil
}

func (g *grounder) builderFormula() *cnf.Formula { return g.b.Formula() }

// compileRule translates an AST rule into gslots.
func (g *grounder) compileRule(r ast.Rule) (head []gslot, lits []glit, nvars int, headVars []int) {
	vars := r.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	mk := func(t ast.Term) gslot {
		if t.IsVar() {
			return gslot{val: idx[t.Name]}
		}
		id := g.in.Universe().Intern(t.Name)
		return gslot{isConst: true, val: id}
	}
	mks := func(a ast.Atom) []gslot {
		out := make([]gslot, len(a.Args))
		for i, t := range a.Args {
			out[i] = mk(t)
		}
		return out
	}
	head = mks(r.Head)
	for _, l := range r.Body {
		gl := glit{kind: l.Kind}
		switch l.Kind {
		case ast.LitPos, ast.LitNeg:
			gl.pred = l.Atom.Pred
			gl.idb = g.in.IDB(l.Atom.Pred)
			gl.slots = mks(l.Atom)
		default:
			gl.left = mk(l.Left)
			gl.right = mk(l.Right)
		}
		lits = append(lits, gl)
	}
	seen := make(map[int]bool)
	for _, s := range head {
		if !s.isConst && !seen[s.val] {
			seen[s.val] = true
			headVars = append(headVars, s.val)
		}
	}
	sort.Ints(headVars)
	return head, lits, len(vars), headVars
}

// groundRule enumerates the head assignments of one rule and registers
// the factorized disjuncts.
func (g *grounder) groundRule(r ast.Rule) error {
	head, lits, nvars, headVars := g.compileRule(r)
	binding := make([]int, nvars)
	for i := range binding {
		binding[i] = -1
	}

	var rec func(i int) error
	rec = func(i int) error {
		if i == len(headVars) {
			return g.groundWithHead(r, head, lits, binding)
		}
		for v := 0; v < g.n; v++ {
			binding[headVars[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		binding[headVars[i]] = -1
		return nil
	}
	if g.n == 0 && len(headVars) > 0 {
		return nil // empty universe: no ground atoms
	}
	return rec(0)
}

// groundWithHead processes one head assignment: evaluates bound
// literals, factorizes the free ones into variable-connected
// components, and registers the resulting disjunct.
func (g *grounder) groundWithHead(r ast.Rule, head []gslot, lits []glit, binding []int) error {
	// Head tuple and variable.
	ht := make(relation.Tuple, len(head))
	for i, s := range head {
		if s.isConst {
			ht[i] = s.val
		} else {
			ht[i] = binding[s.val]
		}
	}
	hv, ok := g.varOf[atomKey(r.Head.Pred, ht)]
	if !ok {
		return fmt.Errorf("ground: missing atom variable for %s%v", r.Head.Pred, ht)
	}
	if g.forced[hv] {
		return nil // already unconditionally true
	}

	var direct []int // literals fully bound by the head
	free := make([]glit, 0, len(lits))
	for _, l := range lits {
		unbound := false
		for _, v := range l.vars() {
			if binding[v] < 0 {
				unbound = true
				break
			}
		}
		if unbound {
			free = append(free, l)
			continue
		}
		lit, verdict := g.evalBound(l, binding)
		switch verdict {
		case verdictFalse:
			return nil // this head assignment derives nothing via r
		case verdictLit:
			direct = append(direct, lit)
		}
	}

	// Partition free literals into components connected by shared
	// unbound variables.
	comps := components(free, binding)
	sels := make([]int, 0, len(comps))
	for _, comp := range comps {
		sel, verdict := g.componentSelector(comp, binding)
		switch verdict {
		case verdictFalse:
			return nil
		case verdictLit:
			sels = append(sels, sel)
		}
	}

	all := append(append([]int{}, direct...), sels...)
	norm, verdict := normalizeConj(all)
	switch verdict {
	case verdictFalse:
		return nil
	case verdictTrue:
		g.forced[hv] = true
		delete(g.disjuncts, hv)
		return nil
	}
	g.disjuncts[hv] = append(g.disjuncts[hv], disjunct{lits: norm})
	return nil
}

// verdicts for partial evaluation.
type verdict int

const (
	verdictTrue  verdict = iota // literal/conjunction is satisfied
	verdictFalse                // cannot be satisfied
	verdictLit                  // reduces to CNF literal(s)
)

// evalBound evaluates a fully bound literal: EDB and =/≠ literals
// reduce to true/false, IDB literals to a CNF literal.
func (g *grounder) evalBound(l glit, binding []int) (int, verdict) {
	val := func(s gslot) int {
		if s.isConst {
			return s.val
		}
		return binding[s.val]
	}
	switch l.kind {
	case ast.LitEq, ast.LitNeq:
		eq := val(l.left) == val(l.right)
		if eq != (l.kind == ast.LitNeq) {
			return 0, verdictTrue
		}
		return 0, verdictFalse
	default:
		t := make(relation.Tuple, len(l.slots))
		for i, s := range l.slots {
			t[i] = val(s)
		}
		if l.idb {
			v := g.varOf[atomKey(l.pred, t)]
			if l.kind == ast.LitNeg {
				return -v, verdictLit
			}
			return v, verdictLit
		}
		// EDB: consult the database.
		has := false
		if rel := g.in.Database().Relation(l.pred); rel != nil {
			has = rel.Has(t)
		}
		if has != (l.kind == ast.LitNeg) {
			return 0, verdictTrue
		}
		return 0, verdictFalse
	}
}

// components groups free literals by connectivity over unbound
// variables, deterministically (components ordered by first literal).
func components(free []glit, binding []int) [][]glit {
	n := len(free)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byVar := make(map[int]int) // unbound var -> first literal index
	for i, l := range free {
		for _, v := range l.vars() {
			if binding[v] >= 0 {
				continue
			}
			if j, ok := byVar[v]; ok {
				union(i, j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]glit)
	var order []int
	for i, l := range free {
		root := find(i)
		if _, ok := groups[root]; !ok {
			order = append(order, root)
		}
		groups[root] = append(groups[root], l)
	}
	out := make([][]glit, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}

// componentSelector enumerates the assignments of a component's
// unbound variables and returns a selector literal equivalent to
// "some assignment satisfies the component".
func (g *grounder) componentSelector(comp []glit, binding []int) (int, verdict) {
	// Collect the component's unbound variables.
	varSet := make(map[int]bool)
	for _, l := range comp {
		for _, v := range l.vars() {
			if binding[v] < 0 {
				varSet[v] = true
			}
		}
	}
	vars := make([]int, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Ints(vars)

	conjs := make([][]int, 0, 16)
	seen := make(map[string]bool)
	anyTrue := false

	var rec func(i int)
	rec = func(i int) {
		if anyTrue {
			return
		}
		if i == len(vars) {
			var lits []int
			for _, l := range comp {
				lit, v := g.evalBound(l, binding)
				switch v {
				case verdictFalse:
					return
				case verdictLit:
					lits = append(lits, lit)
				}
			}
			norm, v := normalizeConj(lits)
			switch v {
			case verdictFalse:
				return
			case verdictTrue:
				anyTrue = true
				return
			}
			key := conjKey(norm)
			if !seen[key] {
				seen[key] = true
				conjs = append(conjs, norm)
			}
			return
		}
		for val := 0; val < g.n; val++ {
			binding[vars[i]] = val
			rec(i + 1)
			if anyTrue {
				break
			}
		}
		binding[vars[i]] = -1
	}
	rec(0)
	// Restore bindings (rec already resets, but be safe on early exit).
	for _, v := range vars {
		binding[v] = -1
	}

	if anyTrue {
		return 0, verdictTrue
	}
	if len(conjs) == 0 {
		return 0, verdictFalse
	}
	// Build the OR of ANDs, memoized.
	disj := make([]int, 0, len(conjs))
	for _, conj := range conjs {
		if len(conj) == 1 {
			disj = append(disj, conj[0])
			continue
		}
		sel, ok := g.memoAnd(conj)
		if ok {
			disj = append(disj, sel)
		}
	}
	sort.Ints(disj)
	disj = dedupeSorted(disj)
	if tautology(disj) {
		return 0, verdictTrue
	}
	if len(disj) == 1 {
		return disj[0], verdictLit
	}
	return g.memoOr(disj), verdictLit
}

// normalizeConj sorts, dedupes, and checks a conjunction of literals.
func normalizeConj(lits []int) ([]int, verdict) {
	if len(lits) == 0 {
		return nil, verdictTrue
	}
	sorted := append([]int{}, lits...)
	sort.Ints(sorted)
	sorted = dedupeSorted(sorted)
	if tautology(sorted) { // l and ¬l in a conjunction: contradiction
		return nil, verdictFalse
	}
	return sorted, verdictLit
}

func dedupeSorted(lits []int) []int {
	out := lits[:0]
	for i, l := range lits {
		if i == 0 || l != lits[i-1] {
			out = append(out, l)
		}
	}
	return out
}

// tautology reports whether a sorted literal list contains both l and
// -l.
func tautology(sorted []int) bool {
	set := make(map[int]bool, len(sorted))
	for _, l := range sorted {
		if set[-l] {
			return true
		}
		set[l] = true
	}
	return false
}

func conjKey(lits []int) string {
	var sb strings.Builder
	for _, l := range lits {
		sb.WriteString(strconv.Itoa(l))
		sb.WriteByte(',')
	}
	return sb.String()
}

// memoAnd returns a selector variable for the conjunction (sorted,
// deduped, non-contradictory); ok=false means the conjunction was
// empty.
func (g *grounder) memoAnd(lits []int) (int, bool) {
	if len(lits) == 0 {
		return 0, false
	}
	if len(lits) == 1 {
		return lits[0], true
	}
	key := "A" + conjKey(lits)
	if v, ok := g.andMemo[key]; ok {
		return v, true
	}
	v := g.b.AndN(lits...)
	g.andMemo[key] = v
	return v, true
}

// memoOr returns a selector variable for the disjunction (sorted,
// deduped, non-tautological, len ≥ 2).
func (g *grounder) memoOr(lits []int) int {
	key := "O" + conjKey(lits)
	if v, ok := g.orMemo[key]; ok {
		return v
	}
	v := g.b.OrN(lits...)
	g.orMemo[key] = v
	return v
}
