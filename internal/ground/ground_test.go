package ground

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/sat"
)

func chainDB(n int) *relation.Database {
	db := relation.NewDatabase()
	for i := 1; i < n; i++ {
		db.AddFact("E", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	db.AddConstant(fmt.Sprint(n))
	return db
}

func TestCompletionVariablesCoverAtomSpace(t *testing.T) {
	in := engine.MustNew(parser.MustProgram("T(X) :- E(Y,X), !T(Y)."), chainDB(3))
	comp, err := Complete(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumAtoms() != 3 {
		t.Fatalf("NumAtoms = %d, want 3", comp.NumAtoms())
	}
	for v := 1; v <= 3; v++ {
		a := comp.AtomOf(v)
		if a.Pred != "T" || len(a.Tuple) != 1 {
			t.Errorf("atom %d = %+v", v, a)
		}
		back, ok := comp.VarOf(a.Pred, a.Tuple)
		if !ok || back != v {
			t.Errorf("VarOf round trip: %d -> %d", v, back)
		}
	}
	if got := comp.AtomVars(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("AtomVars = %v", got)
	}
}

func TestCompletionModelsAreFixpoints(t *testing.T) {
	// Every model of the completion must be a fixpoint and vice versa
	// (checked by direct solve + IsFixpoint here; the exhaustive
	// equivalence is property-tested in package fixpoint).
	in := engine.MustNew(parser.MustProgram("T(X) :- E(Y,X), !T(Y)."), chainDB(4))
	comp, err := Complete(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := sat.FromFormula(comp.Formula)
	if s.Solve() != sat.Sat {
		t.Fatal("completion unsatisfiable on L4")
	}
	st := comp.StateOfSlice(s.Model())
	if !in.IsFixpoint(st) {
		t.Fatalf("model is not a fixpoint: %v", st.Format(in.Universe()))
	}
}

func TestFactorizationKeepsFormulaSmall(t *testing.T) {
	// The toggle rule T(z) ← ¬Q(u), ¬T(w) must ground to O(n) clauses
	// per head atom (factorized), not O(n²).
	src := `
Q(X) :- V(X).
T(Z) :- !Q(U), !T(W).
`
	grow := func(n int) int {
		db := relation.NewDatabase()
		for i := 0; i < n; i++ {
			db.AddFact("V", fmt.Sprint(i))
		}
		in := engine.MustNew(parser.MustProgram(src), db)
		comp, err := Complete(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return len(comp.Formula.Clauses)
	}
	c10, c20 := grow(10), grow(20)
	// Linear factorization: doubling n should roughly double clauses;
	// a quadratic encoding would quadruple.
	if c20 > 3*c10 {
		t.Errorf("clauses grew superlinearly: n=10 → %d, n=20 → %d", c10, c20)
	}
}

func TestForcedAtoms(t *testing.T) {
	// Q(x) ← V(x) makes Q(a) unconditionally true when V(a) holds; the
	// completion must force it.
	src := "Q(X) :- V(X)."
	db := relation.NewDatabase()
	db.AddFact("V", "a")
	db.AddConstant("b")
	in := engine.MustNew(parser.MustProgram(src), db)
	comp, err := Complete(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := sat.FromFormula(comp.Formula)
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	st := comp.StateOfSlice(s.Model())
	aID, _ := db.Universe().Lookup("a")
	bID, _ := db.Universe().Lookup("b")
	if !st["Q"].Has(relation.Tuple{aID}) {
		t.Error("Q(a) not forced true")
	}
	if st["Q"].Has(relation.Tuple{bID}) {
		t.Error("Q(b) true; completion must force it false")
	}
	// And it must be the unique model over atom vars.
	count, exact := s.CountProjected(comp.AtomVars(), 0)
	// One model was already consumed implicitly? CountProjected
	// restarts enumeration on the same solver: the first Solve above
	// did not add a blocking clause, so the count is still exact.
	if !exact || count != 1 {
		t.Errorf("count=%d exact=%v, want unique", count, exact)
	}
}

func TestConstantsInHeads(t *testing.T) {
	// G(z1, 1, z2) over domain {0,1}: fixpoints must set exactly the
	// tuples with middle component 1.
	src := `G(Z1, 1, Z2) :- D(Z1), D(Z2).`
	db := relation.NewDatabase()
	db.AddFact("D", "0")
	db.AddFact("D", "1")
	in := engine.MustNew(parser.MustProgram(src), db)
	comp, err := Complete(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := sat.FromFormula(comp.Formula)
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	st := comp.StateOfSlice(s.Model())
	if st["G"].Len() != 4 {
		t.Errorf("|G| = %d, want 4", st["G"].Len())
	}
	one, _ := db.Universe().Lookup("1")
	st["G"].Each(func(tu relation.Tuple) bool {
		if tu[1] != one {
			t.Errorf("unexpected tuple %v", tu)
		}
		return true
	})
}

func TestEqNeqEvaluatedAway(t *testing.T) {
	src := `P(X) :- V(X), X != bad.`
	db := relation.NewDatabase()
	db.AddFact("V", "a")
	db.AddFact("V", "bad")
	in := engine.MustNew(parser.MustProgram(src), db)
	comp, err := Complete(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := sat.FromFormula(comp.Formula)
	if s.Solve() != sat.Sat {
		t.Fatal("unsat")
	}
	st := comp.StateOfSlice(s.Model())
	if st["P"].Len() != 1 {
		t.Errorf("|P| = %d, want 1", st["P"].Len())
	}
}

func TestMaxAtomsRespected(t *testing.T) {
	src := "S(X,Y) :- E(X,Y)."
	in := engine.MustNew(parser.MustProgram(src), chainDB(10))
	if _, err := Complete(in, Options{MaxAtoms: 50}); err == nil {
		t.Error("expected MaxAtoms error (100 atoms > 50)")
	}
	if _, err := Complete(in, Options{MaxAtoms: 100}); err != nil {
		t.Errorf("100 atoms should fit exactly: %v", err)
	}
}

func TestAtomFormat(t *testing.T) {
	db := relation.NewDatabase()
	db.AddFact("E", "a", "b")
	in := engine.MustNew(parser.MustProgram("S(X,Y) :- E(X,Y)."), db)
	comp, err := Complete(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := comp.AtomOf(1)
	if got := a.Format(db.Universe()); got != "S(a,a)" {
		t.Errorf("Format = %q", got)
	}
}

func TestEmptyUniverseCompletion(t *testing.T) {
	db := relation.NewDatabase()
	in := engine.MustNew(parser.MustProgram("T(Z) :- !T(W)."), db)
	comp, err := Complete(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumAtoms() != 0 {
		t.Errorf("NumAtoms = %d", comp.NumAtoms())
	}
	st, _ := sat.SolveFormula(comp.Formula)
	if st != sat.Sat {
		t.Error("empty completion should be SAT (∅ is the fixpoint)")
	}
}
