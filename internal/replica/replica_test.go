// replica_test.go — in-process leader/follower pairs over httptest:
// bootstrap, tail, bit-exact convergence, incremental restart, and
// promotion, all under the race detector in CI.
package replica_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/replica"
	"repro/internal/server"
)

const tcSrc = "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."

// dump renders every relation of a snapshot, sorted, for bit-exact
// comparison.
func dump(snap *incr.Snapshot) string {
	names := make([]string, 0, len(snap.Rels))
	for name := range snap.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		rel := snap.Rels[name]
		rows := make([]string, 0, rel.Len())
		for _, t := range rel.Tuples() {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = snap.Universe.Name(v)
			}
			rows = append(rows, strings.Join(parts, ","))
		}
		sort.Strings(rows)
		fmt.Fprintf(&b, "%s: %s\n", name, strings.Join(rows, " "))
	}
	return b.String()
}

func newLeader(t *testing.T, dir string) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.NewWith(parser.MustProgram(tcSrc), graphs.Path(4).Database(), core.LFP, server.Config{
		DataDir: dir, Fsync: durable.FsyncOff, CheckpointBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, ts
}

func followerConfig(leaderURL, dir string) replica.Config {
	return replica.Config{
		Leader:    leaderURL,
		DataDir:   dir,
		Program:   server.ProgramIdentity(parser.MustProgram(tcSrc)),
		Semantics: core.LFP.String(),
		PollWait:  time.Second,
	}
}

func newFollower(t *testing.T, leaderURL, dir string) (*server.Server, *replica.Follower, bool) {
	t.Helper()
	cfg := followerConfig(leaderURL, dir)
	fresh, err := replica.Bootstrap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fsrv, err := server.NewWith(parser.MustProgram(tcSrc), relation.NewDatabase(), core.LFP, server.Config{
		DataDir: dir, Fsync: durable.FsyncOff, ReadOnly: true, LeaderAddr: leaderURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := replica.New(cfg, func(ins, del []incr.Fact) error {
		_, _, err := fsrv.Update(ins, del)
		return err
	})
	if err != nil {
		fsrv.Close()
		t.Fatal(err)
	}
	if fresh {
		f.MarkBootstrapped()
	}
	return fsrv, f, fresh
}

// waitApplied blocks until the follower has applied n records (or the
// timeout trips).
func waitApplied(t *testing.T, f *replica.Follower, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m := f.Metrics()
		if m.AppliedRecords >= n && m.LagRecords == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to %d records: %+v", n, f.Metrics())
}

func TestLeaderFollowerConverges(t *testing.T) {
	leader, ts := newLeader(t, t.TempDir())
	defer leader.Close()
	defer ts.Close()

	fdir := t.TempDir()
	fsrv, f, fresh := newFollower(t, ts.URL, fdir)
	defer fsrv.Close()
	if !fresh {
		t.Fatal("first boot did not bootstrap")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	ins := func(a, b string) []incr.Fact { return []incr.Fact{{Pred: "E", Args: []string{a, b}}} }
	var applied int64
	for i := 0; i < 6; i++ {
		if _, _, err := leader.Update(ins("v0", fmt.Sprintf("w%d", i)), nil); err != nil {
			t.Fatal(err)
		}
		applied++
	}
	if _, _, err := leader.Update(nil, ins("v0", "w3")); err != nil {
		t.Fatal(err)
	}
	applied++
	waitApplied(t, f, applied)

	if got, want := dump(fsrv.Snapshot()), dump(leader.Snapshot()); got != want {
		t.Fatalf("follower state:\n%s\nleader state:\n%s", got, want)
	}

	// Promotion: the loop stops cleanly, then writes open.
	fsrv.SetReplicaHooks(f.Metrics, func() {
		cancel()
		<-done
	})
	fsrv.Promote()
	if fsrv.ReadOnly() {
		t.Fatal("follower still read-only after Promote")
	}
	if _, _, _, err := fsrv.EnqueueUpdate(ins("p", "q"), nil); err != nil {
		t.Fatalf("promoted follower rejected an update: %v", err)
	}
}

func TestFollowerRestartsIncrementally(t *testing.T) {
	leader, ts := newLeader(t, t.TempDir())
	defer leader.Close()
	defer ts.Close()

	fdir := t.TempDir()
	fsrv, f, _ := newFollower(t, ts.URL, fdir)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	ins := func(a, b string) []incr.Fact { return []incr.Fact{{Pred: "E", Args: []string{a, b}}} }
	for i := 0; i < 3; i++ {
		if _, _, err := leader.Update(ins("v0", fmt.Sprintf("x%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	waitApplied(t, f, 3)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	fsrv.Close()

	// More leader traffic while the follower is down.
	for i := 3; i < 6; i++ {
		if _, _, err := leader.Update(ins("v0", fmt.Sprintf("x%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: no re-bootstrap, incremental catch-up from the cursor.
	fsrv2, f2, fresh := newFollower(t, ts.URL, fdir)
	defer fsrv2.Close()
	if fresh {
		t.Fatal("restart re-bootstrapped instead of resuming from the cursor")
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	done2 := make(chan error, 1)
	go func() { done2 <- f2.Run(ctx2) }()
	waitApplied(t, f2, 3) // 3 new records past the persisted cursor
	if got, want := dump(fsrv2.Snapshot()), dump(leader.Snapshot()); got != want {
		t.Fatalf("follower after restart:\n%s\nleader:\n%s", got, want)
	}
}

func TestFollowerSemanticsMismatchDiverges(t *testing.T) {
	leader, ts := newLeader(t, t.TempDir())
	defer leader.Close()
	defer ts.Close()

	cfg := followerConfig(ts.URL, t.TempDir())
	cfg.Semantics = core.WellFounded.String()
	if _, err := replica.Bootstrap(cfg); err == nil {
		t.Fatal("bootstrap accepted a leader running different semantics")
	}
}
