// Package replica is the follower side of WAL log-shipping
// replication: bootstrap from the leader's checkpoint, then tail its
// WAL and apply every committed batch through the local maintainer.
//
// Protocol (leader side in internal/server/replica.go):
//
//	bootstrap  GET /v1/replica/snapshot streams the leader's current
//	           checkpoint; the response headers carry the WAL cursor
//	           to resume from (pinned on the leader so compaction
//	           cannot race the download).  The image is installed as
//	           the local data dir's snapshot.bin, so the follower's
//	           own recovery path — including the program/semantics
//	           version-skew rejection — restores it at boot.
//	tail       GET /v1/replica/wal long-polls checksum-verified frames
//	           past the cursor.  Each batch is applied through the
//	           local maintainer (which logs it to the follower's own
//	           WAL and checkpoints on the usual triggers), then the
//	           cursor file is atomically advanced.  The cursor is
//	           persisted AFTER the apply: a crash between the two
//	           re-applies the overlap, which is idempotent under the
//	           log's last-op-wins set semantics.
//	recover    on restart, local recovery rebuilds everything applied
//	           so far and the tail resumes from the persisted cursor —
//	           incremental catch-up, no re-bootstrap.
//
// Because every semantics is a deterministic fixpoint of the program
// over the EDB, applying the leader's committed EDB batches in order
// reconstructs bit-exact derived state; nothing but the EDB log is
// shipped.
//
// Failure handling: network errors reconnect with jittered backoff;
// 410 compacted (the leader evicted our retention pin) and 409
// diverged (our cursor is past the leader's durable history) are
// terminal for the process — Run returns ErrCompacted/ErrDiverged,
// and the next boot's Bootstrap wipes the data dir and re-bootstraps
// from a fresh snapshot.
package replica

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/incr"
	"repro/internal/server"
)

// cursorFile persists where in the LEADER's WAL the follower has
// applied through, plus the stable follower id used for retention
// pinning.  Lives inside the follower's data dir, next to the state
// it describes.
const cursorFile = "replica.cursor"

// Terminal tail errors: both mean the local history can no longer be
// advanced record-by-record and the process must restart, letting
// Bootstrap wipe the data dir and start over from a fresh snapshot.
var (
	// ErrCompacted reports that the leader no longer retains the WAL
	// segment at our cursor (the bounded-lag policy evicted our pin).
	ErrCompacted = errors.New("replica: leader compacted our cursor; wipe and re-bootstrap")
	// ErrDiverged reports a cursor past the leader's durable history or
	// a program/semantics identity mismatch — the histories split.
	ErrDiverged = errors.New("replica: history diverged from the leader; wipe and re-bootstrap")
)

// Config shapes one follower.
type Config struct {
	// Leader is the leader's base URL (e.g. "http://host:4040").
	Leader string
	// DataDir is the follower's own durable directory: the
	// bootstrapped snapshot, its local WAL, and the cursor file.
	DataDir string
	// ID is the stable follower identity for leader-side retention
	// pinning.  Empty generates one at first bootstrap and persists it
	// in the cursor file.
	ID string
	// Program and Semantics are the local identity (the leader's
	// response headers must match, or the tail stops with ErrDiverged).
	Program   string
	Semantics string
	// Client issues the HTTP requests; nil uses a default client.
	// Per-request timeouts are derived from PollWait.
	Client *http.Client
	// PollWait is the long-poll window requested from the leader.
	// 0 means 20s (the leader caps at 25s).
	PollWait time.Duration
	// MaxBackoff caps the reconnect backoff.  0 means 5s.
	MaxBackoff time.Duration
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.PollWait <= 0 {
		c.PollWait = 20 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// cursorState is the decoded cursor file.
type cursorState struct {
	cur durable.Cursor
	id  string
}

func loadCursor(dir string) (cursorState, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, cursorFile))
	if os.IsNotExist(err) {
		return cursorState{}, false, nil
	}
	if err != nil {
		return cursorState{}, false, err
	}
	var st cursorState
	var ver string
	if _, err := fmt.Sscanf(strings.TrimSpace(string(data)), "%s %d %d %s", &ver, &st.cur.Seq, &st.cur.Off, &st.id); err != nil || ver != "v1" {
		return cursorState{}, false, fmt.Errorf("replica: corrupt cursor file: %q", data)
	}
	return st, true, nil
}

func saveCursor(dir string, st cursorState) error {
	tmp := filepath.Join(dir, cursorFile+".tmp")
	body := fmt.Sprintf("v1 %d %d %s\n", st.cur.Seq, st.cur.Off, st.id)
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, cursorFile))
}

// wipeDataDir removes the replica-managed state so a fresh bootstrap
// starts clean: snapshot, local WAL segments, cursor file.
func wipeDataDir(dir string) error {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if name == "snapshot.bin" || name == "snapshot.tmp" ||
			name == cursorFile || name == cursorFile+".tmp" ||
			(strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkIdentity compares a leader response's program/semantics headers
// against the local identity.
func checkIdentity(cfg *Config, h http.Header) error {
	if p := h.Get(server.HdrReplicaProgram); p != "" && cfg.Program != "" && p != cfg.Program {
		return fmt.Errorf("%w: leader runs a different program", ErrDiverged)
	}
	if sem := h.Get(server.HdrReplicaSemantics); sem != "" && cfg.Semantics != "" && sem != cfg.Semantics {
		return fmt.Errorf("%w: leader runs %s semantics, not %s", ErrDiverged, sem, cfg.Semantics)
	}
	return nil
}

// Bootstrap ensures cfg.DataDir holds a state the leader's WAL can be
// tailed onto: an existing cursor that the leader still serves is kept
// (incremental catch-up across restarts); anything else — no local
// state, an evicted cursor, a diverged history — wipes the dir and
// downloads a fresh snapshot.  Returns whether a fresh bootstrap
// happened.  Call before opening the data dir with server.NewWith.
func Bootstrap(cfg Config) (fresh bool, err error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return false, err
	}
	st, ok, err := loadCursor(cfg.DataDir)
	if err == nil && ok {
		if _, statErr := os.Stat(filepath.Join(cfg.DataDir, "snapshot.bin")); statErr != nil {
			ok = false // half-wiped dir: re-bootstrap
		}
	}
	if err == nil && ok {
		// Probe: does the leader still serve our cursor?
		resp, perr := pollWAL(context.Background(), &cfg, st, 0)
		if perr == nil {
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				if idErr := checkIdentity(&cfg, resp.Header); idErr != nil {
					return false, idErr
				}
				return false, nil // resume incrementally
			case http.StatusGone, http.StatusConflict:
				cfg.Logf("replica: leader no longer serves cursor %v (%d); re-bootstrapping", st.cur, resp.StatusCode)
			default:
				return false, fmt.Errorf("replica: leader probe: unexpected status %d", resp.StatusCode)
			}
		} else {
			return false, fmt.Errorf("replica: leader unreachable during bootstrap probe: %w", perr)
		}
	}

	if err := wipeDataDir(cfg.DataDir); err != nil {
		return false, err
	}
	id := st.id
	if id == "" {
		id = cfg.ID
	}
	if id == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return false, err
		}
		id = "f-" + hex.EncodeToString(b[:])
	}

	u := fmt.Sprintf("%s/v1/replica/snapshot?id=%s", strings.TrimRight(cfg.Leader, "/"), url.QueryEscape(id))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return false, fmt.Errorf("replica: snapshot download: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("replica: snapshot download: status %d", resp.StatusCode)
	}
	if err := checkIdentity(&cfg, resp.Header); err != nil {
		return false, err
	}
	seq, err := strconv.ParseUint(resp.Header.Get(server.HdrReplicaSeq), 10, 64)
	if err != nil {
		return false, fmt.Errorf("replica: bad %s header", server.HdrReplicaSeq)
	}
	off, err := strconv.ParseInt(resp.Header.Get(server.HdrReplicaOff), 10, 64)
	if err != nil {
		return false, fmt.Errorf("replica: bad %s header", server.HdrReplicaOff)
	}

	tmp := filepath.Join(cfg.DataDir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return false, err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		os.Remove(tmp)
		return false, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return false, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return false, err
	}
	if err := os.Rename(tmp, filepath.Join(cfg.DataDir, "snapshot.bin")); err != nil {
		os.Remove(tmp)
		return false, err
	}
	if err := saveCursor(cfg.DataDir, cursorState{cur: durable.Cursor{Seq: seq, Off: off}, id: id}); err != nil {
		return false, err
	}
	cfg.Logf("replica: bootstrapped from %s at cursor %d,%d", cfg.Leader, seq, off)
	return true, nil
}

// pollWAL issues one /v1/replica/wal long-poll.
func pollWAL(ctx context.Context, cfg *Config, st cursorState, wait time.Duration) (*http.Response, error) {
	u := fmt.Sprintf("%s/v1/replica/wal?from=%s&id=%s&wait=%d",
		strings.TrimRight(cfg.Leader, "/"), url.QueryEscape(st.cur.String()),
		url.QueryEscape(st.id), int(wait/time.Second))
	rctx, cancel := context.WithTimeout(ctx, wait+15*time.Second)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The cancel travels with the body: callers just Close it.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// Metrics is the follower loop's telemetry, rendered into the
// /v1/metrics replica block via Follower.Metrics.
type Metrics struct {
	appliedSeq     atomic.Uint64
	appliedOff     atomic.Int64
	appliedRecords atomic.Int64
	appliedBytes   atomic.Int64
	lagRecords     atomic.Int64
	lagBytes       atomic.Int64
	lastCaughtUp   atomic.Int64 // unix nanos of the last lag==0 poll
	reconnects     atomic.Int64
	bootstraps     atomic.Int64
}

// Follower tails the leader's WAL and applies each batch locally.
type Follower struct {
	cfg   Config
	st    cursorState
	apply func(ins, del []incr.Fact) error
	met   Metrics
}

// New builds a follower over a bootstrapped data dir.  apply is called
// for every shipped batch, in leader commit order, from a single
// goroutine (typically (*server.Server).Update, which also logs the
// batch to the follower's own WAL).
func New(cfg Config, apply func(ins, del []incr.Fact) error) (*Follower, error) {
	cfg = cfg.withDefaults()
	st, ok, err := loadCursor(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("replica: %s has no cursor file; run Bootstrap first", cfg.DataDir)
	}
	f := &Follower{cfg: cfg, st: st, apply: apply}
	f.met.appliedSeq.Store(st.cur.Seq)
	f.met.appliedOff.Store(st.cur.Off)
	f.met.lastCaughtUp.Store(time.Now().UnixNano())
	return f, nil
}

// MarkBootstrapped records that this process performed a fresh
// bootstrap (Bootstrap returned fresh=true).
func (f *Follower) MarkBootstrapped() { f.met.bootstraps.Add(1) }

// Metrics renders the current replica telemetry.
func (f *Follower) Metrics() *server.ReplicaMetrics {
	m := &server.ReplicaMetrics{
		Leader:         f.cfg.Leader,
		AppliedSeq:     f.met.appliedSeq.Load(),
		AppliedOffset:  f.met.appliedOff.Load(),
		AppliedRecords: f.met.appliedRecords.Load(),
		AppliedBytes:   f.met.appliedBytes.Load(),
		LagRecords:     f.met.lagRecords.Load(),
		LagBytes:       f.met.lagBytes.Load(),
		Reconnects:     f.met.reconnects.Load(),
		Bootstraps:     f.met.bootstraps.Load(),
	}
	if m.LagRecords > 0 {
		m.LagMs = float64(time.Now().UnixNano()-f.met.lastCaughtUp.Load()) / float64(time.Millisecond)
	}
	return m
}

// Run tails the leader until ctx is cancelled (clean stop, e.g.
// promotion — returns nil) or a terminal condition: ErrCompacted,
// ErrDiverged, or a local apply failure.  Network errors reconnect
// with jittered exponential backoff.
func (f *Follower) Run(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return nil
		}
		resp, err := pollWAL(ctx, &f.cfg, f.st, f.cfg.PollWait)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			f.met.reconnects.Add(1)
			f.cfg.Logf("replica: leader poll failed (%v); retrying in %v", err, backoff)
			select {
			case <-time.After(backoff + time.Duration(mrand.Int63n(int64(backoff/2)+1))):
			case <-ctx.Done():
				return nil
			}
			backoff = time.Duration(math.Min(float64(backoff)*2, float64(f.cfg.MaxBackoff)))
			continue
		}
		err = f.handlePoll(resp)
		resp.Body.Close()
		if err != nil {
			if errors.Is(err, errRetry) {
				f.met.reconnects.Add(1)
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return nil
				}
				backoff = time.Duration(math.Min(float64(backoff)*2, float64(f.cfg.MaxBackoff)))
				continue
			}
			return err
		}
		backoff = 100 * time.Millisecond
	}
}

// errRetry marks a poll outcome worth retrying (leader restarting,
// transient 5xx).
var errRetry = errors.New("replica: transient leader error")

// handlePoll consumes one poll response: decode, apply, advance.
func (f *Follower) handlePoll(resp *http.Response) error {
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return ErrCompacted
	case http.StatusConflict:
		return ErrDiverged
	default:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%w: status %d", errRetry, resp.StatusCode)
	}
	if err := checkIdentity(&f.cfg, resp.Header); err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("%w: %v", errRetry, err)
	}
	payloads, err := durable.ScanFrames(data)
	if err != nil {
		// A torn body is a transport problem, not a history problem:
		// re-poll from the unchanged cursor.
		return fmt.Errorf("%w: %v", errRetry, err)
	}
	for _, p := range payloads {
		rec, err := durable.DecodeRecord(p)
		if err != nil {
			return fmt.Errorf("%w: %v", errRetry, err)
		}
		if err := f.apply(rec.Ins, rec.Del); err != nil {
			return fmt.Errorf("replica: applying leader batch at %v: %w", f.st.cur, err)
		}
	}
	next := f.st.cur
	if seq, err := strconv.ParseUint(resp.Header.Get(server.HdrReplicaNextSeq), 10, 64); err == nil {
		next.Seq = seq
	}
	if off, err := strconv.ParseInt(resp.Header.Get(server.HdrReplicaNextOff), 10, 64); err == nil {
		next.Off = off
	}
	if next != f.st.cur {
		f.st.cur = next
		if err := saveCursor(f.cfg.DataDir, f.st); err != nil {
			return fmt.Errorf("replica: persisting cursor: %w", err)
		}
	}
	f.met.appliedSeq.Store(next.Seq)
	f.met.appliedOff.Store(next.Off)
	f.met.appliedRecords.Add(int64(len(payloads)))
	f.met.appliedBytes.Add(int64(len(data)))
	lagRecs, _ := strconv.ParseInt(resp.Header.Get(server.HdrReplicaLagRecords), 10, 64)
	lagBytes, _ := strconv.ParseInt(resp.Header.Get(server.HdrReplicaLagBytes), 10, 64)
	f.met.lagRecords.Store(lagRecs)
	f.met.lagBytes.Store(lagBytes)
	if lagRecs == 0 {
		f.met.lastCaughtUp.Store(time.Now().UnixNano())
	}
	return nil
}
