package core

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/semantics"
)

const tcSrc = `
S(X,Y) :- E(X,Y).
S(X,Y) :- E(X,Z), S(Z,Y).
`

func TestEvalAllSemanticsOnPositive(t *testing.T) {
	db := parser.MustFacts("e(a,b). e(b,c).")
	prog := parser.MustProgram(`
s(X,Y) :- e(X,Y).
s(X,Y) :- e(X,Z), s(Z,Y).
`)
	var states []string
	for _, sem := range []Semantics{Inflationary, LFP, Stratified, WellFounded} {
		res, err := Eval(prog, db, sem, semantics.SemiNaive)
		if err != nil {
			t.Fatalf("%v: %v", sem, err)
		}
		if res.State["s"].Len() != 3 {
			t.Errorf("%v: |s| = %d, want 3", sem, res.State["s"].Len())
		}
		states = append(states, res.State.Format(res.Universe))
	}
	for i := 1; i < len(states); i++ {
		if states[i] != states[0] {
			t.Errorf("semantics %d disagrees on a positive program", i)
		}
	}
}

func TestEvalDoesNotMutateDB(t *testing.T) {
	db := parser.MustFacts("e(a,b).")
	before := db.Universe().Size()
	prog := parser.MustProgram("p(fresh_const) :- e(X,Y).")
	if _, err := Eval(prog, db, Inflationary, semantics.SemiNaive); err != nil {
		t.Fatal(err)
	}
	if db.Universe().Size() != before {
		t.Error("Eval interned program constants into the caller's database")
	}
}

func TestEvalErrors(t *testing.T) {
	db := parser.MustFacts("e(a,b).")
	general := parser.MustProgram("t(X) :- e(Y,X), !t(Y).")
	if _, err := Eval(general, db, LFP, semantics.SemiNaive); err == nil {
		t.Error("LFP accepted a general program")
	}
	if _, err := Eval(general, db, Stratified, semantics.SemiNaive); err == nil {
		t.Error("Stratified accepted an unstratifiable program")
	}
	if _, err := Eval(general, db, Inflationary, semantics.SemiNaive); err != nil {
		t.Errorf("Inflationary rejected a program: %v", err)
	}
	if _, err := Eval(general, db, WellFounded, semantics.SemiNaive); err != nil {
		t.Errorf("WellFounded rejected a program: %v", err)
	}
}

func TestCarrier(t *testing.T) {
	db := parser.MustFacts("e(a,b).")
	prog := parser.MustProgram("s(X,Y) :- e(X,Y).")
	res, err := Eval(prog, db, Inflationary, semantics.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := res.Carrier(prog)
	if err != nil || rel.Len() != 1 {
		t.Errorf("carrier: %v, len %v", err, rel)
	}

	multi := parser.MustProgram("s(X) :- e(X,Y). t(X) :- e(Y,X).")
	res2, err := Eval(multi, db, Inflationary, semantics.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.Carrier(multi); err == nil {
		t.Error("ambiguous carrier not rejected")
	}
	multi.Carrier = "t"
	if _, err := res2.Carrier(multi); err != nil {
		t.Errorf("explicit carrier rejected: %v", err)
	}
}

func TestAnalyzePi1(t *testing.T) {
	db := parser.MustFacts("e(v1,v2). e(v2,v3). e(v3,v4). e(v4,v1).") // C4
	prog := parser.MustProgram("t(X) :- e(Y,X), !t(Y).")
	rep, err := Analyze(prog, db, AnalyzeOptions{WithLeast: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exists || !rep.CountExact || rep.Count != 2 || rep.Unique {
		t.Errorf("report = %+v", rep)
	}
	if rep.Least == nil || rep.Least.Exists {
		t.Error("C4 should have no least fixpoint")
	}
	if rep.Class.String() != "general" {
		t.Errorf("class = %v", rep.Class)
	}
}

func TestAnalyzeDoesNotMutateDB(t *testing.T) {
	db := parser.MustFacts("e(a,b).")
	before := db.String()
	prog := parser.MustProgram(tcSrc)
	if _, err := Analyze(prog, db, AnalyzeOptions{}); err != nil {
		t.Fatal(err)
	}
	if db.String() != before {
		t.Error("Analyze mutated the database")
	}
}

func TestParseSemantics(t *testing.T) {
	for name, want := range map[string]Semantics{
		"inflationary": Inflationary, "inf": Inflationary,
		"lfp": LFP, "least": LFP,
		"stratified": Stratified, "strat": Stratified,
		"wellfounded": WellFounded, "wf": WellFounded,
	} {
		got, err := ParseSemantics(name)
		if err != nil || got != want {
			t.Errorf("ParseSemantics(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseSemantics("bogus"); err == nil {
		t.Error("bogus semantics accepted")
	}
	for _, s := range []Semantics{Inflationary, LFP, Stratified, WellFounded} {
		if s.String() == "unknown" {
			t.Errorf("missing name for %d", s)
		}
	}
}
