// Package core is the paper-facing API of the reproduction: one entry
// point to evaluate a DATALOG¬ program under any of the four semantics
// the paper discusses, and one to analyze the fixpoint structure of
// (π, D) — existence, count, uniqueness, least fixpoint — realizing
// the decision problems of Theorems 1–3 on concrete inputs.
package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/fixpoint"
	"repro/internal/ground"
	"repro/internal/magic"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// Semantics selects an evaluation semantics.
type Semantics int

// The four semantics.
const (
	// Inflationary is the paper's Section 4 proposal: Θ^∞, total on
	// all DATALOG¬ programs, polynomial-time data complexity.
	Inflationary Semantics = iota
	// LFP is the standard least-fixpoint semantics, defined for
	// positive and semipositive programs.
	LFP
	// Stratified is the Chandra–Harel stratified semantics, defined
	// for stratifiable programs.
	Stratified
	// WellFounded is Van Gelder's three-valued semantics, total on
	// all programs (the modern comparison point).
	WellFounded
)

// String names the semantics.
func (s Semantics) String() string {
	switch s {
	case Inflationary:
		return "inflationary"
	case LFP:
		return "lfp"
	case Stratified:
		return "stratified"
	case WellFounded:
		return "well-founded"
	}
	return "unknown"
}

// ParseSemantics maps a name (as accepted by the CLIs) to a Semantics.
func ParseSemantics(name string) (Semantics, error) {
	switch name {
	case "inflationary", "inf":
		return Inflationary, nil
	case "lfp", "least":
		return LFP, nil
	case "stratified", "strat":
		return Stratified, nil
	case "wellfounded", "well-founded", "wf":
		return WellFounded, nil
	}
	return 0, fmt.Errorf("core: unknown semantics %q (want inflationary|lfp|stratified|wellfounded)", name)
}

// EvalResult is the outcome of Eval.
type EvalResult struct {
	// Semantics echoes the semantics evaluated.
	Semantics Semantics
	// Class is the syntactic class of the program.
	Class ast.Class
	// State holds the computed relations (for WellFounded, the
	// certainly-true part).
	State engine.State
	// Universe names the constants of State's tuples.
	Universe *relation.Universe
	// Stats reports evaluation effort.
	Stats semantics.Stats
	// WF carries the full three-valued result for WellFounded.
	WF *semantics.WFResult
}

// Carrier returns the relation of the program's carrier predicate (or
// the sole IDB relation if unset and unambiguous).
func (r *EvalResult) Carrier(prog *ast.Program) (*relation.Relation, error) {
	name := prog.Carrier
	if name == "" {
		idb := prog.IDBList()
		if len(idb) != 1 {
			return nil, fmt.Errorf("core: program has %d IDB relations and no carrier", len(idb))
		}
		name = idb[0]
	}
	rel, ok := r.State[name]
	if !ok {
		return nil, fmt.Errorf("core: carrier %s not in result", name)
	}
	return rel, nil
}

// Eval evaluates prog on db under the chosen semantics.  The database
// is not modified (evaluation works on a clone, since the engine
// interns program constants into the universe it is given).
func Eval(prog *ast.Program, db *relation.Database, sem Semantics, mode semantics.Mode) (*EvalResult, error) {
	return EvalOpts(prog, db, sem, mode, engine.Options{})
}

// EvalOpts is Eval with per-call engine options (worker-pool size,
// planner, frontier, sharding) applied to every instance the
// evaluation constructs — the options-API replacement for toggling the
// process-wide engine.SetDefault* knobs around a call.
func EvalOpts(prog *ast.Program, db *relation.Database, sem Semantics, mode semantics.Mode, opt engine.Options) (*EvalResult, error) {
	if _, err := prog.Validate(); err != nil {
		return nil, err
	}
	res := &EvalResult{Semantics: sem, Class: prog.Classify()}
	switch sem {
	case Stratified:
		r, err := semantics.StratifiedOpts(prog, db, mode, opt)
		if err != nil {
			return nil, err
		}
		res.State, res.Stats, res.Universe = r.State, r.Stats, r.Universe
	case Inflationary:
		in, err := engine.NewWith(prog, db.Clone(), opt)
		if err != nil {
			return nil, err
		}
		r := semantics.InflationaryMode(in, mode)
		res.State, res.Stats, res.Universe = r.State, r.Stats, r.Universe
	case LFP:
		in, err := engine.NewWith(prog, db.Clone(), opt)
		if err != nil {
			return nil, err
		}
		r, err := semantics.LeastFixpointMode(in, mode)
		if err != nil {
			return nil, err
		}
		res.State, res.Stats, res.Universe = r.State, r.Stats, r.Universe
	case WellFounded:
		in, err := engine.NewWith(prog, db.Clone(), opt)
		if err != nil {
			return nil, err
		}
		wf := semantics.WellFoundedMode(in, mode)
		res.State, res.Stats, res.Universe = wf.True, wf.Stats, in.Universe()
		res.WF = wf
	default:
		return nil, fmt.Errorf("core: unknown semantics %d", sem)
	}
	return res, nil
}

// QueryStrategy reports whether demand-driven point queries are
// available under sem for a program of class c, and if so whether they
// evaluate under the stratified semantics.  Point queries exist for
// LFP and stratified evaluation, and for inflationary evaluation
// exactly where it coincides with LFP (positive and semipositive
// programs); well-founded (and non-coinciding inflationary) programs
// have no magic rewrite.  Every query entry point — the CLI, the
// facade, and the server — dispatches through this one rule.
func QueryStrategy(sem Semantics, c ast.Class) (stratified, ok bool) {
	switch sem {
	case Stratified:
		return true, true
	case LFP:
		return false, true
	case Inflationary:
		return false, c == ast.ClassPositive || c == ast.ClassSemipositive
	}
	return false, false
}

// Query answers a single query atom demand-driven (magic-set
// rewriting; see internal/magic and semantics.QueryLFP/
// QueryStratified) under the chosen semantics.  db is not modified.
func Query(prog *ast.Program, db *relation.Database, q magic.Query, sem Semantics, mode semantics.Mode) (*semantics.QueryResult, error) {
	return QueryOpts(prog, db, q, sem, mode, engine.Options{})
}

// QueryOpts is Query with per-call engine options applied to the
// rewritten program's evaluation.
func QueryOpts(prog *ast.Program, db *relation.Database, q magic.Query, sem Semantics, mode semantics.Mode, opt engine.Options) (*semantics.QueryResult, error) {
	stratified, ok := QueryStrategy(sem, prog.Classify())
	if !ok {
		return nil, fmt.Errorf("core: point queries require lfp, stratified, or coinciding inflationary semantics (program is %v, semantics %v)", prog.Classify(), sem)
	}
	if stratified {
		return semantics.QueryStratifiedOpts(prog, db, q, mode, opt)
	}
	return semantics.QueryLFPOpts(prog, db, q, mode, opt)
}

// QueryFull answers the same query by full materialization plus a
// filter — the oracle the demand-driven path is differential-tested
// and benchmarked against (experiment E16, `datalog -magic=false`).
// Predicates absent from the computed state (extensional, or untouched
// by any rule) fall back to the database relation or an empty one.
func QueryFull(prog *ast.Program, db *relation.Database, q magic.Query, sem Semantics, mode semantics.Mode) (*semantics.QueryResult, error) {
	return QueryFullOpts(prog, db, q, sem, mode, engine.Options{})
}

// QueryFullOpts is QueryFull with per-call engine options.
func QueryFullOpts(prog *ast.Program, db *relation.Database, q magic.Query, sem Semantics, mode semantics.Mode, opt engine.Options) (*semantics.QueryResult, error) {
	full, err := EvalOpts(prog, db, sem, mode, opt)
	if err != nil {
		return nil, err
	}
	rel := full.State[q.Pred]
	if rel == nil {
		if rel = db.Relation(q.Pred); rel == nil {
			rel = relation.New(len(q.Args))
		}
	}
	return &semantics.QueryResult{
		Query:    q,
		Tuples:   semantics.FilterPattern(rel, q, full.Universe),
		Universe: full.Universe,
		Stats:    full.Stats,
	}, nil
}

// AnalyzeOptions configures Analyze.
type AnalyzeOptions struct {
	// CountLimit caps fixpoint counting (0 = count exactly up to the
	// fixpoint package's enumeration cap).
	CountLimit int
	// WithLeast additionally runs the Theorem 3 least-fixpoint
	// criterion (requires exhaustive enumeration; exponential in the
	// worst case).
	WithLeast bool
	// Ground bounds the grounding.
	Ground ground.Options
}

// Report is the outcome of Analyze: the fixpoint structure of (π, D).
type Report struct {
	Class ast.Class
	// Exists and Example: Theorem 1's decision problem.
	Exists  bool
	Example engine.State
	// Count of fixpoints (exact when CountExact).
	Count      int
	CountExact bool
	// Unique: Theorem 2's decision problem (Count == 1).
	Unique bool
	// Least: Theorem 3's analysis, when requested.
	Least *fixpoint.LeastResult
	// Universe names the constants of the states above.
	Universe *relation.Universe
}

// Analyze decides fixpoint existence, count, uniqueness and (on
// request) least-fixpoint existence for (π, D).  The database is not
// modified.
func Analyze(prog *ast.Program, db *relation.Database, opt AnalyzeOptions) (*Report, error) {
	if _, err := prog.Validate(); err != nil {
		return nil, err
	}
	work := db.Clone()
	in, err := engine.New(prog, work)
	if err != nil {
		return nil, err
	}
	fpOpt := fixpoint.Options{Ground: opt.Ground}
	rep := &Report{Class: prog.Classify(), Universe: work.Universe()}

	rep.Exists, rep.Example, err = fixpoint.Exists(in, fpOpt)
	if err != nil {
		return nil, err
	}
	rep.Count, rep.CountExact, err = fixpoint.Count(in, fpOpt, opt.CountLimit)
	if err != nil {
		return nil, err
	}
	rep.Unique = rep.CountExact && rep.Count == 1
	if opt.WithLeast {
		rep.Least, err = fixpoint.Least(in, fpOpt)
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}
