package parser

import (
	"testing"
)

// FuzzParser is the native fuzz target for the program parser: on any
// input the parser must return cleanly (error or program, never a
// panic), and every accepted program must survive a print → parse
// round trip with an identical rendering — the printer and the lexer
// agree on quoting, escaping, and keyword avoidance.
//
// Seed corpus: testdata/fuzz/FuzzParser.
func FuzzParser(f *testing.F) {
	seeds := []string{
		"s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).",
		"T(X) :- E(Y,X), !T(Y).",
		"p(X) :- V(X), X != Y, not q(X, \"a b\").",
		"win(X) <- E(X,Y), not win(Y).",
		"zero. q(1,\"x\\\"y\").",
		"p(X) :- X = a. % comment\n// another\nq(\"\").",
		"s3(X,Y,Xs,Ys) :- E(X,Z), s1(Z,Y), !s2(Xs,Ys).",
		"b(\"not\",\"1abc\",\"\\\\\").",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Program(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := prog.String()
		prog2, err := Program(printed)
		if err != nil {
			t.Fatalf("printed program does not re-parse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if printed2 := prog2.String(); printed2 != printed {
			t.Fatalf("print → parse → print not stable:\nfirst:\n%s\nsecond:\n%s\ninput: %q", printed, printed2, src)
		}
	})
}

// FuzzFacts covers the fact-file path: no panics, and accepted
// databases render back through FormatDatabase into an equal database.
func FuzzFacts(f *testing.F) {
	for _, s := range []string{
		"E(a,b). E(b,c).\nV(a).",
		"zero.\nq(1,\"x y\").",
		"w(\"a\\\"b\", \"\\\\\", \"not\").",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, err := Facts(src)
		if err != nil {
			return
		}
		printed := FormatDatabase(db)
		db2, err := Facts(printed)
		if err != nil {
			t.Fatalf("formatted facts do not re-parse: %v\nprinted:\n%s", err, printed)
		}
		if again := FormatDatabase(db2); again != printed {
			t.Fatalf("format → parse → format not stable:\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}
