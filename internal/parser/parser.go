package parser

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/relation"
)

// parser is a one-token-lookahead recursive-descent parser.
type parser struct {
	lex *lexer
	tok token
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errorf("expected %v, found %v %q", k, p.tok.kind, p.tok.text)
	}
	tok := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return tok, nil
}

// isVariableName reports whether an identifier denotes a variable under
// the Prolog-style convention: upper-case or underscore initial.
func isVariableName(name string) bool {
	if name == "" {
		return false
	}
	c := name[0]
	return c >= 'A' && c <= 'Z' || c == '_'
}

// term parses a single term: identifier, number, or quoted string.
func (p *parser) term() (ast.Term, error) {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		if isVariableName(name) {
			return ast.Var(name), nil
		}
		return ast.Const(name), nil
	case tokNumber, tokString:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.Const(name), nil
	default:
		return ast.Term{}, p.errorf("expected term, found %v %q", p.tok.kind, p.tok.text)
	}
}

// atom parses Pred or Pred(t1,…,tn).
func (p *parser) atom() (ast.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return ast.Atom{}, err
	}
	a := ast.Atom{Pred: name.text}
	if p.tok.kind != tokLParen {
		if isVariableName(name.text) {
			// A bare upper-case identifier cannot be a zero-arity atom:
			// it would be indistinguishable from a variable when
			// re-parsed.  Demand lower-case for zero-arity predicates.
			return ast.Atom{}, &Error{Line: name.line, Col: name.col,
				Msg: fmt.Sprintf("zero-arity predicate %q must start with a lower-case letter", name.text)}
		}
		return a, nil
	}
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	for {
		t, err := p.term()
		if err != nil {
			return ast.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return a, nil
}

// literal parses one body literal: atom, !atom, "not" atom, t = t, or
// t != t.
func (p *parser) literal() (ast.Literal, error) {
	switch p.tok.kind {
	case tokBang, tokNot:
		if err := p.advance(); err != nil {
			return ast.Literal{}, err
		}
		a, err := p.atom()
		if err != nil {
			return ast.Literal{}, err
		}
		return ast.Neg(a), nil
	case tokIdent:
		// An identifier may open an atom (when followed by '('), be a
		// zero-arity atom (lower-case, not followed by =/!=), or be the
		// left side of an =/!= constraint.
		name := p.tok
		if err := p.advance(); err != nil {
			return ast.Literal{}, err
		}
		switch p.tok.kind {
		case tokLParen:
			a := ast.Atom{Pred: name.text}
			if err := p.advance(); err != nil {
				return ast.Literal{}, err
			}
			for {
				t, err := p.term()
				if err != nil {
					return ast.Literal{}, err
				}
				a.Args = append(a.Args, t)
				if p.tok.kind == tokComma {
					if err := p.advance(); err != nil {
						return ast.Literal{}, err
					}
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen); err != nil {
				return ast.Literal{}, err
			}
			return ast.Pos(a), nil
		case tokEq, tokNeq:
			if isVariableName(name.text) {
				return p.eqTail(ast.Var(name.text))
			}
			return p.eqTail(ast.Const(name.text))
		default:
			if isVariableName(name.text) {
				return ast.Literal{}, &Error{Line: name.line, Col: name.col,
					Msg: fmt.Sprintf("bare variable %q is not a literal", name.text)}
			}
			return ast.Pos(ast.Atom{Pred: name.text}), nil
		}
	case tokNumber, tokString:
		left, err := p.term()
		if err != nil {
			return ast.Literal{}, err
		}
		return p.eqTail(left)
	default:
		return ast.Literal{}, p.errorf("expected literal, found %v %q", p.tok.kind, p.tok.text)
	}
}

func (p *parser) eqTail(left ast.Term) (ast.Literal, error) {
	neq := false
	switch p.tok.kind {
	case tokEq:
	case tokNeq:
		neq = true
	default:
		return ast.Literal{}, p.errorf("expected '=' or '!=', found %v %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return ast.Literal{}, err
	}
	right, err := p.term()
	if err != nil {
		return ast.Literal{}, err
	}
	if neq {
		return ast.Neq(left, right), nil
	}
	return ast.Eq(left, right), nil
}

// rule parses one clause: head [:- body] .
func (p *parser) rule() (ast.Rule, error) {
	head, err := p.atom()
	if err != nil {
		return ast.Rule{}, err
	}
	r := ast.Rule{Head: head}
	if p.tok.kind == tokArrow {
		if err := p.advance(); err != nil {
			return ast.Rule{}, err
		}
		for {
			l, err := p.literal()
			if err != nil {
				return ast.Rule{}, err
			}
			r.Body = append(r.Body, l)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return ast.Rule{}, err
				}
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokDot); err != nil {
		return ast.Rule{}, err
	}
	return r, nil
}

// Program parses DATALOG¬ source text into a validated program.
func Program(src string) (*ast.Program, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	prog := &ast.Program{}
	for p.tok.kind != tokEOF {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if _, err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustProgram is Program but panics on error; for tests and canned
// programs whose syntax is fixed at compile time.
func MustProgram(src string) *ast.Program {
	p, err := Program(src)
	if err != nil {
		panic("parser: " + err.Error())
	}
	return p
}

// ProgramFile reads and parses a program from a file.
func ProgramFile(path string) (*ast.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := Program(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return prog, nil
}

// Facts parses a fact file — ground clauses like "E(a,b)." — into a
// database.  Rules with bodies or non-ground heads are rejected.
func Facts(src string) (*relation.Database, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	db := relation.NewDatabase()
	for p.tok.kind != tokEOF {
		line, col := p.tok.line, p.tok.col
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		if len(r.Body) != 0 {
			return nil, &Error{Line: line, Col: col, Msg: "fact files must not contain rules"}
		}
		consts := make([]string, len(r.Head.Args))
		for i, t := range r.Head.Args {
			if t.IsVar() {
				return nil, &Error{Line: line, Col: col,
					Msg: fmt.Sprintf("fact %s has variable argument %s", r.Head.Pred, t.Name)}
			}
			consts[i] = t.Name
		}
		if err := db.AddFact(r.Head.Pred, consts...); err != nil {
			return nil, &Error{Line: line, Col: col, Msg: err.Error()}
		}
	}
	return db, nil
}

// MustFacts is Facts but panics on error.
func MustFacts(src string) *relation.Database {
	db, err := Facts(src)
	if err != nil {
		panic("parser: " + err.Error())
	}
	return db
}

// FactsFile reads and parses a fact file into a database.
func FactsFile(path string) (*relation.Database, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	db, err := Facts(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s:%w", path, err)
	}
	return db, nil
}

// FormatDatabase renders db as a fact file that Facts can re-read.
// Lines are sorted textually within each relation so the output is
// canonical: Tuples() iterates in packed-key order, which depends on
// symbol intern order and therefore on the order facts were first
// read — formatting the re-parsed output would otherwise reshuffle it.
func FormatDatabase(db *relation.Database) string {
	var b strings.Builder
	u := db.Universe()
	for _, name := range db.SortedNames() {
		rel := db.Relation(name)
		lines := make([]string, 0, rel.Len())
		for _, t := range rel.Tuples() {
			args := make([]string, len(t))
			for i, v := range t {
				args[i] = ast.Const(u.Name(v)).String()
			}
			if len(args) == 0 {
				lines = append(lines, name+".\n")
			} else {
				lines = append(lines, fmt.Sprintf("%s(%s).\n", name, strings.Join(args, ",")))
			}
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
		}
	}
	return b.String()
}
