// Package parser implements the concrete syntax for DATALOG¬ programs
// and fact files.
//
// Programs are written in a Prolog-like notation:
//
//	% transitive closure (paper's π₃)
//	S(X,Y) :- E(X,Y).
//	S(X,Y) :- E(X,Z), S(Z,Y).
//
//	% the paper's π₁, with negation
//	T(X) :- E(Y,X), !T(Y).
//
// Identifiers beginning with an upper-case letter or underscore are
// variables; everything else (lower-case identifiers, numbers, quoted
// strings) is a constant.  Negation is written "!" or "not", rule
// arrows ":-" or "<-", equality "=" and inequality "!=".  Comments run
// from '%' or "//" to end of line.  A clause without a body, written
// "E(a,b).", is a fact when ground; with variables it is a rule whose
// head variables range over the whole universe (the paper's
// active-domain convention, used by the IN-gate rules of Theorem 4).
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF    tokenKind = iota
	tokIdent            // identifier (variable or constant)
	tokString           // quoted constant
	tokNumber           // numeric constant
	tokLParen           // (
	tokRParen           // )
	tokComma            // ,
	tokDot              // .
	tokArrow            // :- or <-
	tokBang             // !
	tokNot              // the keyword "not"
	tokEq               // =
	tokNeq              // !=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokArrow:
		return "':-'"
	case tokBang:
		return "'!'"
	case tokNot:
		return "'not'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	}
	return "unknown token"
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer scans DATALOG¬ source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a positioned syntax error.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || c == '\'' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	tok := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case c == '(':
		l.advance()
		tok.kind, tok.text = tokLParen, "("
	case c == ')':
		l.advance()
		tok.kind, tok.text = tokRParen, ")"
	case c == ',':
		l.advance()
		tok.kind, tok.text = tokComma, ","
	case c == '.':
		l.advance()
		tok.kind, tok.text = tokDot, "."
	case c == '=':
		l.advance()
		tok.kind, tok.text = tokEq, "="
	case c == '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			tok.kind, tok.text = tokNeq, "!="
		} else {
			tok.kind, tok.text = tokBang, "!"
		}
	case c == ':' && l.peek2() == '-':
		l.advance()
		l.advance()
		tok.kind, tok.text = tokArrow, ":-"
	case c == '<' && l.peek2() == '-':
		l.advance()
		l.advance()
		tok.kind, tok.text = tokArrow, "<-"
	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return tok, l.errorf("unterminated string")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return tok, l.errorf("unterminated escape")
				}
				ch = l.advance()
			}
			b.WriteByte(ch)
		}
		tok.kind, tok.text = tokString, b.String()
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (l.peek() >= '0' && l.peek() <= '9') {
			l.advance()
		}
		tok.kind, tok.text = tokNumber, l.src[start:l.pos]
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if text == "not" {
			tok.kind, tok.text = tokNot, text
		} else {
			tok.kind, tok.text = tokIdent, text
		}
	default:
		return tok, l.errorf("unexpected character %q", string(rune(c)))
	}
	return tok, nil
}
