package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

func TestParsePi1(t *testing.T) {
	p, err := Program("T(X) :- E(Y,X), !T(Y).")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Head.Pred != "T" || len(r.Head.Args) != 1 || !r.Head.Args[0].IsVar() {
		t.Errorf("head = %v", r.Head)
	}
	if len(r.Body) != 2 {
		t.Fatalf("body = %v", r.Body)
	}
	if r.Body[0].Kind != ast.LitPos || r.Body[0].Atom.Pred != "E" {
		t.Errorf("body[0] = %v", r.Body[0])
	}
	if r.Body[1].Kind != ast.LitNeg || r.Body[1].Atom.Pred != "T" {
		t.Errorf("body[1] = %v", r.Body[1])
	}
}

func TestParseNotKeywordAndArrow(t *testing.T) {
	a, err := Program("T(X) :- E(Y,X), !T(Y).")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Program("T(X) <- E(Y,X), not T(Y).")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("alternate syntax differs:\n%q\n%q", a.String(), b.String())
	}
}

func TestParseEqNeq(t *testing.T) {
	p, err := Program("S(X,Y) :- E(X,Y), X != Y, X = X.")
	if err != nil {
		t.Fatal(err)
	}
	b := p.Rules[0].Body
	if b[1].Kind != ast.LitNeq || b[2].Kind != ast.LitEq {
		t.Errorf("body = %v", b)
	}
}

func TestParseConstantsInRules(t *testing.T) {
	// The IN-gate rule of Theorem 4 has a constant in the head.
	p, err := Program(`g3(Z1, 1, Z3) :- d(Z1), d(Z3).`)
	if err != nil {
		t.Fatal(err)
	}
	args := p.Rules[0].Head.Args
	if args[1].IsVar() || args[1].Name != "1" {
		t.Errorf("head args = %v", args)
	}
	if !args[0].IsVar() {
		t.Errorf("Z1 parsed as constant")
	}
}

func TestParseQuotedConstant(t *testing.T) {
	p, err := Program(`t(X) :- e("Upper Case", X).`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rules[0].Body[0].Atom.Args[0].Name; got != "Upper Case" {
		t.Errorf("quoted constant = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	src := `
% a comment
t(X) :- e(X). // another
t(X) :- f(X).
`
	p, err := Program(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Errorf("rules = %d", len(p.Rules))
	}
}

func TestParseZeroArity(t *testing.T) {
	p, err := Program("halt :- e(X), stuck.")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Head.Pred != "halt" || p.Rules[0].Head.Arity() != 0 {
		t.Errorf("head = %v", p.Rules[0].Head)
	}
	if p.Rules[0].Body[1].Atom.Pred != "stuck" || p.Rules[0].Body[1].Atom.Arity() != 0 {
		t.Errorf("body = %v", p.Rules[0].Body)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                              // no rules
		"T(X)",                          // missing dot
		"t(X) :- .",                     // missing literal
		"t(X) :- e(X),.",                // trailing comma
		"t(X) :- e(X,).",                // bad term
		"t(X) :- X.",                    // bare variable literal
		"Flag :- e(X).",                 // bare upper-case zero-arity head
		"t(X) :- !X = Y.",               // negated equality is not an atom
		"t(X) :- e(X). t(X,Y) :- e(X).", // arity conflict
		`t(X) :- e("unterminated.`,      // bad string
		"t(X) :- e(X) & f(X).",          // stray character
	}
	for _, src := range cases {
		if _, err := Program(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Program("t(X) :- e(X).\nt(Y) :- ???.\n")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"T(X) :- E(Y,X), !T(Y).",
		"S2(X,Y,Z,W) :- S1(X,Y), !S1(Z,W).",
		"q(X) :- !s(X), n(X,Y), !s(Y).",
		"t(Z) :- !q(U), !t(W).",
		"g(Z1,1,Z3) :- d(Z1), d(Z3).",
		"p(X) :- e(X,Y), X != Y, Y = Z.",
	}
	for _, src := range srcs {
		p1, err := Program(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		p2, err := Program(p1.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v\nprinted: %q", src, err, p1.String())
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip differs:\n%q\n%q", p1.String(), p2.String())
		}
	}
}

func TestFacts(t *testing.T) {
	db, err := Facts(`
e(a,b). e(b,c).
v(a).
marker.
num(1,2).
`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("e").Len() != 2 {
		t.Errorf("e len = %d", db.Relation("e").Len())
	}
	if db.Relation("v").Len() != 1 {
		t.Errorf("v len = %d", db.Relation("v").Len())
	}
	if db.Relation("marker").Len() != 1 {
		t.Errorf("marker len = %d", db.Relation("marker").Len())
	}
	if db.Relation("num").Len() != 1 {
		t.Errorf("num len = %d", db.Relation("num").Len())
	}
}

func TestFactsRejectRulesAndVars(t *testing.T) {
	if _, err := Facts("t(X) :- e(X)."); err == nil {
		t.Error("rule accepted in fact file")
	}
	if _, err := Facts("e(X)."); err == nil {
		t.Error("non-ground fact accepted")
	}
	if _, err := Facts("e(a). e(a,b)."); err == nil {
		t.Error("arity conflict accepted")
	}
}

func TestFormatDatabaseRoundTrip(t *testing.T) {
	db := MustFacts("e(a,b). e(b,c). v(a). flag.")
	text := FormatDatabase(db)
	db2, err := Facts(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\ntext: %q", err, text)
	}
	for _, name := range []string{"e", "v", "flag"} {
		if !db.Relation(name).Equal(db2.Relation(name)) {
			t.Errorf("relation %s differs after round trip", name)
		}
	}
}

// randomProgram builds a random syntactically valid program for the
// round-trip property test.
func randomProgram(rng *rand.Rand) *ast.Program {
	preds := []string{"p", "q", "r"}
	arity := map[string]int{"p": 1, "q": 2, "r": 1}
	vars := []string{"X", "Y", "Z"}
	consts := []string{"a", "b", "c1"}
	term := func() ast.Term {
		if rng.Intn(2) == 0 {
			return ast.Var(vars[rng.Intn(len(vars))])
		}
		return ast.Const(consts[rng.Intn(len(consts))])
	}
	atom := func() ast.Atom {
		p := preds[rng.Intn(len(preds))]
		args := make([]ast.Term, arity[p])
		for i := range args {
			args[i] = term()
		}
		return ast.Atom{Pred: p, Args: args}
	}
	nRules := 1 + rng.Intn(4)
	prog := &ast.Program{}
	for i := 0; i < nRules; i++ {
		r := ast.Rule{Head: atom()}
		nLits := rng.Intn(4)
		for j := 0; j < nLits; j++ {
			switch rng.Intn(4) {
			case 0:
				r.Body = append(r.Body, ast.Pos(atom()))
			case 1:
				r.Body = append(r.Body, ast.Neg(atom()))
			case 2:
				r.Body = append(r.Body, ast.Eq(term(), term()))
			default:
				r.Body = append(r.Body, ast.Neq(term(), term()))
			}
		}
		prog.Rules = append(prog.Rules, r)
	}
	return prog
}

func TestPropPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		printed := p.String()
		re, err := Program(printed)
		if err != nil {
			t.Logf("parse failed for:\n%s\nerr: %v", printed, err)
			return false
		}
		return re.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProgramString(t *testing.T) {
	p := MustProgram("t(X) :- e(X,Y), !t(Y).")
	if !strings.Contains(p.String(), "!t(Y)") {
		t.Errorf("String = %q", p.String())
	}
}
