package magic

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/parser"
)

// ParseQuery parses a query atom in the concrete syntax of the
// program language: constants (lower-case identifiers, numbers,
// quoted strings) mark bound positions, wildcards — written "?", "_",
// or any variable — mark free ones.  Examples:
//
//	tc(c, ?)     adornment bf
//	sg(?, leaf)  adornment fb
//	p(X, "A")    adornment fb
//	reached      a zero-arity query
func ParseQuery(src string) (Query, error) {
	// "?" is not a token of the program language; rewrite each
	// occurrence outside quoted strings to a fresh wildcard variable.
	// The substitute is padded with spaces so a '?' glued to an
	// identifier — the typo "s(a?)" — stays two tokens and is rejected
	// by the parser instead of silently merging into one constant.
	var b strings.Builder
	inStr, esc := false, false
	n := 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case esc:
			esc = false
			b.WriteByte(c)
		case inStr && c == '\\':
			esc = true
			b.WriteByte(c)
		case c == '"':
			inStr = !inStr
			b.WriteByte(c)
		case !inStr && c == '?':
			fmt.Fprintf(&b, " _W%d ", n)
			n++
		default:
			b.WriteByte(c)
		}
	}
	// Parse as the body of a throwaway rule so the ordinary parser does
	// the lexing; the head is a zero-arity dummy.
	prog, err := parser.Program("q__ :- " + b.String() + ".")
	if err != nil {
		return Query{}, fmt.Errorf("magic: cannot parse query %q: %w", src, err)
	}
	if len(prog.Rules) != 1 || len(prog.Rules[0].Body) != 1 {
		return Query{}, fmt.Errorf("magic: query %q must be a single atom", src)
	}
	lit := prog.Rules[0].Body[0]
	if lit.Kind != ast.LitPos {
		return Query{}, fmt.Errorf("magic: query %q must be a positive atom", src)
	}
	q := Query{Pred: lit.Atom.Pred}
	for _, t := range lit.Atom.Args {
		if t.IsVar() {
			q.Args = append(q.Args, Free())
		} else {
			q.Args = append(q.Args, Bound(t.Name))
		}
	}
	return q, nil
}

// MustParseQuery is ParseQuery but panics on error; for tests and
// canned queries.
func MustParseQuery(src string) Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}
