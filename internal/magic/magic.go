// Package magic implements demand-driven query evaluation by
// magic-set rewriting: given a DATALOG¬ program and a query atom with
// a binding pattern (e.g. tc(c, ?), adornment "bf"), it produces a
// rewritten program whose fixpoint, restricted to the query predicate
// and filtered by the binding, is exactly the answer full evaluation
// would give — while deriving only the tuples the query can reach.
//
// The rewrite is the classic Beeri–Ramakrishnan construction with a
// left-to-right sideways-information-passing strategy, made
// stratification-aware in the style of Balbin et al.: predicates that
// appear under negation anywhere in the query's support — together
// with everything they depend on — are kept on their original rules
// and evaluated in full, because negating a magic-restricted subset
// would change the meaning.  Only the remaining, purely positive
// support is adorned and guarded by magic predicates.  By construction
// the rewritten program of a stratifiable program is stratifiable; if
// the defensive re-check ever fails, Rewrite falls back to the
// unrewritten (reachable) rules and records that decision in the
// Report, so callers always get a correct program.
//
// Magic seeds flow through a dedicated extensional seed predicate
// (m_q(X̄) ← m_q_seed(X̄)) rather than a fact rule, so the rewritten
// program depends only on (predicate, adornment) — never on the query
// constants — and can be cached and reused across queries, as
// internal/server does.
package magic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Arg is one argument position of a query: bound to a constant, or
// free (a wildcard the evaluation must enumerate).
type Arg struct {
	IsBound bool
	Const   string // valid when IsBound
}

// Bound returns a bound query argument.
func Bound(c string) Arg { return Arg{IsBound: true, Const: c} }

// Free returns a free (wildcard) query argument.
func Free() Arg { return Arg{} }

// Query is a point query: a predicate with a constant or wildcard per
// argument position.
type Query struct {
	Pred string
	Args []Arg
}

// Pattern returns the binding pattern: true at bound positions.
func (q Query) Pattern() []bool {
	out := make([]bool, len(q.Args))
	for i, a := range q.Args {
		out[i] = a.IsBound
	}
	return out
}

// Adornment renders the query's binding pattern ("bf" style).
func (q Query) Adornment() string { return Adornment(q.Pattern()) }

// String renders the query in the form ParseQuery accepts.
func (q Query) String() string {
	if len(q.Args) == 0 {
		return q.Pred
	}
	parts := make([]string, len(q.Args))
	for i, a := range q.Args {
		if a.IsBound {
			parts[i] = ast.Const(a.Const).String()
		} else {
			parts[i] = "?"
		}
	}
	return q.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Adornment renders a binding pattern as the usual adornment string:
// 'b' for bound positions, 'f' for free ones.
func Adornment(pattern []bool) string {
	var b strings.Builder
	for _, bound := range pattern {
		if bound {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return b.String()
}

// Decision records how one predicate of the query's support is
// evaluated under the rewrite.
type Decision struct {
	Pred    string
	Stratum int
	// Magic reports whether the predicate was adorned and guarded by
	// magic predicates (true) or kept on its original rules and
	// evaluated in full (false).
	Magic bool
	// Adornments lists the binding patterns generated for the predicate
	// (empty for full predicates).
	Adornments []string
	// Reason explains a full evaluation decision.
	Reason string
}

// Report is the Explain-style account of a rewrite: which predicates
// were adorned, which fell back to full evaluation and why.
type Report struct {
	Pred      string
	Adornment string
	// Fallback reports that the whole rewrite was abandoned and the
	// reachable rules are evaluated unrewritten.
	Fallback bool
	// Reason explains a fallback.
	Reason    string
	Decisions []Decision
	// Rule counts of the rewritten program.
	AdornedRules, GuardRules, FullRules int
}

// Format renders the report for humans.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %s adornment %s\n", r.Pred, r.Adornment)
	if r.Fallback {
		fmt.Fprintf(&b, "fallback to full evaluation: %s\n", r.Reason)
	}
	fmt.Fprintf(&b, "rules: %d adorned, %d guard, %d full\n",
		r.AdornedRules, r.GuardRules, r.FullRules)
	for _, d := range r.Decisions {
		if d.Magic {
			fmt.Fprintf(&b, "  stratum %d  %-12s magic %v\n", d.Stratum, d.Pred, d.Adornments)
		} else {
			fmt.Fprintf(&b, "  stratum %d  %-12s full (%s)\n", d.Stratum, d.Pred, d.Reason)
		}
	}
	return b.String()
}

// Rewritten is a prepared magic rewrite.  It depends only on the
// program, the query predicate, and the binding pattern — not on the
// query constants — so it can be cached keyed by (predicate,
// adornment) and reused across queries; seeds are injected per query
// through the extensional SeedPred relation (see Seed).
type Rewritten struct {
	// Program is the rewritten (or, on fallback, reachable-restricted)
	// program.
	Program *ast.Program
	// Answer is the predicate of Program holding the query answers;
	// callers must still filter it by the binding pattern, since magic
	// sets may over-approximate the demanded bindings.
	Answer string
	// SeedPred is the extensional seed predicate; empty on fallback
	// (no seed is needed: the reachable rules are evaluated in full).
	SeedPred string
	// Pattern is the binding pattern the rewrite was prepared for.
	Pattern []bool
	// Consts are the constants of the original program in intern
	// order.  Callers must intern them into the evaluation universe
	// before running Program: full evaluation would have interned them
	// all, and under the active-domain semantics unsafe rules range
	// over exactly that universe.
	Consts []string
	Report *Report
}

// Seed returns the seed fact for a concrete query: the seed predicate
// plus the query constants at bound positions, to be added to the
// database before evaluating Program.  A nil pred return (empty
// string) means the rewrite is a fallback and needs no seed.
func (rw *Rewritten) Seed(q Query) (pred string, args []string, err error) {
	if len(q.Args) != len(rw.Pattern) {
		return "", nil, fmt.Errorf("magic: query %s has %d args, rewrite prepared for %d", q.Pred, len(q.Args), len(rw.Pattern))
	}
	for i, a := range q.Args {
		if a.IsBound != rw.Pattern[i] {
			return "", nil, fmt.Errorf("magic: query %s does not match prepared adornment %s", q, Adornment(rw.Pattern))
		}
		if a.IsBound {
			args = append(args, a.Const)
		}
	}
	return rw.SeedPred, args, nil
}

// adornKey identifies one (predicate, adornment) job of the rewrite.
type adornKey struct {
	pred  string
	adorn string
}

// rewriter carries the state of one Rewrite call.
type rewriter struct {
	prog    *ast.Program
	arities map[string]int
	idb     map[string]bool
	full    map[string]bool // predicates evaluated in full (kept unrewritten)
	used    map[string]bool // predicate names in use (collision avoidance)
	names   map[string]string

	queue []adornKey
	done  map[adornKey]bool

	adorned, guards []ast.Rule
	guardSeen       map[string]bool
}

// Rewrite prepares the magic rewrite of prog for queries on pred with
// the given binding pattern.  It returns an error if the program is
// invalid or unstratifiable, or if pred is not an IDB predicate of the
// matching arity; extensional predicates need no rewrite (answer them
// by a direct database probe).
func Rewrite(prog *ast.Program, pred string, pattern []bool) (*Rewritten, error) {
	arities, err := prog.Validate()
	if err != nil {
		return nil, err
	}
	idb := prog.IDB()
	if !idb[pred] {
		return nil, fmt.Errorf("magic: %s is not an IDB predicate", pred)
	}
	if arities[pred] != len(pattern) {
		return nil, fmt.Errorf("magic: %s has arity %d, binding pattern has %d positions", pred, arities[pred], len(pattern))
	}
	strat, err := prog.Stratify()
	if err != nil {
		return nil, err
	}

	reach := reachable(prog, pred)
	full := fullSet(prog, reach, idb)

	rw := &rewriter{
		prog:      prog,
		arities:   arities,
		idb:       idb,
		full:      full,
		used:      make(map[string]bool),
		names:     make(map[string]string),
		done:      make(map[adornKey]bool),
		guardSeen: make(map[string]bool),
	}
	for p := range arities {
		rw.used[p] = true
	}

	if full[pred] {
		// The query predicate itself is needed in full (it supports a
		// negated predicate): nothing to restrict.  In a stratifiable
		// program this cannot actually happen — it would close a cycle
		// through negation — but the fallback keeps the contract total.
		return fallback(prog, pred, pattern, reach, strat,
			fmt.Sprintf("query predicate %s must be evaluated in full (it supports a negated predicate)", pred))
	}

	seed := rw.freshName("m_" + pred + "_" + Adornment(pattern) + "_seed")
	rw.enqueue(pred, pattern)
	for len(rw.queue) > 0 {
		job := rw.queue[0]
		rw.queue = rw.queue[1:]
		rw.rewritePred(job)
	}

	// Seed rule: the magic set of the query adornment is fed from the
	// extensional seed relation, so the program is query-constant free.
	nbound := 0
	for _, b := range pattern {
		if b {
			nbound++
		}
	}
	seedVars := make([]ast.Term, nbound)
	for i := range seedVars {
		seedVars[i] = ast.Var(fmt.Sprintf("MS%d", i))
	}
	seedRule := ast.NewRule(
		ast.NewAtom(rw.magicName(pred, Adornment(pattern)), seedVars...),
		ast.Pos(ast.NewAtom(seed, seedVars...)))

	var rules []ast.Rule
	rules = append(rules, seedRule)
	rules = append(rules, rw.guards...)
	rules = append(rules, rw.adorned...)
	nfull := 0
	for _, r := range prog.Rules {
		if reach[r.Head.Pred] && full[r.Head.Pred] {
			rules = append(rules, r)
			nfull++
		}
	}
	out := &ast.Program{Rules: rules}

	report := &Report{
		Pred:         pred,
		Adornment:    Adornment(pattern),
		AdornedRules: len(rw.adorned),
		GuardRules:   len(rw.guards) + 1, // + the seed rule
		FullRules:    nfull,
		Decisions:    rw.decisions(reach, strat),
	}

	// Defensive re-check: the construction preserves stratifiability
	// (negated predicates and their support are untouched), but a
	// correct program beats a clever one.
	if _, err := out.Stratify(); err != nil {
		return fallback(prog, pred, pattern, reach, strat,
			"rewritten program lost stratifiability: "+err.Error())
	}
	if _, err := out.Validate(); err != nil {
		return fallback(prog, pred, pattern, reach, strat,
			"rewritten program failed validation: "+err.Error())
	}

	return &Rewritten{
		Program:  out,
		Answer:   rw.adornedName(pred, Adornment(pattern)),
		SeedPred: seed,
		Pattern:  append([]bool(nil), pattern...),
		Consts:   prog.Constants(),
		Report:   report,
	}, nil
}

// fallback builds the no-rewrite result: the rules reachable from the
// query predicate, evaluated unrewritten.
func fallback(prog *ast.Program, pred string, pattern []bool, reach map[string]bool, strat *ast.Stratification, reason string) (*Rewritten, error) {
	var rules []ast.Rule
	for _, r := range prog.Rules {
		if reach[r.Head.Pred] {
			rules = append(rules, r)
		}
	}
	report := &Report{
		Pred:      pred,
		Adornment: Adornment(pattern),
		Fallback:  true,
		Reason:    reason,
		FullRules: len(rules),
	}
	for _, p := range sortedPreds(reach) {
		report.Decisions = append(report.Decisions, Decision{
			Pred: p, Stratum: strat.Level[p], Reason: "fallback",
		})
	}
	return &Rewritten{
		Program: &ast.Program{Rules: rules},
		Answer:  pred,
		Pattern: append([]bool(nil), pattern...),
		Consts:  prog.Constants(),
		Report:  report,
	}, nil
}

// reachable returns the IDB predicates whose rules can influence pred:
// pred itself plus everything reachable through positive or negated
// body atoms of reachable rules.
func reachable(prog *ast.Program, pred string) map[string]bool {
	idb := prog.IDB()
	byHead := make(map[string][]ast.Rule)
	for _, r := range prog.Rules {
		byHead[r.Head.Pred] = append(byHead[r.Head.Pred], r)
	}
	reach := map[string]bool{pred: true}
	queue := []string{pred}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, r := range byHead[p] {
			for _, l := range r.Body {
				if l.Kind != ast.LitPos && l.Kind != ast.LitNeg {
					continue
				}
				if b := l.Atom.Pred; idb[b] && !reach[b] {
					reach[b] = true
					queue = append(queue, b)
				}
			}
		}
	}
	return reach
}

// fullSet returns the reachable IDB predicates that must be evaluated
// in full: every predicate appearing under negation in a reachable
// rule, closed under dependencies — a full predicate's value needs the
// full values of everything it reads, so magic restriction cannot be
// pushed below a negation.
func fullSet(prog *ast.Program, reach, idb map[string]bool) map[string]bool {
	full := make(map[string]bool)
	for _, r := range prog.Rules {
		if !reach[r.Head.Pred] {
			continue
		}
		for _, l := range r.Body {
			if l.Kind == ast.LitNeg && idb[l.Atom.Pred] {
				full[l.Atom.Pred] = true
			}
		}
	}
	// Close under dependencies (positive and negative): all support of
	// a full predicate is full.
	for changed := true; changed; {
		changed = false
		for _, r := range prog.Rules {
			if !full[r.Head.Pred] {
				continue
			}
			for _, l := range r.Body {
				if l.Kind != ast.LitPos && l.Kind != ast.LitNeg {
					continue
				}
				if b := l.Atom.Pred; idb[b] && !full[b] {
					full[b] = true
					changed = true
				}
			}
		}
	}
	return full
}

// enqueue schedules the (pred, pattern) adornment job once.
func (rw *rewriter) enqueue(pred string, pattern []bool) {
	k := adornKey{pred, Adornment(pattern)}
	if rw.done[k] {
		return
	}
	rw.done[k] = true
	rw.queue = append(rw.queue, k)
}

// freshName returns base, uniquified against every name in use.
func (rw *rewriter) freshName(base string) string {
	name := base
	for rw.used[name] {
		name += "_"
	}
	rw.used[name] = true
	return name
}

// adornedName returns the predicate name of pred adorned with adorn,
// allocating it on first use.
func (rw *rewriter) adornedName(pred, adorn string) string {
	key := "a/" + pred + "/" + adorn
	if n, ok := rw.names[key]; ok {
		return n
	}
	n := rw.freshName(pred + "_" + adorn)
	rw.names[key] = n
	return n
}

// magicName returns the magic predicate name for (pred, adorn),
// allocating it on first use.
func (rw *rewriter) magicName(pred, adorn string) string {
	key := "m/" + pred + "/" + adorn
	if n, ok := rw.names[key]; ok {
		return n
	}
	n := rw.freshName("m_" + pred + "_" + adorn)
	rw.names[key] = n
	return n
}

// rewritePred emits the adorned rules (and their guard rules) for one
// (predicate, adornment) job.
func (rw *rewriter) rewritePred(job adornKey) {
	pattern := make([]bool, len(job.adorn))
	for i := range job.adorn {
		pattern[i] = job.adorn[i] == 'b'
	}
	for _, r := range rw.prog.Rules {
		if r.Head.Pred != job.pred {
			continue
		}
		rw.rewriteRule(job, pattern, r)
	}
}

// rewriteRule rewrites one rule of an adornment job: the head moves to
// the adorned predicate, the magic guard literal is prepended, every
// magic-eligible positive body literal is replaced by its adorned
// version, and for each such literal a guard rule passes the bindings
// available at that point (the left-to-right SIP) into its magic
// predicate.
func (rw *rewriter) rewriteRule(job adornKey, pattern []bool, r ast.Rule) {
	bound := make(map[string]bool)
	var magicArgs []ast.Term
	for i, b := range pattern {
		if !b {
			continue
		}
		t := r.Head.Args[i]
		magicArgs = append(magicArgs, t)
		if t.IsVar() {
			bound[t.Name] = true
		}
	}
	body := []ast.Literal{ast.Pos(ast.NewAtom(rw.magicName(job.pred, job.adorn), magicArgs...))}

	for _, l := range r.Body {
		switch l.Kind {
		case ast.LitPos:
			p := l.Atom.Pred
			if rw.idb[p] && !rw.full[p] {
				sub := make([]bool, len(l.Atom.Args))
				var boundArgs []ast.Term
				for i, t := range l.Atom.Args {
					if !t.IsVar() || bound[t.Name] {
						sub[i] = true
						boundArgs = append(boundArgs, t)
					}
				}
				adorn := Adornment(sub)
				rw.emitGuard(ast.NewRule(ast.NewAtom(rw.magicName(p, adorn), boundArgs...), body...))
				rw.enqueue(p, sub)
				body = append(body, ast.Pos(ast.NewAtom(rw.adornedName(p, adorn), l.Atom.Args...)))
			} else {
				body = append(body, l)
			}
			for _, t := range l.Atom.Args {
				if t.IsVar() {
					bound[t.Name] = true
				}
			}
		case ast.LitNeg:
			// Negated predicates are full (or extensional) by
			// construction; the literal is kept verbatim and binds
			// nothing — under the active-domain semantics its private
			// variables range over the universe, they are not outputs.
			body = append(body, l)
		case ast.LitEq:
			body = append(body, l)
			// An equality propagates a binding from either side.
			lb := !l.Left.IsVar() || bound[l.Left.Name]
			rb := !l.Right.IsVar() || bound[l.Right.Name]
			if lb || rb {
				if l.Left.IsVar() {
					bound[l.Left.Name] = true
				}
				if l.Right.IsVar() {
					bound[l.Right.Name] = true
				}
			}
		case ast.LitNeq:
			body = append(body, l)
		}
	}
	rw.adorned = append(rw.adorned, ast.Rule{
		Head: ast.NewAtom(rw.adornedName(job.pred, job.adorn), r.Head.Args...),
		Body: body,
	})
}

// emitGuard appends a guard rule, deduplicating identical ones (two
// source rules with the same prefix generate the same guard) and
// dropping tautologies: a left-recursive literal whose bound
// arguments are exactly the head's yields m(X̄) ← m(X̄), which derives
// nothing.
func (rw *rewriter) emitGuard(g ast.Rule) {
	if len(g.Body) == 1 && g.Body[0].Kind == ast.LitPos && g.Body[0].Atom.String() == g.Head.String() {
		return
	}
	s := g.String()
	if rw.guardSeen[s] {
		return
	}
	rw.guardSeen[s] = true
	rw.guards = append(rw.guards, g)
}

// decisions summarizes the per-predicate outcomes for the report.
func (rw *rewriter) decisions(reach map[string]bool, strat *ast.Stratification) []Decision {
	adorns := make(map[string][]string)
	for k := range rw.done {
		adorns[k.pred] = append(adorns[k.pred], k.adorn)
	}
	var out []Decision
	for _, p := range sortedPreds(reach) {
		d := Decision{Pred: p, Stratum: strat.Level[p]}
		switch {
		case rw.full[p]:
			d.Reason = "appears under negation or supports a negated predicate"
		case len(adorns[p]) > 0:
			d.Magic = true
			d.Adornments = adorns[p]
			sort.Strings(d.Adornments)
		default:
			d.Reason = "unreached by the query's bindings"
		}
		out = append(out, d)
	}
	return out
}

func sortedPreds(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
