package magic

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

const tcLeftSrc = "s(X,Y) :- E(X,Y).\ns(X,Y) :- s(X,Z), E(Z,Y)."

func TestParseQuery(t *testing.T) {
	cases := []struct {
		src   string
		pred  string
		adorn string
	}{
		{"s(a, ?)", "s", "bf"},
		{"s(?, b)", "s", "fb"},
		{"s(X, Y)", "s", "ff"},
		{"s(_, _)", "s", "ff"},
		{"p(\"A ?\", 12)", "p", "bb"},
		{"reached", "reached", ""},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.src)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", c.src, err)
		}
		if q.Pred != c.pred || q.Adornment() != c.adorn {
			t.Errorf("ParseQuery(%q) = %s/%s, want %s/%s", c.src, q.Pred, q.Adornment(), c.pred, c.adorn)
		}
	}
	if q := MustParseQuery("p(\"A ?\", 12)"); !q.Args[0].IsBound || q.Args[0].Const != "A ?" {
		t.Errorf("quoted bound arg = %+v", q.Args[0])
	}
	for _, bad := range []string{"", "s(a", "!s(a,b)", "s(a,b), s(b,c)"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) should fail", bad)
		}
	}
}

func TestRewriteTCLeft(t *testing.T) {
	prog := parser.MustProgram(tcLeftSrc)
	rw, err := Rewrite(prog, "s", []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Report.Fallback {
		t.Fatalf("unexpected fallback: %s", rw.Report.Reason)
	}
	if rw.SeedPred == "" || rw.Answer == "" {
		t.Fatalf("missing seed or answer: %+v", rw)
	}
	if _, err := rw.Program.Stratify(); err != nil {
		t.Fatalf("rewritten program not stratifiable: %v\n%s", err, rw.Program)
	}
	// The left-linear recursive rule passes only the already-bound X
	// sideways, so the magic set stays at the seed: exactly one guard
	// rule per adornment plus the seed rule.
	src := rw.Program.String()
	if !strings.Contains(src, rw.SeedPred) {
		t.Fatalf("seed predicate %s not used by the program:\n%s", rw.SeedPred, src)
	}
	pred, args, err := rw.Seed(MustParseQuery("s(a, ?)"))
	if err != nil || pred != rw.SeedPred || len(args) != 1 || args[0] != "a" {
		t.Fatalf("Seed = %s %v %v", pred, args, err)
	}
}

func TestRewriteCacheableAcrossConstants(t *testing.T) {
	prog := parser.MustProgram(tcLeftSrc)
	rw, err := Rewrite(prog, "s", []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	// The rewritten program must not mention any constant beyond the
	// original program's: seeds flow through the extensional seed
	// predicate, so one rewrite serves every query with this adornment.
	orig := make(map[string]bool)
	for _, c := range prog.Constants() {
		orig[c] = true
	}
	for _, c := range rw.Program.Constants() {
		if !orig[c] {
			t.Fatalf("rewritten program mentions constant %q not in the original", c)
		}
	}
	p1, a1, _ := rw.Seed(MustParseQuery("s(a, ?)"))
	p2, a2, _ := rw.Seed(MustParseQuery("s(b, ?)"))
	if p1 != p2 || a1[0] != "a" || a2[0] != "b" {
		t.Fatalf("seeds differ structurally: %s%v vs %s%v", p1, a1, p2, a2)
	}
}

func TestRewriteStratifiedNegationFullSet(t *testing.T) {
	// s2 appears under negation in s3's rules, so s2 must be evaluated
	// in full; s1 is purely positive support and is adorned.
	src := `
s1(X,Y) :- E(X,Y).
s1(X,Y) :- E(X,Z), s1(Z,Y).
s2(X,Y) :- E(X,Y).
s2(X,Y) :- E(X,Z), s2(Z,Y).
s3(X,Y) :- s1(X,Y), !s2(Y,X).
`
	prog := parser.MustProgram(src)
	rw, err := Rewrite(prog, "s3", []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Report.Fallback {
		t.Fatalf("unexpected fallback: %s", rw.Report.Reason)
	}
	var full, magicked []string
	for _, d := range rw.Report.Decisions {
		if d.Magic {
			magicked = append(magicked, d.Pred)
		} else {
			full = append(full, d.Pred)
		}
	}
	want := map[string]bool{"s2": true}
	for _, p := range full {
		if !want[p] {
			t.Errorf("predicate %s evaluated in full, want magic", p)
		}
		delete(want, p)
	}
	if len(want) != 0 {
		t.Errorf("predicates %v should be full", want)
	}
	found := false
	for _, p := range magicked {
		if p == "s1" {
			found = true
		}
	}
	if !found {
		t.Errorf("s1 should be adorned; decisions: %+v", rw.Report.Decisions)
	}
	if _, err := rw.Program.Stratify(); err != nil {
		t.Fatalf("rewritten program not stratifiable: %v\n%s", err, rw.Program)
	}
	// The original s2 rules must survive verbatim.
	src2 := rw.Program.String()
	if !strings.Contains(src2, "s2(X,Y) :- E(X,Z), s2(Z,Y).") {
		t.Fatalf("full s2 rules missing:\n%s", src2)
	}
}

func TestRewriteUnstratifiableErrors(t *testing.T) {
	prog := parser.MustProgram("win(X) :- E(X,Y), !win(Y).")
	if _, err := Rewrite(prog, "win", []bool{true}); err == nil {
		t.Fatal("unstratifiable program should be rejected")
	}
}

func TestRewriteAllFreePattern(t *testing.T) {
	prog := parser.MustProgram(tcLeftSrc)
	rw, err := Rewrite(prog, "s", []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	// All-free: the magic predicate is propositional (arity 0) and the
	// seed fact is the empty tuple; the rewrite degenerates to the
	// reachable rules guarded by an always-true magic literal.
	pred, args, err := rw.Seed(MustParseQuery("s(?, ?)"))
	if err != nil || pred == "" || len(args) != 0 {
		t.Fatalf("Seed = %s %v %v", pred, args, err)
	}
	if _, err := rw.Program.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteNameCollisions(t *testing.T) {
	// User predicates occupying the generated names must not collide.
	src := `
s_bf(X) :- V(X).
m_s_bf(X) :- V(X).
s(X,Y) :- E(X,Y), s_bf(X), m_s_bf(Y).
s(X,Y) :- s(X,Z), E(Z,Y).
`
	prog := parser.MustProgram(src)
	rw, err := Rewrite(prog, "s", []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Program.Validate(); err != nil {
		t.Fatalf("collision broke validation: %v\n%s", err, rw.Program)
	}
	if _, err := rw.Program.Stratify(); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteRejectsNonIDB(t *testing.T) {
	prog := parser.MustProgram(tcLeftSrc)
	if _, err := Rewrite(prog, "E", []bool{true, false}); err == nil {
		t.Fatal("EDB predicate should be rejected")
	}
	if _, err := Rewrite(prog, "s", []bool{true}); err == nil {
		t.Fatal("arity mismatch should be rejected")
	}
	if _, err := Rewrite(prog, "nope", []bool{}); err == nil {
		t.Fatal("unknown predicate should be rejected")
	}
}
