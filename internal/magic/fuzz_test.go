package magic

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

// FuzzMagicRewrite is the native fuzz target for the rewrite: for any
// parsable program and query atom, Rewrite must never panic, and every
// successful rewrite must yield a validated program that is
// stratifiable or explicitly flagged as a fallback — the invariant the
// per-stratum negation handling promises.
//
// Seed corpus: testdata/fuzz/FuzzMagicRewrite.
func FuzzMagicRewrite(f *testing.F) {
	seeds := [][2]string{
		{"s(X,Y) :- E(X,Y).\ns(X,Y) :- s(X,Z), E(Z,Y).", "s(a, ?)"},
		{"s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).", "s(?, b)"},
		{"sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,U), sg(U,V), down(V,Y).", "sg(n3_0, ?)"},
		{"s1(X,Y) :- E(X,Y).\ns1(X,Y) :- E(X,Z), s1(Z,Y).\ns3(X,Y) :- s1(X,Y), !s1(Y,X).", "s3(a, ?)"},
		{"t(X) :- E(Y,X), !t(Y).", "t(?)"},
		{"p(X) :- V(X), X != Y.\nq(X,Y) :- p(X), p(Y), !E(X,Y).", "q(?, ?)"},
		{"zero :- V(X).", "zero"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, progSrc, querySrc string) {
		prog, err := parser.Program(progSrc)
		if err != nil {
			return
		}
		q, err := ParseQuery(querySrc)
		if err != nil {
			return
		}
		rw, err := Rewrite(prog, q.Pred, q.Pattern())
		if err != nil {
			// Rejection (non-IDB predicate, arity mismatch,
			// unstratifiable program) is a valid outcome.
			return
		}
		if _, err := rw.Program.Validate(); err != nil {
			t.Fatalf("rewritten program invalid: %v\nprogram:\n%s\nquery: %s\nrewritten:\n%s",
				err, progSrc, querySrc, rw.Program)
		}
		if _, err := rw.Program.Stratify(); err != nil && !rw.Report.Fallback {
			t.Fatalf("rewritten program unstratifiable without fallback: %v\nprogram:\n%s\nquery: %s\nrewritten:\n%s",
				err, progSrc, querySrc, rw.Program)
		}
		if rw.Answer == "" {
			t.Fatalf("rewrite lost the answer predicate\nprogram:\n%s\nquery: %s", progSrc, querySrc)
		}
		// The rewrite must never smuggle query constants into the
		// program — that is what keeps the (predicate, adornment)
		// cache sound.
		if !rw.Report.Fallback {
			seen := make(map[string]bool)
			for _, c := range prog.Constants() {
				seen[c] = true
			}
			for _, c := range rw.Program.Constants() {
				if !seen[c] {
					t.Fatalf("rewritten program mentions new constant %q\nprogram:\n%s\nquery: %s", c, progSrc, querySrc)
				}
			}
		}
		// Seed agreement: a query matching the prepared pattern always
		// yields a seed of the right width.
		if rw.SeedPred != "" {
			_, args, err := rw.Seed(q)
			if err != nil {
				t.Fatalf("Seed failed on the preparing query: %v", err)
			}
			nb := 0
			for _, b := range rw.Pattern {
				if b {
					nb++
				}
			}
			if len(args) != nb {
				t.Fatalf("seed width %d, bound positions %d", len(args), nb)
			}
			if !strings.Contains(rw.Program.String(), rw.SeedPred) {
				t.Fatalf("seed predicate %s unused by the rewritten program", rw.SeedPred)
			}
		}
	})
}
