package fixpoint

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

func TestStableWinMovePath(t *testing.T) {
	// 1→2→3: the unique stable model is the well-founded total model
	// {win(2)}.
	db := relation.NewDatabase()
	db.AddFact("move", "1", "2")
	db.AddFact("move", "2", "3")
	in := engine.MustNew(parser.MustProgram("win(X) :- move(X,Y), !win(Y)."), db)
	var models []engine.State
	count, complete, err := StableModels(in, Options{}, 0, func(s engine.State) bool {
		models = append(models, s)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !complete || count != 1 {
		t.Fatalf("count=%d complete=%v", count, complete)
	}
	two, _ := db.Universe().Lookup("2")
	if models[0]["win"].Len() != 1 || !models[0]["win"].Has(relation.Tuple{two}) {
		t.Errorf("stable model = %v", models[0].Format(db.Universe()))
	}
	// And it agrees with the (total) well-founded model.
	wf := semantics.WellFounded(in)
	if !wf.Total() || !wf.True.Equal(models[0]) {
		t.Error("stable model disagrees with total WF model")
	}
}

func TestStableTwoCycleHasTwoModels(t *testing.T) {
	// a↔b: two stable models {win(a)} and {win(b)}; WF leaves both
	// undefined — the classic divergence.
	db := relation.NewDatabase()
	db.AddFact("move", "a", "b")
	db.AddFact("move", "b", "a")
	in := engine.MustNew(parser.MustProgram("win(X) :- move(X,Y), !win(Y)."), db)
	count, complete, err := StableModels(in, Options{}, 0, func(s engine.State) bool {
		if s["win"].Len() != 1 {
			t.Errorf("stable model size %d", s["win"].Len())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !complete || count != 2 {
		t.Errorf("count=%d complete=%v, want 2", count, complete)
	}
}

func TestStableSupportedButNotStable(t *testing.T) {
	// p ← p has the fixpoints ∅ and {p}; only ∅ is stable (the reduct
	// cannot justify p).  This separates the paper's fixpoint semantics
	// from stable models.
	db := relation.NewDatabase()
	db.AddConstant("a")
	in := engine.MustNew(parser.MustProgram("p(X) :- p(X)."), db)
	fps, _, err := Count(in, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fps != 2 {
		t.Fatalf("fixpoints = %d, want 2", fps)
	}
	count, complete, err := StableModels(in, Options{}, 0, func(s engine.State) bool {
		if s["p"].Len() != 0 {
			t.Errorf("non-empty stable model: %v", s.Format(db.Universe()))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !complete || count != 1 {
		t.Errorf("count=%d complete=%v, want 1", count, complete)
	}
}

func TestStableNoModels(t *testing.T) {
	// p ← ¬p: no fixpoint, hence no stable model.
	db := relation.NewDatabase()
	db.AddConstant("a")
	in := engine.MustNew(parser.MustProgram("p(X) :- !p(X)."), db)
	count, complete, err := StableModels(in, Options{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !complete || count != 0 {
		t.Errorf("count=%d complete=%v, want 0", count, complete)
	}
}

func TestStablePositiveProgramIsLFP(t *testing.T) {
	// For a positive program the unique stable model is the least
	// fixpoint, even though Θ has other (supported) fixpoints.
	src := "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."
	db := pathDB(3)
	in := engine.MustNew(parser.MustProgram(src), db)
	lfp, err := semantics.LeastFixpoint(in)
	if err != nil {
		t.Fatal(err)
	}
	count, complete, err := StableModels(in, Options{}, 0, func(s engine.State) bool {
		if !s.Equal(lfp.State) {
			t.Errorf("stable model ≠ LFP")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !complete || count != 1 {
		t.Errorf("count=%d complete=%v, want 1", count, complete)
	}
}

func TestStablePi1EvenCycle(t *testing.T) {
	// π₁'s two fixpoints on C4 (the independent-set "kernels") are both
	// stable.
	in := engine.MustNew(parser.MustProgram(pi1Src), cycleDB(4))
	count, complete, err := StableModels(in, Options{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !complete || count != 2 {
		t.Errorf("count=%d complete=%v, want 2", count, complete)
	}
}

func TestStableLimit(t *testing.T) {
	in := engine.MustNew(parser.MustProgram(pi1Src), disjointCyclesDB(3, 4))
	count, complete, err := StableModels(in, Options{}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if complete || count != 3 {
		t.Errorf("count=%d complete=%v, want 3 capped", count, complete)
	}
}
