package fixpoint

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/relation"
)

const pi1Src = "T(X) :- E(Y,X), !T(Y)."

func pathDB(n int) *relation.Database {
	db := relation.NewDatabase()
	for i := 1; i <= n; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	for i := 1; i < n; i++ {
		db.AddFact("E", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	return db
}

func cycleDB(n int) *relation.Database {
	db := pathDB(n)
	db.AddFact("E", fmt.Sprint(n), "1")
	return db
}

// disjointCyclesDB builds the paper's Gₙ: copies disjoint directed
// cycles of the given length.
func disjointCyclesDB(copies, length int) *relation.Database {
	db := relation.NewDatabase()
	name := func(c, i int) string { return fmt.Sprintf("c%dv%d", c, i) }
	for c := 0; c < copies; c++ {
		for i := 0; i < length; i++ {
			db.AddFact("E", name(c, i), name(c, (i+1)%length))
		}
	}
	return db
}

func TestPi1PathUniqueFixpoint(t *testing.T) {
	// Paper §2: on Lₙ the unique fixpoint of π₁ is {2,4,…}.
	for n := 1; n <= 6; n++ {
		in := engine.MustNew(parser.MustProgram(pi1Src), pathDB(n))
		count, exact, err := Count(in, Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !exact || count != 1 {
			t.Errorf("L%d: count = %d (exact=%v), want 1", n, count, exact)
		}
		ok, st, err := Unique(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("L%d: uniqueness not detected", n)
		}
		want := n / 2
		if st["T"].Len() != want {
			t.Errorf("L%d: |T| = %d, want %d", n, st["T"].Len(), want)
		}
	}
}

func TestPi1CycleCensus(t *testing.T) {
	// Paper §2: no fixpoint on odd cycles, exactly two on even ones.
	for n := 3; n <= 8; n++ {
		in := engine.MustNew(parser.MustProgram(pi1Src), cycleDB(n))
		count, exact, err := Count(in, Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if n%2 == 0 {
			want = 2
		}
		if !exact || count != want {
			t.Errorf("C%d: count = %d, want %d", n, count, want)
		}
		has, _, err := Exists(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if has != (n%2 == 0) {
			t.Errorf("C%d: Exists = %v", n, has)
		}
	}
}

func TestPi1DisjointCyclesExponential(t *testing.T) {
	// Paper §2: on m disjoint even cycles π₁ has exactly 2^m pairwise
	// incomparable fixpoints and hence no least fixpoint.
	for m := 1; m <= 5; m++ {
		in := engine.MustNew(parser.MustProgram(pi1Src), disjointCyclesDB(m, 4))
		count, exact, err := Count(in, Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !exact || count != 1<<m {
			t.Errorf("G_%d: count = %d, want %d", m, count, 1<<m)
		}
		res, err := Least(in, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Exists {
			t.Errorf("G_%d: least fixpoint reported to exist", m)
		}
		if res.NumFixpoints != 1<<m {
			t.Errorf("G_%d: NumFixpoints = %d", m, res.NumFixpoints)
		}
	}
}

func TestToggleNoFixpoint(t *testing.T) {
	db := relation.NewDatabase()
	db.AddConstant("a")
	db.AddConstant("b")
	in := engine.MustNew(parser.MustProgram("T(Z) :- !T(W)."), db)
	has, _, err := Exists(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Error("toggle program has a fixpoint")
	}
}

func TestGuardedToggleUniqueFixpoint(t *testing.T) {
	// The Theorem 1 gadget: T(z) ← ¬Q(u), ¬T(w) with Q forced full by
	// Q(x) ← V(x) on a database where V covers the universe.
	src := `
Q(X) :- V(X).
T(Z) :- !Q(U), !T(W).
`
	db := relation.NewDatabase()
	db.AddFact("V", "a")
	db.AddFact("V", "b")
	in := engine.MustNew(parser.MustProgram(src), db)
	ok, st, err := Unique(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected unique fixpoint")
	}
	if st["Q"].Len() != 2 || st["T"].Len() != 0 {
		t.Errorf("fixpoint Q=%d T=%d, want Q=2 T=0", st["Q"].Len(), st["T"].Len())
	}

	// With V not covering the universe, Q cannot be full: no fixpoint.
	db2 := relation.NewDatabase()
	db2.AddFact("V", "a")
	db2.AddConstant("b")
	in2 := engine.MustNew(parser.MustProgram(src), db2)
	has, _, err := Exists(in2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Error("partial Q admitted a fixpoint")
	}
}

func TestPositiveProgramLeastIsTC(t *testing.T) {
	// For the TC program the least fixpoint exists and equals the
	// transitive closure even though other fixpoints exist.
	src := `
S(X,Y) :- E(X,Y).
S(X,Y) :- E(X,Z), S(Z,Y).
`
	db := pathDB(3)
	in := engine.MustNew(parser.MustProgram(src), db)
	res, err := Least(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists {
		t.Fatal("least fixpoint of a positive program must exist")
	}
	if res.State["S"].Len() != 3 { // (1,2),(2,3),(1,3)
		t.Errorf("|TC| = %d, want 3", res.State["S"].Len())
	}
	if res.NumFixpoints < 1 {
		t.Errorf("NumFixpoints = %d", res.NumFixpoints)
	}
}

func TestEnumerateEarlyStopAndLimit(t *testing.T) {
	in := engine.MustNew(parser.MustProgram(pi1Src), disjointCyclesDB(3, 4))
	seen := 0
	count, complete, err := Enumerate(in, Options{}, 0, func(engine.State) bool {
		seen++
		return seen < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if complete || count != 3 {
		t.Errorf("count=%d complete=%v", count, complete)
	}
	count, complete, err = Enumerate(in, Options{}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if complete || count != 5 {
		t.Errorf("limited: count=%d complete=%v", count, complete)
	}
}

func TestLeastEnumLimitError(t *testing.T) {
	in := engine.MustNew(parser.MustProgram(pi1Src), disjointCyclesDB(4, 4))
	if _, err := Least(in, Options{EnumLimit: 3}); err == nil {
		t.Error("expected enumeration-cap error")
	}
}

func TestGroundTooLarge(t *testing.T) {
	src := "P(A,B,C,D,E1,F) :- V(A), V(B), V(C), V(D), V(E1), V(F)."
	db := relation.NewDatabase()
	for i := 0; i < 10; i++ {
		db.AddFact("V", fmt.Sprint(i))
	}
	in := engine.MustNew(parser.MustProgram(src), db)
	if _, _, err := Exists(in, Options{}); err == nil {
		t.Error("expected grounding-size error (10^6 atoms > cap)")
	}
}

// canonical renders a state as a deterministic string for set
// comparison across enumeration orders.
func canonical(s engine.State) string {
	preds := s.Preds()
	var sb []byte
	for _, p := range preds {
		sb = append(sb, p...)
		sb = append(sb, ':')
		for _, t := range s[p].Tuples() {
			sb = append(sb, t.String()...)
		}
		sb = append(sb, ';')
	}
	return string(sb)
}

// randomProgramAndDB builds small random DATALOG¬ programs over a tiny
// universe so the brute-force oracle stays feasible.
func randomProgramAndDB(rng *rand.Rand) (*ast.Program, *relation.Database) {
	// Universe of 2; IDB: T/1, S/1; EDB: E/2, V/1.  Atom space = 4 ≤ 24.
	db := relation.NewDatabase()
	db.AddConstant("a")
	db.AddConstant("b")
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			if rng.Intn(2) == 0 {
				db.AddFact("E", string(rune('a'+x)), string(rune('a'+y)))
			}
		}
	}
	if rng.Intn(2) == 0 {
		db.AddFact("V", "a")
	}
	if rng.Intn(2) == 0 {
		db.AddFact("V", "b")
	}

	varNames := []string{"X", "Y"}
	idb := []string{"T", "S"}
	mkAtom := func(pred string) ast.Atom {
		switch pred {
		case "E":
			return ast.NewAtom("E",
				ast.Var(varNames[rng.Intn(2)]), ast.Var(varNames[rng.Intn(2)]))
		default:
			return ast.NewAtom(pred, ast.Var(varNames[rng.Intn(2)]))
		}
	}
	prog := &ast.Program{}
	nRules := 1 + rng.Intn(3)
	for i := 0; i < nRules; i++ {
		head := ast.NewAtom(idb[rng.Intn(2)], ast.Var(varNames[rng.Intn(2)]))
		var body []ast.Literal
		nLits := rng.Intn(3)
		for j := 0; j < nLits; j++ {
			preds := []string{"T", "S", "E", "V"}
			a := mkAtom(preds[rng.Intn(len(preds))])
			if rng.Intn(2) == 0 {
				body = append(body, ast.Pos(a))
			} else {
				body = append(body, ast.Neg(a))
			}
		}
		if rng.Intn(4) == 0 {
			body = append(body, ast.Neq(ast.Var("X"), ast.Var("Y")))
		}
		prog.Rules = append(prog.Rules, ast.NewRule(head, body...))
	}
	return prog, db
}

func TestPropSATMatchesBruteForce(t *testing.T) {
	// The central cross-validation: the SAT-based fixpoint enumeration
	// must agree exactly (as a set of states) with subset enumeration.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog, db := randomProgramAndDB(rng)
		in, err := engine.New(prog, db)
		if err != nil {
			return true // e.g. unlucky arity clash; not the property
		}

		var bruteSet []string
		_, err = EnumerateBrute(in, func(s engine.State) bool {
			bruteSet = append(bruteSet, canonical(s))
			return true
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		var satSet []string
		_, complete, err := Enumerate(in, Options{}, 0, func(s engine.State) bool {
			if !in.IsFixpoint(s) {
				t.Logf("seed %d: SAT produced a non-fixpoint\nprogram:\n%s", seed, prog)
				return false
			}
			satSet = append(satSet, canonical(s))
			return true
		})
		if err != nil || !complete {
			t.Logf("seed %d: enumeration failed: %v", seed, err)
			return false
		}
		sort.Strings(bruteSet)
		sort.Strings(satSet)
		if len(bruteSet) != len(satSet) {
			t.Logf("seed %d: brute %d vs sat %d fixpoints\nprogram:\n%s\ndb:\n%s",
				seed, len(bruteSet), len(satSet), prog, db)
			return false
		}
		for i := range bruteSet {
			if bruteSet[i] != satSet[i] {
				t.Logf("seed %d: fixpoint sets differ\nprogram:\n%s", seed, prog)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	src := "S(X,Y) :- E(X,Y)."
	db := pathDB(6) // 36 atoms > 24
	in := engine.MustNew(parser.MustProgram(src), db)
	if _, err := EnumerateBrute(in, nil); err == nil {
		t.Error("expected feasibility error")
	}
}
