// Package fixpoint answers the decision problems of Section 3 of the
// paper for a concrete (π, D): does a fixpoint exist (Theorem 1's
// NP-complete problem), is it unique (Theorem 2's US-complete
// problem), does a least fixpoint exist (Theorem 3's problem between
// US and FO^NP), and what are the fixpoints.
//
// The primary implementation grounds the fixpoint condition to a
// propositional completion (package ground) and runs the CDCL solver
// (package sat): satisfiability ⇔ fixpoint existence, projected model
// enumeration ⇔ fixpoint enumeration, and the Theorem 3 criterion —
// a least fixpoint exists iff the coordinatewise intersection of all
// fixpoints is itself a fixpoint — is decided by enumerate-and-check.
// A brute-force subset enumerator doubles as a test oracle.
package fixpoint

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/ground"
	"repro/internal/sat"
)

// Options configures an analysis.
type Options struct {
	// Ground bounds the grounding size.
	Ground ground.Options
	// EnumLimit caps fixpoint enumeration for Count/Least (0 = 100000).
	EnumLimit int
}

func (o Options) enumLimit() int {
	if o.EnumLimit == 0 {
		return 100000
	}
	return o.EnumLimit
}

// Exists reports whether (π, D) has a fixpoint and returns one if so.
func Exists(in *engine.Instance, opt Options) (bool, engine.State, error) {
	comp, err := ground.Complete(in, opt.Ground)
	if err != nil {
		return false, nil, err
	}
	solver := sat.FromFormula(comp.Formula)
	if solver.Solve() != sat.Sat {
		return false, nil, nil
	}
	st := comp.StateOfSlice(solver.Model())
	if !in.IsFixpoint(st) {
		return false, nil, fmt.Errorf("fixpoint: internal error: SAT model is not a fixpoint")
	}
	return true, st, nil
}

// Enumerate calls fn for every fixpoint of (π, D) (up to limit when
// limit > 0); it reports the number visited and whether the
// enumeration was exhaustive.  fn may be nil; returning false stops
// early.
func Enumerate(in *engine.Instance, opt Options, limit int, fn func(engine.State) bool) (int, bool, error) {
	comp, err := ground.Complete(in, opt.Ground)
	if err != nil {
		return 0, false, err
	}
	solver := sat.FromFormula(comp.Formula)
	count, complete := solver.EnumerateProjected(comp.AtomVars(), limit, func(m map[int]bool) bool {
		if fn == nil {
			return true
		}
		return fn(comp.StateOf(m))
	})
	return count, complete, nil
}

// Count returns the number of fixpoints of (π, D), counting at most
// limit (0 = exact with the option's enumeration cap); exact reports
// whether the returned count is the true total.
func Count(in *engine.Instance, opt Options, limit int) (int, bool, error) {
	if limit == 0 {
		limit = opt.enumLimit()
	}
	count, complete, err := Enumerate(in, opt, limit, nil)
	return count, complete, err
}

// Unique reports whether (π, D) has exactly one fixpoint, returning it
// when so (Theorem 2's decision problem).
func Unique(in *engine.Instance, opt Options) (bool, engine.State, error) {
	var first engine.State
	count, _, err := Enumerate(in, opt, 2, func(s engine.State) bool {
		if first == nil {
			first = s
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	if count == 1 {
		return true, first, nil
	}
	return false, nil, nil
}

// LeastResult is the outcome of the least-fixpoint analysis.
type LeastResult struct {
	// Exists reports whether a least fixpoint exists.
	Exists bool
	// State is the least fixpoint when Exists.
	State engine.State
	// NumFixpoints is the total number of fixpoints enumerated.
	NumFixpoints int
	// Intersection is the coordinatewise intersection of all
	// fixpoints (meaningful when NumFixpoints > 0).
	Intersection engine.State
}

// Least decides least-fixpoint existence by the paper's Theorem 3
// criterion: enumerate all fixpoints, intersect coordinatewise, and
// check whether the intersection is itself a fixpoint.  It fails if
// there are more fixpoints than the enumeration cap (the exponential
// cost is the point of Theorem 3).
func Least(in *engine.Instance, opt Options) (*LeastResult, error) {
	var inter engine.State
	count, complete, err := Enumerate(in, opt, opt.enumLimit(), func(s engine.State) bool {
		if inter == nil {
			inter = s.Clone()
			return true
		}
		for pred, rel := range inter {
			inter[pred] = rel.Intersect(s[pred])
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if !complete {
		return nil, fmt.Errorf("fixpoint: more than %d fixpoints; raise EnumLimit", opt.enumLimit())
	}
	res := &LeastResult{NumFixpoints: count, Intersection: inter}
	if count == 0 {
		return res, nil
	}
	if in.IsFixpoint(inter) {
		res.Exists = true
		res.State = inter
	}
	return res, nil
}

// --- brute-force oracle -------------------------------------------------

// EnumerateBrute enumerates fixpoints by trying every subset of the
// ground-atom space — exponential, usable only for tiny instances, and
// kept as the independent oracle the SAT path is validated against.
// It returns the number of fixpoints, or an error if the atom space
// exceeds 24 atoms.
func EnumerateBrute(in *engine.Instance, fn func(engine.State) bool) (int, error) {
	type atom struct {
		pred string
		t    []int
	}
	var atoms []atom
	n := in.Universe().Size()
	for _, pred := range in.IDBPreds() {
		k := in.Arity(pred)
		count := 1
		for i := 0; i < k; i++ {
			count *= n
		}
		tuple := make([]int, k)
		var rec func(int)
		rec = func(pos int) {
			if pos == k {
				t := make([]int, k)
				copy(t, tuple)
				atoms = append(atoms, atom{pred, t})
				return
			}
			for v := 0; v < n; v++ {
				tuple[pos] = v
				rec(pos + 1)
			}
		}
		rec(0)
	}
	if len(atoms) > 24 {
		return 0, fmt.Errorf("fixpoint: brute force over %d atoms is infeasible", len(atoms))
	}
	count := 0
	for mask := 0; mask < 1<<len(atoms); mask++ {
		s := in.NewState()
		for i, a := range atoms {
			if mask&(1<<i) != 0 {
				s[a.pred].Add(a.t)
			}
		}
		if in.IsFixpoint(s) {
			count++
			if fn != nil && !fn(s) {
				return count, nil
			}
		}
	}
	return count, nil
}
