package fixpoint

import (
	"repro/internal/engine"
	"repro/internal/semantics"
)

// StableModels enumerates the stable models (answer sets) of (π, D) —
// the semantics of modern ASP systems (DLV, clingo), included as the
// natural descendant of the negation-semantics debate the paper opens.
//
// A state S is stable when Γ(S) = S for the Gelfond–Lifschitz operator
// Γ (semantics.Gamma).  Every stable model is a *supported* model,
// i.e. a fixpoint of the paper's operator Θ: Γ(S) = S forces
// Θ(S) ⊆ S by minimality-of-Γ and S ⊆ Θ(S) because every S-atom is
// derived by some rule of the reduct, whose body also holds under Θ's
// reading.  StableModels therefore enumerates the Θ-fixpoints with the
// SAT machinery and filters by the Γ test — the converse inclusion is
// strict (a fixpoint need not be stable; see the p ← p example in the
// tests), which is itself a point of comparison with the paper's
// fixpoint semantics.
//
// fn may be nil; returning false stops early.  limit > 0 caps the
// number of stable models reported.  The boolean result reports
// exhaustiveness.
func StableModels(in *engine.Instance, opt Options, limit int, fn func(engine.State) bool) (int, bool, error) {
	count := 0
	visited, complete, err := Enumerate(in, opt, 0, func(s engine.State) bool {
		if !semantics.Gamma(in, s).Equal(s) {
			return true // supported but not stable
		}
		count++
		if fn != nil && !fn(s) {
			return false
		}
		return limit <= 0 || count < limit
	})
	_ = visited
	if err != nil {
		return 0, false, err
	}
	return count, complete, nil
}
