// Package logic implements first-order logic over database
// vocabularies: formula ASTs, model checking on finite databases
// (active-domain quantification), negation normal form, prenex normal
// form with standardization-apart, disjunctive normal form of
// quantifier-free matrices, and existential second-order (ESO)
// sentences with brute-force witness search.
//
// It is the input language of the paper's Theorem 1: by Fagin's
// theorem every NP collection of databases is defined by an ESO
// sentence ∃S̄ φ, and the fagin package compiles such sentences into
// DATALOG¬ programs whose fixpoint existence realizes the collection.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/relation"
)

// Formula is a first-order formula node.
type Formula interface {
	fmtInto(sb *strings.Builder)
	isFormula()
}

// Atom is a relational atom R(t̄).
type Atom struct {
	Pred string
	Args []ast.Term
}

// Eq is an equality t₁ = t₂.
type Eq struct{ Left, Right ast.Term }

// Not is negation.
type Not struct{ F Formula }

// And is conjunction (n-ary).
type And struct{ Fs []Formula }

// Or is disjunction (n-ary).
type Or struct{ Fs []Formula }

// Exists is existential quantification over first-order variables.
type Exists struct {
	Vars []string
	F    Formula
}

// Forall is universal quantification over first-order variables.
type Forall struct {
	Vars []string
	F    Formula
}

func (Atom) isFormula()   {}
func (Eq) isFormula()     {}
func (Not) isFormula()    {}
func (And) isFormula()    {}
func (Or) isFormula()     {}
func (Exists) isFormula() {}
func (Forall) isFormula() {}

// Convenience constructors.

// A builds an atom with variable arguments.
func A(pred string, vars ...string) Atom {
	args := make([]ast.Term, len(vars))
	for i, v := range vars {
		args[i] = ast.Var(v)
	}
	return Atom{Pred: pred, Args: args}
}

// Implies builds ¬a ∨ b.
func Implies(a, b Formula) Formula { return Or{Fs: []Formula{Not{a}, b}} }

func (a Atom) fmtInto(sb *strings.Builder) {
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
}

func (e Eq) fmtInto(sb *strings.Builder) {
	sb.WriteString(e.Left.String())
	sb.WriteByte('=')
	sb.WriteString(e.Right.String())
}

func (n Not) fmtInto(sb *strings.Builder) {
	sb.WriteString("¬")
	n.F.fmtInto(sb)
}

func fmtJoin(sb *strings.Builder, fs []Formula, op string) {
	sb.WriteByte('(')
	for i, f := range fs {
		if i > 0 {
			sb.WriteString(op)
		}
		f.fmtInto(sb)
	}
	sb.WriteByte(')')
}

func (a And) fmtInto(sb *strings.Builder) { fmtJoin(sb, a.Fs, " ∧ ") }
func (o Or) fmtInto(sb *strings.Builder)  { fmtJoin(sb, o.Fs, " ∨ ") }

func (e Exists) fmtInto(sb *strings.Builder) {
	sb.WriteString("∃" + strings.Join(e.Vars, ",") + ".")
	e.F.fmtInto(sb)
}

func (f Forall) fmtInto(sb *strings.Builder) {
	sb.WriteString("∀" + strings.Join(f.Vars, ",") + ".")
	f.F.fmtInto(sb)
}

// Format renders a formula.
func Format(f Formula) string {
	var sb strings.Builder
	f.fmtInto(&sb)
	return sb.String()
}

// --- model checking -----------------------------------------------------

// Eval model-checks f on db under the environment env (variable →
// universe id).  Quantifiers range over the active domain (the whole
// universe of db).  Atoms over relations missing from db are false;
// constants must be interned in db's universe or the atom is false
// (equalities with un-interned constants are false unless syntactically
// identical).
func Eval(db *relation.Database, f Formula, env map[string]int) bool {
	switch g := f.(type) {
	case Atom:
		rel := db.Relation(g.Pred)
		if rel == nil {
			return false
		}
		t := make(relation.Tuple, len(g.Args))
		for i, a := range g.Args {
			v, ok := termValue(db, a, env)
			if !ok {
				return false
			}
			t[i] = v
		}
		return rel.Has(t)
	case Eq:
		l, okl := termValue(db, g.Left, env)
		r, okr := termValue(db, g.Right, env)
		if !okl || !okr {
			return g.Left == g.Right
		}
		return l == r
	case Not:
		return !Eval(db, g.F, env)
	case And:
		for _, sub := range g.Fs {
			if !Eval(db, sub, env) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range g.Fs {
			if Eval(db, sub, env) {
				return true
			}
		}
		return false
	case Exists:
		return evalQuant(db, g.Vars, g.F, env, false)
	case Forall:
		return evalQuant(db, g.Vars, g.F, env, true)
	}
	panic(fmt.Sprintf("logic: unknown formula node %T", f))
}

func termValue(db *relation.Database, t ast.Term, env map[string]int) (int, bool) {
	if t.IsVar() {
		v, ok := env[t.Name]
		return v, ok
	}
	return db.Universe().Lookup(t.Name)
}

func evalQuant(db *relation.Database, vars []string, body Formula, env map[string]int, forall bool) bool {
	if len(vars) == 0 {
		return Eval(db, body, env)
	}
	n := db.Universe().Size()
	saved, had := env[vars[0]], false
	if _, ok := env[vars[0]]; ok {
		had = true
	}
	defer func() {
		if had {
			env[vars[0]] = saved
		} else {
			delete(env, vars[0])
		}
	}()
	for v := 0; v < n; v++ {
		env[vars[0]] = v
		sub := evalQuant(db, vars[1:], body, env, forall)
		if forall && !sub {
			return false
		}
		if !forall && sub {
			return true
		}
	}
	return forall
}

// --- ESO ----------------------------------------------------------------

// SOVar is a second-order (relation) variable.
type SOVar struct {
	Name  string
	Arity int
}

// ESO is an existential second-order sentence ∃S₁…Sₘ φ.
type ESO struct {
	SOVars []SOVar
	FO     Formula
}

// Format renders the sentence.
func (e *ESO) Format() string {
	var sb strings.Builder
	for _, s := range e.SOVars {
		fmt.Fprintf(&sb, "∃%s/%d.", s.Name, s.Arity)
	}
	sb.WriteString(Format(e.FO))
	return sb.String()
}

// EvalWitness decides D ⊨ ∃S̄ φ by enumerating all values of the
// relation variables (2^(Σ nᵃʳⁱᵗʸ) candidates).  It errors when the
// search space exceeds maxBits bits (default 20 when 0) — this
// exponential cost is exactly what Theorem 1 trades for fixpoint
// search.  It returns a witness database (db extended with the S̄
// values) when true.
func (e *ESO) EvalWitness(db *relation.Database, maxBits int) (bool, *relation.Database, error) {
	if maxBits == 0 {
		maxBits = 20
	}
	n := db.Universe().Size()
	type slot struct {
		so    SOVar
		tuple relation.Tuple
	}
	var slots []slot
	for _, so := range e.SOVars {
		if db.Relation(so.Name) != nil {
			return false, nil, fmt.Errorf("logic: SO variable %s collides with a database relation", so.Name)
		}
		count := 1
		for i := 0; i < so.Arity; i++ {
			count *= n
		}
		for _, t := range relation.Full(so.Arity, n).Tuples() {
			slots = append(slots, slot{so, t})
		}
		_ = count
	}
	if len(slots) > maxBits {
		return false, nil, fmt.Errorf("logic: witness search over %d atoms exceeds cap %d", len(slots), maxBits)
	}
	for mask := 0; mask < 1<<len(slots); mask++ {
		work := db.Clone()
		for _, so := range e.SOVars {
			work.MustEnsure(so.Name, so.Arity)
		}
		for i, sl := range slots {
			if mask&(1<<i) != 0 {
				work.Relation(sl.so.Name).Add(sl.tuple)
			}
		}
		if Eval(work, e.FO, map[string]int{}) {
			return true, work, nil
		}
	}
	return false, nil, nil
}

// FreeVars returns the free first-order variables of f, sorted.
func FreeVars(f Formula) []string {
	seen := make(map[string]bool)
	var walk func(Formula, map[string]bool)
	walk = func(f Formula, bound map[string]bool) {
		switch g := f.(type) {
		case Atom:
			for _, t := range g.Args {
				if t.IsVar() && !bound[t.Name] {
					seen[t.Name] = true
				}
			}
		case Eq:
			for _, t := range []ast.Term{g.Left, g.Right} {
				if t.IsVar() && !bound[t.Name] {
					seen[t.Name] = true
				}
			}
		case Not:
			walk(g.F, bound)
		case And:
			for _, s := range g.Fs {
				walk(s, bound)
			}
		case Or:
			for _, s := range g.Fs {
				walk(s, bound)
			}
		case Exists:
			walk(g.F, extend(bound, g.Vars))
		case Forall:
			walk(g.F, extend(bound, g.Vars))
		}
	}
	walk(f, map[string]bool{})
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func extend(bound map[string]bool, vars []string) map[string]bool {
	out := make(map[string]bool, len(bound)+len(vars))
	for k := range bound {
		out[k] = true
	}
	for _, v := range vars {
		out[v] = true
	}
	return out
}
