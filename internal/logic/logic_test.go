package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/relation"
)

// smallDB builds a random database over vocabulary E/2, V/1 with
// universe size n.
func smallDB(rng *rand.Rand, n int) *relation.Database {
	db := relation.NewDatabase()
	names := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		db.AddConstant(names[i])
	}
	db.MustEnsure("E", 2)
	db.MustEnsure("V", 1)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			db.AddFact("V", names[i])
		}
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				db.AddFact("E", names[i], names[j])
			}
		}
	}
	return db
}

// randomFormula builds a random FO sentence of bounded depth over
// E/2, V/1 and the given variable pool.
func randomFormula(rng *rand.Rand, depth int, scope []string) Formula {
	if depth == 0 || (len(scope) > 0 && rng.Intn(3) == 0) {
		// Leaf: atom or equality over in-scope variables.
		v := func() ast.Term { return ast.Var(scope[rng.Intn(len(scope))]) }
		if len(scope) == 0 {
			return Eq{ast.Const("a"), ast.Const("a")}
		}
		switch rng.Intn(3) {
		case 0:
			return Atom{Pred: "V", Args: []ast.Term{v()}}
		case 1:
			return Atom{Pred: "E", Args: []ast.Term{v(), v()}}
		default:
			return Eq{v(), v()}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return Not{randomFormula(rng, depth-1, scope)}
	case 1:
		return And{[]Formula{randomFormula(rng, depth-1, scope), randomFormula(rng, depth-1, scope)}}
	case 2:
		return Or{[]Formula{randomFormula(rng, depth-1, scope), randomFormula(rng, depth-1, scope)}}
	case 3:
		nv := string(rune('X' + len(scope)%3))
		name := nv + "v" // ensure upper-case initial, unique-ish
		name = []string{"X1", "Y1", "Z1", "X2", "Y2"}[len(scope)%5]
		return Exists{[]string{name}, randomFormula(rng, depth-1, append(scope, name))}
	default:
		name := []string{"X1", "Y1", "Z1", "X2", "Y2"}[len(scope)%5]
		return Forall{[]string{name}, randomFormula(rng, depth-1, append(scope, name))}
	}
}

func TestEvalBasics(t *testing.T) {
	db := relation.NewDatabase()
	db.AddFact("E", "a", "b")
	db.AddFact("V", "a")

	cases := []struct {
		f    Formula
		want bool
	}{
		{A("V", "X"), false}, // unbound variable: atom is false
		{Atom{"V", []ast.Term{ast.Const("a")}}, true},
		{Atom{"V", []ast.Term{ast.Const("b")}}, false},
		{Atom{"E", []ast.Term{ast.Const("a"), ast.Const("b")}}, true},
		{Not{Atom{"V", []ast.Term{ast.Const("b")}}}, true},
		{Exists{[]string{"X"}, A("V", "X")}, true},
		{Forall{[]string{"X"}, A("V", "X")}, false},
		{Forall{[]string{"X"}, Or{[]Formula{A("V", "X"), Not{A("V", "X")}}}}, true},
		{Exists{[]string{"X", "Y"}, A("E", "X", "Y")}, true},
		{Forall{[]string{"X"}, Exists{[]string{"Y"}, A("E", "X", "Y")}}, false},
		{Eq{ast.Const("a"), ast.Const("a")}, true},
		{Eq{ast.Const("a"), ast.Const("b")}, false},
		{Atom{"Missing", []ast.Term{ast.Const("a")}}, false},
	}
	for i, c := range cases {
		if got := Eval(db, c.f, map[string]int{}); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, Format(c.f), got, c.want)
		}
	}
}

func TestPropNNFPreservesEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := smallDB(rng, 2+rng.Intn(2))
		formula := randomFormula(rng, 3, nil)
		return Eval(db, formula, map[string]int{}) == Eval(db, NNF(formula), map[string]int{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropPrenexPreservesEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := smallDB(rng, 2+rng.Intn(2)) // nonempty universe (prenex assumption)
		formula := NNF(randomFormula(rng, 3, nil))
		blocks, matrix := Prenex(formula)
		return Eval(db, formula, map[string]int{}) == Eval(db, Rebuild(blocks, matrix), map[string]int{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPrenexMatrixQuantifierFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		formula := NNF(randomFormula(rng, 4, nil))
		_, matrix := Prenex(formula)
		if _, err := DNF(matrix); err != nil {
			t.Fatalf("matrix not quantifier-free or not NNF: %v\n%s", err, Format(matrix))
		}
	}
}

func TestPropDNFPreservesEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := smallDB(rng, 2)
		formula := NNF(randomFormula(rng, 3, nil))
		_, matrix := Prenex(formula)
		disj, err := DNF(matrix)
		if err != nil {
			return false
		}
		// Evaluate the DNF under all assignments of its free variables
		// and compare with the matrix.
		fv := FreeVars(matrix)
		env := map[string]int{}
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(fv) {
				want := Eval(db, matrix, env)
				got := false
				for _, conj := range disj {
					all := true
					for _, l := range conj {
						var f Formula
						if l.IsEq {
							f = Eq{l.Left, l.Right}
						} else {
							f = Atom{l.Pred, l.Args}
						}
						v := Eval(db, f, env)
						if l.Neg {
							v = !v
						}
						if !v {
							all = false
							break
						}
					}
					if all {
						got = true
						break
					}
				}
				return got == want
			}
			for v := 0; v < db.Universe().Size(); v++ {
				env[fv[i]] = v
				if !rec(i + 1) {
					return false
				}
			}
			delete(env, fv[i])
			return true
		}
		return rec(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestESOEvalWitness(t *testing.T) {
	// ∃S ∀x (V(x) → S(x)) ∧ (S(x) → V(x)): always true (S := V).
	e := &ESO{
		SOVars: []SOVar{{Name: "s", Arity: 1}},
		FO: Forall{[]string{"X"}, And{[]Formula{
			Implies(A("V", "X"), A("s", "X")),
			Implies(A("s", "X"), A("V", "X")),
		}}},
	}
	rng := rand.New(rand.NewSource(3))
	db := smallDB(rng, 3)
	ok, witness, err := e.EvalWitness(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("trivially satisfiable ESO reported false")
	}
	if !witness.Relation("s").Equal(db.Relation("V")) {
		t.Error("witness S should equal V")
	}

	// ∃S ∀x S(x) ∧ ¬S(x): unsatisfiable.
	e2 := &ESO{
		SOVars: []SOVar{{Name: "s", Arity: 1}},
		FO:     Forall{[]string{"X"}, And{[]Formula{A("s", "X"), Not{A("s", "X")}}}},
	}
	// Nonempty db required for ∀ to bite.
	ok2, _, err := e2.EvalWitness(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Error("unsatisfiable ESO reported true")
	}
}

func TestESOWitnessCapAndCollision(t *testing.T) {
	db := smallDB(rand.New(rand.NewSource(1)), 3)
	big := &ESO{SOVars: []SOVar{{Name: "s", Arity: 4}}, FO: Eq{ast.Const("a"), ast.Const("a")}}
	if _, _, err := big.EvalWitness(db, 10); err == nil {
		t.Error("expected cap error for 81 atoms > 10")
	}
	clash := &ESO{SOVars: []SOVar{{Name: "E", Arity: 2}}, FO: Eq{ast.Const("a"), ast.Const("a")}}
	if _, _, err := clash.EvalWitness(db, 0); err == nil {
		t.Error("expected collision error")
	}
}

func TestFreeVars(t *testing.T) {
	f := And{[]Formula{
		A("E", "X", "Y"),
		Exists{[]string{"Y"}, A("V", "Y")},
		Eq{ast.Var("Z"), ast.Const("a")},
	}}
	fv := FreeVars(f)
	if len(fv) != 3 || fv[0] != "X" || fv[1] != "Y" || fv[2] != "Z" {
		t.Errorf("FreeVars = %v", fv)
	}
	sentence := Forall{[]string{"X"}, Exists{[]string{"Y"}, A("E", "X", "Y")}}
	if len(FreeVars(sentence)) != 0 {
		t.Errorf("sentence has free vars: %v", FreeVars(sentence))
	}
}

func TestFormat(t *testing.T) {
	f := Forall{[]string{"X"}, Or{[]Formula{Not{A("V", "X")}, Exists{[]string{"Y"}, A("E", "X", "Y")}}}}
	got := Format(f)
	want := "∀X.(¬V(X) ∨ ∃Y.E(X,Y))"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}
