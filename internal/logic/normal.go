package logic

import (
	"fmt"

	"repro/internal/ast"
)

// NNF converts f to negation normal form: negations pushed to atoms
// and equalities, double negations eliminated.
func NNF(f Formula) Formula { return nnf(f, false) }

func nnf(f Formula, neg bool) Formula {
	switch g := f.(type) {
	case Atom, Eq:
		if neg {
			return Not{f}
		}
		return f
	case Not:
		return nnf(g.F, !neg)
	case And:
		fs := make([]Formula, len(g.Fs))
		for i, s := range g.Fs {
			fs[i] = nnf(s, neg)
		}
		if neg {
			return Or{fs}
		}
		return And{fs}
	case Or:
		fs := make([]Formula, len(g.Fs))
		for i, s := range g.Fs {
			fs[i] = nnf(s, neg)
		}
		if neg {
			return And{fs}
		}
		return Or{fs}
	case Exists:
		if neg {
			return Forall{g.Vars, nnf(g.F, true)}
		}
		return Exists{g.Vars, nnf(g.F, false)}
	case Forall:
		if neg {
			return Exists{g.Vars, nnf(g.F, true)}
		}
		return Forall{g.Vars, nnf(g.F, false)}
	}
	panic(fmt.Sprintf("logic: unknown formula node %T", f))
}

// Block is one quantifier block of a prenex prefix.
type Block struct {
	Forall bool
	Vars   []string
}

// Prenex converts an NNF formula into prenex normal form, renaming
// bound variables apart (fresh names q0, q1, …).  It returns the
// quantifier prefix (outermost first, consecutive same-kind blocks
// merged) and the quantifier-free matrix.
func Prenex(f Formula) ([]Block, Formula) {
	ctr := 0
	fresh := func() string {
		name := fmt.Sprintf("Q%d", ctr)
		ctr++
		return name
	}
	blocks, matrix := prenex(f, map[string]string{}, fresh)
	return mergeBlocks(blocks), matrix
}

func prenex(f Formula, sub map[string]string, fresh func() string) ([]Block, Formula) {
	rename := func(t ast.Term) ast.Term {
		if t.IsVar() {
			if nn, ok := sub[t.Name]; ok {
				return ast.Var(nn)
			}
		}
		return t
	}
	switch g := f.(type) {
	case Atom:
		args := make([]ast.Term, len(g.Args))
		for i, t := range g.Args {
			args[i] = rename(t)
		}
		return nil, Atom{g.Pred, args}
	case Eq:
		return nil, Eq{rename(g.Left), rename(g.Right)}
	case Not:
		// NNF: negation only over atoms/equalities.
		_, m := prenex(g.F, sub, fresh)
		return nil, Not{m}
	case And, Or:
		var fs []Formula
		isAnd := false
		if a, ok := g.(And); ok {
			fs, isAnd = a.Fs, true
		} else {
			fs = g.(Or).Fs
		}
		var blocks []Block
		ms := make([]Formula, len(fs))
		for i, s := range fs {
			b, m := prenex(s, sub, fresh)
			blocks = append(blocks, b...)
			ms[i] = m
		}
		if isAnd {
			return blocks, And{ms}
		}
		return blocks, Or{ms}
	case Exists, Forall:
		var vars []string
		var body Formula
		isAll := false
		if e, ok := g.(Exists); ok {
			vars, body = e.Vars, e.F
		} else {
			fa := g.(Forall)
			vars, body, isAll = fa.Vars, fa.F, true
		}
		sub2 := make(map[string]string, len(sub)+len(vars))
		for k, v := range sub {
			sub2[k] = v
		}
		renamed := make([]string, len(vars))
		for i, v := range vars {
			renamed[i] = fresh()
			sub2[v] = renamed[i]
		}
		blocks, m := prenex(body, sub2, fresh)
		return append([]Block{{Forall: isAll, Vars: renamed}}, blocks...), m
	}
	panic(fmt.Sprintf("logic: unknown formula node %T", f))
}

func mergeBlocks(blocks []Block) []Block {
	var out []Block
	for _, b := range blocks {
		if len(b.Vars) == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Forall == b.Forall {
			out[len(out)-1].Vars = append(out[len(out)-1].Vars, b.Vars...)
			continue
		}
		out = append(out, Block{Forall: b.Forall, Vars: append([]string{}, b.Vars...)})
	}
	return out
}

// Rebuild wraps a matrix with a quantifier prefix.
func Rebuild(blocks []Block, matrix Formula) Formula {
	f := matrix
	for i := len(blocks) - 1; i >= 0; i-- {
		if blocks[i].Forall {
			f = Forall{blocks[i].Vars, f}
		} else {
			f = Exists{blocks[i].Vars, f}
		}
	}
	return f
}

// Lit is one literal of a DNF conjunct: an atom, a negated atom, an
// equality, or a negated equality.
type Lit struct {
	Neg  bool
	IsEq bool
	// Atom form.
	Pred string
	Args []ast.Term
	// Equality form.
	Left, Right ast.Term
}

// ToASTLiteral converts the literal to a DATALOG¬ body literal.
func (l Lit) ToASTLiteral() ast.Literal {
	if l.IsEq {
		if l.Neg {
			return ast.Neq(l.Left, l.Right)
		}
		return ast.Eq(l.Left, l.Right)
	}
	a := ast.Atom{Pred: l.Pred, Args: l.Args}
	if l.Neg {
		return ast.Neg(a)
	}
	return ast.Pos(a)
}

// DNF converts a quantifier-free NNF matrix into disjunctive normal
// form: a list of conjunctions of literals.  Exponential in the worst
// case, as the textbook transformation is.
func DNF(matrix Formula) ([][]Lit, error) {
	switch g := matrix.(type) {
	case Atom:
		return [][]Lit{{{Pred: g.Pred, Args: g.Args}}}, nil
	case Eq:
		return [][]Lit{{{IsEq: true, Left: g.Left, Right: g.Right}}}, nil
	case Not:
		switch inner := g.F.(type) {
		case Atom:
			return [][]Lit{{{Neg: true, Pred: inner.Pred, Args: inner.Args}}}, nil
		case Eq:
			return [][]Lit{{{Neg: true, IsEq: true, Left: inner.Left, Right: inner.Right}}}, nil
		default:
			return nil, fmt.Errorf("logic: DNF input not in NNF (¬ over %T)", g.F)
		}
	case Or:
		var out [][]Lit
		for _, s := range g.Fs {
			d, err := DNF(s)
			if err != nil {
				return nil, err
			}
			out = append(out, d...)
		}
		return out, nil
	case And:
		out := [][]Lit{{}}
		for _, s := range g.Fs {
			d, err := DNF(s)
			if err != nil {
				return nil, err
			}
			var next [][]Lit
			for _, left := range out {
				for _, right := range d {
					conj := make([]Lit, 0, len(left)+len(right))
					conj = append(conj, left...)
					conj = append(conj, right...)
					next = append(next, conj)
				}
			}
			out = next
		}
		return out, nil
	case Exists, Forall:
		return nil, fmt.Errorf("logic: DNF input contains quantifiers")
	}
	return nil, fmt.Errorf("logic: unknown formula node %T", matrix)
}
