package relation

import (
	"fmt"
	"sort"
)

// Composite indexes.
//
// A composite index generalizes the per-column indexes of cols(): it
// maps the projection of each tuple onto a fixed subset of columns to
// the arena offsets of the tuples having that projection, so an
// equality probe on several columns at once costs one hash lookup
// instead of a single-column lookup plus per-tuple filtering.  The
// engine's join planner asks for the widest index covering the bound
// argument positions of a literal.
//
// Like the per-column indexes, composite indexes are built lazily on
// first probe, published atomically (so any number of readers may probe
// concurrently while one goroutine builds), and dropped wholesale by
// invalidate() on mutation.  Each Relation holds a small immutable map
// from a column-set bitmask to its index; adding an index replaces the
// map copy-on-write under mu, so established readers never observe a
// map being written.
//
// Projections are keyed exactly like relation storage: the packed
// uint64 encoding when the projected tuple packs (see key.go), the
// byte-string spill encoding otherwise.  A given projection always
// encodes the same way, so build and probe can never disagree on which
// of the two maps holds an entry.

// compIndex is one composite index: projection key → arena offsets,
// covering the first n arena entries.  Like the per-column indexes it
// stays exact under appends (offsets are monotone) and is extended by
// the arena suffix on the next probe rather than rebuilt.
type compIndex struct {
	n      int
	packed map[uint64][]int32
	spill  map[string][]int32
}

// compIndexSet is a generation-stamped immutable map of composite
// indexes by column bitmask: valid exactly while the relation's
// mutation generation still equals gen.  Individual indexes may cover
// different arena prefixes (they are built lazily at different times);
// each carries its own coverage length.
type compIndexSet struct {
	gen uint64
	m   map[uint64]*compIndex
}

// colsMask validates cols (strictly ascending, in range, below 64) and
// returns the bitmask identifying the index.
func (r *Relation) colsMask(cols []int) uint64 {
	if len(cols) == 0 {
		panic("relation: composite index over zero columns")
	}
	var m uint64
	prev := -1
	for _, c := range cols {
		if c < 0 || c >= r.arity {
			panic(fmt.Sprintf("relation: index column %d out of range for arity %d", c, r.arity))
		}
		if c <= prev {
			panic(fmt.Sprintf("relation: index columns %v not strictly ascending", cols))
		}
		if c >= 64 {
			panic(fmt.Sprintf("relation: composite index column %d exceeds the 64-column limit", c))
		}
		prev = c
		m |= 1 << uint(c)
	}
	return m
}

// compFor returns the composite index on cols, building it on first
// use, extending it when the relation has only grown since it was
// published, and rebuilding after a structural mutation.  Safe for
// concurrent use by readers: published sets and indexes are immutable,
// extension copies the key maps under mu and republishes atomically.
func (r *Relation) compFor(cols []int) *compIndex {
	mask := r.colsMask(cols)
	if p := r.cidx.Load(); p != nil && p.gen == r.gen {
		if ci, ok := p.m[mask]; ok && ci.n == len(r.arena) {
			return ci
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cidx.Load()
	var prev *compIndex
	if cur != nil && cur.gen == r.gen {
		if ci, ok := cur.m[mask]; ok {
			if ci.n == len(r.arena) {
				return ci
			}
			prev = ci // append-only growth: extend by the suffix
		}
	}
	ci := r.buildComp(cols, prev)
	next := make(map[uint64]*compIndex, 1)
	if cur != nil && cur.gen == r.gen {
		for k, v := range cur.m {
			next[k] = v
		}
	}
	next[mask] = ci
	r.cidx.Store(&compIndexSet{gen: r.gen, m: next})
	return ci
}

// buildComp groups arena offsets by projection key.  With prev nil it
// scans the whole arena; otherwise it copies prev's key maps and scans
// only the suffix prev does not cover.
func (r *Relation) buildComp(cols []int, prev *compIndex) *compIndex {
	ci := &compIndex{n: len(r.arena)}
	lo := 0
	if prev != nil {
		lo = prev.n
		ci.packed = make(map[uint64][]int32, len(prev.packed)+(ci.n-lo))
		for k, offs := range prev.packed {
			ci.packed[k] = offs
		}
		if prev.spill != nil {
			ci.spill = make(map[string][]int32, len(prev.spill))
			for k, offs := range prev.spill {
				ci.spill[k] = offs
			}
		}
	} else {
		ci.packed = make(map[uint64][]int32)
	}
	proj := make(Tuple, len(cols))
	for off := lo; off < len(r.arena); off++ {
		for i, c := range cols {
			proj[i] = r.arena[off][c]
		}
		if k, ok := packKey(proj); ok {
			ci.packed[k] = append(ci.packed[k], int32(off))
			continue
		}
		if ci.spill == nil {
			ci.spill = make(map[string][]int32)
		}
		sk := spillKey(proj)
		ci.spill[sk] = append(ci.spill[sk], int32(off))
	}
	return ci
}

// LookupCols returns the arena offsets of the tuples whose projection
// on cols equals vals (element i of vals constrains column cols[i]);
// resolve them with At.  cols must be strictly ascending.  The
// underlying composite index is built lazily and cached until the next
// mutation.  Callers must not mutate the returned slice.  Safe for
// concurrent use by readers.  The probe itself is allocation-free on
// the packed path; projections that spill (ids beyond the packed width)
// pay one key allocation per probe.
func (r *Relation) LookupCols(cols []int, vals []int) []int32 {
	ci := r.compFor(cols)
	if k, ok := packKey(Tuple(vals)); ok {
		return ci.packed[k]
	}
	if ci.spill == nil {
		return nil
	}
	return ci.spill[spillKey(Tuple(vals))]
}

// OffsetsInRange narrows an index offset list (as returned by Lookup or
// LookupCols, always ascending: indexes are built by one arena scan) to
// the offsets in [lo, hi) — the shard-aware form of an index probe, used
// when a literal's enumeration is split into arena-range shards.  The
// result aliases offs; callers must not mutate it.
func OffsetsInRange(offs []int32, lo, hi int32) []int32 {
	if hi <= lo {
		return nil
	}
	i := sort.Search(len(offs), func(i int) bool { return offs[i] >= lo })
	j := sort.Search(len(offs), func(j int) bool { return offs[j] >= hi })
	return offs[i:j]
}

// Distinct returns the number of distinct values appearing in column
// col — the statistic the join planner divides by when estimating the
// selectivity of an equality probe.  It shares the lazily built
// per-column indexes, so after the first call (or the first Lookup) it
// is O(1) until the next mutation.
func (r *Relation) Distinct(col int) int {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("relation: index column %d out of range for arity %d", col, r.arity))
	}
	return len(r.cols()[col])
}
