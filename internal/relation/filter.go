// filter.go — a blocked Bloom filter over tuple hashes.
//
// The partitioned evaluator's exchange path (internal/partition) fronts
// the exact accumulated-state membership probe with an approximate one:
// a Filter summarizing every tuple the accumulated state holds.  The
// probe direction is chosen so approximation can never lose a tuple —
// "definitely absent" skips the exact hash-map probe entirely (the
// tuple is surely new), while "maybe present" falls through to the
// exact AddNotIn probe, which drops duplicates exactly.  A false
// positive therefore costs one redundant map probe; it can never cause
// a genuinely-new tuple to be dropped, which is what a filter used in
// the opposite direction (drop on "maybe present") would risk.
//
// The layout is the classic split-block scheme: the filter is an array
// of 512-bit blocks (eight uint64 words, one cache line); a tuple maps
// to one block and sets one bit in each of the block's eight words.
// Every probe touches a single cache line regardless of the number of
// hash functions.  All bit positions derive from the one TupleHash the
// caller has already computed for partition routing, so the filter adds
// no hashing to the emit path.
//
// Concurrency: Filter has the plain map contract — any number of
// concurrent readers, or one writer with no readers.  The partitioned
// fixpoint driver only mutates filters between barrier-separated
// rounds, on the coordinator.
package relation

// filterWordsPerBlock is the block size in uint64 words: 8 words = 512
// bits = one cache line, probed with one bit per word.
const filterWordsPerBlock = 8

// filterBitsPerTuple sizes the filter: ~16 bits per expected tuple
// keeps the false-positive rate of the 8-probe split-block scheme well
// under 1%.
const filterBitsPerTuple = 16

// Filter is a blocked Bloom filter keyed by TupleHash.  The zero value
// is not usable; construct with NewFilter or FilterOf.
type Filter struct {
	words   []uint64
	nblk    uint64 // number of blocks, always a power of two
	n       int    // tuples added
	fillCap int    // sizing capacity; past it the FP rate degrades
}

// NewFilter returns a filter sized for the given expected number of
// tuples.
func NewFilter(capacity int) *Filter {
	if capacity < 256 {
		capacity = 256
	}
	blocks := uint64(1)
	want := uint64(capacity) * filterBitsPerTuple / (64 * filterWordsPerBlock)
	for blocks < want {
		blocks <<= 1
	}
	return &Filter{
		words:   make([]uint64, blocks*filterWordsPerBlock),
		nblk:    blocks,
		fillCap: capacity,
	}
}

// FilterOf builds a filter over every tuple of r, sized for the
// relation plus the expected headroom.
func FilterOf(r *Relation, headroom int) *Filter {
	f := NewFilter(r.Len() + headroom)
	for _, t := range r.arena {
		f.AddHash(TupleHash(t))
	}
	return f
}

// blockBase maps a hash to its block's first word.  The block selector
// remixes the hash so it stays independent of the probe bits (which use
// the low 48 bits directly).
func (f *Filter) blockBase(h uint64) uint64 {
	return (((h * 0x9e3779b97f4a7c15) >> 16) & (f.nblk - 1)) * filterWordsPerBlock
}

// AddHash records a tuple by its TupleHash.
func (f *Filter) AddHash(h uint64) {
	base := f.blockBase(h)
	for i := uint64(0); i < filterWordsPerBlock; i++ {
		f.words[base+i] |= 1 << ((h >> (6 * i)) & 63)
	}
	f.n++
}

// Add records a tuple.
func (f *Filter) Add(t Tuple) { f.AddHash(TupleHash(t)) }

// MayContainHash reports whether a tuple with this hash may have been
// added.  False is definitive: no added tuple has this hash.  True is
// approximate and must be confirmed by an exact probe.
func (f *Filter) MayContainHash(h uint64) bool {
	base := f.blockBase(h)
	for i := uint64(0); i < filterWordsPerBlock; i++ {
		if f.words[base+i]&(1<<((h>>(6*i))&63)) == 0 {
			return false
		}
	}
	return true
}

// MayContain is MayContainHash over a tuple.
func (f *Filter) MayContain(t Tuple) bool { return f.MayContainHash(TupleHash(t)) }

// Len returns the number of tuples added.
func (f *Filter) Len() int { return f.n }

// Overloaded reports whether the filter holds more tuples than it was
// sized for, i.e. its false-positive rate is degrading and the owner
// should rebuild it larger (see FilterOf).
func (f *Filter) Overloaded() bool { return f.n > f.fillCap }
