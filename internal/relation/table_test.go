package relation

import (
	"math/rand"
	"testing"
)

// setPackedMode flips the process-wide packed storage mode for one
// test and restores it afterwards.
func setPackedMode(t *testing.T, tableOn bool) {
	t.Helper()
	prev := PackedTableEnabled()
	SetDefaultPackedTable(tableOn)
	t.Cleanup(func() { SetDefaultPackedTable(prev) })
}

// homeKeys brute-forces n distinct keys whose probe home slot under
// the given mask is home — the collision clusters the backward-shift
// deletion tests need.
func homeKeys(mask uint64, home uint64, n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(1); len(keys) < n; k++ {
		if mix64(k)&mask == home {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestTableBasics(t *testing.T) {
	tb := newTable(0)
	if tb.Len() != 0 {
		t.Fatalf("new table Len = %d", tb.Len())
	}
	for i := uint64(0); i < 100; i++ {
		tb.putHash(i, mix64(i), int32(i))
	}
	if tb.Len() != 100 {
		t.Fatalf("Len = %d after 100 inserts", tb.Len())
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := tb.getHash(i, mix64(i))
		if !ok || v != int32(i) {
			t.Fatalf("get(%d) = %d, %v", i, v, ok)
		}
	}
	if _, ok := tb.getHash(100, mix64(100)); ok {
		t.Error("get of absent key succeeded")
	}
	// Upsert: Remove's swap-last path rewrites offsets in place.
	tb.putHash(7, mix64(7), 999)
	if v, _ := tb.getHash(7, mix64(7)); v != 999 {
		t.Errorf("upsert: get(7) = %d, want 999", v)
	}
	if tb.Len() != 100 {
		t.Errorf("upsert changed Len to %d", tb.Len())
	}
	if !tb.deleteHash(7, mix64(7)) {
		t.Error("delete of present key failed")
	}
	if tb.deleteHash(7, mix64(7)) {
		t.Error("delete of absent key succeeded")
	}
	if _, ok := tb.getHash(7, mix64(7)); ok {
		t.Error("deleted key still present")
	}
	if tb.Len() != 99 {
		t.Errorf("Len = %d after delete", tb.Len())
	}
}

// TestTableBackwardShift engineers probe-chain collisions and deletes
// from the middle of the cluster: every surviving key must remain
// findable (no tombstones to hide behind — the chain is compacted).
func TestTableBackwardShift(t *testing.T) {
	for _, home := range []uint64{3, tableMinCap - 1} { // interior + wraparound cluster
		tb := newTable(0)
		keys := homeKeys(tb.mask, home, 5)
		for i, k := range keys {
			tb.putHash(k, mix64(k), int32(i))
		}
		// Delete the middle, then the head, re-probing all after each.
		for _, victim := range []int{2, 0} {
			if !tb.deleteHash(keys[victim], mix64(keys[victim])) {
				t.Fatalf("home %d: delete keys[%d] failed", home, victim)
			}
			keys = append(keys[:victim], keys[victim+1:]...)
			for _, k := range keys {
				if _, ok := tb.getHash(k, mix64(k)); !ok {
					t.Fatalf("home %d: key %d lost after backward shift", home, k)
				}
			}
		}
	}
}

// TestTableVsMapDifferential drives a Table and a map[uint64]int32
// through the same randomized put/get/delete stream and requires
// identical observable behavior, across growth boundaries.
func TestTableVsMapDifferential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := newTable(0)
		m := map[uint64]int32{}
		// Small key space forces hits, upserts, and delete-of-present.
		key := func() uint64 { return uint64(rng.Intn(400)) }
		for op := 0; op < 5000; op++ {
			switch k := key(); rng.Intn(4) {
			case 0, 1: // put (upsert)
				v := int32(rng.Intn(1 << 20))
				tb.putHash(k, mix64(k), v)
				m[k] = v
			case 2: // get
				v, ok := tb.getHash(k, mix64(k))
				wv, wok := m[k]
				if ok != wok || (ok && v != wv) {
					t.Fatalf("seed %d op %d: get(%d) = (%d,%v), map (%d,%v)", seed, op, k, v, ok, wv, wok)
				}
			case 3: // delete
				_, wok := m[k]
				if got := tb.deleteHash(k, mix64(k)); got != wok {
					t.Fatalf("seed %d op %d: delete(%d) = %v, map %v", seed, op, k, got, wok)
				}
				delete(m, k)
			}
			if tb.Len() != len(m) {
				t.Fatalf("seed %d op %d: Len = %d, map %d", seed, op, tb.Len(), len(m))
			}
		}
		// Full sweep: every map entry findable, every table entry in the map.
		for k, v := range m {
			if got, ok := tb.getHash(k, mix64(k)); !ok || got != v {
				t.Fatalf("seed %d: final get(%d) = (%d,%v), want %d", seed, k, got, ok, v)
			}
		}
		tb.each(func(k uint64, v int32) bool {
			if wv, ok := m[k]; !ok || wv != v {
				t.Fatalf("seed %d: table holds stale (%d,%d)", seed, k, v)
			}
			return true
		})
	}
}

// TestRelationTableVsMapDifferential is the relation-level property
// test: identical Add/Has/Remove/Snapshot-detach interleavings on a
// table-mode and a map-mode relation must observe identical sets,
// including through snapshot isolation (a Remove after Snapshot
// detaches the live storage in both modes).
func TestRelationTableVsMapDifferential(t *testing.T) {
	run := func(tableOn bool, seed int64, snaps *[]*Relation) *Relation {
		setPackedMode(t, tableOn)
		rng := rand.New(rand.NewSource(seed))
		r := New(2)
		for op := 0; op < 3000; op++ {
			tup := Tuple{rng.Intn(30), rng.Intn(30)}
			switch rng.Intn(6) {
			case 0, 1, 2:
				r.Add(tup)
			case 3:
				r.AddNotInHash(tup, TupleHash(tup), nil)
			case 4:
				r.Remove(tup)
			case 5:
				*snaps = append(*snaps, r.Snapshot())
			}
		}
		return r
	}
	for seed := int64(0); seed < 4; seed++ {
		var tsnaps, msnaps []*Relation
		tr := run(true, seed, &tsnaps)
		mr := run(false, seed, &msnaps)
		if !tr.Equal(mr) {
			t.Fatalf("seed %d: table and map relations diverge: %d vs %d tuples", seed, tr.Len(), mr.Len())
		}
		if len(tsnaps) != len(msnaps) {
			t.Fatalf("seed %d: snapshot counts diverge", seed)
		}
		for i := range tsnaps {
			if !tsnaps[i].Equal(msnaps[i]) {
				t.Fatalf("seed %d: snapshot %d diverges: %d vs %d tuples", seed, i, tsnaps[i].Len(), msnaps[i].Len())
			}
		}
	}
}

// TestTableZeroAllocs is the dedup-path allocation guard: membership
// probes (hit and miss), duplicate-rejecting inserts, and hash-reusing
// probes against a pre-sized relation must not allocate at all.
func TestTableZeroAllocs(t *testing.T) {
	setPackedMode(t, true)
	r := New(2)
	r.ReserveHint(2048)
	for i := 0; i < 1000; i++ {
		r.Add(Tuple{i, i + 1})
	}
	hit, miss := Tuple{500, 501}, Tuple{500, 502}
	hh, hm := TupleHash(hit), TupleHash(miss)
	cases := []struct {
		name string
		f    func()
	}{
		{"Has/hit", func() { r.Has(hit) }},
		{"Has/miss", func() { r.Has(miss) }},
		{"HasHash/hit", func() { r.HasHash(hit, hh) }},
		{"HasHash/miss", func() { r.HasHash(miss, hm) }},
		{"Add/dup", func() { r.Add(hit) }},
		{"AddNotIn/dup", func() { r.AddNotIn(hit, nil) }},
		{"AddNotInHash/dup", func() { r.AddNotInHash(hit, hh, nil) }},
		{"AddNotIn/filtered", func() { r.AddNotIn(hit, r) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.f); allocs != 0 {
			t.Errorf("%s: %.1f allocs per probe, want 0", c.name, allocs)
		}
	}
}

func TestTableReserveReset(t *testing.T) {
	tb := newTable(0)
	tb.Reserve(1000)
	capAfter := len(tb.ctrl)
	if capAfter < tableCapFor(1000) {
		t.Fatalf("Reserve(1000) left capacity %d", capAfter)
	}
	for i := uint64(0); i < 1000; i++ {
		tb.putHash(i, mix64(i), int32(i))
	}
	if len(tb.ctrl) != capAfter {
		t.Errorf("reserved table grew from %d to %d", capAfter, len(tb.ctrl))
	}
	// Reserve keeps entries when growing an occupied table.
	tb.Reserve(5000)
	for i := uint64(0); i < 1000; i++ {
		if v, ok := tb.getHash(i, mix64(i)); !ok || v != int32(i) {
			t.Fatalf("Reserve lost key %d", i)
		}
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Errorf("Reset left Len = %d", tb.Len())
	}
	if _, ok := tb.getHash(3, mix64(3)); ok {
		t.Error("Reset left key findable")
	}
	before := len(tb.ctrl)
	tb.putHash(3, mix64(3), 1)
	if len(tb.ctrl) != before {
		t.Error("insert after Reset reallocated")
	}
}

// TestRelationResetRecycles covers the freelist contract: Reset keeps
// capacity, refuses shared storage, and a recycled relation behaves
// like a fresh one.
func TestRelationResetRecycles(t *testing.T) {
	for _, tableOn := range []bool{true, false} {
		setPackedMode(t, tableOn)
		r := New(2)
		for i := 0; i < 100; i++ {
			r.Add(Tuple{i, i})
		}
		big := 1 << 40
		r.Add(Tuple{big, 1}) // exercise the spill map too
		if !r.Reset() {
			t.Fatal("Reset of exclusive relation refused")
		}
		if r.Len() != 0 || r.Has(Tuple{3, 3}) || r.Has(Tuple{big, 1}) {
			t.Fatal("Reset left contents visible")
		}
		r.Add(Tuple{1, 2})
		if r.Len() != 1 || !r.Has(Tuple{1, 2}) {
			t.Fatal("recycled relation broken")
		}
		snap := r.Snapshot()
		if r.Reset() {
			t.Fatal("Reset of snapshotted relation must refuse")
		}
		if !snap.Has(Tuple{1, 2}) {
			t.Fatal("snapshot disturbed")
		}
		if !snap.Clone().Reset() {
			t.Fatal("Reset of a fresh clone refused")
		}
	}
}

func BenchmarkTableProbe(b *testing.B) {
	const n = 1 << 16
	keys := make([]uint64, n)
	hashes := make([]uint64, n)
	missKeys := make([]uint64, n)
	missHashes := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
		hashes[i] = mix64(keys[i])
		missKeys[i] = uint64(i + n)
		missHashes[i] = mix64(missKeys[i])
	}
	b.Run("hit", func(b *testing.B) {
		tb := newTable(n)
		for i := range keys {
			tb.putHash(keys[i], hashes[i], int32(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i & (n - 1)
			if _, ok := tb.getHash(keys[j], hashes[j]); !ok {
				b.Fatal("miss on present key")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		tb := newTable(n)
		for i := range keys {
			tb.putHash(keys[i], hashes[i], int32(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i & (n - 1)
			if _, ok := tb.getHash(missKeys[j], missHashes[j]); ok {
				b.Fatal("hit on absent key")
			}
		}
	})
	b.Run("grow", func(b *testing.B) {
		// Insert-heavy: builds the table from minimum capacity through
		// every rehash, the cost amortized over b.N inserts.
		for i := 0; i < b.N; i += n {
			tb := newTable(0)
			m := n
			if rem := b.N - i; rem < m {
				m = rem
			}
			for j := 0; j < m; j++ {
				tb.putHash(keys[j], hashes[j], int32(j))
			}
		}
	})
	b.Run("map-hit", func(b *testing.B) {
		// The oracle baseline for the hit benchmark.
		m := make(map[uint64]int32, n)
		for i := range keys {
			m[keys[i]] = int32(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i & (n - 1)
			if _, ok := m[keys[j]]; !ok {
				b.Fatal("miss on present key")
			}
		}
	})
}
