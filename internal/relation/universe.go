// Package relation implements the relational substrate of the
// reproduction: interned universes of constants, tuples, set-semantics
// relations with per-column hash indexes, and named databases.
//
// The paper evaluates DATALOG¬ programs over finite databases
// D = (A, R₁, …, Rₗ).  A Universe is the finite set A with constants
// interned to dense integers, a Relation is a finite set of tuples over
// A, and a Database bundles a universe with named relations.  All
// iteration orders exposed by this package are deterministic (sorted),
// so every layer built on top is reproducible bit-for-bit.
package relation

import (
	"fmt"
	"sort"
)

// Universe interns constant names to dense non-negative integers.  It is
// the finite universe A of a database: every value that can appear in a
// tuple is an element of the universe.  The zero value is not usable;
// create universes with NewUniverse.
//
// Density matters beyond hygiene: Relation's packed tuple keys devote
// ⌊64/arity⌋ bits to each element (see PackedCapacity), so ids assigned
// compactly from 0 keep every realistic universe on the allocation-free
// fast path.
type Universe struct {
	names []string
	index map[string]int
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{index: make(map[string]int)}
}

// Intern returns the dense id for name, adding it to the universe if it
// is not already present.  Ids are assigned in first-interned order,
// starting from 0.
func (u *Universe) Intern(name string) int {
	if id, ok := u.index[name]; ok {
		return id
	}
	id := len(u.names)
	u.names = append(u.names, name)
	u.index[name] = id
	return id
}

// Lookup reports the id for name and whether the name is interned.
func (u *Universe) Lookup(name string) (int, bool) {
	id, ok := u.index[name]
	return id, ok
}

// Name returns the constant name for id.  It panics if id is out of
// range, which always indicates a bug in the caller.
func (u *Universe) Name(id int) string {
	if id < 0 || id >= len(u.names) {
		panic(fmt.Sprintf("relation: universe id %d out of range [0,%d)", id, len(u.names)))
	}
	return u.names[id]
}

// Size returns the number of interned constants, |A|.
func (u *Universe) Size() int { return len(u.names) }

// Names returns a copy of all interned names in id order.
func (u *Universe) Names() []string {
	out := make([]string, len(u.names))
	copy(out, u.names)
	return out
}

// Elements returns all ids 0..Size()-1, the active domain of the
// database.  The slice is freshly allocated.
func (u *Universe) Elements() []int {
	out := make([]int, len(u.names))
	for i := range out {
		out[i] = i
	}
	return out
}

// Clone returns a deep copy of the universe.
func (u *Universe) Clone() *Universe {
	c := &Universe{
		names: make([]string, len(u.names)),
		index: make(map[string]int, len(u.index)),
	}
	copy(c.names, u.names)
	for k, v := range u.index {
		c.index[k] = v
	}
	return c
}

// SortedNames returns the interned names in lexicographic order.  Useful
// for deterministic printing.
func (u *Universe) SortedNames() []string {
	out := u.Names()
	sort.Strings(out)
	return out
}
