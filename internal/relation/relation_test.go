package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniverseIntern(t *testing.T) {
	u := NewUniverse()
	a := u.Intern("a")
	b := u.Intern("b")
	if a == b {
		t.Fatalf("distinct names interned to same id %d", a)
	}
	if got := u.Intern("a"); got != a {
		t.Errorf("re-intern a = %d, want %d", got, a)
	}
	if u.Size() != 2 {
		t.Errorf("Size = %d, want 2", u.Size())
	}
	if u.Name(a) != "a" || u.Name(b) != "b" {
		t.Errorf("Name round-trip failed: %q %q", u.Name(a), u.Name(b))
	}
	if _, ok := u.Lookup("c"); ok {
		t.Error("Lookup of absent name succeeded")
	}
	if id, ok := u.Lookup("b"); !ok || id != b {
		t.Errorf("Lookup(b) = %d,%v", id, ok)
	}
}

func TestUniverseElements(t *testing.T) {
	u := NewUniverse()
	for _, s := range []string{"x", "y", "z"} {
		u.Intern(s)
	}
	el := u.Elements()
	if len(el) != 3 {
		t.Fatalf("Elements len = %d", len(el))
	}
	for i, v := range el {
		if v != i {
			t.Errorf("Elements[%d] = %d", i, v)
		}
	}
}

func TestUniverseClone(t *testing.T) {
	u := NewUniverse()
	u.Intern("a")
	c := u.Clone()
	c.Intern("b")
	if u.Size() != 1 || c.Size() != 2 {
		t.Errorf("clone not independent: %d %d", u.Size(), c.Size())
	}
}

func TestUniverseNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Name(-1) did not panic")
		}
	}()
	NewUniverse().Name(-1)
}

func TestTupleKeyUnambiguous(t *testing.T) {
	// (1,23) and (12,3) must not collide.
	a := Tuple{1, 23}
	b := Tuple{12, 3}
	if a.Key() == b.Key() {
		t.Fatalf("key collision: %q", a.Key())
	}
	// Large values.
	c := Tuple{1 << 20, 0}
	d := Tuple{0, 1 << 20}
	if c.Key() == d.Key() {
		t.Fatalf("key collision on large values")
	}
}

func TestTupleCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{}, Tuple{}, 0},
		{Tuple{1}, Tuple{1}, 0},
		{Tuple{1}, Tuple{2}, -1},
		{Tuple{2}, Tuple{1}, 1},
		{Tuple{1, 2}, Tuple{1, 3}, -1},
		{Tuple{1}, Tuple{1, 0}, -1},
		{Tuple{5, 5}, Tuple{5}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTupleProjectConcat(t *testing.T) {
	tu := Tuple{10, 20, 30}
	if got := tu.Project([]int{2, 0}); !got.Equal(Tuple{30, 10}) {
		t.Errorf("Project = %v", got)
	}
	if got := tu.Concat(Tuple{40}); !got.Equal(Tuple{10, 20, 30, 40}) {
		t.Errorf("Concat = %v", got)
	}
}

func TestRelationAddHasRemove(t *testing.T) {
	r := New(2)
	if !r.Add(Tuple{0, 1}) {
		t.Error("first Add returned false")
	}
	if r.Add(Tuple{0, 1}) {
		t.Error("duplicate Add returned true")
	}
	if !r.Has(Tuple{0, 1}) {
		t.Error("Has failed after Add")
	}
	if r.Has(Tuple{1, 0}) {
		t.Error("Has on absent tuple")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Remove(Tuple{0, 1}) || r.Len() != 0 {
		t.Error("Remove failed")
	}
	if r.Remove(Tuple{0, 1}) {
		t.Error("Remove of absent tuple returned true")
	}
}

func TestRelationArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with wrong arity did not panic")
		}
	}()
	New(2).Add(Tuple{1})
}

func TestRelationAddClonesInput(t *testing.T) {
	r := New(2)
	tu := Tuple{3, 4}
	r.Add(tu)
	tu[0] = 99
	if !r.Has(Tuple{3, 4}) {
		t.Error("relation was affected by caller mutation of added tuple")
	}
}

func TestRelationTuplesSorted(t *testing.T) {
	r := New(1)
	for _, v := range []int{5, 1, 3, 2, 4} {
		r.Add(Tuple{v})
	}
	ts := r.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) >= 0 {
			t.Fatalf("Tuples not sorted: %v", ts)
		}
	}
}

func TestRelationSetOps(t *testing.T) {
	a := FromTuples(1, []Tuple{{1}, {2}, {3}})
	b := FromTuples(1, []Tuple{{2}, {3}, {4}})

	if got := a.Union(b); got.Len() != 4 {
		t.Errorf("Union len = %d", got.Len())
	}
	if got := a.Intersect(b); got.Len() != 2 || !got.Has(Tuple{2}) || !got.Has(Tuple{3}) {
		t.Errorf("Intersect = %v", got.Tuples())
	}
	if got := a.Diff(b); got.Len() != 1 || !got.Has(Tuple{1}) {
		t.Errorf("Diff = %v", got.Tuples())
	}
	if !a.Intersect(b).SubsetOf(a) || !a.Intersect(b).SubsetOf(b) {
		t.Error("intersection not a subset of operands")
	}
	if a.Equal(b) {
		t.Error("unequal relations reported Equal")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestRelationUnionWithCount(t *testing.T) {
	a := FromTuples(1, []Tuple{{1}, {2}})
	b := FromTuples(1, []Tuple{{2}, {3}})
	if got := a.UnionWith(b); got != 1 {
		t.Errorf("UnionWith added %d, want 1", got)
	}
	if a.Len() != 3 {
		t.Errorf("post-union Len = %d", a.Len())
	}
}

func TestRelationIndex(t *testing.T) {
	r := FromTuples(2, []Tuple{{1, 2}, {1, 3}, {2, 3}})
	if got := len(r.Lookup(0, 1)); got != 2 {
		t.Errorf("Lookup(0,1) = %d entries", got)
	}
	if got := len(r.Lookup(0, 2)); got != 1 {
		t.Errorf("Lookup(0,2) = %d entries", got)
	}
	if got := len(r.Lookup(1, 3)); got != 2 {
		t.Errorf("Lookup(1,3) = %d entries", got)
	}
	// Mutation invalidates the cache.
	r.Add(Tuple{1, 9})
	if got := len(r.Lookup(0, 1)); got != 3 {
		t.Errorf("stale index after Add: %d", got)
	}
}

func TestRelationZeroArity(t *testing.T) {
	r := New(0)
	if !r.Empty() {
		t.Error("fresh 0-ary relation not empty")
	}
	r.Add(Tuple{})
	if r.Len() != 1 || !r.Has(Tuple{}) {
		t.Error("0-ary relation does not hold empty tuple")
	}
	if r.Add(Tuple{}) {
		t.Error("duplicate empty tuple added")
	}
}

func TestFull(t *testing.T) {
	r := Full(2, 3)
	if r.Len() != 9 {
		t.Errorf("Full(2,3) len = %d, want 9", r.Len())
	}
	if !r.Has(Tuple{2, 2}) || !r.Has(Tuple{0, 0}) {
		t.Error("Full missing corner tuples")
	}
	if got := Full(0, 5); got.Len() != 1 {
		t.Errorf("Full(0,5) len = %d, want 1", got.Len())
	}
	if got := Full(3, 1); got.Len() != 1 {
		t.Errorf("Full(3,1) len = %d, want 1", got.Len())
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	if err := db.AddFact("E", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddFact("E", "b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddFact("E", "a", "b"); err != nil {
		t.Fatal(err) // duplicate is fine
	}
	e := db.Relation("E")
	if e == nil || e.Len() != 2 {
		t.Fatalf("E = %v", e)
	}
	if db.Universe().Size() != 3 {
		t.Errorf("universe size = %d, want 3", db.Universe().Size())
	}
	if _, err := db.Ensure("E", 3); err == nil {
		t.Error("Ensure with conflicting arity did not error")
	}
	if db.Relation("missing") != nil {
		t.Error("missing relation not nil")
	}
}

func TestDatabaseClone(t *testing.T) {
	db := NewDatabase()
	db.AddFact("E", "a", "b")
	c := db.Clone()
	c.AddFact("E", "x", "y")
	if db.Relation("E").Len() != 1 {
		t.Error("clone mutation leaked into original")
	}
	if c.Relation("E").Len() != 2 {
		t.Error("clone missing added fact")
	}
	if c.Universe().Size() != 4 {
		t.Errorf("clone universe size = %d", c.Universe().Size())
	}
}

func TestDatabaseString(t *testing.T) {
	db := NewDatabase()
	db.AddFact("E", "a", "b")
	db.AddFact("V", "a")
	s := db.String()
	want := "E/2 = {(a,b)}\nV/1 = {(a)}\n"
	if s != want {
		t.Errorf("String = %q, want %q", s, want)
	}
}

// randomRelation builds a pseudo-random unary relation over [0,n) from a
// seed, for property tests.
func randomRelation(seed int64, n int) *Relation {
	rng := rand.New(rand.NewSource(seed))
	r := New(1)
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			r.Add(Tuple{v})
		}
	}
	return r
}

func TestPropSetAlgebraLaws(t *testing.T) {
	// Union/Intersect/Diff obey the standard Boolean-algebra laws.
	f := func(sa, sb, sc int64) bool {
		const n = 12
		a := randomRelation(sa, n)
		b := randomRelation(sb, n)
		c := randomRelation(sc, n)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		if !a.Intersect(b.Intersect(c)).Equal(a.Intersect(b).Intersect(c)) {
			return false
		}
		// Distributivity.
		if !a.Intersect(b.Union(c)).Equal(a.Intersect(b).Union(a.Intersect(c))) {
			return false
		}
		// Diff identities.
		if !a.Diff(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		if !a.Diff(a).Empty() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropIndexConsistent(t *testing.T) {
	// Every tuple reachable through every column index; index totals
	// match relation size.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(2)
		for i := 0; i < 30; i++ {
			r.Add(Tuple{rng.Intn(6), rng.Intn(6)})
		}
		for col := 0; col < 2; col++ {
			total := 0
			for v := 0; v < 6; v++ {
				for _, off := range r.Lookup(col, v) {
					tu := r.At(off)
					if tu[col] != v {
						return false
					}
					if !r.Has(tu) {
						return false
					}
					total++
				}
			}
			if total != r.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropTupleKeyInjective(t *testing.T) {
	f := func(a, b []uint8) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = int(v)
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = int(v)
		}
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
