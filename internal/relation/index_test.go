package relation

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// naiveLookupCols is the reference implementation: scan every tuple and
// keep the offsets whose projection matches vals.
func naiveLookupCols(r *Relation, cols, vals []int) []int32 {
	var out []int32
	for off := 0; off < r.Len(); off++ {
		t := r.At(int32(off))
		ok := true
		for i, c := range cols {
			if t[c] != vals[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, int32(off))
		}
	}
	return out
}

func sortedCopy(offs []int32) []int32 {
	out := append([]int32{}, offs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalOffsets(a, b []int32) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAllProbes compares LookupCols against the naive scan for every
// column subset and every value combination present in the relation
// (plus one absent combination).
func checkAllProbes(t *testing.T, r *Relation, label string) {
	t.Helper()
	subsets := [][]int{}
	for mask := 1; mask < 1<<r.Arity(); mask++ {
		var cols []int
		for c := 0; c < r.Arity(); c++ {
			if mask&(1<<c) != 0 {
				cols = append(cols, c)
			}
		}
		subsets = append(subsets, cols)
	}
	for _, cols := range subsets {
		for off := 0; off < r.Len(); off++ {
			vals := make([]int, len(cols))
			for i, c := range cols {
				vals[i] = r.At(int32(off))[c]
			}
			got := r.LookupCols(cols, vals)
			want := naiveLookupCols(r, cols, vals)
			if !equalOffsets(got, want) {
				t.Fatalf("%s: LookupCols(%v, %v) = %v, want %v", label, cols, vals, got, want)
			}
		}
		absent := make([]int, len(cols))
		for i := range absent {
			absent[i] = 1 << 20 // never interned by these tests
		}
		if got := r.LookupCols(cols, absent); len(got) != 0 {
			t.Fatalf("%s: LookupCols(%v, absent) = %v, want empty", label, cols, got)
		}
	}
}

func randomIdxRelation(rng *rand.Rand, arity, n, domain int) *Relation {
	r := New(arity)
	for i := 0; i < n; i++ {
		t := make(Tuple, arity)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		r.Add(t)
	}
	return r
}

func TestLookupColsMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, arity := range []int{1, 2, 3, 4} {
		r := randomIdxRelation(rng, arity, 60, 5)
		checkAllProbes(t, r, "fresh")
	}
}

func TestLookupColsSpillPath(t *testing.T) {
	// Arity 4 with huge ids: full-tuple projections exceed the 16-bit
	// packed width and must take the spill encoding; narrow projections
	// still pack.  Build/probe consistency is what is under test.
	r := New(4)
	big := 1 << 40
	r.Add(Tuple{big, 1, big + 2, 3})
	r.Add(Tuple{big, 1, big + 5, 7})
	r.Add(Tuple{4, 1, 2, 3})
	if got := r.LookupCols([]int{0, 2}, []int{big, big + 2}); len(got) != 1 || got[0] != 0 {
		t.Errorf("spill probe = %v, want [0]", got)
	}
	if got := r.LookupCols([]int{1}, []int{1}); len(got) != 3 {
		t.Errorf("packed probe = %v, want 3 offsets", got)
	}
	checkAllProbes(t, r, "spill")
}

// TestCompositeInvalidation exercises every mutating entry point and
// re-verifies probes afterwards: stale composite indexes would return
// offsets of removed or relocated tuples.
func TestCompositeInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomIdxRelation(rng, 3, 40, 4)
	checkAllProbes(t, r, "initial")

	// Add: new tuples must become visible to existing indexes.
	for i := 0; i < 10; i++ {
		r.Add(Tuple{rng.Intn(4), rng.Intn(4), rng.Intn(4) + 4})
	}
	checkAllProbes(t, r, "after Add")

	// Remove: swaps the last tuple into the vacated arena slot, so a
	// stale index would report wrong offsets, not just extra ones.
	for i := 0; i < 10 && r.Len() > 0; i++ {
		victim := r.At(int32(rng.Intn(r.Len()))).Clone()
		if !r.Remove(victim) {
			t.Fatalf("Remove(%v) = false for present tuple", victim)
		}
	}
	checkAllProbes(t, r, "after Remove")

	// UnionWith invalidates once after the bulk insert.
	other := randomIdxRelation(rng, 3, 25, 6)
	r.LookupCols([]int{0, 1}, []int{0, 0}) // force a build to go stale
	r.UnionWith(other)
	checkAllProbes(t, r, "after UnionWith")
}

func TestDistinct(t *testing.T) {
	r := New(2)
	r.Add(Tuple{0, 0})
	r.Add(Tuple{0, 1})
	r.Add(Tuple{1, 2})
	if got := r.Distinct(0); got != 2 {
		t.Errorf("Distinct(0) = %d, want 2", got)
	}
	if got := r.Distinct(1); got != 3 {
		t.Errorf("Distinct(1) = %d, want 3", got)
	}
	r.Remove(Tuple{1, 2})
	if got := r.Distinct(0); got != 1 {
		t.Errorf("Distinct(0) after Remove = %d, want 1", got)
	}
	if got := r.Distinct(1); got != 2 {
		t.Errorf("Distinct(1) after Remove = %d, want 2", got)
	}
}

// TestConcurrentLookupCols has many readers probing overlapping column
// subsets while the indexes build lazily; run under -race by CI.
func TestConcurrentLookupCols(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := randomIdxRelation(rng, 3, 200, 6)
	want01 := naiveLookupCols(r, []int{0, 1}, []int{2, 3})
	want12 := naiveLookupCols(r, []int{1, 2}, []int{1, 4})
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if !equalOffsets(r.LookupCols([]int{0, 1}, []int{2, 3}), want01) {
					errs <- "LookupCols(0,1) diverged"
					return
				}
				if !equalOffsets(r.LookupCols([]int{1, 2}, []int{1, 4}), want12) {
					errs <- "LookupCols(1,2) diverged"
					return
				}
				if r.Distinct(g%3) <= 0 {
					errs <- "Distinct returned non-positive count"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestLookupColsPanics(t *testing.T) {
	r := New(3)
	r.Add(Tuple{1, 2, 3})
	for _, cols := range [][]int{{}, {-1}, {3}, {1, 0}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LookupCols(%v) did not panic", cols)
				}
			}()
			r.LookupCols(cols, make([]int, len(cols)))
		}()
	}
}
