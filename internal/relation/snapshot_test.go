package relation

import (
	"sync"
	"testing"
)

func tuples(ts ...[]int) []Tuple {
	out := make([]Tuple, len(ts))
	for i, t := range ts {
		out[i] = Tuple(t)
	}
	return out
}

func TestSnapshotIsolatesFromAppends(t *testing.T) {
	r := FromTuples(2, tuples([]int{0, 1}, []int{1, 2}))
	s := r.Snapshot()
	if s.Len() != 2 || !s.Has(Tuple{0, 1}) {
		t.Fatalf("snapshot missing original tuples")
	}
	r.Add(Tuple{2, 3})
	if s.Len() != 2 {
		t.Fatalf("snapshot grew with parent: len=%d", s.Len())
	}
	if s.Has(Tuple{2, 3}) {
		t.Fatalf("snapshot sees tuple added after it was taken")
	}
	if !r.Has(Tuple{2, 3}) || r.Len() != 3 {
		t.Fatalf("parent lost the appended tuple")
	}
	// Indexes on the view cover only the view.
	if got := len(s.Lookup(0, 2)); got != 0 {
		t.Fatalf("snapshot index sees later tuple: %d hits", got)
	}
	if got := len(r.Lookup(0, 2)); got != 1 {
		t.Fatalf("parent index misses later tuple: %d hits", got)
	}
}

func TestSnapshotSurvivesRemove(t *testing.T) {
	r := FromTuples(2, tuples([]int{0, 1}, []int{1, 2}, []int{2, 3}))
	s := r.Snapshot()
	if !r.Remove(Tuple{0, 1}) {
		t.Fatalf("remove failed")
	}
	if r.Has(Tuple{0, 1}) || r.Len() != 2 {
		t.Fatalf("parent still has removed tuple")
	}
	if !s.Has(Tuple{0, 1}) || s.Len() != 3 {
		t.Fatalf("snapshot lost tuple removed from parent")
	}
	for _, tu := range s.Tuples() {
		if !s.Has(tu) {
			t.Fatalf("snapshot arena/key mismatch on %v", tu)
		}
	}
}

func TestSnapshotOfSnapshot(t *testing.T) {
	r := FromTuples(1, tuples([]int{4}))
	s := r.Snapshot()
	if s2 := s.Snapshot(); s2 != s {
		t.Fatalf("snapshot of a snapshot should be itself")
	}
}

func TestSnapshotMutationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("mutating a snapshot did not panic")
		}
	}()
	r := FromTuples(1, tuples([]int{0}))
	r.Snapshot().Add(Tuple{1})
}

func TestMutableOnSnapshotCopies(t *testing.T) {
	r := FromTuples(1, tuples([]int{0}))
	s := r.Snapshot()
	m := s.Mutable()
	m.Add(Tuple{7})
	if s.Has(Tuple{7}) || r.Has(Tuple{7}) {
		t.Fatalf("Mutable copy leaked into the snapshot or parent")
	}
	if !m.Has(Tuple{0}) {
		t.Fatalf("Mutable copy lost contents")
	}
}

func TestSnapshotEqualityAndSubset(t *testing.T) {
	r := FromTuples(2, tuples([]int{0, 1}, []int{1, 2}))
	s := r.Snapshot()
	r.Add(Tuple{5, 5})
	if s.Equal(r) || r.Equal(s) {
		t.Fatalf("view should differ from grown parent")
	}
	if !s.SubsetOf(r) {
		t.Fatalf("view should be a subset of grown parent")
	}
	if r.SubsetOf(s) {
		t.Fatalf("grown parent is not a subset of the view")
	}
	c := s.Clone()
	if !c.Equal(s) || c.Len() != 2 {
		t.Fatalf("clone of view differs from view")
	}
	c.Add(Tuple{9, 9})
	if s.Has(Tuple{9, 9}) {
		t.Fatalf("clone of view shares storage with view")
	}
}

// TestSealedSnapshotConcurrentReads is the daemon scenario: readers
// iterate and probe a sealed snapshot while the live relation keeps
// being mutated (including removals).  Run under -race.
func TestSealedSnapshotConcurrentReads(t *testing.T) {
	r := New(2)
	for i := 0; i < 256; i++ {
		r.Add(Tuple{i, i + 1})
	}
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		s := r.Snapshot()
		r.Seal()
		want := s.Len()
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n := 0
				s.Each(func(tu Tuple) bool {
					if !s.Has(tu) {
						t.Errorf("snapshot lost %v mid-read", tu)
						return false
					}
					n++
					return true
				})
				if n != want {
					t.Errorf("snapshot length changed mid-read: %d != %d", n, want)
				}
				s.Lookup(0, round)
				s.LookupCols([]int{0, 1}, []int{round, round + 1})
			}()
		}
		// Mutate the live relation while the readers run.
		for i := 0; i < 32; i++ {
			r.Remove(Tuple{i * 7 % 256, i*7%256 + 1})
			r.Add(Tuple{1000 + round*100 + i, i})
		}
		wg.Wait()
	}
}

func TestMultiset(t *testing.T) {
	m := NewMultiset(2)
	m.Bump(Tuple{1, 2}, 3)
	m.Bump(Tuple{1, 2}, -1)
	m.Bump(Tuple{3, 4}, 1)
	if got := m.Count(Tuple{1, 2}); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := m.Count(Tuple{9, 9}); got != 0 {
		t.Fatalf("absent count = %d, want 0", got)
	}
	o := NewMultiset(2)
	o.Bump(Tuple{3, 4}, 5)
	o.Bump(Tuple{7, 8}, 1)
	m.MergeFrom(o)
	if m.Count(Tuple{3, 4}) != 6 || m.Count(Tuple{7, 8}) != 1 || m.Len() != 3 {
		t.Fatalf("merge wrong: %d %d %d", m.Count(Tuple{3, 4}), m.Count(Tuple{7, 8}), m.Len())
	}
}
