package relation

import (
	"math/rand"
	"testing"
)

// TestPackUnpackRoundTrip checks UnpackKey inverts PackKey for every
// arity the packed path covers, at the edges of each element width.
func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for arity := 0; arity <= 8; arity++ {
		limit := PackedCapacity(arity)
		if limit == 0 {
			limit = 1 << 31 // "unbounded": sample a large range
		}
		for trial := 0; trial < 200; trial++ {
			tup := make(Tuple, arity)
			for i := range tup {
				switch trial % 3 {
				case 0:
					tup[i] = rng.Intn(limit)
				case 1:
					tup[i] = limit - 1 // max representable element
				default:
					tup[i] = 0
				}
			}
			k, ok := PackKey(tup)
			if !ok {
				t.Fatalf("arity %d tuple %v should pack (limit %d)", arity, tup, limit)
			}
			if got := UnpackKey(k, arity); !got.Equal(tup) {
				t.Fatalf("UnpackKey(PackKey(%v)) = %v", tup, got)
			}
		}
	}
}

// TestPackKeyRejectsOverflow pins the spill boundary: the first id past
// the per-arity capacity must not pack.
func TestPackKeyRejectsOverflow(t *testing.T) {
	for arity := 2; arity <= 6; arity++ {
		limit := PackedCapacity(arity)
		if limit == 0 {
			continue
		}
		tup := make(Tuple, arity)
		tup[arity-1] = limit
		if _, ok := PackKey(tup); ok {
			t.Errorf("arity %d: element %d packed past capacity", arity, limit)
		}
	}
}

// TestSpillKeyRoundTrip covers both spill widths: 4-byte (elements fit
// uint32) and 8-byte (wide elements).
func TestSpillKeyRoundTrip(t *testing.T) {
	cases := []Tuple{
		{1 << 22, 1, 2},             // arity 3 element past the 21-bit width
		{0xFFFFFFFF, 1, 0},          // largest element of the 4-byte width
		{1 << 33, 2, 3},             // wide element → 8-byte width
		{1 << 10, 9, 9, 9, 9, 9, 9}, // arity 7 (9 bits/element): 1<<10 spills
	}
	for _, tup := range cases {
		if _, ok := PackKey(tup); ok {
			t.Fatalf("test tuple %v unexpectedly packs", tup)
		}
		b := SpillKey(tup)
		got, ok := DecodeSpillKey(b, len(tup))
		if !ok || !got.Equal(tup) {
			t.Errorf("DecodeSpillKey(SpillKey(%v)) = %v, %v", tup, got, ok)
		}
	}
	if _, ok := DecodeSpillKey([]byte{1, 2, 3}, 17); ok {
		t.Error("DecodeSpillKey accepted a length matching neither width")
	}
	if got, ok := DecodeSpillKey(nil, 0); !ok || len(got) != 0 {
		t.Errorf("DecodeSpillKey(nil, 0) = %v, %v", got, ok)
	}
}

// TestPrefix checks prefix views: exact membership at the cut, later
// appends invisible, and safe deep-copying.
func TestPrefix(t *testing.T) {
	r := New(2)
	tuples := []Tuple{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	for _, tup := range tuples {
		r.Add(tup)
	}
	p := r.Prefix(2)
	if p.Len() != 2 {
		t.Fatalf("prefix Len = %d, want 2", p.Len())
	}
	if !p.Has(Tuple{0, 1}) || !p.Has(Tuple{1, 2}) {
		t.Error("prefix lost a covered tuple")
	}
	if p.Has(Tuple{2, 3}) {
		t.Error("prefix sees a tuple past the cut")
	}
	// Appends to the live relation stay invisible to the view.
	r.Add(Tuple{4, 5})
	if p.Len() != 2 || p.Has(Tuple{4, 5}) {
		t.Error("prefix sees post-view appends")
	}
	// A clone of the view is exact and independent.
	c := p.Clone()
	if c.Len() != 2 || !c.Has(Tuple{1, 2}) || c.Has(Tuple{2, 3}) {
		t.Error("prefix clone drifted from the view")
	}
	c.Add(Tuple{9, 9})
	if p.Has(Tuple{9, 9}) {
		t.Error("mutating the clone leaked into the view")
	}
	// A Remove on the live relation detaches; the view keeps the old
	// storage.
	r.Remove(Tuple{0, 1})
	if !p.Has(Tuple{0, 1}) {
		t.Error("prefix lost a tuple to a post-view Remove")
	}
	// Full-length and zero-length prefixes are the boundary cases.
	if full := r.Prefix(r.Len()); full.Len() != r.Len() {
		t.Errorf("full prefix Len = %d, want %d", full.Len(), r.Len())
	}
	if empty := r.Prefix(0); empty.Len() != 0 || empty.Has(Tuple{1, 2}) {
		t.Error("empty prefix not empty")
	}
	// Prefix of a frozen view works and shares its storage.
	pp := p.Prefix(1)
	if pp.Len() != 1 || !pp.Has(Tuple{0, 1}) || pp.Has(Tuple{1, 2}) {
		t.Error("prefix of a frozen view wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Prefix did not panic")
		}
	}()
	r.Prefix(r.Len() + 1)
}
