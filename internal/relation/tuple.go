package relation

import "strconv"

// Tuple is a fixed-arity sequence of universe ids.  Tuples are value-like:
// callers must not mutate a tuple after handing it to a Relation.
type Tuple []int

// Key returns a compact string encoding of the tuple, usable as a map
// key.  Two tuples have equal keys iff they are equal element-wise.
func (t Tuple) Key() string {
	// Variable-length encoding with a separator keeps keys unambiguous
	// for any universe size; strconv avoids fmt overhead on hot paths.
	buf := make([]byte, 0, len(t)*4)
	for _, v := range t {
		buf = strconv.AppendInt(buf, int64(v), 36)
		buf = append(buf, '|')
	}
	return string(buf)
}

// Equal reports whether t and o have the same length and elements.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples first by length, then lexicographically by
// element.  It returns -1, 0, or +1.
func (t Tuple) Compare(o Tuple) int {
	if len(t) != len(o) {
		if len(t) < len(o) {
			return -1
		}
		return 1
	}
	for i := range t {
		switch {
		case t[i] < o[i]:
			return -1
		case t[i] > o[i]:
			return 1
		}
	}
	return 0
}

// Clone returns a fresh copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns the concatenation of t and o as a fresh tuple.
func (t Tuple) Concat(o Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(o))
	c = append(c, t...)
	c = append(c, o...)
	return c
}

// Project returns the subtuple at the given column positions.
func (t Tuple) Project(cols []int) Tuple {
	c := make(Tuple, len(cols))
	for i, col := range cols {
		c[i] = t[col]
	}
	return c
}

// String formats the tuple's raw ids, e.g. "(0,3,1)".  For named output
// use Relation.Format with a Universe.
func (t Tuple) String() string {
	buf := make([]byte, 0, len(t)*4+2)
	buf = append(buf, '(')
	for i, v := range t {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	buf = append(buf, ')')
	return string(buf)
}
