package relation

import (
	"math/rand"
	"testing"
)

// TestFilterNoFalseNegatives is the filter's one hard guarantee: every
// added tuple answers "maybe present".
func TestFilterNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := New(3)
	for i := 0; i < 5000; i++ {
		r.Add(Tuple{rng.Intn(200), rng.Intn(200), rng.Intn(200)})
	}
	f := FilterOf(r, 0)
	if f.Len() != r.Len() {
		t.Fatalf("filter holds %d hashes, relation %d tuples", f.Len(), r.Len())
	}
	r.Each(func(tp Tuple) bool {
		if !f.MayContain(tp) {
			t.Fatalf("false negative for %v", tp)
		}
		return true
	})
}

// TestFilterFalsePositiveRate checks the sizing keeps the FP rate in
// the expected regime (well under 1% at the design load).
func TestFilterFalsePositiveRate(t *testing.T) {
	const n = 20000
	f := NewFilter(n)
	for i := 0; i < n; i++ {
		f.AddHash(TupleHash(Tuple{i, i * 7, i * 13}))
	}
	fp := 0
	const probes = 50000
	for i := 0; i < probes; i++ {
		// Disjoint key space from the inserted tuples.
		if f.MayContainHash(TupleHash(Tuple{-1 - i, i, i})) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.01 {
		t.Fatalf("false-positive rate %.4f exceeds 1%%", rate)
	}
}

// TestFilterOverloaded checks the rebuild signal fires once the filter
// holds more than it was sized for.
func TestFilterOverloaded(t *testing.T) {
	f := NewFilter(300)
	for i := 0; i < 300; i++ {
		f.AddHash(uint64(i) * 0x9e3779b97f4a7c15)
	}
	if f.Overloaded() {
		t.Fatalf("filter overloaded at design capacity")
	}
	f.AddHash(12345)
	if !f.Overloaded() {
		t.Fatalf("filter not overloaded past design capacity")
	}
}

// TestFilterAddTuple checks the tuple-level wrappers agree with the
// hash-level primitives they delegate to.
func TestFilterAddTuple(t *testing.T) {
	f := NewFilter(16)
	tp := Tuple{3, 1, 4}
	if f.MayContain(tp) {
		t.Fatalf("fresh filter claims membership")
	}
	f.Add(tp)
	if !f.MayContain(tp) {
		t.Fatalf("added tuple not found")
	}
	if f.Len() != 1 {
		t.Fatalf("len %d after one Add", f.Len())
	}
}

func TestFilterEmpty(t *testing.T) {
	f := NewFilter(0)
	if f.MayContainHash(42) {
		t.Fatalf("empty filter claims membership")
	}
	f.AddHash(42)
	if !f.MayContainHash(42) {
		t.Fatalf("added hash not found")
	}
}

// TestSpillAddNotInWithFilter exercises the seam between the two key
// encodings on the filtered emit path: the Bloom filter keys off
// TupleHash while spill membership keys off byte strings.  It replays
// the engine's emit protocol — probe the filter with the emit-time
// hash, fall through to AddNotIn only on "maybe" — over tuples that
// all take the spill path (ids ≥ 2³² at arity 2), plus a mixed
// packed/spill stream, and requires exact set semantics throughout.
func TestSpillAddNotInWithFilter(t *testing.T) {
	big := 1 << 40
	cur := New(2)
	for i := 0; i < 500; i++ {
		cur.Add(Tuple{big + i, i})
	}
	f := FilterOf(cur, cur.Len())

	// Every accumulated spill tuple must answer "maybe" (no false
	// negatives off the TupleHash key) and then be rejected exactly.
	out := New(2)
	cur.Each(func(tp Tuple) bool {
		h := TupleHash(tp)
		if !f.MayContainHash(h) {
			t.Fatalf("false negative for spill tuple %v", tp)
		}
		if out.AddNotInHash(tp, h, cur) {
			t.Fatalf("spill tuple %v in cur was inserted", tp)
		}
		return true
	})

	// Fresh spill tuples: a "definitely absent" verdict may skip the
	// exact probe (the engine calls Add), a "maybe" goes through
	// AddNotIn; both must land exactly once.
	skips := 0
	for i := 0; i < 500; i++ {
		tp := Tuple{big + i, i + 1000}
		h := TupleHash(tp)
		inserted := false
		if !f.MayContainHash(h) {
			skips++
			inserted = out.AddHash(tp, h)
		} else {
			inserted = out.AddNotInHash(tp, h, cur)
		}
		if !inserted {
			t.Fatalf("fresh spill tuple %v rejected", tp)
		}
	}
	if out.Len() != 500 {
		t.Fatalf("out holds %d tuples, want 500", out.Len())
	}
	if skips == 0 {
		t.Fatal("filter never resolved a fresh spill tuple (no skips)")
	}

	// Mixed stream: packed and spill tuples through the same filter.
	mixed := New(2)
	mf := NewFilter(64)
	for i := 0; i < 32; i++ {
		tp := Tuple{i, i} // packed
		if i%2 == 1 {
			tp = Tuple{big + i, i} // spill
		}
		mf.AddHash(TupleHash(tp))
		mixed.Add(tp)
	}
	mixed.Each(func(tp Tuple) bool {
		h := TupleHash(tp)
		if !mf.MayContainHash(h) {
			t.Fatalf("false negative for mixed tuple %v", tp)
		}
		if New(2).AddNotInHash(tp, h, mixed) {
			t.Fatalf("mixed tuple %v not rejected by its own set", tp)
		}
		return true
	})
}
