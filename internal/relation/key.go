package relation

import "encoding/binary"

// Packed tuple keys.
//
// A Relation stores membership as a hash set keyed by a compact integer
// encoding of each tuple rather than by a string, so the Θ hot path
// (Has/Add during rule evaluation) performs no per-tuple string
// allocation.  For a tuple of arity k ≥ 1 the packed encoding assigns
// each element ⌊64/k⌋ bits of a single uint64; a tuple packs iff every
// element is non-negative and fits in that width.  Within a fixed arity
// the encoding is injective: the key is the fixed-width concatenation
// of the elements.  Universe ids are dense and start at 0 (see
// Universe), so for the common arities the packed form covers huge
// universes: arity 1 ≈ unbounded, arity 2 up to 2³² constants, arity 3
// up to 2²¹, arity 4 up to 2¹⁶.
//
// Tuples that do not pack (wide arities or ids beyond the width) spill
// to a secondary map keyed by a compact byte-string encoding: 4 bytes
// per element big-endian when every element fits in a uint32, 8 bytes
// otherwise.  The two widths yield different key lengths for the same
// arity, and a given tuple always encodes the same way, so packed and
// spilled tuples can never be confused: each tuple deterministically
// belongs to exactly one of the two maps.

// PackedCapacity returns the largest universe size whose tuples of the
// given arity always take the packed uint64 path; 0 means unbounded.
// Larger universes still work — their tuples spill to the byte-string
// encoding — but lose the allocation-free membership test.
func PackedCapacity(arity int) int {
	bits := packBits(arity)
	if bits >= 63 {
		return 0
	}
	c := uint64(1) << bits
	if c > uint64(^uint(0)>>1) {
		// Wider than this platform's int (e.g. arity 2 on 32-bit):
		// every representable id fits, so the packed path is unbounded.
		return 0
	}
	return int(c)
}

// packBits returns the per-element bit width of the packed encoding for
// the given arity.
func packBits(arity int) uint {
	if arity <= 0 {
		return 64
	}
	return uint(64 / arity)
}

// packKey returns the packed uint64 key for t and true, or 0 and false
// when t does not fit the packed encoding and must spill.
func packKey(t Tuple) (uint64, bool) {
	k := len(t)
	if k == 0 {
		return 0, true
	}
	bits := packBits(k)
	if bits >= 63 {
		// Arity 1: any non-negative int packs.
		if t[0] < 0 {
			return 0, false
		}
		return uint64(t[0]), true
	}
	limit := uint64(1) << bits
	var key uint64
	for _, v := range t {
		if v < 0 || uint64(v) >= limit {
			return 0, false
		}
		key = key<<bits | uint64(v)
	}
	return key, true
}

// TupleHash returns a well-mixed 64-bit hash of t, stable across
// relations of the same arity.  The engine partitions per-worker
// derivation outputs by TupleHash(head) so partitions from different
// workers can be merged bucket-by-bucket and concatenated disjointly.
// Packed tuples hash their packed key through a splitmix64 finalizer
// (the raw key is a fixed-width concatenation, so its low bits are just
// the last element); spilled tuples hash element-wise FNV-1a.
func TupleHash(t Tuple) uint64 {
	if k, ok := packKey(t); ok {
		return mix64(k)
	}
	h := uint64(1469598103934665603)
	for _, v := range t {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective scramble of a packed
// key into a well-mixed 64-bit hash.  It is the single hash function of
// the dedup path — TupleHash, the open-addressing Table, the Bloom
// filters, and partition ownership all key off it, so a hash computed
// once at emit time can be threaded through every probe.
func mix64(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	return k ^ k>>31
}

// PackKey returns the packed uint64 key of t and true when t fits the
// packed encoding, or 0 and false when it must spill.  The packed key
// is the storage-layer serialization of the tuple: within a fixed
// arity it is injective, so a snapshot file can store 8 bytes per
// tuple and recover the tuple exactly with UnpackKey.
func PackKey(t Tuple) (uint64, bool) { return packKey(t) }

// UnpackKey inverts PackKey for the given arity: it decodes the
// fixed-width concatenation back into a fresh tuple.  The caller must
// pass a key produced by PackKey for a tuple of the same arity;
// UnpackKey(k, len(t)) of PackKey(t) = t for every packable t.
func UnpackKey(key uint64, arity int) Tuple {
	if arity <= 0 {
		return Tuple{}
	}
	t := make(Tuple, arity)
	bits := packBits(arity)
	if bits >= 63 {
		t[0] = int(key)
		return t
	}
	mask := uint64(1)<<bits - 1
	for i := arity - 1; i >= 0; i-- {
		t[i] = int(key & mask)
		key >>= bits
	}
	return t
}

// SpillKey returns the byte-string fallback encoding of t — the key of
// the spill map — as a fresh byte slice.  Together with DecodeSpillKey
// it is the wire form of tuples that do not pack: 4 bytes per element
// big-endian when every element fits a uint32, 8 bytes otherwise, so
// the length alone (relative to the arity) selects the width.
func SpillKey(t Tuple) []byte { return []byte(spillKey(t)) }

// DecodeSpillKey inverts SpillKey for the given arity.  It reports
// false when the byte length matches neither the 4- nor the
// 8-byte-per-element width (or arity 0 with non-empty bytes).
func DecodeSpillKey(b []byte, arity int) (Tuple, bool) {
	if arity < 0 {
		return nil, false
	}
	switch {
	case len(b) == 4*arity && (arity > 0 || len(b) == 0):
		t := make(Tuple, arity)
		for i := range t {
			t[i] = int(binary.BigEndian.Uint32(b[4*i:]))
		}
		return t, true
	case arity > 0 && len(b) == 8*arity:
		t := make(Tuple, arity)
		for i := range t {
			v := binary.BigEndian.Uint64(b[8*i:])
			t[i] = int(v)
			if uint64(t[i]) != v {
				return nil, false // overflows this platform's int
			}
		}
		return t, true
	}
	return nil, false
}

// spillKey returns the byte-string fallback key for tuples that do not
// pack into a uint64.
func spillKey(t Tuple) string {
	wide := false
	for _, v := range t {
		if v < 0 || uint64(v) > 0xFFFFFFFF {
			wide = true
			break
		}
	}
	if wide {
		buf := make([]byte, 8*len(t))
		for i, v := range t {
			binary.BigEndian.PutUint64(buf[8*i:], uint64(v))
		}
		return string(buf)
	}
	buf := make([]byte, 4*len(t))
	for i, v := range t {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}
