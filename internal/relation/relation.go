package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a finite set of tuples of a fixed arity.  Arity 0 is
// allowed: such a relation is either empty ("false") or contains the
// single empty tuple ("true"); the paper's toggle constructions never
// need it but the engine supports it uniformly.
//
// Relations maintain lazily built per-column hash indexes used by the
// evaluation engine's join plans; indexes are invalidated on mutation.
type Relation struct {
	arity   int
	tuples  map[string]Tuple
	indexes map[int]map[int][]Tuple // column -> value -> tuples
}

// New returns an empty relation of the given arity.  It panics on a
// negative arity.
func New(arity int) *Relation {
	if arity < 0 {
		panic(fmt.Sprintf("relation: negative arity %d", arity))
	}
	return &Relation{arity: arity, tuples: make(map[string]Tuple)}
}

// FromTuples builds a relation of the given arity from tuples.  Tuples
// of the wrong arity cause a panic; duplicates collapse.
func FromTuples(arity int, tuples []Tuple) *Relation {
	r := New(arity)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.tuples) == 0 }

// Add inserts t, reporting whether it was new.  It panics if the arity
// of t does not match the relation's.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: adding tuple of arity %d to relation of arity %d", len(t), r.arity))
	}
	k := t.Key()
	if _, ok := r.tuples[k]; ok {
		return false
	}
	r.tuples[k] = t.Clone()
	r.indexes = nil
	return true
}

// Has reports whether t is present.
func (r *Relation) Has(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	_, ok := r.tuples[t.Key()]
	return ok
}

// Remove deletes t, reporting whether it was present.
func (r *Relation) Remove(t Tuple) bool {
	k := t.Key()
	if _, ok := r.tuples[k]; !ok {
		return false
	}
	delete(r.tuples, k)
	r.indexes = nil
	return true
}

// Tuples returns all tuples in deterministic (sorted) order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Each calls f for every tuple in unspecified order until f returns
// false.  It must not mutate the relation.
func (r *Relation) Each(f func(Tuple) bool) {
	for _, t := range r.tuples {
		if !f(t) {
			return
		}
	}
}

// Clone returns a deep copy (indexes are not copied; they rebuild on
// demand).
func (r *Relation) Clone() *Relation {
	c := New(r.arity)
	for k, t := range r.tuples {
		c.tuples[k] = t
	}
	return c
}

// Equal reports whether r and o contain exactly the same tuples.
func (r *Relation) Equal(o *Relation) bool {
	if r.arity != o.arity || len(r.tuples) != len(o.tuples) {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every tuple of r is in o.
func (r *Relation) SubsetOf(o *Relation) bool {
	if r.arity != o.arity || len(r.tuples) > len(o.tuples) {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// UnionWith adds every tuple of o to r, returning the number of tuples
// actually added.
func (r *Relation) UnionWith(o *Relation) int {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: union of arities %d and %d", r.arity, o.arity))
	}
	added := 0
	for k, t := range o.tuples {
		if _, ok := r.tuples[k]; !ok {
			r.tuples[k] = t
			added++
		}
	}
	if added > 0 {
		r.indexes = nil
	}
	return added
}

// Union returns a fresh relation with the tuples of both r and o.
func (r *Relation) Union(o *Relation) *Relation {
	c := r.Clone()
	c.UnionWith(o)
	return c
}

// Intersect returns a fresh relation with the tuples common to r and o.
func (r *Relation) Intersect(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: intersect of arities %d and %d", r.arity, o.arity))
	}
	c := New(r.arity)
	small, large := r, o
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for k, t := range small.tuples {
		if _, ok := large.tuples[k]; ok {
			c.tuples[k] = t
		}
	}
	return c
}

// Diff returns a fresh relation with the tuples of r not in o.
func (r *Relation) Diff(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: diff of arities %d and %d", r.arity, o.arity))
	}
	c := New(r.arity)
	for k, t := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			c.tuples[k] = t
		}
	}
	return c
}

// Index returns a hash index on the given column: a map from value to
// the tuples having that value in the column.  The index is built
// lazily and cached until the next mutation.  Callers must not mutate
// the returned map or slices.
func (r *Relation) Index(col int) map[int][]Tuple {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("relation: index column %d out of range for arity %d", col, r.arity))
	}
	if r.indexes == nil {
		r.indexes = make(map[int]map[int][]Tuple)
	}
	if idx, ok := r.indexes[col]; ok {
		return idx
	}
	idx := make(map[int][]Tuple)
	for _, t := range r.tuples {
		idx[t[col]] = append(idx[t[col]], t)
	}
	r.indexes[col] = idx
	return idx
}

// Format renders the relation's tuples with constant names from u, in
// sorted order, e.g. "{(a,b), (b,c)}".
func (r *Relation) Format(u *Universe) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r.Tuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, v := range t {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(u.Name(v))
		}
		b.WriteByte(')')
	}
	b.WriteByte('}')
	return b.String()
}

// Full returns the relation Aᵏ: all tuples of the given arity over a
// universe of size n.  Beware: it materializes n^arity tuples.
func Full(arity, n int) *Relation {
	r := New(arity)
	if arity == 0 {
		r.Add(Tuple{})
		return r
	}
	t := make(Tuple, arity)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == arity {
			r.Add(t)
			return
		}
		for v := 0; v < n; v++ {
			t[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return r
}
