package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Relation is a finite set of tuples of a fixed arity.  Arity 0 is
// allowed: such a relation is either empty ("false") or contains the
// single empty tuple ("true"); the paper's toggle constructions never
// need it but the engine supports it uniformly.
//
// Storage is a flat arena of tuples in insertion order plus a hash set
// of packed integer keys (see key.go) mapping each tuple to its arena
// offset — no per-tuple string allocation on the evaluation hot path.
// Per-column hash indexes map a column value to arena offsets; they are
// built lazily on first lookup and invalidated on mutation.
//
// Concurrency: any number of goroutines may read a relation (Has, Each,
// Lookup, At, ...) concurrently — lazy index construction is internally
// synchronized — but mutation requires exclusive access, as before.
type Relation struct {
	arity  int
	arena  []Tuple          // tuples in insertion order
	packed map[uint64]int32 // packed key -> arena offset
	spill  map[string]int32 // fallback key -> arena offset (wide/huge tuples)

	mu   sync.Mutex                            // serializes lazy index builds
	idx  atomic.Pointer[[]colIndex]            // per-column indexes, nil until built
	cidx atomic.Pointer[map[uint64]*compIndex] // composite indexes by column mask (see index.go)
}

// colIndex maps a column value to the arena offsets of the tuples
// holding that value in the column.
type colIndex map[int][]int32

// New returns an empty relation of the given arity.  It panics on a
// negative arity.
func New(arity int) *Relation {
	if arity < 0 {
		panic(fmt.Sprintf("relation: negative arity %d", arity))
	}
	return &Relation{arity: arity, packed: make(map[uint64]int32)}
}

// FromTuples builds a relation of the given arity from tuples.  Tuples
// of the wrong arity cause a panic; duplicates collapse.
func FromTuples(arity int, tuples []Tuple) *Relation {
	r := New(arity)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.arena) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.arena) == 0 }

// offsetOf returns the arena offset of t, or -1 if absent.
func (r *Relation) offsetOf(t Tuple) int32 {
	if k, ok := packKey(t); ok {
		if off, ok := r.packed[k]; ok {
			return off
		}
		return -1
	}
	if off, ok := r.spill[spillKey(t)]; ok {
		return off
	}
	return -1
}

// Add inserts t, reporting whether it was new.  It panics if the arity
// of t does not match the relation's.  The tuple is copied, so callers
// may reuse the backing slice; duplicates are rejected before the copy,
// so re-adding existing tuples does not allocate.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: adding tuple of arity %d to relation of arity %d", len(t), r.arity))
	}
	if !r.insertKey(t) {
		return false
	}
	r.arena = append(r.arena, t.Clone())
	r.invalidate()
	return true
}

// insertKey records t's key at the next arena offset, reporting false
// on duplicate.  The caller appends the tuple itself.
func (r *Relation) insertKey(t Tuple) bool {
	off := int32(len(r.arena))
	if k, ok := packKey(t); ok {
		if _, dup := r.packed[k]; dup {
			return false
		}
		r.packed[k] = off
		return true
	}
	sk := spillKey(t)
	if _, dup := r.spill[sk]; dup {
		return false
	}
	if r.spill == nil {
		r.spill = make(map[string]int32)
	}
	r.spill[sk] = off
	return true
}

// Has reports whether t is present.
func (r *Relation) Has(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	return r.offsetOf(t) >= 0
}

// Remove deletes t, reporting whether it was present.  The arena stays
// dense: the last tuple is swapped into the vacated slot.
func (r *Relation) Remove(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	off := r.offsetOf(t)
	if off < 0 {
		return false
	}
	r.deleteKey(r.arena[off])
	last := int32(len(r.arena) - 1)
	if off != last {
		moved := r.arena[last]
		r.arena[off] = moved
		if k, ok := packKey(moved); ok {
			r.packed[k] = off
		} else {
			r.spill[spillKey(moved)] = off
		}
	}
	r.arena[last] = nil
	r.arena = r.arena[:last]
	r.invalidate()
	return true
}

// invalidate drops cached indexes (per-column and composite) after a
// mutation.  The load guards keep mutation-heavy phases (which never
// build an index) free of the atomic-store cost on every Add.
func (r *Relation) invalidate() {
	if r.idx.Load() != nil {
		r.idx.Store(nil)
	}
	if r.cidx.Load() != nil {
		r.cidx.Store(nil)
	}
}

func (r *Relation) deleteKey(t Tuple) {
	if k, ok := packKey(t); ok {
		delete(r.packed, k)
		return
	}
	delete(r.spill, spillKey(t))
}

// Tuples returns all tuples in deterministic (sorted) order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.arena))
	copy(out, r.arena)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Each calls f for every tuple in insertion order until f returns
// false.  It must not mutate the relation.
func (r *Relation) Each(f func(Tuple) bool) {
	for _, t := range r.arena {
		if !f(t) {
			return
		}
	}
}

// At returns the tuple at the given arena offset, as returned by
// Lookup.  Callers must not mutate it.
func (r *Relation) At(off int32) Tuple { return r.arena[off] }

// Clone returns a deep copy (indexes are not copied; they rebuild on
// demand).  Tuples themselves are shared: they are immutable by
// contract.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		arity:  r.arity,
		arena:  make([]Tuple, len(r.arena)),
		packed: make(map[uint64]int32, len(r.packed)),
	}
	copy(c.arena, r.arena)
	for k, off := range r.packed {
		c.packed[k] = off
	}
	if len(r.spill) > 0 {
		c.spill = make(map[string]int32, len(r.spill))
		for k, off := range r.spill {
			c.spill[k] = off
		}
	}
	return c
}

// Equal reports whether r and o contain exactly the same tuples: equal
// cardinality plus one-way containment suffices for sets.
func (r *Relation) Equal(o *Relation) bool {
	return r.arity == o.arity && len(r.arena) == len(o.arena) && r.SubsetOf(o)
}

// SubsetOf reports whether every tuple of r is in o.
func (r *Relation) SubsetOf(o *Relation) bool {
	if r.arity != o.arity || len(r.arena) > len(o.arena) {
		return false
	}
	for k := range r.packed {
		if _, ok := o.packed[k]; !ok {
			return false
		}
	}
	for k := range r.spill {
		if _, ok := o.spill[k]; !ok {
			return false
		}
	}
	return true
}

// UnionWith adds every tuple of o to r, returning the number of tuples
// actually added.
func (r *Relation) UnionWith(o *Relation) int {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: union of arities %d and %d", r.arity, o.arity))
	}
	added := 0
	for _, t := range o.arena {
		// Tuples already owned by a relation are immutable; insert
		// without re-cloning.
		if r.addOwned(t) {
			added++
		}
	}
	if added > 0 {
		r.invalidate()
	}
	return added
}

// addOwned inserts t without copying it.  The caller must guarantee t
// is never mutated afterwards.  It does not invalidate indexes; bulk
// callers do that once.
func (r *Relation) addOwned(t Tuple) bool {
	if !r.insertKey(t) {
		return false
	}
	r.arena = append(r.arena, t)
	return true
}

// Union returns a fresh relation with the tuples of both r and o.
func (r *Relation) Union(o *Relation) *Relation {
	c := r.Clone()
	c.UnionWith(o)
	return c
}

// Intersect returns a fresh relation with the tuples common to r and o.
func (r *Relation) Intersect(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: intersect of arities %d and %d", r.arity, o.arity))
	}
	c := New(r.arity)
	small, large := r, o
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for _, t := range small.arena {
		if large.offsetOf(t) >= 0 {
			c.addOwned(t)
		}
	}
	return c
}

// Diff returns a fresh relation with the tuples of r not in o.
func (r *Relation) Diff(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: diff of arities %d and %d", r.arity, o.arity))
	}
	c := New(r.arity)
	for _, t := range r.arena {
		if o.offsetOf(t) < 0 {
			c.addOwned(t)
		}
	}
	return c
}

// cols returns the per-column indexes, building all of them on first
// use.  The build is synchronized so concurrent readers are safe; the
// arity is small in practice, so building every column at once costs
// about as much as building one.
func (r *Relation) cols() []colIndex {
	if p := r.idx.Load(); p != nil {
		return *p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.idx.Load(); p != nil {
		return *p
	}
	cols := make([]colIndex, r.arity)
	for c := range cols {
		cols[c] = make(colIndex)
	}
	for off, t := range r.arena {
		for c, v := range t {
			cols[c][v] = append(cols[c][v], int32(off))
		}
	}
	r.idx.Store(&cols)
	return cols
}

// Lookup returns the arena offsets of the tuples whose col-th element
// equals val; resolve them with At.  The underlying index is built
// lazily and cached until the next mutation.  Callers must not mutate
// the returned slice.  Safe for concurrent use by readers.
func (r *Relation) Lookup(col, val int) []int32 {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("relation: index column %d out of range for arity %d", col, r.arity))
	}
	return r.cols()[col][val]
}

// Format renders the relation's tuples with constant names from u, in
// sorted order, e.g. "{(a,b), (b,c)}".
func (r *Relation) Format(u *Universe) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r.Tuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, v := range t {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(u.Name(v))
		}
		b.WriteByte(')')
	}
	b.WriteByte('}')
	return b.String()
}

// Full returns the relation Aᵏ: all tuples of the given arity over a
// universe of size n.  Beware: it materializes n^arity tuples.
func Full(arity, n int) *Relation {
	r := New(arity)
	if arity == 0 {
		r.Add(Tuple{})
		return r
	}
	t := make(Tuple, arity)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == arity {
			r.Add(t)
			return
		}
		for v := 0; v < n; v++ {
			t[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return r
}
