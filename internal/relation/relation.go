package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Relation is a finite set of tuples of a fixed arity.  Arity 0 is
// allowed: such a relation is either empty ("false") or contains the
// single empty tuple ("true"); the paper's toggle constructions never
// need it but the engine supports it uniformly.
//
// Storage is a flat arena of tuples in insertion order plus a hash set
// of packed integer keys (see key.go) mapping each tuple to its arena
// offset — no per-tuple string allocation on the evaluation hot path.
// Per-column hash indexes map a column value to arena offsets; they are
// built lazily on first lookup and stamped with the relation's mutation
// generation, so a stale index is simply rebuilt on the next probe.
//
// Snapshots (see Snapshot and Seal) are O(1) immutable views that share
// the arena and key maps with the live relation: because offsets are
// assigned monotonically while the relation only grows, a view of
// length n is exactly "the first n arena entries", and shared map
// entries at offsets ≥ n are invisible to it.  The live relation
// detaches (copies its storage, leaving the old storage to the views)
// before any mutation that would rewrite the shared prefix: every
// Remove, and — after Seal — every mutation at all.
//
// Concurrency: any number of goroutines may read a relation (Has, Each,
// Lookup, At, ...) concurrently — lazy index construction is internally
// synchronized — but mutation requires exclusive access with respect to
// readers of the relation and of any snapshot still sharing its
// storage.  Sealing removes the latter requirement: after Seal, the
// first mutation copies the storage, so sealed snapshots may be read by
// other goroutines while the live relation is updated.
type Relation struct {
	arity  int
	arena  []Tuple          // tuples in insertion order
	packed map[uint64]int32 // packed key -> arena offset (oracle mode; nil in table mode)
	table  *Table           // packed key -> arena offset (table mode; lazily allocated)
	spill  map[string]int32 // fallback key -> arena offset (wide/huge tuples)

	gen    uint64 // mutation generation, stamps lazily built indexes
	share  int8   // storage sharing mode (shareNone/shareWeak/shareSealed)
	frozen bool   // immutable snapshot view; mutation panics

	mu   sync.Mutex                   // serializes lazy index builds
	idx  atomic.Pointer[colIndexes]   // per-column indexes, nil until built
	cidx atomic.Pointer[compIndexSet] // composite indexes by column mask (see index.go)
}

// Storage sharing modes.  shareWeak is set by Snapshot: views share the
// storage, appends stay invisible to them, but a Remove must detach
// first.  shareSealed is set by Seal: views may be read concurrently
// from other goroutines, so any mutation must detach first.
const (
	shareNone int8 = iota
	shareWeak
	shareSealed
)

// colIndex maps a column value to the arena offsets of the tuples
// holding that value in the column.
type colIndex map[int][]int32

// colIndexes is a generation-stamped set of per-column indexes covering
// the first n arena entries: exact while the relation's mutation
// generation still equals gen, complete while the arena length still
// equals n.  A generation mismatch (a Remove rewrote offsets) forces a
// full rebuild; a grown arena under the same generation is repaired by
// extending with the new suffix, which costs O(distinct values + new
// tuples) instead of a rescan of the whole arena.
type colIndexes struct {
	gen  uint64
	n    int
	cols []colIndex
}

// New returns an empty relation of the given arity.  It panics on a
// negative arity.  Packed-key membership uses the open-addressing
// Table unless the oracle map mode is selected process-wide (see
// SetDefaultPackedTable); in table mode the table itself is allocated
// lazily on the first packed insert, so empty relations stay cheap.
func New(arity int) *Relation {
	if arity < 0 {
		panic(fmt.Sprintf("relation: negative arity %d", arity))
	}
	if PackedTableEnabled() {
		return &Relation{arity: arity}
	}
	return &Relation{arity: arity, packed: make(map[uint64]int32)}
}

// FromTuples builds a relation of the given arity from tuples.  Tuples
// of the wrong arity cause a panic; duplicates collapse.
func FromTuples(arity int, tuples []Tuple) *Relation {
	r := New(arity)
	for _, t := range tuples {
		r.Add(t)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.arena) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.arena) == 0 }

// offsetOf returns the arena offset of t, or -1 if absent.  Offsets at
// or beyond the arena length belong to tuples appended to a live
// relation after this view was taken; they are not part of this
// relation.
func (r *Relation) offsetOf(t Tuple) int32 {
	if k, ok := packKey(t); ok {
		return r.packedOff(k, mix64(k))
	}
	if off, ok := r.spill[spillKey(t)]; ok && off < int32(len(r.arena)) {
		return off
	}
	return -1
}

// packedOff returns the visible arena offset of packed key k (whose
// hash h must equal mix64(k)), or -1, probing whichever packed-key
// store this relation uses.
func (r *Relation) packedOff(k, h uint64) int32 {
	if r.packed != nil {
		if off, ok := r.packed[k]; ok && off < int32(len(r.arena)) {
			return off
		}
		return -1
	}
	if r.table != nil {
		if off, ok := r.table.getHash(k, h); ok && off < int32(len(r.arena)) {
			return off
		}
	}
	return -1
}

// packedPut records packed key k -> off; h must equal mix64(k).
func (r *Relation) packedPut(k, h uint64, off int32) {
	if r.packed != nil {
		r.packed[k] = off
		return
	}
	if r.table == nil {
		r.table = newTable(0)
	}
	r.table.putHash(k, h, off)
}

// Snapshot returns an O(1) immutable view of the relation's current
// contents, sharing storage with r.  Tuples added to r afterwards are
// invisible to the view; a later Remove on r copies r's storage first,
// so the view stays valid either way.  Mutating the view panics.
//
// The view may be read concurrently with other reads, but mutating r
// while another goroutine reads the view requires r to be sealed first
// (see Seal); within one goroutine (or any happens-before chain) no
// sealing is needed.
func (r *Relation) Snapshot() *Relation {
	if r.frozen {
		return r // already an immutable view
	}
	if r.share == shareNone {
		r.share = shareWeak
	}
	return r.view()
}

// Prefix returns an O(1) immutable view of the first n tuples in
// insertion order, sharing storage with r exactly like Snapshot (key
// entries at offsets ≥ n are invisible to the view).  It is how a
// restored maintainer reconstructs its inflationary stage log: each
// logged stage is, by the monotone-append invariant of the fixpoint
// loops, a length-prefix of the final arena, so persisting the lengths
// alone suffices.  It panics when n exceeds the current length.
func (r *Relation) Prefix(n int) *Relation {
	if n < 0 || n > len(r.arena) {
		panic(fmt.Sprintf("relation: prefix %d of relation with %d tuples", n, len(r.arena)))
	}
	if !r.frozen && r.share == shareNone {
		r.share = shareWeak
	}
	v := r.view()
	v.arena = v.arena[:n:n]
	return v
}

// Seal marks the relation's storage as published: the next mutation —
// including appends — will copy the storage, leaving the current arena
// and key maps exclusively to existing snapshots.  Call it after
// handing a Snapshot to readers on other goroutines.  Sealing an
// already-sealed or frozen relation is a no-op.
func (r *Relation) Seal() {
	if !r.frozen {
		r.share = shareSealed
	}
}

// view builds the frozen snapshot struct sharing r's storage.
func (r *Relation) view() *Relation {
	n := len(r.arena)
	return &Relation{
		arity:  r.arity,
		arena:  r.arena[:n:n],
		packed: r.packed,
		table:  r.table,
		spill:  r.spill,
		frozen: true,
	}
}

// beforeMutate enforces the mutation contract: frozen views reject
// mutation, and shared storage is detached first when the mutation
// would otherwise corrupt live snapshots (any mutation once sealed;
// removals under weak sharing, where removeOnly reports false).
func (r *Relation) beforeMutate(appendOnly bool) {
	if r.frozen {
		panic("relation: mutating an immutable snapshot")
	}
	if r.share == shareSealed || (r.share == shareWeak && !appendOnly) {
		r.detach()
	}
}

// detach copies the arena and key maps so existing snapshots keep the
// old storage exclusively.  Offsets are preserved, so cached indexes
// stay valid.
func (r *Relation) detach() {
	arena := make([]Tuple, len(r.arena))
	copy(arena, r.arena)
	if r.packed != nil {
		packed := make(map[uint64]int32, len(r.packed))
		for k, off := range r.packed {
			if off < int32(len(arena)) {
				packed[k] = off
			}
		}
		r.packed = packed
	} else {
		// Live relations never hold offsets past their own arena, so
		// a straight copy preserves the table exactly.
		r.table = r.table.clone()
	}
	r.arena = arena
	if len(r.spill) > 0 {
		spill := make(map[string]int32, len(r.spill))
		for k, off := range r.spill {
			if off < int32(len(arena)) {
				spill[k] = off
			}
		}
		r.spill = spill
	}
	r.share = shareNone
}

// Mutable returns r if it is mutable, or a deep copy if r is an
// immutable snapshot view.
func (r *Relation) Mutable() *Relation {
	if !r.frozen {
		return r
	}
	return r.Clone()
}

// Add inserts t, reporting whether it was new.  It panics if the arity
// of t does not match the relation's.  The tuple is copied, so callers
// may reuse the backing slice; duplicates are rejected before the copy,
// so re-adding existing tuples does not allocate.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: adding tuple of arity %d to relation of arity %d", len(t), r.arity))
	}
	if r.Has(t) {
		return false
	}
	r.beforeMutate(true)
	r.insertKey(t)
	r.arena = append(r.arena, t.Clone())
	return true
}

// insertKey records t's key at the next arena offset.  Callers have
// already rejected duplicates (via Has); the caller appends the tuple
// itself.
func (r *Relation) insertKey(t Tuple) {
	off := int32(len(r.arena))
	if k, ok := packKey(t); ok {
		r.packedPut(k, mix64(k), off)
		return
	}
	if r.spill == nil {
		r.spill = make(map[string]int32)
	}
	r.spill[spillKey(t)] = off
}

// Has reports whether t is present.
func (r *Relation) Has(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	return r.offsetOf(t) >= 0
}

// HasHash is Has for callers that already computed h = TupleHash(t),
// e.g. the engine's emit path, which needs the same hash for the
// Bloom filter and partition ownership.  Passing a wrong hash yields
// wrong answers; it is the caller's contract, not checked.
func (r *Relation) HasHash(t Tuple, h uint64) bool {
	if len(t) != r.arity {
		return false
	}
	if k, ok := packKey(t); ok {
		return r.packedOff(k, h) >= 0
	}
	off, ok := r.spill[spillKey(t)]
	return ok && off < int32(len(r.arena))
}

// AddHash is Add for callers that already computed h = TupleHash(t):
// the membership probe and the insert reuse the hash instead of
// re-deriving it from the packed key.
func (r *Relation) AddHash(t Tuple, h uint64) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: adding tuple of arity %d to relation of arity %d", len(t), r.arity))
	}
	if k, ok := packKey(t); ok {
		if r.packedOff(k, h) >= 0 {
			return false
		}
		r.beforeMutate(true)
		r.packedPut(k, h, int32(len(r.arena)))
		r.arena = append(r.arena, t.Clone())
		return true
	}
	return r.addSpillNotIn(t, nil)
}

// AddNotIn inserts t unless it is already present in filter — the fused
// emit of the engine's frontier evaluation: one read-only membership
// probe against the accumulated state, then a straight insert into the
// delta.  A nil filter degenerates to Add.  filter must have the same
// arity as r (the key encoding is deterministic per tuple, so one packed
// key serves both probes).  It reports whether t was inserted.
func (r *Relation) AddNotIn(t Tuple, filter *Relation) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: adding tuple of arity %d to relation of arity %d", len(t), r.arity))
	}
	if k, ok := packKey(t); ok {
		return r.addPackedNotIn(t, k, mix64(k), filter)
	}
	return r.addSpillNotIn(t, filter)
}

// AddNotInHash is AddNotIn for callers that already computed
// h = TupleHash(t): one emit-time hash feeds the filter probe here,
// the Bloom filter, and partition ownership at the call site.
func (r *Relation) AddNotInHash(t Tuple, h uint64, filter *Relation) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("relation: adding tuple of arity %d to relation of arity %d", len(t), r.arity))
	}
	if k, ok := packKey(t); ok {
		return r.addPackedNotIn(t, k, h, filter)
	}
	return r.addSpillNotIn(t, filter)
}

// addPackedNotIn is the packed-tuple body of AddNotIn/AddNotInHash:
// h must equal mix64(k) == TupleHash(t).
func (r *Relation) addPackedNotIn(t Tuple, k, h uint64, filter *Relation) bool {
	if filter != nil && filter.packedOff(k, h) >= 0 {
		return false
	}
	if r.packedOff(k, h) >= 0 {
		return false
	}
	r.beforeMutate(true)
	r.packedPut(k, h, int32(len(r.arena)))
	r.arena = append(r.arena, t.Clone())
	return true
}

// addSpillNotIn is the wide-tuple fallback of AddNotIn/AddNotInHash:
// membership keys off the byte-string spill encoding regardless of
// which hash the caller computed.
func (r *Relation) addSpillNotIn(t Tuple, filter *Relation) bool {
	if filter != nil && filter.Has(t) {
		return false
	}
	if r.Has(t) {
		return false
	}
	r.beforeMutate(true)
	r.insertKey(t)
	r.arena = append(r.arena, t.Clone())
	return true
}

// ReserveHint pre-sizes the relation's storage for about n tuples, so a
// caller that knows the expected cardinality (e.g. last round's delta)
// avoids incremental map growth on the hot insert path.  It only acts
// on a still-empty mutable relation; otherwise it is a no-op.  It is
// capacity-aware: storage a recycled relation (see Reset) already owns
// is kept, so the steady state of a pooled scratch relation allocates
// nothing here.
func (r *Relation) ReserveHint(n int) {
	if r.frozen || len(r.arena) > 0 || n <= 0 {
		return
	}
	if cap(r.arena) < n {
		r.arena = make([]Tuple, 0, n)
	}
	if r.packed != nil {
		r.packed = make(map[uint64]int32, n)
		return
	}
	if r.table == nil || r.share != shareNone {
		// A shared (snapshotted/sealed) table must not grow in place:
		// views hold the same Table, so replace rather than resize.
		r.table = newTable(n)
		return
	}
	r.table.Reserve(n)
}

// Reset clears the relation for reuse, keeping allocated capacity
// (arena, table slots, map buckets) — the freelist protocol of the
// engine's per-round scratch pools.  It refuses, returning false,
// when the storage is frozen or still shared with snapshots; such a
// relation must be dropped, not recycled.
func (r *Relation) Reset() bool {
	if r.frozen || r.share != shareNone {
		return false
	}
	for i := range r.arena {
		r.arena[i] = nil
	}
	r.arena = r.arena[:0]
	if r.packed != nil {
		clear(r.packed)
	} else if r.table != nil {
		r.table.Reset()
	}
	if r.spill != nil {
		clear(r.spill)
	}
	r.invalidate()
	r.idx.Store(nil)
	r.cidx.Store(nil)
	return true
}

// AppendDisjoint appends every tuple of o without membership probes.
// The caller must guarantee that o is disjoint from r's current
// contents (e.g. the two are hash partitions over disjoint key ranges);
// violating that corrupts the relation.  Tuples are shared, not cloned —
// they are immutable by contract.
func (r *Relation) AppendDisjoint(o *Relation) {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: appending arity %d into arity %d", o.arity, r.arity))
	}
	if o.Empty() {
		return
	}
	r.beforeMutate(true)
	for _, t := range o.arena {
		r.insertKey(t)
		r.arena = append(r.arena, t)
	}
}

// ConcatDisjoint assembles one relation from pairwise-disjoint parts
// (hash partitions of a derivation pass): arenas are appended and keys
// inserted without any membership probe, so the merge is a disjoint
// concatenation rather than a re-hashed union.
func ConcatDisjoint(arity int, parts []*Relation) *Relation {
	total := 0
	for _, p := range parts {
		if p != nil {
			total += p.Len()
		}
	}
	r := New(arity)
	r.ReserveHint(total)
	for _, p := range parts {
		if p != nil {
			r.AppendDisjoint(p)
		}
	}
	return r
}

// Remove deletes t, reporting whether it was present.  The arena stays
// dense: the last tuple is swapped into the vacated slot.  If snapshots
// share the storage, it is detached first, so they keep seeing the
// pre-removal contents.
func (r *Relation) Remove(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	off := r.offsetOf(t)
	if off < 0 {
		return false
	}
	r.beforeMutate(false)
	r.deleteKey(r.arena[off])
	last := int32(len(r.arena) - 1)
	if off != last {
		moved := r.arena[last]
		r.arena[off] = moved
		if k, ok := packKey(moved); ok {
			r.packedPut(k, mix64(k), off)
		} else {
			r.spill[spillKey(moved)] = off
		}
	}
	r.arena[last] = nil
	r.arena = r.arena[:last]
	r.invalidate()
	return true
}

// invalidate bumps the mutation generation after a structural mutation
// (a Remove, which rewrites arena offsets).  Cached indexes are stamped
// with the generation they were built at, so a bumped generation makes
// them stale; the next probe rebuilds from scratch.  Appends do NOT
// bump the generation: offsets are assigned monotonically, so an index
// built at arena length n is still exact for the first n tuples and the
// next probe merely extends it with the suffix — the steady state of
// the engine's frontier loop, where the accumulated relations only ever
// grow.
func (r *Relation) invalidate() { r.gen++ }

func (r *Relation) deleteKey(t Tuple) {
	if k, ok := packKey(t); ok {
		if r.packed != nil {
			delete(r.packed, k)
		} else if r.table != nil {
			r.table.deleteHash(k, mix64(k))
		}
		return
	}
	delete(r.spill, spillKey(t))
}

// Tuples returns all tuples in deterministic (sorted) order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.arena))
	copy(out, r.arena)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Each calls f for every tuple in insertion order until f returns
// false.  It must not mutate the relation.
func (r *Relation) Each(f func(Tuple) bool) {
	for _, t := range r.arena {
		if !f(t) {
			return
		}
	}
}

// At returns the tuple at the given arena offset, as returned by
// Lookup.  Callers must not mutate it.
func (r *Relation) At(off int32) Tuple { return r.arena[off] }

// Clone returns a mutable deep copy (indexes are not copied; they
// rebuild on demand).  Tuples themselves are shared: they are immutable
// by contract.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		arity: r.arity,
		arena: make([]Tuple, len(r.arena)),
	}
	copy(c.arena, r.arena)
	if r.frozen {
		// Shared key stores may hold entries past the view; rebuild
		// exactly, in the source's storage mode.
		if r.packed != nil {
			c.packed = make(map[uint64]int32, len(c.arena))
		} else if len(c.arena) > 0 {
			c.table = newTable(len(c.arena))
		}
		for off, t := range c.arena {
			if k, ok := packKey(t); ok {
				c.packedPut(k, mix64(k), int32(off))
			} else {
				if c.spill == nil {
					c.spill = make(map[string]int32)
				}
				c.spill[spillKey(t)] = int32(off)
			}
		}
		return c
	}
	if r.packed != nil {
		c.packed = make(map[uint64]int32, len(r.packed))
		for k, off := range r.packed {
			c.packed[k] = off
		}
	} else {
		c.table = r.table.clone()
	}
	if len(r.spill) > 0 {
		c.spill = make(map[string]int32, len(r.spill))
		for k, off := range r.spill {
			c.spill[k] = off
		}
	}
	return c
}

// Equal reports whether r and o contain exactly the same tuples: equal
// cardinality plus one-way containment suffices for sets.
func (r *Relation) Equal(o *Relation) bool {
	return r.arity == o.arity && len(r.arena) == len(o.arena) && r.SubsetOf(o)
}

// SubsetOf reports whether every tuple of r is in o.  It iterates the
// arena rather than the key maps, so it is exact for snapshot views,
// whose shared maps may hold entries past the view.
func (r *Relation) SubsetOf(o *Relation) bool {
	if r.arity != o.arity || len(r.arena) > len(o.arena) {
		return false
	}
	for _, t := range r.arena {
		if o.offsetOf(t) < 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every tuple of o to r, returning the number of tuples
// actually added.
func (r *Relation) UnionWith(o *Relation) int {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: union of arities %d and %d", r.arity, o.arity))
	}
	added := 0
	for _, t := range o.arena {
		// Tuples already owned by a relation are immutable; insert
		// without re-cloning.
		if r.addOwned(t) {
			added++
		}
	}
	return added
}

// addOwned inserts t without copying it.  The caller must guarantee t
// is never mutated afterwards.  Like every append, it leaves cached
// indexes valid for their covered prefix; probes extend them.
func (r *Relation) addOwned(t Tuple) bool {
	if r.Has(t) {
		return false
	}
	r.beforeMutate(true)
	r.insertKey(t)
	r.arena = append(r.arena, t)
	return true
}

// Union returns a fresh relation with the tuples of both r and o.
func (r *Relation) Union(o *Relation) *Relation {
	c := r.Clone()
	c.UnionWith(o)
	return c
}

// Intersect returns a fresh relation with the tuples common to r and o.
func (r *Relation) Intersect(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: intersect of arities %d and %d", r.arity, o.arity))
	}
	c := New(r.arity)
	small, large := r, o
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for _, t := range small.arena {
		if large.offsetOf(t) >= 0 {
			c.addOwned(t)
		}
	}
	return c
}

// Diff returns a fresh relation with the tuples of r not in o.
func (r *Relation) Diff(o *Relation) *Relation {
	if r.arity != o.arity {
		panic(fmt.Sprintf("relation: diff of arities %d and %d", r.arity, o.arity))
	}
	c := New(r.arity)
	for _, t := range r.arena {
		if o.offsetOf(t) < 0 {
			c.addOwned(t)
		}
	}
	return c
}

// cols returns the per-column indexes, building all of them on first
// use, extending them when the relation has only grown since the cached
// set was published, and rebuilding from scratch after a structural
// mutation.  The build is synchronized so concurrent readers are safe;
// published sets are immutable, extension copies the maps and appends
// fresh slice headers, so established readers never observe writes.
// The arity is small in practice, so building every column at once
// costs about as much as building one.
func (r *Relation) cols() []colIndex {
	if p := r.idx.Load(); p != nil && p.gen == r.gen && p.n == len(r.arena) {
		return p.cols
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.idx.Load()
	if p != nil && p.gen == r.gen && p.n == len(r.arena) {
		return p.cols
	}
	var cols []colIndex
	lo := 0
	if p != nil && p.gen == r.gen && p.n < len(r.arena) {
		// Append-only growth since publication: extend by the suffix.
		cols = make([]colIndex, r.arity)
		for c := range cols {
			m := make(colIndex, len(p.cols[c])+(len(r.arena)-p.n))
			for v, offs := range p.cols[c] {
				m[v] = offs
			}
			cols[c] = m
		}
		lo = p.n
	} else {
		cols = make([]colIndex, r.arity)
		for c := range cols {
			cols[c] = make(colIndex)
		}
	}
	for off := lo; off < len(r.arena); off++ {
		for c, v := range r.arena[off] {
			cols[c][v] = append(cols[c][v], int32(off))
		}
	}
	r.idx.Store(&colIndexes{gen: r.gen, n: len(r.arena), cols: cols})
	return cols
}

// Lookup returns the arena offsets of the tuples whose col-th element
// equals val; resolve them with At.  The underlying index is built
// lazily and cached until the next mutation.  Callers must not mutate
// the returned slice.  Safe for concurrent use by readers.
func (r *Relation) Lookup(col, val int) []int32 {
	if col < 0 || col >= r.arity {
		panic(fmt.Sprintf("relation: index column %d out of range for arity %d", col, r.arity))
	}
	return r.cols()[col][val]
}

// Format renders the relation's tuples with constant names from u, in
// sorted order, e.g. "{(a,b), (b,c)}".
func (r *Relation) Format(u *Universe) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r.Tuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, v := range t {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(u.Name(v))
		}
		b.WriteByte(')')
	}
	b.WriteByte('}')
	return b.String()
}

// Full returns the relation Aᵏ: all tuples of the given arity over a
// universe of size n.  Beware: it materializes n^arity tuples.
func Full(arity, n int) *Relation {
	r := New(arity)
	if arity == 0 {
		r.Add(Tuple{})
		return r
	}
	t := make(Tuple, arity)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == arity {
			r.Add(t)
			return
		}
		for v := 0; v < n; v++ {
			t[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return r
}
