package relation

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPackKeyInjectivePerArity(t *testing.T) {
	f := func(raw [2][4]uint16) bool {
		a := Tuple{int(raw[0][0]), int(raw[0][1]), int(raw[0][2]), int(raw[0][3])}
		b := Tuple{int(raw[1][0]), int(raw[1][1]), int(raw[1][2]), int(raw[1][3])}
		ka, oka := packKey(a)
		kb, okb := packKey(b)
		if !oka || !okb {
			return false // uint16 elements always pack at arity 4
		}
		return (ka == kb) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPackKeySpillThreshold(t *testing.T) {
	// Arity 4 packs 16 bits per element: 65535 packs, 65536 spills.
	if _, ok := packKey(Tuple{65535, 0, 0, 0}); !ok {
		t.Error("in-range tuple did not pack")
	}
	if _, ok := packKey(Tuple{65536, 0, 0, 0}); ok {
		t.Error("out-of-range tuple packed")
	}
	if _, ok := packKey(Tuple{-1}); ok {
		t.Error("negative element packed")
	}
	if k, ok := packKey(Tuple{}); !ok || k != 0 {
		t.Errorf("empty tuple: key=%d ok=%v", k, ok)
	}
}

func TestPackedCapacity(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1 << 32, 3: 1 << 21, 4: 1 << 16, 8: 1 << 8}
	for arity, want := range cases {
		if got := PackedCapacity(arity); got != want {
			t.Errorf("PackedCapacity(%d) = %d, want %d", arity, got, want)
		}
	}
}

func TestSpillKeyUnambiguous(t *testing.T) {
	// Distinct wide tuples must get distinct spill keys, including across
	// the 4-byte/8-byte width boundary.
	pairs := [][2]Tuple{
		{{1 << 40, 0}, {0, 1 << 40}},
		{{1 << 33, 5}, {5, 1 << 33}},
		{{1 << 31, 1 << 31}, {1 << 32, 0}},
	}
	for _, p := range pairs {
		if spillKey(p[0]) == spillKey(p[1]) {
			t.Errorf("spill key collision between %v and %v", p[0], p[1])
		}
	}
	if spillKey(Tuple{7, 8}) == spillKey(Tuple{8, 7}) {
		t.Error("spill key ignores element order")
	}
}

// TestRelationSpillPath drives a relation whose tuples exceed the
// packed width, so membership goes through the fallback encoding.
func TestRelationSpillPath(t *testing.T) {
	const big = 1 << 30 // arity 5 → 12 bits per element, forces spill
	r := New(5)
	if !r.Add(Tuple{big, 1, 2, 3, 4}) || !r.Add(Tuple{0, 1, 2, 3, 4}) {
		t.Fatal("Add failed")
	}
	if r.Add(Tuple{big, 1, 2, 3, 4}) {
		t.Error("duplicate spilled tuple added twice")
	}
	if !r.Has(Tuple{big, 1, 2, 3, 4}) || r.Has(Tuple{big, 1, 2, 3, 5}) {
		t.Error("Has wrong on spill path")
	}
	if got := len(r.Lookup(0, big)); got != 1 {
		t.Errorf("Lookup on spilled tuple column = %d entries", got)
	}
	if !r.Remove(Tuple{big, 1, 2, 3, 4}) || r.Len() != 1 {
		t.Error("Remove on spill path failed")
	}
	if !r.Clone().Equal(r) {
		t.Error("clone with spill map not Equal")
	}
}

// TestLookupInvalidation checks that every mutating operation refreshes
// the offset index that Lookup serves — the classic stale-cache bug the
// CI race job guards.
func TestLookupInvalidation(t *testing.T) {
	r := FromTuples(2, []Tuple{{1, 2}, {1, 3}, {2, 3}})
	if got := len(r.Lookup(0, 1)); got != 2 {
		t.Fatalf("initial Lookup(0,1) = %d", got)
	}
	r.Add(Tuple{1, 9})
	if got := len(r.Lookup(0, 1)); got != 3 {
		t.Errorf("stale index after Add: %d", got)
	}
	r.Remove(Tuple{1, 2})
	if got := len(r.Lookup(0, 1)); got != 2 {
		t.Errorf("stale index after Remove: %d", got)
	}
	r.UnionWith(FromTuples(2, []Tuple{{1, 5}, {4, 4}}))
	if got := len(r.Lookup(0, 1)); got != 3 {
		t.Errorf("stale index after UnionWith: %d", got)
	}
	// Offsets returned by Lookup resolve through At to matching tuples.
	for _, off := range r.Lookup(1, 3) {
		if tu := r.At(off); tu[1] != 3 {
			t.Errorf("At(%d) = %v, want column 1 == 3", off, tu)
		}
	}
}

// TestLookupAfterRemoveSwap exercises the swap-delete: removing a tuple
// moves the last arena entry into its slot, and the rebuilt index must
// agree.
func TestLookupAfterRemoveSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := New(2)
	ref := make(map[[2]int]bool)
	for i := 0; i < 400; i++ {
		tu := Tuple{rng.Intn(8), rng.Intn(8)}
		if rng.Intn(3) == 0 {
			r.Remove(tu)
			delete(ref, [2]int{tu[0], tu[1]})
		} else {
			r.Add(tu)
			ref[[2]int{tu[0], tu[1]}] = true
		}
		if rng.Intn(10) == 0 { // periodically force an index build
			r.Lookup(0, tu[0])
		}
	}
	if r.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(ref))
	}
	for col := 0; col < 2; col++ {
		total := 0
		for v := 0; v < 8; v++ {
			for _, off := range r.Lookup(col, v) {
				tu := r.At(off)
				if tu[col] != v || !ref[[2]int{tu[0], tu[1]}] {
					t.Fatalf("index entry %v wrong for col %d val %d", tu, col, v)
				}
			}
			total += len(r.Lookup(col, v))
		}
		if total != r.Len() {
			t.Fatalf("col %d index covers %d tuples, want %d", col, total, r.Len())
		}
	}
}

// TestConcurrentLookup hammers the lazy index build from many readers;
// run under -race it proves the synchronization of cols().
func TestConcurrentLookup(t *testing.T) {
	r := New(2)
	for i := 0; i < 50; i++ {
		r.Add(Tuple{i % 7, i % 5})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if len(r.Lookup(i%2, i%7)) > 8+2 {
					t.Error("impossible bucket size")
					return
				}
				if !r.Has(Tuple{i % 7, i % 5}) {
					t.Error("Has lost a tuple during concurrent reads")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEqualAcrossStorageOrders checks that Equal is order-insensitive:
// the same set inserted in different orders (hence different arenas)
// compares equal.
func TestEqualAcrossStorageOrders(t *testing.T) {
	a := FromTuples(2, []Tuple{{1, 2}, {3, 4}, {5, 6}})
	b := FromTuples(2, []Tuple{{5, 6}, {1, 2}, {3, 4}})
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("Equal depends on insertion order")
	}
	b.Remove(Tuple{1, 2})
	b.Add(Tuple{1, 7})
	if a.Equal(b) {
		t.Error("Equal missed a differing tuple")
	}
}
