package relation

// Multiset counts tuples: a set of tuples with a signed 64-bit count
// attached to each.  The incremental-maintenance layer uses it for
// derivation support counts — the number of distinct rule-body
// embeddings deriving a tuple — which inserts bump up and deletes bump
// down.  Counts may transiently be zero or negative while an update is
// being applied; entries are never removed, so offsets stay stable.
//
// A Multiset is not safe for concurrent mutation; evaluation workers
// each fill a private one and merge them afterwards (see MergeFrom).
type Multiset struct {
	rel    *Relation
	counts []int64 // parallel to rel's arena
}

// NewMultiset returns an empty multiset over tuples of the given arity.
func NewMultiset(arity int) *Multiset {
	return &Multiset{rel: New(arity)}
}

// Arity returns the tuple arity.
func (m *Multiset) Arity() int { return m.rel.Arity() }

// Len returns the number of distinct tuples ever bumped (including
// those whose count has returned to zero).
func (m *Multiset) Len() int { return m.rel.Len() }

// Bump adds n to t's count, inserting t with count n if absent.
func (m *Multiset) Bump(t Tuple, n int64) {
	if off := m.rel.offsetOf(t); off >= 0 {
		m.counts[off] += n
		return
	}
	m.rel.Add(t)
	m.counts = append(m.counts, n)
}

// Count returns t's count (0 if absent).
func (m *Multiset) Count(t Tuple) int64 {
	if off := m.rel.offsetOf(t); off >= 0 {
		return m.counts[off]
	}
	return 0
}

// Each calls f for every tuple ever bumped, in insertion order, until f
// returns false.  Entries with zero count are included.
func (m *Multiset) Each(f func(Tuple, int64) bool) {
	for off, t := range m.rel.arena {
		if !f(t, m.counts[off]) {
			return
		}
	}
}

// MergeFrom adds every count of o into m.
func (m *Multiset) MergeFrom(o *Multiset) {
	o.Each(func(t Tuple, n int64) bool {
		m.Bump(t, n)
		return true
	})
}
