package relation

import "sync/atomic"

// Open-addressing hash table for packed uint64 tuple keys.
//
// Relation membership for packable tuples used to live in a Go
// map[uint64]int32.  That map re-hashes keys the engine has already
// hashed at emit time (TupleHash is mix64 of the packed key) and its
// bucket layout scatters a probe across cache lines.  Table is the
// specialized replacement: power-of-two capacity, linear probing, and
// an 8-bit fingerprint control array scanned ahead of the key array —
// a probe touches the dense ctrl bytes first and only compares full
// keys on a fingerprint hit, so misses usually resolve within one
// cache line.  Deletion uses backward-shift compaction, so the table
// is tombstone-free and probe distances never degrade.
//
// The hash of a key is always mix64(key) — identical to TupleHash of
// the tuple it encodes — which is what makes the *Hash entry points
// on Relation sound: one hash computed at emit time feeds the Bloom
// filter, partition ownership, and this table's probe.
//
// Table is not a general map: keys are assumed well-distributed (they
// are always probed via mix64), values are arena offsets, and the
// zero ctrl byte means "empty slot" (fingerprints set bit 7, so a
// live slot is never 0).

const (
	tableMinCap = 16 // smallest slot count; must be a power of two
)

// Table maps packed uint64 keys to int32 arena offsets.
type Table struct {
	ctrl []uint8  // fingerprint | 0x80 per slot; 0 = empty
	keys []uint64 // slot keys, valid where ctrl != 0
	vals []int32  // slot values, valid where ctrl != 0
	mask uint64   // len(ctrl) - 1
	n    int      // live entries
	grow int      // resize threshold (¾ of capacity)
}

// tableFP extracts the 8-bit fingerprint of a hash.  Bit 7 is forced
// on so a live slot's ctrl byte is never 0 (the empty marker).  The
// top bits of the hash are used because linear probing homes on the
// low bits: home slot and fingerprint stay independent.
func tableFP(h uint64) uint8 { return uint8(h>>57) | 0x80 }

// tableCapFor returns the smallest power-of-two capacity that holds n
// entries under the ¾ load ceiling.
func tableCapFor(n int) int {
	c := tableMinCap
	for c-c/4 < n {
		c <<= 1
	}
	return c
}

// newTable returns a table pre-sized for about n entries.
func newTable(n int) *Table {
	t := &Table{}
	t.init(tableCapFor(n))
	return t
}

// init (re)allocates the slot arrays at capacity c, a power of two.
func (t *Table) init(c int) {
	t.ctrl = make([]uint8, c)
	t.keys = make([]uint64, c)
	t.vals = make([]int32, c)
	t.mask = uint64(c - 1)
	t.n = 0
	t.grow = c - c/4
}

// Len returns the number of live entries.
func (t *Table) Len() int { return t.n }

// getHash looks up k, whose hash h must equal mix64(k).
func (t *Table) getHash(k, h uint64) (int32, bool) {
	fp := tableFP(h)
	for j := h & t.mask; ; j = (j + 1) & t.mask {
		c := t.ctrl[j]
		if c == 0 {
			return 0, false
		}
		if c == fp && t.keys[j] == k {
			return t.vals[j], true
		}
	}
}

// putHash inserts or updates k -> v; h must equal mix64(k).
func (t *Table) putHash(k, h uint64, v int32) {
	if t.n >= t.grow {
		t.rehash(len(t.ctrl) << 1)
	}
	fp := tableFP(h)
	for j := h & t.mask; ; j = (j + 1) & t.mask {
		c := t.ctrl[j]
		if c == 0 {
			t.ctrl[j] = fp
			t.keys[j] = k
			t.vals[j] = v
			t.n++
			return
		}
		if c == fp && t.keys[j] == k {
			t.vals[j] = v
			return
		}
	}
}

// deleteHash removes k (h must equal mix64(k)), reporting whether it
// was present.  The probe chain is compacted by backward shifting, so
// no tombstones exist: every entry whose probe path crossed the freed
// slot is moved up into it, recursively, until a natural gap.
func (t *Table) deleteHash(k, h uint64) bool {
	fp := tableFP(h)
	j := h & t.mask
	for {
		c := t.ctrl[j]
		if c == 0 {
			return false
		}
		if c == fp && t.keys[j] == k {
			break
		}
		j = (j + 1) & t.mask
	}
	free := j
	for j = (j + 1) & t.mask; t.ctrl[j] != 0; j = (j + 1) & t.mask {
		home := mix64(t.keys[j]) & t.mask
		// Move j up iff its probe path crosses the free slot: the
		// cyclic distance home→j must be at least the distance
		// free→j (equivalently, free lies in [home, j]).
		if (j-home)&t.mask >= (j-free)&t.mask {
			t.ctrl[free] = t.ctrl[j]
			t.keys[free] = t.keys[j]
			t.vals[free] = t.vals[j]
			free = j
		}
	}
	t.ctrl[free] = 0
	t.n--
	return true
}

// rehash rebuilds the table at the given power-of-two capacity.
func (t *Table) rehash(c int) {
	oc, ok, ov := t.ctrl, t.keys, t.vals
	t.init(c)
	for j, cb := range oc {
		if cb != 0 {
			t.putHash(ok[j], mix64(ok[j]), ov[j])
		}
	}
}

// Reserve grows the table so about n entries fit without a rehash.
// It never shrinks, and keeps existing entries.
func (t *Table) Reserve(n int) {
	if c := tableCapFor(n); c > len(t.ctrl) {
		t.rehash(c)
	}
}

// Reset clears all entries but keeps the allocated capacity — the
// freelist half of the engine's reset-not-reallocate scratch reuse.
func (t *Table) Reset() {
	clear(t.ctrl)
	t.n = 0
}

// clone returns a deep copy.  Nil-safe: cloning a nil table (a table-
// mode relation that never inserted a packed tuple) returns nil.
func (t *Table) clone() *Table {
	if t == nil {
		return nil
	}
	c := &Table{
		ctrl: make([]uint8, len(t.ctrl)),
		keys: make([]uint64, len(t.keys)),
		vals: make([]int32, len(t.vals)),
		mask: t.mask,
		n:    t.n,
		grow: t.grow,
	}
	copy(c.ctrl, t.ctrl)
	copy(c.keys, t.keys)
	copy(c.vals, t.vals)
	return c
}

// each calls f for every live (key, value) entry until f returns
// false.  Iteration order is slot order, not insertion order.
func (t *Table) each(f func(k uint64, v int32) bool) {
	if t == nil {
		return
	}
	for j, c := range t.ctrl {
		if c != 0 && !f(t.keys[j], t.vals[j]) {
			return
		}
	}
}

// Process-wide storage mode for the packed-key membership set.  The
// open-addressing Table is the default; the previous map[uint64]int32
// remains available as the bit-exactness oracle for differential
// tests and A/B benchmarks (E18).  The mode is sampled once per
// relation at New(), so flipping it mid-run affects only relations
// created afterwards.
var packedTableOff atomic.Bool

// SetDefaultPackedTable selects the packed-key storage for relations
// created afterwards: true (the default) uses the open-addressing
// Table, false the oracle Go map.
func SetDefaultPackedTable(on bool) { packedTableOff.Store(!on) }

// PackedTableEnabled reports the current process-wide storage mode.
func PackedTableEnabled() bool { return !packedTableOff.Load() }
