package relation

import (
	"sync"
	"testing"
)

// TestAddNotIn covers the fused frontier emit: filter hits, duplicate
// rejection, insertion, nil filter, and the spill path.
func TestAddNotIn(t *testing.T) {
	filter := FromTuples(2, []Tuple{{1, 2}, {3, 4}})
	r := New(2)
	if r.AddNotIn(Tuple{1, 2}, filter) {
		t.Error("tuple in filter was inserted")
	}
	if !r.AddNotIn(Tuple{5, 6}, filter) {
		t.Error("new tuple not inserted")
	}
	if r.AddNotIn(Tuple{5, 6}, filter) {
		t.Error("duplicate re-inserted")
	}
	if !r.AddNotIn(Tuple{7, 8}, nil) {
		t.Error("nil filter must degenerate to Add")
	}
	if r.Len() != 2 || !r.Has(Tuple{5, 6}) || !r.Has(Tuple{7, 8}) {
		t.Errorf("unexpected contents: %v", r.Tuples())
	}

	// Spill path: ids beyond the packed width for arity 2 (≥ 2³²).
	big := 1 << 40
	sf := New(2)
	sf.Add(Tuple{big, 1})
	sr := New(2)
	if sr.AddNotIn(Tuple{big, 1}, sf) {
		t.Error("spilled tuple in filter was inserted")
	}
	if !sr.AddNotIn(Tuple{big, 2}, sf) {
		t.Error("new spilled tuple not inserted")
	}
}

// TestAppendDisjointConcat covers the partition-merge primitives.
func TestAppendDisjointConcat(t *testing.T) {
	a := FromTuples(2, []Tuple{{0, 1}, {2, 3}})
	b := FromTuples(2, []Tuple{{4, 5}})
	c := ConcatDisjoint(2, []*Relation{a, b, nil, New(2)})
	if c.Len() != 3 {
		t.Fatalf("ConcatDisjoint: len = %d, want 3", c.Len())
	}
	for _, want := range []Tuple{{0, 1}, {2, 3}, {4, 5}} {
		if !c.Has(want) {
			t.Errorf("ConcatDisjoint missing %v", want)
		}
	}
	// The concatenated relation must be fully functional: probes, adds.
	if got := c.Lookup(0, 2); len(got) != 1 || c.At(got[0])[1] != 3 {
		t.Errorf("Lookup on concatenated relation broken: %v", got)
	}
	if !c.Add(Tuple{6, 7}) || c.Len() != 4 {
		t.Error("Add after ConcatDisjoint broken")
	}
}

// TestReserveHint checks pre-sizing is contents-neutral and only acts
// on empty relations.
func TestReserveHint(t *testing.T) {
	r := New(2)
	r.ReserveHint(64)
	r.Add(Tuple{1, 2})
	r.ReserveHint(1024) // non-empty: must be a no-op, not a reset
	if r.Len() != 1 || !r.Has(Tuple{1, 2}) {
		t.Fatalf("ReserveHint disturbed contents: %v", r.Tuples())
	}
}

// TestTupleHashSpread sanity-checks that the partition hash actually
// spreads structured keys: consecutive packed tuples must not collapse
// into a few buckets.
func TestTupleHashSpread(t *testing.T) {
	const buckets = 8
	seen := make(map[uint64]int)
	for x := 0; x < 32; x++ {
		for y := 0; y < 32; y++ {
			seen[TupleHash(Tuple{x, y})%buckets]++
		}
	}
	if len(seen) != buckets {
		t.Fatalf("hash uses %d of %d buckets", len(seen), buckets)
	}
	for b, n := range seen {
		if n < 1024/buckets/4 {
			t.Errorf("bucket %d badly underfull: %d of 1024", b, n)
		}
	}
	if TupleHash(Tuple{1, 2}) != TupleHash(Tuple{1, 2}) {
		t.Error("hash not deterministic")
	}
}

// TestIndexExtendsOnAppend is the regression guard for append-friendly
// indexes: a Lookup after appends must see the new tuples (the index is
// extended by the arena suffix, not served stale), and a Remove must
// still force a full rebuild.
func TestIndexExtendsOnAppend(t *testing.T) {
	r := FromTuples(2, []Tuple{{0, 1}, {1, 2}})
	if got := r.Lookup(0, 1); len(got) != 1 {
		t.Fatalf("initial Lookup: %v", got)
	}
	// Append after the index is built: extension must pick them up.
	r.Add(Tuple{1, 5})
	r.Add(Tuple{2, 6})
	if got := r.Lookup(0, 1); len(got) != 2 {
		t.Fatalf("Lookup after append: %d offsets, want 2", len(got))
	}
	if got := r.LookupCols([]int{0, 1}, []int{1, 5}); len(got) != 1 {
		t.Fatalf("LookupCols after append: %v", got)
	}
	if r.Distinct(0) != 3 {
		t.Fatalf("Distinct after append = %d, want 3", r.Distinct(0))
	}
	// Structural mutation: offsets are rewritten, a stale index would
	// return the swapped-in tuple under the removed key.
	r.Remove(Tuple{0, 1})
	if got := r.Lookup(0, 0); len(got) != 0 {
		t.Fatalf("Lookup after Remove returned stale offsets: %v", got)
	}
	if got := r.Lookup(0, 2); len(got) != 1 || r.At(got[0])[1] != 6 {
		t.Fatalf("Lookup after Remove: %v", got)
	}
	if got := r.LookupCols([]int{0, 1}, []int{2, 6}); len(got) != 1 {
		t.Fatalf("LookupCols after Remove: %v", got)
	}
}

// TestIndexExtensionPreservesSnapshots: a snapshot view probed before
// and after the live relation grows keeps answering for its own prefix.
func TestIndexExtensionPreservesSnapshots(t *testing.T) {
	r := FromTuples(2, []Tuple{{0, 1}, {0, 2}})
	snap := r.Snapshot()
	if got := snap.Lookup(0, 0); len(got) != 2 {
		t.Fatalf("snapshot Lookup before growth: %v", got)
	}
	r.Add(Tuple{0, 3})
	if got := r.Lookup(0, 0); len(got) != 3 {
		t.Fatalf("live Lookup after growth: %v", got)
	}
	if got := snap.Lookup(0, 0); len(got) != 2 {
		t.Fatalf("snapshot sees appended tuples: %v", got)
	}
	if snap.Has(Tuple{0, 3}) {
		t.Error("snapshot Has sees appended tuple")
	}
}

// TestConcurrentLookupDuringExtension hammers Lookup from many readers
// on a relation whose index was built before a batch of appends: every
// reader triggers (or races to trigger) the same extension and must see
// the complete answer.  Run under -race in CI.
func TestConcurrentLookupDuringExtension(t *testing.T) {
	r := New(2)
	for i := 0; i < 256; i++ {
		r.Add(Tuple{i % 7, i})
	}
	r.Lookup(0, 0) // build at 256
	for i := 256; i < 1024; i++ {
		r.Add(Tuple{i % 7, i})
	}
	want := 0
	r.Each(func(t Tuple) bool {
		if t[0] == 3 {
			want++
		}
		return true
	})
	var wg sync.WaitGroup
	errs := make(chan int, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := len(r.Lookup(0, 3)); got != want {
				errs <- got
			}
		}()
	}
	wg.Wait()
	close(errs)
	for got := range errs {
		t.Fatalf("concurrent Lookup during extension: %d offsets, want %d", got, want)
	}
}
