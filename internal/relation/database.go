package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Database is a finite structure D = (A, R₁, …, Rₗ): a universe plus
// named relations.  The same type stores both EDB (database) relations
// and computed IDB relations; the split between the two is a property
// of a program, not of the data.
//
// Like Relation, a Database may be read by any number of goroutines
// concurrently (the evaluation engine's worker pool does), but
// mutation requires exclusive access.
type Database struct {
	univ  *Universe
	rels  map[string]*Relation
	order []string // insertion order of relation names
}

// NewDatabase returns an empty database with an empty universe.
func NewDatabase() *Database {
	return &Database{univ: NewUniverse(), rels: make(map[string]*Relation)}
}

// NewDatabaseOn returns an empty database over an existing universe.
func NewDatabaseOn(u *Universe) *Database {
	return &Database{univ: u, rels: make(map[string]*Relation)}
}

// Universe returns the database's universe.
func (db *Database) Universe() *Universe { return db.univ }

// Relation returns the named relation, or nil if absent.
func (db *Database) Relation(name string) *Relation { return db.rels[name] }

// Ensure returns the named relation, creating an empty one of the given
// arity if absent.  It returns an error if the relation exists with a
// different arity.
func (db *Database) Ensure(name string, arity int) (*Relation, error) {
	if r, ok := db.rels[name]; ok {
		if r.Arity() != arity {
			return nil, fmt.Errorf("relation %s has arity %d, want %d", name, r.Arity(), arity)
		}
		return r, nil
	}
	r := New(arity)
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, nil
}

// MustEnsure is Ensure but panics on arity conflict.  Use it when the
// caller has already validated arities (e.g. against a program).
func (db *Database) MustEnsure(name string, arity int) *Relation {
	r, err := db.Ensure(name, arity)
	if err != nil {
		panic("relation: " + err.Error())
	}
	return r
}

// Set installs rel under name, replacing any previous relation.
func (db *Database) Set(name string, rel *Relation) {
	if _, ok := db.rels[name]; !ok {
		db.order = append(db.order, name)
	}
	db.rels[name] = rel
}

// AddFact interns the constant names and adds the tuple to the named
// relation, creating the relation on first use.
func (db *Database) AddFact(pred string, consts ...string) error {
	r, err := db.Ensure(pred, len(consts))
	if err != nil {
		return err
	}
	t := make(Tuple, len(consts))
	for i, c := range consts {
		t[i] = db.univ.Intern(c)
	}
	r.Add(t)
	return nil
}

// AddConstant interns a constant into the universe without adding any
// fact.  Useful for padding the active domain (e.g. the binary domain
// {0,1} of Theorem 4).
func (db *Database) AddConstant(name string) int { return db.univ.Intern(name) }

// Names returns the relation names in insertion order.
func (db *Database) Names() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// SortedNames returns the relation names sorted lexicographically.
func (db *Database) SortedNames() []string {
	out := db.Names()
	sort.Strings(out)
	return out
}

// Clone returns a deep copy sharing nothing with db.
func (db *Database) Clone() *Database {
	c := &Database{
		univ:  db.univ.Clone(),
		rels:  make(map[string]*Relation, len(db.rels)),
		order: make([]string, len(db.order)),
	}
	copy(c.order, db.order)
	for name, r := range db.rels {
		c.rels[name] = r.Clone()
	}
	return c
}

// String renders the database deterministically, one relation per line.
func (db *Database) String() string {
	var b strings.Builder
	for _, name := range db.SortedNames() {
		fmt.Fprintf(&b, "%s/%d = %s\n", name, db.rels[name].Arity(), db.rels[name].Format(db.univ))
	}
	return b.String()
}

// TotalTuples returns the number of tuples across all relations, a
// convenient size measure for benchmarks.
func (db *Database) TotalTuples() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}
