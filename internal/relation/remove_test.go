package relation

import (
	"math/rand"
	"testing"
)

// Remove-path index coverage.
//
// Appends extend published indexes in place (growth_test.go); Remove is
// the one mutation that rewrites arena offsets (swap-with-last) and
// must therefore bump the generation and force a full rebuild on the
// next probe.  These tests drive that branch directly for the
// per-column indexes, the composite indexes, and the Distinct stats,
// against a brute-force oracle.

// bruteOffsets returns the arena offsets matching cols=vals by scan.
func bruteOffsets(r *Relation, cols, vals []int) []int32 {
	var out []int32
	for off := int32(0); off < int32(r.Len()); off++ {
		t := r.At(off)
		ok := true
		for i, c := range cols {
			if t[c] != vals[i] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, off)
		}
	}
	return out
}

func sameOffsets(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRemoveRebuildsColumnIndex(t *testing.T) {
	r := New(2)
	for i := 0; i < 10; i++ {
		r.Add(Tuple{i % 3, i})
	}
	// Build and pin the per-column index, then Remove a middle tuple:
	// the swap-with-last moves an offset the stale index still points
	// at, so a correct implementation must rebuild.
	if got := len(r.Lookup(0, 0)); got != 4 {
		t.Fatalf("pre-remove Lookup(0,0) = %d offsets, want 4", got)
	}
	if !r.Remove(Tuple{0, 0}) {
		t.Fatal("Remove failed")
	}
	if got, want := r.Lookup(0, 0), bruteOffsets(r, []int{0}, []int{0}); !sameOffsets(got, want) {
		t.Fatalf("post-remove Lookup(0,0) = %v, want %v", got, want)
	}
	// Distinct shares the per-column index and must also see the
	// rebuild when a value's last tuple disappears.
	r2 := New(1)
	r2.Add(Tuple{1})
	r2.Add(Tuple{2})
	if r2.Distinct(0) != 2 {
		t.Fatal("Distinct before Remove")
	}
	r2.Remove(Tuple{2})
	if got := r2.Distinct(0); got != 1 {
		t.Fatalf("Distinct after Remove = %d, want 1", got)
	}
}

func TestRemoveRebuildsCompositeIndex(t *testing.T) {
	r := New(3)
	for i := 0; i < 12; i++ {
		r.Add(Tuple{i % 2, i % 3, i})
	}
	cols := []int{0, 1}
	if got := len(r.LookupCols(cols, []int{0, 0})); got != 2 {
		t.Fatalf("pre-remove LookupCols = %d offsets, want 2", got)
	}
	// Remove a tuple that is NOT last in the arena, so another tuple is
	// swapped into its offset.
	if !r.Remove(Tuple{0, 0, 0}) {
		t.Fatal("Remove failed")
	}
	for _, probe := range [][]int{{0, 0}, {1, 1}, {0, 2}} {
		got := r.LookupCols(cols, probe)
		want := bruteOffsets(r, cols, probe)
		if !sameOffsets(got, want) {
			t.Fatalf("post-remove LookupCols(%v) = %v, want %v", probe, got, want)
		}
	}
}

// TestPropRemoveInterleavedProbes is the property form: random
// add/remove streams with index probes interleaved, so indexes are
// built at many different arena states and every probe after a Remove
// exercises a rebuild; results always match the brute-force scan.
func TestPropRemoveInterleavedProbes(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := New(2)
		var live []Tuple
		for step := 0; step < 200; step++ {
			switch {
			case len(live) == 0 || rng.Intn(3) != 0:
				tpl := Tuple{rng.Intn(4), rng.Intn(4)}
				if r.Add(tpl) {
					live = append(live, tpl)
				}
			default:
				i := rng.Intn(len(live))
				if !r.Remove(live[i]) {
					t.Fatalf("seed %d step %d: Remove(%v) failed", seed, step, live[i])
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if step%7 == 0 {
				c, v := rng.Intn(2), rng.Intn(4)
				if got, want := r.Lookup(c, v), bruteOffsets(r, []int{c}, []int{v}); !sameOffsets(got, want) {
					t.Fatalf("seed %d step %d: Lookup(%d,%d) = %v, want %v", seed, step, c, v, got, want)
				}
			}
			if step%11 == 0 {
				vals := []int{rng.Intn(4), rng.Intn(4)}
				if got, want := r.LookupCols([]int{0, 1}, vals), bruteOffsets(r, []int{0, 1}, vals); !sameOffsets(got, want) {
					t.Fatalf("seed %d step %d: LookupCols(%v) = %v, want %v", seed, step, vals, got, want)
				}
			}
		}
		if r.Len() != len(live) {
			t.Fatalf("seed %d: %d tuples, oracle has %d", seed, r.Len(), len(live))
		}
	}
}

// TestRemoveDetachesFromSnapshot pins the snapshot interaction: a
// Remove on a sealed relation copies storage, the snapshot keeps its
// view, and both sides' indexes answer for their own contents.
func TestRemoveDetachesFromSnapshot(t *testing.T) {
	r := New(2)
	for i := 0; i < 6; i++ {
		r.Add(Tuple{i, i + 1})
	}
	snap := r.Snapshot()
	if got := len(snap.Lookup(0, 2)); got != 1 {
		t.Fatalf("snapshot Lookup = %d, want 1", got)
	}
	if !r.Remove(Tuple{2, 3}) {
		t.Fatal("Remove failed")
	}
	if snap.Len() != 6 || len(snap.Lookup(0, 2)) != 1 {
		t.Fatal("snapshot changed by Remove on the source")
	}
	if r.Len() != 5 || len(r.Lookup(0, 2)) != 0 {
		t.Fatalf("source after Remove: len=%d Lookup(0,2)=%v", r.Len(), r.Lookup(0, 2))
	}
	if got, want := r.LookupCols([]int{0, 1}, []int{4, 5}), bruteOffsets(r, []int{0, 1}, []int{4, 5}); !sameOffsets(got, want) {
		t.Fatalf("detached LookupCols = %v, want %v", got, want)
	}
}

// TestRemoveSpillPath drives Remove through the byte-string spill
// encoding: ids beyond the packed width take the secondary map, and
// the swap-with-last bookkeeping must update it symmetrically.
func TestRemoveSpillPath(t *testing.T) {
	big := PackedCapacity(4) // ids ≥ big spill for arity 4
	if big == 0 {
		t.Skip("arity 4 packs unbounded on this platform")
	}
	r := New(4)
	var tuples []Tuple
	for i := 0; i < 8; i++ {
		tpl := Tuple{big + i, i, big + 2*i, 1}
		tuples = append(tuples, tpl)
		r.Add(tpl)
	}
	for i, tpl := range tuples {
		if i%2 == 0 {
			continue
		}
		if !r.Remove(tpl) {
			t.Fatalf("Remove(%v) failed", tpl)
		}
	}
	for i, tpl := range tuples {
		if got, want := r.Has(tpl), i%2 == 0; got != want {
			t.Fatalf("Has(%v) = %v, want %v", tpl, got, want)
		}
	}
	if got, want := r.Lookup(3, 1), bruteOffsets(r, []int{3}, []int{1}); !sameOffsets(got, want) {
		t.Fatalf("spill Lookup = %v, want %v", got, want)
	}
}

func TestRemoveLastAndMissing(t *testing.T) {
	r := New(1)
	r.Add(Tuple{7})
	if r.Remove(Tuple{9}) {
		t.Fatal("Remove of a missing tuple succeeded")
	}
	if !r.Remove(Tuple{7}) || r.Len() != 0 {
		t.Fatal("Remove of the last tuple failed")
	}
	if got := r.Lookup(0, 7); len(got) != 0 {
		t.Fatalf("Lookup on emptied relation = %v", got)
	}
}
