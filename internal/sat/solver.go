// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in the MiniSat lineage: two-watched-literal propagation,
// first-UIP conflict analysis with backjumping, exponential
// VSIDS-style variable activities with a heap-ordered decision queue,
// phase saving, and Luby-sequence restarts.
//
// The solver is the substrate for the NP side of the paper's results:
// fixpoint existence for a fixed DATALOG¬ program is NP-complete
// (Theorem 1), and the ground package reduces "does (π, D) have a
// fixpoint?" to satisfiability of the grounding's completion, which
// this solver decides.  Model enumeration (with projection and
// blocking clauses) powers the unique-fixpoint (Theorem 2) and
// least-fixpoint (Theorem 3) analyses.
//
// Literals use the DIMACS convention at the API boundary: variable v
// is the positive literal +v, its negation -v; variables are created
// with NewVar and numbered from 1.
package sat

import "fmt"

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// Internal literal encoding: lit = 2*v for +v, 2*v+1 for -v.
type lit int32

func toLit(ext int) lit {
	if ext < 0 {
		return lit(-ext*2 + 1)
	}
	return lit(ext * 2)
}

func (l lit) variable() int32 { return int32(l) >> 1 }
func (l lit) negated() bool   { return l&1 == 1 }
func (l lit) not() lit        { return l ^ 1 }

func (l lit) ext() int {
	if l.negated() {
		return -int(l.variable())
	}
	return int(l.variable())
}

// clause stores literals with the two watched literals in positions 0
// and 1.
type clause struct {
	lits   []lit
	learnt bool
}

// value of an assignment cell.
const (
	vUndef int8 = -1
	vFalse int8 = 0
	vTrue  int8 = 1
)

// Solver is a CDCL SAT solver.  The zero value is not usable; create
// solvers with NewSolver.
type Solver struct {
	nVars   int
	clauses []*clause
	watches [][]*clause // indexed by lit

	assign   []int8 // per var
	level    []int32
	reason   []*clause
	polarity []bool // saved phase per var

	trail    []lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     *varHeap

	seen []bool // scratch for analyze

	ok        bool
	model     []bool // last satisfying assignment, per var
	haveModel bool

	// Statistics.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
}

// NewSolver returns an empty, satisfiable solver.
func NewSolver() *Solver {
	s := &Solver{ok: true, varInc: 1}
	s.heap = newVarHeap(&s.activity)
	// Index 0 is unused (variables start at 1).
	s.assign = append(s.assign, vUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return s
}

// NewVar introduces a fresh variable and returns its index (≥ 1).
func (s *Solver) NewVar() int {
	s.nVars++
	v := s.nVars
	s.assign = append(s.assign, vUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(int32(v))
	return v
}

// NumVars returns the number of variables created so far.
func (s *Solver) NumVars() int { return s.nVars }

func (s *Solver) litValue(l lit) int8 {
	a := s.assign[l.variable()]
	if a == vUndef {
		return vUndef
	}
	if (a == vTrue) == !l.negated() {
		return vTrue
	}
	return vFalse
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over DIMACS-style literals.  It may be
// called between Solve calls (the solver backtracks to the root
// level).  It reports false once the formula is unsatisfiable at the
// root.
func (s *Solver) AddClause(ext ...int) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	s.haveModel = false

	// Normalize: sort-free dedupe, tautology and root-false filtering.
	seen := make(map[lit]bool, len(ext))
	lits := make([]lit, 0, len(ext))
	for _, e := range ext {
		if e == 0 {
			panic("sat: literal 0 in clause")
		}
		v := e
		if v < 0 {
			v = -v
		}
		if v > s.nVars {
			panic(fmt.Sprintf("sat: literal %d references unknown variable (have %d)", e, s.nVars))
		}
		l := toLit(e)
		if seen[l.not()] {
			return true // tautology
		}
		if seen[l] {
			continue
		}
		switch s.litValue(l) {
		case vTrue:
			return true // satisfied at root
		case vFalse:
			continue // dropped
		}
		seen[l] = true
		lits = append(lits, l)
	}

	switch len(lits) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(lits[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	default:
		c := &clause{lits: lits}
		s.clauses = append(s.clauses, c)
		s.attach(c)
		return true
	}
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].not()] = append(s.watches[c.lits[0].not()], c)
	s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
}

func (s *Solver) uncheckedEnqueue(l lit, from *clause) {
	v := l.variable()
	if l.negated() {
		s.assign[v] = vFalse
	} else {
		s.assign[v] = vTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause
// or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		s.Propagations++

		ws := s.watches[p]
		s.watches[p] = s.watches[p][:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Make sure the false literal is lits[1].
			if c.lits[0] == p.not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the other watch is true, the clause is satisfied.
			if s.litValue(c.lits[0]) == vTrue {
				s.watches[p] = append(s.watches[p], c)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != vFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			s.watches[p] = append(s.watches[p], c)
			if s.litValue(c.lits[0]) == vFalse {
				// Conflict: restore remaining watchers and report.
				s.watches[p] = append(s.watches[p], ws[i+1:]...)
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(c.lits[0], c)
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]lit, int) {
	learnt := []lit{0} // placeholder for the asserting literal
	pathC := 0
	var p lit
	haveP := false
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if haveP && q == p {
				continue // the literal being resolved on
			}
			v := q.variable()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Walk the trail backwards to the next marked literal.
		for !s.seen[s.trail[idx].variable()] {
			idx--
		}
		p = s.trail[idx]
		haveP = true
		idx--
		s.seen[p.variable()] = false
		pathC--
		if pathC <= 0 {
			learnt[0] = p.not()
			break
		}
		confl = s.reason[p.variable()]
	}

	// Backjump level: second-highest level in the learnt clause.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].variable()] > s.level[learnt[maxI].variable()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].variable()])
	}

	for _, l := range learnt {
		s.seen[l.variable()] = false
	}
	return learnt, bt
}

func (s *Solver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayActivities() { s.varInc /= 0.95 }

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.variable()
		s.polarity[v] = !l.negated()
		s.assign[v] = vUndef
		s.reason[v] = nil
		s.heap.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// pickBranchVar returns the unassigned variable with the highest
// activity, or 0 if all variables are assigned.
func (s *Solver) pickBranchVar() int32 {
	for !s.heap.empty() {
		v := s.heap.pop()
		if s.assign[v] == vUndef {
			return v
		}
	}
	return 0
}

// luby computes the i-th element (1-based) of the Luby restart
// sequence 1,1,2,1,1,2,4,… scaled by base.
func luby(base int64, i int64) int64 {
	// Find the finite subsequence containing i, then recurse.
	var k, size int64 = 1, 1
	for size < i+1 {
		k++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		k--
		i = i % size
	}
	return base << (k - 1)
}

// Solve runs the CDCL search, returning Sat or Unsat.  After Sat, the
// model is available via Model and Value; additional clauses may be
// added and Solve called again (the enumeration workflow).
func (s *Solver) Solve() Status {
	if !s.ok {
		return Unsat
	}
	if c := s.propagate(); c != nil {
		s.ok = false
		return Unsat
	}

	for restart := int64(0); ; restart++ {
		limit := luby(100, restart)
		s.Restarts++
		status := s.search(limit)
		if status != Unknown {
			if status == Sat {
				s.model = make([]bool, s.nVars+1)
				for v := 1; v <= s.nVars; v++ {
					s.model[v] = s.assign[v] == vTrue
				}
				s.haveModel = true
				s.cancelUntil(0)
			}
			return status
		}
	}
}

// search runs until a verdict, or until conflicts exceed limit
// (triggering a restart), in which case it returns Unknown.
func (s *Solver) search(limit int64) Status {
	var conflictsHere int64
	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.clauses = append(s.clauses, c)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayActivities()
			continue
		}
		if conflictsHere >= limit {
			s.cancelUntil(0)
			return Unknown
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := lit(v * 2)
		if !s.polarity[v] {
			l = l.not()
		}
		s.uncheckedEnqueue(l, nil)
	}
}

// Value reports the truth value of variable v in the last model.  It
// panics if no model is available.
func (s *Solver) Value(v int) bool {
	if !s.haveModel {
		panic("sat: Value called without a model")
	}
	return s.model[v]
}

// Model returns the last satisfying assignment indexed by variable
// (entry 0 unused), or nil if none is available.
func (s *Solver) Model() []bool {
	if !s.haveModel {
		return nil
	}
	out := make([]bool, len(s.model))
	copy(out, s.model)
	return out
}
