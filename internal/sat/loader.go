package sat

import "repro/internal/cnf"

// FromFormula builds a solver preloaded with the formula's variables
// and clauses.
func FromFormula(f *cnf.Formula) *Solver {
	s := NewSolver()
	for i := 0; i < f.NumVars; i++ {
		s.NewVar()
	}
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			break
		}
	}
	return s
}

// SolveFormula decides satisfiability of f, returning the verdict and
// (for Sat) a model indexed by variable.
func SolveFormula(f *cnf.Formula) (Status, []bool) {
	s := FromFormula(f)
	st := s.Solve()
	if st == Sat {
		return st, s.Model()
	}
	return st, nil
}
