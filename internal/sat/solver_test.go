package sat

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
)

func TestTrivial(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(a, b)
	s.AddClause(-a)
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	if s.Value(a) || !s.Value(b) {
		t.Errorf("model a=%v b=%v", s.Value(a), s.Value(b))
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := NewSolver()
	s.NewVar()
	if s.Solve() != Sat {
		t.Fatal("empty formula should be SAT")
	}
}

func TestContradictionUnsat(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	s.AddClause(a)
	if s.AddClause(-a) {
		t.Error("adding contradictory unit should report false")
	}
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
}

func TestUnitChain(t *testing.T) {
	// x1, x1→x2, …, x_{n-1}→x_n forces all true.
	s := NewSolver()
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(vars[0])
	for i := 1; i < n; i++ {
		s.AddClause(-vars[i-1], vars[i])
	}
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("var %d false", i)
		}
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(a, -a)       // tautology: ignored
	s.AddClause(b, b, b, -a) // duplicates collapse
	s.AddClause(-b)
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	if s.Value(a) {
		t.Error("a should be false (forced by clause (b∨¬a) with ¬b)")
	}
}

// pigeonhole builds PHP(m pigeons, n holes): unsatisfiable when m > n.
func pigeonhole(m, n int) *cnf.Formula {
	b := cnf.NewBuilder()
	// p[i][j]: pigeon i in hole j.
	p := make([][]int, m)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = b.NewVar()
		}
	}
	for i := 0; i < m; i++ {
		b.Add(p[i]...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 < m; i1++ {
			for i2 := i1 + 1; i2 < m; i2++ {
				b.Add(-p[i1][j], -p[i2][j])
			}
		}
	}
	return b.Formula()
}

func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 6; n++ {
		st, _ := SolveFormula(pigeonhole(n+1, n))
		if st != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want UNSAT", n+1, n, st)
		}
		st, m := SolveFormula(pigeonhole(n, n))
		if st != Sat {
			t.Errorf("PHP(%d,%d) = %v, want SAT", n, n, st)
		}
		if m == nil {
			t.Error("SAT without model")
		}
	}
}

// bruteForce reports satisfiability and model count by exhaustive
// enumeration (n ≤ ~20).
func bruteForce(f *cnf.Formula) (sat bool, count int) {
	n := f.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if f.Eval(assign) {
			count++
			sat = true
		}
	}
	return sat, count
}

// randomCNF builds a random k-SAT formula.
func randomCNF(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	b := cnf.NewBuilder()
	b.NewVars(nVars)
	for i := 0; i < nClauses; i++ {
		c := make([]int, 0, k)
		for j := 0; j < k; j++ {
			v := rng.Intn(nVars) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			c = append(c, v)
		}
		b.Add(c...)
	}
	return b.Formula()
}

func TestPropAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8) // 3..10 vars
		m := 1 + rng.Intn(4*n)
		formula := randomCNF(rng, n, m, 3)
		want, _ := bruteForce(formula)
		st, model := SolveFormula(formula)
		if (st == Sat) != want {
			t.Logf("seed %d: solver=%v brute=%v\n%s", seed, st, want, formula)
			return false
		}
		if st == Sat && !formula.Eval(model) {
			t.Logf("seed %d: reported model does not satisfy formula", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropModelCountMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5) // 3..7 vars
		m := 1 + rng.Intn(3*n)
		formula := randomCNF(rng, n, m, 3)
		_, want := bruteForce(formula)
		s := FromFormula(formula)
		vars := make([]int, n)
		for i := range vars {
			vars[i] = i + 1
		}
		got, exact := s.CountProjected(vars, 0)
		if !exact || got != want {
			t.Logf("seed %d: count=%d exact=%v want=%d\n%s", seed, got, exact, want, formula)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateProjectedCollapsesAuxVars(t *testing.T) {
	// y is free, x forced true: projecting onto {x} must give one
	// model even though {x,y} has two.
	s := NewSolver()
	x := s.NewVar()
	y := s.NewVar()
	_ = y
	s.AddClause(x)
	count, exact := s.CountProjected([]int{x}, 0)
	if !exact || count != 1 {
		t.Errorf("count=%d exact=%v, want 1 exact", count, exact)
	}
}

func TestEnumerateLimit(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	count, exact := s.CountProjected([]int{a, b}, 2)
	if exact || count != 2 {
		t.Errorf("count=%d exact=%v, want 2 inexact", count, exact)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	n := 0
	count, complete := s.EnumerateProjected([]int{a, b}, 0, func(m map[int]bool) bool {
		n++
		return n < 2
	})
	if complete || count != 2 {
		t.Errorf("count=%d complete=%v", count, complete)
	}
}

func TestIncrementalSolving(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(a, b)
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	s.AddClause(-a)
	if s.Solve() != Sat {
		t.Fatal("expected SAT after refinement")
	}
	if s.Value(a) || !s.Value(b) {
		t.Error("wrong model after refinement")
	}
	s.AddClause(-b)
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT after blocking both")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(1, int64(i)); got != w {
			t.Errorf("luby(1,%d) = %d, want %d", i, got, w)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	f := pigeonhole(5, 4)
	s := FromFormula(f)
	s.Solve()
	if s.Conflicts == 0 || s.Decisions == 0 || s.Propagations == 0 {
		t.Errorf("stats empty: %d conflicts, %d decisions, %d props",
			s.Conflicts, s.Decisions, s.Propagations)
	}
}

func TestHardRandom3SAT(t *testing.T) {
	// At ratio 4.26 near the phase transition; just verify the solver
	// terminates and agrees with brute force for a modest size.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 14
		f := randomCNF(rng, n, int(4.26*float64(n)), 3)
		want, _ := bruteForce(f)
		st, _ := SolveFormula(f)
		if (st == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v", trial, st, want)
		}
	}
}

func TestValuePanicsWithoutModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Value without model did not panic")
		}
	}()
	s := NewSolver()
	v := s.NewVar()
	s.Value(v)
}

func TestAddClauseUnknownVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddClause with unknown variable did not panic")
		}
	}()
	NewSolver().AddClause(3)
}

func BenchmarkSolverPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, _ := SolveFormula(pigeonhole(7, 6))
		if st != Unsat {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkSolverRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	fs := make([]*cnf.Formula, 8)
	for i := range fs {
		fs[i] = randomCNF(rng, 60, 255, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveFormula(fs[i%len(fs)])
	}
}

func ExampleSolver() {
	s := NewSolver()
	x := s.NewVar()
	y := s.NewVar()
	s.AddClause(x, y)  // x ∨ y
	s.AddClause(-x, y) // ¬x ∨ y
	s.AddClause(x, -y) // x ∨ ¬y
	fmt.Println(s.Solve(), s.Value(x), s.Value(y))
	// Output: SAT true true
}
