package sat

// varHeap is a max-heap of variables ordered by activity, with a
// position index so activities can be bumped in place (the MiniSat
// order_heap).
type varHeap struct {
	act  *[]float64
	heap []int32
	pos  []int32 // pos[v] = index+1 in heap; 0 = absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act, pos: make([]int32, 1)}
}

func (h *varHeap) less(i, j int) bool {
	return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i + 1)
	h.pos[h.heap[j]] = int32(j + 1)
}

func (h *varHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

// insert adds v if absent.
func (h *varHeap) insert(v int32) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, 0)
	}
	if h.pos[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.pos[v] = int32(len(h.heap))
	h.siftUp(len(h.heap) - 1)
}

// update re-establishes heap order after v's activity was bumped (a
// bump only increases activity, so sift up).  Absent variables are
// ignored.
func (h *varHeap) update(v int32) {
	if int(v) >= len(h.pos) || h.pos[v] == 0 {
		return
	}
	h.siftUp(int(h.pos[v] - 1))
}

// pop removes and returns the variable with the highest activity.
func (h *varHeap) pop() int32 {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[v] = 0
	if last > 0 {
		h.siftDown(0)
	}
	return v
}
