package sat

// EnumerateProjected enumerates the models of the formula projected
// onto the given variables: each distinct assignment to vars that
// extends to a model is reported exactly once (auxiliary Tseitin
// variables therefore do not inflate the count).  After each model a
// blocking clause over vars is added, so the solver is consumed by the
// enumeration.
//
// fn may be nil.  If fn returns false, or limit (> 0) models have been
// produced, enumeration stops early with complete = false.  Otherwise
// count is the exact number of projected models and complete is true.
//
// This is the workhorse behind the Theorem 2 (unique fixpoint) and
// Theorem 3 (least fixpoint = intersection of all fixpoints) analyses.
func (s *Solver) EnumerateProjected(vars []int, limit int, fn func(model map[int]bool) bool) (count int, complete bool) {
	for {
		if limit > 0 && count >= limit {
			return count, false
		}
		if s.Solve() != Sat {
			return count, true
		}
		m := make(map[int]bool, len(vars))
		blocking := make([]int, 0, len(vars))
		for _, v := range vars {
			val := s.Value(v)
			m[v] = val
			if val {
				blocking = append(blocking, -v)
			} else {
				blocking = append(blocking, v)
			}
		}
		count++
		if fn != nil && !fn(m) {
			return count, false
		}
		if len(blocking) == 0 {
			// Projection onto no variables: one model class only.
			return count, true
		}
		if !s.AddClause(blocking...) {
			return count, true
		}
	}
}

// CountProjected returns the number of projected models up to limit
// (0 = unlimited), and whether the count is exact.
func (s *Solver) CountProjected(vars []int, limit int) (count int, exact bool) {
	return s.EnumerateProjected(vars, limit, nil)
}
