// Package cnf provides a CNF formula builder with Tseitin-style gate
// encodings and DIMACS serialization.
//
// It is the bridge between the structured objects of the reproduction
// (ground DATALOG¬ completions, Boolean circuits) and the sat solver:
// callers allocate variables, assert clauses or gate definitions, and
// hand the finished formula to sat.Solver.  Literals follow the DIMACS
// convention (+v / −v, variables from 1).
package cnf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Formula is a CNF formula: a variable count and a list of clauses.
type Formula struct {
	NumVars int
	Clauses [][]int
}

// Builder incrementally constructs a Formula.
type Builder struct {
	f Formula
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// NewVar allocates a fresh variable.
func (b *Builder) NewVar() int {
	b.f.NumVars++
	return b.f.NumVars
}

// NewVars allocates n fresh variables, returning the first; the block
// is contiguous.
func (b *Builder) NewVars(n int) int {
	first := b.f.NumVars + 1
	b.f.NumVars += n
	return first
}

// NumVars returns the number of variables allocated so far.
func (b *Builder) NumVars() int { return b.f.NumVars }

// Add asserts a clause (a disjunction of DIMACS literals).
func (b *Builder) Add(lits ...int) {
	for _, l := range lits {
		if l == 0 {
			panic("cnf: literal 0 in clause")
		}
		v := l
		if v < 0 {
			v = -v
		}
		if v > b.f.NumVars {
			panic(fmt.Sprintf("cnf: literal %d references unallocated variable", l))
		}
	}
	c := make([]int, len(lits))
	copy(c, lits)
	b.f.Clauses = append(b.f.Clauses, c)
}

// Unit asserts a single literal.
func (b *Builder) Unit(l int) { b.Add(l) }

// Formula returns the built formula.  The builder may continue to be
// used; the returned value shares clause storage with it.
func (b *Builder) Formula() *Formula { return &b.f }

// --- Tseitin gate encodings -------------------------------------------

// And defines out ↔ (a ∧ b) and returns out (a fresh variable).
func (b *Builder) And(a, c int) int {
	out := b.NewVar()
	b.Add(-out, a)
	b.Add(-out, c)
	b.Add(out, -a, -c)
	return out
}

// Or defines out ↔ (a ∨ b) and returns out.
func (b *Builder) Or(a, c int) int {
	out := b.NewVar()
	b.Add(out, -a)
	b.Add(out, -c)
	b.Add(-out, a, c)
	return out
}

// AndN defines out ↔ (l₁ ∧ … ∧ lₙ) and returns out.  With no inputs
// out is asserted true (the empty conjunction).
func (b *Builder) AndN(lits ...int) int {
	out := b.NewVar()
	if len(lits) == 0 {
		b.Unit(out)
		return out
	}
	long := make([]int, 0, len(lits)+1)
	long = append(long, out)
	for _, l := range lits {
		b.Add(-out, l)
		long = append(long, -l)
	}
	b.Add(long...)
	return out
}

// OrN defines out ↔ (l₁ ∨ … ∨ lₙ) and returns out.  With no inputs
// out is asserted false (the empty disjunction).
func (b *Builder) OrN(lits ...int) int {
	out := b.NewVar()
	if len(lits) == 0 {
		b.Unit(-out)
		return out
	}
	long := make([]int, 0, len(lits)+1)
	long = append(long, -out)
	for _, l := range lits {
		b.Add(out, -l)
		long = append(long, l)
	}
	b.Add(long...)
	return out
}

// Iff asserts a ↔ c.
func (b *Builder) Iff(a, c int) {
	b.Add(-a, c)
	b.Add(a, -c)
}

// IffOr asserts a ↔ (l₁ ∨ … ∨ lₙ) without introducing a fresh
// variable; with no inputs it asserts ¬a.  This is the exact shape of
// the Clark-completion constraints the ground package emits.
func (b *Builder) IffOr(a int, lits ...int) {
	if len(lits) == 0 {
		b.Unit(-a)
		return
	}
	long := make([]int, 0, len(lits)+1)
	long = append(long, -a)
	for _, l := range lits {
		b.Add(a, -l)
		long = append(long, l)
	}
	b.Add(long...)
}

// Implies asserts a → c.
func (b *Builder) Implies(a, c int) { b.Add(-a, c) }

// AtMostOne asserts that at most one of the literals holds (pairwise
// encoding).
func (b *Builder) AtMostOne(lits ...int) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			b.Add(-lits[i], -lits[j])
		}
	}
}

// ExactlyOne asserts that exactly one of the literals holds.
func (b *Builder) ExactlyOne(lits ...int) {
	b.Add(lits...)
	b.AtMostOne(lits...)
}

// --- Evaluation and serialization --------------------------------------

// Eval reports whether the assignment (indexed by variable, entry 0
// ignored) satisfies the formula.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			v := l
			if v < 0 {
				v = -v
			}
			if (l > 0) == assign[v] {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Stats summarizes formula size.
func (f *Formula) Stats() string {
	lits := 0
	for _, c := range f.Clauses {
		lits += len(c)
	}
	return fmt.Sprintf("%d vars, %d clauses, %d literals", f.NumVars, len(f.Clauses), lits)
}

// WriteDIMACS serializes the formula in DIMACS cnf format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, c := range f.Clauses {
		for _, l := range c {
			bw.WriteString(strconv.Itoa(l))
			bw.WriteByte(' ')
		}
		bw.WriteString("0\n")
	}
	return bw.Flush()
}

// String renders the formula in DIMACS format.
func (f *Formula) String() string {
	var sb strings.Builder
	f.WriteDIMACS(&sb)
	return sb.String()
}

// ParseDIMACS parses a DIMACS cnf file.  Comment lines ('c') are
// skipped; the problem line is validated loosely (clause and variable
// counts are taken from the actual content when they disagree).
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	f := &Formula{}
	sawProblem := false
	var cur []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: malformed problem line %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cnf: bad variable count in %q", line)
			}
			f.NumVars = n
			sawProblem = true
			continue
		}
		for _, tok := range strings.Fields(line) {
			l, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q", tok)
			}
			if l == 0 {
				c := make([]int, len(cur))
				copy(c, cur)
				f.Clauses = append(f.Clauses, c)
				cur = cur[:0]
				continue
			}
			v := l
			if v < 0 {
				v = -v
			}
			if v > f.NumVars {
				f.NumVars = v
			}
			cur = append(cur, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	if !sawProblem {
		return nil, fmt.Errorf("cnf: missing problem line")
	}
	return f, nil
}

// Vars returns the sorted list of variables actually mentioned in the
// clauses.
func (f *Formula) Vars() []int {
	seen := make(map[int]bool)
	for _, c := range f.Clauses {
		for _, l := range c {
			if l < 0 {
				l = -l
			}
			seen[l] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
