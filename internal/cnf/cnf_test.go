package cnf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	x := b.NewVar()
	y := b.NewVar()
	b.Add(x, -y)
	f := b.Formula()
	if f.NumVars != 2 || len(f.Clauses) != 1 {
		t.Fatalf("formula = %+v", f)
	}
	if got := b.NewVars(3); got != 3 {
		t.Errorf("NewVars first = %d, want 3", got)
	}
	if b.NumVars() != 5 {
		t.Errorf("NumVars = %d", b.NumVars())
	}
}

func TestAddValidation(t *testing.T) {
	b := NewBuilder()
	b.NewVar()
	for _, lits := range [][]int{{0}, {2}, {-5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) did not panic", lits)
				}
			}()
			b.Add(lits...)
		}()
	}
}

// evalGate exhaustively checks a gate encoding: for every assignment
// to the inputs, the output variable's forced value must match want.
func evalGate(t *testing.T, f *Formula, inputs []int, out int, want func(vals []bool) bool) {
	t.Helper()
	n := len(inputs)
	for mask := 0; mask < 1<<n; mask++ {
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = mask&(1<<i) != 0
		}
		// Try both polarities of out with the inputs fixed; exactly the
		// one equal to want(vals) must satisfy the formula.
		for _, ov := range []bool{false, true} {
			assign := make([]bool, f.NumVars+1)
			for i, v := range inputs {
				assign[v] = vals[i]
			}
			assign[out] = ov
			if f.Eval(assign) != (ov == want(vals)) {
				t.Fatalf("gate wrong at inputs %v out=%v", vals, ov)
			}
		}
	}
}

func TestAndGate(t *testing.T) {
	b := NewBuilder()
	x, y := b.NewVar(), b.NewVar()
	out := b.And(x, y)
	evalGate(t, b.Formula(), []int{x, y}, out, func(v []bool) bool { return v[0] && v[1] })
}

func TestOrGate(t *testing.T) {
	b := NewBuilder()
	x, y := b.NewVar(), b.NewVar()
	out := b.Or(x, y)
	evalGate(t, b.Formula(), []int{x, y}, out, func(v []bool) bool { return v[0] || v[1] })
}

func TestAndNOrN(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.NewVar(), b.NewVar(), b.NewVar()
	a := b.AndN(x, y, z)
	evalGate(t, b.Formula(), []int{x, y, z}, a, func(v []bool) bool { return v[0] && v[1] && v[2] })

	b2 := NewBuilder()
	p, q, r := b2.NewVar(), b2.NewVar(), b2.NewVar()
	o := b2.OrN(p, -q, r)
	evalGate(t, b2.Formula(), []int{p, q, r}, o, func(v []bool) bool { return v[0] || !v[1] || v[2] })
}

func TestEmptyGates(t *testing.T) {
	b := NewBuilder()
	a := b.AndN()
	o := b.OrN()
	f := b.Formula()
	assign := make([]bool, f.NumVars+1)
	assign[a], assign[o] = true, false
	if !f.Eval(assign) {
		t.Error("empty AndN/OrN should force true/false")
	}
	assign[a] = false
	if f.Eval(assign) {
		t.Error("empty AndN should not allow false")
	}
}

func TestIffOr(t *testing.T) {
	b := NewBuilder()
	a, x, y := b.NewVar(), b.NewVar(), b.NewVar()
	b.IffOr(a, x, -y)
	f := b.Formula()
	for mask := 0; mask < 8; mask++ {
		assign := []bool{false, mask&1 != 0, mask&2 != 0, mask&4 != 0}
		want := assign[1] == (assign[2] || !assign[3])
		if f.Eval(assign) != want {
			t.Errorf("IffOr wrong at %v", assign[1:])
		}
	}

	// Empty disjunction forces ¬a.
	b2 := NewBuilder()
	a2 := b2.NewVar()
	b2.IffOr(a2)
	if !b2.Formula().Eval([]bool{false, false}) || b2.Formula().Eval([]bool{false, true}) {
		t.Error("empty IffOr should force a false")
	}
}

func TestExactlyOne(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.NewVar(), b.NewVar(), b.NewVar()
	b.ExactlyOne(x, y, z)
	f := b.Formula()
	count := 0
	for mask := 0; mask < 8; mask++ {
		assign := []bool{false, mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if f.Eval(assign) {
			count++
			ones := 0
			for _, v := range assign[1:] {
				if v {
					ones++
				}
			}
			if ones != 1 {
				t.Errorf("ExactlyOne satisfied with %d ones", ones)
			}
		}
	}
	if count != 3 {
		t.Errorf("ExactlyOne model count = %d, want 3", count)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	b := NewBuilder()
	x, y, z := b.NewVar(), b.NewVar(), b.NewVar()
	b.Add(x, -y)
	b.Add(-x, y, z)
	b.Add(-z)
	f := b.Formula()

	text := f.String()
	f2, err := ParseDIMACS(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumVars != f.NumVars || len(f2.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip: %s vs %s", f.Stats(), f2.Stats())
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(f2.Clauses[i]) {
			t.Fatalf("clause %d differs", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != f2.Clauses[i][j] {
				t.Fatalf("clause %d lit %d differs", i, j)
			}
		}
	}
}

func TestParseDIMACSWithComments(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 0
c mid comment
2 3 0
`
	f, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Errorf("parsed %s", f.Stats())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, src := range []string{
		"1 2 0\n",            // missing problem line
		"p cnf x 2\n1 0\n",   // bad var count
		"p cnf 2 1\n1 a 0\n", // bad literal
		"p dnf 2 1\n1 0\n",   // wrong format tag
	} {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestVars(t *testing.T) {
	b := NewBuilder()
	b.NewVars(5)
	b.Add(1, -3)
	b.Add(5)
	got := b.Formula().Vars()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Vars = %v", got)
	}
}

func TestPropTseitinPreservesModels(t *testing.T) {
	// Building a random gate tree and asserting its output true must
	// have the same projected models as the formula evaluated directly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		const nIn = 4
		in := make([]int, nIn)
		for i := range in {
			in[i] = b.NewVar()
		}
		// Random tree of gates over the inputs.
		nodes := append([]int{}, in...)
		for i := 0; i < 4; i++ {
			x := nodes[rng.Intn(len(nodes))]
			y := nodes[rng.Intn(len(nodes))]
			var g int
			if rng.Intn(2) == 0 {
				g = b.And(x, y)
			} else {
				g = b.Or(x, y)
			}
			nodes = append(nodes, g)
		}
		root := nodes[len(nodes)-1]
		b.Unit(root)
		formula := b.Formula()

		// Count projected models by brute force over ALL vars, then
		// project; compare against direct evaluation of the gate tree.
		n := formula.NumVars
		projected := make(map[int]bool)
		assign := make([]bool, n+1)
		var full func(v int)
		satisfying := 0
		full = func(v int) {
			if v > n {
				if formula.Eval(assign) {
					mask := 0
					for i, iv := range in {
						if assign[iv] {
							mask |= 1 << i
						}
					}
					projected[mask] = true
					satisfying++
				}
				return
			}
			assign[v] = false
			full(v + 1)
			assign[v] = true
			full(v + 1)
		}
		full(1)
		// Tseitin encodings are functional: every projected model has
		// exactly one extension, so totals match.
		return satisfying == len(projected)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
