package workload

import "testing"

func TestSameGenDBShape(t *testing.T) {
	branch, depth := 2, 3
	db := SameGenDB(branch, depth)
	up := db.Relation("up")
	down := db.Relation("down")
	flat := db.Relation("flat")
	// A complete 2-ary tree of depth 3 has 2+4+8 = 14 non-root nodes,
	// each contributing one up and one down edge.
	if up == nil || up.Len() != 14 {
		t.Fatalf("up relation = %v", up)
	}
	if down == nil || down.Len() != up.Len() {
		t.Fatalf("down len = %v, want %d", down, up.Len())
	}
	// flat: ordered pairs of distinct root children.
	if flat == nil || flat.Len() != branch*(branch-1) {
		t.Fatalf("flat relation = %v", flat)
	}
}

func TestJoinWorkloadsDeterministic(t *testing.T) {
	for _, wl := range JoinWorkloads(true) {
		a, b := wl.DB(), wl.DB()
		for _, pred := range []string{"E", "up", "down", "flat"} {
			ra, rb := a.Relation(pred), b.Relation(pred)
			if (ra == nil) != (rb == nil) {
				t.Fatalf("%s: %s presence differs across generations", wl.Name, pred)
			}
			if ra != nil && !ra.Equal(rb) {
				t.Errorf("%s: %s differs across generations", wl.Name, pred)
			}
		}
	}
}
