package workload

import (
	"fmt"

	"repro/internal/graphs"
	"repro/internal/relation"
)

// Point-query workloads.
//
// The join workloads above stress whole-fixpoint evaluation; these
// stress the demand-driven path: one query atom with bound positions,
// answered either by magic-set rewriting (internal/magic via
// semantics.QueryLFP/QueryStratified) or by full materialization plus
// a filter — the ablation pair of experiment E16.
//
// TC appears in both recursion directions on purpose.  The rewrite's
// sideways information passing is textual left-to-right, so the
// left-recursive form s(X,Z), E(Z,Y) keeps the magic set at the seed
// {c} and derives only c's row of the closure, while the
// right-recursive form E(X,Z), s(Z,Y) floods the magic set with every
// vertex reachable from c — demand-driven in name only.  The pair
// makes the SIP sensitivity a measured fact rather than folklore.

// TCLeftSrc is the left-recursive transitive closure, the
// demand-friendly formulation for queries bound on the first column.
const TCLeftSrc = `
s(X,Y) :- E(X,Y).
s(X,Y) :- s(X,Z), E(Z,Y).
`

// TCRightSrc is the right-recursive transitive closure: equivalent
// under full evaluation, adversarial for a bf query's magic sets.
const TCRightSrc = `
s(X,Y) :- E(X,Y).
s(X,Y) :- E(X,Z), s(Z,Y).
`

// DistanceStratSrc is the stratified distance program of Proposition 2
// (s3 reads s2 under negation, so s2 must be evaluated in full by any
// sound rewrite).
const DistanceStratSrc = `
s1(X,Y) :- E(X,Y).
s1(X,Y) :- E(X,Z), s1(Z,Y).
s2(Xs,Ys) :- E(Xs,Ys).
s2(Xs,Ys) :- E(Xs,Zs), s2(Zs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Y), !s2(Xs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Z), s1(Z,Y), !s2(Xs,Ys).
`

// PointQueryWorkload is one demand-driven query benchmark case.
type PointQueryWorkload struct {
	Name string
	Src  string
	// Query is the query atom in magic.ParseQuery syntax.
	Query string
	// Stratified selects QueryStratified over QueryLFP.
	Stratified bool
	DB         func() *relation.Database
	// Headline marks the row whose speedup experiment E16 asserts.
	Headline bool
}

// PointQueryWorkloads returns the E16 suite.  Quick mode shrinks the
// instances for use under `go test`.
func PointQueryWorkloads(quick bool) []PointQueryWorkload {
	pathN, sgDepth, distN := 256, 9, 16
	if quick {
		pathN, sgDepth, distN = 96, 6, 10
	}
	// Query a vertex three quarters along the path: demand prunes both
	// the sources (only one row of the closure) and the suffix depth.
	src := graphs.VertexName(pathN * 3 / 4)
	return []PointQueryWorkload{
		{
			Name:     fmt.Sprintf("tc-left/path(%d)", pathN),
			Src:      TCLeftSrc,
			Query:    fmt.Sprintf("s(%s, ?)", src),
			DB:       func() *relation.Database { return graphs.Path(pathN).Database() },
			Headline: true,
		},
		{
			Name:  fmt.Sprintf("tc-right/path(%d)", pathN),
			Src:   TCRightSrc,
			Query: fmt.Sprintf("s(%s, ?)", src),
			DB:    func() *relation.Database { return graphs.Path(pathN).Database() },
		},
		{
			Name:     fmt.Sprintf("same-gen/tree(2,%d)", sgDepth),
			Src:      SameGenSrc,
			Query:    fmt.Sprintf("sg(n%d_0, ?)", sgDepth),
			DB:       func() *relation.Database { return SameGenDB(2, sgDepth) },
			Headline: true,
		},
		{
			Name:       fmt.Sprintf("distance/G(%d,0.12)", distN),
			Src:        DistanceStratSrc,
			Query:      fmt.Sprintf("s3(%s, ?, ?, ?)", graphs.VertexName(1)),
			Stratified: true,
			DB: func() *relation.Database {
				// Sparse enough that the closure s2 is not total, so
				// the negated stratum leaves s3 nonempty.
				return TriangleDB(int64(distN), distN, 0.12)
			},
		},
	}
}
