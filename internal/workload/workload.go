// Package workload provides the seeded, reproducible instance
// generators the experiments run on: random k-SAT at a chosen clause
// ratio (the Theorem 1 / E2 workload), crafted unique-solution
// instances (the Theorem 2 / E4 workload), pigeonhole formulas (hard
// UNSAT), and forced-satisfiable instances.
package workload

import (
	"math/rand"

	"repro/internal/reductions"
)

// RandomKSAT draws a uniform random k-SAT instance with nClauses
// clauses over nVars variables (literals may repeat across a clause,
// matching the standard fixed-clause-length model).
func RandomKSAT(seed int64, nVars, nClauses, k int) *reductions.SATInstance {
	rng := rand.New(rand.NewSource(seed))
	inst := &reductions.SATInstance{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		c := make([]int, k)
		for j := range c {
			v := rng.Intn(nVars) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		inst.Clauses = append(inst.Clauses, c)
	}
	return inst
}

// Random3SAT draws a random 3-SAT instance at the given clause/variable
// ratio (4.26 is the phase-transition region).
func Random3SAT(seed int64, nVars int, ratio float64) *reductions.SATInstance {
	return RandomKSAT(seed, nVars, int(ratio*float64(nVars)+0.5), 3)
}

// ForcedSAT draws a random 3-SAT instance guaranteed satisfiable: a
// hidden assignment is drawn first and every clause is patched to
// contain at least one literal it satisfies.
func ForcedSAT(seed int64, nVars, nClauses int) *reductions.SATInstance {
	rng := rand.New(rand.NewSource(seed))
	hidden := make([]bool, nVars+1)
	for v := 1; v <= nVars; v++ {
		hidden[v] = rng.Intn(2) == 0
	}
	inst := &reductions.SATInstance{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		c := make([]int, 3)
		for j := range c {
			v := rng.Intn(nVars) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		// Patch a random position to satisfy the hidden assignment.
		pos := rng.Intn(3)
		v := rng.Intn(nVars) + 1
		if hidden[v] {
			c[pos] = v
		} else {
			c[pos] = -v
		}
		inst.Clauses = append(inst.Clauses, c)
	}
	return inst
}

// UniqueSAT builds an instance with exactly one satisfying assignment:
// a hidden assignment is fixed and each variable (in a random order)
// is forced by a clause whose other literals are false under the
// hidden assignment.  Uniqueness follows by induction along the order;
// extra satisfied 3-clauses are mixed in as camouflage.
func UniqueSAT(seed int64, nVars, extraClauses int) *reductions.SATInstance {
	rng := rand.New(rand.NewSource(seed))
	hidden := make([]bool, nVars+1)
	for v := 1; v <= nVars; v++ {
		hidden[v] = rng.Intn(2) == 0
	}
	order := rng.Perm(nVars)
	litFor := func(v int, val bool) int {
		if val {
			return v
		}
		return -v
	}

	inst := &reductions.SATInstance{NumVars: nVars}
	for idx, ord := range order {
		v := ord + 1
		clause := []int{litFor(v, hidden[v])}
		// Up to two earlier variables appear with the polarity FALSE
		// under the hidden assignment, so unit propagation forces v.
		for j := 0; j < 2 && idx > 0; j++ {
			w := order[rng.Intn(idx)] + 1
			clause = append(clause, litFor(w, !hidden[w]))
		}
		inst.Clauses = append(inst.Clauses, clause)
	}
	for i := 0; i < extraClauses; i++ {
		c := make([]int, 3)
		for j := range c {
			v := rng.Intn(nVars) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		c[rng.Intn(3)] = litFor(rng.Intn(nVars)+1, true)
		v := rng.Intn(nVars) + 1
		c[rng.Intn(3)] = litFor(v, hidden[v])
		inst.Clauses = append(inst.Clauses, c)
	}
	return inst
}

// Pigeonhole builds PHP(pigeons, holes) as a SATInstance: variable
// p·holes + h + 1 says pigeon p sits in hole h.  Unsatisfiable when
// pigeons > holes.
func Pigeonhole(pigeons, holes int) *reductions.SATInstance {
	varOf := func(p, h int) int { return p*holes + h + 1 }
	inst := &reductions.SATInstance{NumVars: pigeons * holes}
	for p := 0; p < pigeons; p++ {
		c := make([]int, holes)
		for h := 0; h < holes; h++ {
			c[h] = varOf(p, h)
		}
		inst.Clauses = append(inst.Clauses, c)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				inst.Clauses = append(inst.Clauses, []int{-varOf(p1, h), -varOf(p2, h)})
			}
		}
	}
	return inst
}
