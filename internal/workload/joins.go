package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graphs"
	"repro/internal/relation"
)

// Join-heavy workloads.
//
// The SAT-style generators above stress the fixpoint decision
// procedures; these stress the operator Θ itself with multi-way joins —
// the workloads the cost-based join planner (engine/planner.go) exists
// for.  Triangle counting is the canonical composite-index case: its
// third literal has both argument positions bound, which a single-
// column probe must finish by per-tuple filtering.  Same-generation is
// the canonical ordering case: its recursive rule joins three literals,
// and under semi-naive evaluation the profitable starting point is the
// delta relation — which only a planner that re-costs per round can
// pick, since syntactically the delta looks like any other IDB literal.

// TriangleSrc closes each directed 3-cycle of E into a tri fact.
const TriangleSrc = `tri(X,Y,Z) :- E(X,Y), E(Y,Z), E(Z,X).`

// SameGenSrc is the classic same-generation program: two nodes are in
// the same generation if they are flat-related, or if their parents
// are.
const SameGenSrc = `
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).
`

// TriangleDB builds the triangle-counting database: a seeded random
// digraph G(n, p).
func TriangleDB(seed int64, n int, p float64) *relation.Database {
	return graphs.Random(rand.New(rand.NewSource(seed)), n, p).Database()
}

// SameGenDB builds a complete branch-ary tree of the given depth with
// up(child, parent) and down(parent, child) edges, plus flat edges
// between all distinct children of the root — so sg relates every pair
// of equal-depth nodes whose lines of ancestry split at the root.
func SameGenDB(branch, depth int) *relation.Database {
	db := relation.NewDatabase()
	name := func(level, i int) string { return fmt.Sprintf("n%d_%d", level, i) }
	width := 1
	for l := 1; l <= depth; l++ {
		width *= branch
		for i := 0; i < width; i++ {
			child, parent := name(l, i), name(l-1, i/branch)
			db.AddFact("up", child, parent)
			db.AddFact("down", parent, child)
		}
	}
	for i := 0; i < branch; i++ {
		for j := 0; j < branch; j++ {
			if i != j {
				db.AddFact("flat", name(1, i), name(1, j))
			}
		}
	}
	return db
}

// SameGenChains builds the delta-awareness stress shape: a root whose
// children head `live` disjoint descending chains of the given depth,
// flat edges between all distinct root children, and `dead` additional
// chains of the same depth that hang from their own parentless tops —
// ancestry that never reaches a flat edge.  sg then holds only the
// equal-depth cross-live-chain pairs, live·(live-1) new tuples per
// round across `depth` rounds, while the up relation carries
// (live+dead)·depth edges: a planner that does not start each
// semi-naive round at the (tiny) delta relation rescans all of up —
// dead weight included — every round.
func SameGenChains(live, dead, depth int) *relation.Database {
	db := relation.NewDatabase()
	name := func(c, l int) string { return fmt.Sprintf("c%d_%d", c, l) }
	for c := 0; c < live+dead; c++ {
		if c < live {
			db.AddFact("up", name(c, 1), "root")
			db.AddFact("down", "root", name(c, 1))
		}
		for l := 2; l <= depth; l++ {
			db.AddFact("up", name(c, l), name(c, l-1))
			db.AddFact("down", name(c, l-1), name(c, l))
		}
	}
	for i := 0; i < live; i++ {
		for j := 0; j < live; j++ {
			if i != j {
				db.AddFact("flat", name(i, 1), name(j, 1))
			}
		}
	}
	return db
}

// JoinWorkload names one join-heavy workload: a program source and a
// deterministic database generator.
type JoinWorkload struct {
	Name string
	Src  string
	DB   func() *relation.Database
}

// JoinWorkloads returns the join-heavy workload suite used by the E13
// planner ablation, `bench -explain`, and the repository benchmarks.
// Quick mode shrinks the instances for use under `go test`.
func JoinWorkloads(quick bool) []JoinWorkload {
	triN, sgDepth, chainDepth, tcN := 96, 7, 192, 64
	if quick {
		triN, sgDepth, chainDepth, tcN = 24, 5, 48, 32
	}
	return []JoinWorkload{
		{
			Name: fmt.Sprintf("triangle/G(%d,0.15)", triN),
			Src:  TriangleSrc,
			DB:   func() *relation.Database { return TriangleDB(1, triN, 0.15) },
		},
		{
			Name: fmt.Sprintf("same-gen/tree(2,%d)", sgDepth),
			Src:  SameGenSrc,
			DB:   func() *relation.Database { return SameGenDB(2, sgDepth) },
		},
		{
			Name: fmt.Sprintf("same-gen/chains(4+60,%d)", chainDepth),
			Src:  SameGenSrc,
			DB:   func() *relation.Database { return SameGenChains(4, 60, chainDepth) },
		},
		{
			Name: fmt.Sprintf("tc/path(%d)", tcN),
			Src:  "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).",
			DB:   func() *relation.Database { return graphs.Path(tcN).Database() },
		},
	}
}
