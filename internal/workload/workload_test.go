package workload

import (
	"testing"
	"testing/quick"
)

func TestRandomKSATShape(t *testing.T) {
	inst := RandomKSAT(1, 10, 42, 3)
	if inst.NumVars != 10 || len(inst.Clauses) != 42 {
		t.Fatalf("shape: %d vars %d clauses", inst.NumVars, len(inst.Clauses))
	}
	for _, c := range inst.Clauses {
		if len(c) != 3 {
			t.Fatal("clause width != 3")
		}
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandom3SATRatio(t *testing.T) {
	inst := Random3SAT(7, 20, 4.26)
	if len(inst.Clauses) != 85 { // round(20*4.26)
		t.Errorf("clauses = %d, want 85", len(inst.Clauses))
	}
}

func TestDeterminism(t *testing.T) {
	a := Random3SAT(99, 12, 4.0)
	b := Random3SAT(99, 12, 4.0)
	if len(a.Clauses) != len(b.Clauses) {
		t.Fatal("lengths differ")
	}
	for i := range a.Clauses {
		for j := range a.Clauses[i] {
			if a.Clauses[i][j] != b.Clauses[i][j] {
				t.Fatal("same seed produced different instances")
			}
		}
	}
	c := Random3SAT(100, 12, 4.0)
	same := true
	for i := range a.Clauses {
		for j := range a.Clauses[i] {
			if a.Clauses[i][j] != c.Clauses[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestPropForcedSATIsSatisfiable(t *testing.T) {
	f := func(seed int64) bool {
		inst := ForcedSAT(seed, 8, 30)
		return inst.CountModels() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropUniqueSATHasOneModel(t *testing.T) {
	f := func(seed int64) bool {
		inst := UniqueSAT(seed, 8, 6)
		return inst.CountModels() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPigeonhole(t *testing.T) {
	if Pigeonhole(3, 3).CountModels() == 0 {
		t.Error("PHP(3,3) should be satisfiable")
	}
	if Pigeonhole(4, 3).CountModels() != 0 {
		t.Error("PHP(4,3) should be unsatisfiable")
	}
	inst := Pigeonhole(4, 3)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.NumVars != 12 {
		t.Errorf("vars = %d", inst.NumVars)
	}
}
