package incr_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
)

// stateOf renders everything a reader can observe through a snapshot:
// every relation plus the universe, so two maintainers compare
// bit-exactly.
func stateOf(m *incr.Maintainer) string {
	snap := m.Snapshot()
	out := ""
	for _, name := range snap.Universe.SortedNames() {
		out += name + " "
	}
	out += "\n"
	names := make([]string, 0, len(snap.Rels))
	for name := range snap.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out += name + " = " + snap.Rels[name].Format(snap.Universe) + "\n"
	}
	if wf := m.WF(); wf != nil {
		out += "possible = " + wf.Possible.Format(m.Universe()) + "\n"
	}
	return out
}

// TestCheckpointRestoreBitExact checkpoints a maintainer mid-stream,
// restores it, and verifies the restored maintainer is bit-exact with
// the original — immediately, and after every one of a further series
// of identical random updates — for every semantics/strategy.
func TestCheckpointRestoreBitExact(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		preds []string
		sems  []core.Semantics
	}{
		{"tc", tcSrc, []string{"E"}, []core.Semantics{core.LFP, core.Stratified, core.Inflationary, core.WellFounded}},
		{"distance", distSrc, []string{"E"}, []core.Semantics{core.Stratified, core.WellFounded}},
		{"winmove", winSrc, []string{"E"}, []core.Semantics{core.Inflationary, core.WellFounded}},
		{"unsafe-semipositive", unsafeSrc, []string{"E", "F"}, []core.Semantics{core.LFP, core.Inflationary}},
	}
	for _, tc := range cases {
		for _, sem := range tc.sems {
			t.Run(tc.name+"/"+sem.String(), func(t *testing.T) {
				prog := parser.MustProgram(tc.src)
				n := 6
				db := graphs.Random(rand.New(rand.NewSource(11)), n, 0.3).Database()
				for _, p := range tc.preds[1:] {
					db.MustEnsure(p, 2)
				}
				m, err := incr.New(prog, db, sem)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(43))
				fresh := 0
				for step := 0; step < 6; step++ {
					ins, del := randomBatch(rng, tc.preds, n, &fresh)
					if _, err := m.Update(ins, del); err != nil {
						t.Fatal(err)
					}
				}

				cp := m.Checkpoint()
				r, err := incr.Restore(cp)
				if err != nil {
					t.Fatal(err)
				}
				if r.Gen() != m.Gen() {
					t.Fatalf("restored gen %d, want %d", r.Gen(), m.Gen())
				}
				if r.Stages() != m.Stages() {
					t.Fatalf("restored %d stages, want %d", r.Stages(), m.Stages())
				}
				if got, want := stateOf(r), stateOf(m); got != want {
					t.Fatalf("restored state diverged\nrestored:\n%s\noriginal:\n%s", got, want)
				}

				// The checkpoint is not consumed: restoring it again
				// must still work, even after the first restoration
				// has been updated.
				for step := 0; step < 8; step++ {
					ins, del := randomBatch(rng, tc.preds, n, &fresh)
					sm, err := m.Update(ins, del)
					if err != nil {
						t.Fatal(err)
					}
					sr, err := r.Update(ins, del)
					if err != nil {
						t.Fatal(err)
					}
					if sm.Strategy != sr.Strategy {
						t.Errorf("step %d: strategies diverged: original %s, restored %s", step, sm.Strategy, sr.Strategy)
					}
					if got, want := stateOf(r), stateOf(m); got != want {
						t.Fatalf("step %d (ins=%v del=%v): restored maintainer diverged\nrestored:\n%s\noriginal:\n%s",
							step, ins, del, got, want)
					}
				}
				// The checkpoint is reusable: a second restoration, after
				// the first one has been updated, still works.
				r2, err := incr.RestoreWith(cp, engine.Options{})
				if err != nil {
					t.Fatalf("second restore: %v", err)
				}
				if got := r2.Gen(); got != cp.Gen {
					t.Fatalf("second restore gen %d, want %d", got, cp.Gen)
				}
			})
		}
	}
}

// TestRestoreRejectsCorruptCheckpoints covers the defensive paths: a
// checkpoint claiming stage lengths past the state, or missing a
// listed EDB relation.
func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	prog := parser.MustProgram(winSrc)
	m, err := incr.New(prog, graphs.Path(4).Database(), core.Inflationary)
	if err != nil {
		t.Fatal(err)
	}
	cp := m.Checkpoint()
	if len(cp.StageLens) == 0 {
		t.Fatal("inflationary checkpoint has no stage lengths")
	}
	cp.StageLens[0]["win"] = 1 << 20
	if _, err := incr.Restore(cp); err == nil {
		t.Error("restore accepted stage length past the state")
	}
	cp = m.Checkpoint()
	delete(cp.EDB, "E")
	if _, err := incr.Restore(cp); err == nil {
		t.Error("restore accepted a checkpoint missing a listed EDB relation")
	}
}
