// strata.go — counting and DRed maintenance for stratified evaluation.
//
// The program is split into strata exactly as in semantics.Stratified:
// each stratum is a semipositive program over the results of lower
// strata, evaluated bottom-up, with lower-stratum predicates read as
// EDB from the maintainer's database.  An update enters as EDB changes
// and cascades upward: each stratum turns the changes below it into its
// own net insertions and deletions, which the next stratum consumes —
// insertions acting as deletions through negated literals and vice
// versa.
//
// Nonrecursive strata (no positive own-predicate literal) keep exact
// derivation support counts: membership is count > 0, so an update only
// needs the exact counts of the derivations it enables and disables —
// engine.ApplyDeltasCount with the strict first-driver discipline.
// Recursive strata use DRed: overdelete everything a disabled
// derivation might have supported (evaluated in the old world, via
// pre-update snapshots), rederive what the reduced new world still
// supports, then propagate insertions semi-naively.
package incr

import (
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// stratum is one stratified layer with its own engine instance over the
// maintainer's database.
type stratum struct {
	in        *engine.Instance
	preds     map[string]bool // own IDB predicates
	bodyPreds map[string]bool // predicates read by rule bodies
	recursive bool
	counts    map[string]*relation.Multiset // support counts; nil for recursive strata
}

// initStrata stratifies the program and builds one engine instance per
// stratum over the maintainer's database (which doubles as the working
// database: computed strata are installed into it, so higher strata —
// whose instances treat lower predicates as EDB — read them live).
func (m *Maintainer) initStrata() error {
	strat, err := m.prog.Stratify()
	if err != nil {
		return err
	}
	m.strata = nil
	for k := 0; k < strat.NumStrata(); k++ {
		sub := &ast.Program{Rules: m.prog.RulesForStratum(strat, k)}
		in, err := engine.NewWith(sub, m.db, m.opts)
		if err != nil {
			return err
		}
		s := &stratum{in: in, preds: sub.IDB(), bodyPreds: make(map[string]bool)}
		for _, r := range sub.Rules {
			for _, l := range r.Body {
				if l.Kind == ast.LitPos || l.Kind == ast.LitNeg {
					s.bodyPreds[l.Atom.Pred] = true
					if l.Kind == ast.LitPos && s.preds[l.Atom.Pred] {
						s.recursive = true
					}
				}
			}
		}
		m.strata = append(m.strata, s)
	}
	return nil
}

// evalStrata computes every stratum from scratch, installs the results
// into the database and state, and seeds support counts for the
// nonrecursive strata.
func (m *Maintainer) evalStrata() {
	m.state = make(engine.State)
	for _, s := range m.strata {
		// Each stratum is semipositive over its own predicates, so the
		// inflationary loop computes its least fixpoint.
		st := semantics.InflationaryMode(s.in, semantics.SemiNaive).State
		for pred, rel := range st {
			m.db.Set(pred, rel)
			m.state[pred] = rel
		}
		if !s.recursive {
			s.seedCounts(st)
		}
	}
}

// seedCounts initializes the stratum's support counts: the number of
// rule-body derivations of each tuple at the fixpoint.
func (s *stratum) seedCounts(st engine.State) {
	s.counts = s.in.ApplyCount(st, st)
	for pred := range s.preds {
		if s.counts[pred] == nil {
			s.counts[pred] = relation.NewMultiset(s.in.Arity(pred))
		}
	}
}

// touched reports whether any changed predicate is read by the stratum.
func (s *stratum) touched(ch map[string]*change) bool {
	for pred := range ch {
		if s.bodyPreds[pred] {
			return true
		}
	}
	return false
}

// updateStrata cascades the EDB changes upward through the strata,
// extending ch with each stratum's net IDB changes.
func (m *Maintainer) updateStrata(ch map[string]*change, stats *UpdateStats) {
	for _, s := range m.strata {
		if !s.touched(ch) {
			continue
		}
		var pre, adds, dels engine.State
		if s.counts != nil {
			pre, adds, dels = s.applyCounting(m, ch)
		} else {
			pre, adds, dels = s.applyDRed(m, ch)
		}
		for pred := range s.preds {
			if adds[pred].Empty() && dels[pred].Empty() {
				continue
			}
			ch[pred] = &change{add: adds[pred], del: dels[pred], pre: pre[pred]}
			stats.InsertedIDB += adds[pred].Len()
			stats.DeletedIDB += dels[pred].Len()
		}
	}
}

// applyCounting maintains a nonrecursive stratum exactly through
// support counts.  The disabled pass counts, in the old world (side
// reads against pre-update snapshots), the derivations using at least
// one removed positive tuple or one added negated tuple; the enabled
// pass mirrors it in the new world.  Both use the strict first-driver
// discipline: before the driver, positive literals read the
// both-worlds-stable tuples and negated literals are checked against
// the either-world union, so every derivation is counted exactly once.
func (s *stratum) applyCounting(m *Maintainer, ch map[string]*change) (pre, adds, dels engine.State) {
	in := s.in
	dis := make(map[string]engine.Delta)
	ena := make(map[string]engine.Delta)
	for pred, c := range ch {
		if !s.bodyPreds[pred] {
			continue
		}
		stable, ever := c.stable(), c.ever()
		d := engine.Delta{Before: stable, BeforeNeg: ever, After: c.pre, AfterNeg: c.pre}
		e := engine.Delta{Before: stable, BeforeNeg: ever}
		if !c.del.Empty() {
			d.PosDriver = c.del
			e.NegDriver = c.del
		}
		if !c.add.Empty() {
			d.NegDriver = c.add
			e.PosDriver = c.add
		}
		dis[pred] = d
		ena[pred] = e
	}
	dec := in.ApplyDeltasCount(m.state, m.state, dis)
	inc := in.ApplyDeltasCount(m.state, m.state, ena)

	pre = make(engine.State, len(s.preds))
	adds, dels = in.NewState(), in.NewState()
	for pred := range s.preds {
		pre[pred] = m.state[pred].Snapshot()
	}
	for pred := range s.preds {
		ms, rel := s.counts[pred], m.state[pred]
		bump := func(src *relation.Multiset, sign int64) {
			if src == nil {
				return
			}
			src.Each(func(t relation.Tuple, n int64) bool {
				if n != 0 {
					ms.Bump(t, sign*n)
				}
				return true
			})
		}
		bump(dec[pred], -1)
		bump(inc[pred], +1)
		settle := func(src *relation.Multiset) {
			if src == nil {
				return
			}
			src.Each(func(t relation.Tuple, _ int64) bool {
				if ms.Count(t) > 0 {
					if rel.Add(t) {
						adds[pred].Add(t)
					}
				} else if rel.Remove(t) {
					dels[pred].Add(t)
				}
				return true
			})
		}
		settle(dec[pred])
		settle(inc[pred])
	}
	return pre, adds, dels
}

// applyDRed maintains a recursive stratum: overdelete in the old world,
// commit, rederive from the reduced new world, then propagate
// insertions semi-naively.  Set-valued throughout, so the relaxed
// (duplicate-tolerant) driver discipline suffices.
func (s *stratum) applyDRed(m *Maintainer, ch map[string]*change) (pre, adds, dels engine.State) {
	in := s.in

	// Old-world view: own predicates via pre-update snapshots, changed
	// inputs via per-literal overrides below.
	pre = make(engine.State, len(s.preds))
	oldPos := make(engine.State, len(m.state))
	for pred, r := range m.state {
		oldPos[pred] = r
	}
	for pred := range s.preds {
		pre[pred] = m.state[pred].Snapshot()
		oldPos[pred] = pre[pred]
	}

	base := make(map[string]engine.Delta)  // disabled drivers + old-world reads
	sides := make(map[string]engine.Delta) // old-world reads only (cascade rounds)
	seed := make(map[string]engine.Delta)  // enabled drivers, new-world reads
	anyDel, anyIns := false, false
	for pred, c := range ch {
		if !s.bodyPreds[pred] {
			continue
		}
		d := engine.Delta{After: c.pre, AfterNeg: c.pre}
		sides[pred] = d
		if !c.del.Empty() {
			d.PosDriver = c.del
			anyDel = true
		}
		if !c.add.Empty() {
			d.NegDriver = c.add
			anyDel = true
		}
		base[pred] = d
		e := engine.Delta{}
		if !c.add.Empty() {
			e.PosDriver = c.add
			anyIns = true
		}
		if !c.del.Empty() {
			e.NegDriver = c.del
			anyIns = true
		}
		if e != (engine.Delta{}) {
			seed[pred] = e
		}
	}

	// 1. Overdelete: everything a dying derivation supported, cascaded
	// through the stratum in the old world.  Cascade rounds run on the
	// frontier contract: emissions already overdeleted are dropped at
	// emit time instead of surviving into a derived state for a Diff.
	dover := in.NewState()
	if anyDel {
		frontier := in.ApplyDeltas(oldPos, oldPos, base)
		for !frontier.Empty() {
			dover.UnionWith(frontier)
			casc := make(map[string]engine.Delta, len(sides)+len(s.preds))
			for pred, d := range sides {
				casc[pred] = d
			}
			drivers := false
			for pred := range s.preds {
				if !frontier[pred].Empty() {
					casc[pred] = engine.Delta{PosDriver: frontier[pred], After: pre[pred], AfterNeg: pre[pred]}
					drivers = true
				}
			}
			if !drivers {
				break
			}
			frontier = partition.ApplyDeltasFrontier(in, oldPos, oldPos, casc, dover)
		}
		for pred := range s.preds {
			rel := m.state[pred]
			dover[pred].Each(func(t relation.Tuple) bool { rel.Remove(t); return true })
		}
	}

	// 2. Rederive: candidates still derivable from the reduced state and
	// the updated inputs come back, repeatedly, until stable.
	cand := dover
	for {
		filter := make(map[string]*relation.Relation)
		for pred := range s.preds {
			if !cand[pred].Empty() {
				filter[pred] = cand[pred]
			}
		}
		if len(filter) == 0 {
			break
		}
		red := in.ApplyWithin(m.state, m.state, filter)
		progress := false
		for pred := range s.preds {
			rel := m.state[pred]
			red[pred].Each(func(t relation.Tuple) bool {
				if rel.Add(t) {
					cand[pred].Remove(t)
					progress = true
				}
				return true
			})
		}
		if !progress {
			break
		}
	}

	// 3. Insert: derivations the update enables, propagated semi-naively
	// through the stratum in the new world, filtered against the already
	// materialized own-predicate state at emit time.  Under partitioned
	// evaluation (in.Partitions() > 1) the propagation deltas are routed
	// to their owning partitions and the rounds evaluate K-way, exactly
	// like the from-scratch fixpoint loop.
	if anyIns {
		frontier := partition.ApplyDeltasFrontier(in, m.state, m.state, seed, ownState(m.state, s.preds))
		for !frontier.Empty() {
			for pred := range s.preds {
				rel := m.state[pred]
				frontier[pred].Each(func(t relation.Tuple) bool { rel.Add(t); return true })
			}
			next := make(map[string]engine.Delta, len(s.preds))
			for pred := range s.preds {
				if !frontier[pred].Empty() {
					next[pred] = engine.Delta{PosDriver: frontier[pred]}
				}
			}
			frontier = partition.ApplyDeltasFrontier(in, m.state, m.state, next, ownState(m.state, s.preds))
		}
	}

	// Net changes: diff against the pre-update snapshots.
	adds, dels = make(engine.State, len(s.preds)), make(engine.State, len(s.preds))
	for pred := range s.preds {
		adds[pred] = m.state[pred].Diff(pre[pred])
		dels[pred] = pre[pred].Diff(m.state[pred])
	}
	return pre, adds, dels
}

// ownState restricts a state to the given predicates.
func ownState(st engine.State, preds map[string]bool) engine.State {
	out := make(engine.State, len(preds))
	for pred := range preds {
		out[pred] = st[pred]
	}
	return out
}
