// durable.go — checkpoint capture and restore.
//
// A Checkpoint is everything a Maintainer needs to come back without
// re-running the fixpoint: the program, the universe, the EDB and the
// materialized IDB state, plus the small strategy-specific extras —
// the per-stage lengths of the inflationary replay log and the
// possibly-true relations of the well-founded model.  Everything else
// the strategies keep (stratum engine instances, support counts) is
// recomputed cheaply and exactly from that state on restore:
//
//   - strata: counts are seeded by one ApplyCount pass per
//     nonrecursive stratum.  The counting invariant says maintained
//     counts always equal the exact derivation counts at the current
//     state, so recomputing them from the restored state is bit-exact.
//   - replay: every logged stage is, by the monotone-append invariant
//     of the fixpoint loops, a length-prefix of the final state
//     relation's arena in insertion order.  The checkpoint therefore
//     stores only the per-stage lengths and restore rebuilds each
//     stage as an O(1) relation.Prefix view.
//   - well-founded: the three-valued model is its two relations.
//
// The relations inside a Checkpoint captured from a live Maintainer
// are sealed snapshot views: Checkpoint() is cheap and the caller may
// serialize the result on another goroutine while the maintainer keeps
// updating.
package incr

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// Checkpoint is a self-contained restorable image of a Maintainer.
type Checkpoint struct {
	Prog     *ast.Program
	Sem      core.Semantics
	Gen      uint64
	Universe *relation.Universe

	// EDBNames lists the EDB relations in database insertion order;
	// restore re-creates them in the same order so a restored
	// maintainer serializes identically to the original.
	EDBNames []string
	EDB      map[string]*relation.Relation
	IDB      map[string]*relation.Relation

	// StageLens holds, per logged inflationary stage, each IDB
	// relation's length at that stage (replay strategy only).
	StageLens []map[string]int

	// Possible holds the possibly-true relations of the well-founded
	// model (WellFounded semantics only).
	Possible map[string]*relation.Relation
}

// Checkpoint captures the maintainer's current state as sealed O(1)
// snapshot views.  Like Update and Snapshot it must be called from the
// maintainer's goroutine; the returned checkpoint may then be read —
// serialized, restored — from any goroutine while updates continue.
func (m *Maintainer) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Prog:     m.prog,
		Sem:      m.sem,
		Gen:      m.gen,
		Universe: m.db.Universe().Clone(),
		EDB:      make(map[string]*relation.Relation),
		IDB:      make(map[string]*relation.Relation, len(m.state)),
	}
	for _, name := range m.db.Names() {
		if m.idb[name] {
			continue // strata install IDB results into the database too
		}
		r := m.db.Relation(name)
		cp.EDBNames = append(cp.EDBNames, name)
		cp.EDB[name] = r.Snapshot()
		r.Seal()
	}
	for pred, r := range m.state {
		cp.IDB[pred] = r.Snapshot()
		r.Seal()
	}
	if m.strat == stratReplay {
		cp.StageLens = make([]map[string]int, len(m.log))
		for j, st := range m.log {
			lens := make(map[string]int, len(st))
			for pred, r := range st {
				lens[pred] = r.Len()
			}
			cp.StageLens[j] = lens
		}
	}
	if m.wf != nil {
		cp.Possible = make(map[string]*relation.Relation, len(m.wf.Possible))
		for pred, r := range m.wf.Possible {
			cp.Possible[pred] = r.Snapshot()
			r.Seal()
		}
	}
	return cp
}

// Restore rebuilds a ready Maintainer from a checkpoint without
// re-running the fixpoint.
func Restore(cp *Checkpoint) (*Maintainer, error) {
	return RestoreWith(cp, engine.Options{})
}

// RestoreWith is Restore with per-call engine options, mirroring
// NewWith.  The checkpoint is not consumed: its relations are cloned
// or re-sealed as needed, so the same checkpoint can be restored more
// than once.
func RestoreWith(cp *Checkpoint, opts engine.Options) (*Maintainer, error) {
	arities, err := cp.Prog.Validate()
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		prog:    cp.Prog,
		sem:     cp.Sem,
		opts:    opts,
		db:      relation.NewDatabaseOn(cp.Universe.Clone()),
		arities: arities,
		idb:     cp.Prog.IDB(),
		gen:     cp.Gen,
		safe:    allVarsPositive(cp.Prog),
	}
	for _, name := range cp.EDBNames {
		r, ok := cp.EDB[name]
		if !ok {
			return nil, fmt.Errorf("incr: checkpoint lists EDB relation %s but does not carry it", name)
		}
		m.db.Set(name, r.Mutable())
	}

	class := cp.Prog.Classify()
	switch cp.Sem {
	case core.LFP:
		if class != ast.ClassPositive && class != ast.ClassSemipositive {
			return nil, fmt.Errorf("incr: least fixpoint maintenance requires a positive or semipositive program; this one is %v", class)
		}
		m.strat = stratStrata
	case core.Stratified:
		if _, err := cp.Prog.Stratify(); err != nil {
			return nil, err
		}
		m.strat = stratStrata
	case core.Inflationary:
		if class == ast.ClassPositive || class == ast.ClassSemipositive {
			m.strat = stratStrata
		} else {
			m.strat = stratReplay
		}
	case core.WellFounded:
		m.strat = stratWF
	default:
		return nil, fmt.Errorf("incr: unknown semantics %v", cp.Sem)
	}

	idbRel := func(pred string) (*relation.Relation, error) {
		if r, ok := cp.IDB[pred]; ok {
			if ar, ok := arities[pred]; ok && r.Arity() != ar {
				return nil, fmt.Errorf("incr: checkpoint relation %s has arity %d, program wants %d", pred, r.Arity(), ar)
			}
			return r.Mutable(), nil
		}
		ar, ok := arities[pred]
		if !ok {
			return nil, fmt.Errorf("incr: checkpoint missing IDB relation %s with unknown arity", pred)
		}
		return relation.New(ar), nil
	}

	switch m.strat {
	case stratStrata:
		if err := m.initStrata(); err != nil {
			return nil, err
		}
		// Install the restored IDB stratum by stratum, exactly as
		// evalStrata installs computed results, and reseed the support
		// counts of each nonrecursive stratum from the restored state:
		// the counting invariant makes the recomputation bit-exact.
		m.state = make(engine.State)
		for _, s := range m.strata {
			st := make(engine.State, len(s.preds))
			for pred := range s.preds {
				rel, err := idbRel(pred)
				if err != nil {
					return nil, err
				}
				m.db.Set(pred, rel)
				m.state[pred] = rel
				st[pred] = rel
			}
			if !s.recursive {
				s.seedCounts(st)
			}
		}
	case stratReplay, stratWF:
		in, err := engine.NewWith(cp.Prog, m.db, opts)
		if err != nil {
			return nil, err
		}
		m.in = in
		m.state = in.NewState()
		for pred := range m.state {
			rel, err := idbRel(pred)
			if err != nil {
				return nil, err
			}
			m.state[pred] = rel
		}
		if m.strat == stratReplay {
			m.log = make([]engine.State, len(cp.StageLens))
			for j, lens := range cp.StageLens {
				st := make(engine.State, len(m.state))
				for pred, r := range m.state {
					n := lens[pred]
					if n > r.Len() {
						return nil, fmt.Errorf("incr: checkpoint stage %d wants %d tuples of %s, state has %d", j, n, pred, r.Len())
					}
					st[pred] = r.Prefix(n)
				}
				m.log[j] = st
			}
		} else {
			poss := in.NewState()
			for pred := range poss {
				if r, ok := cp.Possible[pred]; ok {
					poss[pred] = r.Mutable()
				}
			}
			m.wf = &semantics.WFResult{True: m.state, Possible: poss}
		}
	}
	return m, nil
}
