// Package incr maintains the materialized result of a DATALOG¬ program
// under EDB fact inserts and deletes, without recomputing the fixpoint
// from scratch.
//
// The strategy depends on the semantics and the program class:
//
//   - LFP and Stratified (and Inflationary on positive/semipositive
//     programs, where it coincides with LFP): stratum-by-stratum
//     maintenance.  Nonrecursive strata keep exact derivation support
//     counts (the counting algorithm): an update bumps counts up for
//     derivations it enables and down for derivations it disables, and
//     membership follows count > 0.  Recursive strata use DRed-style
//     delete/rederive plus semi-naive insert propagation.  Changes
//     cascade upward through the strata, insertions acting as deletions
//     through negation and vice versa.
//   - Inflationary on general programs: the paper's stage sequence is
//     the semantics, so the evaluator's per-stage snapshots (O(1) each,
//     see relation.Relation.Snapshot) are persisted as a replay log.
//     An update probes each logged stage for derivations that the
//     changed tuples enable or disable; the stages before the first
//     affected one are provably unchanged and are skipped, and
//     evaluation replays from there.
//   - WellFounded: recomputed per update (the alternating fixpoint
//     offers no stage structure to reuse); kept behind the same API so
//     the server can maintain any semantics.
//
// A Maintainer is single-writer: Update and Snapshot must be called
// from one goroutine (or externally serialized).  Snapshots returned by
// Snapshot are sealed immutable views that arbitrary goroutines may
// read while later updates run — the daemon's concurrent-reader
// contract.
package incr

import (
	"fmt"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// Fact is one EDB tuple named by constants, as it appears in update
// requests.
type Fact struct {
	Pred string   `json:"pred"`
	Args []string `json:"args"`
}

// UpdateStats reports what one Update did.
type UpdateStats struct {
	// Strategy that handled the update: counting/dred (possibly both,
	// reported as "strata"), replay, recompute, or noop.
	Strategy string `json:"strategy"`
	// EDB tuples actually inserted/removed (duplicates and misses are
	// dropped during normalization).
	InsertedEDB int `json:"inserted_edb"`
	DeletedEDB  int `json:"deleted_edb"`
	// Net IDB tuples the maintained state gained/lost.
	InsertedIDB int `json:"inserted_idb"`
	DeletedIDB  int `json:"deleted_idb"`
	// Replay accounting (inflationary only): stages proven unchanged
	// and skipped, and stages re-evaluated.
	SkippedStages  int           `json:"skipped_stages,omitempty"`
	ReplayedStages int           `json:"replayed_stages,omitempty"`
	Duration       time.Duration `json:"duration_ns"`
}

// Snapshot is a published point-in-time view of the maintained
// database: every program relation (EDB and IDB) as a sealed immutable
// view, plus a private copy of the universe.  Safe for concurrent reads
// from any number of goroutines while the maintainer keeps updating.
type Snapshot struct {
	Rels     map[string]*relation.Relation
	Universe *relation.Universe
	Gen      uint64
	Sem      core.Semantics
}

// Relation returns the named relation of the snapshot, or nil.
func (s *Snapshot) Relation(name string) *relation.Relation { return s.Rels[name] }

// strategy discriminates the maintenance machinery in use.
type strategy int

const (
	stratStrata strategy = iota // counting + DRed over strata
	stratReplay                 // inflationary stage-log replay
	stratWF                     // well-founded: recompute per update
)

// Maintainer owns a program, a private copy of its database, and the
// materialized result, and keeps the result exact under EDB updates.
type Maintainer struct {
	prog    *ast.Program
	sem     core.Semantics
	opts    engine.Options // applied to every instance the maintainer builds
	db      *relation.Database
	arities map[string]int
	idb     map[string]bool
	state   engine.State
	gen     uint64
	strat   strategy
	safe    bool // every rule variable bound positively: universe growth cannot change plans

	strata []*stratum       // stratStrata
	in     *engine.Instance // stratReplay / stratWF
	log    []engine.State   // stratReplay: stage snapshots S₁..S_m
	wf     *semantics.WFResult

	// pubUniv caches the universe copy handed to snapshots; the
	// universe is append-only, so it is stale exactly when the sizes
	// differ, and updates that intern nothing republish it for free.
	pubUniv *relation.Universe
}

// New builds a maintainer for prog on a private clone of db, runs the
// initial evaluation under sem, and returns it ready for updates.
func New(prog *ast.Program, db *relation.Database, sem core.Semantics) (*Maintainer, error) {
	return NewWith(prog, db, sem, engine.Options{})
}

// NewWith is New with per-call engine options applied to every
// instance the maintainer builds — the initial evaluation and every
// maintenance pass run with the same worker-pool/planner/frontier/
// sharding configuration.
func NewWith(prog *ast.Program, db *relation.Database, sem core.Semantics, opts engine.Options) (*Maintainer, error) {
	arities, err := prog.Validate()
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		prog:    prog,
		sem:     sem,
		opts:    opts,
		db:      db.Clone(),
		arities: arities,
		idb:     prog.IDB(),
		safe:    allVarsPositive(prog),
	}
	class := prog.Classify()
	switch sem {
	case core.LFP:
		if class != ast.ClassPositive && class != ast.ClassSemipositive {
			return nil, fmt.Errorf("incr: least fixpoint maintenance requires a positive or semipositive program; this one is %v", class)
		}
		m.strat = stratStrata
	case core.Stratified:
		if _, err := prog.Stratify(); err != nil {
			return nil, err
		}
		m.strat = stratStrata
	case core.Inflationary:
		if class == ast.ClassPositive || class == ast.ClassSemipositive {
			// Inflationary coincides with LFP: use the cheaper
			// counting/DRed machinery.
			m.strat = stratStrata
		} else {
			m.strat = stratReplay
		}
	case core.WellFounded:
		m.strat = stratWF
	default:
		return nil, fmt.Errorf("incr: unknown semantics %v", sem)
	}

	switch m.strat {
	case stratStrata:
		if err := m.initStrata(); err != nil {
			return nil, err
		}
		m.evalStrata()
	case stratReplay, stratWF:
		in, err := engine.NewWith(prog, m.db, opts)
		if err != nil {
			return nil, err
		}
		m.in = in
		if m.strat == stratReplay {
			m.evalReplay()
		} else {
			m.evalWF()
		}
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(prog *ast.Program, db *relation.Database, sem core.Semantics) *Maintainer {
	m, err := New(prog, db, sem)
	if err != nil {
		panic("incr: " + err.Error())
	}
	return m
}

// State returns the live maintained IDB state (for WellFounded, the
// certainly-true part).  It must only be read from the maintainer's
// goroutine; concurrent readers use Snapshot.
func (m *Maintainer) State() engine.State { return m.state }

// WF returns the full three-valued result when the semantics is
// WellFounded, else nil.
func (m *Maintainer) WF() *semantics.WFResult { return m.wf }

// Universe returns the maintainer's universe.  Single-goroutine, like
// State; snapshots carry their own copy.
func (m *Maintainer) Universe() *relation.Universe { return m.db.Universe() }

// Semantics returns the maintained semantics.
func (m *Maintainer) Semantics() core.Semantics { return m.sem }

// Gen returns the update generation (0 = initial evaluation).
func (m *Maintainer) Gen() uint64 { return m.gen }

// Stages returns the number of logged inflationary stages (0 for other
// strategies).
func (m *Maintainer) Stages() int { return len(m.log) }

// Snapshot publishes the current state: sealed immutable views of every
// program relation plus a private universe copy.  Readers on any
// goroutine may use it while Update keeps running; the first mutation
// of each relation after publication copies its storage (copy-on-write)
// so published views are never written to.
func (m *Maintainer) Snapshot() *Snapshot {
	rels := make(map[string]*relation.Relation, len(m.state)+8)
	for pred, r := range m.state {
		rels[pred] = r.Snapshot()
		r.Seal()
	}
	for _, name := range m.db.Names() {
		if _, ok := rels[name]; ok {
			continue
		}
		r := m.db.Relation(name)
		rels[name] = r.Snapshot()
		r.Seal()
	}
	if m.pubUniv == nil || m.pubUniv.Size() != m.db.Universe().Size() {
		m.pubUniv = m.db.Universe().Clone()
	}
	return &Snapshot{Rels: rels, Universe: m.pubUniv, Gen: m.gen, Sem: m.sem}
}

// change tracks one predicate's effective update: the tuples actually
// entering (add) and leaving (del), and a pre-update snapshot.
type change struct {
	add, del *relation.Relation
	pre      *relation.Relation
}

// stable returns the tuples present in both the old and new worlds:
// pre ∖ del (= new ∖ add).
func (c *change) stable() *relation.Relation {
	if c.del.Empty() {
		return c.pre
	}
	return c.pre.Diff(c.del)
}

// ever returns the tuples present in either world: pre ∪ add.
func (c *change) ever() *relation.Relation {
	if c.add.Empty() {
		return c.pre
	}
	return c.pre.Union(c.add)
}

// Update applies the fact inserts and deletes and incrementally
// maintains the materialized state.  Inserting a present fact or
// deleting an absent one is a no-op; a tuple appearing in both lists is
// an error.  New constants are interned into the universe.
func (m *Maintainer) Update(ins, del []Fact) (*UpdateStats, error) {
	start := time.Now()
	stats := &UpdateStats{}
	ch, grew, err := m.normalize(ins, del, stats)
	if err != nil {
		return nil, err
	}
	effective := len(ch) > 0
	switch {
	case grew && !m.safe:
		// A new constant changes the universe the unsafe rules
		// enumerate, invalidating every maintenance shortcut.
		stats.Strategy = "recompute"
		m.recompute()
	case !effective:
		stats.Strategy = "noop"
	case m.strat == stratStrata:
		stats.Strategy = "strata"
		m.updateStrata(ch, stats)
	case m.strat == stratReplay:
		stats.Strategy = "replay"
		m.updateReplay(ch, stats)
	default:
		stats.Strategy = "recompute"
		m.evalWF()
	}
	m.gen++
	stats.Duration = time.Since(start)
	return stats, nil
}

// recompute redoes the full evaluation with the current database (the
// fallback for universe growth under unsafe rules).
func (m *Maintainer) recompute() {
	switch m.strat {
	case stratStrata:
		m.evalStrata()
	case stratReplay:
		m.evalReplay()
	default:
		m.evalWF()
	}
}

// normalize interns the update's constants, validates it, applies it to
// the EDB relations, and returns the effective per-predicate changes
// with pre-update snapshots.  grew reports whether interning added new
// constants.
func (m *Maintainer) normalize(ins, del []Fact, stats *UpdateStats) (map[string]*change, bool, error) {
	univ := m.db.Universe()
	before := univ.Size()

	toTuple := func(f Fact) (relation.Tuple, *relation.Relation, error) {
		if m.idb[f.Pred] {
			return nil, nil, fmt.Errorf("incr: %s is an IDB predicate; only EDB facts can be updated", f.Pred)
		}
		if ar, ok := m.arities[f.Pred]; ok && ar != len(f.Args) {
			return nil, nil, fmt.Errorf("incr: %s has arity %d in the program, got %d args", f.Pred, ar, len(f.Args))
		}
		rel, err := m.db.Ensure(f.Pred, len(f.Args))
		if err != nil {
			return nil, nil, err
		}
		t := make(relation.Tuple, len(f.Args))
		for i, a := range f.Args {
			t[i] = univ.Intern(a)
		}
		return t, rel, nil
	}

	ch := make(map[string]*change)
	chFor := func(pred string, rel *relation.Relation) *change {
		c := ch[pred]
		if c == nil {
			c = &change{
				add: relation.New(rel.Arity()),
				del: relation.New(rel.Arity()),
				pre: rel.Snapshot(),
			}
			ch[pred] = c
		}
		return c
	}

	// Stage the effective tuples first (so pre-snapshots are taken
	// before any mutation and conflicts are detected), then apply.
	for _, f := range del {
		t, rel, err := toTuple(f)
		if err != nil {
			return nil, false, err
		}
		if rel.Has(t) {
			chFor(f.Pred, rel).del.Add(t)
		}
	}
	for _, f := range ins {
		t, rel, err := toTuple(f)
		if err != nil {
			return nil, false, err
		}
		c := chFor(f.Pred, rel)
		if c.del.Has(t) {
			return nil, false, fmt.Errorf("incr: %s%v both inserted and deleted in one update", f.Pred, f.Args)
		}
		if !rel.Has(t) {
			c.add.Add(t)
		}
	}
	for pred, c := range ch {
		rel := m.db.Relation(pred)
		c.del.Each(func(t relation.Tuple) bool { rel.Remove(t); return true })
		c.add.Each(func(t relation.Tuple) bool { rel.Add(t); return true })
		stats.InsertedEDB += c.add.Len()
		stats.DeletedEDB += c.del.Len()
		if c.add.Empty() && c.del.Empty() {
			delete(ch, pred)
		}
	}
	return ch, univ.Size() > before, nil
}

// evalWF recomputes the well-founded model.
func (m *Maintainer) evalWF() {
	m.wf = semantics.WellFoundedMode(m.in, semantics.SemiNaive)
	m.state = m.wf.True
}

// allVarsPositive reports whether every variable of every rule is bound
// by a positive body literal — such programs never enumerate the
// universe, so growing it cannot change any derivation.
func allVarsPositive(p *ast.Program) bool {
	for _, r := range p.Rules {
		pv := r.PositiveVars()
		for _, v := range r.Vars() {
			if !pv[v] {
				return false
			}
		}
	}
	return true
}
