// replay.go — stage-log replay for general inflationary programs.
//
// The inflationary semantics is its stage sequence: S₀ = ∅,
// S_{j+1} = S_j ∪ Θ(S_j), iterated to the inductive fixpoint.  For a
// non-monotone program there is no counting/DRed shortcut — the result
// is defined by the order tuples appear in — but the sequence itself
// can be checkpointed: evaluation logs an O(1) snapshot of every stage
// (semantics.InflationaryLog).  An EDB update leaves the prefix of the
// sequence provably unchanged up to the first stage where a changed
// tuple participates in a derivation; replay restarts there instead of
// at ∅.
//
// Stage j+1 is unchanged (S'_{j+1} = S_{j+1}, given S'_j = S_j) when
//
//   - every derivation the change enables at S_j has a head already in
//     S_{j+1} (it adds nothing new), and
//   - every derivation the change disables at S_j has a head already in
//     S_j (inflationary states never shrink, so the head survives
//     regardless of the lost derivation).
//
// Both probe sets are computed by engine.ApplyDeltas with the changed
// tuples as drivers; side literals read the either-world union
// (positive) and are checked against the both-worlds intersection
// (negated), overapproximating derivations of either world — safe for
// a prefix-validity proof.
package incr

import (
	"repro/internal/engine"
	"repro/internal/semantics"
)

// evalReplay runs the initial inflationary evaluation, persisting the
// per-stage snapshot log.
func (m *Maintainer) evalReplay() {
	m.log = nil
	res := semantics.InflationaryLog(m.in, semantics.SemiNaive, func(s engine.State) {
		m.log = append(m.log, s)
	})
	m.state = res.State
}

// updateReplay finds the first stage the EDB changes can affect and
// replays the stage sequence from there.
func (m *Maintainer) updateReplay(ch map[string]*change, stats *UpdateStats) {
	enabled := make(map[string]engine.Delta, len(ch))
	disabled := make(map[string]engine.Delta, len(ch))
	for pred, c := range ch {
		stable, ever := c.stable(), c.ever()
		d := engine.Delta{Before: ever, BeforeNeg: stable, After: ever, AfterNeg: stable}
		e, f := d, d
		if !c.add.Empty() {
			e.PosDriver = c.add
			f.NegDriver = c.add
		}
		if !c.del.Empty() {
			e.NegDriver = c.del
			f.PosDriver = c.del
		}
		enabled[pred] = e
		disabled[pred] = f
	}

	// Walk the logged stages; base holds S_j while stage is S_{j+1}.
	// The final iteration (j == len(log)) re-checks the fixpoint
	// condition itself: the new operator must not derive past S_m.
	base := m.in.NewState()
	first := -1
	for j := 0; j <= len(m.log); j++ {
		stage := base
		if j < len(m.log) {
			stage = m.log[j]
		}
		if en := m.in.ApplyDeltas(base, base, enabled); !en.SubsetOf(stage) {
			first = j
			break
		}
		if j < len(m.log) {
			if dis := m.in.ApplyDeltas(base, base, disabled); !dis.SubsetOf(base) {
				first = j
				break
			}
			base = stage
		}
	}
	if first < 0 {
		stats.SkippedStages = len(m.log)
		return
	}
	stats.SkippedStages = first
	if first < len(m.log) {
		m.log = m.log[:first]
	}

	// Replay from S_first: one full Θ application, then semi-naive
	// rounds exactly as in the from-scratch loop — on the frontier
	// contract, so each round returns the genuinely-new tuples directly.
	preTotal := m.state.Total()
	cur := base.Mutable()
	nd := m.in.ApplySplitFrontier(cur, cur, cur)
	stats.ReplayedStages = 1
	for !nd.Empty() {
		prev := cur.Snapshot()
		cur.UnionDisjoint(nd)
		m.log = append(m.log, cur.Snapshot())
		nd = m.in.ApplyDeltaSplitFrontier(prev, nd, cur, cur)
		stats.ReplayedStages++
	}
	m.state = cur
	if d := cur.Total() - preTotal; d >= 0 {
		stats.InsertedIDB = d
	} else {
		stats.DeletedIDB = -d
	}
}
