package incr_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

const (
	tcSrc   = "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."
	distSrc = `
s1(X,Y) :- E(X,Y).
s1(X,Y) :- E(X,Z), s1(Z,Y).
s2(Xs,Ys) :- E(Xs,Ys).
s2(Xs,Ys) :- E(Xs,Zs), s2(Zs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Y), !s2(Xs,Ys).
s3(X,Y,Xs,Ys) :- E(X,Z), s1(Z,Y), !s2(Xs,Ys).
`
	winSrc = "win(X) :- E(X,Y), !win(Y)."
	// X appears only under negation: the rule enumerates the universe,
	// so universe growth forces the recompute fallback.
	unsafeSrc = "t(X) :- !E(X,X).\nu(X,Y) :- E(X,Y), !F(X,Y)."
)

// applyPlain mirrors a maintainer update onto a plain database, in the
// same order normalize uses (deletes first), so constant interning
// stays aligned.
func applyPlain(t *testing.T, db *relation.Database, ins, del []incr.Fact) {
	t.Helper()
	tup := func(f incr.Fact) relation.Tuple {
		tu := make(relation.Tuple, len(f.Args))
		for i, a := range f.Args {
			tu[i] = db.Universe().Intern(a)
		}
		return tu
	}
	for _, f := range del {
		r, err := db.Ensure(f.Pred, len(f.Args))
		if err != nil {
			t.Fatal(err)
		}
		r.Remove(tup(f))
	}
	for _, f := range ins {
		r, err := db.Ensure(f.Pred, len(f.Args))
		if err != nil {
			t.Fatal(err)
		}
		r.Add(tup(f))
	}
}

// randomBatch draws 1-3 fact inserts/deletes over the given predicates,
// occasionally using a fresh constant name to exercise universe growth.
func randomBatch(rng *rand.Rand, preds []string, n int, fresh *int) (ins, del []incr.Fact) {
	name := func() string {
		if rng.Intn(12) == 0 {
			*fresh++
			return fmt.Sprintf("w%d", *fresh)
		}
		return graphs.VertexName(rng.Intn(n))
	}
	seen := map[string]bool{}
	for k := rng.Intn(3) + 1; k > 0; k-- {
		f := incr.Fact{Pred: preds[rng.Intn(len(preds))], Args: []string{name(), name()}}
		key := f.Pred + "/" + f.Args[0] + "/" + f.Args[1]
		if seen[key] {
			continue // same tuple twice in one batch risks an ins/del conflict
		}
		seen[key] = true
		if rng.Intn(2) == 0 {
			ins = append(ins, f)
		} else {
			del = append(del, f)
		}
	}
	return ins, del
}

// checkMaintained interleaves random inserts and deletes and verifies
// after every update that the maintained state is bit-exact with a
// from-scratch recompute on an identically updated plain database.
func checkMaintained(t *testing.T, src string, sem core.Semantics, preds []string, seed int64, steps int) {
	prog := parser.MustProgram(src)
	n := 6
	db0 := graphs.Random(rand.New(rand.NewSource(seed)), n, 0.3).Database()
	if len(preds) > 1 {
		// Seed the auxiliary predicates so Ensure arities agree.
		for _, p := range preds[1:] {
			db0.MustEnsure(p, 2)
		}
	}
	m, err := incr.New(prog, db0, sem)
	if err != nil {
		t.Fatal(err)
	}
	mirror := db0.Clone()
	rng := rand.New(rand.NewSource(seed * 7))
	fresh := 0
	for step := 0; step < steps; step++ {
		ins, del := randomBatch(rng, preds, n, &fresh)
		stats, err := m.Update(ins, del)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		applyPlain(t, mirror, ins, del)
		want, err := core.Eval(prog, mirror, sem, semantics.SemiNaive)
		if err != nil {
			t.Fatalf("step %d recompute: %v", step, err)
		}
		got := m.State().Format(m.Universe())
		exp := want.State.Format(want.Universe)
		if got != exp {
			t.Fatalf("step %d (%s, ins=%v del=%v, strategy=%s): maintained state diverged\nmaintained:\n%s\nrecompute:\n%s",
				step, sem, ins, del, stats.Strategy, got, exp)
		}
	}
}

func TestMaintainedMatchesRecompute(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		preds []string
		sems  []core.Semantics
	}{
		{"tc", tcSrc, []string{"E"}, []core.Semantics{core.Inflationary, core.LFP, core.Stratified, core.WellFounded}},
		{"distance", distSrc, []string{"E"}, []core.Semantics{core.Stratified, core.Inflationary, core.WellFounded}},
		{"winmove", winSrc, []string{"E"}, []core.Semantics{core.Inflationary, core.WellFounded}},
		{"unsafe-semipositive", unsafeSrc, []string{"E", "F"}, []core.Semantics{core.LFP, core.Inflationary, core.Stratified}},
	}
	for _, tc := range cases {
		for _, sem := range tc.sems {
			for _, seed := range []int64{1, 2, 3} {
				name := fmt.Sprintf("%s/%v/seed%d", tc.name, sem, seed)
				t.Run(name, func(t *testing.T) {
					steps := 24
					if testing.Short() {
						steps = 8
					}
					checkMaintained(t, tc.src, sem, tc.preds, seed, steps)
				})
			}
		}
	}
}

// TestMaintainedPartitioned runs the maintained-vs-recompute check with
// K-way partitioned evaluation: the initial evaluation partitions
// through the semantics dispatch, and the DRed cascade/insert rounds
// route their deltas to the owning partitions.  The oracle recompute
// stays unpartitioned, so divergence anywhere in the exchange path
// would surface as a state diff.
func TestMaintainedPartitioned(t *testing.T) {
	prog := parser.MustProgram(distSrc)
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("K%d", k), func(t *testing.T) {
			db0 := graphs.Random(rand.New(rand.NewSource(9)), 6, 0.3).Database()
			m, err := incr.NewWith(prog, db0, core.Stratified, engine.Options{Partitions: k})
			if err != nil {
				t.Fatal(err)
			}
			mirror := db0.Clone()
			rng := rand.New(rand.NewSource(63))
			fresh := 0
			steps := 16
			if testing.Short() {
				steps = 6
			}
			for step := 0; step < steps; step++ {
				ins, del := randomBatch(rng, []string{"E"}, 6, &fresh)
				if _, err := m.Update(ins, del); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				applyPlain(t, mirror, ins, del)
				want, err := core.Eval(prog, mirror, core.Stratified, semantics.SemiNaive)
				if err != nil {
					t.Fatalf("step %d recompute: %v", step, err)
				}
				got := m.State().Format(m.Universe())
				if exp := want.State.Format(want.Universe); got != exp {
					t.Fatalf("step %d (K=%d, ins=%v del=%v): maintained state diverged\nmaintained:\n%s\nrecompute:\n%s",
						step, k, ins, del, got, exp)
				}
			}
		})
	}
}

func TestUpdateErrors(t *testing.T) {
	prog := parser.MustProgram(tcSrc)
	db := graphs.Path(3).Database()
	m := incr.MustNew(prog, db, core.LFP)
	if _, err := m.Update([]incr.Fact{{Pred: "s", Args: []string{"v0", "v1"}}}, nil); err == nil {
		t.Error("updating an IDB predicate should fail")
	}
	if _, err := m.Update([]incr.Fact{{Pred: "E", Args: []string{"v0"}}}, nil); err == nil {
		t.Error("arity mismatch should fail")
	}
	f := incr.Fact{Pred: "E", Args: []string{"v0", "v1"}} // present, so both sides are effective
	if _, err := m.Update([]incr.Fact{f}, []incr.Fact{f}); err == nil {
		t.Error("same-tuple insert+delete should fail")
	}
	// No-op updates are reported as such.
	stats, err := m.Update([]incr.Fact{{Pred: "E", Args: []string{"v0", "v1"}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Strategy != "noop" {
		t.Errorf("re-inserting a present fact: strategy %q, want noop", stats.Strategy)
	}
}

func TestSnapshotStableAcrossUpdates(t *testing.T) {
	prog := parser.MustProgram(tcSrc)
	m := incr.MustNew(prog, graphs.Path(4).Database(), core.LFP)
	snap := m.Snapshot()
	before := snap.Rels["s"].Len()
	if _, err := m.Update([]incr.Fact{{Pred: "E", Args: []string{"v3", "v0"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if snap.Rels["s"].Len() != before {
		t.Fatalf("published snapshot changed under an update: %d -> %d", before, snap.Rels["s"].Len())
	}
	next := m.Snapshot()
	if next.Gen <= snap.Gen {
		t.Fatalf("generation did not advance: %d -> %d", snap.Gen, next.Gen)
	}
	if next.Rels["s"].Len() <= before {
		t.Fatalf("new snapshot missing maintained growth")
	}
}
