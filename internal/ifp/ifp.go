// Package ifp implements the logic side of Proposition 1: the
// existential fragment of FO+IFP (first-order logic with the
// inflationary/inductive fixpoint operator of Gurevich–Shelah), and
// the two translations the proposition's proof sketches:
//
//   - an operator F on k-ary relations defined by an existential
//     first-order formula φ(x̄, S) compiles to a DATALOG¬ program whose
//     inflationary semantics computes F's inductive fixpoint
//     (bring φ to DNF, one rule per disjunct);
//   - conversely, a DATALOG¬ program with a single IDB relation defines
//     an existential first-order operator (the Section 2 analysis that
//     Θ is existential-first-order definable).
//
// The inductive fixpoint itself is also computed directly, by iterated
// model checking — the independent oracle experiment E12 compares the
// two routes against.
package ifp

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Operator is a first-order-definable operator on k-ary relations:
// F(S) = {ā ∈ Aᵏ : (D, S) ⊨ φ(ā)}, where φ mentions the database
// vocabulary and the relation variable Pred.
type Operator struct {
	// Pred is the relation variable's name (must not collide with a
	// database relation).
	Pred string
	// Arity is k.
	Arity int
	// FreeVars are the free variables x̄ of φ, in output order (length
	// must equal Arity).
	FreeVars []string
	// Phi is the defining formula.
	Phi logic.Formula
}

// Validate checks structural consistency.
func (op *Operator) Validate() error {
	if len(op.FreeVars) != op.Arity {
		return fmt.Errorf("ifp: %d free variables for arity %d", len(op.FreeVars), op.Arity)
	}
	free := logic.FreeVars(op.Phi)
	declared := make(map[string]bool, len(op.FreeVars))
	for _, v := range op.FreeVars {
		declared[v] = true
	}
	for _, v := range free {
		if !declared[v] {
			return fmt.Errorf("ifp: formula has undeclared free variable %s", v)
		}
	}
	return nil
}

// Apply computes F(S) on db, with cur installed as the value of Pred.
func (op *Operator) Apply(db *relation.Database, cur *relation.Relation) (*relation.Relation, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	work := db.Clone()
	if work.Relation(op.Pred) != nil {
		return nil, fmt.Errorf("ifp: relation variable %s collides with a database relation", op.Pred)
	}
	work.Set(op.Pred, cur.Clone())
	out := relation.New(op.Arity)
	env := make(map[string]int, op.Arity)
	n := work.Universe().Size()

	tuple := make(relation.Tuple, op.Arity)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == op.Arity {
			if logic.Eval(work, op.Phi, env) {
				out.Add(tuple)
			}
			return
		}
		for v := 0; v < n; v++ {
			tuple[pos] = v
			env[op.FreeVars[pos]] = v
			rec(pos + 1)
		}
		delete(env, op.FreeVars[pos])
	}
	rec(0)
	return out, nil
}

// InductiveFixpoint iterates S ↦ S ∪ F(S) from ∅ to stability,
// returning the inductive fixpoint and the number of stages (including
// the final no-growth check).
func (op *Operator) InductiveFixpoint(db *relation.Database) (*relation.Relation, int, error) {
	cur := relation.New(op.Arity)
	rounds := 0
	for {
		next, err := op.Apply(db, cur)
		if err != nil {
			return nil, 0, err
		}
		rounds++
		if next.UnionWith(cur) >= 0 && next.Equal(cur) {
			return cur, rounds, nil
		}
		cur = next
	}
}

// Program compiles the operator into a DATALOG¬ program per the
// Proposition 1 proof: φ is brought to NNF and prenex form; every
// quantifier must be existential (the existential fragment); the
// matrix's DNF yields one rule Pred(x̄) ← θᵢ per disjunct.  Evaluating
// the program under *inflationary* semantics computes the operator's
// inductive fixpoint.
func (op *Operator) Program() (*ast.Program, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	blocks, matrix := logic.Prenex(logic.NNF(op.Phi))
	for _, b := range blocks {
		if b.Forall {
			return nil, fmt.Errorf("ifp: formula is not in the existential fragment (universal quantifier over %v)", b.Vars)
		}
	}
	disjuncts, err := logic.DNF(matrix)
	if err != nil {
		return nil, err
	}
	headArgs := make([]ast.Term, op.Arity)
	for i, v := range op.FreeVars {
		headArgs[i] = ast.Var(v)
	}
	head := ast.Atom{Pred: op.Pred, Args: headArgs}

	prog := &ast.Program{Carrier: op.Pred}
	for _, conj := range disjuncts {
		body := make([]ast.Literal, 0, len(conj))
		for _, l := range conj {
			body = append(body, l.ToASTLiteral())
		}
		prog.Rules = append(prog.Rules, ast.NewRule(head, body...))
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("ifp: formula has empty DNF")
	}
	if _, err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("ifp: generated program invalid: %w", err)
	}
	return prog, nil
}

// FromProgram extracts the existential first-order operator of a
// DATALOG¬ program with a single IDB relation — the Section 2
// observation that Θ is definable by an existential formula:
//
//	φ(x̄) = ∨_rules ∃ȳ (x₁ = t₁ ∧ … ∧ x_k = t_k ∧ body)
//
// where t̄ is the rule's head tuple and ȳ its non-head variables.
func FromProgram(prog *ast.Program) (*Operator, error) {
	arities, err := prog.Validate()
	if err != nil {
		return nil, err
	}
	idb := prog.IDBList()
	if len(idb) != 1 {
		return nil, fmt.Errorf("ifp: program has %d IDB relations, want 1", len(idb))
	}
	pred := idb[0]
	arity := arities[pred]

	// Fresh output variables, avoiding every rule variable.
	used := make(map[string]bool)
	for _, r := range prog.Rules {
		for _, v := range r.Vars() {
			used[v] = true
		}
	}
	freeVars := make([]string, arity)
	for i := range freeVars {
		for c := 0; ; c++ {
			name := fmt.Sprintf("O%d_%d", i, c)
			if !used[name] {
				freeVars[i] = name
				used[name] = true
				break
			}
		}
	}

	var disj []logic.Formula
	for _, r := range prog.Rules {
		var conj []logic.Formula
		for i, t := range r.Head.Args {
			conj = append(conj, logic.Eq{Left: ast.Var(freeVars[i]), Right: t})
		}
		for _, l := range r.Body {
			switch l.Kind {
			case ast.LitPos:
				conj = append(conj, logic.Atom{Pred: l.Atom.Pred, Args: l.Atom.Args})
			case ast.LitNeg:
				conj = append(conj, logic.Not{F: logic.Atom{Pred: l.Atom.Pred, Args: l.Atom.Args}})
			case ast.LitEq:
				conj = append(conj, logic.Eq{Left: l.Left, Right: l.Right})
			case ast.LitNeq:
				conj = append(conj, logic.Not{F: logic.Eq{Left: l.Left, Right: l.Right}})
			}
		}
		var f logic.Formula = logic.And{Fs: conj}
		if vars := r.Vars(); len(vars) > 0 {
			f = logic.Exists{Vars: vars, F: f}
		}
		disj = append(disj, f)
	}
	op := &Operator{
		Pred:     pred,
		Arity:    arity,
		FreeVars: freeVars,
		Phi:      logic.Or{Fs: disj},
	}
	if err := op.Validate(); err != nil {
		return nil, err
	}
	return op, nil
}
