package ifp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// tcOperator is the TC operator: φ(x,y) = E(x,y) ∨ ∃z (E(x,z) ∧ S(z,y)).
func tcOperator() *Operator {
	return &Operator{
		Pred:     "s",
		Arity:    2,
		FreeVars: []string{"X", "Y"},
		Phi: logic.Or{Fs: []logic.Formula{
			logic.A("E", "X", "Y"),
			logic.Exists{Vars: []string{"Z"}, F: logic.And{Fs: []logic.Formula{
				logic.A("E", "X", "Z"), logic.A("s", "Z", "Y"),
			}}},
		}},
	}
}

// pi1Operator is π₁'s operator: φ(x) = ∃y (E(y,x) ∧ ¬S(y)).
func pi1Operator() *Operator {
	return &Operator{
		Pred:     "t",
		Arity:    1,
		FreeVars: []string{"X"},
		Phi: logic.Exists{Vars: []string{"Y"}, F: logic.And{Fs: []logic.Formula{
			logic.A("E", "Y", "X"), logic.Not{F: logic.A("t", "Y")},
		}}},
	}
}

func TestInductiveFixpointTC(t *testing.T) {
	g := graphs.Path(5)
	fp, rounds, err := tcOperator().InductiveFixpoint(g.Database())
	if err != nil {
		t.Fatal(err)
	}
	if fp.Len() != 10 { // 4+3+2+1 pairs on L5
		t.Errorf("|TC| = %d, want 10", fp.Len())
	}
	if rounds < 4 {
		t.Errorf("rounds = %d", rounds)
	}
}

func TestInductiveFixpointPi1(t *testing.T) {
	// Θ^∞ of π₁ = edge targets, reached after one productive stage.
	g := graphs.Cycle(5)
	fp, _, err := pi1Operator().InductiveFixpoint(g.Database())
	if err != nil {
		t.Fatal(err)
	}
	if fp.Len() != 5 {
		t.Errorf("|T| = %d, want 5", fp.Len())
	}
}

func TestProposition1OperatorToProgram(t *testing.T) {
	// The compiled program under inflationary semantics equals the
	// directly computed inductive fixpoint.
	for name, op := range map[string]*Operator{"tc": tcOperator(), "pi1": pi1Operator()} {
		prog, err := op.Program()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for seed := int64(0); seed < 5; seed++ {
			g := graphs.Random(rand.New(rand.NewSource(seed)), 5, 0.3)
			db := g.Database()
			want, _, err := op.InductiveFixpoint(db)
			if err != nil {
				t.Fatal(err)
			}
			in := engine.MustNew(prog, db.Clone())
			got := semantics.Inflationary(in)
			if !got.State[op.Pred].Equal(want) {
				t.Errorf("%s seed %d: program %v, oracle %v", name, seed,
					got.State[op.Pred].Format(db.Universe()), want.Format(db.Universe()))
			}
		}
	}
}

func TestProposition1ProgramToOperator(t *testing.T) {
	// The converse direction: a single-IDB program's operator, computed
	// by model checking, matches the program's inflationary semantics.
	progs := []string{
		"s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y).",
		"t(X) :- E(Y,X), !t(Y).",
		"t(X) :- E(X,Y), E(Y,X), X != Y.",
		"t(a) :- E(X,Y).", // constant head
	}
	for _, src := range progs {
		prog := parser.MustProgram(src)
		op, err := FromProgram(prog)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for seed := int64(0); seed < 4; seed++ {
			g := graphs.Random(rand.New(rand.NewSource(seed+50)), 4, 0.35)
			db := g.Database()
			db.AddConstant("a")
			want, _, err := op.InductiveFixpoint(db)
			if err != nil {
				t.Fatal(err)
			}
			in := engine.MustNew(prog, db.Clone())
			got := semantics.Inflationary(in)
			if !got.State[op.Pred].Equal(want) {
				t.Errorf("%q seed %d: operator disagrees with program", src, seed)
			}
		}
	}
}

func TestProgramRejectsUniversal(t *testing.T) {
	op := &Operator{
		Pred: "p", Arity: 1, FreeVars: []string{"X"},
		Phi: logic.Forall{Vars: []string{"Y"}, F: logic.A("E", "X", "Y")},
	}
	if _, err := op.Program(); err == nil {
		t.Error("universal quantifier accepted in the existential fragment")
	}
}

func TestFromProgramRejectsMultiIDB(t *testing.T) {
	prog := parser.MustProgram("a(X) :- E(X,Y). b(X) :- E(Y,X).")
	if _, err := FromProgram(prog); err == nil {
		t.Error("multi-IDB program accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := &Operator{Pred: "p", Arity: 2, FreeVars: []string{"X"}, Phi: logic.A("E", "X", "Y")}
	if err := bad.Validate(); err == nil {
		t.Error("arity/vars mismatch accepted")
	}
	undeclared := &Operator{Pred: "p", Arity: 1, FreeVars: []string{"X"}, Phi: logic.A("E", "X", "Y")}
	if err := undeclared.Validate(); err == nil {
		t.Error("undeclared free variable accepted")
	}
}

func TestApplyCollision(t *testing.T) {
	op := &Operator{Pred: "E", Arity: 1, FreeVars: []string{"X"},
		Phi: logic.A("E", "X", "X")}
	db := graphs.Path(2).Database()
	if _, err := op.Apply(db, relation.New(1)); err == nil {
		t.Error("collision with database relation accepted")
	}
}

// randomExistentialOperator draws a small random operator in the
// existential fragment over E/2, V/1 with a unary relation variable.
func randomExistentialOperator(rng *rand.Rand) *Operator {
	lit := func(scope []string) logic.Formula {
		v := func() string { return scope[rng.Intn(len(scope))] }
		var f logic.Formula
		switch rng.Intn(4) {
		case 0:
			f = logic.A("V", v())
		case 1:
			f = logic.A("E", v(), v())
		case 2:
			f = logic.A("sv", v())
		default:
			f = logic.Eq{Left: ast.Var(v()), Right: ast.Var(v())}
		}
		if rng.Intn(2) == 0 {
			f = logic.Not{F: f}
		}
		return f
	}
	scope := []string{"X", "Y1"}
	inner := logic.And{Fs: []logic.Formula{lit(scope), lit(scope)}}
	var body logic.Formula = logic.Exists{Vars: []string{"Y1"}, F: inner}
	if rng.Intn(2) == 0 {
		body = logic.Or{Fs: []logic.Formula{body,
			logic.Exists{Vars: []string{"Y2"}, F: lit([]string{"X", "Y2"})}}}
	}
	return &Operator{Pred: "sv", Arity: 1, FreeVars: []string{"X"}, Phi: body}
}

func TestPropProposition1RoundTrip(t *testing.T) {
	// For random existential operators: direct inductive fixpoint =
	// inflationary semantics of the compiled program = inductive
	// fixpoint of the operator re-extracted from that program.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		op := randomExistentialOperator(rng)
		prog, err := op.Program()
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		back, err := FromProgram(prog)
		if err != nil {
			t.Logf("seed %d: extract: %v", seed, err)
			return false
		}
		g := graphs.Random(rng, 4, 0.3)
		db := g.Database()
		for i := 0; i < 2; i++ {
			if rng.Intn(2) == 0 {
				db.AddFact("V", graphs.VertexName(rng.Intn(4)))
			}
		}
		db.MustEnsure("V", 1)

		direct, _, err := op.InductiveFixpoint(db)
		if err != nil {
			t.Logf("seed %d: direct: %v", seed, err)
			return false
		}
		in := engine.MustNew(prog, db.Clone())
		viaProgram := semantics.Inflationary(in).State[op.Pred]
		reExtracted, _, err := back.InductiveFixpoint(db)
		if err != nil {
			t.Logf("seed %d: re-extract: %v", seed, err)
			return false
		}
		if !direct.Equal(viaProgram) || !direct.Equal(reExtracted) {
			t.Logf("seed %d: mismatch\nphi: %s\nprogram:\n%s\ndirect: %v\nprogram result: %v",
				seed, logic.Format(op.Phi), prog, direct.Tuples(), viaProgram.Tuples())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStagesMatchProgramRounds(t *testing.T) {
	// The operator iteration and the engine's inflationary evaluation
	// take the same number of stages on TC.
	for n := 3; n <= 6; n++ {
		db := graphs.Path(n).Database()
		_, rounds, err := tcOperator().InductiveFixpoint(db)
		if err != nil {
			t.Fatal(err)
		}
		prog, _ := tcOperator().Program()
		in := engine.MustNew(prog, db.Clone())
		res := semantics.Inflationary(in)
		if rounds != res.Stats.Rounds {
			t.Errorf("L%d: operator %d stages, engine %d", n, rounds, res.Stats.Rounds)
		}
	}
}
