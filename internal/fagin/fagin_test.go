package fagin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/fixpoint"
	"repro/internal/logic"
	"repro/internal/reductions"
	"repro/internal/relation"
)

// smallDB builds a random database over vocabulary E/2, V/1.
func smallDB(rng *rand.Rand, n int) *relation.Database {
	db := relation.NewDatabase()
	names := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		db.AddConstant(names[i])
	}
	db.MustEnsure("E", 2)
	db.MustEnsure("V", 1)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			db.AddFact("V", names[i])
		}
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				db.AddFact("E", names[i], names[j])
			}
		}
	}
	return db
}

// sentences used across the tests: a mix of alternation patterns.
func testSentences() []*logic.ESO {
	imp := logic.Implies
	return []*logic.ESO{
		// ∃s ∀x (s(x) ↔ V(x)): always true.
		{
			SOVars: []logic.SOVar{{Name: "s", Arity: 1}},
			FO: logic.Forall{Vars: []string{"X"}, F: logic.And{Fs: []logic.Formula{
				imp(logic.A("s", "X"), logic.A("V", "X")),
				imp(logic.A("V", "X"), logic.A("s", "X")),
			}}},
		},
		// ∀x ∃y E(x,y): every vertex has an out-edge (pure FO).
		{
			FO: logic.Forall{Vars: []string{"X"},
				F: logic.Exists{Vars: []string{"Y"}, F: logic.A("E", "X", "Y")}},
		},
		// ∃x ∀y E(x,y) — leading existential (∃∀ alternation).
		{
			FO: logic.Exists{Vars: []string{"X"},
				F: logic.Forall{Vars: []string{"Y"}, F: logic.A("E", "X", "Y")}},
		},
		// ∃s [∃x s(x)] ∧ [∀x (s(x) → V(x))]: nonempty sub-V set;
		// true iff V nonempty.
		{
			SOVars: []logic.SOVar{{Name: "s", Arity: 1}},
			FO: logic.And{Fs: []logic.Formula{
				logic.Exists{Vars: []string{"X"}, F: logic.A("s", "X")},
				logic.Forall{Vars: []string{"X"}, F: imp(logic.A("s", "X"), logic.A("V", "X"))},
			}},
		},
		// ∀x∀y (E(x,y) → E(y,x)): symmetry (no existentials at all).
		{
			FO: logic.Forall{Vars: []string{"X", "Y"},
				F: imp(logic.A("E", "X", "Y"), logic.A("E", "Y", "X"))},
		},
		// ∃s ∀x∃y [s(x) → E(x,y)] ∧ [¬s(x) → V(x)].
		{
			SOVars: []logic.SOVar{{Name: "s", Arity: 1}},
			FO: logic.Forall{Vars: []string{"X"}, F: logic.Exists{Vars: []string{"Y"},
				F: logic.And{Fs: []logic.Formula{
					imp(logic.A("s", "X"), logic.A("E", "X", "Y")),
					imp(logic.Not{F: logic.A("s", "X")}, logic.A("V", "X")),
				}}}},
		},
	}
}

func TestSkolemizePreservesTruth(t *testing.T) {
	// D ⊨ Ψ ⟺ D ⊨ SNF(Ψ), checked by brute-force witness search.
	for si, e := range testSentences() {
		snf, err := Skolemize(e)
		if err != nil {
			t.Fatalf("sentence %d: %v", si, err)
		}
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			db := smallDB(rng, 2)
			want, _, err := e.EvalWitness(db, 64)
			if err != nil {
				t.Fatalf("sentence %d seed %d: %v", si, seed, err)
			}
			got, _, err := snf.ESO().EvalWitness(db, 64)
			if err != nil {
				t.Fatalf("sentence %d seed %d (snf): %v", si, seed, err)
			}
			if got != want {
				t.Errorf("sentence %d seed %d: original=%v snf=%v\nsnf: %s",
					si, seed, want, got, snf.Format())
			}
		}
	}
}

func TestTheorem1FixpointEquivalence(t *testing.T) {
	// D ⊨ Ψ ⟺ (π_Ψ, D) has a fixpoint — the general Theorem 1
	// statement, on every test sentence and random databases.
	for si, e := range testSentences() {
		prog, _, err := Theorem1Program(e)
		if err != nil {
			t.Fatalf("sentence %d: %v", si, err)
		}
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed + 100))
			db := smallDB(rng, 2)
			want, _, err := e.EvalWitness(db, 64)
			if err != nil {
				t.Fatalf("sentence %d: %v", si, err)
			}
			in, err := engine.New(prog, db.Clone())
			if err != nil {
				t.Fatalf("sentence %d: %v", si, err)
			}
			has, _, err := fixpoint.Exists(in, fixpoint.Options{})
			if err != nil {
				t.Fatalf("sentence %d seed %d: %v", si, seed, err)
			}
			if has != want {
				t.Errorf("sentence %d seed %d: ESO=%v fixpoint=%v\nprogram:\n%s",
					si, seed, want, has, prog)
			}
		}
	}
}

func TestPropTheorem1OnRandomDatabases(t *testing.T) {
	// Heavier randomized run of the equivalence on the ∀∃ sentence.
	e := testSentences()[5]
	prog, _, err := Theorem1Program(e)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := smallDB(rng, 2+rng.Intn(2))
		want, _, err := e.EvalWitness(db, 64)
		if err != nil {
			return true // domain too big for the oracle; skip
		}
		in, err := engine.New(prog, db.Clone())
		if err != nil {
			return false
		}
		has, _, err := fixpoint.Exists(in, fixpoint.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if has != want {
			t.Logf("seed %d: ESO=%v fixpoint=%v", seed, want, has)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// satESO builds the Example 1 sentence for SATISFIABILITY over the
// vocabulary (V, P, N):
// ∃S (∀x)(∃y) [S(x)→V(x)] ∧ [¬V(x) → (P(x,y)∧S(y)) ∨ (N(x,y)∧¬S(y))].
func satESO() *logic.ESO {
	imp := logic.Implies
	return &logic.ESO{
		SOVars: []logic.SOVar{{Name: "s", Arity: 1}},
		FO: logic.Forall{Vars: []string{"X"}, F: logic.Exists{Vars: []string{"Y"},
			F: logic.And{Fs: []logic.Formula{
				imp(logic.A("s", "X"), logic.A("V", "X")),
				imp(logic.Not{F: logic.A("V", "X")}, logic.Or{Fs: []logic.Formula{
					logic.And{Fs: []logic.Formula{logic.A("P", "X", "Y"), logic.A("s", "Y")}},
					logic.And{Fs: []logic.Formula{logic.A("N", "X", "Y"), logic.Not{F: logic.A("s", "Y")}}},
				}}),
			}}}},
	}
}

func TestExample1GeneratedVsHandwritten(t *testing.T) {
	// The generated π_C from the Example 1 sentence must agree with the
	// hand-written π_SAT of the reductions package on fixpoint
	// existence ⟺ satisfiability.
	gen, _, err := Theorem1Program(satESO())
	if err != nil {
		t.Fatal(err)
	}
	instances := []*reductions.SATInstance{
		{NumVars: 2, Clauses: [][]int{{1, 2}}},
		{NumVars: 1, Clauses: [][]int{{1}, {-1}}},
		{NumVars: 2, Clauses: [][]int{{1}, {-1, 2}, {-2}}}, // x, x→y, ¬y: unsat
		{NumVars: 2, Clauses: [][]int{{1}, {-1, 2}}},       // sat
	}
	for ii, inst := range instances {
		db, err := reductions.SATDatabase(inst)
		if err != nil {
			t.Fatal(err)
		}
		want := inst.CountModels() > 0

		genIn, err := engine.New(gen, db.Clone())
		if err != nil {
			t.Fatal(err)
		}
		genHas, _, err := fixpoint.Exists(genIn, fixpoint.Options{})
		if err != nil {
			t.Fatalf("instance %d: %v", ii, err)
		}
		handIn := engine.MustNew(reductions.PiSAT(), db.Clone())
		handHas, _, err := fixpoint.Exists(handIn, fixpoint.Options{})
		if err != nil {
			t.Fatalf("instance %d: %v", ii, err)
		}
		if genHas != want || handHas != want {
			t.Errorf("instance %d: satisfiable=%v generated=%v handwritten=%v",
				ii, want, genHas, handHas)
		}
	}
}

func TestSkolemizeRejectsFreeVars(t *testing.T) {
	e := &logic.ESO{FO: logic.A("V", "X")}
	if _, err := Skolemize(e); err == nil {
		t.Error("free variables accepted")
	}
}

func TestProgramNameCollision(t *testing.T) {
	e := &logic.ESO{
		SOVars: []logic.SOVar{{Name: "q", Arity: 1}},
		FO:     logic.Forall{Vars: []string{"X"}, F: logic.A("q", "X")},
	}
	snf, err := Skolemize(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snf.Program(ProgramNames{}); err == nil {
		t.Error("collision with q not detected")
	}
	if _, err := snf.Program(ProgramNames{Q: "collector", T: "toggle"}); err != nil {
		t.Errorf("renamed program failed: %v", err)
	}
}

func TestGeneratedProgramShape(t *testing.T) {
	prog, snf, err := Theorem1Program(testSentences()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Identity rules for every SO var, one rule per disjunct, one toggle.
	want := len(snf.SOVars) + len(snf.Disjuncts) + 1
	if len(prog.Rules) != want {
		t.Errorf("rules = %d, want %d\n%s", len(prog.Rules), want, prog)
	}
	last := prog.Rules[len(prog.Rules)-1]
	if last.Head.Pred != "tg" || len(last.Body) != 2 {
		t.Errorf("toggle rule = %s", last)
	}
}
