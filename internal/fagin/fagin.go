// Package fagin implements the general construction of Theorem 1: for
// an NP collection C of databases given as an existential second-order
// sentence Ψ = ∃S̄ φ (Fagin's theorem), it produces a fixed DATALOG¬
// program π_C such that a database D is in C iff (π_C, D) has a
// fixpoint.
//
// The pipeline follows the proof:
//
//  1. φ → NNF → prenex normal form (variables standardized apart).
//
//  2. Second-order Skolemization: each existential variable v with
//     universal dependencies ū_v is replaced by a fresh relation
//     variable X_v encoding the graph of a Skolem function —
//     the paper's equivalence
//     (∀ū)(∃v)χ ⟺ ∃X[(∀ū∀v)(X(ū,v)→χ) ∧ (∀ū)(∃v)X(ū,v)]
//     applied to every alternation at once — yielding the Skolem
//     normal form ∃S̄∃X̄ (∀x̄)(∃ȳ)(θ₁ ∨ … ∨ θ_k).
//
//  3. The matrix is put in DNF; the program π_C is then
//
//     Sⱼ(ūⱼ) ← Sⱼ(ūⱼ)            (each S̄, X̄ becomes nondatabase)
//     Q(x̄)  ← θᵢ(x̄, ȳ)           (one rule per disjunct)
//     T(z)  ← ¬Q(ū), ¬T(w)        (the toggle: no fixpoint unless Q = Aⁿ)
//
// Every fixpoint of (π_C, D) has Q = Aⁿ, which forces
// (∀x̄)(∃ȳ)∨θᵢ to hold of the guessed S̄, X̄ — and conversely.
package fagin

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/logic"
)

// SNF is a sentence in the paper's Skolem normal form:
// ∃S̄ (∀x̄)(∃ȳ)(θ₁ ∨ … ∨ θ_k).
type SNF struct {
	SOVars    []logic.SOVar
	Univ      []string // x̄
	Exist     []string // ȳ
	Disjuncts [][]logic.Lit
}

// Format renders the SNF sentence.
func (s *SNF) Format() string {
	eso := s.ESO()
	return eso.Format()
}

// ESO converts the SNF back into a logic.ESO sentence (used to
// cross-check the transformation by model checking).
func (s *SNF) ESO() *logic.ESO {
	var disj []logic.Formula
	for _, conj := range s.Disjuncts {
		var lits []logic.Formula
		for _, l := range conj {
			var f logic.Formula
			if l.IsEq {
				f = logic.Eq{Left: l.Left, Right: l.Right}
			} else {
				f = logic.Atom{Pred: l.Pred, Args: l.Args}
			}
			if l.Neg {
				f = logic.Not{F: f}
			}
			lits = append(lits, f)
		}
		if len(lits) == 0 {
			lits = []logic.Formula{logic.Eq{Left: ast.Var("QTRUE"), Right: ast.Var("QTRUE")}}
		}
		disj = append(disj, logic.And{Fs: lits})
	}
	var matrix logic.Formula = logic.Or{Fs: disj}
	if len(disj) == 0 {
		// Empty disjunction: false.
		matrix = logic.Not{F: logic.Eq{Left: ast.Var("QTRUE"), Right: ast.Var("QTRUE")}}
	}
	var f logic.Formula = matrix
	if len(s.Exist) > 0 {
		f = logic.Exists{Vars: s.Exist, F: f}
	}
	if len(s.Univ) > 0 {
		f = logic.Forall{Vars: s.Univ, F: f}
	}
	return &logic.ESO{SOVars: s.SOVars, FO: f}
}

// Skolemize brings an ESO sentence into the paper's Skolem normal
// form.  The FO part must be a sentence (no free first-order
// variables); the transformation assumes a nonempty universe, as
// classical prenexing does.
func Skolemize(e *logic.ESO) (*SNF, error) {
	if fv := logic.FreeVars(e.FO); len(fv) > 0 {
		return nil, fmt.Errorf("fagin: FO part has free variables %v", fv)
	}
	blocks, matrix := logic.Prenex(logic.NNF(e.FO))

	snf := &SNF{SOVars: append([]logic.SOVar{}, e.SOVars...)}

	// Walk the prefix, accumulating universal dependencies; each
	// existential variable v becomes a Skolem relation X_v(deps, v)
	// with a totality side condition.
	type skolem struct {
		so   logic.SOVar
		deps []string
		v    string
	}
	var skolems []skolem
	var univ []string
	skCount := 0
	usedNames := map[string]bool{}
	for _, so := range e.SOVars {
		usedNames[so.Name] = true
	}
	freshPred := func() string {
		for {
			name := fmt.Sprintf("sk%d", skCount)
			skCount++
			if !usedNames[name] {
				usedNames[name] = true
				return name
			}
		}
	}

	for _, b := range blocks {
		if b.Forall {
			univ = append(univ, b.Vars...)
			continue
		}
		for _, v := range b.Vars {
			deps := append([]string{}, univ...)
			so := logic.SOVar{Name: freshPred(), Arity: len(deps) + 1}
			skolems = append(skolems, skolem{so: so, deps: deps, v: v})
			snf.SOVars = append(snf.SOVars, so)
		}
	}

	// Matrix part: (∧_v X_v(deps_v, v) → M), universally quantified
	// over univ ∪ {v…}; the existential variables become universal
	// here (they are guarded by the Skolem atoms).
	xAtom := func(sk skolem, last string) logic.Lit {
		args := make([]ast.Term, 0, len(sk.deps)+1)
		for _, d := range sk.deps {
			args = append(args, ast.Var(d))
		}
		args = append(args, ast.Var(last))
		return logic.Lit{Pred: sk.so.Name, Args: args}
	}

	mDNF, err := logic.DNF(matrix)
	if err != nil {
		return nil, err
	}
	// Guarded main part: ¬X_1 ∨ … ∨ ¬X_m ∨ M in DNF: each ¬X_v is its
	// own disjunct; M's disjuncts pass through.
	for _, sk := range skolems {
		l := xAtom(sk, sk.v)
		l.Neg = true
		snf.Disjuncts = append(snf.Disjuncts, []logic.Lit{l})
	}
	snf.Disjuncts = append(snf.Disjuncts, mDNF...)

	// Universal variables of the main part.
	snf.Univ = append(snf.Univ, univ...)
	for _, sk := range skolems {
		snf.Univ = append(snf.Univ, sk.v)
	}

	// Totality side conditions ∀deps_v ∃t_v X_v(deps_v, t_v): fresh
	// copies so the conjunct shares no variables with the main part,
	// allowing one combined ∀x̄∃ȳ block.  The combined matrix is
	// (mainDNF) ∧ (∧_v X_v(deps'_v, t_v)) — distributing the totality
	// atoms into every disjunct.
	varCount := 0
	freshVar := func() string {
		name := fmt.Sprintf("K%d", varCount)
		varCount++
		return name
	}
	var totality []logic.Lit
	for _, sk := range skolems {
		deps2 := make([]string, len(sk.deps))
		for i := range deps2 {
			deps2[i] = freshVar()
		}
		t := freshVar()
		snf.Univ = append(snf.Univ, deps2...)
		snf.Exist = append(snf.Exist, t)
		sk2 := skolem{so: sk.so, deps: deps2}
		totality = append(totality, xAtom(sk2, t))
	}
	if len(totality) > 0 {
		for i := range snf.Disjuncts {
			snf.Disjuncts[i] = append(snf.Disjuncts[i], totality...)
		}
	}
	return snf, nil
}

// ProgramNames configures the reserved predicate names of the
// Theorem 1 construction.
type ProgramNames struct {
	Q string // the "collector" predicate (default "q")
	T string // the toggle predicate (default "tg")
}

// Program builds the paper's π_C from the SNF sentence.  The database
// vocabulary is whatever predicates the disjuncts mention beyond the
// SO variables.
func (s *SNF) Program(names ProgramNames) (*ast.Program, error) {
	if names.Q == "" {
		names.Q = "q"
	}
	if names.T == "" {
		names.T = "tg"
	}
	used := map[string]bool{}
	for _, so := range s.SOVars {
		used[so.Name] = true
	}
	for _, conj := range s.Disjuncts {
		for _, l := range conj {
			if !l.IsEq {
				used[l.Pred] = true
			}
		}
	}
	if used[names.Q] || used[names.T] {
		return nil, fmt.Errorf("fagin: predicate names %q/%q collide with the sentence vocabulary", names.Q, names.T)
	}

	prog := &ast.Program{}

	// Sⱼ(ū) ← Sⱼ(ū): make every SO variable a nondatabase relation.
	for _, so := range s.SOVars {
		args := make([]ast.Term, so.Arity)
		for i := range args {
			args[i] = ast.Var(fmt.Sprintf("A%d", i))
		}
		a := ast.Atom{Pred: so.Name, Args: args}
		prog.Rules = append(prog.Rules, ast.NewRule(a, ast.Pos(a)))
	}

	// Q(x̄) ← θᵢ(x̄, ȳ).
	qArgs := make([]ast.Term, len(s.Univ))
	for i, v := range s.Univ {
		qArgs[i] = ast.Var(v)
	}
	qHead := ast.Atom{Pred: names.Q, Args: qArgs}
	for _, conj := range s.Disjuncts {
		body := make([]ast.Literal, 0, len(conj))
		for _, l := range conj {
			body = append(body, l.ToASTLiteral())
		}
		prog.Rules = append(prog.Rules, ast.NewRule(qHead, body...))
	}
	if len(s.Disjuncts) == 0 {
		// False sentence: Q has no rules, so make it IDB via identity
		// (it stays empty and the toggle kills every fixpoint on
		// nonempty domains).
		prog.Rules = append(prog.Rules, ast.NewRule(qHead, ast.Pos(qHead)))
	}

	// T(z) ← ¬Q(ū), ¬T(w).
	tz := ast.NewAtom(names.T, ast.Var("TZ"))
	uArgs := make([]ast.Term, len(s.Univ))
	for i := range uArgs {
		uArgs[i] = ast.Var(fmt.Sprintf("U%d", i))
	}
	prog.Rules = append(prog.Rules, ast.NewRule(tz,
		ast.Neg(ast.Atom{Pred: names.Q, Args: uArgs}),
		ast.Neg(ast.NewAtom(names.T, ast.Var("TW")))))

	if _, err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("fagin: generated program invalid: %w", err)
	}
	return prog, nil
}

// Theorem1Program runs the full pipeline ESO → SNF → π_C.
func Theorem1Program(e *logic.ESO) (*ast.Program, *SNF, error) {
	snf, err := Skolemize(e)
	if err != nil {
		return nil, nil, err
	}
	prog, err := snf.Program(ProgramNames{})
	if err != nil {
		return nil, nil, err
	}
	return prog, snf, nil
}
