// queue.go — the group-commit update queue.
//
// Concurrent POST /v1/update callers used to contend on the maintainer
// mutex, paying one full incremental-maintenance pass each.  The queue
// turns that serialization into batching: callers enqueue their
// insert/delete batches and a single committer goroutine drains
// whatever has accumulated, coalesces it into one net EDB change, and
// runs ONE maintainer pass for the whole group.  Under load the pass
// cost is amortized over every waiting caller; when idle a lone update
// commits immediately (the drain finds nothing else, and the optional
// commit window is 0 by default).
//
// Correctness.  Jobs are coalesced in arrival order with last-op-wins
// per tuple, which is exactly the net effect of applying the jobs
// sequentially under set semantics: whatever the final operation on a
// tuple is, earlier inserts/deletes of the same tuple are shadowed by
// it.  A request whose own insert and delete lists conflict is
// rejected at admission (422), so a coalesced batch never contains a
// tuple on both sides.  If the merged pass still fails (e.g. two jobs
// disagree on the arity of a predicate the program does not mention),
// the committer falls back to applying the batch one job at a time, so
// one bad request cannot poison its neighbours.  Each caller is
// answered only after the snapshot containing its change is published
// — the same per-batch exactness guarantee the serialized path gave.
//
// Backpressure.  The queue is bounded (Config.QueueDepth).  When it is
// full, POST /v1/update fails fast with 429 and Retry-After instead of
// accumulating unbounded goroutines — admission control, not buffering.
// After Close, updates fail with 503.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/incr"
)

// Queue admission errors, mapped to HTTP statuses by handleUpdate.
var (
	// ErrQueueFull is returned when the update queue is at capacity.
	ErrQueueFull = errors.New("server: update queue full")
	// ErrClosed is returned for updates after Close.
	ErrClosed = errors.New("server: closed")
	// ErrWALFailed is returned for updates after a WAL append failure
	// fenced the write path; reads keep serving the last durable state.
	ErrWALFailed = errors.New("server: WAL append failed; updates disabled until restart")
	// ErrNotLeader is returned for updates sent to a read-only
	// replication follower (503 not_leader over HTTP, with the leader's
	// address in X-Leader-Addr).
	ErrNotLeader = errors.New("server: read-only follower; send updates to the leader")
)

// updateJob is one enqueued update request.
type updateJob struct {
	ins, del []incr.Fact
	done     chan updateDone // buffered(1); the committer never blocks
}

// updateDone is the committer's answer to one job.
type updateDone struct {
	stats     *incr.UpdateStats
	gen       uint64
	coalesced int
	err       error
}

// EnqueueUpdate validates the request, submits it to the group-commit
// queue, and blocks until the committer has applied it and published a
// snapshot containing it.  Safe for any number of concurrent callers.
// Errors: ErrQueueFull (admission control), ErrClosed (after Close),
// or a validation/maintenance error for this request.
func (s *Server) EnqueueUpdate(ins, del []incr.Fact) (*incr.UpdateStats, uint64, int, error) {
	if s.readOnly.Load() {
		return nil, 0, 0, ErrNotLeader
	}
	if err := s.validateUpdate(ins, del); err != nil {
		return nil, 0, 0, err
	}
	if s.closed.Load() {
		return nil, 0, 0, ErrClosed
	}
	job := &updateJob{ins: ins, del: del, done: make(chan updateDone, 1)}
	select {
	case s.queue <- job:
		s.met.enqueued.Inc()
	default:
		s.met.rejected.Inc()
		return nil, 0, 0, ErrQueueFull
	}
	select {
	case d := <-job.done:
		return d.stats, d.gen, d.coalesced, d.err
	case <-s.qdone:
		// The committer exited; it may have answered just before.
		select {
		case d := <-job.done:
			return d.stats, d.gen, d.coalesced, d.err
		default:
			return nil, 0, 0, ErrClosed
		}
	}
}

// validateUpdate applies the request-shape checks the maintainer would
// reject anyway, before the job can reach a coalesced batch: IDB
// predicates, program-arity mismatches, and a tuple appearing on both
// sides of one request.
func (s *Server) validateUpdate(ins, del []incr.Fact) error {
	check := func(f incr.Fact) error {
		if s.idb[f.Pred] {
			return fmt.Errorf("%s is an IDB predicate; only EDB facts can be updated", f.Pred)
		}
		if ar, ok := s.arity[f.Pred]; ok && ar != len(f.Args) {
			return fmt.Errorf("%s has arity %d in the program, got %d args", f.Pred, ar, len(f.Args))
		}
		return nil
	}
	var keys map[string]bool
	if len(ins) > 0 && len(del) > 0 {
		keys = make(map[string]bool, len(del))
	}
	for _, f := range del {
		if err := check(f); err != nil {
			return err
		}
		if keys != nil {
			keys[factKey(f)] = true
		}
	}
	for _, f := range ins {
		if err := check(f); err != nil {
			return err
		}
		if keys != nil && keys[factKey(f)] {
			return fmt.Errorf("%s(%s) both inserted and deleted in one update", f.Pred, strings.Join(f.Args, ","))
		}
	}
	return nil
}

// factKey is a canonical map key for one fact.
func factKey(f incr.Fact) string {
	return f.Pred + "\x1f" + strings.Join(f.Args, "\x1e")
}

// committer is the single goroutine that owns maintainer passes for
// queued updates: take one job, opportunistically drain whatever else
// has arrived (plus an optional commit window), commit the group, and
// answer every caller.
func (s *Server) committer() {
	defer close(s.qdone)
	for {
		select {
		case job := <-s.queue:
			batch := s.gather(job)
			s.commit(batch)
		case <-s.qstop:
			// Fail whatever is still queued, then exit.
			for {
				select {
				case job := <-s.queue:
					job.done <- updateDone{err: ErrClosed}
				default:
					return
				}
			}
		}
	}
}

// gather collects the current group: everything already queued, plus —
// when a commit window is configured — jobs arriving within it.
func (s *Server) gather(first *updateJob) []*updateJob {
	batch := []*updateJob{first}
	if s.cfg.CommitWindow > 0 {
		timer := time.NewTimer(s.cfg.CommitWindow)
		defer timer.Stop()
		for len(batch) < s.cfg.MaxBatch {
			select {
			case job := <-s.queue:
				batch = append(batch, job)
			case <-timer.C:
				return batch
			case <-s.qstop:
				// Shutdown mid-window: commit what we have; the stop
				// case in committer drains the rest.
				return batch
			}
		}
		return batch
	}
	// Drain-only mode: give concurrently-runnable callers one scheduling
	// quantum to reach the queue before the batch seals.  Without the
	// yield, on a single P the channel wake-up fast path (runnext)
	// ping-pongs between the committer and one caller, and a group never
	// forms no matter how many callers are waiting.
	runtime.Gosched()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case job := <-s.queue:
			batch = append(batch, job)
		default:
			return batch
		}
	}
	return batch
}

// commit applies one group.  A single job skips coalescing; a group is
// merged last-op-wins and applied in one maintainer pass, falling back
// to per-job application if the merged pass fails.
func (s *Server) commit(batch []*updateJob) {
	s.met.batches.Inc()
	s.met.coalesced.Add(int64(len(batch)))
	s.met.maxBatch.Max(int64(len(batch)))
	if len(batch) == 1 {
		job := batch[0]
		stats, snap, err := s.Update(job.ins, job.del)
		d := updateDone{stats: stats, err: err, coalesced: 1}
		if snap != nil {
			d.gen = snap.Gen
		}
		job.done <- d
		return
	}

	ins, del := coalesce(batch)
	stats, snap, err := s.Update(ins, del)
	if err != nil {
		// A conflict only expressible across jobs (e.g. inconsistent
		// arities of a non-program predicate): degrade to the exact
		// sequential semantics so only the offending jobs fail.
		for _, job := range batch {
			stats, snap, err := s.Update(job.ins, job.del)
			d := updateDone{stats: stats, err: err, coalesced: 1}
			if snap != nil {
				d.gen = snap.Gen
			}
			job.done <- d
		}
		return
	}
	for _, job := range batch {
		job.done <- updateDone{stats: stats, gen: snap.Gen, coalesced: len(batch)}
	}
}

// coalesce merges a group of jobs into one net insert/delete pair:
// jobs are walked in arrival order and the last operation on each
// tuple wins — the net effect of applying the jobs sequentially.
func coalesce(batch []*updateJob) (ins, del []incr.Fact) {
	type op struct {
		fact  incr.Fact
		isDel bool
	}
	last := make(map[string]*op)
	order := make([]string, 0, len(batch)) // deterministic output order
	record := func(f incr.Fact, isDel bool) {
		k := factKey(f)
		if o, ok := last[k]; ok {
			o.isDel = isDel
			return
		}
		last[k] = &op{fact: f, isDel: isDel}
		order = append(order, k)
	}
	for _, job := range batch {
		// Within one job deletes and inserts are disjoint (validated at
		// admission), so their relative order is immaterial.
		for _, f := range job.del {
			record(f, true)
		}
		for _, f := range job.ins {
			record(f, false)
		}
	}
	for _, k := range order {
		if o := last[k]; o.isDel {
			del = append(del, o.fact)
		} else {
			ins = append(ins, o.fact)
		}
	}
	return ins, del
}

// Close stops the committer: queued-but-uncommitted jobs and all later
// updates fail with ErrClosed (503 over HTTP).  Reads keep working
// from the last published snapshot.  With durability on, Close first
// waits out any in-flight background checkpoint (closing the store
// mid-install would abandon a half-written snapshot and break the
// "everything durable when Close returns" contract), then flushes and
// closes the WAL after the committer drains, so every acknowledged
// batch is on disk when Close returns.  Safe to call more than once.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.qstop)
	}
	<-s.qdone
	if s.dur != nil {
		s.dur.ckptWG.Wait()
		s.mu.Lock()
		s.dur.store.Close()
		s.mu.Unlock()
	}
}
