// durable_fence_test.go — white-box tests of the durability failure
// paths: a WAL append error must fence the write path (no publication
// of the unlogged batch, no later batches logged over the hole, no
// checkpoint absorbing it), and a failed checkpoint must leave the
// trigger counters tripped so the retry fires at the next commit.
package server

import (
	"errors"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
)

func newFenceServer(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	cfg.DataDir = dir
	cfg.Fsync = durable.FsyncOff
	srv, err := NewWith(parser.MustProgram(qTCSrc), graphs.Path(8).Database(), core.LFP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestWALAppendFailureFencesWrites(t *testing.T) {
	dir := t.TempDir()
	srv := newFenceServer(t, dir, Config{})
	defer srv.Close()

	ins := func(a, b string) []incr.Fact { return []incr.Fact{{Pred: "E", Args: []string{a, b}}} }
	if _, _, err := srv.Update(ins("a", "b"), nil); err != nil {
		t.Fatal(err)
	}
	genBefore := srv.Snapshot().Gen

	// Kill the WAL out from under the server: the next append fails.
	srv.dur.store.Close()
	_, snap, err := srv.Update(ins("c", "d"), nil)
	if !errors.Is(err, ErrWALFailed) {
		t.Fatalf("update with dead WAL: err = %v, want ErrWALFailed", err)
	}
	if snap != nil {
		t.Fatal("unlogged batch returned a snapshot")
	}
	if got := srv.Snapshot().Gen; got != genBefore {
		t.Fatalf("unlogged batch was published: gen %d, want %d", got, genBefore)
	}

	// The write path stays fenced: later updates fail BEFORE touching
	// the maintainer (appendErrors stays at one).
	if _, _, err := srv.Update(ins("e", "f"), nil); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("update after fence: err = %v, want ErrWALFailed", err)
	}
	if got := srv.dur.appendErrors.Load(); got != 1 {
		t.Fatalf("appendErrors = %d, want 1 (fence must trip before the WAL)", got)
	}

	// No checkpoint may absorb the unlogged batch.
	ckpts := srv.dur.checkpoints.Load()
	srv.maybeCheckpointAsync()
	srv.checkpointOnce()
	if got := srv.dur.checkpoints.Load(); got != ckpts {
		t.Fatalf("checkpoint ran while fenced: %d, want %d", got, ckpts)
	}
	srv.Close()

	// Recovery rebuilds exactly the acknowledged state: the durable
	// history holds the first batch only, and the failed batch is gone.
	srv2 := newFenceServer(t, dir, Config{})
	defer srv2.Close()
	if got := srv2.Snapshot().Gen; got != genBefore {
		t.Fatalf("recovered gen %d, want %d", got, genBefore)
	}
	snap2 := srv2.Snapshot()
	u := snap2.Universe
	if _, ok := u.Lookup("c"); ok {
		t.Fatal("failed batch's constant survived into the durable history")
	}
	if _, ok := u.Lookup("a"); !ok {
		t.Fatal("acknowledged batch missing after recovery")
	}
}

func TestCheckpointFailureKeepsTriggerTripped(t *testing.T) {
	dir := t.TempDir()
	srv := newFenceServer(t, dir, Config{CheckpointBatches: 1 << 30})
	defer srv.Close()

	ins := []incr.Fact{{Pred: "E", Args: []string{"x", "y"}}}
	if _, _, err := srv.Update(ins, nil); err != nil {
		t.Fatal(err)
	}
	if got := srv.dur.sinceBatches.Load(); got != 1 {
		t.Fatalf("sinceBatches = %d, want 1", got)
	}

	// Make the next checkpoint fail (the data dir is gone, so the
	// rotation cannot open a fresh segment).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	srv.checkpointOnce()
	if got := srv.dur.ckptErrors.Load(); got != 1 {
		t.Fatalf("ckptErrors = %d, want 1", got)
	}
	// The regression: the counters must NOT have been zeroed by the
	// failed attempt, so the retry trigger is still tripped.
	if got := srv.dur.sinceBatches.Load(); got != 1 {
		t.Fatalf("sinceBatches = %d after failed checkpoint, want 1 (retry must fire promptly)", got)
	}
}
