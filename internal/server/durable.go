// durable.go — persistence wiring: recovery at boot, the WAL append
// on the commit path, and background checkpointing.
//
// With Config.DataDir set, the server's lifecycle becomes
//
//	recover   Open the store; restore the snapshot into a ready
//	          maintainer (no fixpoint re-run) and replay the WAL
//	          suffix through it; write a fresh checkpoint so the next
//	          boot replays nothing it does not have to.
//	serve     every maintainer pass appends its batch to the WAL
//	          before the snapshot is published and callers are
//	          answered: acknowledged implies logged (and, under
//	          -fsync=always, durable).
//	checkpoint after CheckpointBatches passes or CheckpointBytes of
//	          WAL, the committer's caller rotates the WAL and captures
//	          a sealed O(1) state image under the maintainer lock,
//	          then streams it to disk off the commit path; the store
//	          atomically replaces the snapshot and deletes the covered
//	          segments.  Readers and the queue never stall.
//	shutdown  Close waits out any in-flight background checkpoint,
//	          then flushes and closes the WAL after the committer
//	          drains.  cmd/serve additionally calls CheckpointNow()
//	          on SIGTERM, so a clean restart replays nothing.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/incr"
	"repro/internal/relation"
)

// durState is the server's durability runtime: the store plus the
// counters behind the /v1/metrics durable block.
type durState struct {
	store *durable.Store

	// failed latches after a WAL append error: the write path is
	// fenced (updates fail with ErrWALFailed) and checkpoints stop,
	// so the durable history can never silently omit a batch that
	// in-memory state or later log records build on.
	failed atomic.Bool

	// Checkpoint triggers, decremented only once a checkpoint is
	// durably on disk (a failed snapshot write retries at the next
	// commit instead of waiting out a fresh interval of traffic).
	sinceBatches atomic.Int64
	sinceBytes   atomic.Int64

	// Checkpoint concurrency control.  inFlight gates the async
	// trigger; ckptMu serializes the actual write (a synchronous
	// CheckpointNow can overlap the trigger's goroutine); ckptWG is
	// what Close waits on, so the store is never closed while a
	// snapshot install is still in flight.
	inFlight atomic.Bool
	ckptMu   sync.Mutex
	ckptWG   sync.WaitGroup

	appendErrors atomic.Int64
	checkpoints  atomic.Int64
	ckptErrors   atomic.Int64
	lastCkptNano atomic.Int64
	lastCkptDur  atomic.Int64 // nanoseconds

	// Recovery facts, fixed at boot.
	recoveredSnapshot bool
	replayedRecords   int
	recoveryDur       time.Duration
}

// recoverMaintainer builds the boot maintainer for a durable server:
// restore the snapshot if one exists (otherwise evaluate prog over the
// seed db), replay the WAL suffix, and checkpoint so the recovered
// history is compacted.  The seed db must be the same one every boot
// (cmd/serve reloads the same facts file); with a snapshot present it
// is ignored entirely.
func recoverMaintainer(prog *ast.Program, db *relation.Database, sem core.Semantics, cfg Config) (*incr.Maintainer, *durState, error) {
	st, info, err := durable.Open(cfg.DataDir, cfg.Fsync, cfg.FsyncInterval)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	var m *incr.Maintainer
	if cp := info.Checkpoint; cp != nil {
		if got, want := cp.Prog.String(), prog.String(); got != want {
			st.Close()
			return nil, nil, fmt.Errorf("server: data dir %s holds a different program; refusing to mix histories", cfg.DataDir)
		}
		if cp.Sem != sem {
			st.Close()
			return nil, nil, fmt.Errorf("server: data dir %s was written under %s semantics, not %s", cfg.DataDir, cp.Sem, sem)
		}
		m, err = incr.RestoreWith(cp, cfg.Engine)
	} else {
		m, err = incr.NewWith(prog, db, sem, cfg.Engine)
	}
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	for i, rec := range info.Records {
		if _, err := m.Update(rec.Ins, rec.Del); err != nil {
			st.Close()
			return nil, nil, fmt.Errorf("server: replaying WAL record %d/%d: %w", i+1, len(info.Records), err)
		}
	}
	d := &durState{
		store:             st,
		recoveredSnapshot: info.Checkpoint != nil,
		replayedRecords:   len(info.Records),
		recoveryDur:       time.Since(start),
	}
	// Compact at boot: a fresh dir gets its first snapshot (so the
	// durable history is self-contained from generation zero), a dir
	// with a replayed suffix gets one that absorbs it.
	if info.Checkpoint == nil || len(info.Records) > 0 {
		ckStart := time.Now()
		if err := st.WriteCheckpoint(m.Checkpoint()); err != nil {
			st.Close()
			return nil, nil, fmt.Errorf("server: boot checkpoint: %w", err)
		}
		d.checkpoints.Add(1)
		d.lastCkptNano.Store(time.Now().UnixNano())
		d.lastCkptDur.Store(int64(time.Since(ckStart)))
	}
	return m, d, nil
}

// logBatch appends one committed batch to the WAL.  Called with s.mu
// held, after the maintainer pass succeeded and before the snapshot is
// published: the committer answers callers only after the batch is
// durable.  An append error fences the write path — the in-memory
// maintainer holds the batch but the log does not, so publishing it or
// logging anything after it would make recovery replay later records
// over a base the log never recorded.  The failed batch's caller gets
// the error (its acknowledgement would have lied), every later update
// fails with ErrWALFailed, and reads keep serving the last batch that
// was both logged and published.
func (s *Server) logBatch(ins, del []incr.Fact) error {
	if s.dur == nil {
		return nil
	}
	n, err := s.dur.store.Append(&durable.Record{Ins: ins, Del: del})
	if err != nil {
		s.dur.appendErrors.Add(1)
		s.dur.failed.Store(true)
		return fmt.Errorf("%w: %v", ErrWALFailed, err)
	}
	s.dur.sinceBatches.Add(1)
	s.dur.sinceBytes.Add(n)
	return nil
}

// maybeCheckpointAsync starts a background checkpoint when either
// configured trigger has tripped.  Called after s.mu is released (the
// capture below retakes it); at most one checkpoint runs at a time.
func (s *Server) maybeCheckpointAsync() {
	d := s.dur
	if d == nil || d.failed.Load() {
		return
	}
	hit := (s.cfg.CheckpointBatches > 0 && d.sinceBatches.Load() >= int64(s.cfg.CheckpointBatches)) ||
		(s.cfg.CheckpointBytes > 0 && d.sinceBytes.Load() >= s.cfg.CheckpointBytes)
	if !hit || !d.inFlight.CompareAndSwap(false, true) {
		return
	}
	d.ckptWG.Add(1)
	go func() {
		defer d.ckptWG.Done()
		defer d.inFlight.Store(false)
		d.ckptMu.Lock()
		defer d.ckptMu.Unlock()
		s.checkpointOnce()
	}()
}

// CheckpointNow synchronously rotates the WAL and writes a checkpoint,
// so the next boot replays nothing — the graceful-shutdown path
// cmd/serve runs on SIGTERM.  A no-op without a data dir or when no
// batch has been logged since the last checkpoint.  Serialized against
// the background trigger; safe for concurrent use.
func (s *Server) CheckpointNow() error {
	d := s.dur
	if d == nil {
		return nil
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if d.sinceBatches.Load() == 0 && d.sinceBytes.Load() == 0 {
		return nil
	}
	return s.checkpointOnce()
}

// testCkptGate, when set (tests only), runs between the state capture
// and the snapshot write — the window Close must fence.
var testCkptGate func()

// checkpointOnce rotates the WAL and captures a sealed state image
// under the maintainer lock — O(1), the queue barely notices — then
// writes and installs the snapshot off the commit path.  Callers hold
// d.ckptMu.
func (s *Server) checkpointOnce() error {
	d := s.dur
	start := time.Now()

	s.mu.Lock()
	if d.failed.Load() {
		// The maintainer holds a batch the WAL rejected; a snapshot
		// taken now would make that unacknowledged batch durable.
		s.mu.Unlock()
		return ErrWALFailed
	}
	err := d.store.Rotate()
	var cp *incr.Checkpoint
	var coveredBatches, coveredBytes int64
	if err == nil {
		cp = s.m.Checkpoint()
		coveredBatches = d.sinceBatches.Load()
		coveredBytes = d.sinceBytes.Load()
	}
	s.mu.Unlock()

	if err == nil {
		if testCkptGate != nil {
			testCkptGate()
		}
		err = d.store.WriteCheckpoint(cp)
	}
	if err != nil {
		d.ckptErrors.Add(1)
		return err
	}
	// Subtract (rather than zero) what the snapshot covered, only now
	// that it is durable: appends that raced the write keep counting
	// toward the next trigger, and a failed attempt leaves the
	// counters tripped so the retry fires at the very next commit.
	d.sinceBatches.Add(-coveredBatches)
	d.sinceBytes.Add(-coveredBytes)
	d.checkpoints.Add(1)
	d.lastCkptNano.Store(time.Now().UnixNano())
	d.lastCkptDur.Store(int64(time.Since(start)))
	return nil
}

// durableMetrics renders the /v1/metrics durable block, or nil when
// persistence is off.
func (s *Server) durableMetrics(now time.Time) *DurableMetrics {
	d := s.dur
	if d == nil {
		return nil
	}
	st := d.store.Stats()
	dm := &DurableMetrics{
		FsyncPolicy:             st.FsyncPolicy,
		WALBytes:                st.WALBytes,
		WALRecords:              st.WALRecords,
		WALSegments:             st.WALSegments,
		AppendErrors:            d.appendErrors.Load(),
		Checkpoints:             d.checkpoints.Load(),
		CheckpointErrors:        d.ckptErrors.Load(),
		RecoveredSnapshot:       d.recoveredSnapshot,
		RecoveryReplayedRecords: d.replayedRecords,
		RecoveryDurMs:           float64(d.recoveryDur) / float64(time.Millisecond),
		CheckpointInFlight:      d.inFlight.Load(),
		RetainedSegments:        st.RetainedSegments,
		ReplicaPins:             st.Pins,
		ReplicaEvictions:        st.Evictions,
	}
	if nano := d.lastCkptNano.Load(); nano > 0 {
		dm.LastCheckpointAgeSec = now.Sub(time.Unix(0, nano)).Seconds()
		dm.LastCheckpointDurMs = float64(d.lastCkptDur.Load()) / float64(time.Millisecond)
	}
	return dm
}
