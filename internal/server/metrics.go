// metrics.go — per-endpoint telemetry and the /v1/metrics endpoint.
//
// Every handler is wrapped by instrument(), which records request
// count, error count, a recent-rate window, and a latency histogram
// into internal/metrics atomics — no locks on the request path, so
// metrics scrapes and traffic never contend.  /v1/metrics renders the
// whole picture: per-endpoint QPS and p50/p90/p99, snapshot age,
// group-commit queue depth and batch sizes, and the magic rewrite
// cache hit rate.
package server

import (
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/partition"
)

// srvMetrics aggregates the server's telemetry.
type srvMetrics struct {
	endpoints map[string]*metrics.Endpoint
	// Group-commit queue accounting.
	enqueued  metrics.Counter
	rejected  metrics.Counter
	batches   metrics.Counter
	coalesced metrics.Counter
	maxBatch  metrics.Gauge
	// lastPublish is the unix-nano time the current snapshot was
	// published (snapshot age = now - lastPublish).
	lastPublish metrics.Gauge
	// Rewrite-cache accounting.
	cacheHits   metrics.Counter
	cacheMisses metrics.Counter
}

// endpointNames are the instrumented endpoints, in display order.
var endpointNames = []string{"stats", "relation", "query", "update", "metrics",
	"replica_snapshot", "replica_wal", "replica_promote"}

func newSrvMetrics() *srvMetrics {
	m := &srvMetrics{endpoints: make(map[string]*metrics.Endpoint, len(endpointNames))}
	for _, name := range endpointNames {
		m.endpoints[name] = &metrics.Endpoint{}
	}
	return m
}

// statusWriter captures the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler with latency/error observation under the
// named endpoint.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.met.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		ep.Observe(start, time.Since(start), sw.status >= 400)
	}
}

// latencyUs renders a histogram as microsecond summary numbers.
func latencyUs(h *metrics.Histogram) LatencyMetrics {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return LatencyMetrics{
		MeanUs: us(h.Mean()),
		P50Us:  us(h.Quantile(0.50)),
		P90Us:  us(h.Quantile(0.90)),
		P99Us:  us(h.Quantile(0.99)),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	snap := s.cur.Load()

	resp := MetricsResponse{
		UptimeSec:  now.Sub(s.start).Seconds(),
		Generation: snap.Gen,
		Endpoints:  make(map[string]EndpointMetrics, len(endpointNames)),
	}
	if pub := s.met.lastPublish.Load(); pub > 0 {
		resp.SnapshotAgeSec = now.Sub(time.Unix(0, pub)).Seconds()
	}

	batches := s.met.batches.Load()
	resp.Queue = QueueMetrics{
		Depth:     len(s.queue),
		Capacity:  cap(s.queue),
		Enqueued:  s.met.enqueued.Load(),
		Rejected:  s.met.rejected.Load(),
		Batches:   batches,
		Coalesced: s.met.coalesced.Load(),
		MaxBatch:  s.met.maxBatch.Load(),
	}
	if batches > 0 {
		resp.Queue.MeanBatch = float64(resp.Queue.Coalesced) / float64(batches)
	}

	hits, misses := s.met.cacheHits.Load(), s.met.cacheMisses.Load()
	resp.RewriteCache = CacheMetrics{Size: s.RewriteCacheSize(), Hits: hits, Misses: misses}
	if hits+misses > 0 {
		resp.RewriteCache.HitRate = float64(hits) / float64(hits+misses)
	}

	pm := partition.Snapshot()
	resp.Partition = PartitionMetrics{
		Runs:            pm.Runs,
		Rounds:          pm.Rounds,
		ExchangedTuples: pm.ExchangedTuples,
		AcceptedTuples:  pm.AcceptedTuples,
		ExchangeMean:    pm.ExchangeMeanPerRound,
		ExchangeP90:     pm.ExchangeP90PerRound,
		FilterProbes:    pm.FilterProbes,
		FilterSkips:     pm.FilterSkips,
		LastPartitions:  pm.LastPartitions,
		LastTuples:      pm.LastPartitionTuples,
	}
	if pm.FilterProbes > 0 {
		resp.Partition.FilterHitRate = float64(pm.FilterSkips) / float64(pm.FilterProbes)
	}

	fp, fs := engine.FrontierFilterTotals()
	resp.Engine = EngineMetrics{FrontierFilterProbes: fp, FrontierFilterSkips: fs}
	if fp > 0 {
		resp.Engine.FrontierFilterRate = float64(fs) / float64(fp)
	}

	resp.Durable = s.durableMetrics(now)

	s.hookMu.Lock()
	repStats := s.repStats
	s.hookMu.Unlock()
	if repStats != nil {
		resp.Replica = repStats()
		resp.Replica.ReadOnly = s.readOnly.Load()
	}

	for name, ep := range s.met.endpoints {
		resp.Endpoints[name] = EndpointMetrics{
			Requests: ep.Requests.Load(),
			Errors:   ep.Errors.Load(),
			QPS10s:   ep.Recent.Rate(now, 10),
			Latency:  latencyUs(&ep.Latency),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
