// queue_test.go — white-box tests of the group-commit update queue:
// bit-exactness of coalesced commits against the sequential oracle,
// admission control, shutdown, and the concurrent
// updaters × readers × metrics-scrapes race test.  Run with -race.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/relation"
)

const qTCSrc = "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."

// relStrings renders a relation as a set of comma-joined constant
// names, so states from different universes compare by value.
func relStrings(rel *relation.Relation, u *relation.Universe) map[string]bool {
	out := make(map[string]bool, rel.Len())
	for _, t := range rel.Tuples() {
		out[strings.Join(names(u, t), ",")] = true
	}
	return out
}

// jobsForWorker builds a deterministic per-worker update sequence over
// tuples only this worker touches: splice fresh constants into the
// base path, then delete a third of them again.
func jobsForWorker(w, rounds int) [][2][]incr.Fact { // [i] = {ins, del}
	var jobs [][2][]incr.Fact
	for i := 0; i < rounds; i++ {
		c := fmt.Sprintf("c_%d_%d", w, i)
		ins := []incr.Fact{
			{Pred: "E", Args: []string{fmt.Sprintf("v%d", w%8), c}},
			{Pred: "E", Args: []string{c, fmt.Sprintf("v%d", (w+1)%8)}},
		}
		jobs = append(jobs, [2][]incr.Fact{ins, nil})
		if i%3 == 0 {
			del := []incr.Fact{{Pred: "E", Args: []string{c, fmt.Sprintf("v%d", (w+1)%8)}}}
			jobs = append(jobs, [2][]incr.Fact{nil, del})
		}
	}
	return jobs
}

// TestGroupCommitBitExact drives 16 concurrent updaters through the
// queue (with a commit window forcing heavy coalescing) and compares
// the final state bit-exactly against a maintainer that applied the
// same jobs one at a time.  Workers touch disjoint tuples, so the
// final state is interleaving-independent and the oracle is exact.
func TestGroupCommitBitExact(t *testing.T) {
	prog := parser.MustProgram(qTCSrc)
	db := graphs.Path(8).Database()
	srv, err := NewWith(prog, db.Clone(), core.Inflationary, Config{
		CommitWindow: 2 * time.Millisecond,
		QueueDepth:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers, rounds = 16, 6
	var wg sync.WaitGroup
	sawCoalesced := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, job := range jobsForWorker(w, rounds) {
				_, _, co, err := srv.EnqueueUpdate(job[0], job[1])
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if co > sawCoalesced[w] {
					sawCoalesced[w] = co
				}
			}
		}(w)
	}
	wg.Wait()

	// Sequential oracle: same jobs, one maintainer pass each.
	oracle, err := incr.New(prog, db.Clone(), core.Inflationary)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for _, job := range jobsForWorker(w, rounds) {
			if _, err := oracle.Update(job[0], job[1]); err != nil {
				t.Fatal(err)
			}
		}
	}

	got, want := srv.Snapshot(), oracle.Snapshot()
	for pred, wantRel := range want.Rels {
		gotRel := got.Rels[pred]
		if gotRel == nil {
			t.Fatalf("relation %s missing from grouped result", pred)
		}
		g, o := relStrings(gotRel, got.Universe), relStrings(wantRel, want.Universe)
		if len(g) != len(o) {
			t.Fatalf("%s: grouped has %d tuples, sequential oracle %d", pred, len(g), len(o))
		}
		for tup := range o {
			if !g[tup] {
				t.Fatalf("%s: tuple %s in oracle but not in grouped result", pred, tup)
			}
		}
	}

	// The whole point: concurrency must actually have been coalesced.
	max := 0
	for _, c := range sawCoalesced {
		if c > max {
			max = c
		}
	}
	if max < 2 {
		t.Errorf("no update was ever coalesced with another (max batch %d); group commit is not grouping", max)
	}
}

// TestQueueAdmissionControl stalls the committer (by holding the
// maintainer mutex), fills the bounded queue, and checks that the next
// update is rejected with ErrQueueFull → HTTP 429 + Retry-After +
// structured envelope.
func TestQueueAdmissionControl(t *testing.T) {
	srv, err := NewWith(parser.MustProgram(qTCSrc), graphs.Path(4).Database(), core.LFP, Config{
		QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func() *http.Response {
		body, _ := json.Marshal(UpdateRequest{Insert: []incr.Fact{{Pred: "E", Args: []string{"x", "y"}}}})
		resp, err := http.Post(ts.URL+"/v1/update", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	srv.mu.Lock() // stall every commit
	var pending sync.WaitGroup
	// The committer can absorb at most one gather before it blocks on
	// the held mutex inside commit; keep feeding jobs until the 2-deep
	// queue is observably full behind it.
	enq := func(i int) {
		pending.Add(1)
		go func() {
			defer pending.Done()
			srv.EnqueueUpdate([]incr.Fact{{Pred: "E", Args: []string{fmt.Sprintf("x%d", i), "y"}}}, nil)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; len(srv.queue) < 2; i++ {
		if time.Now().After(deadline) {
			srv.mu.Unlock()
			t.Fatal("queue never filled")
		}
		enq(i)
		time.Sleep(time.Millisecond)
	}

	resp := post()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		srv.mu.Unlock()
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	var envelope ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeOverloaded {
		t.Errorf("error code = %q, want %q", envelope.Error.Code, CodeOverloaded)
	}

	srv.mu.Unlock()
	pending.Wait() // the stalled jobs complete once the mutex frees
}

// TestUpdateAfterClose: a closed server refuses updates with 503 but
// keeps serving reads from the last snapshot.
func TestUpdateAfterClose(t *testing.T) {
	srv, err := New(parser.MustProgram(qTCSrc), graphs.Path(4).Database(), core.LFP)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	srv.Close() // idempotent

	body, _ := json.Marshal(UpdateRequest{Insert: []incr.Fact{{Pred: "E", Args: []string{"x", "y"}}}})
	resp, err := http.Post(ts.URL+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var envelope ErrorResponse
	json.NewDecoder(resp.Body).Decode(&envelope)
	if envelope.Error.Code != CodeUnavailable {
		t.Errorf("error code = %q, want %q", envelope.Error.Code, CodeUnavailable)
	}

	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if st.StatusCode != http.StatusOK {
		t.Errorf("reads after Close: status %d, want 200", st.StatusCode)
	}
}

// TestErrorEnvelope checks the envelope shape and code on each
// documented failure class.
func TestErrorEnvelope(t *testing.T) {
	srv, err := New(parser.MustProgram(qTCSrc), graphs.Path(4).Database(), core.LFP)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		do     func() *http.Response
		status int
		code   string
	}{
		{"unknown relation", func() *http.Response {
			r, _ := http.Get(ts.URL + "/v1/relation?pred=nope")
			return r
		}, 404, CodeNotFound},
		{"malformed json", func() *http.Response {
			r, _ := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{"))
			return r
		}, 400, CodeBadRequest},
		{"wrong arity", func() *http.Response {
			body, _ := json.Marshal(QueryRequest{Pred: "s", Args: []*string{nil}})
			r, _ := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			return r
		}, 400, CodeBadRequest},
		{"idb update", func() *http.Response {
			body, _ := json.Marshal(UpdateRequest{Insert: []incr.Fact{{Pred: "s", Args: []string{"a", "b"}}}})
			r, _ := http.Post(ts.URL+"/v1/update", "application/json", bytes.NewReader(body))
			return r
		}, 422, CodeUnprocessable},
		{"insert+delete conflict", func() *http.Response {
			f := incr.Fact{Pred: "E", Args: []string{"a", "b"}}
			body, _ := json.Marshal(UpdateRequest{Insert: []incr.Fact{f}, Delete: []incr.Fact{f}})
			r, _ := http.Post(ts.URL+"/v1/update", "application/json", bytes.NewReader(body))
			return r
		}, 422, CodeUnprocessable},
	}
	for _, tc := range cases {
		resp := tc.do()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		var envelope ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Errorf("%s: envelope does not decode: %v", tc.name, err)
		}
		resp.Body.Close()
		if envelope.Error.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.name, envelope.Error.Code, tc.code)
		}
		if envelope.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

// TestConcurrentUpdatersReadersMetrics is the production-traffic race
// test: queued updaters, snapshot readers, and metrics scrapes all at
// once.  Run under -race; readers also check snapshot consistency.
func TestConcurrentUpdatersReadersMetrics(t *testing.T) {
	srv, err := NewWith(parser.MustProgram(qTCSrc), graphs.Path(8).Database(), core.Inflationary, Config{
		CommitWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// 8 updaters through the group-commit queue.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, job := range jobsForWorker(w, 8) {
				if _, _, _, err := srv.EnqueueUpdate(job[0], job[1]); err != nil {
					t.Errorf("updater %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// 4 readers: snapshot loads plus HTTP queries.
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := srv.Snapshot()
				s := snap.Relation("s")
				if got := len(s.Tuples()); got != s.Len() {
					t.Errorf("snapshot inconsistent: Tuples=%d Len=%d", got, s.Len())
					return
				}
				v := fmt.Sprintf("v%d", i%8)
				body, _ := json.Marshal(QueryRequest{Pred: "s", Args: []*string{&v, nil}})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(rdr)
	}
	// 2 metrics scrapers.
	for sc := 0; sc < 2; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/metrics")
				if err != nil {
					continue
				}
				var m MetricsResponse
				if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
					t.Errorf("metrics does not decode: %v", err)
				}
				resp.Body.Close()
			}
		}()
	}

	// Let the updaters finish, then stop the open-ended loops.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-done
}

// TestMetricsAccuracy sends a known request mix and checks the
// counters exactly and the latency estimates against their bounds.
func TestMetricsAccuracy(t *testing.T) {
	srv, err := New(parser.MustProgram(qTCSrc), graphs.Path(8).Database(), core.LFP)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	postQ := func(pred string) {
		body, _ := json.Marshal(QueryRequest{Pred: pred, Args: []*string{nil, nil}})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	for i := 0; i < 5; i++ {
		get("/v1/stats")
	}
	get("/v1/relation?pred=E")
	get("/v1/relation?pred=nope") // 404 → one relation error
	for i := 0; i < 4; i++ {
		postQ("s")
	}
	for i := 0; i < 2; i++ {
		srvPost(t, ts.URL, UpdateRequest{Insert: []incr.Fact{{Pred: "E", Args: []string{fmt.Sprintf("u%d", i), "v0"}}}})
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"stats.requests", m.Endpoints["stats"].Requests, 5},
		{"relation.requests", m.Endpoints["relation"].Requests, 2},
		{"relation.errors", m.Endpoints["relation"].Errors, 1},
		{"query.requests", m.Endpoints["query"].Requests, 4},
		{"query.errors", m.Endpoints["query"].Errors, 0},
		{"update.requests", m.Endpoints["update"].Requests, 2},
		{"metrics.requests", m.Endpoints["metrics"].Requests, 0}, // the in-flight scrape is not yet counted
		{"queue.enqueued", m.Queue.Enqueued, 2},
		{"queue.rejected", m.Queue.Rejected, 0},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if m.Generation != 2 {
		t.Errorf("generation = %d, want 2", m.Generation)
	}
	if m.Queue.Batches < 1 || m.Queue.Batches > 2 {
		t.Errorf("batches = %d, want 1..2", m.Queue.Batches)
	}
	q := m.Endpoints["query"].Latency
	if q.P50Us <= 0 || q.P99Us < q.P50Us || q.P90Us < q.P50Us {
		t.Errorf("query latency estimates inconsistent: %+v", q)
	}
	if m.SnapshotAgeSec < 0 || m.UptimeSec <= 0 {
		t.Errorf("age/uptime out of range: %+v", m)
	}
}

// benchServer builds a TC server over a path graph for the update
// throughput benchmarks.
func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	srv, err := NewWith(parser.MustProgram(qTCSrc), graphs.Path(64).Database(), core.Inflationary, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv
}

// runUpdaters spreads b.N single-fact updates over 16 concurrent
// workers.  Each worker toggles a private edge (insert, delete,
// insert, …), so the database size stays constant and every op pays
// one real maintenance delta.
func runUpdaters(b *testing.B, apply func(w int, ins, del []incr.Fact) error) {
	const workers = 16
	var wg sync.WaitGroup
	per := b.N / workers
	extra := b.N % workers
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			edge := []incr.Fact{{Pred: "E", Args: []string{fmt.Sprintf("b%d", w), fmt.Sprintf("v%d", w)}}}
			for i := 0; i < n; i++ {
				var ins, del []incr.Fact
				if i%2 == 0 {
					ins = edge
				} else {
					del = edge
				}
				if err := apply(w, ins, del); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
}

// BenchmarkServeUpdate16Serialized is the baseline: 16 concurrent
// updaters contending on the maintainer mutex, one pass each.
func BenchmarkServeUpdate16Serialized(b *testing.B) {
	srv := benchServer(b, Config{})
	runUpdaters(b, func(_ int, ins, del []incr.Fact) error {
		_, _, err := srv.Update(ins, del)
		return err
	})
}

// BenchmarkServeUpdate16GroupCommit is the same load through the
// group-commit queue: concurrent updates coalesce into shared passes.
func BenchmarkServeUpdate16GroupCommit(b *testing.B) {
	srv := benchServer(b, Config{QueueDepth: 64})
	runUpdaters(b, func(_ int, ins, del []incr.Fact) error {
		_, _, _, err := srv.EnqueueUpdate(ins, del)
		return err
	})
	b.ReportMetric(float64(srv.met.maxBatch.Load()), "max-batch")
	if batches := srv.met.batches.Load(); batches > 0 {
		b.ReportMetric(float64(srv.met.coalesced.Load())/float64(batches), "mean-batch")
	}
}

func srvPost(t *testing.T, base string, req UpdateRequest) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
}
