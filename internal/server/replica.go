// replica.go — the leader side of WAL log-shipping replication, plus
// follower promotion.
//
// The protocol is two idempotent GETs over the daemon's existing HTTP
// plumbing:
//
//	GET /v1/replica/snapshot?id=F
//	    Streams the current checkpoint (the durable snapshot.bin
//	    image, exactly the bytes recovery reads).  The response
//	    headers carry the WAL cursor the follower must resume from —
//	    computed and pinned atomically, so compaction cannot race the
//	    bootstrap — plus the program/semantics identity for the
//	    follower's divergence check.
//
//	GET /v1/replica/wal?from=<seq>,<off>&id=F&wait=<secs>
//	    Long-polls complete, checksum-verified WAL frames past the
//	    cursor, in the on-disk wire format (durable.ScanFrames on the
//	    follower decodes them with the same checks recovery applies).
//	    Each poll refreshes the follower's retention pin.  An empty
//	    200 after the wait window is the idle heartbeat; 410
//	    compacted means the cursor predates the retained history
//	    (re-bootstrap); 409 diverged means the cursor is past the
//	    leader's durable end (the histories split — wipe and
//	    re-bootstrap).
//
// Correctness rests on two PR 9 facts: every semantics is a
// deterministic fixpoint of the program over the EDB, so shipping the
// committed EDB batches in order reconstructs bit-exact derived state;
// and replay is idempotent per fact, so a follower whose snapshot is
// newer than its cursor can replay the overlap harmlessly.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/ast"
	"repro/internal/durable"
)

// Replication wire headers.
const (
	HdrReplicaSeq        = "X-Replica-Seq"
	HdrReplicaOff        = "X-Replica-Off"
	HdrReplicaNextSeq    = "X-Replica-Next-Seq"
	HdrReplicaNextOff    = "X-Replica-Next-Off"
	HdrReplicaRecords    = "X-Replica-Records"
	HdrReplicaLagRecords = "X-Replica-Lag-Records"
	HdrReplicaLagBytes   = "X-Replica-Lag-Bytes"
	HdrReplicaProgram    = "X-Replica-Program"
	HdrReplicaSemantics  = "X-Replica-Semantics"
	HdrLeaderAddr        = "X-Leader-Addr"
)

// maxWALChunk bounds one /v1/replica/wal response body.  Well under
// the HTTP server's write timeout even on slow links.
const maxWALChunk = 4 << 20

// defaultPollWait is the long-poll window when the request does not
// say; capped so the response always beats the server's 60s write
// timeout.
const (
	defaultPollWait = 20 * time.Second
	maxPollWait     = 25 * time.Second
)

// ProgramIdentity fingerprints a program for the replication
// divergence check: followers refuse to apply a leader's WAL unless
// the program text and semantics match their own, the same version-
// skew rejection recovery applies to foreign data dirs.
func ProgramIdentity(prog *ast.Program) string {
	sum := sha256.Sum256([]byte(prog.String()))
	return hex.EncodeToString(sum[:])
}

// ReadOnly reports whether the server is a follower (updates refused
// with not_leader).
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// SetReplicaHooks registers the follower loop's metrics provider and
// promotion callback.  Safe for concurrent use with /v1/metrics.
func (s *Server) SetReplicaHooks(stats func() *ReplicaMetrics, promote func()) {
	s.hookMu.Lock()
	s.repStats = stats
	s.onPromote = promote
	s.hookMu.Unlock()
}

// Promote flips a follower writable: the registered promotion hook
// runs first (stopping the apply loop, so a late leader record can
// never land after a local write), then updates open.  Idempotent.
func (s *Server) Promote() {
	s.hookMu.Lock()
	h := s.onPromote
	s.onPromote = nil
	s.hookMu.Unlock()
	if h != nil {
		h()
	}
	s.readOnly.Store(false)
}

// identityHeaders stamps the program/semantics fingerprint every
// replica response carries.
func (s *Server) identityHeaders(w http.ResponseWriter) {
	w.Header().Set(HdrReplicaProgram, ProgramIdentity(s.prog))
	w.Header().Set(HdrReplicaSemantics, s.cur.Load().Sem.String())
}

// handleReplicaSnapshot streams the current checkpoint to a
// bootstrapping follower.
func (s *Server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.dur == nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "replication requires a durable leader (run with -data)")
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "missing follower id")
		return
	}
	// Pin before opening: the cursor names the first WAL position NOT
	// covered by every snapshot installed from here on, and the pin
	// keeps its segment alive until the follower's first poll.
	c := s.dur.store.SnapshotCursor(id)
	f, err := os.Open(s.dur.store.SnapshotPath())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
		return
	}
	defer f.Close()
	s.identityHeaders(w)
	w.Header().Set(HdrReplicaSeq, strconv.FormatUint(c.Seq, 10))
	w.Header().Set(HdrReplicaOff, strconv.FormatInt(c.Off, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	io.Copy(w, f)
}

// handleReplicaWAL long-polls framed records past the follower's
// cursor.
func (s *Server) handleReplicaWAL(w http.ResponseWriter, r *http.Request) {
	if s.dur == nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "replication requires a durable leader (run with -data)")
		return
	}
	q := r.URL.Query()
	c, err := durable.ParseCursor(q.Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	id := q.Get("id")
	wait := defaultPollWait
	if ws := q.Get("wait"); ws != "" {
		secs, err := strconv.Atoi(ws)
		if err != nil || secs < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Sprintf("bad wait %q", ws))
			return
		}
		wait = time.Duration(secs) * time.Second
	}
	if wait > maxPollWait {
		wait = maxPollWait
	}
	store := s.dur.store
	deadline := time.Now().Add(wait)
	for {
		store.Pin(id, c.Seq)
		// Grab the notify channel BEFORE reading: an append that lands
		// between the read and the wait still wakes us.
		notify := store.AppendNotify()
		data, next, n, err := store.ReadWAL(c, maxWALChunk)
		switch {
		case errors.Is(err, durable.ErrCompacted):
			writeError(w, http.StatusGone, CodeCompacted,
				fmt.Sprintf("cursor %v predates the retained WAL history; re-bootstrap from the snapshot", c))
			return
		case errors.Is(err, durable.ErrAhead):
			writeError(w, http.StatusConflict, CodeDiverged,
				fmt.Sprintf("cursor %v is past the leader's durable history", c))
			return
		case err != nil:
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
			return
		}
		if n > 0 || !time.Now().Before(deadline) {
			store.Pin(id, next.Seq)
			lagRecs, lagBytes := store.LagFrom(next)
			s.identityHeaders(w)
			w.Header().Set(HdrReplicaNextSeq, strconv.FormatUint(next.Seq, 10))
			w.Header().Set(HdrReplicaNextOff, strconv.FormatInt(next.Off, 10))
			w.Header().Set(HdrReplicaRecords, strconv.Itoa(n))
			w.Header().Set(HdrReplicaLagRecords, strconv.FormatInt(lagRecs, 10))
			w.Header().Set(HdrReplicaLagBytes, strconv.FormatInt(lagBytes, 10))
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			w.Write(data)
			return
		}
		c = next // a segment-boundary advance with no data yet
		select {
		case <-notify:
		case <-time.After(time.Until(deadline)):
		case <-r.Context().Done():
			return
		}
	}
}

// handleReplicaPromote flips a follower writable.
func (s *Server) handleReplicaPromote(w http.ResponseWriter, _ *http.Request) {
	if !s.readOnly.Load() {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "not a follower")
		return
	}
	s.Promote()
	writeJSON(w, http.StatusOK, PromoteResponse{Promoted: true, Generation: s.cur.Load().Gen})
}
