// replica_test.go — white-box tests of the replication surface and
// the two shutdown/checkpoint races it exposed: Close must fence an
// in-flight background checkpoint, and CheckpointNow must leave a
// clean shutdown with nothing to replay.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
)

func newReplicaServer(t *testing.T, dir string, cfg Config) *Server {
	t.Helper()
	cfg.DataDir = dir
	if cfg.Fsync == 0 {
		cfg.Fsync = durable.FsyncOff
	}
	srv, err := NewWith(parser.MustProgram(qTCSrc), graphs.Path(4).Database(), core.LFP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func edge(a, b string) []incr.Fact { return []incr.Fact{{Pred: "E", Args: []string{a, b}}} }

// Satellite regression: Close must wait for an in-flight background
// checkpoint instead of closing the store out from under its
// WriteCheckpoint.
func TestCloseWaitsForInFlightCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv := newReplicaServer(t, dir, Config{CheckpointBatches: 1})

	// Hold the checkpoint between its state capture and the snapshot
	// write — exactly the window the old Close could close the store in.
	gate := make(chan struct{})
	entered := make(chan struct{})
	testCkptGate = func() {
		close(entered)
		<-gate
	}
	defer func() { testCkptGate = nil }()

	if _, _, err := srv.Update(edge("a", "b"), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("background checkpoint never started")
	}

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a checkpoint write was in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the checkpoint finished")
	}
	if got := srv.dur.ckptErrors.Load(); got != 0 {
		t.Fatalf("fenced checkpoint failed anyway: %d errors", got)
	}

	// The checkpoint that Close waited out is durable: the next boot
	// restores it and replays nothing.
	srv2 := newReplicaServer(t, dir, Config{})
	defer srv2.Close()
	if !srv2.dur.recoveredSnapshot || srv2.dur.replayedRecords != 0 {
		t.Fatalf("recovery after fenced close: snapshot=%v replayed=%d, want snapshot and 0 records",
			srv2.dur.recoveredSnapshot, srv2.dur.replayedRecords)
	}
}

// Satellite regression: the documented final checkpoint on SIGTERM —
// CheckpointNow before Close leaves zero records to replay.
func TestCheckpointNowCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	srv := newReplicaServer(t, dir, Config{})
	for i := 0; i < 5; i++ {
		if _, _, err := srv.Update(edge("a", fmt.Sprintf("v%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	// Idempotent when clean: nothing new to cover, nothing rewritten.
	ckpts := srv.dur.checkpoints.Load()
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if got := srv.dur.checkpoints.Load(); got != ckpts {
		t.Fatalf("clean CheckpointNow wrote anyway: %d -> %d", ckpts, got)
	}
	gen := srv.Snapshot().Gen
	srv.Close()

	srv2 := newReplicaServer(t, dir, Config{})
	defer srv2.Close()
	if got := srv2.dur.replayedRecords; got != 0 {
		t.Fatalf("boot after clean shutdown replayed %d records, want 0", got)
	}
	if got := srv2.Snapshot().Gen; got != gen {
		t.Fatalf("recovered generation %d, want %d", got, gen)
	}
}

func TestFollowerRejectsUpdates(t *testing.T) {
	srv := newReplicaServer(t, t.TempDir(), Config{ReadOnly: true, LeaderAddr: "leader.example:8080"})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := bytes.NewBufferString(`{"insert":[{"pred":"E","args":["x","y"]}]}`)
	resp, err := http.Post(ts.URL+"/v1/update", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower update status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(HdrLeaderAddr); got != "leader.example:8080" {
		t.Fatalf("X-Leader-Addr = %q", got)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Code != CodeNotLeader {
		t.Fatalf("error code %q (%v), want not_leader", e.Error.Code, err)
	}

	// Reads still serve.
	r2, err := http.Get(ts.URL + "/v1/relation?pred=s")
	if err != nil || r2.StatusCode != http.StatusOK {
		t.Fatalf("follower read: %v status %v", err, r2.StatusCode)
	}
	r2.Body.Close()

	// The follower loop's hooks feed the metrics replica block and run
	// on promotion, before writes open.
	promoted := false
	srv.SetReplicaHooks(func() *ReplicaMetrics {
		return &ReplicaMetrics{Leader: "leader.example:8080", ReadOnly: srv.ReadOnly(), AppliedRecords: 7}
	}, func() { promoted = true })
	rm, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met struct {
		Replica *ReplicaMetrics `json:"replica"`
	}
	if err := json.NewDecoder(rm.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	rm.Body.Close()
	if met.Replica == nil || met.Replica.AppliedRecords != 7 || !met.Replica.ReadOnly {
		t.Fatalf("metrics replica block = %+v", met.Replica)
	}

	// Promotion opens writes.
	r3, err := http.Post(ts.URL+"/v1/replica/promote", "application/json", nil)
	if err != nil || r3.StatusCode != http.StatusOK {
		t.Fatalf("promote: %v status %v", err, r3.StatusCode)
	}
	r3.Body.Close()
	if srv.ReadOnly() {
		t.Fatal("still read-only after promote")
	}
	if !promoted {
		t.Fatal("promotion hook never ran")
	}
	r4, err := http.Post(ts.URL+"/v1/update", "application/json",
		bytes.NewBufferString(`{"insert":[{"pred":"E","args":["x","y"]}]}`))
	if err != nil || r4.StatusCode != http.StatusOK {
		t.Fatalf("update after promote: %v status %v", err, r4.StatusCode)
	}
	r4.Body.Close()
}

func TestReplicaEndpoints(t *testing.T) {
	srv := newReplicaServer(t, t.TempDir(), Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Bootstrap: the snapshot response carries a cursor and identity.
	resp := get("/v1/replica/snapshot?id=f1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	snapBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := durable.ReadSnapshot(bytes.NewReader(snapBytes)); err != nil {
		t.Fatalf("streamed snapshot unreadable: %v", err)
	}
	if got := resp.Header.Get(HdrReplicaProgram); got != ProgramIdentity(srv.prog) {
		t.Fatalf("program identity %q", got)
	}
	seq, _ := strconv.ParseUint(resp.Header.Get(HdrReplicaSeq), 10, 64)
	off, _ := strconv.ParseInt(resp.Header.Get(HdrReplicaOff), 10, 64)
	cursor := fmt.Sprintf("%d,%d", seq, off)

	// Ship some batches and poll them back.
	want := [][]incr.Fact{edge("a", "b"), edge("b", "c")}
	for _, ins := range want {
		if _, _, err := srv.Update(ins, nil); err != nil {
			t.Fatal(err)
		}
	}
	resp = get("/v1/replica/wal?id=f1&wait=5&from=" + cursor)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wal status %d", resp.StatusCode)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := resp.Header.Get(HdrReplicaRecords); n != "2" {
		t.Fatalf("shipped %s records, want 2", n)
	}
	payloads, err := durable.ScanFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		rec, err := durable.DecodeRecord(p)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Ins[0].Args[1] != want[i][0].Args[1] {
			t.Fatalf("record %d = %+v, want ins %+v", i, rec, want[i])
		}
	}
	next := resp.Header.Get(HdrReplicaNextSeq) + "," + resp.Header.Get(HdrReplicaNextOff)

	// Idle poll at the tail: empty 200 heartbeat, cursor unchanged.
	resp = get("/v1/replica/wal?id=f1&wait=0&from=" + next)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(HdrReplicaRecords) != "0" {
		t.Fatalf("tail poll: status %d records %s", resp.StatusCode, resp.Header.Get(HdrReplicaRecords))
	}
	resp.Body.Close()

	// A cursor past the durable end is divergence.
	resp = get("/v1/replica/wal?id=f1&wait=0&from=99999,8")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("diverged cursor status %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// A cursor before the retained history is compaction: drop the
	// pin, checkpoint, and the original bootstrap cursor is gone.
	srv.dur.store.Unpin("f1")
	if _, _, err := srv.Update(edge("c", "d"), nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	resp = get("/v1/replica/wal?id=f2&wait=0&from=" + cursor)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("compacted cursor status %d, want 410", resp.StatusCode)
	}
	resp.Body.Close()
}
