package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/server"
)

const tcSrc = "s(X,Y) :- E(X,Y).\ns(X,Y) :- E(X,Z), s(Z,Y)."

func newTestServer(t *testing.T, sem core.Semantics) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(parser.MustProgram(tcSrc), graphs.Path(8).Database(), sem)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func TestEndpoints(t *testing.T) {
	_, ts := newTestServer(t, core.LFP)

	var stats struct {
		Semantics string         `json:"semantics"`
		Relations map[string]int `json:"relations"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Semantics != "lfp" || stats.Relations["s"] != 7*8/2 {
		t.Fatalf("stats = %+v", stats)
	}

	var rel struct {
		Tuples [][]string `json:"tuples"`
	}
	getJSON(t, ts.URL+"/v1/relation?pred=E", &rel)
	if len(rel.Tuples) != 7 {
		t.Fatalf("|E| = %d, want 7", len(rel.Tuples))
	}

	v0 := "v0"
	var q struct {
		Count int `json:"count"`
	}
	if code := postJSON(t, ts.URL+"/v1/query", map[string]any{"pred": "s", "args": []*string{&v0, nil}}, &q); code != 200 {
		t.Fatalf("query status %d", code)
	}
	if q.Count != 7 {
		t.Fatalf("s(v0, _) matched %d, want 7", q.Count)
	}

	var up struct {
		Stats incr.UpdateStats `json:"stats"`
	}
	code := postJSON(t, ts.URL+"/v1/update", map[string]any{
		"insert": []incr.Fact{{Pred: "E", Args: []string{"v7", "v0"}}},
	}, &up)
	if code != 200 {
		t.Fatalf("update status %d", code)
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Relations["s"] != 8*8 { // the path closed into a cycle: full TC
		t.Fatalf("|s| after closing the cycle = %d, want 64", stats.Relations["s"])
	}

	if code := postJSON(t, ts.URL+"/v1/update", map[string]any{
		"insert": []incr.Fact{{Pred: "s", Args: []string{"v0", "v0"}}},
	}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("IDB update status %d, want 422", code)
	}
	if code := postJSON(t, ts.URL+"/v1/query", map[string]any{"pred": "nope", "args": []*string{}}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown pred status %d, want 404", code)
	}
}

// TestConcurrentReadersDuringUpdates is the daemon acceptance check:
// snapshot readers hammer the API while the maintainer applies a stream
// of updates.  Run under -race; each reader also checks that the reads
// within one loaded snapshot are internally consistent.
func TestConcurrentReadersDuringUpdates(t *testing.T) {
	srv, ts := newTestServer(t, core.Inflationary)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Direct snapshot reads: length must agree with iteration.
				snap := srv.Snapshot()
				s := snap.Relation("s")
				got := len(s.Tuples())
				if got != s.Len() {
					t.Errorf("snapshot inconsistent: Tuples=%d Len=%d", got, s.Len())
					return
				}
				var q struct {
					Count int `json:"count"`
				}
				v := fmt.Sprintf("v%d", i%8)
				postJSON(t, ts.URL+"/v1/query", map[string]any{"pred": "s", "args": []*string{&v, nil}}, &q)
				var st struct {
					Generation uint64 `json:"generation"`
				}
				getJSON(t, ts.URL+"/v1/stats", &st)
			}
		}(w)
	}

	for i := 0; i < 30; i++ {
		u, v := fmt.Sprintf("v%d", i%8), fmt.Sprintf("v%d", (i*3+1)%8)
		var ins, del []incr.Fact
		if i%3 == 0 {
			del = append(del, incr.Fact{Pred: "E", Args: []string{u, v}})
		} else {
			ins = append(ins, incr.Fact{Pred: "E", Args: []string{u, v}})
		}
		if _, _, err := srv.Update(ins, del); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
