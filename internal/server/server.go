// Package server exposes an incrementally maintained DATALOG¬ program
// over HTTP/JSON: point-in-time reads served from immutable snapshots
// by any number of concurrent readers, and fact updates applied by a
// single committer goroutine that group-commits concurrent batches
// into one maintainer pass (see queue.go).
//
// Endpoints (wire types in api.go, one structured error envelope):
//
//	GET  /v1/stats               program, semantics, generation, sizes
//	GET  /v1/relation?pred=s     all tuples of one relation
//	POST /v1/query               {"pred":"s","args":["v1",null]}  — null is a wildcard
//	POST /v1/update              {"insert":[{"pred":"E","args":["a","b"]}],"delete":[...]}
//	GET  /v1/metrics             QPS, latency percentiles, queue, cache
//
// Reads load the current snapshot pointer atomically and never block on
// updates; updates enqueue into the bounded group-commit queue (429 +
// Retry-After when full), are coalesced by the committer, maintained
// through internal/incr, and answered once the fresh sealed snapshot
// containing them is published.  Pattern queries with multiple bound
// columns probe the snapshot's composite indexes.
//
// /v1/query additionally has a demand-driven fast path: with
// {"magic": true} (or Config.MagicDefault), an IDB query is answered by
// magic-set rewriting the program for the query's adornment and
// evaluating the rewritten program against the snapshot's extensional
// relations — deriving only what the query can reach instead of
// reading the full materialization.  Rewritten programs are cached
// keyed by (predicate, adornment); they are query-constant free by
// construction, so the cache never needs invalidation (EDB updates
// change seeds and data, not the rewrite).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/incr"
	"repro/internal/magic"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// Config tunes one server instance.  The zero value is production-safe
// defaults: engine defaults, a 256-deep update queue, drain-only
// coalescing (no added latency when idle), and at most 1024 requests
// per maintainer pass.
type Config struct {
	// Engine options are threaded into the maintainer and every
	// demand-driven query evaluation.
	Engine engine.Options
	// MagicDefault answers /v1/query IDB queries demand-driven unless
	// the request says {"magic": false}.
	MagicDefault bool
	// QueueDepth bounds the update queue; a full queue fails requests
	// with 429 (admission control).  0 means 256.
	QueueDepth int
	// CommitWindow is how long the committer waits after the first
	// queued update for more to coalesce.  0 (the default) commits
	// whatever has already accumulated without waiting — group commit
	// forms naturally under load and costs nothing when idle.
	CommitWindow time.Duration
	// MaxBatch caps the requests coalesced into one maintainer pass.
	// 0 means 1024.
	MaxBatch int
	// MaxBodyBytes caps request bodies; larger ones fail with
	// 413 too_large.  0 means 1 MiB.
	MaxBodyBytes int64

	// DataDir enables durability: a checkpoint snapshot plus a
	// write-ahead log live under this directory, committed batches are
	// logged before they are acknowledged, and boot recovers from the
	// snapshot and replays the WAL suffix (durable.go).  Empty keeps
	// the server purely in-memory.
	DataDir string
	// Fsync is the WAL sync policy (always / interval / off).
	Fsync durable.FsyncPolicy
	// FsyncInterval is the flush period under FsyncInterval policy.
	// 0 means 1s.
	FsyncInterval time.Duration
	// CheckpointBatches checkpoints after this many committed batches;
	// CheckpointBytes after this much WAL growth.  Either trigger fires
	// a checkpoint; with both 0 and DataDir set, 256 batches is used.
	CheckpointBatches int
	CheckpointBytes   int64

	// ReadOnly starts the server as a replication follower: updates
	// fail with 503 not_leader and LeaderAddr names the writable
	// leader in the X-Leader-Addr response header.  Promote() flips
	// the server writable.
	ReadOnly   bool
	LeaderAddr string
	// RetainBytes bounds covered-but-pinned WAL retention for lagging
	// followers (0 keeps the store's 256 MiB default); RetainTTL
	// expires pins of followers that stopped polling (0 keeps 60s).
	RetainBytes int64
	RetainTTL   time.Duration
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DataDir != "" && c.CheckpointBatches <= 0 && c.CheckpointBytes <= 0 {
		c.CheckpointBatches = 256
	}
	return c
}

// Server serves one maintained program instance.
type Server struct {
	cfg   Config
	prog  *ast.Program
	class string // prog's syntactic class, computed once (Classify stratifies)
	edb   map[string]bool
	idb   map[string]bool
	arity map[string]int
	mu    sync.Mutex // serializes maintainer passes
	m     *incr.Maintainer
	cur   atomic.Pointer[incr.Snapshot]
	start time.Time
	met   *srvMetrics
	dur   *durState // durability runtime, nil without DataDir

	// Replication (replica.go): follower read-only gating and the
	// hooks a follower loop registers so /v1/metrics and promotion
	// reach it.
	readOnly   atomic.Bool
	leaderAddr string
	hookMu     sync.Mutex
	repStats   func() *ReplicaMetrics
	onPromote  func()

	// Group-commit update queue (queue.go).
	queue  chan *updateJob
	qstop  chan struct{}
	qdone  chan struct{}
	closed atomic.Bool

	// Demand-driven query support: available when the maintained
	// semantics has a magic-rewritable reading (LFP, stratified, or
	// inflationary coinciding with LFP on positive/semipositive
	// programs).
	magicOK    bool
	magicStrat bool        // evaluate rewrites under stratified semantics
	magicDft   atomic.Bool // answer /v1/query by rewriting unless overridden
	rwMu       sync.Mutex
	rewrites   map[string]*magic.Rewritten // (pred, adornment) → prepared rewrite
}

// New builds a server maintaining prog on a private copy of db under
// the given semantics with default configuration, the initial
// evaluation done and published, and the committer running.
func New(prog *ast.Program, db *relation.Database, sem core.Semantics) (*Server, error) {
	return NewWith(prog, db, sem, Config{})
}

// NewWith is New with explicit configuration — the options-API entry
// point: engine knobs, the magic default, and the group-commit queue
// shape all travel in cfg instead of process-wide setters.
func NewWith(prog *ast.Program, db *relation.Database, sem core.Semantics, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var (
		m   *incr.Maintainer
		dur *durState
		err error
	)
	if cfg.DataDir != "" {
		m, dur, err = recoverMaintainer(prog, db, sem, cfg)
	} else {
		m, err = incr.NewWith(prog, db, sem, cfg.Engine)
	}
	if err != nil {
		return nil, err
	}
	arities, err := prog.Validate()
	if err != nil {
		if dur != nil {
			dur.store.Close()
		}
		return nil, err
	}
	class := prog.Classify()
	s := &Server{
		cfg:      cfg,
		prog:     prog,
		class:    class.String(),
		edb:      prog.EDB(),
		idb:      prog.IDB(),
		arity:    arities,
		m:        m,
		dur:      dur,
		start:    time.Now(),
		met:      newSrvMetrics(),
		queue:    make(chan *updateJob, cfg.QueueDepth),
		qstop:    make(chan struct{}),
		qdone:    make(chan struct{}),
		rewrites: make(map[string]*magic.Rewritten),
	}
	s.leaderAddr = cfg.LeaderAddr
	s.readOnly.Store(cfg.ReadOnly)
	if dur != nil && (cfg.RetainBytes > 0 || cfg.RetainTTL > 0) {
		dur.store.SetRetention(cfg.RetainBytes, cfg.RetainTTL)
	}
	// One rule for every entry point: LFP and stratified always,
	// inflationary exactly where it coincides with LFP.
	s.magicStrat, s.magicOK = core.QueryStrategy(sem, class)
	s.magicDft.Store(cfg.MagicDefault)
	s.cur.Store(m.Snapshot())
	s.met.lastPublish.Set(time.Now().UnixNano())
	go s.committer()
	return s, nil
}

// SetMagicDefault makes /v1/query answer IDB queries by demand-driven
// magic evaluation unless the request says {"magic": false}.  Safe for
// concurrent use.
func (s *Server) SetMagicDefault(on bool) { s.magicDft.Store(on) }

// MagicSupported reports whether the maintained semantics admits the
// demand-driven query path.
func (s *Server) MagicSupported() bool { return s.magicOK }

// RewriteCacheSize returns the number of cached (predicate, adornment)
// rewrites.
func (s *Server) RewriteCacheSize() int {
	s.rwMu.Lock()
	defer s.rwMu.Unlock()
	return len(s.rewrites)
}

// rewriteFor returns the cached rewrite for (pred, pattern), preparing
// and caching it on first use.
func (s *Server) rewriteFor(pred string, pattern []bool) (*magic.Rewritten, error) {
	key := pred + "/" + magic.Adornment(pattern)
	s.rwMu.Lock()
	defer s.rwMu.Unlock()
	if rw, ok := s.rewrites[key]; ok {
		s.met.cacheHits.Inc()
		return rw, nil
	}
	s.met.cacheMisses.Inc()
	rw, err := magic.Rewrite(s.prog, pred, pattern)
	if err != nil {
		return nil, err
	}
	s.rewrites[key] = rw
	return rw, nil
}

// Snapshot returns the currently published snapshot.
func (s *Server) Snapshot() *incr.Snapshot { return s.cur.Load() }

// Update applies one update through the maintainer and publishes the
// new snapshot, returning both.  Safe for concurrent use; passes are
// serialized, and the returned snapshot is the one this update
// published (a fresh s.cur.Load() could already belong to a later
// update).  With durability on, the batch is appended to the WAL
// before publication, so an answered update is a logged update.  HTTP
// traffic goes through EnqueueUpdate instead, which group-commits
// concurrent callers into shared passes.
func (s *Server) Update(ins, del []incr.Fact) (*incr.UpdateStats, *incr.Snapshot, error) {
	stats, snap, err := s.updateLocked(ins, del)
	if err == nil {
		s.maybeCheckpointAsync()
	}
	return stats, snap, err
}

func (s *Server) updateLocked(ins, del []incr.Fact) (*incr.UpdateStats, *incr.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil && s.dur.failed.Load() {
		// An earlier batch reached the maintainer but not the WAL.
		// Applying (or logging) anything more would diverge the
		// durable history from the state callers were acknowledged
		// against, so the write path stays fenced until restart.
		return nil, nil, ErrWALFailed
	}
	stats, err := s.m.Update(ins, del)
	if err != nil {
		return nil, nil, err
	}
	if logErr := s.logBatch(ins, del); logErr != nil {
		// logBatch fenced the write path.  The batch is never
		// published: readers keep seeing the last snapshot whose
		// batch is both applied and logged, which is exactly the
		// state recovery rebuilds.
		return nil, nil, logErr
	}
	snap := s.m.Snapshot()
	s.cur.Store(snap)
	s.met.lastPublish.Set(time.Now().UnixNano())
	return stats, snap, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /v1/relation", s.instrument("relation", s.handleRelation))
	mux.HandleFunc("POST /v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("POST /v1/update", s.instrument("update", s.handleUpdate))
	mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/replica/snapshot", s.instrument("replica_snapshot", s.handleReplicaSnapshot))
	mux.HandleFunc("GET /v1/replica/wal", s.instrument("replica_wal", s.handleReplicaWAL))
	mux.HandleFunc("POST /v1/replica/promote", s.instrument("replica_promote", s.handleReplicaPromote))
	return mux
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.cur.Load()
	sizes := make(map[string]int, len(snap.Rels))
	for name, r := range snap.Rels {
		sizes[name] = r.Len()
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Semantics:  snap.Sem.String(),
		Class:      s.class,
		Generation: snap.Gen,
		Universe:   snap.Universe.Size(),
		Relations:  sizes,
		UptimeSec:  time.Since(s.start).Seconds(),
	})
}

// names renders a tuple through the snapshot's universe.
func names(u *relation.Universe, t relation.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = u.Name(v)
	}
	return out
}

func (s *Server) handleRelation(w http.ResponseWriter, r *http.Request) {
	snap := s.cur.Load()
	pred := r.URL.Query().Get("pred")
	rel := snap.Relation(pred)
	if rel == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown relation %q", pred))
		return
	}
	tuples := make([][]string, 0, rel.Len())
	for _, t := range rel.Tuples() {
		tuples = append(tuples, names(snap.Universe, t))
	}
	writeJSON(w, http.StatusOK, RelationResponse{
		Pred: pred, Arity: rel.Arity(), Generation: snap.Gen, Tuples: tuples,
	})
}

// decodeBody decodes a JSON request body capped at MaxBodyBytes,
// writing the error envelope on failure (413 too_large when the cap
// bites, 400 bad_request otherwise) and reporting success.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		} else {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		}
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q QueryRequest
	if !s.decodeBody(w, r, &q) {
		return
	}
	wantMagic := s.magicDft.Load()
	if q.Magic != nil {
		wantMagic = *q.Magic
	}
	if wantMagic && s.idb[q.Pred] {
		if !s.magicOK {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("magic queries are not available under %s semantics on a %s program", s.cur.Load().Sem, s.class))
			return
		}
		s.handleMagicQuery(w, q)
		return
	}
	snap := s.cur.Load()
	rel := snap.Relation(q.Pred)
	if rel == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Sprintf("unknown relation %q", q.Pred))
		return
	}
	if len(q.Args) != rel.Arity() {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("%s has arity %d, got %d args", q.Pred, rel.Arity(), len(q.Args)))
		return
	}
	var cols, vals []int
	known := true
	for i, a := range q.Args {
		if a == nil {
			continue
		}
		id, ok := snap.Universe.Lookup(*a)
		if !ok {
			known = false // constant not in the universe: nothing can match
			break
		}
		cols = append(cols, i)
		vals = append(vals, id)
	}
	tuples := [][]string{}
	if known {
		switch {
		case len(cols) == rel.Arity() && rel.Arity() > 0:
			if rel.Has(relation.Tuple(vals)) {
				tuples = append(tuples, names(snap.Universe, relation.Tuple(vals)))
			}
		case len(cols) == 0:
			for _, t := range rel.Tuples() {
				tuples = append(tuples, names(snap.Universe, t))
			}
		case len(cols) == 1:
			for _, off := range rel.Lookup(cols[0], vals[0]) {
				tuples = append(tuples, names(snap.Universe, rel.At(off)))
			}
		default:
			for _, off := range rel.LookupCols(cols, vals) {
				tuples = append(tuples, names(snap.Universe, rel.At(off)))
			}
		}
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Pred: q.Pred, Generation: snap.Gen, Count: len(tuples), Tuples: tuples,
		Source: "materialized",
	})
}

// handleMagicQuery answers an IDB query demand-driven: it rewrites
// the program for the query's adornment (cached), builds a throwaway
// working database over the snapshot's extensional relations (shared,
// sealed — only the universe is copied), and evaluates the rewritten
// program.  Concurrent magic queries and maintainer updates never
// block each other: everything read is an immutable snapshot.
func (s *Server) handleMagicQuery(w http.ResponseWriter, q QueryRequest) {
	if len(q.Args) != s.arity[q.Pred] {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("%s has arity %d, got %d args", q.Pred, s.arity[q.Pred], len(q.Args)))
		return
	}
	mq := magic.Query{Pred: q.Pred}
	for _, a := range q.Args {
		if a == nil {
			mq.Args = append(mq.Args, magic.Free())
		} else {
			mq.Args = append(mq.Args, magic.Bound(*a))
		}
	}
	rw, err := s.rewriteFor(mq.Pred, mq.Pattern())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeUnprocessable, err.Error())
		return
	}

	snap := s.cur.Load()
	work := relation.NewDatabaseOn(snap.Universe.Clone())
	for pred := range s.edb {
		if r := snap.Rels[pred]; r != nil {
			work.Set(pred, r)
		}
	}
	res, err := semantics.QueryRewrittenOpts(rw, work, mq, s.magicStrat, semantics.SemiNaive, s.cfg.Engine)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeUnprocessable, err.Error())
		return
	}
	tuples := make([][]string, 0, res.Tuples.Len())
	for _, t := range res.Tuples.Tuples() {
		tuples = append(tuples, names(res.Universe, t))
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Pred:       q.Pred,
		Generation: snap.Gen,
		Count:      len(tuples),
		Tuples:     tuples,
		Source:     "magic",
		Adornment:  mq.Adornment(),
		Fallback:   rw.Report.Fallback,
		Derived:    res.Stats.Tuples,
		Rounds:     res.Stats.Rounds,
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var u UpdateRequest
	if !s.decodeBody(w, r, &u) {
		return
	}
	stats, gen, coalesced, err := s.EnqueueUpdate(u.Insert, u.Delete)
	switch {
	case errors.Is(err, ErrNotLeader):
		if s.leaderAddr != "" {
			w.Header().Set("X-Leader-Addr", s.leaderAddr)
		}
		writeError(w, http.StatusServiceUnavailable, CodeNotLeader, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, CodeOverloaded, "update queue full; retry")
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, "server shutting down")
		return
	case errors.Is(err, ErrWALFailed):
		writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, CodeUnprocessable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, UpdateResponse{Generation: gen, Coalesced: coalesced, Stats: stats})
}
