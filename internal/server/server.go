// Package server exposes an incrementally maintained DATALOG¬ program
// over HTTP/JSON: point-in-time reads served from immutable snapshots
// by any number of concurrent readers, and fact updates applied by a
// single serialized maintainer.
//
// Endpoints:
//
//	GET  /v1/stats               program, semantics, generation, sizes
//	GET  /v1/relation?pred=s     all tuples of one relation
//	POST /v1/query               {"pred":"s","args":["v1",null]}  — null is a wildcard
//	POST /v1/update              {"insert":[{"pred":"E","args":["a","b"]}],"delete":[...]}
//
// Reads load the current snapshot pointer atomically and never block on
// updates; updates run under a mutex, maintain the state through
// internal/incr, and publish a fresh sealed snapshot.  Pattern queries
// with multiple bound columns probe the snapshot's composite indexes.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/relation"
)

// Server serves one maintained program instance.
type Server struct {
	prog  *ast.Program
	class string     // prog's syntactic class, computed once (Classify stratifies)
	mu    sync.Mutex // serializes updates (the single maintainer)
	m     *incr.Maintainer
	cur   atomic.Pointer[incr.Snapshot]
	start time.Time
}

// New builds a server maintaining prog on a private copy of db under
// the given semantics, with the initial evaluation done and published.
func New(prog *ast.Program, db *relation.Database, sem core.Semantics) (*Server, error) {
	m, err := incr.New(prog, db, sem)
	if err != nil {
		return nil, err
	}
	s := &Server{prog: prog, class: prog.Classify().String(), m: m, start: time.Now()}
	s.cur.Store(m.Snapshot())
	return s, nil
}

// Snapshot returns the currently published snapshot.
func (s *Server) Snapshot() *incr.Snapshot { return s.cur.Load() }

// Update applies an update through the maintainer and publishes the new
// snapshot, returning both.  Safe for concurrent use; updates are
// serialized, and the returned snapshot is the one this update
// published (a fresh s.cur.Load() could already belong to a later
// update).
func (s *Server) Update(ins, del []incr.Fact) (*incr.UpdateStats, *incr.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats, err := s.m.Update(ins, del)
	if err != nil {
		return nil, nil, err
	}
	snap := s.m.Snapshot()
	s.cur.Store(snap)
	return stats, snap, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/relation", s.handleRelation)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.cur.Load()
	sizes := make(map[string]int, len(snap.Rels))
	for name, r := range snap.Rels {
		sizes[name] = r.Len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"semantics":  snap.Sem.String(),
		"class":      s.class,
		"generation": snap.Gen,
		"universe":   snap.Universe.Size(),
		"relations":  sizes,
		"uptime_sec": time.Since(s.start).Seconds(),
	})
}

// names renders a tuple through the snapshot's universe.
func names(u *relation.Universe, t relation.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = u.Name(v)
	}
	return out
}

func (s *Server) handleRelation(w http.ResponseWriter, r *http.Request) {
	snap := s.cur.Load()
	pred := r.URL.Query().Get("pred")
	rel := snap.Relation(pred)
	if rel == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown relation %q", pred))
		return
	}
	tuples := make([][]string, 0, rel.Len())
	for _, t := range rel.Tuples() {
		tuples = append(tuples, names(snap.Universe, t))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pred": pred, "arity": rel.Arity(), "generation": snap.Gen, "tuples": tuples,
	})
}

// queryReq is a pattern match: nil args are wildcards.
type queryReq struct {
	Pred string    `json:"pred"`
	Args []*string `json:"args"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q queryReq
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	snap := s.cur.Load()
	rel := snap.Relation(q.Pred)
	if rel == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown relation %q", q.Pred))
		return
	}
	if len(q.Args) != rel.Arity() {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("%s has arity %d, got %d args", q.Pred, rel.Arity(), len(q.Args)))
		return
	}
	var cols, vals []int
	known := true
	for i, a := range q.Args {
		if a == nil {
			continue
		}
		id, ok := snap.Universe.Lookup(*a)
		if !ok {
			known = false // constant not in the universe: nothing can match
			break
		}
		cols = append(cols, i)
		vals = append(vals, id)
	}
	tuples := [][]string{}
	if known {
		switch {
		case len(cols) == rel.Arity() && rel.Arity() > 0:
			if rel.Has(relation.Tuple(vals)) {
				tuples = append(tuples, names(snap.Universe, relation.Tuple(vals)))
			}
		case len(cols) == 0:
			for _, t := range rel.Tuples() {
				tuples = append(tuples, names(snap.Universe, t))
			}
		case len(cols) == 1:
			for _, off := range rel.Lookup(cols[0], vals[0]) {
				tuples = append(tuples, names(snap.Universe, rel.At(off)))
			}
		default:
			for _, off := range rel.LookupCols(cols, vals) {
				tuples = append(tuples, names(snap.Universe, rel.At(off)))
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pred": q.Pred, "generation": snap.Gen, "count": len(tuples), "tuples": tuples,
	})
}

// updateReq carries fact inserts and deletes.
type updateReq struct {
	Insert []incr.Fact `json:"insert"`
	Delete []incr.Fact `json:"delete"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var u updateReq
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	stats, snap, err := s.Update(u.Insert, u.Delete)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": snap.Gen,
		"stats":      stats,
	})
}
