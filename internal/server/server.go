// Package server exposes an incrementally maintained DATALOG¬ program
// over HTTP/JSON: point-in-time reads served from immutable snapshots
// by any number of concurrent readers, and fact updates applied by a
// single serialized maintainer.
//
// Endpoints:
//
//	GET  /v1/stats               program, semantics, generation, sizes
//	GET  /v1/relation?pred=s     all tuples of one relation
//	POST /v1/query               {"pred":"s","args":["v1",null]}  — null is a wildcard
//	POST /v1/update              {"insert":[{"pred":"E","args":["a","b"]}],"delete":[...]}
//
// Reads load the current snapshot pointer atomically and never block on
// updates; updates run under a mutex, maintain the state through
// internal/incr, and publish a fresh sealed snapshot.  Pattern queries
// with multiple bound columns probe the snapshot's composite indexes.
//
// /v1/query additionally has a demand-driven fast path: with
// {"magic": true} (or the server's SetMagicDefault), an IDB query is
// answered by magic-set rewriting the program for the query's
// adornment and evaluating the rewritten program against the
// snapshot's extensional relations — deriving only what the query can
// reach instead of reading the full materialization.  Rewritten
// programs are cached keyed by (predicate, adornment); they are
// query-constant free by construction, so the cache never needs
// invalidation (EDB updates change seeds and data, not the rewrite).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/incr"
	"repro/internal/magic"
	"repro/internal/relation"
	"repro/internal/semantics"
)

// Server serves one maintained program instance.
type Server struct {
	prog  *ast.Program
	class string // prog's syntactic class, computed once (Classify stratifies)
	edb   map[string]bool
	idb   map[string]bool
	arity map[string]int
	mu    sync.Mutex // serializes updates (the single maintainer)
	m     *incr.Maintainer
	cur   atomic.Pointer[incr.Snapshot]
	start time.Time

	// Demand-driven query support: available when the maintained
	// semantics has a magic-rewritable reading (LFP, stratified, or
	// inflationary coinciding with LFP on positive/semipositive
	// programs).
	magicOK    bool
	magicStrat bool        // evaluate rewrites under stratified semantics
	magicDft   atomic.Bool // answer /v1/query by rewriting unless overridden
	rwMu       sync.Mutex
	rewrites   map[string]*magic.Rewritten // (pred, adornment) → prepared rewrite
}

// New builds a server maintaining prog on a private copy of db under
// the given semantics, with the initial evaluation done and published.
func New(prog *ast.Program, db *relation.Database, sem core.Semantics) (*Server, error) {
	m, err := incr.New(prog, db, sem)
	if err != nil {
		return nil, err
	}
	arities, err := prog.Validate()
	if err != nil {
		return nil, err
	}
	class := prog.Classify()
	s := &Server{
		prog:     prog,
		class:    class.String(),
		edb:      prog.EDB(),
		idb:      prog.IDB(),
		arity:    arities,
		m:        m,
		start:    time.Now(),
		rewrites: make(map[string]*magic.Rewritten),
	}
	// One rule for every entry point: LFP and stratified always,
	// inflationary exactly where it coincides with LFP.
	s.magicStrat, s.magicOK = core.QueryStrategy(sem, class)
	s.cur.Store(m.Snapshot())
	return s, nil
}

// SetMagicDefault makes /v1/query answer IDB queries by demand-driven
// magic evaluation unless the request says {"magic": false}.  Safe for
// concurrent use.
func (s *Server) SetMagicDefault(on bool) { s.magicDft.Store(on) }

// MagicSupported reports whether the maintained semantics admits the
// demand-driven query path.
func (s *Server) MagicSupported() bool { return s.magicOK }

// RewriteCacheSize returns the number of cached (predicate, adornment)
// rewrites.
func (s *Server) RewriteCacheSize() int {
	s.rwMu.Lock()
	defer s.rwMu.Unlock()
	return len(s.rewrites)
}

// rewriteFor returns the cached rewrite for (pred, pattern), preparing
// and caching it on first use.
func (s *Server) rewriteFor(pred string, pattern []bool) (*magic.Rewritten, error) {
	key := pred + "/" + magic.Adornment(pattern)
	s.rwMu.Lock()
	defer s.rwMu.Unlock()
	if rw, ok := s.rewrites[key]; ok {
		return rw, nil
	}
	rw, err := magic.Rewrite(s.prog, pred, pattern)
	if err != nil {
		return nil, err
	}
	s.rewrites[key] = rw
	return rw, nil
}

// Snapshot returns the currently published snapshot.
func (s *Server) Snapshot() *incr.Snapshot { return s.cur.Load() }

// Update applies an update through the maintainer and publishes the new
// snapshot, returning both.  Safe for concurrent use; updates are
// serialized, and the returned snapshot is the one this update
// published (a fresh s.cur.Load() could already belong to a later
// update).
func (s *Server) Update(ins, del []incr.Fact) (*incr.UpdateStats, *incr.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats, err := s.m.Update(ins, del)
	if err != nil {
		return nil, nil, err
	}
	snap := s.m.Snapshot()
	s.cur.Store(snap)
	return stats, snap, nil
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/relation", s.handleRelation)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.cur.Load()
	sizes := make(map[string]int, len(snap.Rels))
	for name, r := range snap.Rels {
		sizes[name] = r.Len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"semantics":  snap.Sem.String(),
		"class":      s.class,
		"generation": snap.Gen,
		"universe":   snap.Universe.Size(),
		"relations":  sizes,
		"uptime_sec": time.Since(s.start).Seconds(),
	})
}

// names renders a tuple through the snapshot's universe.
func names(u *relation.Universe, t relation.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = u.Name(v)
	}
	return out
}

func (s *Server) handleRelation(w http.ResponseWriter, r *http.Request) {
	snap := s.cur.Load()
	pred := r.URL.Query().Get("pred")
	rel := snap.Relation(pred)
	if rel == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown relation %q", pred))
		return
	}
	tuples := make([][]string, 0, rel.Len())
	for _, t := range rel.Tuples() {
		tuples = append(tuples, names(snap.Universe, t))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pred": pred, "arity": rel.Arity(), "generation": snap.Gen, "tuples": tuples,
	})
}

// queryReq is a pattern match: nil args are wildcards.  Magic selects
// the demand-driven path explicitly; nil defers to the server default.
type queryReq struct {
	Pred  string    `json:"pred"`
	Args  []*string `json:"args"`
	Magic *bool     `json:"magic,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q queryReq
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	wantMagic := s.magicDft.Load()
	if q.Magic != nil {
		wantMagic = *q.Magic
	}
	if wantMagic && s.idb[q.Pred] {
		if !s.magicOK {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("magic queries are not available under %s semantics on a %s program", s.cur.Load().Sem, s.class))
			return
		}
		s.handleMagicQuery(w, q)
		return
	}
	snap := s.cur.Load()
	rel := snap.Relation(q.Pred)
	if rel == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown relation %q", q.Pred))
		return
	}
	if len(q.Args) != rel.Arity() {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("%s has arity %d, got %d args", q.Pred, rel.Arity(), len(q.Args)))
		return
	}
	var cols, vals []int
	known := true
	for i, a := range q.Args {
		if a == nil {
			continue
		}
		id, ok := snap.Universe.Lookup(*a)
		if !ok {
			known = false // constant not in the universe: nothing can match
			break
		}
		cols = append(cols, i)
		vals = append(vals, id)
	}
	tuples := [][]string{}
	if known {
		switch {
		case len(cols) == rel.Arity() && rel.Arity() > 0:
			if rel.Has(relation.Tuple(vals)) {
				tuples = append(tuples, names(snap.Universe, relation.Tuple(vals)))
			}
		case len(cols) == 0:
			for _, t := range rel.Tuples() {
				tuples = append(tuples, names(snap.Universe, t))
			}
		case len(cols) == 1:
			for _, off := range rel.Lookup(cols[0], vals[0]) {
				tuples = append(tuples, names(snap.Universe, rel.At(off)))
			}
		default:
			for _, off := range rel.LookupCols(cols, vals) {
				tuples = append(tuples, names(snap.Universe, rel.At(off)))
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pred": q.Pred, "generation": snap.Gen, "count": len(tuples), "tuples": tuples,
		"source": "materialized",
	})
}

// handleMagicQuery answers an IDB query demand-driven: it rewrites
// the program for the query's adornment (cached), builds a throwaway
// working database over the snapshot's extensional relations (shared,
// sealed — only the universe is copied), and evaluates the rewritten
// program.  Concurrent magic queries and maintainer updates never
// block each other: everything read is an immutable snapshot.
func (s *Server) handleMagicQuery(w http.ResponseWriter, q queryReq) {
	if len(q.Args) != s.arity[q.Pred] {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("%s has arity %d, got %d args", q.Pred, s.arity[q.Pred], len(q.Args)))
		return
	}
	mq := magic.Query{Pred: q.Pred}
	for _, a := range q.Args {
		if a == nil {
			mq.Args = append(mq.Args, magic.Free())
		} else {
			mq.Args = append(mq.Args, magic.Bound(*a))
		}
	}
	rw, err := s.rewriteFor(mq.Pred, mq.Pattern())
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}

	snap := s.cur.Load()
	work := relation.NewDatabaseOn(snap.Universe.Clone())
	for pred := range s.edb {
		if r := snap.Rels[pred]; r != nil {
			work.Set(pred, r)
		}
	}
	res, err := semantics.QueryRewritten(rw, work, mq, s.magicStrat, semantics.SemiNaive)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	tuples := make([][]string, 0, res.Tuples.Len())
	for _, t := range res.Tuples.Tuples() {
		tuples = append(tuples, names(res.Universe, t))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pred":       q.Pred,
		"generation": snap.Gen,
		"count":      len(tuples),
		"tuples":     tuples,
		"source":     "magic",
		"adornment":  mq.Adornment(),
		"fallback":   rw.Report.Fallback,
		"derived":    res.Stats.Tuples,
		"rounds":     res.Stats.Rounds,
	})
}

// updateReq carries fact inserts and deletes.
type updateReq struct {
	Insert []incr.Fact `json:"insert"`
	Delete []incr.Fact `json:"delete"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var u updateReq
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	stats, snap, err := s.Update(u.Insert, u.Delete)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": snap.Gen,
		"stats":      stats,
	})
}
