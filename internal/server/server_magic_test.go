package server_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/server"
)

// newHTTP serves srv over a test listener and returns the base URL.
func newHTTP(t *testing.T, srv *server.Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

type queryResp struct {
	Count      int        `json:"count"`
	Tuples     [][]string `json:"tuples"`
	Source     string     `json:"source"`
	Adornment  string     `json:"adornment"`
	Fallback   bool       `json:"fallback"`
	Generation uint64     `json:"generation"`
}

func sortTuples(ts [][]string) {
	sort.Slice(ts, func(i, j int) bool { return fmt.Sprint(ts[i]) < fmt.Sprint(ts[j]) })
}

func TestMagicQueryEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, core.LFP)
	if !srv.MagicSupported() {
		t.Fatal("LFP server should support magic queries")
	}

	v2 := "v2"
	var mat, mag queryResp
	if code := postJSON(t, ts.URL+"/v1/query",
		map[string]any{"pred": "s", "args": []*string{&v2, nil}}, &mat); code != 200 {
		t.Fatalf("materialized query status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/query",
		map[string]any{"pred": "s", "args": []*string{&v2, nil}, "magic": true}, &mag); code != 200 {
		t.Fatalf("magic query status %d", code)
	}
	if mat.Source != "materialized" || mag.Source != "magic" || mag.Adornment != "bf" {
		t.Fatalf("sources = %q/%q adornment %q", mat.Source, mag.Source, mag.Adornment)
	}
	if mag.Count != mat.Count {
		t.Fatalf("magic count %d != materialized count %d", mag.Count, mat.Count)
	}
	sortTuples(mat.Tuples)
	sortTuples(mag.Tuples)
	for i := range mat.Tuples {
		if fmt.Sprint(mat.Tuples[i]) != fmt.Sprint(mag.Tuples[i]) {
			t.Fatalf("tuple %d differs: %v vs %v", i, mat.Tuples[i], mag.Tuples[i])
		}
	}

	// Same adornment, different constant: the cached rewrite is reused.
	if n := srv.RewriteCacheSize(); n != 1 {
		t.Fatalf("rewrite cache size %d, want 1", n)
	}
	v5 := "v5"
	postJSON(t, ts.URL+"/v1/query", map[string]any{"pred": "s", "args": []*string{&v5, nil}, "magic": true}, &mag)
	if n := srv.RewriteCacheSize(); n != 1 {
		t.Fatalf("rewrite cache size %d after same-adornment query, want 1", n)
	}
	postJSON(t, ts.URL+"/v1/query", map[string]any{"pred": "s", "args": []*string{nil, &v5}, "magic": true}, &mag)
	if n := srv.RewriteCacheSize(); n != 2 {
		t.Fatalf("rewrite cache size %d after new adornment, want 2", n)
	}

	// EDB predicates take the materialized path even with magic on.
	var e queryResp
	postJSON(t, ts.URL+"/v1/query", map[string]any{"pred": "E", "args": []*string{&v2, nil}, "magic": true}, &e)
	if e.Source != "materialized" || e.Count != 1 {
		t.Fatalf("EDB query = %+v", e)
	}
}

func TestMagicQueryDefault(t *testing.T) {
	srv, ts := newTestServer(t, core.Inflationary) // TC is positive: coincides with LFP
	srv.SetMagicDefault(true)
	v0 := "v0"
	var q queryResp
	postJSON(t, ts.URL+"/v1/query", map[string]any{"pred": "s", "args": []*string{&v0, nil}}, &q)
	if q.Source != "magic" || q.Count != 7 {
		t.Fatalf("default-magic query = %+v", q)
	}
	// Explicit opt-out still works.
	postJSON(t, ts.URL+"/v1/query", map[string]any{"pred": "s", "args": []*string{&v0, nil}, "magic": false}, &q)
	if q.Source != "materialized" || q.Count != 7 {
		t.Fatalf("opt-out query = %+v", q)
	}
}

func TestMagicQueryRejectedUnderWellFounded(t *testing.T) {
	srv, err := server.New(parser.MustProgram("win(X) :- E(X,Y), !win(Y)."),
		graphs.Path(4).Database(), core.WellFounded)
	if err != nil {
		t.Fatal(err)
	}
	if srv.MagicSupported() {
		t.Fatal("well-founded server should not support magic queries")
	}
	ts := newHTTP(t, srv)
	v0 := "v0"
	if code := postJSON(t, ts+"/v1/query",
		map[string]any{"pred": "win", "args": []*string{&v0}, "magic": true}, nil); code != http.StatusBadRequest {
		t.Fatalf("magic under WF status %d, want 400", code)
	}
}

// TestMagicQueryStratifiedServer covers the stratified evaluation arm
// of the server's magic path, negation included.
func TestMagicQueryStratifiedServer(t *testing.T) {
	src := `
s(X,Y) :- E(X,Y).
s(X,Y) :- s(X,Z), E(Z,Y).
frontiervert(X,Y) :- s(X,Y), !E(X,Y).
`
	srv, err := server.New(parser.MustProgram(src), graphs.Path(6).Database(), core.Stratified)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTP(t, srv)
	v1 := "v1"
	var mat, mag queryResp
	postJSON(t, ts+"/v1/query", map[string]any{"pred": "frontiervert", "args": []*string{&v1, nil}}, &mat)
	postJSON(t, ts+"/v1/query", map[string]any{"pred": "frontiervert", "args": []*string{&v1, nil}, "magic": true}, &mag)
	if mag.Count != mat.Count || mag.Count == 0 {
		t.Fatalf("magic %d vs materialized %d", mag.Count, mat.Count)
	}
}

// TestMagicQueryConcurrentWithUpdates hammers the demand-driven path
// from several readers while the maintainer applies updates: every
// response must be internally consistent (all tuples match the bound
// constant) and the run must be race-free (the CI race job includes
// this package).
func TestMagicQueryConcurrentWithUpdates(t *testing.T) {
	srv, ts := newTestServer(t, core.LFP)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := fmt.Sprintf("v%d", i%8)
				var q queryResp
				if code := postJSON(t, ts.URL+"/v1/query",
					map[string]any{"pred": "s", "args": []*string{&v, nil}, "magic": true}, &q); code != 200 {
					t.Errorf("magic query status %d", code)
					return
				}
				if q.Source != "magic" {
					t.Errorf("source = %q", q.Source)
					return
				}
				for _, tup := range q.Tuples {
					if len(tup) != 2 || tup[0] != v {
						t.Errorf("query s(%s,?) returned tuple %v", v, tup)
						return
					}
				}
			}
		}(w)
	}

	for i := 0; i < 30; i++ {
		u, v := fmt.Sprintf("v%d", i%8), fmt.Sprintf("v%d", (i*3+1)%8)
		var ins, del []incr.Fact
		if i%3 == 0 {
			del = append(del, incr.Fact{Pred: "E", Args: []string{u, v}})
		} else {
			ins = append(ins, incr.Fact{Pred: "E", Args: []string{u, v}})
		}
		if _, _, err := srv.Update(ins, del); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
