// api.go — the versioned wire types of the /v1 API.
//
// Every endpoint speaks a named request/response struct (not ad-hoc
// maps), and every failure uses one structured envelope:
//
//	{"error": {"code": "overloaded", "message": "update queue full"}}
//
// Status codes and their error codes:
//
//	400 bad_request    malformed JSON, wrong arity, magic unsupported
//	404 not_found      unknown relation
//	409 diverged       replica cursor past the leader's durable history
//	410 compacted      replica cursor before the retained WAL history
//	413 too_large      request body over Config.MaxBodyBytes
//	422 unprocessable  valid shape the engine rejects (IDB update,
//	                   insert+delete conflict, rewrite failure)
//	429 overloaded     update queue full (Retry-After is set)
//	503 not_leader     update sent to a read-only follower
//	                   (X-Leader-Addr names the writable leader)
//	503 unavailable    server shutting down
package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/incr"
)

// Error codes carried in the error envelope.
const (
	CodeBadRequest    = "bad_request"
	CodeNotFound      = "not_found"
	CodeTooLarge      = "too_large"
	CodeUnprocessable = "unprocessable"
	CodeOverloaded    = "overloaded"
	CodeUnavailable   = "unavailable"
	CodeNotLeader     = "not_leader"
	CodeCompacted     = "compacted"
	CodeDiverged      = "diverged"
)

// ErrorBody is the inner object of the error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the uniform failure envelope of every /v1 endpoint.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// StatsResponse answers GET /v1/stats.
type StatsResponse struct {
	Semantics  string         `json:"semantics"`
	Class      string         `json:"class"`
	Generation uint64         `json:"generation"`
	Universe   int            `json:"universe"`
	Relations  map[string]int `json:"relations"`
	UptimeSec  float64        `json:"uptime_sec"`
}

// RelationResponse answers GET /v1/relation.
type RelationResponse struct {
	Pred       string     `json:"pred"`
	Arity      int        `json:"arity"`
	Generation uint64     `json:"generation"`
	Tuples     [][]string `json:"tuples"`
}

// QueryRequest is the body of POST /v1/query: a pattern match with
// nil args as wildcards.  Magic selects the demand-driven path
// explicitly; nil defers to the server default.
type QueryRequest struct {
	Pred  string    `json:"pred"`
	Args  []*string `json:"args"`
	Magic *bool     `json:"magic,omitempty"`
}

// QueryResponse answers POST /v1/query.  The demand-driven fields
// (Adornment, Fallback, Derived, Rounds) are populated only when
// Source is "magic".
type QueryResponse struct {
	Pred       string     `json:"pred"`
	Generation uint64     `json:"generation"`
	Count      int        `json:"count"`
	Tuples     [][]string `json:"tuples"`
	Source     string     `json:"source"`
	Adornment  string     `json:"adornment,omitempty"`
	Fallback   bool       `json:"fallback,omitempty"`
	Derived    int        `json:"derived,omitempty"`
	Rounds     int        `json:"rounds,omitempty"`
}

// UpdateRequest is the body of POST /v1/update.
type UpdateRequest struct {
	Insert []incr.Fact `json:"insert"`
	Delete []incr.Fact `json:"delete"`
}

// UpdateResponse answers POST /v1/update.  Generation is the snapshot
// that durably contains this request's changes.  Coalesced counts the
// concurrent requests folded into the same maintainer pass (1 = the
// request ran alone); Stats describe that whole pass.
type UpdateResponse struct {
	Generation uint64            `json:"generation"`
	Coalesced  int               `json:"coalesced"`
	Stats      *incr.UpdateStats `json:"stats"`
}

// PromoteResponse answers POST /v1/replica/promote.
type PromoteResponse struct {
	Promoted   bool   `json:"promoted"`
	Generation uint64 `json:"generation"`
}

// QueueMetrics reports the group-commit queue.
type QueueMetrics struct {
	Depth     int     `json:"depth"`
	Capacity  int     `json:"capacity"`
	Enqueued  int64   `json:"enqueued"`
	Rejected  int64   `json:"rejected"`
	Batches   int64   `json:"batches"`
	Coalesced int64   `json:"coalesced_updates"`
	MaxBatch  int64   `json:"max_batch"`
	MeanBatch float64 `json:"mean_batch"`
}

// CacheMetrics reports the magic rewrite cache.
type CacheMetrics struct {
	Size    int     `json:"size"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// PartitionMetrics reports K-way partitioned evaluation: per-partition
// tuple counts of the most recent run, cross-partition exchange volume,
// and the exchange-path prefilter's hit rate (skipped exact probes per
// consultation).
type PartitionMetrics struct {
	Runs            int64   `json:"runs"`
	Rounds          int64   `json:"rounds"`
	ExchangedTuples int64   `json:"exchanged_tuples"`
	AcceptedTuples  int64   `json:"accepted_tuples"`
	ExchangeMean    float64 `json:"exchange_mean_per_round"`
	ExchangeP90     float64 `json:"exchange_p90_per_round"`
	FilterProbes    int64   `json:"filter_probes"`
	FilterSkips     int64   `json:"filter_skips"`
	FilterHitRate   float64 `json:"filter_hit_rate"`
	LastPartitions  int     `json:"last_partitions,omitempty"`
	LastTuples      []int64 `json:"last_partition_tuples,omitempty"`
}

// EngineMetrics reports the unpartitioned engine's dedup-path
// telemetry: frontier-prefilter consultations and the share resolved
// without an exact accumulated-state probe.
type EngineMetrics struct {
	FrontierFilterProbes int64   `json:"frontier_filter_probes"`
	FrontierFilterSkips  int64   `json:"frontier_filter_skips"`
	FrontierFilterRate   float64 `json:"frontier_filter_hit_rate"`
}

// DurableMetrics reports the persistence layer: WAL volume since the
// last checkpoint, checkpoint cadence, and what boot recovery did.
// Present in /v1/metrics only when the server runs with a data dir.
type DurableMetrics struct {
	FsyncPolicy             string  `json:"fsync_policy"`
	WALBytes                int64   `json:"wal_bytes"`
	WALRecords              int64   `json:"wal_records"`
	WALSegments             int     `json:"wal_segments"`
	AppendErrors            int64   `json:"append_errors"`
	Checkpoints             int64   `json:"checkpoints"`
	CheckpointErrors        int64   `json:"checkpoint_errors"`
	LastCheckpointAgeSec    float64 `json:"last_checkpoint_age_sec,omitempty"`
	LastCheckpointDurMs     float64 `json:"last_checkpoint_dur_ms,omitempty"`
	RecoveredSnapshot       bool    `json:"recovered_snapshot"`
	RecoveryReplayedRecords int     `json:"recovery_replayed_records"`
	RecoveryDurMs           float64 `json:"recovery_dur_ms"`
	CheckpointInFlight      bool    `json:"checkpoint_in_flight"`
	// Replication retention: sealed-but-retained segments, live
	// follower pins, and pins dropped by the bounded-lag policy.
	RetainedSegments int   `json:"retained_segments"`
	ReplicaPins      int   `json:"replica_pins"`
	ReplicaEvictions int64 `json:"replica_evictions"`
}

// ReplicaMetrics reports follower-mode replication: where the apply
// loop has reached in the leader's WAL, how far behind it is, and how
// rough the ride has been.  Present in /v1/metrics only on a follower.
type ReplicaMetrics struct {
	Leader         string  `json:"leader"`
	ReadOnly       bool    `json:"read_only"`
	AppliedSeq     uint64  `json:"applied_seq"`
	AppliedOffset  int64   `json:"applied_offset"`
	AppliedRecords int64   `json:"applied_records"`
	AppliedBytes   int64   `json:"applied_bytes"`
	LagRecords     int64   `json:"lag_records"`
	LagBytes       int64   `json:"lag_bytes"`
	LagMs          float64 `json:"lag_ms"`
	Reconnects     int64   `json:"reconnects"`
	Bootstraps     int64   `json:"bootstraps"`
}

// LatencyMetrics are microsecond latency estimates for one endpoint
// (percentiles carry the histogram's ≤25% bucket error).
type LatencyMetrics struct {
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
}

// EndpointMetrics report one endpoint's traffic.
type EndpointMetrics struct {
	Requests int64          `json:"requests"`
	Errors   int64          `json:"errors"`
	QPS10s   float64        `json:"qps_10s"`
	Latency  LatencyMetrics `json:"latency"`
}

// MetricsResponse answers GET /v1/metrics.
type MetricsResponse struct {
	UptimeSec      float64                    `json:"uptime_sec"`
	Generation     uint64                     `json:"generation"`
	SnapshotAgeSec float64                    `json:"snapshot_age_sec"`
	Queue          QueueMetrics               `json:"queue"`
	RewriteCache   CacheMetrics               `json:"rewrite_cache"`
	Partition      PartitionMetrics           `json:"partition"`
	Engine         EngineMetrics              `json:"engine"`
	Durable        *DurableMetrics            `json:"durable,omitempty"`
	Replica        *ReplicaMetrics            `json:"replica,omitempty"`
	Endpoints      map[string]EndpointMetrics `json:"endpoints"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the structured envelope.  A 429 also sets
// Retry-After so well-behaved clients back off instead of hammering.
func writeError(w http.ResponseWriter, status int, code, message string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: message}})
}
