package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/graphs"
	"repro/internal/incr"
	"repro/internal/parser"
	"repro/internal/server"
)

// newDurableServer builds a server persisting to dir.  The program and
// seed database are fixed, mirroring how cmd/serve reloads the same
// files on every boot.
func newDurableServer(t *testing.T, dir string, sem core.Semantics, cfg server.Config) *server.Server {
	t.Helper()
	cfg.DataDir = dir
	srv, err := server.NewWith(parser.MustProgram(tcSrc), graphs.Path(8).Database(), sem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// dumpState renders every relation of the published snapshot, sorted,
// for bit-exactness comparison across restarts.
func dumpState(srv *server.Server) string {
	snap := srv.Snapshot()
	var names []string
	for name := range snap.Rels {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		r := snap.Rels[name]
		var rows []string
		for _, tup := range r.Tuples() {
			var parts []string
			for _, v := range tup {
				parts = append(parts, snap.Universe.Name(v))
			}
			rows = append(rows, strings.Join(parts, ","))
		}
		sort.Strings(rows)
		b.WriteString(name + ": " + strings.Join(rows, " ") + "\n")
	}
	return b.String()
}

func TestDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, core.Stratified, server.Config{Fsync: durable.FsyncOff})
	if _, _, err := srv.Update([]incr.Fact{{Pred: "E", Args: []string{"v7", "v0"}}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Update(nil, []incr.Fact{{Pred: "E", Args: []string{"v2", "v3"}}}); err != nil {
		t.Fatal(err)
	}
	want := dumpState(srv)
	gen := srv.Snapshot().Gen
	srv.Close()

	// Reboot: the snapshot restores, the two logged batches replay.
	srv2 := newDurableServer(t, dir, core.Stratified, server.Config{Fsync: durable.FsyncOff})
	defer srv2.Close()
	if got := dumpState(srv2); got != want {
		t.Fatalf("state diverged across restart:\n got %s\nwant %s", got, want)
	}
	if got := srv2.Snapshot().Gen; got != gen {
		t.Fatalf("generation = %d after recovery, want %d", got, gen)
	}

	// Updates keep flowing after recovery.
	if _, _, err := srv2.Update([]incr.Fact{{Pred: "E", Args: []string{"v3", "v1"}}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurableRecoveryReplaysOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, core.LFP, server.Config{Fsync: durable.FsyncAlways})
	for i := 0; i < 3; i++ {
		if _, _, err := srv.Update([]incr.Fact{{Pred: "E", Args: []string{"x", "v0"}}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := srv.Update(nil, []incr.Fact{{Pred: "E", Args: []string{"x", "v0"}}}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()

	// Second boot absorbs the six batches into the snapshot...
	srv2 := newDurableServer(t, dir, core.LFP, server.Config{Fsync: durable.FsyncAlways})
	ts := httptest.NewServer(srv2.Handler())
	var met struct {
		Durable *server.DurableMetrics `json:"durable"`
	}
	getJSON(t, ts.URL+"/v1/metrics", &met)
	ts.Close()
	srv2.Close()
	if met.Durable == nil {
		t.Fatal("durable block missing from /v1/metrics")
	}
	if !met.Durable.RecoveredSnapshot || met.Durable.RecoveryReplayedRecords != 6 {
		t.Fatalf("boot 2: recovered=%v replayed=%d, want snapshot + 6 records",
			met.Durable.RecoveredSnapshot, met.Durable.RecoveryReplayedRecords)
	}
	if met.Durable.FsyncPolicy != "always" {
		t.Fatalf("fsync policy = %q", met.Durable.FsyncPolicy)
	}
	if met.Durable.RecoveryDurMs < 0 {
		t.Fatalf("recovery duration = %v", met.Durable.RecoveryDurMs)
	}

	// ...so a third boot replays nothing: snapshot only, empty suffix.
	srv3 := newDurableServer(t, dir, core.LFP, server.Config{Fsync: durable.FsyncAlways})
	defer srv3.Close()
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	getJSON(t, ts3.URL+"/v1/metrics", &met)
	if !met.Durable.RecoveredSnapshot || met.Durable.RecoveryReplayedRecords != 0 {
		t.Fatalf("boot 3: recovered=%v replayed=%d, want snapshot + 0 records",
			met.Durable.RecoveredSnapshot, met.Durable.RecoveryReplayedRecords)
	}
}

func TestDurableCheckpointTrigger(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, core.LFP, server.Config{
		Fsync:             durable.FsyncOff,
		CheckpointBatches: 2,
	})
	defer srv.Close()
	for i := 0; i < 4; i++ {
		ins := []incr.Fact{{Pred: "E", Args: []string{"y", "v0"}}}
		if i%2 == 1 {
			if _, _, err := srv.Update(nil, ins); err != nil {
				t.Fatal(err)
			}
		} else if _, _, err := srv.Update(ins, nil); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var met struct {
			Durable *server.DurableMetrics `json:"durable"`
		}
		getJSON(t, ts.URL+"/v1/metrics", &met)
		// One checkpoint ran at boot (fresh dir); the batch trigger
		// must have fired at least one more in the background.
		if met.Durable.Checkpoints >= 2 && met.Durable.LastCheckpointAgeSec >= 0 {
			if met.Durable.CheckpointErrors != 0 {
				t.Fatalf("checkpoint errors: %+v", met.Durable)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint never fired: %+v", met.Durable)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.bin")); err != nil {
		t.Fatal(err)
	}
}

func TestDurableRejectsForeignHistory(t *testing.T) {
	dir := t.TempDir()
	srv := newDurableServer(t, dir, core.LFP, server.Config{Fsync: durable.FsyncOff})
	srv.Close()

	otherProg := parser.MustProgram("t(X) :- E(X,Y).")
	if _, err := server.NewWith(otherProg, graphs.Path(8).Database(), core.LFP,
		server.Config{DataDir: dir, Fsync: durable.FsyncOff}); err == nil {
		t.Fatal("accepted a data dir written by a different program")
	}
	if _, err := server.NewWith(parser.MustProgram(tcSrc), graphs.Path(8).Database(), core.Stratified,
		server.Config{DataDir: dir, Fsync: durable.FsyncOff}); err == nil {
		t.Fatal("accepted a data dir written under different semantics")
	}
}

func TestBodyTooLarge(t *testing.T) {
	srv, err := server.NewWith(parser.MustProgram(tcSrc), graphs.Path(8).Database(), core.LFP,
		server.Config{MaxBodyBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	big := `{"insert":[{"pred":"E","args":["` + strings.Repeat("a", 200) + `","b"]}]}`
	resp, err := http.Post(ts.URL+"/v1/update", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != "too_large" {
		t.Fatalf("error code = %q, want too_large", envelope.Error.Code)
	}

	// Under the cap still works, on both POST endpoints.
	small := bytes.NewReader([]byte(`{"pred":"E","args":[null,null]}`))
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", small)
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("small query status = %d", qresp.StatusCode)
	}
}
