package ast

import (
	"fmt"
	"sort"
)

// DepEdge is one edge of the predicate dependency graph: the head
// predicate depends on the body predicate, positively or negatively.
type DepEdge struct {
	From, To string // From = head predicate, To = body predicate
	Negative bool
}

// DependencyGraph returns the program's predicate dependency edges,
// deduplicated (a negative edge subsumes a positive one between the
// same pair) and sorted for determinism.
func (p *Program) DependencyGraph() []DepEdge {
	type key struct{ from, to string }
	neg := make(map[key]bool)
	seen := make(map[key]bool)
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Kind != LitPos && l.Kind != LitNeg {
				continue
			}
			k := key{r.Head.Pred, l.Atom.Pred}
			seen[k] = true
			if l.Kind == LitNeg {
				neg[k] = true
			}
		}
	}
	out := make([]DepEdge, 0, len(seen))
	for k := range seen {
		out = append(out, DepEdge{From: k.from, To: k.to, Negative: neg[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Stratification assigns each predicate a stratum number such that a
// predicate's definition uses same-stratum predicates only positively
// and negated predicates only from strictly lower strata.
type Stratification struct {
	// Level maps each predicate (EDB and IDB) to its stratum; EDB
	// predicates are always on stratum 0.
	Level map[string]int
	// Strata groups the IDB predicates by stratum, lowest first; names
	// within a stratum are sorted.
	Strata [][]string
}

// NumStrata returns the number of IDB strata.
func (s *Stratification) NumStrata() int { return len(s.Strata) }

// Stratify computes a stratification of the program, or an error if the
// program has recursion through negation (and hence no stratification —
// exactly the programs for which the paper's Section 1 notes stratified
// semantics assigns no meaning).
func (p *Program) Stratify() (*Stratification, error) {
	idb := p.IDB()
	level := make(map[string]int)
	for pred := range idb {
		level[pred] = 0
	}
	for pred := range p.EDB() {
		level[pred] = 0
	}

	edges := p.DependencyGraph()
	// Relax constraints until a fixpoint: head ≥ body for positive
	// edges into IDB predicates, head ≥ body+1 for negative ones.  If a
	// level exceeds the number of IDB predicates there is a negative
	// cycle.
	maxLevel := len(idb)
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if !idb[e.To] {
				continue // EDB predicates stay at level 0
			}
			need := level[e.To]
			if e.Negative {
				need++
			}
			if level[e.From] < need {
				level[e.From] = need
				if level[e.From] > maxLevel {
					return nil, fmt.Errorf("program is not stratifiable: recursion through negation involving %s", e.From)
				}
				changed = true
			}
		}
	}

	// Compact stratum numbers of IDB predicates to 0..k-1.
	used := make(map[int]bool)
	for pred := range idb {
		used[level[pred]] = true
	}
	var levels []int
	for l := range used {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	remap := make(map[int]int, len(levels))
	for i, l := range levels {
		remap[l] = i
	}
	strata := make([][]string, len(levels))
	for pred := range idb {
		level[pred] = remap[level[pred]]
		strata[level[pred]] = append(strata[level[pred]], pred)
	}
	for i := range strata {
		sort.Strings(strata[i])
	}
	return &Stratification{Level: level, Strata: strata}, nil
}

// RulesForStratum returns the rules whose head predicate lies on the
// given stratum, in program order.
func (p *Program) RulesForStratum(s *Stratification, stratum int) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if s.Level[r.Head.Pred] == stratum {
			out = append(out, r)
		}
	}
	return out
}
