package ast

import (
	"strings"
	"testing"
)

// pi1 is the paper's program π₁:  T(x) ← E(y,x), ¬T(y).
func pi1() *Program {
	return NewProgram(
		NewRule(NewAtom("T", Var("X")),
			Pos(NewAtom("E", Var("Y"), Var("X"))),
			Neg(NewAtom("T", Var("Y")))),
	)
}

// pi2 is the paper's program π₂ with IDB S1, S2.
func pi2() *Program {
	return NewProgram(
		NewRule(NewAtom("S1", Var("X"), Var("Y")),
			Pos(NewAtom("E", Var("X"), Var("Y")))),
		NewRule(NewAtom("S1", Var("X"), Var("Y")),
			Pos(NewAtom("E", Var("X"), Var("Z"))),
			Pos(NewAtom("S1", Var("Z"), Var("Y")))),
		NewRule(NewAtom("S2", Var("X"), Var("Y"), Var("Z"), Var("W")),
			Pos(NewAtom("S1", Var("X"), Var("Y"))),
			Neg(NewAtom("S1", Var("Z"), Var("W")))),
	)
}

// pi3 is the paper's transitive-closure DATALOG program π₃.
func pi3() *Program {
	return NewProgram(
		NewRule(NewAtom("S", Var("X"), Var("Y")),
			Pos(NewAtom("E", Var("X"), Var("Y")))),
		NewRule(NewAtom("S", Var("X"), Var("Y")),
			Pos(NewAtom("E", Var("X"), Var("Z"))),
			Pos(NewAtom("S", Var("Z"), Var("Y")))),
	)
}

func TestEDBIDBSplit(t *testing.T) {
	p := pi2()
	idb := p.IDBList()
	edb := p.EDBList()
	if len(idb) != 2 || idb[0] != "S1" || idb[1] != "S2" {
		t.Errorf("IDB = %v", idb)
	}
	if len(edb) != 1 || edb[0] != "E" {
		t.Errorf("EDB = %v", edb)
	}
}

func TestArities(t *testing.T) {
	p := pi2()
	ar, err := p.Arities()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"E": 2, "S1": 2, "S2": 4}
	for k, v := range want {
		if ar[k] != v {
			t.Errorf("arity(%s) = %d, want %d", k, ar[k], v)
		}
	}
}

func TestAritiesConflict(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom("T", Var("X")), Pos(NewAtom("E", Var("X")))),
		NewRule(NewAtom("T", Var("X"), Var("Y")), Pos(NewAtom("E", Var("X")))),
	)
	if _, err := p.Arities(); err == nil {
		t.Error("conflicting arities not detected")
	}
}

func TestValidateCarrier(t *testing.T) {
	p := pi1()
	p.Carrier = "T"
	if _, err := p.Validate(); err != nil {
		t.Errorf("valid carrier rejected: %v", err)
	}
	p.Carrier = "E"
	if _, err := p.Validate(); err == nil {
		t.Error("EDB carrier accepted")
	}
	empty := NewProgram()
	if _, err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		want Class
	}{
		{"pi3 positive", pi3(), ClassPositive},
		{"pi2 stratified", pi2(), ClassStratified},
		{"pi1 general", pi1(), ClassGeneral},
		{"semipositive", NewProgram(
			NewRule(NewAtom("T", Var("X")),
				Pos(NewAtom("V", Var("X"))),
				Neg(NewAtom("E", Var("X"), Var("X")))),
		), ClassSemipositive},
		{"neq makes non-positive", NewProgram(
			NewRule(NewAtom("T", Var("X")),
				Pos(NewAtom("V", Var("X"))),
				Neq(Var("X"), Var("Y"))),
		), ClassSemipositive},
		{"eq stays positive", NewProgram(
			NewRule(NewAtom("T", Var("X")),
				Pos(NewAtom("V", Var("X"))),
				Eq(Var("X"), Var("X"))),
		), ClassPositive},
	}
	for _, c := range cases {
		if got := c.p.Classify(); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassPositive:     "positive",
		ClassSemipositive: "semipositive",
		ClassStratified:   "stratified",
		ClassGeneral:      "general",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q", int(c), c.String())
		}
	}
}

func TestStratifyPi2(t *testing.T) {
	s, err := pi2().Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStrata() != 2 {
		t.Fatalf("NumStrata = %d, want 2", s.NumStrata())
	}
	if s.Level["S1"] != 0 || s.Level["S2"] != 1 {
		t.Errorf("levels: S1=%d S2=%d", s.Level["S1"], s.Level["S2"])
	}
	if s.Level["E"] != 0 {
		t.Errorf("EDB level = %d", s.Level["E"])
	}
}

func TestStratifyRejectsPi1(t *testing.T) {
	if _, err := pi1().Stratify(); err == nil {
		t.Error("π₁ (recursion through negation) was stratified")
	}
}

func TestStratifyToggle(t *testing.T) {
	// The paper's toggle rule T(z) ← ¬Q(u), ¬T(w) is not stratifiable.
	p := NewProgram(
		NewRule(NewAtom("Q", Var("X")), Pos(NewAtom("V", Var("X")))),
		NewRule(NewAtom("T", Var("Z")),
			Neg(NewAtom("Q", Var("U"))),
			Neg(NewAtom("T", Var("W")))),
	)
	if _, err := p.Stratify(); err == nil {
		t.Error("toggle program was stratified")
	}
}

func TestStratifyChain(t *testing.T) {
	// A ← E;  B ← ¬A;  C ← ¬B:  three strata.
	p := NewProgram(
		NewRule(NewAtom("A", Var("X")), Pos(NewAtom("E", Var("X")))),
		NewRule(NewAtom("B", Var("X")), Neg(NewAtom("A", Var("X")))),
		NewRule(NewAtom("C", Var("X")), Neg(NewAtom("B", Var("X")))),
	)
	s, err := p.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStrata() != 3 {
		t.Fatalf("NumStrata = %d, want 3", s.NumStrata())
	}
	if s.Level["A"] != 0 || s.Level["B"] != 1 || s.Level["C"] != 2 {
		t.Errorf("levels = %v", s.Level)
	}
	rules := p.RulesForStratum(s, 1)
	if len(rules) != 1 || rules[0].Head.Pred != "B" {
		t.Errorf("RulesForStratum(1) = %v", rules)
	}
}

func TestDependencyGraph(t *testing.T) {
	edges := pi2().DependencyGraph()
	// Expect: S1->E (pos), S1->S1 (pos), S2->S1 (neg subsumes pos).
	var s2s1 *DepEdge
	for i := range edges {
		if edges[i].From == "S2" && edges[i].To == "S1" {
			s2s1 = &edges[i]
		}
	}
	if s2s1 == nil || !s2s1.Negative {
		t.Errorf("S2->S1 edge wrong: %+v", edges)
	}
	if len(edges) != 3 {
		t.Errorf("edge count = %d, want 3: %v", len(edges), edges)
	}
}

func TestRuleVarsAndPositiveVars(t *testing.T) {
	r := NewRule(NewAtom("S2", Var("X"), Var("Y"), Var("Z"), Var("W")),
		Pos(NewAtom("S1", Var("X"), Var("Y"))),
		Neg(NewAtom("S1", Var("Z"), Var("W"))))
	vars := r.Vars()
	if len(vars) != 4 {
		t.Fatalf("Vars = %v", vars)
	}
	pv := r.PositiveVars()
	if !pv["X"] || !pv["Y"] || pv["Z"] || pv["W"] {
		t.Errorf("PositiveVars = %v", pv)
	}
}

func TestRuleVarsIncludesConstraintVars(t *testing.T) {
	r := NewRule(NewAtom("T", Var("X")), Neq(Var("X"), Var("Y")))
	vars := r.Vars()
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Y" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestStringRendering(t *testing.T) {
	p := pi1()
	got := strings.TrimSpace(p.String())
	want := "T(X) :- E(Y,X), !T(Y)."
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}

	fact := NewRule(NewAtom("E", Const("a"), Const("b")))
	if fact.String() != "E(a,b)." {
		t.Errorf("fact String = %q", fact.String())
	}

	eqr := NewRule(NewAtom("T", Var("X")),
		Pos(NewAtom("V", Var("X"))), Eq(Var("X"), Const("a")), Neq(Var("X"), Var("Y")))
	want = "T(X) :- V(X), X = a, X != Y."
	if eqr.String() != want {
		t.Errorf("eq rule String = %q, want %q", eqr.String(), want)
	}
}

func TestConstQuoting(t *testing.T) {
	// Constants that look like variables must be quoted so the printed
	// form re-parses to the same AST.
	c := Const("Upper")
	if c.String() != "\"Upper\"" {
		t.Errorf("String = %q", c.String())
	}
	if Const("a b").String() != "\"a b\"" {
		t.Errorf("String = %q", Const("a b").String())
	}
	if Const("ab1").String() != "ab1" {
		t.Errorf("String = %q", Const("ab1").String())
	}
	if Const("").String() != "\"\"" {
		t.Errorf("empty const = %q", Const("").String())
	}
}

func TestIsPositiveRule(t *testing.T) {
	if !pi3().Rules[0].IsPositive() {
		t.Error("TC rule not positive")
	}
	if pi1().Rules[0].IsPositive() {
		t.Error("π₁ rule positive")
	}
}

func TestZeroArityAtom(t *testing.T) {
	a := NewAtom("Halt")
	if a.String() != "Halt" || a.Arity() != 0 {
		t.Errorf("zero-arity atom: %q/%d", a.String(), a.Arity())
	}
}
