// Package ast defines the abstract syntax of DATALOG¬ programs exactly
// as in Section 2 of Kolaitis & Papadimitriou: a program is a finite set
// of rules
//
//	t₀ ← t₁, t₂, …, tᵣ
//
// where the head t₀ is an atomic formula S(x₁,…,xₙ) and each body
// literal is an equality xᵢ = xⱼ, an inequality xᵢ ≠ xⱼ, an atomic
// formula Q(x₁,…,xₙ), or a negated atomic formula ¬Q(x₁,…,xₙ).
//
// Terms may be variables or constants (the paper's succinct
// construction of Theorem 4 uses the constant 1 in a rule head).
// Programs are *not* required to be range-restricted: variables that
// appear only in the head or only in negated literals range over the
// whole universe, matching the paper's "iterate through all possible
// values for the variables" semantics.
//
// The package also derives the structural facts the rest of the system
// needs: arities, the EDB/IDB split, the predicate dependency graph,
// stratification, and the program class (positive DATALOG,
// semipositive, stratified, or general DATALOG¬).
package ast

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates variables from constants.
type TermKind int

// Term kinds.
const (
	KindVar TermKind = iota
	KindConst
)

// Term is a variable or a constant, identified by name.
type Term struct {
	Kind TermKind
	Name string
}

// Var returns a variable term.
func Var(name string) Term { return Term{Kind: KindVar, Name: name} }

// Const returns a constant term.
func Const(name string) Term { return Term{Kind: KindConst, Name: name} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// String renders the term name.  Constants that could be mistaken for
// variables by the parser (upper-case initial), collide with a keyword,
// or contain non-identifier characters are quoted, with backslashes and
// quotes escaped so the parser's string lexer reads back the exact
// name (parse → print → parse is the identity; see FuzzParser).
func (t Term) String() string {
	if t.Kind == KindConst && needsQuote(t.Name) {
		return "\"" + escapeQuoted(t.Name) + "\""
	}
	return t.Name
}

// escapeQuoted escapes the two characters that are special inside the
// parser's quoted strings.
func escapeQuoted(name string) string {
	if !strings.ContainsAny(name, "\\\"") {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		if c := name[i]; c == '\\' || c == '"' {
			b.WriteByte('\\')
			b.WriteByte(c)
		} else {
			b.WriteByte(name[i])
		}
	}
	return b.String()
}

func needsQuote(name string) bool {
	if name == "" || name == "not" {
		// "not" is a keyword: printed bare it would lex as negation.
		return true
	}
	c := name[0]
	if c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	if c >= '0' && c <= '9' {
		// A digit-initial name lexes as a number only when it is all
		// digits; anything like "1abc" must be quoted.
		for i := 0; i < len(name); i++ {
			if name[i] < '0' || name[i] > '9' {
				return true
			}
		}
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
		if !ok {
			return true
		}
	}
	return false
}

// Atom is a predicate applied to terms, e.g. E(x, y).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// String renders the atom, e.g. "E(X,y)".
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// LitKind discriminates the four body literal forms.
type LitKind int

// Literal kinds.
const (
	LitPos LitKind = iota // Q(x̄)
	LitNeg                // ¬Q(x̄)
	LitEq                 // x = y
	LitNeq                // x ≠ y
)

// Literal is one conjunct of a rule body.
type Literal struct {
	Kind  LitKind
	Atom  Atom // valid for LitPos, LitNeg
	Left  Term // valid for LitEq, LitNeq
	Right Term
}

// Pos returns a positive atom literal.
func Pos(a Atom) Literal { return Literal{Kind: LitPos, Atom: a} }

// Neg returns a negated atom literal.
func Neg(a Atom) Literal { return Literal{Kind: LitNeg, Atom: a} }

// Eq returns an equality literal.
func Eq(l, r Term) Literal { return Literal{Kind: LitEq, Left: l, Right: r} }

// Neq returns an inequality literal.
func Neq(l, r Term) Literal { return Literal{Kind: LitNeq, Left: l, Right: r} }

// String renders the literal in the parser's concrete syntax.
func (l Literal) String() string {
	switch l.Kind {
	case LitPos:
		return l.Atom.String()
	case LitNeg:
		return "!" + l.Atom.String()
	case LitEq:
		return l.Left.String() + " = " + l.Right.String()
	case LitNeq:
		return l.Left.String() + " != " + l.Right.String()
	}
	return "?"
}

// Rule is head ← body.  An empty body makes the rule a (possibly
// non-ground) fact scheme: under active-domain semantics its head
// variables range over the whole universe.
type Rule struct {
	Head Atom
	Body []Literal
}

// NewRule builds a rule.
func NewRule(head Atom, body ...Literal) Rule { return Rule{Head: head, Body: body} }

// String renders the rule, e.g. "T(X) :- E(Y,X), !T(Y)."
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Vars returns the distinct variable names of the rule in first-seen
// order (head first, then body left-to-right).
func (r Rule) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t Term) {
		if t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	for _, t := range r.Head.Args {
		add(t)
	}
	for _, l := range r.Body {
		switch l.Kind {
		case LitPos, LitNeg:
			for _, t := range l.Atom.Args {
				add(t)
			}
		case LitEq, LitNeq:
			add(l.Left)
			add(l.Right)
		}
	}
	return out
}

// PositiveVars returns the set of variables bound by positive body
// literals — the variables a join plan can bind without enumerating the
// universe.
func (r Rule) PositiveVars() map[string]bool {
	out := make(map[string]bool)
	for _, l := range r.Body {
		if l.Kind == LitPos {
			for _, t := range l.Atom.Args {
				if t.IsVar() {
					out[t.Name] = true
				}
			}
		}
	}
	return out
}

// IsPositive reports whether the rule body has no negated literal and
// no inequality (the paper's DATALOG restriction; equalities are
// permitted).
func (r Rule) IsPositive() bool {
	for _, l := range r.Body {
		if l.Kind == LitNeg || l.Kind == LitNeq {
			return false
		}
	}
	return true
}

// Program is a finite set of rules plus an optional carrier (goal)
// predicate used by inflationary semantics when a single output
// relation is wanted.
type Program struct {
	Rules   []Rule
	Carrier string // optional; empty means "all IDB relations"
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program { return &Program{Rules: rules} }

// String renders the program one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Arities returns the arity of every predicate appearing in the
// program, or an error if a predicate is used with two different
// arities.
func (p *Program) Arities() (map[string]int, error) {
	ar := make(map[string]int)
	check := func(a Atom) error {
		if prev, ok := ar[a.Pred]; ok && prev != a.Arity() {
			return fmt.Errorf("predicate %s used with arities %d and %d", a.Pred, prev, a.Arity())
		}
		ar[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return nil, err
		}
		for _, l := range r.Body {
			if l.Kind == LitPos || l.Kind == LitNeg {
				if err := check(l.Atom); err != nil {
					return nil, err
				}
			}
		}
	}
	return ar, nil
}

// Constants returns the distinct constant names of the program in the
// order the engine interns them at compile time (rule by rule: head
// arguments, then body literals left to right, equality terms left then
// right).  Evaluating a rewritten or restricted program over a database
// pre-interned with the original program's Constants reproduces the
// exact active domain — and hence the exact value of unsafe rules —
// of evaluating the original program.
func (p *Program) Constants() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t Term) {
		if !t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	for _, r := range p.Rules {
		for _, t := range r.Head.Args {
			add(t)
		}
		for _, l := range r.Body {
			switch l.Kind {
			case LitPos, LitNeg:
				for _, t := range l.Atom.Args {
					add(t)
				}
			case LitEq, LitNeq:
				add(l.Left)
				add(l.Right)
			}
		}
	}
	return out
}

// IDB returns the set of intensional (nondatabase) predicates: those
// appearing in some rule head.
func (p *Program) IDB() map[string]bool {
	out := make(map[string]bool)
	for _, r := range p.Rules {
		out[r.Head.Pred] = true
	}
	return out
}

// EDB returns the set of extensional (database) predicates: those
// appearing only in rule bodies.
func (p *Program) EDB() map[string]bool {
	idb := p.IDB()
	out := make(map[string]bool)
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if (l.Kind == LitPos || l.Kind == LitNeg) && !idb[l.Atom.Pred] {
				out[l.Atom.Pred] = true
			}
		}
	}
	return out
}

// IDBList returns the IDB predicate names sorted.
func (p *Program) IDBList() []string { return sortedKeys(p.IDB()) }

// EDBList returns the EDB predicate names sorted.
func (p *Program) EDBList() []string { return sortedKeys(p.EDB()) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Validate checks arity consistency and carrier existence.  It returns
// the arity map on success.
func (p *Program) Validate() (map[string]int, error) {
	ar, err := p.Arities()
	if err != nil {
		return nil, err
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("program has no rules")
	}
	if p.Carrier != "" && !p.IDB()[p.Carrier] {
		return nil, fmt.Errorf("carrier %s is not an IDB predicate", p.Carrier)
	}
	return ar, nil
}

// Class is the syntactic class of a program, ordered by generality.
type Class int

// Program classes, from most to least restricted.
const (
	// ClassPositive: no negated literals and no inequalities — a
	// DATALOG program in the paper's sense; least fixpoint semantics
	// applies.
	ClassPositive Class = iota
	// ClassSemipositive: negation and inequality applied to EDB
	// predicates only; still monotone in the IDB relations.
	ClassSemipositive
	// ClassStratified: IDB negation allowed but no recursion through
	// negation; the Chandra–Harel stratified semantics applies.
	ClassStratified
	// ClassGeneral: recursion through negation; only fixpoint-style
	// semantics (inflationary, well-founded, Θ-fixpoints) apply.
	ClassGeneral
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassPositive:
		return "positive"
	case ClassSemipositive:
		return "semipositive"
	case ClassStratified:
		return "stratified"
	case ClassGeneral:
		return "general"
	}
	return "unknown"
}

// Classify determines the program's syntactic class.
func (p *Program) Classify() Class {
	idb := p.IDB()
	positive, semipositive := true, true
	for _, r := range p.Rules {
		for _, l := range r.Body {
			switch l.Kind {
			case LitNeg:
				positive = false
				if idb[l.Atom.Pred] {
					semipositive = false
				}
			case LitNeq:
				positive = false
			}
		}
	}
	if positive {
		return ClassPositive
	}
	if semipositive {
		return ClassSemipositive
	}
	if _, err := p.Stratify(); err == nil {
		return ClassStratified
	}
	return ClassGeneral
}
