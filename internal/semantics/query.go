package semantics

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/magic"
	"repro/internal/relation"
)

// Demand-driven point queries.
//
// QueryLFP and QueryStratified answer a single query atom with a
// binding pattern (e.g. tc(c, ?)) without materializing the whole
// fixpoint: the program is magic-set rewritten for the query's
// adornment (internal/magic), the rewritten program — seeded with the
// query constants — is evaluated on the ordinary frontier/planner/
// sharding machinery, and the answer relation is filtered by the
// binding.  The result is bit-exact with full evaluation restricted
// to the query predicate and pattern; the differential property test
// in query_diff_test.go holds the two paths together.

// QueryResult is the outcome of a demand-driven query.
type QueryResult struct {
	Query magic.Query
	// Tuples holds exactly the tuples of the query predicate matching
	// the binding pattern, at the predicate's full arity.
	Tuples *relation.Relation
	// Universe names the constants of Tuples.
	Universe *relation.Universe
	// Stats reports the evaluation effort of the rewritten program —
	// the demand-driven payoff is visible as a drop in Tuples/rounds
	// versus full materialization.
	Stats Stats
	// Report is the rewrite's Explain-style account (nil for
	// extensional predicates, which are answered by a direct probe).
	Report *magic.Report
}

// QueryLFP answers q on prog under the least-fixpoint semantics.  The
// program must be positive or semipositive, like LeastFixpoint.  db is
// not modified.
func QueryLFP(prog *ast.Program, db *relation.Database, q magic.Query, mode Mode) (*QueryResult, error) {
	switch c := prog.Classify(); c {
	case ast.ClassPositive, ast.ClassSemipositive:
	default:
		return nil, fmt.Errorf("least fixpoint queries require a positive or semipositive program; this one is %v", c)
	}
	return queryEval(prog, db, q, false, mode, engine.Options{})
}

// QueryLFPOpts is QueryLFP with per-call engine options.
func QueryLFPOpts(prog *ast.Program, db *relation.Database, q magic.Query, mode Mode, opt engine.Options) (*QueryResult, error) {
	switch c := prog.Classify(); c {
	case ast.ClassPositive, ast.ClassSemipositive:
	default:
		return nil, fmt.Errorf("least fixpoint queries require a positive or semipositive program; this one is %v", c)
	}
	return queryEval(prog, db, q, false, mode, opt)
}

// QueryStratified answers q on prog under the stratified semantics.
// It errors on unstratifiable programs, like Stratified.  db is not
// modified.
func QueryStratified(prog *ast.Program, db *relation.Database, q magic.Query, mode Mode) (*QueryResult, error) {
	return queryEval(prog, db, q, true, mode, engine.Options{})
}

// QueryStratifiedOpts is QueryStratified with per-call engine options.
func QueryStratifiedOpts(prog *ast.Program, db *relation.Database, q magic.Query, mode Mode, opt engine.Options) (*QueryResult, error) {
	return queryEval(prog, db, q, true, mode, opt)
}

// queryEval validates the query, answers extensional predicates by a
// direct probe, and otherwise rewrites and evaluates on a private
// clone of db.
func queryEval(prog *ast.Program, db *relation.Database, q magic.Query, stratified bool, mode Mode, opt engine.Options) (*QueryResult, error) {
	arities, err := prog.Validate()
	if err != nil {
		return nil, err
	}
	ar, ok := arities[q.Pred]
	if !ok {
		return nil, fmt.Errorf("query predicate %s does not appear in the program", q.Pred)
	}
	if len(q.Args) != ar {
		return nil, fmt.Errorf("query %s has %d args, predicate has arity %d", q.Pred, len(q.Args), ar)
	}
	if !prog.IDB()[q.Pred] {
		// Extensional predicate: the database already holds the answer.
		rel := db.Relation(q.Pred)
		if rel == nil {
			rel = relation.New(ar)
		}
		return &QueryResult{
			Query:    q,
			Tuples:   FilterPattern(rel, q, db.Universe()),
			Universe: db.Universe(),
		}, nil
	}
	rw, err := magic.Rewrite(prog, q.Pred, q.Pattern())
	if err != nil {
		return nil, err
	}
	return QueryRewrittenOpts(rw, db.Clone(), q, stratified, mode, opt)
}

// QueryRewritten evaluates a prepared rewrite against work, which the
// caller hands over: seed facts are added, the original program's
// constants are interned, and (for stratified evaluation) computed
// strata are installed.  Callers that own a throwaway database — the
// server builds one per query from a snapshot's extensional relations
// — skip the Clone that QueryLFP/QueryStratified pay.
func QueryRewritten(rw *magic.Rewritten, work *relation.Database, q magic.Query, stratified bool, mode Mode) (*QueryResult, error) {
	return QueryRewrittenOpts(rw, work, q, stratified, mode, engine.Options{})
}

// QueryRewrittenOpts is QueryRewritten with per-call engine options
// applied to the rewritten program's evaluation.
func QueryRewrittenOpts(rw *magic.Rewritten, work *relation.Database, q magic.Query, stratified bool, mode Mode, opt engine.Options) (*QueryResult, error) {
	// Universe parity with full evaluation: the active domain is the
	// database universe plus every original program constant, and unsafe
	// rules range over exactly that set.
	for _, c := range rw.Consts {
		work.AddConstant(c)
	}
	// A bound constant outside the universe can match nothing — and
	// interning it would grow the active domain beyond full
	// evaluation's, changing the value of unsafe rules.
	for _, a := range q.Args {
		if a.IsBound {
			if _, ok := work.Universe().Lookup(a.Const); !ok {
				return &QueryResult{
					Query:    q,
					Tuples:   relation.New(len(q.Args)),
					Universe: work.Universe(),
					Report:   rw.Report,
				}, nil
			}
		}
	}
	if rw.SeedPred != "" {
		pred, args, err := rw.Seed(q)
		if err != nil {
			return nil, err
		}
		if err := work.AddFact(pred, args...); err != nil {
			return nil, err
		}
	}

	var res *Result
	if stratified {
		r, err := stratifiedIn(rw.Program, work, mode, opt)
		if err != nil {
			return nil, err
		}
		res = r
	} else {
		in, err := engine.NewWith(rw.Program, work, opt)
		if err != nil {
			return nil, err
		}
		r, err := LeastFixpointMode(in, mode)
		if err != nil {
			return nil, err
		}
		res = r
	}

	ans := res.State[rw.Answer]
	if ans == nil {
		ans = relation.New(len(q.Args))
	}
	return &QueryResult{
		Query:    q,
		Tuples:   FilterPattern(ans, q, res.Universe),
		Universe: res.Universe,
		Stats:    res.Stats,
		Report:   rw.Report,
	}, nil
}

// FilterPattern returns the tuples of rel matching the query's bound
// constants, probing the composite index when any position is bound —
// the σ the demand-driven path applies to its answer relation, and the
// oracle half of "full evaluation + filter" comparisons.
func FilterPattern(rel *relation.Relation, q magic.Query, u *relation.Universe) *relation.Relation {
	out := relation.New(rel.Arity())
	var cols, vals []int
	for i, a := range q.Args {
		if !a.IsBound {
			continue
		}
		id, ok := u.Lookup(a.Const)
		if !ok {
			return out // nothing can match
		}
		cols = append(cols, i)
		vals = append(vals, id)
	}
	switch {
	case len(cols) == 0:
		out.UnionWith(rel)
	case len(cols) == rel.Arity():
		if rel.Has(relation.Tuple(vals)) {
			out.Add(relation.Tuple(vals))
		}
	case len(cols) == 1:
		for _, off := range rel.Lookup(cols[0], vals[0]) {
			out.Add(rel.At(off))
		}
	default:
		for _, off := range rel.LookupCols(cols, vals) {
			out.Add(rel.At(off))
		}
	}
	return out
}
