package semantics

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/relation"
)

// Differential property test of the demand-driven query path: over
// random safe programs, databases, and query atoms, the magic-set
// rewritten evaluation must be bit-exact with full evaluation filtered
// to the query pattern — across both semantics entry points, worker
// counts {1, N}, and the frontier knob on/off (mirroring
// frontier_test.go's oracle pattern).  The CI race job runs this
// package, so the whole matrix also executes under -race.

// diffVars is the variable pool of generated rules.
var diffVars = []string{"X", "Y", "Z", "W"}

// diffPred is one predicate of a generated program.
type diffPred struct {
	name  string
	arity int
	layer int // 0 = EDB
}

// randRule generates one safe rule for head: every head variable
// occurs in a positive body literal.  Positive literals draw from pos,
// negated ones from neg (nil disables negation for this rule).
func randRule(rng *rand.Rand, head diffPred, pos, neg []diffPred) string {
	randVar := func() string { return diffVars[rng.Intn(len(diffVars))] }
	atom := func(p diffPred) (string, []string) {
		args := make([]string, p.arity)
		for i := range args {
			if rng.Intn(8) == 0 {
				args[i] = fmt.Sprint(rng.Intn(3)) // a constant
			} else {
				args[i] = randVar()
			}
		}
		if p.arity == 0 {
			return p.name, nil
		}
		return p.name + "(" + strings.Join(args, ",") + ")", args
	}

	var body []string
	bound := map[string]bool{}
	for n := 1 + rng.Intn(3); n > 0; n-- {
		s, args := atom(pos[rng.Intn(len(pos))])
		body = append(body, s)
		for _, a := range args {
			bound[a] = true
		}
	}
	if len(neg) > 0 && rng.Intn(2) == 0 {
		s, _ := atom(neg[rng.Intn(len(neg))])
		body = append(body, "!"+s)
	}
	if rng.Intn(3) == 0 {
		op := "="
		if rng.Intn(2) == 0 {
			op = "!="
		}
		body = append(body, randVar()+" "+op+" "+randVar())
	}

	var boundList []string
	for v := range bound {
		boundList = append(boundList, v)
	}
	sort.Strings(boundList)
	headArgs := make([]string, head.arity)
	for i := range headArgs {
		if len(boundList) > 0 && rng.Intn(8) != 0 {
			headArgs[i] = boundList[rng.Intn(len(boundList))]
		} else {
			headArgs[i] = fmt.Sprint(rng.Intn(3))
		}
	}
	if head.arity == 0 {
		return head.name + " :- " + strings.Join(body, ", ") + "."
	}
	return head.name + "(" + strings.Join(headArgs, ",") + ") :- " + strings.Join(body, ", ") + "."
}

// randQueryProgram generates a random safe program: semipositive
// (negation on EDB only) when layers == 1, stratified with IDB
// negation across layers otherwise.  Layer-i rules use positive
// predicates of layers ≤ i and negate predicates of layers < i, so
// the program stratifies by construction.
func randQueryProgram(rng *rand.Rand, layers int) (string, []diffPred) {
	edb := []diffPred{{"E", 2, 0}, {"V", 1, 0}}
	var idb []diffPred
	for l := 1; l <= layers; l++ {
		idb = append(idb,
			diffPred{fmt.Sprintf("p%d", l), 1 + rng.Intn(2), l},
			diffPred{fmt.Sprintf("q%d", l), 2, l})
	}
	var rules []string
	for _, h := range idb {
		for n := 1 + rng.Intn(2); n > 0; n-- {
			var pos, neg []diffPred
			pos = append(pos, edb...)
			for _, p := range idb {
				if p.layer <= h.layer {
					pos = append(pos, p)
				}
				if p.layer < h.layer {
					neg = append(neg, p)
				}
			}
			neg = append(neg, edb...)
			if layers == 1 {
				neg = edb // semipositive: negate EDB only
			}
			rules = append(rules, randRule(rng, h, pos, neg))
		}
	}
	return strings.Join(rules, "\n"), idb
}

// randQueryDB builds a small random database over constants 0..n-1.
func randQueryDB(rng *rand.Rand, n int) *relation.Database {
	db := relation.NewDatabase()
	for i := 0; i < n; i++ {
		db.AddConstant(fmt.Sprint(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.35 {
				db.AddFact("E", fmt.Sprint(i), fmt.Sprint(j))
			}
		}
		if rng.Intn(2) == 0 {
			db.AddFact("V", fmt.Sprint(i))
		}
	}
	return db
}

// randQuery draws a random query on one of the program's IDB
// predicates; bound positions get constants from the database domain,
// with an occasional unknown constant to exercise the empty path.
func randQuery(rng *rand.Rand, idb []diffPred, n int) magic.Query {
	p := idb[rng.Intn(len(idb))]
	q := magic.Query{Pred: p.name}
	for i := 0; i < p.arity; i++ {
		switch rng.Intn(4) {
		case 0:
			q.Args = append(q.Args, magic.Free())
		case 1:
			q.Args = append(q.Args, magic.Bound("unknown"))
		default:
			q.Args = append(q.Args, magic.Bound(fmt.Sprint(rng.Intn(n))))
		}
	}
	return q
}

// queryMatrix is the knob matrix of the differential test.
func queryMatrix() []struct {
	workers  int
	frontier bool
} {
	nw := runtime.GOMAXPROCS(0)
	if nw < 2 {
		nw = 8 // oversubscribe: scheduling must not matter
	}
	return []struct {
		workers  int
		frontier bool
	}{
		{1, true}, {1, false}, {nw, true}, {nw, false},
	}
}

func TestPropMagicQueryMatchesFullLFP(t *testing.T) {
	defer engine.SetDefaultWorkers(0)
	defer engine.SetDefaultFrontier(true)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src, idb := randQueryProgram(rng, 1)
		prog, err := parser.Program(src)
		if err != nil {
			t.Fatalf("seed %d: unparsable program:\n%s\n%v", seed, src, err)
		}
		n := 4 + rng.Intn(2)
		db := randQueryDB(rng, n)

		engine.SetDefaultWorkers(1)
		engine.SetDefaultFrontier(true)
		full, err := LeastFixpoint(engine.MustNew(prog, db.Clone()))
		if err != nil {
			t.Fatalf("seed %d: full evaluation: %v\n%s", seed, err, src)
		}

		for qi := 0; qi < 3; qi++ {
			q := randQuery(rng, idb, n)
			want := nameTuples(FilterPattern(full.State[q.Pred], q, full.Universe), full.Universe)
			for _, m := range queryMatrix() {
				engine.SetDefaultWorkers(m.workers)
				engine.SetDefaultFrontier(m.frontier)
				res, err := QueryLFP(prog, db, q, SemiNaive)
				if err != nil {
					t.Fatalf("seed %d query %s: %v\n%s", seed, q, err, src)
				}
				got := nameTuples(res.Tuples, res.Universe)
				if !sameTuples(got, want) {
					t.Fatalf("seed %d query %s workers=%d frontier=%v: answers differ\nprogram:\n%s\ngot  %v\nwant %v",
						seed, q, m.workers, m.frontier, src, got, want)
				}
			}
		}
	}
}

func TestPropMagicQueryMatchesFullStratified(t *testing.T) {
	defer engine.SetDefaultWorkers(0)
	defer engine.SetDefaultFrontier(true)
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5717))
		src, idb := randQueryProgram(rng, 2+rng.Intn(2))
		prog, err := parser.Program(src)
		if err != nil {
			t.Fatalf("seed %d: unparsable program:\n%s\n%v", seed, src, err)
		}
		n := 4 + rng.Intn(2)
		db := randQueryDB(rng, n)

		engine.SetDefaultWorkers(1)
		engine.SetDefaultFrontier(true)
		full, err := Stratified(prog, db)
		if err != nil {
			t.Fatalf("seed %d: full evaluation: %v\n%s", seed, err, src)
		}

		for qi := 0; qi < 3; qi++ {
			q := randQuery(rng, idb, n)
			want := nameTuples(FilterPattern(full.State[q.Pred], q, full.Universe), full.Universe)
			for _, m := range queryMatrix() {
				engine.SetDefaultWorkers(m.workers)
				engine.SetDefaultFrontier(m.frontier)
				res, err := QueryStratified(prog, db, q, SemiNaive)
				if err != nil {
					t.Fatalf("seed %d query %s: %v\n%s", seed, q, err, src)
				}
				got := nameTuples(res.Tuples, res.Universe)
				if !sameTuples(got, want) {
					t.Fatalf("seed %d query %s workers=%d frontier=%v: answers differ\nprogram:\n%s\ngot  %v\nwant %v",
						seed, q, m.workers, m.frontier, src, got, want)
				}
			}
		}
	}
}

// TestPropMagicQueryNaiveMode spot-checks the naive evaluation mode on
// a few seeds: mode changes stage computation only, never answers.
func TestPropMagicQueryNaiveMode(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		src, idb := randQueryProgram(rng, 2)
		prog := parser.MustProgram(src)
		n := 4
		db := randQueryDB(rng, n)
		full, err := Stratified(prog, db)
		if err != nil {
			t.Fatal(err)
		}
		q := randQuery(rng, idb, n)
		want := nameTuples(FilterPattern(full.State[q.Pred], q, full.Universe), full.Universe)
		res, err := QueryStratified(prog, db, q, Naive)
		if err != nil {
			t.Fatal(err)
		}
		if got := nameTuples(res.Tuples, res.Universe); !sameTuples(got, want) {
			t.Fatalf("seed %d query %s (naive): answers differ\n%s\ngot  %v\nwant %v", seed, q, src, got, want)
		}
	}
}
