// Package semantics implements the four evaluation semantics the paper
// discusses for DATALOG¬ programs:
//
//   - Inflationary (Section 4, the paper's proposal): iterate
//     Θ̃(S) = S ∪ Θ(S) to its inductive fixpoint Θ^∞, reached after at
//     most |A|^k stages — polynomial-time data complexity, total on all
//     DATALOG¬ programs.
//   - LeastFixpoint (the standard DATALOG semantics): valid for
//     programs monotone in their IDB relations (positive and
//     semipositive classes); computed by the same iteration, which for
//     monotone Θ converges to the least fixpoint (Tarski/Kleene).
//   - Stratified (Chandra–Harel / Apt–Blair–Walker): evaluate strata
//     bottom-up, each stratum a semipositive program over the results
//     of lower strata.  Rejects unstratifiable programs.
//   - WellFounded (Van Gelder's alternating fixpoint): the modern
//     default in XSB/DLV-style systems, included as the natural
//     comparison point; three-valued, total on all programs.
//
// All evaluators run semi-naive by default (delta-driven; see the
// engine package for the soundness argument) and report round counts
// so benchmarks can verify the paper's |A|^k stage bound.
package semantics

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/partition"
	"repro/internal/relation"
)

// Stats records evaluation effort.
type Stats struct {
	// Rounds is the number of Θ applications (stages of the induction).
	Rounds int
	// Tuples is the total number of tuples in the final state.
	Tuples int
	// MaxDeltaTuples is the largest per-stage growth observed.
	MaxDeltaTuples int
	// FilterProbes counts emit-path Bloom prefilter consultations across
	// the evaluation (the frontier filter on the unpartitioned path, the
	// exchange filter on the partitioned one); FilterSkips counts the
	// definitive-absent answers that skipped the exact accumulated-state
	// probe.  Both are zero when the prefilters are off.
	FilterProbes int64
	FilterSkips  int64
}

// Core returns the stats with the prefilter telemetry cleared: the
// fields bit-exactness comparisons care about (rounds, tuples, max
// delta), which must agree across every toggle combination — the
// probe/skip tallies legitimately differ with the filters on or off.
func (s Stats) Core() Stats {
	s.FilterProbes, s.FilterSkips = 0, 0
	return s
}

// Result is the outcome of a two-valued evaluation.
type Result struct {
	State engine.State
	Stats Stats
	// Universe names the constants the state's tuples refer to.  For
	// stratified evaluation it extends (and shares the ids of) the
	// caller's database universe.
	Universe *relation.Universe
}

// Mode selects naive or semi-naive stage computation.
type Mode int

// Evaluation modes.
const (
	SemiNaive Mode = iota
	Naive
)

// Inflationary computes the paper's inflationary semantics Θ^∞ of
// (π, D): the inductive fixpoint of S ↦ S ∪ Θ(S).
func Inflationary(in *engine.Instance) *Result { return InflationaryMode(in, SemiNaive) }

// InflationaryMode is Inflationary with an explicit evaluation mode;
// Naive recomputes Θ(S) from scratch each stage (the ablation baseline
// for benchmark E8).
func InflationaryMode(in *engine.Instance, mode Mode) *Result {
	return lfpLoop(in, nil, mode)
}

// InflationaryLog is InflationaryMode with a per-stage observer: log is
// called with an immutable O(1) snapshot of every stage S₁ ⊆ S₂ ⊆ … of
// the induction (S₀ = ∅ is implicit), the last call being the fixpoint
// itself.  The incremental-maintenance layer persists these snapshots
// as its replay log.
func InflationaryLog(in *engine.Instance, mode Mode, log func(stage engine.State)) *Result {
	return lfpLoopLog(in, nil, mode, log)
}

// LeastFixpoint computes the standard least-fixpoint semantics.  It
// errors unless the program is monotone in its IDB relations (positive
// or semipositive), since for general DATALOG¬ a least fixpoint may
// not exist — the paper's Section 3 shows deciding that is hard.
func LeastFixpoint(in *engine.Instance) (*Result, error) {
	return LeastFixpointMode(in, SemiNaive)
}

// LeastFixpointMode is LeastFixpoint with an explicit evaluation mode.
func LeastFixpointMode(in *engine.Instance, mode Mode) (*Result, error) {
	switch c := in.Program().Classify(); c {
	case ast.ClassPositive, ast.ClassSemipositive:
		return lfpLoop(in, nil, mode), nil
	default:
		return nil, fmt.Errorf("least fixpoint semantics requires a positive or semipositive program; this one is %v", c)
	}
}

// lfpLoop iterates S ↦ S ∪ Θ(S) to its inductive fixpoint.  When
// negFixed is non-nil, negated IDB literals are evaluated against it
// instead of the evolving state (the Γ operator of the well-founded
// semantics); the iterated operator is then monotone and the loop
// yields its least fixpoint.
func lfpLoop(in *engine.Instance, negFixed engine.State, mode Mode) *Result {
	return lfpLoopLog(in, negFixed, mode, nil)
}

// lfpLoopLog is lfpLoop with an optional per-stage observer.  The loop
// never deep-copies the state: the previous stage and the round-1 delta
// are O(1) structural-sharing snapshots of cur, which stay valid while
// cur only grows (the inflationary invariant).
//
// Rounds after the first run on the engine's frontier contract: the
// Frontier entry points return exactly the genuinely-new tuples of the
// round — emissions already in cur are dropped at emit time — so the
// loop unions the returned delta into cur and moves on, with no derived
// state and no Diff.  With the instance's frontier knob off the same
// entry points compute derive+Diff internally, the ablation baseline.
func lfpLoopLog(in *engine.Instance, negFixed engine.State, mode Mode, log func(engine.State)) *Result {
	// K-way partitioned evaluation replaces the whole semi-naive loop:
	// the partition coordinator mirrors this loop's rounds, stats, and
	// stage observations exactly, bit-exact vs the K=1 path below.  All
	// four semantics funnel through here (stratified per stratum,
	// well-founded per Γ application), so they all partition.
	if mode == SemiNaive && in.Partitions() > 1 {
		pr := partition.Fixpoint(in, negFixed, log)
		return &Result{
			State: pr.State,
			Stats: Stats{Rounds: pr.Rounds, Tuples: pr.State.Total(), MaxDeltaTuples: pr.MaxDelta,
				FilterProbes: pr.FilterProbes, FilterSkips: pr.FilterSkips},
			Universe: in.Universe(),
		}
	}

	stats := Stats{}
	prev := in.NewState()

	negOf := func(s engine.State) engine.State {
		if negFixed != nil {
			return negFixed
		}
		return s
	}

	cur := in.ApplySplit(prev, negOf(prev))
	stats.Rounds = 1
	delta := cur.Snapshot()
	if log != nil {
		log(delta)
	}
	if n := delta.Total(); n > stats.MaxDeltaTuples {
		stats.MaxDeltaTuples = n
	}

	// The frontier prefilter exists only on the fused-probe semi-naive
	// path, where this loop can keep it covering the accumulated state
	// between rounds (a false negative would corrupt the disjoint union;
	// see relation/filter.go for the soundness contract).
	useFilter := mode == SemiNaive && in.FrontierEval() && in.FrontierFilter()
	var filters map[string]*relation.Filter
	if useFilter {
		filters = engine.FrontierFilters(cur)
	}

	for !delta.Empty() {
		var newDelta engine.State
		if mode == SemiNaive {
			var fst engine.FilterStats
			newDelta, fst = in.ApplyDeltaSplitFrontierFiltered(prev, delta, cur, negOf(cur), filters)
			stats.FilterProbes += fst.Probes
			stats.FilterSkips += fst.Skips
		} else {
			newDelta = in.ApplySplitFrontier(cur, negOf(cur), cur)
		}
		stats.Rounds++
		if newDelta.Empty() {
			break
		}
		if n := newDelta.Total(); n > stats.MaxDeltaTuples {
			stats.MaxDeltaTuples = n
		}
		prev = cur.Snapshot()
		cur.UnionDisjoint(newDelta)
		if useFilter {
			filters = engine.ExtendFrontierFilters(filters, cur, newDelta)
		}
		if log != nil {
			log(cur.Snapshot())
		}
		delta = newDelta
	}
	stats.Tuples = cur.Total()
	return &Result{State: cur, Stats: stats, Universe: in.Universe()}
}
