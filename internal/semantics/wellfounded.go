package semantics

import "repro/internal/engine"

// WFResult is the three-valued outcome of the well-founded semantics:
// True holds the well-founded (certainly true) tuples, Possible the
// tuples not certainly false; Undefined = Possible \ True.
type WFResult struct {
	True     engine.State
	Possible engine.State
	Stats    Stats
	// Outer counts alternating-fixpoint iterations (pairs of Γ
	// applications).
	Outer int
}

// Undefined returns the tuples with undefined truth value.
func (r *WFResult) Undefined() engine.State { return r.Possible.Diff(r.True) }

// Total reports whether the well-founded model is two-valued.
func (r *WFResult) Total() bool { return r.Possible.Equal(r.True) }

// WellFounded computes the well-founded model of (π, D) by Van
// Gelder's alternating fixpoint.  Γ(J) is the least fixpoint of the
// monotone operator S ↦ S ∪ Θ_{¬→J}(S), where negated IDB literals are
// frozen against J; the sequence lo₀ = ∅, lo_{k+1} = Γ(Γ(lo_k)) is
// increasing and its limit is the set of well-founded true facts, with
// Γ(lo) the over-approximation of possibly-true facts.
//
// It is total on stratified programs (where it agrees with the
// stratified semantics) and assigns a three-valued model to every
// DATALOG¬ program — the modern counterpart to the paper's inflationary
// proposal for "giving meaning to all programs".
func WellFounded(in *engine.Instance) *WFResult {
	return WellFoundedMode(in, SemiNaive)
}

// WellFoundedMode is WellFounded with an explicit evaluation mode.
func WellFoundedMode(in *engine.Instance, mode Mode) *WFResult {
	gamma := func(j engine.State) (engine.State, Stats) {
		res := lfpLoop(in, j, mode)
		return res.State, res.Stats
	}

	stats := Stats{}
	lo := in.NewState()
	var hi engine.State
	outer := 0
	for {
		outer++
		h, s1 := gamma(lo)
		l2, s2 := gamma(h)
		stats.Rounds += s1.Rounds + s2.Rounds
		stats.FilterProbes += s1.FilterProbes + s2.FilterProbes
		stats.FilterSkips += s1.FilterSkips + s2.FilterSkips
		if s1.MaxDeltaTuples > stats.MaxDeltaTuples {
			stats.MaxDeltaTuples = s1.MaxDeltaTuples
		}
		if s2.MaxDeltaTuples > stats.MaxDeltaTuples {
			stats.MaxDeltaTuples = s2.MaxDeltaTuples
		}
		hi = h
		if l2.Equal(lo) {
			break
		}
		lo = l2
	}
	stats.Tuples = lo.Total()
	return &WFResult{True: lo, Possible: hi, Stats: stats, Outer: outer}
}

// Gamma is the Gelfond–Lifschitz style operator used by both the
// well-founded alternating fixpoint above and the stable-model
// semantics (package fixpoint): Γ(J) is the least fixpoint of the
// monotone operator S ↦ S ∪ Θ_{¬→J}(S) obtained by freezing negated
// IDB literals against J.  A state S is a stable model iff Γ(S) = S.
func Gamma(in *engine.Instance, j engine.State) engine.State {
	return lfpLoop(in, j, SemiNaive).State
}
