package semantics

import (
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/graphs"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/relation"
)

const tcLeftSrc = "s(X,Y) :- E(X,Y).\ns(X,Y) :- s(X,Z), E(Z,Y)."

// nameTuples renders a relation as sorted name-tuples, the
// universe-independent comparison form: two relations over different
// universes hold the same facts iff their nameTuples are equal.
func nameTuples(rel *relation.Relation, u *relation.Universe) []string {
	var out []string
	for _, t := range rel.Tuples() {
		s := ""
		for i, v := range t {
			if i > 0 {
				s += ","
			}
			s += u.Name(v)
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func sameTuples(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQueryLFPPointQuery(t *testing.T) {
	prog := parser.MustProgram(tcLeftSrc)
	db := graphs.Path(16).Database()

	res, err := QueryLFP(prog, db, magic.MustParseQuery("s(v3, ?)"), SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples.Len() != 12 { // v3 reaches v4..v15
		t.Fatalf("|s(v3,?)| = %d, want 12", res.Tuples.Len())
	}
	// Demand-driven: far fewer tuples derived than the full closure.
	if full := 16 * 15 / 2; res.Stats.Tuples >= full {
		t.Fatalf("magic evaluation derived %d tuples, full closure is %d", res.Stats.Tuples, full)
	}

	// Bit-exact against full evaluation + filter.
	fullRes, err := LeastFixpoint(engine.MustNew(prog, db.Clone()))
	if err != nil {
		t.Fatal(err)
	}
	want := nameTuples(FilterPattern(fullRes.State["s"], magic.MustParseQuery("s(v3, ?)"), fullRes.Universe), fullRes.Universe)
	got := nameTuples(res.Tuples, res.Universe)
	if !sameTuples(got, want) {
		t.Fatalf("answers differ:\ngot  %v\nwant %v", got, want)
	}
}

func TestQueryStratifiedWithNegation(t *testing.T) {
	src := `
s1(X,Y) :- E(X,Y).
s1(X,Y) :- s1(X,Z), E(Z,Y).
unreach(X,Y) :- V(X), V(Y), !s1(X,Y).
`
	prog := parser.MustProgram(src)
	db := graphs.Path(8).Database()
	for i := 0; i < 8; i++ {
		db.AddFact("V", graphs.VertexName(i))
	}

	q := magic.MustParseQuery("unreach(v5, ?)")
	res, err := QueryStratified(prog, db, q, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := Stratified(prog, db)
	if err != nil {
		t.Fatal(err)
	}
	want := nameTuples(FilterPattern(fullRes.State["unreach"], q, fullRes.Universe), fullRes.Universe)
	got := nameTuples(res.Tuples, res.Universe)
	if !sameTuples(got, want) {
		t.Fatalf("answers differ:\ngot  %v\nwant %v", got, want)
	}
	if res.Report == nil {
		t.Fatal("missing rewrite report")
	}
}

func TestQueryEDBDirect(t *testing.T) {
	prog := parser.MustProgram(tcLeftSrc)
	db := graphs.Path(4).Database()
	res, err := QueryLFP(prog, db, magic.MustParseQuery("E(v1, ?)"), SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples.Len() != 1 {
		t.Fatalf("|E(v1,?)| = %d, want 1", res.Tuples.Len())
	}
	if res.Report != nil {
		t.Fatal("EDB query should not rewrite")
	}
}

func TestQueryUnknownConstantIsEmpty(t *testing.T) {
	prog := parser.MustProgram(tcLeftSrc)
	db := graphs.Path(4).Database()
	res, err := QueryLFP(prog, db, magic.MustParseQuery("s(zzz, ?)"), SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples.Len() != 0 {
		t.Fatalf("query on unknown constant matched %d tuples", res.Tuples.Len())
	}
}

func TestQueryErrors(t *testing.T) {
	prog := parser.MustProgram(tcLeftSrc)
	db := graphs.Path(4).Database()
	if _, err := QueryLFP(prog, db, magic.MustParseQuery("nope(?)"), SemiNaive); err == nil {
		t.Fatal("unknown predicate should error")
	}
	if _, err := QueryLFP(prog, db, magic.MustParseQuery("s(?)"), SemiNaive); err == nil {
		t.Fatal("arity mismatch should error")
	}
	win := parser.MustProgram("win(X) :- E(X,Y), !win(Y).")
	if _, err := QueryStratified(win, db, magic.MustParseQuery("win(?)"), SemiNaive); err == nil {
		t.Fatal("unstratifiable program should error")
	}
	if _, err := QueryLFP(win, db, magic.MustParseQuery("win(?)"), SemiNaive); err == nil {
		t.Fatal("general program should be rejected by QueryLFP")
	}
}
