package semantics

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/relation"
)

// Stratified evaluates the program under the stratified semantics of
// Chandra–Harel: strata are computed bottom-up, each stratum treated as
// a semipositive program whose negated predicates are fully evaluated
// lower-stratum results.  It returns an error for unstratifiable
// programs — the paper's point in Section 1 that stratified semantics
// "cannot assign meaning to all DATALOG¬ programs".
//
// The database passed to the engine instance is not modified; the
// evaluation works on a clone extended with intermediate strata.
func Stratified(prog *ast.Program, db *relation.Database) (*Result, error) {
	return StratifiedMode(prog, db, SemiNaive)
}

// StratifiedMode is Stratified with an explicit evaluation mode.
func StratifiedMode(prog *ast.Program, db *relation.Database, mode Mode) (*Result, error) {
	return stratifiedIn(prog, db.Clone(), mode, engine.Options{})
}

// StratifiedOpts is StratifiedMode with per-call engine options applied
// to every stratum's instance.
func StratifiedOpts(prog *ast.Program, db *relation.Database, mode Mode, opt engine.Options) (*Result, error) {
	return stratifiedIn(prog, db.Clone(), mode, opt)
}

// stratifiedIn is the stratified evaluation loop on a caller-owned
// working database: work is mutated in place (program constants are
// interned into its universe, computed strata are installed as
// relations).  QueryRewritten uses it to evaluate rewritten programs
// without deep-copying a database it already owns.
func stratifiedIn(prog *ast.Program, work *relation.Database, mode Mode, opt engine.Options) (*Result, error) {
	strat, err := prog.Stratify()
	if err != nil {
		return nil, err
	}
	if _, err := prog.Validate(); err != nil {
		return nil, err
	}

	stats := Stats{}
	final := make(engine.State)

	for k := 0; k < strat.NumStrata(); k++ {
		rules := prog.RulesForStratum(strat, k)
		sub := &ast.Program{Rules: rules}
		// Predicates of lower strata appear only in bodies of sub, so
		// they are EDB there and read from work, where the previous
		// iterations installed their computed values.
		inst, err := engine.NewWith(sub, work, opt)
		if err != nil {
			return nil, fmt.Errorf("stratum %d: %w", k, err)
		}
		res := lfpLoop(inst, nil, mode)
		stats.Rounds += res.Stats.Rounds
		stats.FilterProbes += res.Stats.FilterProbes
		stats.FilterSkips += res.Stats.FilterSkips
		if res.Stats.MaxDeltaTuples > stats.MaxDeltaTuples {
			stats.MaxDeltaTuples = res.Stats.MaxDeltaTuples
		}
		for pred, rel := range res.State {
			work.Set(pred, rel)
			final[pred] = rel
		}
	}
	stats.Tuples = final.Total()
	return &Result{State: final, Stats: stats, Universe: work.Universe()}, nil
}
